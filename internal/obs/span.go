package obs

import (
	"sync"
	"time"
)

// Phase labels the stages an operation moves through inside the compliance
// middleware. The engine phase covers storage-engine work; transit covers
// the in-transit encryption record layer wrapped around it.
type Phase uint8

const (
	PhaseValidate Phase = iota
	PhaseACL
	PhaseTransit
	PhaseEngine
	PhaseAudit
	NumPhases
)

var phaseNames = [NumPhases]string{"validate", "acl", "transit", "engine", "audit"}

// String returns the phase's exposition label.
func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// Span traces one operation through its phases. All methods are safe on a
// nil receiver — an unsampled op carries a nil span and pays only the
// nil checks — and a Span must be used by a single goroutine.
type Span struct {
	reg      *Registry
	op       string
	role     string
	keyClass string
	start    time.Time
	phaseAt  time.Time
	cur      Phase
	open     bool
	durs     [NumPhases]time.Duration
}

var spanPool = sync.Pool{New: func() any { return new(Span) }}

// StartSpan begins a traced span for one operation, or returns nil when
// this op is not sampled. op is the audit op name ("read-data"), role the
// acting GDPR role, keyClass the selector attribute class ("key", "usr",
// "ttl", ...). The returned span starts in PhaseValidate.
func (r *Registry) StartSpan(op, role, keyClass string) *Span {
	if r == nil || !r.sampleNext() {
		return nil
	}
	s := spanPool.Get().(*Span)
	*s = Span{reg: r, op: op, role: role, keyClass: keyClass}
	s.start = r.clk.Now()
	s.phaseAt = s.start
	s.cur = PhaseValidate
	s.open = true
	return s
}

// sampleNext decides whether the next op is traced: always when a slowlog
// threshold is armed (a sampled slowlog would miss the very ops it exists
// to catch), else one op per sampling period.
func (r *Registry) sampleNext() bool {
	if r.slowNanos.Load() > 0 {
		return true
	}
	n := r.sampleEvery.Load()
	if n <= 0 {
		return false
	}
	if n == 1 {
		return true
	}
	return r.spanSeq.Add(1)%uint64(n) == 0
}

// EnterPhase closes the current phase and starts p. Re-entering a phase
// accumulates (the transit layer brackets the engine phase, so transit time
// is the sum of both sides).
func (s *Span) EnterPhase(p Phase) {
	if s == nil || !s.open {
		return
	}
	now := s.reg.clk.Now()
	s.durs[s.cur] += now.Sub(s.phaseAt)
	s.phaseAt = now
	if p < NumPhases {
		s.cur = p
	}
}

// Finish closes the span: the final phase ends, total and per-phase
// latencies land in the registry histograms, and the op enters the slowlog
// if it crossed the armed threshold. err marks the traced op as failed in
// the slowlog entry.
func (s *Span) Finish(err error) {
	if s == nil || !s.open {
		return
	}
	s.open = false
	r := s.reg
	now := r.clk.Now()
	s.durs[s.cur] += now.Sub(s.phaseAt)
	total := now.Sub(s.start)

	r.opLatency(s.op).ObserveDuration(total)
	for p := Phase(0); p < NumPhases; p++ {
		if d := s.durs[p]; d > 0 {
			r.phaseLatency(p).ObserveDuration(d)
		}
	}
	if thr := time.Duration(r.slowNanos.Load()); thr > 0 && total >= thr {
		r.slowlog.add(SlowEntry{
			Time:     now,
			Op:       s.op,
			Role:     s.role,
			KeyClass: s.keyClass,
			Err:      err != nil,
			Total:    total,
			Phases:   s.durs,
		})
	}
	spanPool.Put(s)
}

// opLatency interns the per-op latency histogram; the map lookup happens
// only on the sampled path.
func (r *Registry) opLatency(op string) *Histogram {
	return r.Histogram(`gdpr_op_latency_ns{op="` + op + `"}`)
}

func (r *Registry) phaseLatency(p Phase) *Histogram {
	return r.Histogram(`gdpr_phase_latency_ns{phase="` + p.String() + `"}`)
}

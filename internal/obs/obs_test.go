package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
)

func TestCounterGaugeInterning(t *testing.T) {
	r := NewRegistry(nil)
	c := r.Counter("ops_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("ops_total") != c {
		t.Fatal("second Counter lookup returned a different instance")
	}

	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	if r.Gauge("depth") != g {
		t.Fatal("second Gauge lookup returned a different instance")
	}

	snap := r.Snapshot(false)
	if snap.Counter("ops_total") != 5 || snap.Gauge("depth") != 4 {
		t.Fatalf("snapshot = %d/%d, want 5/4", snap.Counter("ops_total"), snap.Gauge("depth"))
	}
	if snap.Counter("absent") != 0 || snap.Gauge("absent") != 0 {
		t.Fatal("absent series must read 0")
	}
}

// TestCollectorSummation pins the shard rollup contract: N collectors
// emitting the same series name sum at snapshot time, and a closed
// handle stops contributing.
func TestCollectorSummation(t *testing.T) {
	r := NewRegistry(nil)
	h1 := r.RegisterCollector(func(emit func(string, int64, bool)) {
		emit("engine_scans_total", 10, false)
		emit("engine_bytes", 100, true)
	})
	h2 := r.RegisterCollector(func(emit func(string, int64, bool)) {
		emit("engine_scans_total", 32, false)
		emit("engine_bytes", 11, true)
	})

	snap := r.Snapshot(false)
	if got := snap.Counter("engine_scans_total"); got != 42 {
		t.Fatalf("summed counter = %d, want 42", got)
	}
	if got := snap.Gauge("engine_bytes"); got != 111 {
		t.Fatalf("summed gauge = %d, want 111", got)
	}

	h1.Close()
	h1.Close() // double close is a no-op
	var nilHandle *CollectorHandle
	nilHandle.Close() // nil handle is a no-op

	snap = r.Snapshot(false)
	if got := snap.Counter("engine_scans_total"); got != 32 {
		t.Fatalf("counter after close = %d, want 32", got)
	}
	h2.Close()
}

// TestCollectorAddsToDirectSeries pins that a collector emission lands
// on top of a directly registered counter of the same name.
func TestCollectorAddsToDirectSeries(t *testing.T) {
	r := NewRegistry(nil)
	r.Counter("mixed_total").Add(5)
	h := r.RegisterCollector(func(emit func(string, int64, bool)) {
		emit("mixed_total", 3, false)
	})
	defer h.Close()
	if got := r.Snapshot(false).Counter("mixed_total"); got != 8 {
		t.Fatalf("mixed series = %d, want 8", got)
	}
}

func TestHistogramStat(t *testing.T) {
	r := NewRegistry(nil)

	if st := r.Histogram("empty_ns").stat(); st != (HistStat{}) {
		t.Fatalf("empty histogram stat = %+v, want zero value", st)
	}

	h := r.Histogram("lat_ns")
	for _, v := range []int64{1000, 2000, 4000, 8000, 1_000_000} {
		h.Observe(v)
	}
	h.Observe(-5) // clamps to 0
	st := h.stat()
	if st.Count != 6 {
		t.Fatalf("count = %d, want 6", st.Count)
	}
	if st.Min != 0 {
		t.Fatalf("min = %d, want 0 (clamped negative)", st.Min)
	}
	if st.Max != 1_000_000 {
		t.Fatalf("max = %d, want 1000000", st.Max)
	}
	if st.Sum != 1_015_000 {
		t.Fatalf("sum = %d, want 1015000", st.Sum)
	}
	if st.P50 <= 0 || st.P50 > st.P95 || st.P95 > st.P99 || st.P99 > st.Max {
		t.Fatalf("percentile ordering violated: p50=%d p95=%d p99=%d max=%d", st.P50, st.P95, st.P99, st.Max)
	}
}

// TestHistogramWindowRotation drives rotation from a frozen simulated
// clock: WindowCount must describe the last *completed* period, a frozen
// clock must never rotate, and an idle gap must discard stale windows.
func TestHistogramWindowRotation(t *testing.T) {
	sim := clock.NewSim(time.Unix(1_000_000, 0))
	r := NewRegistry(sim)
	h := r.Histogram("rot_ns")

	h.Observe(100)
	h.Observe(200)
	if st := h.stat(); st.WindowCount != 0 {
		t.Fatalf("WindowCount before any completed period = %d, want 0", st.WindowCount)
	}
	// Frozen clock: repeated observes and stats stay in the same epoch.
	h.Observe(300)
	if st := h.stat(); st.WindowCount != 0 {
		t.Fatalf("frozen clock rotated anyway: WindowCount = %d", st.WindowCount)
	}

	// One full period elapses: the 3-observation window completes.
	sim.Advance(windowDur)
	if st := h.stat(); st.WindowCount != 3 {
		t.Fatalf("WindowCount after one period = %d, want 3", st.WindowCount)
	}
	// Still inside the next period: the completed window is stable.
	sim.Advance(windowDur / 4)
	h.Observe(400)
	if st := h.stat(); st.WindowCount != 3 {
		t.Fatalf("WindowCount mid-period = %d, want 3", st.WindowCount)
	}

	// An idle gap (>1 period with no activity) discards stale windows:
	// the "last completed period" saw nothing.
	sim.Advance(3 * windowDur)
	if st := h.stat(); st.WindowCount != 0 {
		t.Fatalf("WindowCount after idle gap = %d, want 0", st.WindowCount)
	}
	// Cumulative view is unaffected by rotation.
	if got := h.Count(); got != 4 {
		t.Fatalf("cumulative count = %d, want 4", got)
	}
}

func TestSamplingSemantics(t *testing.T) {
	r := NewRegistry(nil)

	r.SetSampling(0)
	if s := r.StartSpan("read-data", "controller", "key"); s != nil {
		t.Fatal("sampling 0 must disable spans")
	}

	r.SetSampling(1)
	for i := 0; i < 10; i++ {
		s := r.StartSpan("read-data", "controller", "key")
		if s == nil {
			t.Fatal("sampling 1 must trace every op")
		}
		s.Finish(nil)
	}

	r.SetSampling(4)
	traced := 0
	for i := 0; i < 400; i++ {
		if s := r.StartSpan("read-data", "controller", "key"); s != nil {
			traced++
			s.Finish(nil)
		}
	}
	if traced != 100 {
		t.Fatalf("sampling 4 traced %d of 400 ops, want 100", traced)
	}

	// An armed slowlog threshold overrides sampling entirely.
	r.SetSampling(0)
	r.SetSlowlogThreshold(time.Hour)
	if s := r.StartSpan("read-data", "controller", "key"); s == nil {
		t.Fatal("armed slowlog threshold must force tracing despite sampling 0")
	} else {
		s.Finish(nil)
	}
	r.SetSlowlogThreshold(0)
	if s := r.StartSpan("read-data", "controller", "key"); s != nil {
		t.Fatal("disarming the slowlog must restore sampling")
	}
}

// TestSpanPhaseAttribution walks a span across phases on a simulated
// clock and checks the slowlog entry credits each phase exactly.
func TestSpanPhaseAttribution(t *testing.T) {
	sim := clock.NewSim(time.Unix(2_000_000, 0))
	r := NewRegistry(sim)
	r.SetSlowlogThreshold(time.Nanosecond)

	s := r.StartSpan("delete-record", "controller", "usr")
	if s == nil {
		t.Fatal("armed threshold must trace")
	}
	sim.Advance(1 * time.Millisecond) // validate
	s.EnterPhase(PhaseACL)
	sim.Advance(2 * time.Millisecond)
	s.EnterPhase(PhaseTransit)
	sim.Advance(3 * time.Millisecond)
	s.EnterPhase(PhaseEngine)
	sim.Advance(4 * time.Millisecond)
	s.EnterPhase(PhaseTransit) // re-entry accumulates
	sim.Advance(5 * time.Millisecond)
	s.EnterPhase(PhaseAudit)
	sim.Advance(6 * time.Millisecond)
	s.Finish(io.ErrUnexpectedEOF)

	log := r.Slowlog()
	if len(log) != 1 {
		t.Fatalf("slowlog has %d entries, want 1", len(log))
	}
	e := log[0]
	if e.Op != "delete-record" || e.Role != "controller" || e.KeyClass != "usr" || !e.Err {
		t.Fatalf("entry identity = %+v", e)
	}
	if e.Total != 21*time.Millisecond {
		t.Fatalf("total = %v, want 21ms", e.Total)
	}
	want := [NumPhases]time.Duration{
		PhaseValidate: 1 * time.Millisecond,
		PhaseACL:      2 * time.Millisecond,
		PhaseTransit:  8 * time.Millisecond, // 3ms + 5ms across re-entry
		PhaseEngine:   4 * time.Millisecond,
		PhaseAudit:    6 * time.Millisecond,
	}
	if e.Phases != want {
		t.Fatalf("phases = %v, want %v", e.Phases, want)
	}

	// The span also landed in the op and phase latency histograms.
	snap := r.Snapshot(false)
	if st := snap.Hists[`gdpr_op_latency_ns{op="delete-record"}`]; st.Count != 1 {
		t.Fatalf("op latency count = %d, want 1", st.Count)
	}
	if st := snap.Hists[`gdpr_phase_latency_ns{phase="engine"}`]; st.Count != 1 {
		t.Fatalf("engine phase count = %d, want 1", st.Count)
	}
}

// TestNilSpanSafe pins that the unsampled path (nil span) is inert.
func TestNilSpanSafe(t *testing.T) {
	var s *Span
	s.EnterPhase(PhaseEngine)
	s.Finish(nil)
}

func TestSlowlogRing(t *testing.T) {
	sim := clock.NewSim(time.Unix(3_000_000, 0))
	r := NewRegistry(sim)
	r.SetSlowlogThreshold(time.Nanosecond)

	const total = slowlogCap + 17
	for i := 0; i < total; i++ {
		s := r.StartSpan("read-data", "processor", "key")
		sim.Advance(time.Duration(i+1) * time.Microsecond)
		s.Finish(nil)
	}

	log := r.Slowlog()
	if len(log) != slowlogCap {
		t.Fatalf("ring holds %d entries, want cap %d", len(log), slowlogCap)
	}
	// Newest first: sequence numbers strictly descend from the latest.
	if log[0].Seq != total {
		t.Fatalf("newest seq = %d, want %d", log[0].Seq, total)
	}
	for i := 1; i < len(log); i++ {
		if log[i].Seq != log[i-1].Seq-1 {
			t.Fatalf("entries not newest-first at %d: %d then %d", i, log[i-1].Seq, log[i].Seq)
		}
	}

	// Only ops at or over the threshold are recorded.
	r.ResetSlowlog()
	r.SetSlowlogThreshold(time.Second)
	s := r.StartSpan("read-data", "processor", "key")
	sim.Advance(time.Millisecond)
	s.Finish(nil)
	if got := len(r.Slowlog()); got != 0 {
		t.Fatalf("sub-threshold op recorded: %d entries", got)
	}
	s = r.StartSpan("read-data", "processor", "key")
	sim.Advance(2 * time.Second)
	s.Finish(nil)
	if got := len(r.Slowlog()); got != 1 {
		t.Fatalf("over-threshold op not recorded: %d entries", got)
	}

	// Snapshot carries the slowlog only when asked.
	if snap := r.Snapshot(false); len(snap.Slowlog) != 0 {
		t.Fatal("Snapshot(false) must omit the slowlog")
	}
	if snap := r.Snapshot(true); len(snap.Slowlog) != 1 {
		t.Fatal("Snapshot(true) must include the slowlog")
	}
}

func TestWriteTextExposition(t *testing.T) {
	r := NewRegistry(nil)
	r.Counter(`ops_total{op="read"}`).Add(7)
	r.Counter(`ops_total{op="write"}`).Add(3)
	r.Gauge("connections").Set(2)
	r.Histogram("lat_ns").Observe(1500)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ops_total counter",
		`ops_total{op="read"} 7`,
		`ops_total{op="write"} 3`,
		"# TYPE connections gauge",
		"connections 2",
		"# TYPE lat_ns summary",
		`lat_ns{quantile="0.5"}`,
		"lat_ns_count 1",
		"lat_ns_sum 1500",
		"lat_ns_window 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per base name, even with two labelled series.
	if got := strings.Count(out, "# TYPE ops_total "); got != 1 {
		t.Errorf("ops_total TYPE emitted %d times, want 1", got)
	}
	// Labelled histogram series keep labels in place on suffixes.
	r.Histogram(`op_lat_ns{op="read"}`).Observe(10)
	b.Reset()
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `op_lat_ns_count{op="read"} 1`) {
		t.Errorf("suffixed labelled series missing:\n%s", b.String())
	}
}

// TestConcurrentWritesAndScrapes is the -race stress test: writer
// goroutines hammer counters, gauges, histograms and spans while
// scrapers pull text expositions — both in-process and through a live
// HTTP endpoint — and snapshots with slowlog copies, concurrently with
// collector registration/teardown.
func TestConcurrentWritesAndScrapes(t *testing.T) {
	r := NewRegistry(nil)
	r.SetSampling(2)
	r.SetSlowlogThreshold(0)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	const writers, scrapers, iters = 4, 3, 300
	var wWG, sWG sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wWG.Add(1)
		go func(w int) {
			defer wWG.Done()
			c := r.Counter("stress_ops_total")
			g := r.Gauge("stress_depth")
			h := r.Histogram("stress_lat_ns")
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i))
				if s := r.StartSpan("read-data", "controller", "key"); s != nil {
					s.EnterPhase(PhaseEngine)
					s.Finish(nil)
				}
				if i%50 == 0 {
					// Collector churn during traffic.
					hdl := r.RegisterCollector(func(emit func(string, int64, bool)) {
						emit("stress_collected_total", 1, false)
					})
					hdl.Close()
				}
				g.Add(-1)
			}
		}(w)
	}

	for s := 0; s < scrapers; s++ {
		sWG.Add(1)
		go func() {
			defer sWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := r.WriteText(io.Discard); err != nil {
					t.Errorf("WriteText: %v", err)
					return
				}
				_ = r.Snapshot(true)
				resp, err := http.Get(srv.URL + "/metrics")
				if err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}

	// Scrapers run for the writers' whole lifetime, then drain.
	wWG.Wait()
	close(stop)
	sWG.Wait()

	if got := r.Counter("stress_ops_total").Value(); got != writers*iters {
		t.Fatalf("stress counter = %d, want %d", got, writers*iters)
	}
	if got := r.Gauge("stress_depth").Value(); got != 0 {
		t.Fatalf("stress gauge = %d, want 0", got)
	}
	if got := r.Histogram("stress_lat_ns").Count(); got != writers*iters {
		t.Fatalf("stress histogram count = %d, want %d", got, writers*iters)
	}

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok\n" {
		t.Fatalf("healthz = %q, want ok", body)
	}
}

// Package obs is the process-wide observability layer: a metrics registry
// (atomic counters, gauges, low-overhead log-bucketed latency histograms
// sharing internal/stats bucket geometry), per-operation span tracing with
// phase attribution, and a slowlog of the slowest operations.
//
// Design rules, in cost order:
//
//   - Counters and gauges are single atomic adds — always on, safe on any
//     hot path.
//   - Collectors (RegisterCollector) cost nothing until Snapshot: engines
//     keep their existing per-stripe/per-pipe atomics and the registry sums
//     them only when someone actually scrapes. This is how the kvstore,
//     audit and WAL counters are exported without adding a single shared
//     cache line to the data path.
//   - Histograms take a clock read plus a short mutex for window rotation —
//     reserved for sampled spans and amortized events (group commits,
//     fsyncs, background tasks), never per-key work.
//   - Spans are sampled 1-in-N (SetSampling); an unsampled op pays one
//     atomic add and a nil-pointer check. Setting a slowlog threshold > 0
//     forces every-op tracing so no slow op escapes the log.
//
// The Default registry is process-global; servers expose it over HTTP
// (Handler) and the wire METRICS verb, and gdprbench merges it into -json.
package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
)

// Counter is a monotonically increasing metric. The zero value is unusable;
// obtain one from Registry.Counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can move both ways (connections, queue depth,
// bytes reclaimed by the last compaction).
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Collector is a pull-time metrics source: it is invoked only during
// Snapshot and emits (name, value, gauge?) triples. Several collectors may
// emit the same name — values sum, which is how N shards' engines roll up
// into one series.
type Collector func(emit func(name string, v int64, gauge bool))

// CollectorHandle deregisters a collector when its owner closes.
type CollectorHandle struct {
	r  *Registry
	id uint64
}

// Close removes the collector from the registry. Safe to call on a nil or
// already-closed handle.
func (h *CollectorHandle) Close() {
	if h == nil || h.r == nil {
		return
	}
	h.r.mu.Lock()
	delete(h.r.collectors, h.id)
	h.r.mu.Unlock()
	h.r = nil
}

// Registry owns every metric in one observability domain. Processes use the
// package-global Default(); tests build private registries on simulated
// clocks.
type Registry struct {
	clk clock.Clock

	mu          sync.RWMutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	hists       map[string]*Histogram
	collectors  map[uint64]Collector
	collectorID uint64

	sampleEvery atomic.Int64 // span sampling period; 0 disables spans
	spanSeq     atomic.Uint64
	slowNanos   atomic.Int64 // slowlog threshold; >0 forces every-op spans

	slowlog *slowlog
}

// DefaultSampling is the default span sampling period: one traced op per N.
const DefaultSampling = 16

// NewRegistry builds an empty registry on clk (nil means the real clock).
func NewRegistry(clk clock.Clock) *Registry {
	if clk == nil {
		clk = clock.NewReal()
	}
	r := &Registry{
		clk:        clk,
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		hists:      make(map[string]*Histogram),
		collectors: make(map[uint64]Collector),
		slowlog:    newSlowlog(slowlogCap),
	}
	r.sampleEvery.Store(DefaultSampling)
	return r
}

var defaultRegistry = NewRegistry(nil)

// Default returns the process-wide registry. Engines, the server, and the
// CLIs all report here unless a test supplies its own.
func Default() *Registry { return defaultRegistry }

// Counter returns (creating if needed) the counter for name. Callers should
// intern the result once — hot paths must not look up by string.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns (creating if needed) the gauge for name.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns (creating if needed) the histogram for name.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = newHistogram(r.clk)
	r.hists[name] = h
	return h
}

// RegisterCollector attaches a pull-time metrics source; it is invoked on
// every Snapshot until the returned handle is closed.
func (r *Registry) RegisterCollector(c Collector) *CollectorHandle {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectorID++
	id := r.collectorID
	r.collectors[id] = c
	return &CollectorHandle{r: r, id: id}
}

// SetSampling sets the span sampling period: one op in n is traced (and
// contributes to the latency/phase histograms). n <= 0 disables span
// tracing entirely; counters stay on. A slowlog threshold > 0 overrides
// sampling and traces every op.
func (r *Registry) SetSampling(n int) { r.sampleEvery.Store(int64(n)) }

// Sampling reports the current sampling period.
func (r *Registry) Sampling() int { return int(r.sampleEvery.Load()) }

// SetSlowlogThreshold arms the slowlog: finished spans whose total latency
// is >= d are recorded. d > 0 forces every-op tracing so slow ops cannot be
// missed by sampling; d = 0 disarms the slowlog and restores sampling.
func (r *Registry) SetSlowlogThreshold(d time.Duration) { r.slowNanos.Store(int64(d)) }

// SlowlogThreshold reports the armed threshold (0 = disarmed).
func (r *Registry) SlowlogThreshold() time.Duration {
	return time.Duration(r.slowNanos.Load())
}

// Slowlog returns the recorded slow ops, newest first.
func (r *Registry) Slowlog() []SlowEntry { return r.slowlog.entries() }

// ResetSlowlog drops all recorded slow ops.
func (r *Registry) ResetSlowlog() { r.slowlog.reset() }

// HistStat is a histogram's point-in-time summary: cumulative count/sum and
// extrema plus bucket-resolution percentiles, and the observation count of
// the last completed rotation window (a recency signal for dashboards).
type HistStat struct {
	Count       int64
	Sum         int64
	Min         int64
	Max         int64
	P50         int64
	P95         int64
	P99         int64
	WindowCount int64
}

// Snapshot is one coherent-enough read of the whole registry. Counters are
// read atomically per series (not across series); collectors run inline.
type Snapshot struct {
	Counters map[string]int64
	Gauges   map[string]int64
	Hists    map[string]HistStat
	Slowlog  []SlowEntry
}

// Counter reads a counter series from the snapshot (0 when absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge reads a gauge series from the snapshot (0 when absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Snapshot captures every registered series. includeSlowlog controls
// whether the slowlog ring is copied out (it carries key-class strings, so
// surfaces that redact keys may omit it).
func (r *Registry) Snapshot(includeSlowlog bool) Snapshot {
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	collectors := make([]Collector, 0, len(r.collectors))
	for _, c := range r.collectors {
		collectors = append(collectors, c)
	}
	r.mu.RUnlock()

	snap := Snapshot{
		Counters: make(map[string]int64, len(counters)+16),
		Gauges:   make(map[string]int64, len(gauges)+16),
		Hists:    make(map[string]HistStat, len(hists)),
	}
	for k, c := range counters {
		snap.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		snap.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		snap.Hists[k] = h.stat()
	}
	for _, c := range collectors {
		c(func(name string, v int64, gauge bool) {
			if gauge {
				snap.Gauges[name] += v
			} else {
				snap.Counters[name] += v
			}
		})
	}
	if includeSlowlog {
		snap.Slowlog = r.slowlog.entries()
	}
	return snap
}

package obs

import (
	"sync"
	"time"
)

// slowlogCap bounds the ring: the most recent N ops over threshold.
const slowlogCap = 128

// SlowEntry is one operation that crossed the slowlog threshold, with its
// full phase breakdown.
type SlowEntry struct {
	Seq      uint64 // monotonically increasing per registry
	Time     time.Time
	Op       string
	Role     string
	KeyClass string
	Err      bool
	Total    time.Duration
	Phases   [NumPhases]time.Duration
}

// slowlog is a bounded ring buffer. Adds only happen for ops already slower
// than the threshold, so a mutex is fine — this is never the hot path.
type slowlog struct {
	mu   sync.Mutex
	ring []SlowEntry
	next int
	n    int
	seq  uint64
}

func newSlowlog(capacity int) *slowlog {
	return &slowlog{ring: make([]SlowEntry, capacity)}
}

func (l *slowlog) add(e SlowEntry) {
	l.mu.Lock()
	l.seq++
	e.Seq = l.seq
	l.ring[l.next] = e
	l.next = (l.next + 1) % len(l.ring)
	if l.n < len(l.ring) {
		l.n++
	}
	l.mu.Unlock()
}

// entries returns the recorded ops, newest first.
func (l *slowlog) entries() []SlowEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEntry, 0, l.n)
	for i := 1; i <= l.n; i++ {
		out = append(out, l.ring[(l.next-i+len(l.ring))%len(l.ring)])
	}
	return out
}

func (l *slowlog) reset() {
	l.mu.Lock()
	l.n = 0
	l.next = 0
	l.mu.Unlock()
}

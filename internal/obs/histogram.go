package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/stats"
)

// windowDur is the rotation period of a histogram's recency window. Each
// histogram keeps, besides its cumulative buckets, the current and the last
// completed window; WindowCount in a snapshot is the completed window's
// observation count, so a scraper can tell "hot right now" from "was hot
// once". Rotation is lazy — driven by the registry clock on observe and
// snapshot, never by a background goroutine — which keeps the histogram
// usable (and testable) under a frozen simulated clock.
const windowDur = 10 * time.Second

// histCore is one set of log buckets with atomic recording. Bucket geometry
// is shared with internal/stats so percentiles agree with the benchmark
// reports.
type histCore struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // MaxInt64 when empty
	max     atomic.Int64
	buckets []atomic.Int64
}

func newHistCore() *histCore {
	c := &histCore{buckets: make([]atomic.Int64, stats.NumBuckets())}
	c.min.Store(math.MaxInt64)
	return c
}

func (c *histCore) record(v int64) {
	if v < 0 {
		v = 0
	}
	c.buckets[stats.BucketIndex(time.Duration(v))].Add(1)
	c.count.Add(1)
	c.sum.Add(v)
	for {
		cur := c.min.Load()
		if v >= cur || c.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := c.max.Load()
		if v <= cur || c.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// percentile mirrors stats.Histogram.Percentile over the atomic buckets.
func (c *histCore) percentile(p float64) int64 {
	count := c.count.Load()
	if count == 0 {
		return 0
	}
	min, max := c.min.Load(), c.max.Load()
	if p <= 0 {
		return min
	}
	if p >= 100 {
		return max
	}
	rank := int64(math.Ceil(p / 100 * float64(count)))
	var seen int64
	for b := range c.buckets {
		seen += c.buckets[b].Load()
		if seen >= rank {
			v := int64(stats.BucketBound(b))
			if v < min {
				v = min
			}
			if v > max {
				v = max
			}
			return v
		}
	}
	return max
}

// Histogram is a concurrency-safe log-bucketed value histogram with a
// cumulative view plus lazily rotated recency windows. Values are unitless
// int64s — latency callers record nanoseconds, size callers record ops or
// bytes; the series name carries the unit suffix.
type Histogram struct {
	clk clock.Clock
	cum *histCore

	winMu    sync.Mutex
	winEpoch int64
	cur      *histCore
	prev     *histCore
}

func newHistogram(clk clock.Clock) *Histogram {
	return &Histogram{clk: clk, cum: newHistCore(), cur: newHistCore(), prev: newHistCore()}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.cum.record(v)
	epoch := h.epochNow()
	h.winMu.Lock()
	h.rotateLocked(epoch)
	h.cur.record(v)
	h.winMu.Unlock()
}

// ObserveDuration records a latency in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

func (h *Histogram) epochNow() int64 {
	return h.clk.Now().UnixNano() / int64(windowDur)
}

// rotateLocked advances the windows to epoch: the current window becomes
// the completed one when exactly one period elapsed, or is discarded along
// with the previous window after an idle gap.
func (h *Histogram) rotateLocked(epoch int64) {
	if epoch == h.winEpoch {
		return
	}
	if epoch == h.winEpoch+1 {
		h.prev = h.cur
	} else {
		h.prev = newHistCore()
	}
	h.cur = newHistCore()
	h.winEpoch = epoch
}

// Count returns the cumulative observation count.
func (h *Histogram) Count() int64 { return h.cum.count.Load() }

// stat summarizes the histogram for a snapshot, rotating windows first so
// WindowCount always describes a completed period.
func (h *Histogram) stat() HistStat {
	epoch := h.epochNow()
	h.winMu.Lock()
	h.rotateLocked(epoch)
	window := h.prev.count.Load()
	h.winMu.Unlock()

	count := h.cum.count.Load()
	st := HistStat{
		Count:       count,
		Sum:         h.cum.sum.Load(),
		Max:         h.cum.max.Load(),
		WindowCount: window,
	}
	if count > 0 {
		st.Min = h.cum.min.Load()
		st.P50 = h.cum.percentile(50)
		st.P95 = h.cum.percentile(95)
		st.P99 = h.cum.percentile(99)
	}
	return st
}

package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// WriteText renders the registry in the Prometheus text exposition format
// (version 0.0.4): counters and gauges as single samples, histograms as
// quantile-labelled samples plus _count/_sum, series sorted by name so
// scrapes diff cleanly. Labels ride inside the series name (`x{op="y"}`),
// the convention every instrumentation site uses.
func (r *Registry) WriteText(w io.Writer) error {
	return writeTextSnapshot(w, r.Snapshot(false))
}

func writeTextSnapshot(w io.Writer, snap Snapshot) error {
	typed := make(map[string]string) // base name -> TYPE already emitted
	emitType := func(series, kind string) string {
		base := series
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if typed[base] == "" {
			typed[base] = kind
			return fmt.Sprintf("# TYPE %s %s\n", base, kind)
		}
		return ""
	}

	var b strings.Builder
	for _, name := range sortedKeys(snap.Counters) {
		b.WriteString(emitType(name, "counter"))
		fmt.Fprintf(&b, "%s %d\n", name, snap.Counters[name])
	}
	for _, name := range sortedKeys(snap.Gauges) {
		b.WriteString(emitType(name, "gauge"))
		fmt.Fprintf(&b, "%s %d\n", name, snap.Gauges[name])
	}
	histNames := make([]string, 0, len(snap.Hists))
	for name := range snap.Hists {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		h := snap.Hists[name]
		b.WriteString(emitType(name, "summary"))
		fmt.Fprintf(&b, "%s %d\n", withLabel(name, `quantile="0.5"`), h.P50)
		fmt.Fprintf(&b, "%s %d\n", withLabel(name, `quantile="0.95"`), h.P95)
		fmt.Fprintf(&b, "%s %d\n", withLabel(name, `quantile="0.99"`), h.P99)
		fmt.Fprintf(&b, "%s %d\n", suffixed(name, "_count"), h.Count)
		fmt.Fprintf(&b, "%s %d\n", suffixed(name, "_sum"), h.Sum)
		fmt.Fprintf(&b, "%s %d\n", suffixed(name, "_window"), h.WindowCount)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// withLabel injects one label pair into a series name that may already
// carry labels: x -> x{l}, x{a="b"} -> x{a="b",l}.
func withLabel(series, label string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:len(series)-1] + "," + label + "}"
	}
	return series + "{" + label + "}"
}

// suffixed appends a suffix to the base name, keeping labels in place:
// x{a="b"} + _count -> x_count{a="b"}.
func suffixed(series, suffix string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i] + suffix + series[i:]
	}
	return series + suffix
}

// Handler returns the live-introspection HTTP surface: /metrics in
// Prometheus text format and /healthz as a trivial liveness probe. Mounted
// on the gdprserver -pprofaddr mux alongside net/http/pprof.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = io.WriteString(w, "ok\n")
	})
	return mux
}

// Package stats provides the measurement layer of the benchmark runtime:
// log-bucketed latency histograms, per-operation accumulators, and run
// summaries (throughput, completion time, percentiles). It mirrors the role
// of YCSB's Status/Measurements engine.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// bucketCount covers latencies from 1ns to ~18h in ~4% geometric steps.
const (
	bucketsPerDecade = 58 // ≈ 4.05% per step
	bucketCount      = 14 * bucketsPerDecade
)

// Histogram is a fixed-size log-bucketed latency histogram. It is safe for
// concurrent use.
type Histogram struct {
	mu      sync.Mutex
	buckets [bucketCount]int64
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64}
}

func bucketFor(d time.Duration) int {
	if d < 1 {
		d = 1
	}
	b := int(math.Log10(float64(d)) * bucketsPerDecade)
	if b < 0 {
		b = 0
	}
	if b >= bucketCount {
		b = bucketCount - 1
	}
	return b
}

func bucketValue(b int) time.Duration {
	return time.Duration(math.Pow(10, float64(b)/bucketsPerDecade))
}

// NumBuckets reports the number of log buckets a Histogram carries. It is
// exported so other histogram implementations (internal/obs) can reuse the
// exact bucket geometry and stay percentile-compatible with the benchmark
// reports.
func NumBuckets() int { return bucketCount }

// BucketIndex returns the bucket an observation of magnitude d falls into.
func BucketIndex(d time.Duration) int { return bucketFor(d) }

// BucketBound returns the representative magnitude of bucket b.
func BucketBound(b int) time.Duration { return bucketValue(b) }

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	h.buckets[bucketFor(d)]++
	h.count++
	h.sum += d
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the average observation, or 0 if empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest observation, or 0 if empty.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation, or 0 if empty.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Percentile returns the approximate p-th percentile (p in [0,100]).
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := int64(math.Ceil(p / 100 * float64(h.count)))
	var seen int64
	for b := 0; b < bucketCount; b++ {
		seen += h.buckets[b]
		if seen >= rank {
			v := bucketValue(b)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Merge adds all observations of other into h.
func (h *Histogram) Merge(other *Histogram) {
	other.mu.Lock()
	var snapshot Histogram
	snapshot.buckets = other.buckets
	snapshot.count = other.count
	snapshot.sum = other.sum
	snapshot.min = other.min
	snapshot.max = other.max
	other.mu.Unlock()

	h.mu.Lock()
	defer h.mu.Unlock()
	for i, c := range snapshot.buckets {
		h.buckets[i] += c
	}
	h.count += snapshot.count
	h.sum += snapshot.sum
	if snapshot.count > 0 {
		if snapshot.min < h.min {
			h.min = snapshot.min
		}
		if snapshot.max > h.max {
			h.max = snapshot.max
		}
	}
}

// OpStats accumulates results for a single operation type.
type OpStats struct {
	Latency *Histogram
	okCount int64
	errs    int64
	mu      sync.Mutex
}

// NewOpStats returns empty per-operation stats.
func NewOpStats() *OpStats { return &OpStats{Latency: NewHistogram()} }

// RecordOK records a successful operation with its latency.
func (o *OpStats) RecordOK(d time.Duration) {
	o.Latency.Record(d)
	o.mu.Lock()
	o.okCount++
	o.mu.Unlock()
}

// RecordErr records a failed operation with its latency.
func (o *OpStats) RecordErr(d time.Duration) {
	o.Latency.Record(d)
	o.mu.Lock()
	o.errs++
	o.mu.Unlock()
}

// OK returns the number of successful operations.
func (o *OpStats) OK() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.okCount
}

// Errors returns the number of failed operations.
func (o *OpStats) Errors() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.errs
}

// Run collects measurements for one benchmark run: per-op histograms plus
// overall wall-clock completion time. It is safe for concurrent use.
type Run struct {
	mu    sync.Mutex
	ops   map[string]*OpStats
	start time.Time
	wall  time.Duration
}

// NewRun returns an empty run accumulator.
func NewRun() *Run { return &Run{ops: make(map[string]*OpStats)} }

// Start marks the beginning of the measured interval.
func (r *Run) Start(now time.Time) {
	r.mu.Lock()
	r.start = now
	r.mu.Unlock()
}

// Finish marks the end of the measured interval.
func (r *Run) Finish(now time.Time) {
	r.mu.Lock()
	r.wall = now.Sub(r.start)
	r.mu.Unlock()
}

// Op returns (creating if necessary) the accumulator for op name.
func (r *Run) Op(name string) *OpStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	o, ok := r.ops[name]
	if !ok {
		o = NewOpStats()
		r.ops[name] = o
	}
	return o
}

// WallTime returns the measured completion time of the run.
func (r *Run) WallTime() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.wall
}

// SetWallTime overrides the measured interval; used when an external clock
// (e.g. clock.Sim) owns time.
func (r *Run) SetWallTime(d time.Duration) {
	r.mu.Lock()
	r.wall = d
	r.mu.Unlock()
}

// TotalOps returns the number of operations recorded, successes + errors.
func (r *Run) TotalOps() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for _, o := range r.ops {
		n += o.OK() + o.Errors()
	}
	return n
}

// TotalErrors returns the number of failed operations recorded.
func (r *Run) TotalErrors() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for _, o := range r.ops {
		n += o.Errors()
	}
	return n
}

// Throughput returns operations per second over the measured wall time.
func (r *Run) Throughput() float64 {
	w := r.WallTime()
	if w <= 0 {
		return 0
	}
	return float64(r.TotalOps()) / w.Seconds()
}

// OpNames returns the recorded operation names, sorted.
func (r *Run) OpNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.ops))
	for k := range r.ops {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Summary renders a YCSB-style text report.
func (r *Run) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[OVERALL] RunTime %v\n", r.WallTime())
	fmt.Fprintf(&b, "[OVERALL] Throughput %.1f ops/sec\n", r.Throughput())
	for _, name := range r.OpNames() {
		o := r.Op(name)
		fmt.Fprintf(&b, "[%s] ok=%d err=%d avg=%v p50=%v p95=%v p99=%v max=%v\n",
			name, o.OK(), o.Errors(), o.Latency.Mean(),
			o.Latency.Percentile(50), o.Latency.Percentile(95),
			o.Latency.Percentile(99), o.Latency.Max())
	}
	return b.String()
}

package stats

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram not zero: count=%d mean=%v min=%v max=%v",
			h.Count(), h.Mean(), h.Min(), h.Max())
	}
	if h.Percentile(50) != 0 {
		t.Fatalf("empty percentile = %v", h.Percentile(50))
	}
}

func TestHistogramBasicMoments(t *testing.T) {
	h := NewHistogram()
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond} {
		h.Record(d)
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 6*time.Millisecond {
		t.Fatalf("sum = %v", h.Sum())
	}
	if h.Mean() != 2*time.Millisecond {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != time.Millisecond || h.Max() != 3*time.Millisecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-time.Second)
	if h.Min() != 0 || h.Count() != 1 {
		t.Fatalf("negative not clamped: min=%v count=%d", h.Min(), h.Count())
	}
}

func TestHistogramPercentileWithinBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := NewHistogram()
		min, max := time.Duration(1<<62), time.Duration(0)
		for i := 0; i < 200; i++ {
			d := time.Duration(r.Int63n(int64(10 * time.Second)))
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
			h.Record(d)
		}
		for _, p := range []float64{0, 1, 25, 50, 75, 95, 99, 100} {
			v := h.Percentile(p)
			if v < min || v > max {
				return false
			}
		}
		// Percentiles are monotonically non-decreasing.
		prev := time.Duration(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := h.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	h := NewHistogram()
	// 0..999 ms uniformly: p50 should land around 500ms within bucket error.
	for i := 0; i < 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	p50 := h.Percentile(50)
	if p50 < 400*time.Millisecond || p50 > 600*time.Millisecond {
		t.Fatalf("p50 = %v, want ~500ms", p50)
	}
	p99 := h.Percentile(99)
	if p99 < 900*time.Millisecond {
		t.Fatalf("p99 = %v, want >= 900ms", p99)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Record(time.Millisecond)
	b.Record(time.Second)
	b.Record(2 * time.Second)
	a.Merge(b)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != time.Millisecond || a.Max() != 2*time.Second {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	if a.Sum() != time.Millisecond+3*time.Second {
		t.Fatalf("merged sum = %v", a.Sum())
	}
}

func TestHistogramMergeEmptyOther(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Record(time.Millisecond)
	a.Merge(b)
	if a.Count() != 1 || a.Min() != time.Millisecond {
		t.Fatalf("merge with empty corrupted state: count=%d min=%v", a.Count(), a.Min())
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(i+1) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
}

func TestOpStatsCounts(t *testing.T) {
	o := NewOpStats()
	o.RecordOK(time.Millisecond)
	o.RecordOK(time.Millisecond)
	o.RecordErr(time.Second)
	if o.OK() != 2 || o.Errors() != 1 {
		t.Fatalf("ok=%d errs=%d", o.OK(), o.Errors())
	}
	if o.Latency.Count() != 3 {
		t.Fatalf("latency count = %d", o.Latency.Count())
	}
}

func TestRunAccumulatesAndSummarizes(t *testing.T) {
	r := NewRun()
	start := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	r.Start(start)
	r.Op("READ").RecordOK(time.Millisecond)
	r.Op("READ").RecordOK(3 * time.Millisecond)
	r.Op("UPDATE").RecordErr(2 * time.Millisecond)
	r.Finish(start.Add(2 * time.Second))

	if r.WallTime() != 2*time.Second {
		t.Fatalf("wall = %v", r.WallTime())
	}
	if r.TotalOps() != 3 {
		t.Fatalf("total ops = %d", r.TotalOps())
	}
	if r.TotalErrors() != 1 {
		t.Fatalf("total errors = %d", r.TotalErrors())
	}
	if tp := r.Throughput(); tp < 1.4 || tp > 1.6 {
		t.Fatalf("throughput = %f, want 1.5", tp)
	}
	names := r.OpNames()
	if len(names) != 2 || names[0] != "READ" || names[1] != "UPDATE" {
		t.Fatalf("op names = %v", names)
	}
	s := r.Summary()
	for _, want := range []string{"[OVERALL]", "[READ]", "[UPDATE]", "ok=2", "err=1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestRunSetWallTimeOverrides(t *testing.T) {
	r := NewRun()
	r.SetWallTime(42 * time.Minute)
	if r.WallTime() != 42*time.Minute {
		t.Fatalf("wall = %v", r.WallTime())
	}
}

func TestRunThroughputZeroWall(t *testing.T) {
	r := NewRun()
	r.Op("X").RecordOK(time.Millisecond)
	if r.Throughput() != 0 {
		t.Fatalf("throughput with zero wall = %f", r.Throughput())
	}
}

func TestRunOpIsStable(t *testing.T) {
	r := NewRun()
	a := r.Op("SCAN")
	b := r.Op("SCAN")
	if a != b {
		t.Fatal("Op returned different accumulators for same name")
	}
}

func TestBucketRoundTripOrdering(t *testing.T) {
	// bucketValue(bucketFor(d)) must be within one bucket step of d.
	for _, d := range []time.Duration{
		1, 10, 123, time.Microsecond, 37 * time.Microsecond,
		time.Millisecond, 999 * time.Millisecond, time.Second,
		42 * time.Second, time.Hour,
	} {
		b := bucketFor(d)
		v := bucketValue(b)
		lo, hi := float64(d)/1.1, float64(d)*1.1
		if float64(v) < lo || float64(v) > hi {
			t.Fatalf("bucket roundtrip %v -> %v (bucket %d) off by >10%%", d, v, b)
		}
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i%1000) * time.Microsecond)
	}
}

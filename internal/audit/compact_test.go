package audit

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
)

// TestCompactRetention: entries older than the retention window vanish
// from both whole-expired segments (deleted) and the boundary segment
// (rewritten); newer entries and their queries survive, across a restart.
func TestCompactRetention(t *testing.T) {
	base := filepath.Join(t.TempDir(), "trail")
	sim := clock.NewSim(time.Unix(1000, 0))
	// Tiny segments so the trail rolls often. No retention during the
	// append phase, so nothing compacts until the explicit call below.
	l, err := Open(Config{Path: base, Clock: sim, Pipeline: PipeSync, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	const total = 40
	for i := 0; i < total; i++ {
		sim.Advance(10 * time.Minute)
		if _, err := l.Append(Entry{Actor: "usr", Op: "SET", Target: fmt.Sprintf("key%02d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Config{Path: base, Clock: sim, Pipeline: PipeSync, SegmentBytes: 64, Retention: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	// 40 entries spaced 10 minutes apart: the cutoff (one hour before the
	// final entry) expires key00..key32, leaving 7 survivors.
	dropped, err := l2.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 33 {
		t.Fatalf("dropped %d entries, want 33", dropped)
	}
	cutoff := sim.Now().Add(-time.Hour)
	got, err := l2.Range(time.Unix(0, 0), sim.Now())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range got {
		if e.Time.Before(cutoff) {
			t.Fatalf("expired entry %s (t=%v) survived compaction", e.Target, e.Time)
		}
	}
	if len(got) != total-int(dropped) {
		t.Fatalf("got %d entries after compaction, want %d", len(got), total-int(dropped))
	}
	st := l2.Stats()
	if st.Compactions != 1 || st.CompactedEntries != dropped {
		t.Fatalf("stats not updated: %+v (dropped=%d)", st, dropped)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	// The compacted trail must reopen cleanly and answer the same.
	l3, err := Open(Config{Path: base, Clock: sim, Pipeline: PipeSync})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	got2, err := l3.Range(time.Unix(0, 0), sim.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != len(got) {
		t.Fatalf("reopened trail has %d entries, want %d", len(got2), len(got))
	}
	for i := range got2 {
		if got2[i].Seq != got[i].Seq || got2[i].Target != got[i].Target {
			t.Fatalf("entry %d mismatch after reopen: %+v vs %+v", i, got2[i], got[i])
		}
	}
}

// TestCompactBoundaryRewrite pins the boundary segment's partial rewrite:
// one big segment straddling the cutoff keeps exactly its young suffix.
func TestCompactBoundaryRewrite(t *testing.T) {
	base := filepath.Join(t.TempDir(), "trail")
	sim := clock.NewSim(time.Unix(1000, 0))
	l, err := Open(Config{Path: base, Clock: sim, Pipeline: PipeSync})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		sim.Advance(10 * time.Minute)
		if _, err := l.Append(Entry{Actor: "usr", Op: "SET", Target: fmt.Sprintf("key%02d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Everything sits in one active segment; seal it by closing, then
	// compact on reopen.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(Config{Path: base, Clock: sim, Pipeline: PipeSync, Retention: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	// Cutoff is one hour before the last entry (t=200min): key13 (t=140min)
	// is exactly at the cutoff and survives with key14..key19.
	dropped, err := l2.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 13 {
		t.Fatalf("dropped %d entries, want 13", dropped)
	}
	got, err := l2.Range(time.Unix(0, 0), sim.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("got %d entries, want 7", len(got))
	}
	for _, e := range got {
		if !strings.HasPrefix(e.Target, "key1") {
			t.Fatalf("unexpected survivor %s", e.Target)
		}
	}
}

// TestCompactPrunesMemoryTail: on a live log, compaction must also stop
// the in-memory tail from resurfacing expired sealed entries.
func TestCompactPrunesMemoryTail(t *testing.T) {
	base := filepath.Join(t.TempDir(), "trail")
	sim := clock.NewSim(time.Unix(1000, 0))
	l, err := Open(Config{Path: base, Clock: sim, Pipeline: PipeSync, SegmentBytes: 64, Retention: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 40; i++ {
		sim.Advance(10 * time.Minute)
		if _, err := l.Append(Entry{Actor: "usr", Op: "SET", Target: fmt.Sprintf("key%02d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	cutoff := sim.Now().Add(-time.Hour)
	got, err := l.Range(time.Unix(0, 0), sim.Now())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range got {
		// Entries still in the active (unsealed) segment may legitimately
		// predate the cutoff; sealed ones must be gone.
		if e.Time.Before(cutoff) && e.Seq < l.store.activeMinSeq() {
			t.Fatalf("expired sealed entry %s (t=%v) still queryable", e.Target, e.Time)
		}
	}
	if len(got) < 7 {
		t.Fatalf("got %d entries, want at least the 7 in-window survivors", len(got))
	}
}

// TestCompactConcurrentQueries races retention compaction against
// appends and range queries; run with -race.
func TestCompactConcurrentQueries(t *testing.T) {
	base := filepath.Join(t.TempDir(), "trail")
	l, err := Open(Config{Path: base, Pipeline: PipeBatched, SegmentBytes: 256, Retention: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 300; i++ {
			if _, err := l.Append(Entry{Actor: "usr", Op: "SET", Target: fmt.Sprintf("key%03d", i)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		if _, err := l.Range(time.Unix(0, 0), time.Now().Add(time.Hour)); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

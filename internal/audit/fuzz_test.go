package audit

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/clock"
)

// rawFrame wraps payload in the securefs plaintext framing.
func rawFrame(payload []byte) []byte {
	out := make([]byte, 4, 4+len(payload))
	binary.BigEndian.PutUint32(out, uint32(len(payload)))
	return append(out, payload...)
}

// validSegmentBytes builds an intact two-batch segment file's raw bytes.
func validSegmentBytes() []byte {
	b1, _ := encodeBatch([]Entry{
		{Seq: 1, Time: time.Unix(0, 1).UTC(), Actor: "controller:acme", Op: "CREATE-RECORD", Target: "k1", OK: true},
		{Seq: 2, Time: time.Unix(0, 2).UTC(), Actor: "customer:neo", Op: "READ-DATA", Target: "k1", OK: true, Note: "n=1"},
	})
	b2, _ := encodeBatch([]Entry{
		{Seq: 3, Time: time.Unix(0, 3).UTC(), Actor: "regulator:dpa", Op: "GET-SYSTEM-LOGS", Target: "0..3", OK: true},
	})
	return append(rawFrame(b1), rawFrame(b2)...)
}

// FuzzSegmentDecode feeds arbitrary bytes in as a segment file: Replay
// and Open must fail cleanly (or deliver a valid prefix), never panic,
// and any delivered entry must have survived an honest decode.
func FuzzSegmentDecode(f *testing.F) {
	f.Add(validSegmentBytes())
	f.Add([]byte{})
	f.Add(rawFrame([]byte{frameEntries}))
	f.Add(rawFrame([]byte("Zjunk")))
	f.Add(validSegmentBytes()[:11])
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		base := filepath.Join(t.TempDir(), "trail.log")
		if err := os.WriteFile(segPath(base, 1), data, 0o600); err != nil {
			t.Fatal(err)
		}
		// Replay: errors are fine, panics and malformed entries are not.
		_ = Replay(base, nil, func(e Entry) error {
			if _, err := decodeEntry(e.encode()); err != nil {
				t.Fatalf("replay delivered an entry that does not re-encode: %+v: %v", e, err)
			}
			return nil
		})
		// Open: crash recovery over the same bytes must also be clean.
		l, err := Open(Config{Path: base, Clock: clock.NewSim(time.Time{})})
		if err != nil {
			return
		}
		if _, err := l.Append(Entry{Op: "post-recovery"}); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if _, err := l.Range(time.Time{}, time.Unix(1<<40, 0)); err != nil {
			t.Fatalf("range after recovery: %v", err)
		}
		l.Close()
	})
}

// FuzzSidecarDecode feeds arbitrary bytes in as a sidecar summary: a
// corrupt sidecar must fall back to segment replay, never panic or
// produce a wrong trail.
func FuzzSidecarDecode(f *testing.F) {
	valid := segMeta{count: 3, bytes: 99, minSeq: 1, maxSeq: 3, minTime: 1, maxTime: 3}
	f.Add(rawFrame(valid.encodeFooter()))
	f.Add([]byte{})
	f.Add(rawFrame([]byte{0}))
	f.Add(rawFrame([]byte{footerVersion, 1}))
	f.Fuzz(func(t *testing.T, data []byte) {
		base := filepath.Join(t.TempDir(), "trail.log")
		seg := segPath(base, 1)
		if err := os.WriteFile(seg, validSegmentBytes(), 0o600); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(seg+idxSuffix, data, 0o600); err != nil {
			t.Fatal(err)
		}
		l, err := Open(Config{Path: base, Clock: clock.NewSim(time.Time{})})
		if err != nil {
			return
		}
		defer l.Close()
		// Whatever the sidecar claimed, the trail's truth is the segment:
		// 3 entries, next sequence 4.
		if got := l.Total(); got != 3 {
			// A sidecar can only overstate what rebuilt replay would say
			// if it decoded "successfully" with garbage numbers — the
			// footer's self-checks must prevent that for small inputs;
			// decoded-but-wrong blooms only cost extra reads. Accept any
			// total >= 3 only when the sidecar parsed.
			if got < 3 {
				t.Fatalf("recovered total = %d, want >= 3", got)
			}
		}
	})
}

// TestTruncatedAndCorruptSegmentsFailCleanly pins the deterministic
// corruption cases the fuzzers explore.
func TestTruncatedAndCorruptSegmentsFailCleanly(t *testing.T) {
	valid := validSegmentBytes()

	write := func(t *testing.T, data []byte) string {
		base := filepath.Join(t.TempDir(), "trail.log")
		if err := os.WriteFile(segPath(base, 1), data, 0o600); err != nil {
			t.Fatal(err)
		}
		return base
	}
	count := func(base string) (int, error) {
		n := 0
		err := Replay(base, nil, func(Entry) error { n++; return nil })
		return n, err
	}

	t.Run("intact", func(t *testing.T) {
		n, err := count(write(t, valid))
		if err != nil || n != 3 {
			t.Fatalf("n=%d err=%v", n, err)
		}
	})
	t.Run("torn-tail-keeps-prefix", func(t *testing.T) {
		n, err := count(write(t, valid[:len(valid)-5]))
		if err != nil || n != 2 {
			t.Fatalf("n=%d err=%v, want prefix of 2 with nil error", n, err)
		}
	})
	t.Run("corrupt-first-frame-errors", func(t *testing.T) {
		garbage := append([]byte(nil), valid...)
		garbage[6] ^= 0xff // inside the first frame's payload
		if _, err := count(write(t, garbage)); err == nil {
			t.Fatal("corrupt first frame should error")
		}
	})
	t.Run("unknown-frame-type-ends-tail", func(t *testing.T) {
		data := append(append([]byte(nil), valid...), rawFrame([]byte("Xnope"))...)
		n, err := count(write(t, data))
		if err != nil || n != 3 {
			t.Fatalf("n=%d err=%v, want 3 intact entries with tolerated tail", n, err)
		}
	})
	t.Run("corrupt-middle-segment-errors", func(t *testing.T) {
		base := filepath.Join(t.TempDir(), "trail.log")
		if err := os.WriteFile(segPath(base, 1), valid[:len(valid)-5], 0o600); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(segPath(base, 2), valid, 0o600); err != nil {
			t.Fatal(err)
		}
		// Segment 1 is not the last, so its tear is real corruption.
		if err := Replay(base, nil, func(Entry) error { return nil }); err == nil {
			t.Fatal("torn non-last segment should error")
		}
	})
}

// Package audit implements the monitoring-and-logging action of Table 1
// (G 30 records of processing, G 33 breach notification): an append-only,
// timestamped trail of every data- and control-path operation, queryable
// by time range (the GET-SYSTEM-LOGS query) and by actor.
//
// It plays two roles from §5 of the paper: the Redis retrofit piggybacks
// on the AOF "updated to log all interactions including reads and scans",
// and the PostgreSQL retrofit uses csvlog plus a row-level-security policy
// "to record query responses". Both reduce to the same mechanism: one log
// entry per operation, persisted with a configurable sync policy
// (always / everysec / none — Redis' appendfsync spectrum).
//
// The trail is a two-stage pipeline (see pipeline.go): callers stage
// entries through a sequencer plus lock-striped buffers, and a dedicated
// writer goroutine batch-encodes and group-commits them into time-bounded
// on-disk segments (segment.go). Queries answer from disk + memory, so
// GET-SYSTEM-LOGS results are independent of the in-memory tail's
// eviction cap and survive restarts.
package audit

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Policy controls how aggressively entries reach stable storage.
type Policy int

// Sync policies, mirroring Redis appendfsync.
const (
	// SyncNone leaves flushing to the OS (fastest, weakest).
	SyncNone Policy = iota
	// SyncEverySec syncs at most once per second (the paper's Redis
	// configuration: "not synchronously in real-time, but in batches
	// synchronized once every second").
	SyncEverySec
	// SyncAlways syncs after every write (strict interpretation). Under
	// the batched pipeline the committer waits for a group fsync covering
	// its entry; under the async pipeline the writer still fsyncs every
	// batch, but callers do not wait.
	SyncAlways
)

func (p Policy) String() string {
	switch p {
	case SyncNone:
		return "none"
	case SyncEverySec:
		return "everysec"
	case SyncAlways:
		return "always"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Pipeline selects how an entry travels from Append to the trail.
type Pipeline int

// Pipeline modes — the ablation spectrum the audit benchmarks sweep.
const (
	// PipeSync encodes and writes inline in the caller, serialized behind
	// one lock (the legacy hot-path profile; the ablation baseline).
	PipeSync Pipeline = iota
	// PipeBatched stages the entry and waits until the writer goroutine
	// has batch-written it (and, under SyncAlways, group-fsynced it) —
	// durability semantics preserved, cost amortized across committers.
	PipeBatched
	// PipeAsync stages the entry and returns immediately; the only
	// blocking is backpressure when the bounded staging queue is full.
	// The loss window on a crash is at most one unflushed batch.
	PipeAsync
)

func (p Pipeline) String() string {
	switch p {
	case PipeSync:
		return "sync"
	case PipeBatched:
		return "batched"
	case PipeAsync:
		return "async"
	default:
		return fmt.Sprintf("Pipeline(%d)", int(p))
	}
}

// ParsePipeline maps a -auditpolicy flag value to a Pipeline.
func ParsePipeline(s string) (Pipeline, error) {
	switch s {
	case "sync":
		return PipeSync, nil
	case "batched":
		return PipeBatched, nil
	case "async":
		return PipeAsync, nil
	default:
		return 0, fmt.Errorf("audit: unknown pipeline %q (want sync, batched or async)", s)
	}
}

// Entry is one audit record.
type Entry struct {
	// Seq is a monotonically increasing sequence number assigned by Append.
	Seq uint64
	// Time is the instant the operation was logged.
	Time time.Time
	// Actor identifies who performed the operation ("controller:acme",
	// "customer:neo", ...).
	Actor string
	// Op is the operation name (e.g. "READ-DATA-BY-USR", "SET", "SELECT").
	Op string
	// Target describes what the operation touched (key or selector).
	Target string
	// OK reports whether the operation succeeded.
	OK bool
	// Note carries extra detail (error text, row counts).
	Note string
}

// encode renders an entry as one tab-separated line. Tabs and newlines in
// fields are escaped so the format is unambiguous (and so batch frames
// can join entries with newlines).
func (e Entry) encode() []byte {
	esc := func(s string) string {
		s = strings.ReplaceAll(s, "\\", `\\`)
		s = strings.ReplaceAll(s, "\t", `\t`)
		s = strings.ReplaceAll(s, "\n", `\n`)
		return s
	}
	ok := "0"
	if e.OK {
		ok = "1"
	}
	return []byte(strings.Join([]string{
		strconv.FormatUint(e.Seq, 10),
		strconv.FormatInt(e.Time.UnixNano(), 10),
		esc(e.Actor), esc(e.Op), esc(e.Target), ok, esc(e.Note),
	}, "\t"))
}

func unescape(s string) string {
	if !strings.Contains(s, "\\") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case 't':
				b.WriteByte('\t')
			case 'n':
				b.WriteByte('\n')
			case '\\':
				b.WriteByte('\\')
			default:
				b.WriteByte(s[i+1])
			}
			i++
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// decodeEntry parses a line produced by encode.
func decodeEntry(line []byte) (Entry, error) {
	parts := strings.SplitN(string(line), "\t", 7)
	if len(parts) != 7 {
		return Entry{}, fmt.Errorf("audit: malformed entry (%d fields)", len(parts))
	}
	seq, err := strconv.ParseUint(parts[0], 10, 64)
	if err != nil {
		return Entry{}, fmt.Errorf("audit: bad seq: %w", err)
	}
	ns, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return Entry{}, fmt.Errorf("audit: bad time: %w", err)
	}
	return Entry{
		Seq:    seq,
		Time:   time.Unix(0, ns).UTC(),
		Actor:  unescape(parts[2]),
		Op:     unescape(parts[3]),
		Target: unescape(parts[4]),
		OK:     parts[5] == "1",
		Note:   unescape(parts[6]),
	}, nil
}

// Stats are the pipeline's counters, surfaced by gdprbench -json.
type Stats struct {
	// Appended counts entries accepted into the trail.
	Appended int64
	// Bytes counts encoded entry bytes (framing excluded).
	Bytes int64
	// Batches counts write batches issued (== Appended under PipeSync).
	Batches int64
	// Flushes counts fsyncs issued.
	Flushes int64
	// MaxQueueDepth is the staging queue's high-water mark (pipeline
	// modes; 0 under PipeSync).
	MaxQueueDepth int64
	// Segments counts on-disk segments, the active one included.
	Segments int64
	// Compactions counts retention compaction passes that removed or
	// rewrote at least one segment.
	Compactions int64
	// CompactedEntries counts entries dropped by retention compaction.
	CompactedEntries int64
}

// Package audit implements the monitoring-and-logging action of Table 1
// (G 30 records of processing, G 33 breach notification): an append-only,
// timestamped trail of every data- and control-path operation, queryable
// by time range (the GET-SYSTEM-LOGS query).
//
// It plays two roles from §5 of the paper: the Redis retrofit piggybacks
// on the AOF "updated to log all interactions including reads and scans",
// and the PostgreSQL retrofit uses csvlog plus a row-level-security policy
// "to record query responses". Both reduce to the same mechanism: one log
// entry per operation, persisted with a configurable sync policy
// (always / everysec / none — Redis' appendfsync spectrum).
package audit

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/securefs"
)

// Policy controls how aggressively entries reach stable storage.
type Policy int

// Sync policies, mirroring Redis appendfsync.
const (
	// SyncNone leaves flushing to the OS (fastest, weakest).
	SyncNone Policy = iota
	// SyncEverySec syncs at most once per second (the paper's Redis
	// configuration: "not synchronously in real-time, but in batches
	// synchronized once every second").
	SyncEverySec
	// SyncAlways syncs after every entry (strict interpretation).
	SyncAlways
)

func (p Policy) String() string {
	switch p {
	case SyncNone:
		return "none"
	case SyncEverySec:
		return "everysec"
	case SyncAlways:
		return "always"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Entry is one audit record.
type Entry struct {
	// Seq is a monotonically increasing sequence number assigned by Append.
	Seq uint64
	// Time is the instant the operation was logged.
	Time time.Time
	// Actor identifies who performed the operation ("controller:acme",
	// "customer:neo", ...).
	Actor string
	// Op is the operation name (e.g. "READ-DATA-BY-USR", "SET", "SELECT").
	Op string
	// Target describes what the operation touched (key or selector).
	Target string
	// OK reports whether the operation succeeded.
	OK bool
	// Note carries extra detail (error text, row counts).
	Note string
}

// encode renders an entry as one tab-separated line. Tabs and newlines in
// fields are escaped so the format is unambiguous.
func (e Entry) encode() []byte {
	esc := func(s string) string {
		s = strings.ReplaceAll(s, "\\", `\\`)
		s = strings.ReplaceAll(s, "\t", `\t`)
		s = strings.ReplaceAll(s, "\n", `\n`)
		return s
	}
	ok := "0"
	if e.OK {
		ok = "1"
	}
	return []byte(strings.Join([]string{
		strconv.FormatUint(e.Seq, 10),
		strconv.FormatInt(e.Time.UnixNano(), 10),
		esc(e.Actor), esc(e.Op), esc(e.Target), ok, esc(e.Note),
	}, "\t"))
}

func unescape(s string) string {
	if !strings.Contains(s, "\\") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case 't':
				b.WriteByte('\t')
			case 'n':
				b.WriteByte('\n')
			case '\\':
				b.WriteByte('\\')
			default:
				b.WriteByte(s[i+1])
			}
			i++
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// decodeEntry parses a line produced by encode.
func decodeEntry(line []byte) (Entry, error) {
	parts := strings.SplitN(string(line), "\t", 7)
	if len(parts) != 7 {
		return Entry{}, fmt.Errorf("audit: malformed entry (%d fields)", len(parts))
	}
	seq, err := strconv.ParseUint(parts[0], 10, 64)
	if err != nil {
		return Entry{}, fmt.Errorf("audit: bad seq: %w", err)
	}
	ns, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return Entry{}, fmt.Errorf("audit: bad time: %w", err)
	}
	return Entry{
		Seq:    seq,
		Time:   time.Unix(0, ns).UTC(),
		Actor:  unescape(parts[2]),
		Op:     unescape(parts[3]),
		Target: unescape(parts[4]),
		OK:     parts[5] == "1",
		Note:   unescape(parts[6]),
	}, nil
}

// Config configures a Log.
type Config struct {
	// Path is the backing file; empty means memory-only.
	Path string
	// Key enables at-rest encryption of the backing file.
	Key []byte
	// Policy is the sync policy for the backing file.
	Policy Policy
	// Clock supplies timestamps; defaults to the real clock.
	Clock clock.Clock
	// MemoryCap bounds the in-memory tail kept for range queries; older
	// entries are evicted from memory (they remain on disk). 0 means a
	// default of 1<<20 entries.
	MemoryCap int
}

// Log is an append-only audit trail. It is safe for concurrent use.
type Log struct {
	mu       sync.Mutex
	entries  []Entry // in-memory tail, ordered by Seq (and Time)
	nextSeq  uint64
	total    int64
	bytes    int64
	file     *securefs.File
	policy   Policy
	clk      clock.Clock
	lastSync time.Time
	memCap   int
	closed   bool
}

// Open creates a Log per cfg.
func Open(cfg Config) (*Log, error) {
	l := &Log{policy: cfg.Policy, clk: cfg.Clock, memCap: cfg.MemoryCap}
	if l.clk == nil {
		l.clk = clock.NewReal()
	}
	if l.memCap <= 0 {
		l.memCap = 1 << 20
	}
	if cfg.Path != "" {
		// A small write buffer pushes entries to the OS every few dozen
		// appends, like a statement-logging pipeline; fsync stays on the
		// configured policy.
		f, err := securefs.Append(cfg.Path, securefs.Options{Key: cfg.Key, BufferSize: 1 << 10})
		if err != nil {
			return nil, err
		}
		l.file = f
	}
	l.lastSync = l.clk.Now()
	return l, nil
}

// Append records one entry, assigning its sequence number and timestamp.
// It returns the stored entry.
func (l *Log) Append(e Entry) (Entry, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return Entry{}, fmt.Errorf("audit: append to closed log")
	}
	l.nextSeq++
	e.Seq = l.nextSeq
	e.Time = l.clk.Now()
	l.entries = append(l.entries, e)
	if len(l.entries) > l.memCap {
		// Evict the oldest half to amortize copying.
		keep := l.memCap / 2
		l.entries = append(l.entries[:0:0], l.entries[len(l.entries)-keep:]...)
	}
	l.total++
	line := e.encode()
	l.bytes += int64(len(line))
	if l.file != nil {
		if err := l.file.AppendFrame(line); err != nil {
			return e, err
		}
		switch l.policy {
		case SyncAlways:
			if err := l.file.Sync(); err != nil {
				return e, err
			}
			l.lastSync = e.Time
		case SyncEverySec:
			if e.Time.Sub(l.lastSync) >= time.Second {
				if err := l.file.Sync(); err != nil {
					return e, err
				}
				l.lastSync = e.Time
			}
		}
	}
	return e, nil
}

// Range returns the in-memory entries with from <= Time <= to, in order.
// This backs GET-SYSTEM-LOGS (G 33, 34: regulators investigate logs "based
// on time ranges"). Entries are time-ordered, so the start is found by
// binary search.
func (l *Log) Range(from, to time.Time) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	lo := sort.Search(len(l.entries), func(i int) bool {
		return !l.entries[i].Time.Before(from)
	})
	var out []Entry
	for _, e := range l.entries[lo:] {
		if e.Time.After(to) {
			break
		}
		out = append(out, e)
	}
	return out
}

// Tail returns up to n most recent entries, oldest first.
func (l *Log) Tail(n int) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n > len(l.entries) {
		n = len(l.entries)
	}
	return append([]Entry(nil), l.entries[len(l.entries)-n:]...)
}

// ByActor returns in-memory entries whose Actor matches.
func (l *Log) ByActor(actor string) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Entry
	for _, e := range l.entries {
		if e.Actor == actor {
			out = append(out, e)
		}
	}
	return out
}

// Total reports how many entries were ever appended.
func (l *Log) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Bytes reports total encoded bytes appended; feeds the space-overhead
// metric.
func (l *Log) Bytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

// Sync forces buffered entries to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.file == nil {
		return nil
	}
	l.lastSync = l.clk.Now()
	return l.file.Sync()
}

// Close flushes and closes the backing file. Close is idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.file == nil {
		return nil
	}
	return l.file.Close()
}

// Replay reads all entries from a backing file (surviving process
// restarts — the on-disk trail is the compliance artifact).
func Replay(path string, key []byte, fn func(Entry) error) error {
	return securefs.Replay(path, securefs.Options{Key: key}, func(p []byte) error {
		e, err := decodeEntry(p)
		if err != nil {
			return err
		}
		return fn(e)
	})
}

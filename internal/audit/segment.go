package audit

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/securefs"
)

// The on-disk trail is a sequence of segments rolled by size:
//
//	<base>.000001.seg   securefs-framed entry batches
//	<base>.000001.idx   sidecar summary block (written at seal time)
//
// A .seg file holds 'E' frames, each a batch of encoded entries joined by
// newlines — the writer goroutine's group-commit unit. The .idx sidecar
// is one frame carrying the segment's summary: entry count, min/max
// sequence, min/max time, byte count and an actor bloom filter, so range
// and by-actor queries open only the segments that can match. A segment
// without a sidecar (the active segment, or any segment after a crash)
// is recovered by replaying its frames; a torn tail ends the segment,
// mirroring truncated-AOF recovery.

// ErrCorruptSegment is returned when a segment frame fails its format
// checks (distinct from securefs.ErrCorruptFrame, which covers framing
// and authentication).
var ErrCorruptSegment = errors.New("audit: corrupt segment")

const (
	frameEntries  byte = 'E'
	segSuffix          = ".seg"
	idxSuffix          = ".idx"
	footerVersion      = 1

	// bloomBytes sizes the per-segment actor bloom filter (2048 bits,
	// bloomHashes probes). At ~1000 distinct actors per segment the
	// false-positive rate stays low single-digit percent; a false
	// positive only costs one extra segment replay, never a wrong result.
	bloomBytes  = 256
	bloomHashes = 3
)

// bloom is a fixed-size bloom filter over actor names.
type bloom [bloomBytes]byte

func bloomProbes(s string) [bloomHashes]uint32 {
	h := fnv.New64a()
	h.Write([]byte(s))
	v := h.Sum64()
	// Kirsch–Mitzenmacher double hashing: probe_i = h1 + i*h2.
	h1, h2 := uint32(v), uint32(v>>32)|1
	var out [bloomHashes]uint32
	for i := range out {
		out[i] = (h1 + uint32(i)*h2) % (bloomBytes * 8)
	}
	return out
}

func (b *bloom) add(s string) {
	for _, p := range bloomProbes(s) {
		b[p/8] |= 1 << (p % 8)
	}
}

func (b *bloom) mayContain(s string) bool {
	for _, p := range bloomProbes(s) {
		if b[p/8]&(1<<(p%8)) == 0 {
			return false
		}
	}
	return true
}

// segMeta is one segment's summary block.
type segMeta struct {
	path    string
	count   int64
	bytes   int64 // encoded entry bytes (framing excluded)
	minSeq  uint64
	maxSeq  uint64
	minTime int64 // UnixNano
	maxTime int64
	actors  bloom
}

func (m *segMeta) observe(e Entry, encodedLen int) {
	ns := e.Time.UnixNano()
	if m.count == 0 {
		m.minSeq, m.maxSeq = e.Seq, e.Seq
		m.minTime, m.maxTime = ns, ns
	} else {
		if e.Seq < m.minSeq {
			m.minSeq = e.Seq
		}
		if e.Seq > m.maxSeq {
			m.maxSeq = e.Seq
		}
		if ns < m.minTime {
			m.minTime = ns
		}
		if ns > m.maxTime {
			m.maxTime = ns
		}
	}
	m.count++
	m.bytes += int64(encodedLen)
	m.actors.add(e.Actor)
}

func (m *segMeta) overlapsSeq(from, to uint64) bool {
	return m.count > 0 && m.minSeq <= to && m.maxSeq >= from
}

func (m *segMeta) overlapsTime(from, to time.Time) bool {
	return m.count > 0 && m.minTime <= to.UnixNano() && m.maxTime >= from.UnixNano()
}

// encodeFooter renders the summary block for the .idx sidecar.
func (m *segMeta) encodeFooter() []byte {
	buf := make([]byte, 0, 64+bloomBytes)
	buf = append(buf, footerVersion)
	buf = binary.AppendUvarint(buf, uint64(m.count))
	buf = binary.AppendVarint(buf, m.bytes)
	buf = binary.AppendUvarint(buf, m.minSeq)
	buf = binary.AppendUvarint(buf, m.maxSeq)
	buf = binary.AppendVarint(buf, m.minTime)
	buf = binary.AppendVarint(buf, m.maxTime)
	buf = append(buf, m.actors[:]...)
	return buf
}

func decodeFooter(p []byte) (segMeta, error) {
	fail := func(what string) (segMeta, error) {
		return segMeta{}, fmt.Errorf("audit: summary block: bad %s: %w", what, ErrCorruptSegment)
	}
	if len(p) < 1 || p[0] != footerVersion {
		return fail("version")
	}
	p = p[1:]
	var m segMeta
	u := func() uint64 {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			p = nil
			return 0
		}
		p = p[n:]
		return v
	}
	i := func() int64 {
		v, n := binary.Varint(p)
		if n <= 0 {
			p = nil
			return 0
		}
		p = p[n:]
		return v
	}
	m.count = int64(u())
	m.bytes = i()
	m.minSeq = u()
	m.maxSeq = u()
	m.minTime = i()
	m.maxTime = i()
	if p == nil {
		return fail("varint")
	}
	if len(p) != bloomBytes {
		return fail("bloom length")
	}
	copy(m.actors[:], p)
	if m.count < 0 || m.minSeq > m.maxSeq {
		return fail("range")
	}
	return m, nil
}

// encodeBatch renders a group-commit batch as one 'E' frame payload,
// returning each entry's encoded length alongside so accounting never
// pays a second encode.
func encodeBatch(batch []Entry) ([]byte, []int) {
	n := 1
	lines := make([][]byte, len(batch))
	lens := make([]int, len(batch))
	for i, e := range batch {
		lines[i] = e.encode()
		lens[i] = len(lines[i])
		n += lens[i] + 1
	}
	out := make([]byte, 0, n)
	out = append(out, frameEntries)
	for i, line := range lines {
		if i > 0 {
			out = append(out, '\n')
		}
		out = append(out, line...)
	}
	return out, lens
}

// decodeBatch parses an 'E' frame payload back into entries.
func decodeBatch(p []byte, fn func(Entry) error) error {
	if len(p) == 0 || p[0] != frameEntries {
		return fmt.Errorf("audit: unknown frame type: %w", ErrCorruptSegment)
	}
	rest := p[1:]
	for len(rest) > 0 {
		line := rest
		if i := bytes.IndexByte(rest, '\n'); i >= 0 {
			line, rest = rest[:i], rest[i+1:]
		} else {
			rest = nil
		}
		e, err := decodeEntry(line)
		if err != nil {
			return err
		}
		if err := fn(e); err != nil {
			return err
		}
	}
	return nil
}

// segmentStore owns the on-disk side of the trail. The writer goroutine
// (or the inline sync path) appends and rolls; queries snapshot the
// sealed list and replay overlapping segments. One small mutex guards
// the segment list and the active handle — never held across file IO
// longer than one append or flush.
type segmentStore struct {
	base     string
	key      []byte
	maxBytes int64

	mu     sync.Mutex
	sealed []segMeta
	active *securefs.File
	actMu  sync.Mutex // serializes seal/roll against query flushes
	actIdx int        // numeric suffix of the active segment
	actRef segMeta
	closed bool

	// Retention compaction. compactMu lets queries replay sealed files
	// without a compactor renaming or deleting them mid-read: read holds
	// it shared for the whole replay, the compactor exclusively only
	// around each rename/delete swap (its heavy rewrite work happens
	// outside any lock). compactRun serializes whole compaction passes;
	// sealGen counts seals so the auto-trigger fires once per roll.
	compactMu  sync.RWMutex
	compactRun sync.Mutex
	sealGen    atomic.Int64
}

func segPath(base string, n int) string {
	return fmt.Sprintf("%s.%06d%s", base, n, segSuffix)
}

// listSegments returns the numeric suffixes of base's segment files in
// ascending order.
func listSegments(base string) ([]int, error) {
	dir, name := filepath.Dir(base), filepath.Base(base)
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("audit: list segments: %w", err)
	}
	var nums []int
	for _, ent := range ents {
		rest, ok := strings.CutPrefix(ent.Name(), name+".")
		if !ok {
			continue
		}
		numStr, ok := strings.CutSuffix(rest, segSuffix)
		if !ok {
			continue
		}
		n, err := strconv.Atoi(numStr)
		if err != nil || n < 0 {
			continue
		}
		nums = append(nums, n)
	}
	sort.Ints(nums)
	return nums, nil
}

// tornMode says how replaySegment treats a corrupt frame.
type tornMode int

const (
	// tornStrict: any corruption is an error (sealed, fsynced segments).
	tornStrict tornMode = iota
	// tornTail: corruption *after at least one intact frame* ends the
	// segment like a torn AOF tail. Corruption at the very first frame
	// stays an error: that is a wrong encryption key or real damage, not
	// a torn tail, and an encrypted compliance trail must not silently
	// read as empty.
	tornTail
	// tornAny: any corruption ends the segment — crash recovery of the
	// segment that was active when the process died, where even the
	// first flushed frame may be partial.
	tornAny
)

// replaySegment replays one .seg file's entries in order. It reports
// whether a tolerated tear ended the segment early.
func replaySegment(path string, key []byte, mode tornMode, fn func(Entry) error) (torn bool, err error) {
	intact := 0
	err = securefs.Replay(path, securefs.Options{Key: key}, func(p []byte) error {
		if err := decodeBatch(p, fn); err != nil {
			return err
		}
		intact++
		return nil
	})
	if err != nil && (errors.Is(err, securefs.ErrCorruptFrame) || errors.Is(err, ErrCorruptSegment)) {
		if mode == tornAny || (mode == tornTail && intact > 0) {
			return true, nil
		}
	}
	return false, err
}

// rebuildSegment recovers a sidecarless segment: it replays the file to
// rebuild the summary and then REPAIRS the on-disk state, so that no
// later reader (queries use tornStrict on sealed segments, and so does
// the next Open once this segment is no longer last) trips over torn
// bytes:
//
//   - zero recoverable entries: the file is set aside as .corrupt —
//     never deleted (it may be real data under a different key) — and
//     the segment reads as empty;
//   - a torn tail after an intact prefix: the prefix is rewritten via
//     tmp+rename (the same data-loss contract as WAL torn-tail
//     recovery) and summarized;
//   - intact: only the missing sidecar is rewritten.
func rebuildSegment(path string, key []byte, mode tornMode) (segMeta, error) {
	m := segMeta{path: path}
	var entries []Entry
	torn, err := replaySegment(path, key, mode, func(e Entry) error {
		m.observe(e, len(e.encode()))
		entries = append(entries, e)
		return nil
	})
	if err != nil {
		return segMeta{}, err
	}
	if m.count == 0 {
		if torn {
			os.Rename(path, path+".corrupt")
			os.Remove(path + idxSuffix)
		}
		return m, nil
	}
	if torn {
		tmp := path + ".rewrite"
		if err := writeSegmentFile(tmp, key, entries); err != nil {
			return segMeta{}, err
		}
		if err := os.Rename(tmp, path); err != nil {
			return segMeta{}, fmt.Errorf("audit: repair %s: %w", path, err)
		}
	}
	if err := writeSidecar(m, key); err != nil {
		return segMeta{}, err
	}
	return m, nil
}

// writeSegmentFile renders entries into a fresh segment file at path,
// fsyncing before close. Frames are chunked so one never approaches the
// securefs frame ceiling regardless of the input's size. Used by crash
// repair and retention compaction, both of which build the replacement
// under a tmp name and rename it into place.
func writeSegmentFile(path string, key []byte, entries []Entry) error {
	f, err := securefs.Create(path, securefs.Options{Key: key})
	if err != nil {
		return err
	}
	const chunk = 512
	for i := 0; i < len(entries); i += chunk {
		end := min(i+chunk, len(entries))
		frame, _ := encodeBatch(entries[i:end])
		if err := f.AppendFrame(frame); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// openStore scans base's existing segments (sidecar summaries when
// present, replay otherwise — the crashed active segment has no sidecar)
// and opens a fresh active segment after them.
func openStore(base string, key []byte, maxBytes int64) (*segmentStore, error) {
	nums, err := listSegments(base)
	if err != nil {
		return nil, err
	}
	s := &segmentStore{base: base, key: key, maxBytes: maxBytes}
	for i, n := range nums {
		path := segPath(base, n)
		// A leftover .rewrite tmp (crashed repair or compaction) was never
		// renamed into place, so it holds no unique data.
		os.Remove(path + ".rewrite")
		mode := tornStrict
		if i == len(nums)-1 {
			// Only the segment that was active at a crash may
			// legitimately be torn — anywhere, even at frame 0.
			mode = tornAny
		}
		m, err := readSidecar(path, key)
		if err != nil {
			// No (or bad) sidecar: rebuild by replay and repair the
			// on-disk state so later strict reads stay clean.
			m, err = rebuildSegment(path, key, mode)
			if err != nil {
				return nil, fmt.Errorf("audit: recover %s: %w", path, err)
			}
		}
		m.path = path
		if m.count > 0 {
			s.sealed = append(s.sealed, m)
		}
	}
	s.actIdx = 1
	if len(nums) > 0 {
		s.actIdx = nums[len(nums)-1] + 1
	}
	if err := s.openActive(); err != nil {
		return nil, err
	}
	return s, nil
}

func readSidecar(segFile string, key []byte) (segMeta, error) {
	var m segMeta
	got := false
	err := securefs.Replay(segFile+idxSuffix, securefs.Options{Key: key}, func(p []byte) error {
		if got {
			return fmt.Errorf("audit: trailing sidecar frame: %w", ErrCorruptSegment)
		}
		var err error
		m, err = decodeFooter(p)
		got = err == nil
		return err
	})
	if err != nil {
		return segMeta{}, err
	}
	if !got {
		return segMeta{}, fmt.Errorf("audit: empty sidecar: %w", ErrCorruptSegment)
	}
	return m, nil
}

func (s *segmentStore) openActive() error {
	path := segPath(s.base, s.actIdx)
	f, err := securefs.Create(path, securefs.Options{Key: s.key, BufferSize: 1 << 13})
	if err != nil {
		return err
	}
	s.active = f
	s.actRef = segMeta{path: path}
	return nil
}

// frameBudget caps one batch frame's payload. A backpressure-deep batch
// could otherwise encode past securefs's frame ceiling — writes are not
// size-checked, so the oversized frame would poison every later replay
// of the segment. One chunk per budget keeps frames far below the limit
// while preserving the batch's single logical group commit.
const frameBudget = 1 << 20

// append writes one batch to the active segment (chunked into
// budget-bounded frames; each entry is encoded exactly once) and rolls
// the segment when it outgrows maxBytes. Called only by the writer
// goroutine (or the inline sync path), never concurrently with itself.
func (s *segmentStore) append(batch []Entry) (int64, error) {
	s.actMu.Lock()
	f := s.active
	s.actMu.Unlock()
	lines := make([][]byte, len(batch))
	lens := make([]int, len(batch))
	for i, e := range batch {
		lines[i] = e.encode()
		lens[i] = len(lines[i])
	}
	var encoded int64
	frame := make([]byte, 1, frameBudget/4)
	frame[0] = frameEntries
	flushFrame := func() error {
		if len(frame) <= 1 {
			return nil
		}
		err := f.AppendFrame(frame)
		frame = frame[:1]
		return err
	}
	for i, line := range lines {
		if len(frame) > 1 {
			if len(frame)+lens[i]+1 > frameBudget {
				if err := flushFrame(); err != nil {
					return encoded, err
				}
			} else {
				frame = append(frame, '\n')
			}
		}
		frame = append(frame, line...)
	}
	if err := flushFrame(); err != nil {
		return encoded, err
	}
	s.mu.Lock()
	for i, e := range batch {
		encoded += int64(lens[i])
		s.actRef.observe(e, lens[i])
	}
	roll := s.actRef.bytes >= s.maxBytes
	s.mu.Unlock()
	if roll {
		if err := s.seal(); err != nil {
			return encoded, err
		}
	}
	return encoded, nil
}

// seal closes the active segment — flush, fsync, sidecar summary — moves
// it to the sealed list and opens the next one. Sealed segments are
// fully durable, so crash recovery can only tear the active tail.
func (s *segmentStore) seal() error {
	s.actMu.Lock()
	defer s.actMu.Unlock()
	if err := s.active.Sync(); err != nil {
		return err
	}
	if err := s.active.Close(); err != nil {
		return err
	}
	s.mu.Lock()
	meta := s.actRef
	s.mu.Unlock()
	if meta.count > 0 {
		if err := writeSidecar(meta, s.key); err != nil {
			return err
		}
	} else {
		// Nothing was ever written: drop the empty file instead of
		// leaving a zero-entry segment behind.
		os.Remove(meta.path)
	}
	s.mu.Lock()
	if meta.count > 0 {
		s.sealed = append(s.sealed, meta)
	}
	s.actIdx++
	s.mu.Unlock()
	s.sealGen.Add(1)
	return s.openActive()
}

func writeSidecar(m segMeta, key []byte) error {
	f, err := securefs.Create(m.path+idxSuffix, securefs.Options{Key: key})
	if err != nil {
		return err
	}
	if err := f.AppendFrame(m.encodeFooter()); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// dropSealedLocked removes the sealed meta at path from the list,
// reporting whether it was present. Callers hold s.mu.
func (s *segmentStore) dropSealedLocked(path string) bool {
	for i, m := range s.sealed {
		if m.path == path {
			s.sealed = append(s.sealed[:i], s.sealed[i+1:]...)
			return true
		}
	}
	return false
}

// compact enforces a retention cutoff over the sealed segments: segments
// whose newest entry predates cutoffNs are deleted whole (.seg and .idx),
// and the segment straddling the cutoff is rewritten keeping only entries
// at or after it — built under a .rewrite tmp name off-lock, then renamed
// into place under the exclusive compactMu so no query replay is mid-file.
// The active segment is never touched; sequence numbers are preserved, so
// a compacted trail starts at a sparse sequence. Returns how many entries
// were dropped and whether any segment changed.
func (s *segmentStore) compact(cutoffNs int64) (dropped int64, changed bool, err error) {
	s.compactRun.Lock()
	defer s.compactRun.Unlock()
	s.mu.Lock()
	segs := append([]segMeta(nil), s.sealed...)
	s.mu.Unlock()
	for _, m := range segs {
		if m.minTime >= cutoffNs {
			continue // segments are time-ordered, nothing older follows
		}
		var kept []Entry
		nm := segMeta{path: m.path}
		if m.maxTime >= cutoffNs {
			// Boundary segment: collect the surviving suffix. Sealed
			// segments are strict — corruption here is real damage, and
			// compaction must not quietly shred a damaged trail.
			if _, err := replaySegment(m.path, s.key, tornStrict, func(e Entry) error {
				if e.Time.UnixNano() >= cutoffNs {
					nm.observe(e, len(e.encode()))
					kept = append(kept, e)
				}
				return nil
			}); err != nil {
				return dropped, changed, err
			}
			if nm.count == m.count {
				continue // clock skew within the segment; nothing expired
			}
		}
		if len(kept) == 0 {
			// Every entry expired: drop the segment whole.
			s.compactMu.Lock()
			s.mu.Lock()
			s.dropSealedLocked(m.path)
			s.mu.Unlock()
			rmErr := os.Remove(m.path)
			os.Remove(m.path + idxSuffix)
			s.compactMu.Unlock()
			if rmErr != nil {
				return dropped, changed, rmErr
			}
			dropped += m.count
			changed = true
			continue
		}
		tmp := m.path + ".rewrite"
		if err := writeSegmentFile(tmp, s.key, kept); err != nil {
			os.Remove(tmp)
			return dropped, changed, err
		}
		s.compactMu.Lock()
		if err := os.Rename(tmp, m.path); err != nil {
			s.compactMu.Unlock()
			os.Remove(tmp)
			return dropped, changed, err
		}
		if err := writeSidecar(nm, s.key); err != nil {
			s.compactMu.Unlock()
			return dropped, changed, err
		}
		s.mu.Lock()
		for i := range s.sealed {
			if s.sealed[i].path == m.path {
				s.sealed[i] = nm
				break
			}
		}
		s.mu.Unlock()
		s.compactMu.Unlock()
		dropped += m.count - nm.count
		changed = true
	}
	return dropped, changed, nil
}

// flush pushes buffered frames of the active segment to the OS so a
// concurrent query replay sees every committed batch.
func (s *segmentStore) flush() error {
	s.actMu.Lock()
	defer s.actMu.Unlock()
	if s.closed {
		return nil
	}
	return s.active.Flush()
}

// sync fsyncs the active segment (group commit's stable-storage step).
// actMu is held across the fsync to serialize against seal/close;
// appends never block on it because AppendFrame runs outside actMu.
func (s *segmentStore) sync() error {
	s.actMu.Lock()
	defer s.actMu.Unlock()
	if s.closed {
		return nil
	}
	return s.active.Sync()
}

// snapshot returns the sealed metas plus (when it holds entries) the
// active segment's current summary, reporting whether the last element
// is the active segment. It does NOT flush — the caller flushes only if
// it will actually replay the active file.
func (s *segmentStore) snapshot() ([]segMeta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]segMeta, 0, len(s.sealed)+1)
	out = append(out, s.sealed...)
	if s.actRef.count > 0 {
		return append(out, s.actRef), true
	}
	return out, false
}

// read replays every segment overlapping [fromSeq, toSeq] whose summary
// passes prune (time bounds, actor bloom), delivering matching entries
// in sequence order. keep filters per entry. The active segment — only
// when it actually needs replaying — is flushed first and tolerates a
// torn tail, because the writer may be mid-append past the caller's
// barrier point. Order matters: its meta was captured BEFORE the flush,
// so every batch the meta counts was fully buffered before the flush
// drained it — the replay is guaranteed that many entries' worth of
// complete frames, and anything torn beyond them is a concurrent append
// still in flight, never the frames the meta vouches for. Queries
// answered entirely from sealed (synced, summarized) segments skip the
// flush and never contend with the writer's group-commit fsync.
func (s *segmentStore) read(fromSeq, toSeq uint64, prune func(*segMeta) bool, keep func(Entry) bool, fn func(Entry)) error {
	if fromSeq > toSeq {
		return nil
	}
	// Shared with the compactor: it may not rename or delete a sealed
	// file while this replay walks the list.
	s.compactMu.RLock()
	defer s.compactMu.RUnlock()
	segs, activeLast := s.snapshot()
	for i, m := range segs {
		if !m.overlapsSeq(fromSeq, toSeq) || !prune(&m) {
			continue
		}
		mode := tornStrict
		if activeLast && i == len(segs)-1 {
			mode = tornTail
			if err := s.flush(); err != nil {
				return err
			}
		}
		_, err := replaySegment(m.path, s.key, mode, func(e Entry) error {
			if e.Seq >= fromSeq && e.Seq <= toSeq && keep(e) {
				fn(e)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// activeMinSeq returns the lowest sequence held by the active segment,
// or 0 when it is empty.
func (s *segmentStore) activeMinSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.actRef.count == 0 {
		return 0
	}
	return s.actRef.minSeq
}

// segments reports how many on-disk segments exist (active included).
func (s *segmentStore) segments() int64 {
	s.actMu.Lock()
	open := !s.closed
	s.actMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	n := int64(len(s.sealed))
	if open {
		n++
	}
	return n
}

// restoredCounters sums the recovered segments' entry and byte counts.
func (s *segmentStore) restoredCounters() (maxSeq uint64, count, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range s.sealed {
		if m.maxSeq > maxSeq {
			maxSeq = m.maxSeq
		}
		count += m.count
		bytes += m.bytes
	}
	return maxSeq, count, bytes
}

// close seals the active segment (making the whole trail durable and
// sidecar-indexed) and marks the store closed. Idempotent.
func (s *segmentStore) close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	err := s.seal()
	s.actMu.Lock()
	s.closed = true
	if s.active != nil {
		s.active.Close()
		s.mu.Lock()
		fresh := s.actRef.count == 0
		path := s.actRef.path
		s.mu.Unlock()
		// On a clean seal the remaining active segment is the fresh,
		// empty one seal just opened — remove it so a closed trail
		// leaves only sealed, summarized segments behind. If seal
		// FAILED, actRef still names the data-bearing segment: never
		// remove it (the next Open recovers it by replay).
		if err == nil && fresh {
			os.Remove(path)
		}
		s.active = nil
	}
	s.actMu.Unlock()
	return err
}

// Replay reads all entries of the trail rooted at path (surviving
// process restarts — the on-disk trail is the compliance artifact). The
// last segment may have a torn tail (crash); earlier segments must be
// intact.
func Replay(path string, key []byte, fn func(Entry) error) error {
	nums, err := listSegments(path)
	if err != nil {
		return err
	}
	if len(nums) == 0 {
		// Distinguish "no trail" from "empty trail" like os.Open would.
		if _, err := os.Stat(filepath.Dir(path)); err != nil {
			return fmt.Errorf("audit: replay %s: %w", path, err)
		}
		return nil
	}
	for i, n := range nums {
		mode := tornStrict
		if i == len(nums)-1 {
			mode = tornTail
		}
		if _, err := replaySegment(segPath(path, n), key, mode, fn); err != nil {
			return err
		}
	}
	return nil
}

package audit

import "repro/internal/obs"

// Retention-compaction duration, reported to the process-wide registry
// (fires per background pass, never on the append path). The pipeline's
// own counters — appends, bytes, batches, flushes, queue depth — reach the
// registry through the collector core.Wrap registers around Log.Stats.
var obsCompactionNs = obs.Default().Histogram("audit_compaction_duration_ns")

package audit

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/clock"
	"repro/internal/securefs"
)

// pipelines is the append-path matrix most behavior tests sweep: every
// mode must produce the same observable trail.
var pipelines = []Pipeline{PipeSync, PipeBatched, PipeAsync}

func forEachPipeline(t *testing.T, fn func(t *testing.T, pipe Pipeline)) {
	t.Helper()
	for _, pipe := range pipelines {
		t.Run(pipe.String(), func(t *testing.T) { fn(t, pipe) })
	}
}

func memLog(t *testing.T, clk clock.Clock) *Log {
	t.Helper()
	return memLogPipe(t, clk, PipeSync)
}

func memLogPipe(t *testing.T, clk clock.Clock, pipe Pipeline) *Log {
	t.Helper()
	l, err := Open(Config{Clock: clk, Pipeline: pipe})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func mustRange(t *testing.T, l *Log, from, to time.Time) []Entry {
	t.Helper()
	out, err := l.Range(from, to)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func mustTail(t *testing.T, l *Log, n int) []Entry {
	t.Helper()
	out, err := l.Tail(n)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func mustByActor(t *testing.T, l *Log, actor string) []Entry {
	t.Helper()
	out, err := l.ByActor(actor)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendAssignsSeqAndTime(t *testing.T) {
	forEachPipeline(t, func(t *testing.T, pipe Pipeline) {
		sim := clock.NewSim(time.Time{})
		l := memLogPipe(t, sim, pipe)
		e1, err := l.Append(Entry{Actor: "customer:neo", Op: "READ"})
		if err != nil {
			t.Fatal(err)
		}
		sim.Advance(time.Second)
		e2, err := l.Append(Entry{Actor: "customer:neo", Op: "READ"})
		if err != nil {
			t.Fatal(err)
		}
		if e1.Seq != 1 || e2.Seq != 2 {
			t.Fatalf("seqs = %d, %d", e1.Seq, e2.Seq)
		}
		if !e2.Time.After(e1.Time) {
			t.Fatalf("times not increasing: %v then %v", e1.Time, e2.Time)
		}
		if l.Total() != 2 {
			t.Fatalf("total = %d", l.Total())
		}
		if l.Bytes() <= 0 {
			t.Fatalf("bytes = %d", l.Bytes())
		}
	})
}

func TestRangeQuery(t *testing.T) {
	forEachPipeline(t, func(t *testing.T, pipe Pipeline) {
		sim := clock.NewSim(time.Time{})
		start := sim.Now()
		l := memLogPipe(t, sim, pipe)
		for i := 0; i < 10; i++ {
			sim.Advance(time.Minute)
			if _, err := l.Append(Entry{Op: fmt.Sprintf("op%d", i)}); err != nil {
				t.Fatal(err)
			}
		}
		// Entries are at minutes 1..10; select [3m, 7m].
		got := mustRange(t, l, start.Add(3*time.Minute), start.Add(7*time.Minute))
		if len(got) != 5 {
			t.Fatalf("range size = %d, want 5", len(got))
		}
		if got[0].Op != "op2" || got[4].Op != "op6" {
			t.Fatalf("range = %v..%v", got[0].Op, got[4].Op)
		}
		if n := len(mustRange(t, l, start.Add(time.Hour), start.Add(2*time.Hour))); n != 0 {
			t.Fatalf("empty range size = %d", n)
		}
	})
}

func TestTailAndByActor(t *testing.T) {
	forEachPipeline(t, func(t *testing.T, pipe Pipeline) {
		l := memLogPipe(t, clock.NewSim(time.Time{}), pipe)
		for i := 0; i < 5; i++ {
			actor := "a"
			if i%2 == 0 {
				actor = "b"
			}
			l.Append(Entry{Actor: actor, Op: fmt.Sprintf("op%d", i)})
		}
		tail := mustTail(t, l, 2)
		if len(tail) != 2 || tail[0].Op != "op3" || tail[1].Op != "op4" {
			t.Fatalf("tail = %v", tail)
		}
		if got := mustTail(t, l, 100); len(got) != 5 {
			t.Fatalf("tail overshoot = %d", len(got))
		}
		if got := mustByActor(t, l, "b"); len(got) != 3 {
			t.Fatalf("by actor = %d, want 3", len(got))
		}
	})
}

// TestMemoryCapEvictsButKeepsDisk pins the tentpole property: eviction
// bounds memory, not query results — evicted history is read back from
// the segment store.
func TestMemoryCapEvictsButKeepsDisk(t *testing.T) {
	forEachPipeline(t, func(t *testing.T, pipe Pipeline) {
		dir := t.TempDir()
		path := filepath.Join(dir, "audit.log")
		sim := clock.NewSim(time.Time{})
		l, err := Open(Config{Path: path, Clock: sim, MemoryCap: 100, Pipeline: pipe})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			if _, err := l.Append(Entry{Op: fmt.Sprintf("op%d", i)}); err != nil {
				t.Fatal(err)
			}
		}
		if l.Total() != 500 {
			t.Fatalf("total = %d", l.Total())
		}
		if err := l.Sync(); err != nil { // barrier: async staging drained
			t.Fatal(err)
		}
		// The in-memory tail is bounded...
		tail, start := l.tailSnapshot()
		if len(tail) > 100 {
			t.Fatalf("in-memory entries = %d, want <= 100", len(tail))
		}
		if start <= 1 {
			t.Fatalf("nothing was evicted (memStart=%d) — test is vacuous", start)
		}
		// ...but queries still see the whole trail.
		if got := mustTail(t, l, 1000); len(got) != 500 {
			t.Fatalf("Tail across eviction = %d entries, want 500", len(got))
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		var n int
		var lastSeq uint64
		if err := Replay(path, nil, func(e Entry) error {
			n++
			if e.Seq <= lastSeq {
				return fmt.Errorf("seq not increasing: %d after %d", e.Seq, lastSeq)
			}
			lastSeq = e.Seq
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if n != 500 {
			t.Fatalf("disk entries = %d, want 500", n)
		}
	})
}

func TestEncryptedPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.enc")
	key := securefs.Key("audit")
	l, err := Open(Config{Path: path, Key: key, Clock: clock.NewSim(time.Time{}), Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Entry{Actor: "regulator:dpa", Op: "GET-SYSTEM-LOGS", Target: "t0..t1", OK: true}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var got []Entry
	if err := Replay(path, key, func(e Entry) error { got = append(got, e); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Actor != "regulator:dpa" || !got[0].OK {
		t.Fatalf("replayed = %+v", got)
	}
	// Wrong key must fail, not silently read as an empty trail.
	if err := Replay(path, securefs.Key("other"), func(Entry) error { return nil }); err == nil {
		t.Fatal("wrong key should fail")
	}
}

func TestEntryEncodingEscapes(t *testing.T) {
	e := Entry{
		Seq: 7, Time: time.Unix(1, 2).UTC(),
		Actor: "a\tb", Op: "o\np", Target: `t\q`, OK: true, Note: "n\t\n\\",
	}
	got, err := decodeEntry(e.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, e)
	}
}

func TestEntryEncodingProperty(t *testing.T) {
	f := func(actor, op, target, note string, ok bool, seq uint64, ns int64) bool {
		e := Entry{Seq: seq, Time: time.Unix(0, ns).UTC(), Actor: actor, Op: op, Target: target, OK: ok, Note: note}
		got, err := decodeEntry(e.encode())
		return err == nil && got == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchEncodingRoundTrip(t *testing.T) {
	batch := []Entry{
		{Seq: 1, Time: time.Unix(0, 5).UTC(), Actor: "a\nb", Op: "x"},
		{Seq: 2, Time: time.Unix(0, 6).UTC(), Actor: "c", Op: "y\t", Note: "multi\nline"},
		{Seq: 3, Time: time.Unix(0, 7).UTC(), OK: true},
	}
	frame, lens := encodeBatch(batch)
	for i := range batch {
		if lens[i] != len(batch[i].encode()) {
			t.Fatalf("entry %d encoded length = %d, want %d", i, lens[i], len(batch[i].encode()))
		}
	}
	var got []Entry
	if err := decodeBatch(frame, func(e Entry) error {
		got = append(got, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(batch) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(batch))
	}
	for i := range batch {
		if got[i] != batch[i] {
			t.Fatalf("entry %d mismatch:\n got %+v\nwant %+v", i, got[i], batch[i])
		}
	}
}

func TestDecodeEntryErrors(t *testing.T) {
	bad := []string{"", "1\t2", "x\t2\ta\to\tt\t1\tn", "1\tx\ta\to\tt\t1\tn"}
	for _, s := range bad {
		if _, err := decodeEntry([]byte(s)); err == nil {
			t.Fatalf("decodeEntry(%q) should fail", s)
		}
	}
}

func TestEverySecSyncsAndSurvivesReplay(t *testing.T) {
	forEachPipeline(t, func(t *testing.T, pipe Pipeline) {
		path := filepath.Join(t.TempDir(), "audit.log")
		sim := clock.NewSim(time.Time{})
		l, err := Open(Config{Path: path, Clock: sim, Policy: SyncEverySec, Pipeline: pipe})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		for i := 0; i < 10; i++ {
			sim.Advance(50 * time.Millisecond)
			if _, err := l.Append(Entry{Op: "x"}); err != nil {
				t.Fatal(err)
			}
		}
		sim.Advance(2 * time.Second)
		if _, err := l.Append(Entry{Op: "y"}); err != nil {
			t.Fatal(err)
		}
		// All 11 entries must survive an explicit close→replay.
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		n := 0
		if err := Replay(path, nil, func(Entry) error { n++; return nil }); err != nil {
			t.Fatal(err)
		}
		if n != 11 {
			t.Fatalf("entries = %d, want 11", n)
		}
	})
}

func TestAppendAfterCloseFails(t *testing.T) {
	forEachPipeline(t, func(t *testing.T, pipe Pipeline) {
		l := memLogPipe(t, nil, pipe)
		l.Close()
		if _, err := l.Append(Entry{}); err == nil {
			t.Fatal("append after close should fail")
		}
		if err := l.Close(); err != nil {
			t.Fatalf("double close: %v", err)
		}
	})
}

func TestConcurrentAppendsKeepSeqDense(t *testing.T) {
	forEachPipeline(t, func(t *testing.T, pipe Pipeline) {
		l := memLogPipe(t, nil, pipe)
		var wg sync.WaitGroup
		const workers, per = 8, 250
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					if _, err := l.Append(Entry{Op: "c"}); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		if l.Total() != workers*per {
			t.Fatalf("total = %d", l.Total())
		}
		seen := map[uint64]bool{}
		for _, e := range mustTail(t, l, workers*per) {
			if seen[e.Seq] {
				t.Fatalf("duplicate seq %d", e.Seq)
			}
			seen[e.Seq] = true
		}
		if len(seen) != workers*per {
			t.Fatalf("distinct seqs = %d", len(seen))
		}
	})
}

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{SyncNone: "none", SyncEverySec: "everysec", SyncAlways: "always", Policy(9): "Policy(9)"} {
		if p.String() != want {
			t.Fatalf("%d.String() = %q", int(p), p.String())
		}
	}
}

func TestPipelineStringAndParse(t *testing.T) {
	for p, want := range map[Pipeline]string{PipeSync: "sync", PipeBatched: "batched", PipeAsync: "async", Pipeline(9): "Pipeline(9)"} {
		if p.String() != want {
			t.Fatalf("%d.String() = %q", int(p), p.String())
		}
	}
	for _, s := range []string{"sync", "batched", "async"} {
		p, err := ParsePipeline(s)
		if err != nil || p.String() != s {
			t.Fatalf("ParsePipeline(%q) = %v, %v", s, p, err)
		}
	}
	if _, err := ParsePipeline("bogus"); err == nil {
		t.Fatal("bogus pipeline should fail to parse")
	}
}

func TestSyncOnMemoryOnlyLogIsNoop(t *testing.T) {
	l := memLog(t, nil)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestRangeBoundsInclusive(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	l := memLog(t, sim)
	sim.Advance(time.Minute)
	e, _ := l.Append(Entry{Op: "only"})
	got := mustRange(t, l, e.Time, e.Time)
	if len(got) != 1 {
		t.Fatalf("inclusive range = %d entries", len(got))
	}
}

func BenchmarkAppendMemoryOnly(b *testing.B) {
	for _, pipe := range pipelines {
		b.Run(pipe.String(), func(b *testing.B) {
			l, err := Open(Config{Pipeline: pipe})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			e := Entry{Actor: "processor:p1", Op: "READ-DATA-BY-KEY", Target: "user1234"}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(e); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAppendPersistentEverySec(b *testing.B) {
	for _, pipe := range pipelines {
		b.Run(pipe.String(), func(b *testing.B) {
			l, err := Open(Config{Path: filepath.Join(b.TempDir(), "a.log"), Policy: SyncEverySec, Pipeline: pipe})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			e := Entry{Actor: "processor:p1", Op: "READ-DATA-BY-KEY", Target: strings.Repeat("k", 16)}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(e); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

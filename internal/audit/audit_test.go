package audit

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/clock"
	"repro/internal/securefs"
)

func memLog(t *testing.T, clk clock.Clock) *Log {
	t.Helper()
	l, err := Open(Config{Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func TestAppendAssignsSeqAndTime(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	l := memLog(t, sim)
	e1, err := l.Append(Entry{Actor: "customer:neo", Op: "READ"})
	if err != nil {
		t.Fatal(err)
	}
	sim.Advance(time.Second)
	e2, err := l.Append(Entry{Actor: "customer:neo", Op: "READ"})
	if err != nil {
		t.Fatal(err)
	}
	if e1.Seq != 1 || e2.Seq != 2 {
		t.Fatalf("seqs = %d, %d", e1.Seq, e2.Seq)
	}
	if !e2.Time.After(e1.Time) {
		t.Fatalf("times not increasing: %v then %v", e1.Time, e2.Time)
	}
	if l.Total() != 2 {
		t.Fatalf("total = %d", l.Total())
	}
	if l.Bytes() <= 0 {
		t.Fatalf("bytes = %d", l.Bytes())
	}
}

func TestRangeQuery(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	start := sim.Now()
	l := memLog(t, sim)
	for i := 0; i < 10; i++ {
		sim.Advance(time.Minute)
		if _, err := l.Append(Entry{Op: fmt.Sprintf("op%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Entries are at minutes 1..10; select [3m, 7m].
	got := l.Range(start.Add(3*time.Minute), start.Add(7*time.Minute))
	if len(got) != 5 {
		t.Fatalf("range size = %d, want 5", len(got))
	}
	if got[0].Op != "op2" || got[4].Op != "op6" {
		t.Fatalf("range = %v..%v", got[0].Op, got[4].Op)
	}
	if n := len(l.Range(start.Add(time.Hour), start.Add(2*time.Hour))); n != 0 {
		t.Fatalf("empty range size = %d", n)
	}
}

func TestTailAndByActor(t *testing.T) {
	l := memLog(t, clock.NewSim(time.Time{}))
	for i := 0; i < 5; i++ {
		actor := "a"
		if i%2 == 0 {
			actor = "b"
		}
		l.Append(Entry{Actor: actor, Op: fmt.Sprintf("op%d", i)})
	}
	tail := l.Tail(2)
	if len(tail) != 2 || tail[0].Op != "op3" || tail[1].Op != "op4" {
		t.Fatalf("tail = %v", tail)
	}
	if got := l.Tail(100); len(got) != 5 {
		t.Fatalf("tail overshoot = %d", len(got))
	}
	if got := l.ByActor("b"); len(got) != 3 {
		t.Fatalf("by actor = %d, want 3", len(got))
	}
}

func TestMemoryCapEvictsButKeepsDisk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.log")
	sim := clock.NewSim(time.Time{})
	l, err := Open(Config{Path: path, Clock: sim, MemoryCap: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := l.Append(Entry{Op: fmt.Sprintf("op%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if l.Total() != 500 {
		t.Fatalf("total = %d", l.Total())
	}
	if got := len(l.Tail(1000)); got > 100 {
		t.Fatalf("in-memory entries = %d, want <= 100", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var n int
	var lastSeq uint64
	if err := Replay(path, nil, func(e Entry) error {
		n++
		if e.Seq <= lastSeq {
			return fmt.Errorf("seq not increasing: %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 500 {
		t.Fatalf("disk entries = %d, want 500", n)
	}
}

func TestEncryptedPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.enc")
	key := securefs.Key("audit")
	l, err := Open(Config{Path: path, Key: key, Clock: clock.NewSim(time.Time{}), Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Entry{Actor: "regulator:dpa", Op: "GET-SYSTEM-LOGS", Target: "t0..t1", OK: true}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var got []Entry
	if err := Replay(path, key, func(e Entry) error { got = append(got, e); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Actor != "regulator:dpa" || !got[0].OK {
		t.Fatalf("replayed = %+v", got)
	}
	// Wrong key must fail.
	if err := Replay(path, securefs.Key("other"), func(Entry) error { return nil }); err == nil {
		t.Fatal("wrong key should fail")
	}
}

func TestEntryEncodingEscapes(t *testing.T) {
	e := Entry{
		Seq: 7, Time: time.Unix(1, 2).UTC(),
		Actor: "a\tb", Op: "o\np", Target: `t\q`, OK: true, Note: "n\t\n\\",
	}
	got, err := decodeEntry(e.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, e)
	}
}

func TestEntryEncodingProperty(t *testing.T) {
	f := func(actor, op, target, note string, ok bool, seq uint64, ns int64) bool {
		e := Entry{Seq: seq, Time: time.Unix(0, ns).UTC(), Actor: actor, Op: op, Target: target, OK: ok, Note: note}
		got, err := decodeEntry(e.encode())
		return err == nil && got == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeEntryErrors(t *testing.T) {
	bad := []string{"", "1\t2", "x\t2\ta\to\tt\t1\tn", "1\tx\ta\to\tt\t1\tn"}
	for _, s := range bad {
		if _, err := decodeEntry([]byte(s)); err == nil {
			t.Fatalf("decodeEntry(%q) should fail", s)
		}
	}
}

func TestEverySecSyncsOncePerSecond(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	sim := clock.NewSim(time.Time{})
	l, err := Open(Config{Path: path, Clock: sim, Policy: SyncEverySec})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Several appends within one second: no forced sync needed for
	// correctness here, just exercise the path.
	for i := 0; i < 10; i++ {
		sim.Advance(50 * time.Millisecond)
		if _, err := l.Append(Entry{Op: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	sim.Advance(2 * time.Second)
	if _, err := l.Append(Entry{Op: "y"}); err != nil {
		t.Fatal(err)
	}
	// All 11 entries must survive an explicit close→replay.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := Replay(path, nil, func(Entry) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 11 {
		t.Fatalf("entries = %d, want 11", n)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	l := memLog(t, nil)
	l.Close()
	if _, err := l.Append(Entry{}); err == nil {
		t.Fatal("append after close should fail")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestConcurrentAppendsKeepSeqDense(t *testing.T) {
	l := memLog(t, nil)
	var wg sync.WaitGroup
	const workers, per = 8, 250
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Append(Entry{Op: "c"}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if l.Total() != workers*per {
		t.Fatalf("total = %d", l.Total())
	}
	seen := map[uint64]bool{}
	for _, e := range l.Tail(workers * per) {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
	if len(seen) != workers*per {
		t.Fatalf("distinct seqs = %d", len(seen))
	}
}

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{SyncNone: "none", SyncEverySec: "everysec", SyncAlways: "always", Policy(9): "Policy(9)"} {
		if p.String() != want {
			t.Fatalf("%d.String() = %q", int(p), p.String())
		}
	}
}

func TestSyncOnMemoryOnlyLogIsNoop(t *testing.T) {
	l := memLog(t, nil)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestRangeBoundsInclusive(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	l := memLog(t, sim)
	sim.Advance(time.Minute)
	e, _ := l.Append(Entry{Op: "only"})
	got := l.Range(e.Time, e.Time)
	if len(got) != 1 {
		t.Fatalf("inclusive range = %d entries", len(got))
	}
}

func BenchmarkAppendMemoryOnly(b *testing.B) {
	l, err := Open(Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	e := Entry{Actor: "processor:p1", Op: "READ-DATA-BY-KEY", Target: "user1234"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendPersistentEverySec(b *testing.B) {
	l, err := Open(Config{Path: filepath.Join(b.TempDir(), "a.log"), Policy: SyncEverySec})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	e := Entry{Actor: "processor:p1", Op: "READ-DATA-BY-KEY", Target: strings.Repeat("k", 16)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(e); err != nil {
			b.Fatal(err)
		}
	}
}

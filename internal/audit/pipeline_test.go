package audit

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/securefs"
)

// appendScript writes a deterministic mixed-actor trail on a simulated
// clock and returns the entries exactly as stored.
func appendScript(t *testing.T, l *Log, sim *clock.Sim, n int) []Entry {
	t.Helper()
	out := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		sim.Advance(time.Second)
		e, err := l.Append(Entry{
			Actor:  fmt.Sprintf("customer:u%d", i%7),
			Op:     fmt.Sprintf("OP-%d", i%3),
			Target: fmt.Sprintf("rec-%04d", i),
			OK:     i%5 != 0,
			Note:   "n=1",
		})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, e)
	}
	// Seq and Time are final when Append returns even in async mode;
	// Sync just forces the trail caught up and on disk before queries.
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	return out
}

func entriesEqual(t *testing.T, what string, got, want []Entry) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d entries, want %d", what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: entry %d = %+v, want %+v", what, i, got[i], want[i])
		}
	}
}

// TestPipelineModesProduceIdenticalTrails pins that sync, batched and
// async are observationally equivalent: same sequences, same timestamps,
// same query results, same replayed disk content.
func TestPipelineModesProduceIdenticalTrails(t *testing.T) {
	type trail struct {
		appended []Entry
		all      []Entry
		byActor  []Entry
		tail     []Entry
		replayed []Entry
	}
	run := func(pipe Pipeline) trail {
		sim := clock.NewSim(time.Time{})
		epoch := sim.Now()
		path := filepath.Join(t.TempDir(), "trail.log")
		l, err := Open(Config{Path: path, Clock: sim, Pipeline: pipe, MemoryCap: 40, SegmentBytes: 1 << 10})
		if err != nil {
			t.Fatal(err)
		}
		var tr trail
		tr.appended = appendScript(t, l, sim, 200)
		tr.all = mustRange(t, l, epoch, sim.Now())
		tr.byActor = mustByActor(t, l, "customer:u3")
		tr.tail = mustTail(t, l, 50)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		if err := Replay(path, nil, func(e Entry) error {
			tr.replayed = append(tr.replayed, e)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	want := run(PipeSync)
	if len(want.byActor) == 0 || len(want.all) != 200 || len(want.replayed) != 200 {
		t.Fatalf("sync baseline is vacuous: %d/%d/%d", len(want.all), len(want.byActor), len(want.replayed))
	}
	for _, pipe := range []Pipeline{PipeBatched, PipeAsync} {
		got := run(pipe)
		entriesEqual(t, pipe.String()+" appended", got.appended, want.appended)
		entriesEqual(t, pipe.String()+" range", got.all, want.all)
		entriesEqual(t, pipe.String()+" by-actor", got.byActor, want.byActor)
		entriesEqual(t, pipe.String()+" tail", got.tail, want.tail)
		entriesEqual(t, pipe.String()+" replay", got.replayed, want.replayed)
	}
}

// TestQueriesIdenticalAcrossEvictionAndReopen is the eviction/restart
// regression: Range, ByActor and Tail must return identical results
// before MemoryCap eviction, after it, and across a close/reopen that
// recovers the trail from its segments.
func TestQueriesIdenticalAcrossEvictionAndReopen(t *testing.T) {
	forEachPipeline(t, func(t *testing.T, pipe Pipeline) {
		path := filepath.Join(t.TempDir(), "trail.log")
		sim := clock.NewSim(time.Time{})
		epoch := sim.Now()
		l, err := Open(Config{Path: path, Clock: sim, Pipeline: pipe, MemoryCap: 64, SegmentBytes: 2 << 10})
		if err != nil {
			t.Fatal(err)
		}

		// Phase 1: under the cap — snapshot the pre-eviction answers.
		first := appendScript(t, l, sim, 50)
		preAll := mustRange(t, l, epoch, sim.Now())
		preActor := mustByActor(t, l, "customer:u2")
		entriesEqual(t, "pre-eviction range", preAll, first)

		// Phase 2: push far past the cap. The phase-1 answers must not
		// change: eviction moves entries out of memory, not out of the
		// trail.
		appendScript(t, l, sim, 400)
		if _, start := l.tailSnapshot(); start <= 1 {
			t.Fatal("nothing was evicted — test is vacuous")
		}
		horizon := first[len(first)-1].Time
		entriesEqual(t, "post-eviction range", mustRange(t, l, epoch, horizon), first)
		entriesEqual(t, "post-eviction by-actor",
			filterActor(mustRange(t, l, epoch, horizon), "customer:u2"), preActor)

		fullAll := mustRange(t, l, epoch, sim.Now())
		fullActor := mustByActor(t, l, "customer:u2")
		fullTail := mustTail(t, l, 120)
		if len(fullAll) != 450 {
			t.Fatalf("full range = %d entries, want 450", len(fullAll))
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		// Phase 3: reopen — the recovered trail must answer identically.
		re, err := Open(Config{Path: path, Clock: sim, Pipeline: pipe, MemoryCap: 64})
		if err != nil {
			t.Fatal(err)
		}
		defer re.Close()
		entriesEqual(t, "reopened range", mustRange(t, re, epoch, sim.Now()), fullAll)
		entriesEqual(t, "reopened by-actor", mustByActor(t, re, "customer:u2"), fullActor)
		entriesEqual(t, "reopened tail", mustTail(t, re, 120), fullTail)
		if re.Total() != 450 {
			t.Fatalf("reopened total = %d, want 450", re.Total())
		}

		// The sequence continues, never reuses.
		e, err := re.Append(Entry{Op: "after-reopen"})
		if err != nil {
			t.Fatal(err)
		}
		if e.Seq != 451 {
			t.Fatalf("post-reopen seq = %d, want 451", e.Seq)
		}
	})
}

func filterActor(entries []Entry, actor string) []Entry {
	var out []Entry
	for _, e := range entries {
		if e.Actor == actor {
			out = append(out, e)
		}
	}
	return out
}

// TestSegmentRolloverAndSidecarRecovery forces multiple segments, then
// deletes every sidecar summary so reopen must rebuild the metas by
// replaying the segments.
func TestSegmentRolloverAndSidecarRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trail.log")
	sim := clock.NewSim(time.Time{})
	epoch := sim.Now()
	l, err := Open(Config{Path: path, Clock: sim, Pipeline: PipeBatched, SegmentBytes: 1 << 10, MemoryCap: 32})
	if err != nil {
		t.Fatal(err)
	}
	appendScript(t, l, sim, 300)
	if segs := l.Stats().Segments; segs < 3 {
		t.Fatalf("segments = %d, want rollover (>= 3)", segs)
	}
	want := mustRange(t, l, epoch, sim.Now())
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	idx, err := filepath.Glob(path + ".*" + idxSuffix)
	if err != nil || len(idx) == 0 {
		t.Fatalf("no sidecars found (err=%v)", err)
	}
	for _, p := range idx {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}

	re, err := Open(Config{Path: path, Clock: sim, Pipeline: PipeBatched})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	entriesEqual(t, "rebuilt-from-replay range", mustRange(t, re, epoch, sim.Now()), want)
}

// TestCrashTornTailRecovers truncates the last segment mid-frame (a
// crash tear) and checks reopen keeps the intact prefix and continues
// the sequence.
func TestCrashTornTailRecovers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trail.log")
	sim := clock.NewSim(time.Time{})
	l, err := Open(Config{Path: path, Clock: sim, Pipeline: PipeSync, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	appendScript(t, l, sim, 40)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(path + ".*" + segSuffix)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments (err=%v)", err)
	}
	last := segs[len(segs)-1]
	// A sealed segment's sidecar would mask the tear; drop it like the
	// crash (which never wrote one) and shave bytes off the tail.
	os.Remove(last + idxSuffix)
	st, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, st.Size()-7); err != nil {
		t.Fatal(err)
	}

	re, err := Open(Config{Path: path, Clock: sim, Pipeline: PipeSync})
	if err != nil {
		t.Fatal(err)
	}
	total := re.Total()
	if total == 0 || total >= 40 {
		t.Fatalf("recovered total = %d, want a proper prefix of 40", total)
	}
	e, err := re.Append(Entry{Op: "post-crash"})
	if err != nil {
		t.Fatal(err)
	}
	if e.Seq != uint64(total)+1 {
		t.Fatalf("post-crash seq = %d, want %d", e.Seq, total+1)
	}
	// Recovery must have REPAIRED the torn segment: now that it is no
	// longer the last one, queries replay it strictly, and so does the
	// next Open — both used to fail with a corrupt-frame error.
	all, err := re.Range(time.Time{}, sim.Now().Add(time.Hour))
	if err != nil {
		t.Fatalf("range across the recovered segment: %v", err)
	}
	if int64(len(all)) != total+1 {
		t.Fatalf("range = %d entries, want %d", len(all), total+1)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := Open(Config{Path: path, Clock: sim, Pipeline: PipeSync})
	if err != nil {
		t.Fatalf("second reopen after crash recovery: %v", err)
	}
	defer re2.Close()
	if got := re2.Total(); got != total+1 {
		t.Fatalf("second reopen total = %d, want %d", got, total+1)
	}
}

// TestZeroIntactCorruptionIsSetAsideNotDeleted: a trail whose only
// segment is unreadable from frame 0 (wrong key, real damage) must not
// be destroyed by recovery — the bytes are preserved as .corrupt and
// the log starts empty.
func TestZeroIntactCorruptionIsSetAside(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trail.log")
	seg := segPath(path, 1)
	garbage := []byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4}
	if err := os.WriteFile(seg, garbage, 0o600); err != nil {
		t.Fatal(err)
	}
	l, err := Open(Config{Path: path, Clock: clock.NewSim(time.Time{})})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := l.Total(); got != 0 {
		t.Fatalf("total = %d, want 0", got)
	}
	kept, err := os.ReadFile(seg + ".corrupt")
	if err != nil {
		t.Fatalf("corrupt bytes were not preserved: %v", err)
	}
	if string(kept) != string(garbage) {
		t.Fatal("preserved .corrupt bytes differ from the original")
	}
}

// TestMemoryOnlyBatchedDurableWaitDoesNotDeadlock pins the fix for a
// deadlock: with no backing store there is no fsync to advance the
// durable watermark, so a PipeBatched+SyncAlways Append must complete
// once the batch is published.
func TestMemoryOnlyBatchedDurableWaitDoesNotDeadlock(t *testing.T) {
	l, err := Open(Config{Policy: SyncAlways, Pipeline: PipeBatched})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan error, 1)
	go func() {
		_, err := l.Append(Entry{Op: "durable"})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("memory-only batched+always append deadlocked")
	}
}

// TestIdleEverySecFlushTimer pins the satellite fix: with SyncEverySec,
// an idle log must still be fsynced by the writer's timer — the old
// implementation only synced when a new append arrived.
func TestIdleEverySecFlushTimer(t *testing.T) {
	forEachPipeline(t, func(t *testing.T, pipe Pipeline) {
		sim := clock.NewSim(time.Time{})
		path := filepath.Join(t.TempDir(), "trail.log")
		l, err := Open(Config{Path: path, Clock: sim, Policy: SyncEverySec, Pipeline: pipe})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		if _, err := l.Append(Entry{Op: "lone"}); err != nil {
			t.Fatal(err)
		}
		if got := l.Stats().Flushes; got != 0 {
			t.Fatalf("flushes before the second elapsed = %d, want 0", got)
		}
		// No further appends: only the frozen clock advances. The timer
		// must drive the flush.
		deadline := time.Now().Add(5 * time.Second)
		for l.Stats().Flushes == 0 {
			sim.Advance(time.Second)
			if time.Now().After(deadline) {
				t.Fatalf("idle log was never fsynced (flushes=0)")
			}
			time.Sleep(time.Millisecond)
		}
	})
}

// TestBackpressureBoundsQueue pins that the staging queue never exceeds
// its configured depth and that appends survive saturation.
func TestBackpressureBoundsQueue(t *testing.T) {
	l, err := Open(Config{Pipeline: PipeAsync, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if _, err := l.Append(Entry{Op: "bp"}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := l.Stats()
	if st.Appended != 2000 {
		t.Fatalf("appended = %d, want 2000", st.Appended)
	}
	if st.MaxQueueDepth == 0 || st.MaxQueueDepth > 8 {
		t.Fatalf("max queue depth = %d, want within (0, 8]", st.MaxQueueDepth)
	}
}

// TestDurableWaitGroupCommit pins PipeBatched+SyncAlways semantics:
// every returned append is covered by an fsync, and concurrent
// committers share flushes (group commit) rather than paying one each.
func TestDurableWaitGroupCommit(t *testing.T) {
	l, err := Open(Config{
		Path:     filepath.Join(t.TempDir(), "trail.log"),
		Policy:   SyncAlways,
		Pipeline: PipeBatched,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(Entry{Op: "first"}); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Flushes; got < 1 {
		t.Fatalf("flushes after a durable-wait append = %d, want >= 1", got)
	}
	var wg sync.WaitGroup
	const workers, per = 8, 25
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Append(Entry{Op: "gc"}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := l.Stats()
	if st.Appended != workers*per+1 {
		t.Fatalf("appended = %d", st.Appended)
	}
	if st.Flushes > st.Appended {
		t.Fatalf("flushes (%d) exceed appends (%d) — group commit broken", st.Flushes, st.Appended)
	}
	t.Logf("group commit: %d appends covered by %d flushes in %d batches",
		st.Appended, st.Flushes, st.Batches)
}

// TestConcurrentAppendRangeRollover is the -race stress: concurrent
// appenders, concurrent Range/Tail/ByActor readers, segment rollover
// underneath, and a lossless dense trail at the end.
func TestConcurrentAppendRangeRollover(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trail.log")
	l, err := Open(Config{
		Path: path, Pipeline: PipeAsync,
		MemoryCap: 64, SegmentBytes: 1 << 10, QueueDepth: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	const writers, per, readers = 8, 200, 3
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := l.Range(time.Time{}, time.Now().Add(time.Hour)); err != nil {
					t.Error(err)
					return
				}
				if _, err := l.Tail(100); err != nil {
					t.Error(err)
					return
				}
				if _, err := l.ByActor(fmt.Sprintf("w%d", r)); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Append(Entry{Actor: fmt.Sprintf("w%d", w), Op: "stress"}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	all, err := l.Tail(writers * per)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != writers*per {
		t.Fatalf("tail = %d entries, want %d", len(all), writers*per)
	}
	for i := 1; i < len(all); i++ {
		if all[i].Seq != all[i-1].Seq+1 {
			t.Fatalf("seq gap: %d after %d", all[i].Seq, all[i-1].Seq)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := Replay(path, nil, func(Entry) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != writers*per {
		t.Fatalf("replayed = %d, want %d", n, writers*per)
	}
}

// TestStickyFailureUnblocksBackpressure pins that after a writer disk
// failure, appends surface the sticky error instead of parking forever
// on backpressure slots the dead writer will never release.
func TestStickyFailureUnblocksBackpressure(t *testing.T) {
	l, err := Open(Config{
		Path: filepath.Join(t.TempDir(), "trail.log"), Pipeline: PipeAsync, QueueDepth: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(Entry{Op: "ok"}); err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("boom: disk gone")
	l.fail(boom)
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Far more appends than QueueDepth: without the failedCh escape
		// these would block once the slots ran out.
		for i := 0; i < 64; i++ {
			if _, err := l.Append(Entry{Op: "post-failure"}); err == nil {
				t.Error("append after sticky failure should error")
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("appends hung on backpressure after a sticky writer failure")
	}
	if _, err := l.Range(time.Time{}, time.Now().Add(time.Hour)); err == nil {
		t.Fatal("queries after sticky failure should surface the error")
	}
}

// TestCloseSealFailureKeepsActiveSegment pins that a failing seal at
// Close never deletes the data-bearing active segment: the trail must
// survive for the next Open to recover.
func TestCloseSealFailureKeepsActiveSegment(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	base := filepath.Join(t.TempDir(), "trail.log")
	l, err := Open(Config{Path: base, Clock: sim, Pipeline: PipeSync})
	if err != nil {
		t.Fatal(err)
	}
	appendScript(t, l, sim, 5)
	l.store.mu.Lock()
	segFile := l.store.actRef.path
	l.store.mu.Unlock()
	// Sabotage: close the underlying file (flushing it) so seal's
	// sync/close fails at Close time.
	l.store.active.Close()
	if err := l.Close(); err == nil {
		t.Fatal("Close with a sabotaged active file should error")
	}
	if _, err := os.Stat(segFile); err != nil {
		t.Fatalf("data-bearing segment was removed on the error path: %v", err)
	}
	re, err := Open(Config{Path: base, Clock: sim})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Total(); got != 5 {
		t.Fatalf("recovered total = %d, want 5", got)
	}
}

// TestLargeBatchIsChunkedIntoFrames pins that one backpressure-deep
// group commit never produces a frame near the securefs ceiling: the
// writer chunks by frameBudget, and the whole batch replays intact.
func TestLargeBatchIsChunkedIntoFrames(t *testing.T) {
	base := filepath.Join(t.TempDir(), "trail.log")
	store, err := openStore(base, nil, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	note := strings.Repeat("n", 1<<10)
	batch := make([]Entry, 3000) // ~3 MiB encoded, ~3x frameBudget
	for i := range batch {
		batch[i] = Entry{Seq: uint64(i + 1), Time: time.Unix(0, int64(i+1)).UTC(), Actor: "a", Op: "big", Note: note}
	}
	if _, err := store.append(batch); err != nil {
		t.Fatal(err)
	}
	if err := store.close(); err != nil {
		t.Fatal(err)
	}
	frames, err := securefs.CountFrames(segPath(base, 1), securefs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if frames < 3 {
		t.Fatalf("frames = %d, want the batch chunked into >= 3", frames)
	}
	var got int
	if err := Replay(base, nil, func(e Entry) error {
		got++
		if e.Seq != uint64(got) {
			return fmt.Errorf("seq %d at position %d", e.Seq, got)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != len(batch) {
		t.Fatalf("replayed %d entries, want %d", got, len(batch))
	}
}

// TestBloomSkipsForeignSegments sanity-checks the per-segment actor
// bloom: an actor that never appears may prune segments but must never
// lose entries for one that does.
func TestBloomSkipsForeignSegments(t *testing.T) {
	var b bloom
	for i := 0; i < 100; i++ {
		b.add(fmt.Sprintf("customer:u%d", i))
	}
	for i := 0; i < 100; i++ {
		if !b.mayContain(fmt.Sprintf("customer:u%d", i)) {
			t.Fatalf("bloom lost customer:u%d", i)
		}
	}
	misses := 0
	for i := 0; i < 1000; i++ {
		if !b.mayContain(fmt.Sprintf("processor:p%d", i)) {
			misses++
		}
	}
	if misses < 900 {
		t.Fatalf("bloom rejects only %d/1000 foreign actors — too dense", misses)
	}
}

package audit

import (
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
)

// The append path is a two-stage pipeline:
//
//	caller ── sequencer ── lock-striped staging ──▶ writer goroutine
//	            (Seq+Time)       (per-stripe mutex)      │
//	                                                     ├─ batch-encode → segment frame
//	                                                     ├─ group fsync (policy-driven)
//	                                                     └─ publish to the memory tail
//
// The sequencer assigns Seq and Time together in one short critical
// section, so sequence order equals time order — the property Range's
// binary search and the replay monotonicity check both rely on. Staging
// then only contends per stripe (seq mod N), so N engines/shards/
// connections submitting concurrently do not serialize behind one
// encode+write lock the way the old single-mutex log did. The writer
// drains the stripes, restores dense sequence order (a producer may be
// preempted between sequencing and staging), writes one batch frame,
// applies the sync policy, and publishes the batch to the in-memory
// tail. Compliance ordering therefore survives the asynchrony: entries
// reach disk and the tail in exact sequence order, and every query
// barriers on the writer having consumed all sequenced entries before
// answering.
//
// Backpressure is a bounded slot semaphore: when QueueDepth entries are
// staged but unwritten, Append blocks until the writer catches up —
// the trail is lossless by construction; only latency degrades.

const (
	defaultMemoryCap    = 1 << 20
	defaultQueueDepth   = 1 << 14
	defaultSegmentBytes = 4 << 20
	numStripes          = 8
	syncInterval        = time.Second
)

var errClosed = errors.New("audit: append to closed log")

// Config configures a Log.
type Config struct {
	// Path is the backing trail's base path; segments are created as
	// Path.NNNNNN.seg (+ .idx summaries). Empty means memory-only.
	Path string
	// Key enables at-rest encryption of the backing segments.
	Key []byte
	// Policy is the fsync policy for the backing segments.
	Policy Policy
	// Pipeline selects the append path: inline (sync), group-committed
	// with caller wait (batched), or fire-and-forget (async).
	Pipeline Pipeline
	// Clock supplies timestamps; defaults to the real clock.
	Clock clock.Clock
	// MemoryCap bounds the in-memory tail kept for fast queries; older
	// entries are evicted from memory but remain queryable from the
	// segment store. 0 means a default of 1<<20 entries.
	MemoryCap int
	// QueueDepth bounds staged-but-unwritten entries in the pipeline
	// modes; a full queue blocks Append (backpressure, never loss).
	// 0 means a default of 1<<14.
	QueueDepth int
	// SegmentBytes rolls the active segment once it holds this many
	// encoded entry bytes. 0 means a default of 4 MiB.
	SegmentBytes int64
	// Retention bounds how long trail entries are kept: whenever a
	// segment seals, a background compaction pass deletes sealed segments
	// whose newest entry is older than Retention and rewrites the one
	// straddling the cutoff (GDPR storage limitation — audit trails are
	// themselves personal data). 0 keeps everything forever.
	Retention time.Duration
}

type stripe struct {
	mu  sync.Mutex
	buf []Entry
	// Pad each stripe past a cache line so adjacent stripe locks do not
	// false-share under concurrent producers.
	_ [64]byte
}

// Log is an append-only audit trail. It is safe for concurrent use.
type Log struct {
	policy Policy
	pipe   Pipeline
	clk    clock.Clock
	memCap int
	store  *segmentStore // nil = memory-only

	// Retention compaction trigger state: one background pass per
	// observed seal, never more than one in flight.
	retention      time.Duration
	compactGen     atomic.Int64
	compactRunning atomic.Bool

	// Sequencer. Guards nextSeq, the closed flag, and the Seq↔Time
	// consistency described above. Deliberately tiny: no encoding or IO
	// ever happens under it.
	seqMu   sync.Mutex
	nextSeq uint64
	closed  bool

	// Staging (pipeline modes only).
	stripes   []stripe
	slots     chan struct{} // backpressure semaphore
	notify    chan struct{} // writer wake-up, capacity 1
	quit      chan struct{}
	done      chan struct{}
	failedCh  chan struct{} // closed on the first sticky error
	hasWriter bool
	failed    atomic.Bool // mirrors werr != nil without taking mu
	maxQueue  atomic.Int64

	// Published state: the memory tail, watermarks and counters. The
	// writer (or the inline sync path) publishes under mu and broadcasts
	// cond; committers and query barriers wait on it.
	mu           sync.Mutex
	cond         *sync.Cond
	entries      []Entry // in-memory tail, ordered by Seq (and Time)
	written      uint64  // highest Seq written (tail + segment file buffer)
	durable      uint64  // highest Seq covered by an fsync
	werr         error   // sticky writer/disk error
	stats        Stats
	lastSync     time.Time
	dirty        bool // segment bytes not yet fsynced
	writerExited bool
}

// Open creates a Log per cfg, recovering any existing segments at
// cfg.Path (their summaries restore the sequence and the counters).
func Open(cfg Config) (*Log, error) {
	l := &Log{policy: cfg.Policy, pipe: cfg.Pipeline, clk: cfg.Clock, memCap: cfg.MemoryCap, retention: cfg.Retention}
	if l.clk == nil {
		l.clk = clock.NewReal()
	}
	if l.memCap <= 0 {
		l.memCap = defaultMemoryCap
	}
	queueDepth := cfg.QueueDepth
	if queueDepth <= 0 {
		queueDepth = defaultQueueDepth
	}
	segBytes := cfg.SegmentBytes
	if segBytes <= 0 {
		segBytes = defaultSegmentBytes
	}
	if cfg.Path != "" {
		store, err := openStore(cfg.Path, cfg.Key, segBytes)
		if err != nil {
			return nil, err
		}
		l.store = store
		maxSeq, count, bytes := store.restoredCounters()
		l.nextSeq = maxSeq
		l.written = maxSeq
		l.durable = maxSeq
		l.stats.Appended = count
		l.stats.Bytes = bytes
	}
	l.cond = sync.NewCond(&l.mu)
	l.lastSync = l.clk.Now()
	l.quit = make(chan struct{})
	l.done = make(chan struct{})
	l.failedCh = make(chan struct{})
	if l.pipe != PipeSync {
		l.stripes = make([]stripe, numStripes)
		l.slots = make(chan struct{}, queueDepth)
	}
	// The writer goroutine drains staging in the pipeline modes; under
	// PipeSync it still runs when a timer-driven everysec flush is
	// needed, so an idle log cannot sit unsynced indefinitely.
	if l.pipe != PipeSync || (l.store != nil && l.policy == SyncEverySec) {
		l.hasWriter = true
		l.notify = make(chan struct{}, 1)
		go l.runWriter()
	}
	return l, nil
}

// Pipeline reports the log's append-path mode.
func (l *Log) Pipeline() Pipeline { return l.pipe }

// SyncPolicy reports the log's fsync policy.
func (l *Log) SyncPolicy() Policy { return l.policy }

// Append records one entry, assigning its sequence number and timestamp,
// and returns the stored entry. Under PipeSync it returns once the entry
// is written (and fsynced per policy); under PipeBatched once the writer
// has group-committed it; under PipeAsync immediately.
func (l *Log) Append(e Entry) (Entry, error) {
	if l.pipe == PipeSync {
		return l.appendSync(e)
	}
	return l.appendStaged(e)
}

// Submit records one entry, discarding the assigned sequence — the
// non-blocking (modulo the pipeline's own semantics) hot-path form the
// compliance middleware uses.
func (l *Log) Submit(e Entry) { _, _ = l.Append(e) }

// appendSync is the legacy inline path: sequence, encode, write and
// fsync all inside the caller, serialized behind the sequencer lock —
// the ablation baseline the pipeline modes are measured against.
func (l *Log) appendSync(e Entry) (Entry, error) {
	l.seqMu.Lock()
	defer l.seqMu.Unlock()
	if l.closed {
		return Entry{}, errClosed
	}
	if l.failed.Load() {
		return Entry{}, l.stickyErr()
	}
	l.nextSeq++
	e.Seq = l.nextSeq
	e.Time = l.clk.Now()
	var encoded int64
	if l.store != nil {
		n, err := l.store.append([]Entry{e})
		if err != nil {
			l.fail(err)
			return e, err
		}
		encoded = n
	} else {
		encoded = int64(len(e.encode()))
	}
	l.publish([]Entry{e}, encoded)
	if l.store != nil {
		l.maybeCompact()
	}
	if l.notify != nil {
		// Nudge the timer flusher: it arms its everysec timer only when
		// it observes dirty bytes.
		select {
		case l.notify <- struct{}{}:
		default:
		}
	}
	if l.store != nil {
		switch l.policy {
		case SyncAlways:
			if err := l.syncTo(e.Seq); err != nil {
				return e, err
			}
		case SyncEverySec:
			l.mu.Lock()
			due := e.Time.Sub(l.lastSync) >= syncInterval
			l.mu.Unlock()
			if due {
				if err := l.syncTo(e.Seq); err != nil {
					return e, err
				}
			}
		}
	}
	return e, nil
}

// appendStaged is the pipeline path: acquire a backpressure slot,
// sequence, stage into a stripe, wake the writer, and wait only as far
// as the mode requires.
func (l *Log) appendStaged(e Entry) (Entry, error) {
	if l.failed.Load() {
		// The writer hit a sticky disk error: slots for entries parked
		// behind the failure are never released again, so acquiring one
		// here could block forever instead of surfacing the error.
		return Entry{}, l.stickyErr()
	}
	select {
	case l.slots <- struct{}{}:
	case <-l.quit:
		return Entry{}, errClosed
	case <-l.failedCh:
		return Entry{}, l.stickyErr()
	}
	if depth := int64(len(l.slots)); depth > l.maxQueue.Load() {
		for {
			m := l.maxQueue.Load()
			if depth <= m || l.maxQueue.CompareAndSwap(m, depth) {
				break
			}
		}
	}
	l.seqMu.Lock()
	if l.closed {
		l.seqMu.Unlock()
		<-l.slots
		return Entry{}, errClosed
	}
	l.nextSeq++
	e.Seq = l.nextSeq
	e.Time = l.clk.Now()
	l.seqMu.Unlock()

	st := &l.stripes[e.Seq%numStripes]
	st.mu.Lock()
	st.buf = append(st.buf, e)
	st.mu.Unlock()
	select {
	case l.notify <- struct{}{}:
	default:
	}

	if l.failed.Load() {
		return e, l.stickyErr()
	}
	if l.pipe == PipeBatched {
		// Durable-wait mode: under SyncAlways the committer returns only
		// once a group fsync covers its entry; otherwise once the writer
		// has batch-written it.
		return e, l.waitSeq(e.Seq, l.policy == SyncAlways)
	}
	return e, nil
}

// waitSeq blocks until the written (or durable) watermark covers target.
func (l *Log) waitSeq(target uint64, durable bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.werr != nil {
			return l.werr
		}
		w := l.written
		if durable {
			w = l.durable
		}
		if w >= target {
			return nil
		}
		if l.writerExited {
			return errClosed
		}
		l.cond.Wait()
	}
}

// barrier waits until every sequenced entry has been consumed by the
// writer, making queries linearizable with respect to completed Appends
// from any goroutine.
func (l *Log) barrier() error {
	if l.pipe == PipeSync {
		return l.stickyErr()
	}
	l.seqMu.Lock()
	target := l.nextSeq
	l.seqMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.written < target && l.werr == nil && !l.writerExited {
		l.cond.Wait()
	}
	return l.werr
}

// publish appends a written batch to the memory tail, advances the
// written watermark and the counters, and wakes committers/barriers.
func (l *Log) publish(batch []Entry, encoded int64) {
	l.mu.Lock()
	l.entries = append(l.entries, batch...)
	if len(l.entries) > l.memCap {
		// Evict the oldest half to amortize copying; evicted entries
		// remain queryable from the segment store.
		keep := l.memCap / 2
		l.entries = append(l.entries[:0:0], l.entries[len(l.entries)-keep:]...)
	}
	l.written = batch[len(batch)-1].Seq
	l.stats.Appended += int64(len(batch))
	l.stats.Bytes += encoded
	l.stats.Batches++
	if l.store != nil {
		l.dirty = true
	} else {
		// A memory-only trail is as durable as it gets the moment it is
		// published; without this, PipeBatched+SyncAlways committers
		// would wait forever on a watermark no fsync will ever advance.
		l.durable = l.written
	}
	l.mu.Unlock()
	l.cond.Broadcast()
}

// syncTo fsyncs the segment store and advances the durable watermark.
func (l *Log) syncTo(target uint64) error {
	if err := l.store.sync(); err != nil {
		l.fail(err)
		return err
	}
	l.mu.Lock()
	l.stats.Flushes++
	if target > l.durable {
		l.durable = target
	}
	l.lastSync = l.clk.Now()
	if l.written == target {
		l.dirty = false
	}
	l.mu.Unlock()
	l.cond.Broadcast()
	return nil
}

// fail records a sticky writer/disk error: the trail is no longer
// trustworthy, so every subsequent append and query surfaces it.
// failedCh additionally unblocks producers parked on the backpressure
// semaphore — after a failure the writer stops releasing slots.
func (l *Log) fail(err error) {
	l.mu.Lock()
	first := l.werr == nil
	if first {
		l.werr = err
	}
	l.mu.Unlock()
	l.failed.Store(true)
	if first && l.failedCh != nil {
		close(l.failedCh)
	}
	l.cond.Broadcast()
}

func (l *Log) stickyErr() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.werr
}

// ---------------------------------------------------------------------------
// Writer goroutine

func (l *Log) runWriter() {
	defer close(l.done)
	reorder := make(map[uint64]Entry)
	var timerCh <-chan time.Time
	for {
		// Arm the idle-flush timer whenever unsynced bytes exist: under
		// SyncEverySec an append-driven check alone would leave an idle
		// log unsynced indefinitely.
		if timerCh == nil && l.store != nil && l.policy == SyncEverySec {
			l.mu.Lock()
			dirty := l.dirty
			l.mu.Unlock()
			if dirty {
				timerCh = l.clk.After(syncInterval)
			}
		}
		select {
		case <-l.quit:
			l.drainStaging(reorder)
			l.mu.Lock()
			l.writerExited = true
			l.mu.Unlock()
			l.cond.Broadcast()
			return
		case <-timerCh:
			timerCh = nil
			l.timedSync()
		case <-l.notify:
			l.consume(reorder)
		}
	}
}

// consume drains the stripes, restores dense sequence order through the
// reorder buffer, and group-commits the contiguous batch. Entries whose
// predecessors are still being staged stay parked until the producer's
// notify triggers the next consume.
func (l *Log) consume(reorder map[uint64]Entry) {
	for i := range l.stripes {
		st := &l.stripes[i]
		st.mu.Lock()
		for _, e := range st.buf {
			reorder[e.Seq] = e
		}
		st.buf = st.buf[:0]
		st.mu.Unlock()
	}
	l.mu.Lock()
	next := l.written + 1
	l.mu.Unlock()
	var batch []Entry
	for {
		e, ok := reorder[next]
		if !ok {
			break
		}
		delete(reorder, next)
		batch = append(batch, e)
		next++
	}
	if len(batch) == 0 {
		return
	}
	l.writeBatch(batch)
	for range batch {
		<-l.slots // release backpressure for written entries
	}
}

// writeBatch writes one group-commit batch and applies the sync policy.
func (l *Log) writeBatch(batch []Entry) {
	var encoded int64
	if l.store != nil {
		n, err := l.store.append(batch)
		if err != nil {
			l.fail(err)
			return
		}
		encoded = n
	} else {
		for _, e := range batch {
			encoded += int64(len(e.encode()))
		}
	}
	last := batch[len(batch)-1].Seq
	l.publish(batch, encoded)
	if l.store == nil {
		return
	}
	l.maybeCompact()
	switch l.policy {
	case SyncAlways:
		_ = l.syncTo(last) // one leader fsync covers the whole batch
	case SyncEverySec:
		l.mu.Lock()
		due := l.clk.Now().Sub(l.lastSync) >= syncInterval
		l.mu.Unlock()
		if due {
			_ = l.syncTo(last)
		}
	}
}

// Compact enforces the retention window now: segments of the on-disk
// trail holding only entries older than Config.Retention are deleted,
// and the segment straddling the cutoff is rewritten without its expired
// prefix. Queries keep running throughout (the swap excludes them only
// for a rename). It returns how many entries were dropped; a log without
// a backing store or a retention window compacts nothing.
func (l *Log) Compact() (int64, error) {
	if l.store == nil || l.retention <= 0 {
		return 0, nil
	}
	start := l.clk.Now()
	defer func() { obsCompactionNs.ObserveDuration(l.clk.Since(start)) }()
	cutoff := start.Add(-l.retention).UnixNano()
	dropped, changed, err := l.store.compact(cutoff)
	if changed {
		// Prune the memory tail to mirror disk: every sealed entry below
		// the cutoff is gone from the trail now, and the tail is its
		// cache. Entries still in the active segment stay — they are
		// reclaimed when that segment seals.
		bound := l.store.activeMinSeq()
		l.mu.Lock()
		i := 0
		for i < len(l.entries) {
			e := l.entries[i]
			if e.Time.UnixNano() >= cutoff || (bound != 0 && e.Seq >= bound) {
				break
			}
			i++
		}
		if i > 0 {
			l.entries = append(l.entries[:0:0], l.entries[i:]...)
		}
		l.stats.Compactions++
		l.stats.CompactedEntries += dropped
		l.mu.Unlock()
	}
	return dropped, err
}

// maybeCompact launches one background retention pass when a segment has
// sealed since the last pass. Compaction failures are swallowed here —
// they never poison the append path — and surface through query errors
// if the trail is genuinely damaged.
func (l *Log) maybeCompact() {
	if l.store == nil || l.retention <= 0 {
		return
	}
	g := l.store.sealGen.Load()
	if g == l.compactGen.Load() {
		return
	}
	if !l.compactRunning.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer l.compactRunning.Store(false)
		l.compactGen.Store(g)
		_, _ = l.Compact()
	}()
}

// timedSync is the idle-flush: fsync if anything is dirty.
func (l *Log) timedSync() {
	l.mu.Lock()
	dirty := l.dirty
	target := l.written
	l.mu.Unlock()
	if !dirty {
		return
	}
	_ = l.syncTo(target)
}

// drainStaging consumes until every sequenced entry is written (Close
// set the closed flag first, so the sequence is frozen; a producer
// preempted between sequencing and staging finishes within a few
// scheduler quanta).
func (l *Log) drainStaging(reorder map[uint64]Entry) {
	for {
		l.consume(reorder)
		if l.failed.Load() {
			return
		}
		l.seqMu.Lock()
		target := l.nextSeq
		l.seqMu.Unlock()
		l.mu.Lock()
		caughtUp := l.written >= target
		l.mu.Unlock()
		if caughtUp {
			return
		}
		runtime.Gosched()
	}
}

// ---------------------------------------------------------------------------
// Queries: disk + memory, correct across eviction and restart

// tailSnapshot returns the current memory tail and the sequence at which
// it starts; entries below it are served from the segment store.
func (l *Log) tailSnapshot() ([]Entry, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	tail := l.entries
	memStart := l.written + 1
	if len(tail) > 0 {
		memStart = tail[0].Seq
	}
	return tail, memStart
}

// Range returns the entries with from <= Time <= to, in order. This
// backs GET-SYSTEM-LOGS (G 33, 34: regulators investigate logs "based on
// time ranges"). Entries evicted from the memory tail are read back from
// the segment store (pruned by per-segment time bounds), so results are
// independent of MemoryCap and survive restarts; a memory-only log can
// only answer from its tail.
func (l *Log) Range(from, to time.Time) ([]Entry, error) {
	if err := l.barrier(); err != nil {
		return nil, err
	}
	tail, memStart := l.tailSnapshot()
	var out []Entry
	if l.store != nil && memStart > 1 {
		err := l.store.read(1, memStart-1,
			func(m *segMeta) bool { return m.overlapsTime(from, to) },
			func(e Entry) bool { return !e.Time.Before(from) && !e.Time.After(to) },
			func(e Entry) { out = append(out, e) })
		if err != nil {
			return nil, err
		}
	}
	lo := sort.Search(len(tail), func(i int) bool {
		return !tail[i].Time.Before(from)
	})
	for _, e := range tail[lo:] {
		if e.Time.After(to) {
			break
		}
		out = append(out, e)
	}
	return out, nil
}

// Tail returns up to n most recent entries, oldest first, reaching into
// the segment store when the memory tail holds fewer than n.
func (l *Log) Tail(n int) ([]Entry, error) {
	if err := l.barrier(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, nil
	}
	tail, memStart := l.tailSnapshot()
	if n <= len(tail) || l.store == nil || memStart <= 1 {
		if n > len(tail) {
			n = len(tail)
		}
		return append([]Entry(nil), tail[len(tail)-n:]...), nil
	}
	// Sequences are dense, so the wanted window is exactly a seq range.
	last := memStart - 1 + uint64(len(tail))
	from := uint64(1)
	if last > uint64(n) {
		from = last - uint64(n) + 1
	}
	var out []Entry
	err := l.store.read(from, memStart-1,
		func(*segMeta) bool { return true },
		func(Entry) bool { return true },
		func(e Entry) { out = append(out, e) })
	if err != nil {
		return nil, err
	}
	out = append(out, tail...)
	if len(out) > n {
		out = out[len(out)-n:]
	}
	return out, nil
}

// ByActor returns entries whose Actor matches, in order. Segments whose
// bloom summary excludes the actor are skipped without being read.
func (l *Log) ByActor(actor string) ([]Entry, error) {
	if err := l.barrier(); err != nil {
		return nil, err
	}
	tail, memStart := l.tailSnapshot()
	var out []Entry
	if l.store != nil && memStart > 1 {
		err := l.store.read(1, memStart-1,
			func(m *segMeta) bool { return m.actors.mayContain(actor) },
			func(e Entry) bool { return e.Actor == actor },
			func(e Entry) { out = append(out, e) })
		if err != nil {
			return nil, err
		}
	}
	for _, e := range tail {
		if e.Actor == actor {
			out = append(out, e)
		}
	}
	return out, nil
}

// Total reports how many entries were ever appended (restored from the
// segment summaries across restarts).
func (l *Log) Total() int64 {
	l.seqMu.Lock()
	defer l.seqMu.Unlock()
	return int64(l.nextSeq)
}

// Bytes reports total encoded entry bytes appended; feeds the
// space-overhead metric.
func (l *Log) Bytes() int64 {
	_ = l.barrier()
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats.Bytes
}

// Stats snapshots the pipeline counters (after a barrier, so they cover
// every accepted entry).
func (l *Log) Stats() Stats {
	_ = l.barrier()
	l.mu.Lock()
	s := l.stats
	s.MaxQueueDepth = l.maxQueue.Load()
	l.mu.Unlock()
	if l.store != nil {
		s.Segments = l.store.segments()
	}
	return s
}

// Sync forces every accepted entry to stable storage.
func (l *Log) Sync() error {
	if err := l.barrier(); err != nil {
		return err
	}
	if l.store == nil {
		l.mu.Lock()
		l.lastSync = l.clk.Now()
		l.mu.Unlock()
		return nil
	}
	l.mu.Lock()
	target := l.written
	l.mu.Unlock()
	return l.syncTo(target)
}

// Close drains the staging pipeline, seals the active segment (flush,
// fsync, sidecar summary) and closes the trail. Close is idempotent;
// queries keep working on the closed log.
func (l *Log) Close() error {
	l.seqMu.Lock()
	if l.closed {
		l.seqMu.Unlock()
		return nil
	}
	l.closed = true
	l.seqMu.Unlock()
	close(l.quit)
	if l.hasWriter {
		<-l.done
	}
	var err error
	if l.store != nil {
		err = l.store.close()
	}
	l.mu.Lock()
	if err == nil {
		err = l.werr
	}
	l.writerExited = true
	l.mu.Unlock()
	l.cond.Broadcast()
	return err
}

package audit

import (
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// Repro: during seal(), the rolled segment is momentarily present in both
// s.sealed and s.actRef (actRef is only reset by openActive at the end),
// so a concurrent snapshot() replays it twice -> duplicate entries.
func TestSealSnapshotDuplicate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trail.log")
	l, err := Open(Config{
		Path: path, Pipeline: PipeAsync, Policy: SyncNone,
		MemoryCap: 8, SegmentBytes: 512, QueueDepth: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	var dups atomic.Int64
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			out, err := l.Range(time.Time{}, time.Now().Add(time.Hour))
			if err != nil {
				t.Error(err)
				return
			}
			seen := make(map[uint64]int, len(out))
			for _, e := range out {
				seen[e.Seq]++
				if seen[e.Seq] > 1 {
					dups.Add(1)
				}
			}
			if dups.Load() > 0 {
				return
			}
		}
	}()
	big := strings.Repeat("x", 120)
	for i := 0; i < 3000; i++ {
		if _, err := l.Append(Entry{Actor: "a", Op: "op", Note: big}); err != nil {
			t.Fatal(err)
		}
		if dups.Load() > 0 {
			break
		}
	}
	close(stop)
	<-done
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if n := dups.Load(); n > 0 {
		t.Fatalf("Range returned %d duplicate-seq entries (segment replayed from both sealed and actRef during seal)", n)
	}
}

// Package index provides the metadata-index layer both storage engines
// consult instead of scanning: an inverted index over the five equality
// metadata dimensions GDPR queries select on (purpose, user, objections,
// decisions, sharing — the BY-PUR/USR/OBJ/DEC/SHR families of §3.3) and a
// B-tree-backed ordered expiry index that makes "everything due by now"
// an O(expired) range scan instead of an O(all-TTL'd-keys) walk.
//
// The structures hold no locks of their own: each engine maintains its
// indexes under its existing lock (the kvstore's single global mutex, the
// relstore's per-table writer lock), so adding indexes changes the cost
// profile of selectors without changing either engine's concurrency
// model. Space is accounted per entry (value component + key + an 8-byte
// pointer, approximating a B-tree leaf entry) so SpaceUsage can report
// the paper's indexing space overhead (Table 3).
package index

import (
	"encoding/binary"
	"math"
	"sort"
	"time"

	"repro/internal/btree"
	"repro/internal/gdpr"
)

// Dims lists the inverted-indexed metadata dimensions: the five equality
// attributes GDPR selectors match on. TTL is ordered, not inverted (see
// Expiry); SRC is deliberately unindexed — its value pool is a handful of
// origins, so a posting list would be a constant fraction of the keyspace
// and the scan is as good.
var Dims = []gdpr.Attribute{
	gdpr.AttrPurpose, gdpr.AttrUser, gdpr.AttrObjection, gdpr.AttrDecision, gdpr.AttrSharing,
}

// IsDim reports whether attr is one of the inverted-indexed dimensions.
func IsDim(attr gdpr.Attribute) bool {
	for _, a := range Dims {
		if a == attr {
			return true
		}
	}
	return false
}

// postingOverhead approximates the per-entry pointer cost of an index
// entry, mirroring relstore's secondary-index accounting.
const postingOverhead = 8

// Inverted maps (attribute, value) to the set of record keys whose
// metadata carries that value. Multi-valued attributes contribute one
// posting per value. Not safe for concurrent use; the owning engine's
// lock serializes access.
type Inverted struct {
	dims  map[gdpr.Attribute]map[string]map[string]struct{}
	bytes int64
}

// NewInverted returns an empty inverted index over Dims.
func NewInverted() *Inverted {
	ix := &Inverted{dims: make(map[gdpr.Attribute]map[string]map[string]struct{}, len(Dims))}
	for _, a := range Dims {
		ix.dims[a] = make(map[string]map[string]struct{})
	}
	return ix
}

// Insert adds key's postings for every indexed dimension of rec.
func (ix *Inverted) Insert(key string, rec gdpr.Record) {
	for _, a := range Dims {
		vals := ix.dims[a]
		for _, v := range rec.Meta.Values(a) {
			set := vals[v]
			if set == nil {
				set = make(map[string]struct{})
				vals[v] = set
			}
			if _, dup := set[key]; !dup {
				set[key] = struct{}{}
				ix.bytes += int64(len(v)+len(key)) + postingOverhead
			}
		}
	}
}

// Remove deletes key's postings for every indexed dimension of rec. The
// record must be the one Insert saw (engines re-derive it from the stored
// value before overwriting or deleting).
func (ix *Inverted) Remove(key string, rec gdpr.Record) {
	for _, a := range Dims {
		vals := ix.dims[a]
		for _, v := range rec.Meta.Values(a) {
			set := vals[v]
			if set == nil {
				continue
			}
			if _, ok := set[key]; ok {
				delete(set, key)
				ix.bytes -= int64(len(v)+len(key)) + postingOverhead
				if len(set) == 0 {
					delete(vals, v)
				}
			}
		}
	}
}

// Lookup returns the keys posted under (attr, value) in sorted order —
// O(result log result), independent of the keyspace size. ok is false
// when attr is not an inverted-indexed dimension (callers fall back to
// their scan path).
func (ix *Inverted) Lookup(attr gdpr.Attribute, value string) (keys []string, ok bool) {
	vals, ok := ix.dims[attr]
	if !ok {
		return nil, false
	}
	set := vals[value]
	if len(set) == 0 {
		return nil, true
	}
	keys = make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, true
}

// LookupChunk returns up to limit keys posted under (attr, value) that
// sort strictly after `after`, in ascending key order, plus the largest
// posting examined (the caller's safe resume bound when the chunk came
// back full). Unlike Lookup it never materializes the full posting
// list: candidates stream through a bounded max-heap, so the working
// set is O(limit) regardless of posting-list size — the property the
// streaming selector path needs. full reports that the posting list
// held more than limit candidates past `after` (so keys beyond last
// remain unexamined); ok is false when attr is not an inverted
// dimension.
func (ix *Inverted) LookupChunk(attr gdpr.Attribute, value, after string, limit int) (keys []string, last string, full, ok bool) {
	vals, ok := ix.dims[attr]
	if !ok {
		return nil, "", false, false
	}
	set := vals[value]
	if len(set) == 0 || limit <= 0 {
		return nil, "", false, true
	}
	hcap := limit
	if hcap > len(set) {
		hcap = len(set)
	}
	// Bounded selection: a max-heap of the limit smallest candidates
	// past the cursor. Anything evicted from the heap sorts after every
	// retained key, so the heap's max is the resume bound.
	h := make([]string, 0, hcap)
	for k := range set {
		if k <= after {
			continue
		}
		if len(h) < limit {
			h = append(h, k)
			heapUp(h, len(h)-1)
			continue
		}
		full = true
		if k < h[0] {
			h[0] = k
			heapDown(h, 0)
		}
	}
	if len(h) == 0 {
		return nil, "", false, true
	}
	sort.Strings(h)
	return h, h[len(h)-1], full, true
}

// heapUp / heapDown maintain a max-heap over a string slice (LookupChunk's
// bounded selection; container/heap would force per-key interface boxing).
func heapUp(h []string, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h[p] >= h[i] {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func heapDown(h []string, i int) {
	for {
		big := i
		if l := 2*i + 1; l < len(h) && h[l] > h[big] {
			big = l
		}
		if r := 2*i + 2; r < len(h) && h[r] > h[big] {
			big = r
		}
		if big == i {
			return
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}

// Bytes returns the approximate size of all postings.
func (ix *Inverted) Bytes() int64 { return ix.bytes }

// Reset drops every posting (engine FLUSHALL).
func (ix *Inverted) Reset() {
	for _, a := range Dims {
		ix.dims[a] = make(map[string]map[string]struct{})
	}
	ix.bytes = 0
}

// ---------------------------------------------------------------------------
// Ordered expiry index

// Expiry orders keys by their TTL deadline in a B-tree of composite keys
// (8-byte sortable time encoding + record key), so collecting everything
// due by an instant is a range scan over exactly the due entries —
// O(expired + log n) — instead of a walk over every key carrying a TTL.
// Zero deadlines (no TTL) are never stored. Not safe for concurrent use.
type Expiry struct {
	tree  *btree.Tree[struct{}]
	bytes int64
}

// NewExpiry returns an empty expiry index.
func NewExpiry() *Expiry { return &Expiry{tree: btree.NewDefault[struct{}]()} }

// encodeDeadline renders at as 8 bytes whose lexicographic order matches
// time order (the same biased big-endian UnixNano encoding relstore's
// time indexes use).
func encodeDeadline(at time.Time) string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(at.UnixNano())+math.MaxInt64+1)
	return string(b[:])
}

// Set records that key expires at the given non-zero deadline.
func (e *Expiry) Set(key string, at time.Time) {
	if at.IsZero() {
		return
	}
	if e.tree.Set(encodeDeadline(at)+key, struct{}{}) {
		e.bytes += int64(8+len(key)) + postingOverhead
	}
}

// Remove drops key's entry for the given deadline (zero is a no-op).
func (e *Expiry) Remove(key string, at time.Time) {
	if at.IsZero() {
		return
	}
	if e.tree.Delete(encodeDeadline(at) + key) {
		e.bytes -= int64(8+len(key)) + postingOverhead
	}
}

// dueEnd returns the exclusive upper bound covering every composite key
// whose deadline is <= now.
func dueEnd(now time.Time) (string, bool) {
	enc := uint64(now.UnixNano()) + math.MaxInt64 + 1
	if enc == math.MaxUint64 {
		return "", false // bound saturated: scan the whole tree
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], enc+1)
	return string(b[:]), true
}

// Due returns the keys whose deadline is <= now, ordered by (deadline,
// key): O(expired + log n).
func (e *Expiry) Due(now time.Time) []string {
	var keys []string
	e.ascendDue(now, func(k string) bool {
		keys = append(keys, k)
		return true
	})
	return keys
}

// DueCount counts the keys whose deadline is <= now.
func (e *Expiry) DueCount(now time.Time) int {
	n := 0
	e.ascendDue(now, func(string) bool {
		n++
		return true
	})
	return n
}

func (e *Expiry) ascendDue(now time.Time, fn func(key string) bool) {
	visit := func(composite string, _ struct{}) bool { return fn(composite[8:]) }
	if end, ok := dueEnd(now); ok {
		e.tree.AscendRange("", end, visit)
	} else {
		e.tree.Ascend(visit)
	}
}

// Len returns the number of entries (keys carrying a TTL).
func (e *Expiry) Len() int { return e.tree.Len() }

// Bytes returns the approximate size of all entries.
func (e *Expiry) Bytes() int64 { return e.bytes }

// Reset drops every entry (engine FLUSHALL).
func (e *Expiry) Reset() {
	e.tree = btree.NewDefault[struct{}]()
	e.bytes = 0
}

package index

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/gdpr"
)

func rec(key, user string, purposes, objections, decisions, shares []string) gdpr.Record {
	return gdpr.Record{
		Key:  key,
		Data: "d",
		Meta: gdpr.Metadata{
			User:       user,
			Purposes:   purposes,
			Objections: objections,
			Decisions:  decisions,
			SharedWith: shares,
		},
	}
}

func TestInvertedInsertLookupRemove(t *testing.T) {
	ix := NewInverted()
	r1 := rec("k1", "alice", []string{"ads", "2fa"}, []string{"ads"}, nil, []string{"acme"})
	r2 := rec("k2", "alice", []string{"ads"}, nil, []string{"scoring"}, nil)
	ix.Insert("k1", r1)
	ix.Insert("k2", r2)

	cases := []struct {
		attr  gdpr.Attribute
		value string
		want  []string
	}{
		{gdpr.AttrUser, "alice", []string{"k1", "k2"}},
		{gdpr.AttrPurpose, "ads", []string{"k1", "k2"}},
		{gdpr.AttrPurpose, "2fa", []string{"k1"}},
		{gdpr.AttrObjection, "ads", []string{"k1"}},
		{gdpr.AttrDecision, "scoring", []string{"k2"}},
		{gdpr.AttrSharing, "acme", []string{"k1"}},
		{gdpr.AttrPurpose, "absent", nil},
	}
	for _, c := range cases {
		got, ok := ix.Lookup(c.attr, c.value)
		if !ok {
			t.Fatalf("Lookup(%s,%s) not served", c.attr, c.value)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("Lookup(%s,%s) = %v, want %v", c.attr, c.value, got, c.want)
		}
	}
	if _, ok := ix.Lookup(gdpr.AttrSource, "web"); ok {
		t.Fatal("SRC must not be an inverted dimension")
	}
	if _, ok := ix.Lookup(gdpr.AttrTTL, "x"); ok {
		t.Fatal("TTL must not be an inverted dimension")
	}

	ix.Remove("k1", r1)
	if got, _ := ix.Lookup(gdpr.AttrUser, "alice"); !reflect.DeepEqual(got, []string{"k2"}) {
		t.Fatalf("after remove: %v", got)
	}
	ix.Remove("k2", r2)
	if ix.Bytes() != 0 {
		t.Fatalf("bytes = %d after removing everything", ix.Bytes())
	}
}

func TestInvertedBytesAccounting(t *testing.T) {
	ix := NewInverted()
	r := rec("key", "u", []string{"p"}, nil, nil, nil)
	ix.Insert("key", r)
	// Two postings: USR=u and PUR=p, each len(value)+len(key)+8.
	want := int64(1+3+8) + int64(1+3+8)
	if ix.Bytes() != want {
		t.Fatalf("bytes = %d, want %d", ix.Bytes(), want)
	}
	ix.Insert("key", r) // duplicate insert must not double-count
	if ix.Bytes() != want {
		t.Fatalf("bytes after dup insert = %d, want %d", ix.Bytes(), want)
	}
	ix.Reset()
	if ix.Bytes() != 0 {
		t.Fatalf("bytes after reset = %d", ix.Bytes())
	}
	if got, _ := ix.Lookup(gdpr.AttrUser, "u"); got != nil {
		t.Fatalf("lookup after reset = %v", got)
	}
}

func TestIsDim(t *testing.T) {
	for _, a := range Dims {
		if !IsDim(a) {
			t.Fatalf("%s must be a dim", a)
		}
	}
	for _, a := range []gdpr.Attribute{gdpr.AttrKey, gdpr.AttrTTL, gdpr.AttrSource, gdpr.AttrData} {
		if IsDim(a) {
			t.Fatalf("%s must not be a dim", a)
		}
	}
}

func TestExpiryDueOrderAndCount(t *testing.T) {
	e := NewExpiry()
	base := time.Unix(1_500_000_000, 0)
	e.Set("late", base.Add(time.Hour))
	e.Set("early", base.Add(time.Minute))
	e.Set("mid", base.Add(30*time.Minute))
	e.Set("never", time.Time{}) // zero deadline is not stored
	if e.Len() != 3 {
		t.Fatalf("len = %d", e.Len())
	}

	if got := e.Due(base); got != nil {
		t.Fatalf("nothing due yet, got %v", got)
	}
	if got := e.Due(base.Add(30 * time.Minute)); !reflect.DeepEqual(got, []string{"early", "mid"}) {
		t.Fatalf("due = %v (the <=now bound must include the exact instant)", got)
	}
	if got := e.DueCount(base.Add(2 * time.Hour)); got != 3 {
		t.Fatalf("due count = %d", got)
	}

	e.Remove("mid", base.Add(30*time.Minute))
	if got := e.Due(base.Add(2 * time.Hour)); !reflect.DeepEqual(got, []string{"early", "late"}) {
		t.Fatalf("after remove: %v", got)
	}
	e.Remove("early", base.Add(time.Minute))
	e.Remove("late", base.Add(time.Hour))
	if e.Bytes() != 0 || e.Len() != 0 {
		t.Fatalf("bytes=%d len=%d after removing everything", e.Bytes(), e.Len())
	}
}

func TestExpirySameDeadlineManyKeys(t *testing.T) {
	e := NewExpiry()
	at := time.Unix(1_500_000_000, 0)
	var want []string
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("k%02d", i)
		e.Set(k, at)
		want = append(want, k)
	}
	if got := e.Due(at); !reflect.DeepEqual(got, want) {
		t.Fatalf("due = %v", got)
	}
}

// TestExpiryYearOneSimClock pins that the simulated-clock convention of
// starting at time.Time{} (year 1, outside UnixNano's documented range)
// still orders deadlines correctly within a test's time window — the
// wrapped encoding is monotonic between wrap boundaries, exactly like
// relstore's time-index encoding.
func TestExpiryYearOneSimClock(t *testing.T) {
	e := NewExpiry()
	base := time.Time{}
	e.Set("short", base.Add(5*time.Minute))
	e.Set("long", base.Add(5*24*time.Hour))
	if got := e.Due(base.Add(6 * time.Minute)); !reflect.DeepEqual(got, []string{"short"}) {
		t.Fatalf("due = %v", got)
	}
	if got := e.DueCount(base.Add(6 * 24 * time.Hour)); got != 2 {
		t.Fatalf("due count = %d", got)
	}
}

func TestExpiryReset(t *testing.T) {
	e := NewExpiry()
	e.Set("k", time.Unix(100, 0))
	e.Reset()
	if e.Len() != 0 || e.Bytes() != 0 {
		t.Fatalf("reset left len=%d bytes=%d", e.Len(), e.Bytes())
	}
	if got := e.Due(time.Unix(200, 0)); got != nil {
		t.Fatalf("due after reset = %v", got)
	}
}

// Package clock abstracts time so that long-horizon experiments from the
// paper (e.g. Figure 3a's multi-hour TTL-erasure delays) can be reproduced
// deterministically in milliseconds of real time.
//
// Two implementations are provided: Real, a thin wrapper over package time,
// and Sim, a manually-advanced virtual clock with timer support. Engines
// accept a Clock and never call time.Now directly on timing-sensitive paths.
package clock

import (
	"sort"
	"sync"
	"time"
)

// Clock is the minimal time source used by the storage engines and the
// benchmark harness.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// Since returns the elapsed duration from t to Now.
	Since(t time.Time) time.Duration
	// Sleep blocks the caller for d. On a Sim clock the block is released
	// when virtual time advances past the deadline.
	Sleep(d time.Duration)
	// After returns a channel that delivers the fire time once d elapses.
	After(d time.Duration) <-chan time.Time
}

// Real is a Clock backed by the system clock.
type Real struct{}

// NewReal returns a Clock backed by package time.
func NewReal() Real { return Real{} }

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sim is a virtual clock. Time only moves when Advance (or Step) is called.
// Sim is safe for concurrent use.
type Sim struct {
	mu     sync.Mutex
	now    time.Time
	timers []*simTimer // kept sorted by deadline
}

type simTimer struct {
	deadline time.Time
	ch       chan time.Time
}

// NewSim returns a Sim clock starting at start. A zero start is replaced by a
// fixed epoch so tests are reproducible.
func NewSim(start time.Time) *Sim {
	if start.IsZero() {
		start = time.Date(2019, time.March, 18, 0, 0, 0, 0, time.UTC)
	}
	return &Sim{now: start}
}

// Now implements Clock.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Since implements Clock.
func (s *Sim) Since(t time.Time) time.Duration { return s.Now().Sub(t) }

// Sleep implements Clock. It blocks until virtual time advances past d.
func (s *Sim) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-s.After(d)
}

// After implements Clock. The returned channel has capacity 1 and fires when
// Advance moves the clock to or past the deadline.
func (s *Sim) After(d time.Duration) <-chan time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := make(chan time.Time, 1)
	t := &simTimer{deadline: s.now.Add(d), ch: ch}
	if d <= 0 {
		ch <- s.now
		return ch
	}
	s.timers = append(s.timers, t)
	sort.Slice(s.timers, func(i, j int) bool {
		return s.timers[i].deadline.Before(s.timers[j].deadline)
	})
	return ch
}

// Advance moves virtual time forward by d, firing every timer whose deadline
// is reached, in deadline order.
func (s *Sim) Advance(d time.Duration) {
	s.mu.Lock()
	target := s.now.Add(d)
	s.now = target
	var fire []*simTimer
	rest := s.timers[:0]
	for _, t := range s.timers {
		if !t.deadline.After(target) {
			fire = append(fire, t)
		} else {
			rest = append(rest, t)
		}
	}
	s.timers = rest
	s.mu.Unlock()
	for _, t := range fire {
		t.ch <- t.deadline
	}
}

// Step advances the clock n times by d, invoking fn (if non-nil) after each
// step. It is the main driver loop for discrete-time simulations such as the
// Redis lazy-expiry process.
func (s *Sim) Step(n int, d time.Duration, fn func(now time.Time)) {
	for i := 0; i < n; i++ {
		s.Advance(d)
		if fn != nil {
			fn(s.Now())
		}
	}
}

// PendingTimers reports how many timers are armed; used in tests.
func (s *Sim) PendingTimers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.timers)
}

var (
	_ Clock = Real{}
	_ Clock = (*Sim)(nil)
)

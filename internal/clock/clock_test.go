package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealNowMonotonicEnough(t *testing.T) {
	c := NewReal()
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("real clock went backwards: %v then %v", a, b)
	}
	if c.Since(a) < 0 {
		t.Fatalf("negative Since")
	}
}

func TestSimZeroStartUsesFixedEpoch(t *testing.T) {
	a := NewSim(time.Time{}).Now()
	b := NewSim(time.Time{}).Now()
	if !a.Equal(b) {
		t.Fatalf("zero-start Sim clocks disagree: %v vs %v", a, b)
	}
}

func TestSimAdvance(t *testing.T) {
	start := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	s := NewSim(start)
	if !s.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", s.Now(), start)
	}
	s.Advance(90 * time.Second)
	want := start.Add(90 * time.Second)
	if !s.Now().Equal(want) {
		t.Fatalf("Now = %v, want %v", s.Now(), want)
	}
	if got := s.Since(start); got != 90*time.Second {
		t.Fatalf("Since = %v, want 90s", got)
	}
}

func TestSimAfterFiresInDeadlineOrder(t *testing.T) {
	s := NewSim(time.Time{})
	c2 := s.After(2 * time.Second)
	c1 := s.After(1 * time.Second)
	select {
	case <-c1:
		t.Fatal("timer fired before Advance")
	default:
	}
	s.Advance(3 * time.Second)
	t1 := <-c1
	t2 := <-c2
	if !t1.Before(t2) {
		t.Fatalf("fire order wrong: %v then %v", t1, t2)
	}
}

func TestSimAfterNonPositiveFiresImmediately(t *testing.T) {
	s := NewSim(time.Time{})
	select {
	case <-s.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
	select {
	case <-s.After(-time.Second):
	default:
		t.Fatal("After(<0) did not fire immediately")
	}
	if s.PendingTimers() != 0 {
		t.Fatalf("pending timers = %d, want 0", s.PendingTimers())
	}
}

func TestSimPartialAdvanceLeavesFutureTimers(t *testing.T) {
	s := NewSim(time.Time{})
	far := s.After(10 * time.Second)
	near := s.After(1 * time.Second)
	s.Advance(5 * time.Second)
	select {
	case <-near:
	default:
		t.Fatal("near timer did not fire")
	}
	select {
	case <-far:
		t.Fatal("far timer fired early")
	default:
	}
	if s.PendingTimers() != 1 {
		t.Fatalf("pending timers = %d, want 1", s.PendingTimers())
	}
	s.Advance(5 * time.Second)
	select {
	case <-far:
	default:
		t.Fatal("far timer did not fire after full advance")
	}
}

func TestSimSleepUnblocksOnAdvance(t *testing.T) {
	s := NewSim(time.Time{})
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Sleep(time.Second)
		close(done)
	}()
	// Give the goroutine a chance to arm its timer before advancing.
	for i := 0; i < 1000 && s.PendingTimers() == 0; i++ {
		time.Sleep(100 * time.Microsecond)
	}
	if s.PendingTimers() == 0 {
		t.Fatal("sleeper never armed a timer")
	}
	s.Advance(2 * time.Second)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep did not unblock after Advance")
	}
	wg.Wait()
}

func TestSimSleepZeroReturnsImmediately(t *testing.T) {
	s := NewSim(time.Time{})
	s.Sleep(0) // must not block
	s.Sleep(-time.Minute)
}

func TestSimStepInvokesCallback(t *testing.T) {
	s := NewSim(time.Time{})
	start := s.Now()
	var calls []time.Duration
	s.Step(5, 100*time.Millisecond, func(now time.Time) {
		calls = append(calls, now.Sub(start))
	})
	if len(calls) != 5 {
		t.Fatalf("callback calls = %d, want 5", len(calls))
	}
	for i, d := range calls {
		want := time.Duration(i+1) * 100 * time.Millisecond
		if d != want {
			t.Fatalf("call %d at %v, want %v", i, d, want)
		}
	}
}

func TestSimConcurrentAdvanceAndAfter(t *testing.T) {
	s := NewSim(time.Time{})
	const n = 64
	var wg sync.WaitGroup
	fired := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-s.After(time.Duration(i%7+1) * time.Millisecond)
			fired <- struct{}{}
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(fired) < n && time.Now().Before(deadline) {
		s.Advance(time.Millisecond)
		time.Sleep(50 * time.Microsecond)
	}
	wg.Wait()
	if got := len(fired); got != n {
		t.Fatalf("fired = %d, want %d", got, n)
	}
}

// Package difftest is the shared differential-testing harness: a seeded
// mini-workload that exercises every §3.3 query family and renders each
// operation's outcome as a canonical, order-insensitive transcript line.
// Two deployments of the benchmark stack are behaviorally equivalent iff
// their transcripts are byte-identical — the acceptance bar used across
// engines (Redis vs PostgreSQL model), shard counts, the metadata-index
// layer, and the network service boundary (embedded vs remote client).
//
// It lives in a non-test package so the shard and remote differential
// tests share one harness; it is only imported from _test files.
package difftest

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/acl"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/gdpr"
)

// Transcript runs the seeded mini-workload against db (freshly loaded
// with ds on the simulated clock) and renders each operation's outcome
// canonically (sorted keys, counts).
func Transcript(t testing.TB, db core.DB, ds *core.Dataset, sim *clock.Sim) []string {
	t.Helper()
	var lines []string
	emitRecs := func(op string, recs []gdpr.Record, err error) {
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		keys := make([]string, len(recs))
		for i, r := range recs {
			keys[i] = r.Key
		}
		sort.Strings(keys)
		lines = append(lines, fmt.Sprintf("%s -> [%s]", op, strings.Join(keys, ",")))
	}
	emitN := func(op string, n int, err error) {
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		lines = append(lines, fmt.Sprintf("%s -> n=%d", op, n))
	}

	cfg := ds.Cfg
	for round := 0; round < 6; round++ {
		p := round % cfg.Purposes
		u := round * 3 % ds.Users
		s := round % cfg.Shares
		d := round % cfg.Decisions
		k := round * 17 % cfg.Records

		rec := ds.RecordAt(0)
		rec.Key = fmt.Sprintf("rec-diff-%04d", round)
		rec.Data = fmt.Sprintf("%0*d", cfg.DataSize, round)
		rec.Meta.User = ds.UserName(u)
		rec.Meta.Expiry = sim.Now().Add(cfg.DefaultTTL)
		if err := db.CreateRecord(core.ControllerActor(), rec); err != nil {
			t.Fatalf("create round %d: %v", round, err)
		}
		lines = append(lines, fmt.Sprintf("create(%s) -> ok", rec.Key))

		recs, err := db.ReadData(ds.ProcessorActor(p), gdpr.ByPurpose(ds.PurposeName(p)))
		emitRecs(fmt.Sprintf("read-data-by-pur(%d)", p), recs, err)
		recs, err = db.ReadData(ds.CustomerActor(u), gdpr.ByUser(ds.UserName(u)))
		emitRecs(fmt.Sprintf("read-data-by-usr(%d)", u), recs, err)
		recs, err = db.ReadData(ds.ProcessorActor(p), gdpr.ByObjection(ds.PurposeName(p)))
		emitRecs(fmt.Sprintf("read-data-by-obj(%d)", p), recs, err)
		recs, err = db.ReadData(ds.ProcessorActor(d), gdpr.ByDecision(ds.DecisionName(d)))
		emitRecs(fmt.Sprintf("read-data-by-dec(%d)", d), recs, err)
		recs, err = db.ReadMetadata(core.RegulatorActor(), gdpr.ByShare(ds.ShareName(s)))
		emitRecs(fmt.Sprintf("read-meta-by-shr(%d)", s), recs, err)
		for _, r := range recs {
			if r.Data != "" {
				t.Fatalf("metadata read leaked data for %q", r.Key)
			}
		}
		recs, err = db.ReadMetadata(core.RegulatorActor(), gdpr.ByUser(ds.UserName(u)))
		emitRecs(fmt.Sprintf("read-meta-by-usr(%d)", u), recs, err)

		n, err := db.UpdateMetadata(core.ControllerActor(), gdpr.ByUser(ds.UserName(u)),
			gdpr.Delta{Attr: gdpr.AttrSharing, Op: gdpr.DeltaAdd, Values: []string{ds.ShareName(s)}})
		emitN(fmt.Sprintf("update-meta-by-usr(%d)", u), n, err)
		n, err = db.UpdateMetadata(core.ControllerActor(), gdpr.ByPurpose(ds.PurposeName(p)),
			gdpr.Delta{Attr: gdpr.AttrTTL, Op: gdpr.DeltaSet, Expiry: sim.Now().Add(cfg.DefaultTTL)})
		emitN(fmt.Sprintf("update-meta-by-pur(%d)", p), n, err)
		n, err = db.UpdateMetadata(ds.CustomerActor(ds.OwnerOfKey(k)), gdpr.ByKey(ds.KeyAt(k)),
			gdpr.Delta{Attr: gdpr.AttrObjection, Op: gdpr.DeltaAdd, Values: []string{ds.PurposeName(p)}})
		emitN(fmt.Sprintf("update-meta-by-key(%d)", k), n, err)
		n, err = db.UpdateData(ds.CustomerActor(ds.OwnerOfKey(k)), ds.KeyAt(k),
			fmt.Sprintf("%0*d", cfg.DataSize, round))
		emitN(fmt.Sprintf("update-data-by-key(%d)", k), n, err)

		n, err = db.DeleteRecord(ds.CustomerActor(ds.OwnerOfKey(k)), gdpr.ByKey(ds.KeyAt(k)))
		emitN(fmt.Sprintf("delete-by-key(%d)", k), n, err)
		n, err = db.DeleteRecord(core.ControllerActor(), gdpr.ByUser(ds.UserName((u+5)%ds.Users)))
		emitN(fmt.Sprintf("delete-by-usr(%d)", (u+5)%ds.Users), n, err)
		n, err = db.DeleteRecord(core.ControllerActor(), gdpr.ByPurpose(ds.PurposeName((p+3)%cfg.Purposes)))
		emitN(fmt.Sprintf("delete-by-pur(%d)", (p+3)%cfg.Purposes), n, err)

		present, err := db.VerifyDeletion(core.RegulatorActor(),
			[]string{ds.KeyAt(k), ds.KeyAt((k + 1) % cfg.Records), "never-existed"})
		emitN("verify-deletion", present, err)
	}
	return lines
}

// StreamDB is a core.DB whose selector reads are served by fully
// draining the chunked streaming path: each ReadData/ReadMetadata
// becomes an open-cursor / Next-until-EOF / Close sequence with the
// given chunk size. Running Transcript over StreamDB(db) against
// Transcript over db directly is the streaming leg of the differential
// matrix: chunked reassembly must be byte-identical to the materialized
// Select, embedded and across the wire. The wrapped DB must implement
// core.StreamReader (every middleware-wrapped DB and the remote client
// do).
type StreamDB struct {
	core.DB
	// Chunk is the records-per-chunk request (0 = the default). Odd
	// small values are the interesting ones: they force chunk
	// boundaries inside every multi-record result.
	Chunk int
}

// ReadData drains a data stream.
func (s StreamDB) ReadData(a acl.Actor, sel gdpr.Selector) ([]gdpr.Record, error) {
	cur, err := s.DB.(core.StreamReader).ReadDataStream(a, sel, s.Chunk)
	if err != nil {
		return nil, err
	}
	return core.Drain(cur)
}

// ReadMetadata drains a metadata stream.
func (s StreamDB) ReadMetadata(a acl.Actor, sel gdpr.Selector) ([]gdpr.Record, error) {
	cur, err := s.DB.(core.StreamReader).ReadMetadataStream(a, sel, s.Chunk)
	if err != nil {
		return nil, err
	}
	return core.Drain(cur)
}

// AssertEqual fails the test at the first line where got's transcript
// diverges from want's.
func AssertEqual(t testing.TB, wantName string, want []string, gotName string, got []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s transcript length %d vs %s's %d", gotName, len(got), wantName, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s diverged from %s at op %d:\n  %s: %s\n  %s: %s",
				gotName, wantName, i, wantName, want[i], gotName, got[i])
		}
	}
}

package kvstore

import (
	"sync"
	"time"
)

// This file implements active TTL expiry: the native lazy probabilistic
// cycle (Redis' activeExpireCycle, whose erasure delay Figure 3a measures)
// and the paper's strict full-scan modification (§5.1, which brings
// erasure down to "sub-second latency for sizes of up to 1 million keys").
//
// In the striped profile each cycle sweeps every stripe independently
// under that stripe's own lock (concurrently, one goroutine per stripe),
// so expiry never stalls commands on other stripes; the lazy sampler's
// per-iteration budget applies per stripe. Cycle victims log their AOF
// DEL through the expiryDel path — staged without backpressure in the
// striped profile, appended inline in the legacy one.

// CycleStats reports what one expiry cycle did.
type CycleStats struct {
	// Sampled is how many keys the cycle examined.
	Sampled int
	// Expired is how many keys the cycle deleted.
	Expired int
	// Iterations is how many sample rounds ran (lazy mode repeats while
	// ≥ expireRepeatThreshold of a round's samples were expired). With
	// striping it is the deepest per-stripe round count.
	Iterations int
}

// CycleOnce runs one active-expiry cycle at the store's current time using
// the configured mode, and reports what it did. The experiment harness
// drives this from a simulated clock; ServeExpiry drives it in real time.
func (s *Store) CycleOnce() CycleStats {
	now := s.clk.Now()
	if !s.striped {
		st := &s.stripes[0]
		st.writes.Add(1)
		st.mu.Lock()
		defer st.mu.Unlock()
		if s.closed.Load() {
			return CycleStats{}
		}
		return s.cycleStripe(st, now)
	}
	results := make([]CycleStats, len(s.stripes))
	var wg sync.WaitGroup
	for i := range s.stripes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := &s.stripes[i]
			st.writes.Add(1)
			st.mu.Lock()
			defer st.mu.Unlock()
			if s.closed.Load() {
				return
			}
			results[i] = s.cycleStripe(st, now)
		}(i)
	}
	wg.Wait()
	var total CycleStats
	for _, cs := range results {
		total.Sampled += cs.Sampled
		total.Expired += cs.Expired
		if cs.Iterations > total.Iterations {
			total.Iterations = cs.Iterations
		}
	}
	return total
}

// cycleStripe runs one cycle over a single stripe; the caller holds its
// lock.
func (s *Store) cycleStripe(st *stripe, now time.Time) CycleStats {
	if s.mode == ExpiryStrict {
		return s.strictCycleStripe(st, now)
	}
	return s.lazyCycleStripe(st, now)
}

// lazyCycleStripe is Redis' algorithm scoped to one stripe: sample
// expireSampleSize keys from the stripe's expires dict; delete the
// expired ones; if at least expireRepeatThreshold were expired, repeat
// immediately, else stop.
func (s *Store) lazyCycleStripe(st *stripe, now time.Time) CycleStats {
	var cs CycleStats
	for cs.Iterations < expireMaxIterations {
		cs.Iterations++
		sampled, expired := 0, 0
		// Go's map iteration order is randomized per range, which gives
		// us the random sampling the algorithm requires without extra
		// bookkeeping (Redis uses dictGetRandomKey). The expires dict
		// carries the deadline, so no main-dict lookup is needed.
		var victims []string
		for k, at := range st.expires {
			sampled++
			if !at.After(now) {
				victims = append(victims, k)
			}
			if sampled >= expireSampleSize {
				break
			}
		}
		for _, k := range victims {
			if st.del(k) {
				expired++
				s.expiryDel(k)
			}
		}
		cs.Sampled += sampled
		cs.Expired += expired
		// Stop when the expired density of this round fell below the
		// repeat threshold, or nothing is left to sample.
		if expired < expireRepeatThreshold || len(st.expires) == 0 {
			break
		}
	}
	return cs
}

// strictCycleStripe is the paper's modification scoped to one stripe:
// iterate the stripe's entire expires dict and delete everything that is
// due. With metadata indexing on, the walk is replaced by a range scan of
// the stripe's ordered expiry index — the cycle examines exactly the due
// entries, O(expired + log n) instead of O(all TTL'd keys) — while the
// baseline keeps the paper's full-walk profile.
func (s *Store) strictCycleStripe(st *stripe, now time.Time) CycleStats {
	var cs CycleStats
	cs.Iterations = 1
	var victims []string
	if st.exp != nil {
		victims = st.exp.Due(now)
		cs.Sampled = len(victims)
	} else {
		for k, at := range st.expires {
			cs.Sampled++
			if !at.After(now) {
				victims = append(victims, k)
			}
		}
	}
	for _, k := range victims {
		if st.del(k) {
			cs.Expired++
			s.expiryDel(k)
		}
	}
	return cs
}

// StartExpiry launches the background expiry loop: one cycle every
// ExpireCyclePeriod on the store's clock, until StopExpiry or Close.
// Calling it twice is a no-op while a loop is running.
func (s *Store) StartExpiry() {
	s.expMu.Lock()
	if s.closed.Load() || s.stopExpiry != nil {
		s.expMu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	s.stopExpiry = stop
	s.expiryDone = done
	clk := s.clk
	s.expMu.Unlock()

	go func() {
		defer close(done)
		for {
			timer := clk.After(ExpireCyclePeriod)
			select {
			case <-stop:
				return
			case <-timer:
				s.CycleOnce()
			}
		}
	}()
}

// StopExpiry stops the background expiry loop, waiting for it to exit.
func (s *Store) StopExpiry() {
	s.expMu.Lock()
	stop := s.stopExpiry
	done := s.expiryDone
	s.stopExpiry = nil
	s.expiryDone = nil
	s.expMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// ExpiredKeys returns the keys whose TTL has passed but which are still
// present; the controller's DELETE-RECORD-BY-TTL purge deletes them. With
// metadata indexing on it is an O(expired) range scan of each stripe's
// ordered expiry index (in per-stripe deadline order); otherwise it walks
// the expires dicts, whose entries carry their deadline — every expires
// entry is live by invariant (deletion clears both dicts; dead-entry
// cleanup happens in the expiry cycle), so no main-dict check is needed
// on either path.
func (s *Store) ExpiredKeys() []string {
	now := s.clk.Now()
	var out []string
	for i := range s.stripes {
		st := &s.stripes[i]
		s.rlock(st)
		if st.exp != nil {
			out = append(out, st.exp.Due(now)...)
		} else {
			for k, at := range st.expires {
				if !at.After(now) {
					out = append(out, k)
				}
			}
		}
		s.runlock(st)
	}
	return out
}

// ExpiredRemaining counts keys whose TTL has passed but which are still
// present (not yet reaped). The Figure 3a experiment polls this to measure
// erasure delay. O(expired) when the ordered expiry index is on.
func (s *Store) ExpiredRemaining() int {
	now := s.clk.Now()
	n := 0
	for i := range s.stripes {
		st := &s.stripes[i]
		s.rlock(st)
		if st.exp != nil {
			n += st.exp.DueCount(now)
		} else {
			for _, at := range st.expires {
				if !at.After(now) {
					n++
				}
			}
		}
		s.runlock(st)
	}
	return n
}

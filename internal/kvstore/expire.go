package kvstore

import (
	"time"
)

// This file implements active TTL expiry: the native lazy probabilistic
// cycle (Redis' activeExpireCycle, whose erasure delay Figure 3a measures)
// and the paper's strict full-scan modification (§5.1, which brings
// erasure down to "sub-second latency for sizes of up to 1 million keys").

// CycleStats reports what one expiry cycle did.
type CycleStats struct {
	// Sampled is how many keys the cycle examined.
	Sampled int
	// Expired is how many keys the cycle deleted.
	Expired int
	// Iterations is how many sample rounds ran (lazy mode repeats while
	// ≥ expireRepeatThreshold of a round's samples were expired).
	Iterations int
}

// CycleOnce runs one active-expiry cycle at the store's current time using
// the configured mode, and reports what it did. The experiment harness
// drives this from a simulated clock; ServeExpiry drives it in real time.
func (s *Store) CycleOnce() CycleStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clk.Now()
	switch s.mode {
	case ExpiryStrict:
		return s.strictCycleLocked(now)
	default:
		return s.lazyCycleLocked(now)
	}
}

// lazyCycleLocked is Redis' algorithm: sample expireSampleSize keys from
// the expires dict; delete the expired ones; if at least
// expireRepeatThreshold were expired, repeat immediately, else stop.
func (s *Store) lazyCycleLocked(now time.Time) CycleStats {
	var st CycleStats
	for st.Iterations < expireMaxIterations {
		st.Iterations++
		sampled, expired := 0, 0
		// Go's map iteration order is randomized per range, which gives
		// us the random sampling the algorithm requires without extra
		// bookkeeping (Redis uses dictGetRandomKey). The expires dict
		// carries the deadline, so no main-dict lookup is needed.
		var victims []string
		for k, at := range s.expires {
			sampled++
			if !at.After(now) {
				victims = append(victims, k)
			}
			if sampled >= expireSampleSize {
				break
			}
		}
		for _, k := range victims {
			if s.deleteLocked(k) {
				expired++
			}
		}
		st.Sampled += sampled
		st.Expired += expired
		if s.aof != nil {
			for _, k := range victims {
				_ = s.aof.appendDel(k)
			}
		}
		// Stop when the expired density of this round fell below the
		// repeat threshold, or nothing is left to sample.
		if expired < expireRepeatThreshold || len(s.expires) == 0 {
			break
		}
	}
	return st
}

// strictCycleLocked is the paper's modification: iterate the entire
// expires dict and delete everything that is due. With metadata indexing
// on, the walk is replaced by a range scan of the ordered expiry index —
// the cycle examines exactly the due entries, O(expired + log n) instead
// of O(all TTL'd keys) — while the baseline keeps the paper's full-walk
// profile.
func (s *Store) strictCycleLocked(now time.Time) CycleStats {
	var st CycleStats
	st.Iterations = 1
	var victims []string
	if s.exp != nil {
		victims = s.exp.Due(now)
		st.Sampled = len(victims)
	} else {
		for k, at := range s.expires {
			st.Sampled++
			if !at.After(now) {
				victims = append(victims, k)
			}
		}
	}
	for _, k := range victims {
		if s.deleteLocked(k) {
			st.Expired++
			if s.aof != nil {
				_ = s.aof.appendDel(k)
			}
		}
	}
	return st
}

// StartExpiry launches the background expiry loop: one cycle every
// ExpireCyclePeriod on the store's clock, until StopExpiry or Close.
// Calling it twice is a no-op while a loop is running.
func (s *Store) StartExpiry() {
	s.mu.Lock()
	if s.closed || s.stopExpiry != nil {
		s.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	s.stopExpiry = stop
	s.expiryDone = done
	clk := s.clk
	s.mu.Unlock()

	go func() {
		defer close(done)
		for {
			timer := clk.After(ExpireCyclePeriod)
			select {
			case <-stop:
				return
			case <-timer:
				s.CycleOnce()
			}
		}
	}()
}

// StopExpiry stops the background expiry loop, waiting for it to exit.
func (s *Store) StopExpiry() {
	s.mu.Lock()
	stop := s.stopExpiry
	done := s.expiryDone
	s.stopExpiry = nil
	s.expiryDone = nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// ExpiredKeys returns the keys whose TTL has passed but which are still
// present; the controller's DELETE-RECORD-BY-TTL purge deletes them. With
// metadata indexing on it is an O(expired) range scan of the ordered
// expiry index (in deadline order); otherwise it walks the expires dict,
// whose entries carry their deadline — every expires entry is live by
// invariant (deletion clears both dicts; dead-entry cleanup happens in
// the expiry cycle), so no main-dict check is needed on either path.
func (s *Store) ExpiredKeys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clk.Now()
	if s.exp != nil {
		return s.exp.Due(now)
	}
	var out []string
	for k, at := range s.expires {
		if !at.After(now) {
			out = append(out, k)
		}
	}
	return out
}

// ExpiredRemaining counts keys whose TTL has passed but which are still
// present (not yet reaped). The Figure 3a experiment polls this to measure
// erasure delay. O(expired) when the ordered expiry index is on.
func (s *Store) ExpiredRemaining() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clk.Now()
	if s.exp != nil {
		return s.exp.DueCount(now)
	}
	n := 0
	for _, at := range s.expires {
		if !at.After(now) {
			n++
		}
	}
	return n
}

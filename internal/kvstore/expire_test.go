package kvstore

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/clock"
)

// populateWithTTLs loads the store with total keys: shortFrac of them
// expire at now+short, the rest at now+long — the Figure 3a setup ("20% of
// the keys will expire in short-term (5 minutes) and 80% in the long-term
// (5 days)").
func populateWithTTLs(t testing.TB, s *Store, sim *clock.Sim, total int, shortFrac float64, short, long time.Duration) int {
	t.Helper()
	now := sim.Now()
	nShort := int(float64(total) * shortFrac)
	for i := 0; i < total; i++ {
		exp := now.Add(long)
		if i < nShort {
			exp = now.Add(short)
		}
		if err := s.SetWithExpiry(fmt.Sprintf("key-%d", i), "payload", exp); err != nil {
			t.Fatal(err)
		}
	}
	return nShort
}

// eraseDelay advances virtual time in expiry-cycle steps until no expired
// keys remain, returning the virtual time elapsed since the short TTLs
// became due. maxVirtual caps the simulation.
func eraseDelay(s *Store, sim *clock.Sim, short, maxVirtual time.Duration) (time.Duration, bool) {
	sim.Advance(short) // jump to the instant the short-term keys expire
	start := sim.Now()
	for sim.Since(start) < maxVirtual {
		sim.Advance(ExpireCyclePeriod)
		s.CycleOnce()
		if s.ExpiredRemaining() == 0 {
			return sim.Since(start), true
		}
	}
	return sim.Since(start), false
}

func TestLazyCycleDeletesOnlyExpired(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	s := memStore(t, sim)
	populateWithTTLs(t, s, sim, 100, 0.2, time.Minute, time.Hour)
	sim.Advance(2 * time.Minute)
	// Run plenty of cycles; all short-term keys must go, all long-term stay.
	for i := 0; i < 200; i++ {
		s.CycleOnce()
	}
	if got := s.ExpiredRemaining(); got != 0 {
		t.Fatalf("expired remaining = %d", got)
	}
	if got := s.DBSize(); got != 80 {
		t.Fatalf("DBSize = %d, want 80 long-term keys", got)
	}
}

func TestStrictCycleErasesAllInOneCycle(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	s, err := Open(Config{Clock: sim, ExpiryMode: ExpiryStrict})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	populateWithTTLs(t, s, sim, 10_000, 0.2, time.Minute, time.Hour)
	sim.Advance(2 * time.Minute)
	st := s.CycleOnce()
	if st.Expired != 2000 {
		t.Fatalf("strict cycle expired %d, want 2000", st.Expired)
	}
	if st.Sampled != 10_000 {
		t.Fatalf("strict cycle sampled %d, want all 10000", st.Sampled)
	}
	if s.ExpiredRemaining() != 0 {
		t.Fatal("strict cycle left expired keys")
	}
	if s.DBSize() != 8000 {
		t.Fatalf("DBSize = %d", s.DBSize())
	}
}

// TestStrictExpirySubSecond is µ1 from DESIGN.md: the paper verifies "all
// the expired keys are erased within sub-second latency for sizes of up to
// 1 million keys". One strict cycle runs every 100ms, so erasure latency is
// at most one cycle period + cycle runtime; we check a 100k store clears in
// a single cycle and that the cycle's real runtime is well under a second.
func TestStrictExpirySubSecond(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	s, err := Open(Config{Clock: sim, ExpiryMode: ExpiryStrict})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	populateWithTTLs(t, s, sim, 100_000, 0.2, 5*time.Minute, 5*24*time.Hour)
	sim.Advance(5*time.Minute + time.Second)
	wallStart := time.Now()
	s.CycleOnce()
	wall := time.Since(wallStart)
	if s.ExpiredRemaining() != 0 {
		t.Fatal("expired keys remain after one strict cycle")
	}
	if wall > time.Second {
		t.Fatalf("strict cycle took %v on 100k keys, want < 1s", wall)
	}
}

// TestLazyErasureDelayGrowsWithDBSize is the Figure 3a shape: with a fixed
// 20% short-TTL fraction, erasure delay under the lazy algorithm grows
// superlinearly as total keys grow, while the strict mode stays at one
// cycle.
func TestLazyErasureDelayGrowsWithDBSize(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation heavy")
	}
	sizes := []int{1000, 4000, 16000}
	var delays []time.Duration
	for _, n := range sizes {
		sim := clock.NewSim(time.Time{})
		s, err := Open(Config{Clock: sim, ExpiryMode: ExpiryLazy})
		if err != nil {
			t.Fatal(err)
		}
		populateWithTTLs(t, s, sim, n, 0.2, 5*time.Minute, 5*24*time.Hour)
		d, done := eraseDelay(s, sim, 5*time.Minute, 10*time.Hour)
		if !done {
			t.Fatalf("n=%d: erasure did not complete within 10h virtual", n)
		}
		delays = append(delays, d)
		s.Close()
	}
	t.Logf("lazy erasure delays: %v for sizes %v", delays, sizes)
	for i := 1; i < len(delays); i++ {
		if delays[i] <= delays[i-1] {
			t.Fatalf("delay did not grow: %v then %v", delays[i-1], delays[i])
		}
	}
	// 4x size should be >2x delay (superlinear-ish growth like Fig 3a).
	if float64(delays[2]) < 2*float64(delays[1]) {
		t.Fatalf("growth too shallow: %v vs %v", delays[1], delays[2])
	}
}

func TestCycleStatsIterationsRepeatOnDenseExpiry(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	s := memStore(t, sim)
	// All keys expired: the lazy loop must repeat (iterations > 1).
	populateWithTTLs(t, s, sim, 200, 1.0, time.Minute, time.Minute)
	sim.Advance(2 * time.Minute)
	st := s.CycleOnce()
	if st.Iterations <= 1 {
		t.Fatalf("iterations = %d, want > 1 on dense expiry", st.Iterations)
	}
	if st.Expired == 0 {
		t.Fatal("nothing expired")
	}
}

func TestCycleNoTTLKeysIsCheap(t *testing.T) {
	s := memStore(t, nil)
	for i := 0; i < 100; i++ {
		s.Set(fmt.Sprintf("k%d", i), "v")
	}
	st := s.CycleOnce()
	if st.Sampled != 0 || st.Expired != 0 {
		t.Fatalf("cycle on TTL-free store did work: %+v", st)
	}
}

func TestBackgroundExpiryLoop(t *testing.T) {
	// Real clock; short TTLs.
	s, err := Open(Config{ExpiryMode: ExpiryStrict})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 100; i++ {
		s.SetWithExpiry(fmt.Sprintf("k%d", i), "v", time.Now().Add(50*time.Millisecond))
	}
	s.StartExpiry()
	s.StartExpiry() // second start is a no-op
	deadline := time.Now().Add(5 * time.Second)
	for s.DBSize() > 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if got := s.DBSize(); got != 0 {
		t.Fatalf("background expiry left %d keys", got)
	}
	s.StopExpiry()
	s.StopExpiry() // idempotent
}

func TestExpiryModeString(t *testing.T) {
	if ExpiryLazy.String() != "lazy" || ExpiryStrict.String() != "strict" {
		t.Fatal("mode strings wrong")
	}
	if ExpiryMode(9).String() != "ExpiryMode(9)" {
		t.Fatal("unknown mode string wrong")
	}
	if FsyncNo.String() != "no" || FsyncEverySec.String() != "everysec" || FsyncAlways.String() != "always" {
		t.Fatal("fsync strings wrong")
	}
	if FsyncPolicy(9).String() != "FsyncPolicy(9)" {
		t.Fatal("unknown fsync string wrong")
	}
}

func TestLazyExpiryWritesDeletesToAOF(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/expire.aof"
	sim := clock.NewSim(time.Time{})
	s, err := Open(Config{Clock: sim, AOFPath: path, ExpiryMode: ExpiryStrict})
	if err != nil {
		t.Fatal(err)
	}
	s.SetWithExpiry("gone", "v", sim.Now().Add(time.Second))
	s.Set("stays", "v")
	sim.Advance(time.Minute)
	s.CycleOnce()
	s.Close()
	// Replay: the expiry deletion must be durable.
	s2, err := Open(Config{Clock: sim, AOFPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Exists("gone") {
		t.Fatal("expired key survived replay")
	}
	if !s2.Exists("stays") {
		t.Fatal("live key lost")
	}
}

func BenchmarkLazyCycle100k(b *testing.B) {
	sim := clock.NewSim(time.Time{})
	s, _ := Open(Config{Clock: sim, ExpiryMode: ExpiryLazy})
	defer s.Close()
	populateWithTTLs(b, s, sim, 100_000, 0.2, 5*time.Minute, 5*24*time.Hour)
	sim.Advance(5*time.Minute + time.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CycleOnce()
	}
}

func BenchmarkStrictCycle100k(b *testing.B) {
	sim := clock.NewSim(time.Time{})
	s, _ := Open(Config{Clock: sim, ExpiryMode: ExpiryStrict})
	defer s.Close()
	populateWithTTLs(b, s, sim, 100_000, 0.0, time.Minute, 5*24*time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CycleOnce()
	}
}

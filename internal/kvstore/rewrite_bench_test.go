package kvstore

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

// BenchmarkGetDuringRewrite quantifies the read pause a rewrite imposes:
// GET latency percentiles while a compaction loop runs continuously, for
// the concurrent background rewrite vs the stop-the-world foreground
// ablation, with a no-rewrite steady state as the baseline. The p99_us
// metric is the acceptance bound — background must stay within 2x of
// steady state, while foreground freezes every stripe for the entire
// snapshot write.
func BenchmarkGetDuringRewrite(b *testing.B) {
	const keys = 20_000
	val := strings.Repeat("x", 256)
	for _, mode := range []string{"steady", "background", "foreground"} {
		b.Run(mode, func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "pause.aof")
			s, err := Open(Config{AOFPath: path, Striping: 8})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			for i := 0; i < keys; i++ {
				if err := s.Set(fmt.Sprintf("key-%05d", i), val); err != nil {
					b.Fatal(err)
				}
			}
			done := make(chan struct{})
			finished := make(chan struct{})
			if mode == "steady" {
				close(finished)
			} else {
				go func() {
					defer close(finished)
					for {
						select {
						case <-done:
							return
						default:
						}
						var err error
						if mode == "background" {
							err = s.Rewrite()
						} else {
							err = s.RewriteForeground()
						}
						if err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			lat := make([]time.Duration, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				s.Get(fmt.Sprintf("key-%05d", i%keys))
				lat[i] = time.Since(t0)
			}
			b.StopTimer()
			close(done)
			<-finished
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			p := func(q int) float64 {
				return float64(lat[len(lat)*q/100].Nanoseconds()) / 1e3
			}
			b.ReportMetric(p(50), "p50_us")
			b.ReportMetric(p(99), "p99_us")
			b.ReportMetric(float64(lat[len(lat)-1].Nanoseconds())/1e3, "max_us")
		})
	}
}

package kvstore

import (
	"testing"
	"unsafe"
)

// Compile-time pad assertions: the constant index is only legal when the
// struct size is an exact multiple of the 64-byte cache line, so a lock
// or field change that breaks the padding stops this file from
// compiling — fix the pad array, not the assertion. (sync.RWMutex is 24
// bytes against sync.Mutex's 8; the pads in kvstore.go and staged.go
// are sized for the RWMutex layouts.)
var (
	_ = [1]struct{}{}[unsafe.Sizeof(stripe{})%64]
	_ = [1]struct{}{}[unsafe.Sizeof(pipeStripe{})%64]
)

func TestStripePadding(t *testing.T) {
	if s := unsafe.Sizeof(stripe{}); s%64 != 0 {
		t.Errorf("stripe size %d bytes is not a cache-line multiple", s)
	}
	if s := unsafe.Sizeof(pipeStripe{}); s != 64 {
		t.Errorf("pipeStripe size %d bytes, want exactly one cache line", s)
	}
}

package kvstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
)

// These tests pin the striped profile (Config.Striping > 0) to the
// single-mutex baseline: same observable state, byte-identical AOF for a
// sequential command stream, cross-profile replay in both directions, and
// race-free behavior under concurrent commands, expiry cycles and
// rewrites.

// snapshot flattens a store's live contents into sorted key=value|deadline
// lines for cross-profile comparison.
func snapshot(s *Store) []string {
	var out []string
	s.ForEach(func(k, v string, at time.Time) bool {
		out = append(out, fmt.Sprintf("%s=%s|%d", k, v, at.UnixNano()))
		return true
	})
	sort.Strings(out)
	return out
}

// applyOpStream drives a deterministic mixed command stream (writes,
// TTLs, deletes, a flush, expiry cycles) against s.
func applyOpStream(t *testing.T, s *Store, sim *clock.Sim) {
	t.Helper()
	base := sim.Now()
	for i := 0; i < 60; i++ {
		k := fmt.Sprintf("key-%03d", i)
		if err := s.Set(k, fmt.Sprintf("val-%03d", i)); err != nil {
			t.Fatalf("set %s: %v", k, err)
		}
	}
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("ttl-%03d", i)
		if err := s.SetWithExpiry(k, "transient", base.Add(time.Duration(i+1)*time.Second)); err != nil {
			t.Fatalf("setex %s: %v", k, err)
		}
	}
	if _, err := s.Del("key-000", "key-001", "missing"); err != nil {
		t.Fatalf("del: %v", err)
	}
	if _, err := s.ExpireAt("key-002", base.Add(time.Hour)); err != nil {
		t.Fatalf("expireat: %v", err)
	}
	if _, err := s.Persist("ttl-019"); err != nil {
		t.Fatalf("persist: %v", err)
	}
	if _, err := s.Update("key-003", func(v string, at time.Time) (string, time.Time, error) {
		return v + "+updated", at, nil
	}); err != nil {
		t.Fatalf("update: %v", err)
	}
	sim.Advance(10 * time.Second) // ttl-000..ttl-009 fall due
	s.CycleOnce()
	if err := s.FlushAll(); err != nil {
		t.Fatalf("flushall: %v", err)
	}
	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("post-%03d", i)
		if err := s.SetWithExpiry(k, "after-flush", sim.Now().Add(time.Hour)); err != nil {
			t.Fatalf("set %s: %v", k, err)
		}
	}
}

func TestStripedMatchesLegacyState(t *testing.T) {
	for _, stripes := range []int{4, 16} {
		t.Run(fmt.Sprintf("striping-%d", stripes), func(t *testing.T) {
			simA := clock.NewSim(time.Unix(1_500_000_000, 0))
			simB := clock.NewSim(time.Unix(1_500_000_000, 0))
			legacy, err := Open(Config{Clock: simA, ExpiryMode: ExpiryStrict})
			if err != nil {
				t.Fatal(err)
			}
			defer legacy.Close()
			striped, err := Open(Config{Clock: simB, ExpiryMode: ExpiryStrict, Striping: stripes})
			if err != nil {
				t.Fatal(err)
			}
			defer striped.Close()
			applyOpStream(t, legacy, simA)
			applyOpStream(t, striped, simB)
			a, b := snapshot(legacy), snapshot(striped)
			if len(a) != len(b) {
				t.Fatalf("state size diverged: legacy %d striped %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("state diverged at %d: legacy %q striped %q", i, a[i], b[i])
				}
			}
			if legacy.DBSize() != striped.DBSize() {
				t.Fatalf("dbsize diverged: %d vs %d", legacy.DBSize(), striped.DBSize())
			}
			if legacy.MemoryBytes() != striped.MemoryBytes() {
				t.Fatalf("memory diverged: %d vs %d", legacy.MemoryBytes(), striped.MemoryBytes())
			}
		})
	}
}

// TestStripedAOFByteIdentical: for one sequential command stream, the
// staged pipeline must produce the exact bytes the inline profile writes
// — the two persistence paths are interchangeable on disk. The stream
// avoids expiry cycles: strict-cycle victims come out of a randomized map
// walk, so their DEL order is not byte-stable even between two legacy
// runs.
func TestStripedAOFByteIdentical(t *testing.T) {
	dir := t.TempDir()
	pathA := filepath.Join(dir, "legacy.aof")
	pathB := filepath.Join(dir, "striped.aof")
	base := time.Unix(1_500_000_000, 0)
	stream := func(s *Store) error {
		for i := 0; i < 50; i++ {
			if err := s.Set(fmt.Sprintf("key-%03d", i), fmt.Sprintf("val-%03d", i)); err != nil {
				return err
			}
		}
		for i := 0; i < 20; i++ {
			if err := s.SetWithExpiry(fmt.Sprintf("ttl-%03d", i), "transient", base.Add(time.Duration(i+1)*time.Hour)); err != nil {
				return err
			}
		}
		if _, err := s.Del("key-000", "key-001", "missing"); err != nil {
			return err
		}
		if _, err := s.ExpireAt("key-002", base.Add(time.Hour)); err != nil {
			return err
		}
		if _, err := s.Persist("ttl-019"); err != nil {
			return err
		}
		if err := s.FlushAll(); err != nil {
			return err
		}
		for i := 0; i < 10; i++ {
			if err := s.Set(fmt.Sprintf("post-%03d", i), "after-flush"); err != nil {
				return err
			}
		}
		return nil
	}
	legacy, err := Open(Config{Clock: clock.NewSim(base), AOFPath: pathA})
	if err != nil {
		t.Fatal(err)
	}
	striped, err := Open(Config{Clock: clock.NewSim(base), AOFPath: pathB, Striping: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := stream(legacy); err != nil {
		t.Fatal(err)
	}
	if err := stream(striped); err != nil {
		t.Fatal(err)
	}
	if err := legacy.Close(); err != nil {
		t.Fatal(err)
	}
	if err := striped.Close(); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(pathB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("AOF bytes diverged: legacy %d bytes, striped %d bytes", len(a), len(b))
	}
}

// TestStripedCrossReplay: an AOF written by either profile must replay
// into either profile.
func TestStripedCrossReplay(t *testing.T) {
	for _, w := range []struct {
		name    string
		writer  int
		readers []int
	}{
		{"striped-writes", 8, []int{0, 4}},
		{"legacy-writes", 0, []int{8}},
	} {
		t.Run(w.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "cross.aof")
			sim := clock.NewSim(time.Unix(1_500_000_000, 0))
			src, err := Open(Config{Clock: sim, AOFPath: path, ExpiryMode: ExpiryStrict, Striping: w.writer})
			if err != nil {
				t.Fatal(err)
			}
			applyOpStream(t, src, sim)
			want := snapshot(src)
			if err := src.Close(); err != nil {
				t.Fatal(err)
			}
			for _, stripes := range w.readers {
				sim2 := clock.NewSim(sim.Now())
				dst, err := Open(Config{Clock: sim2, AOFPath: path, ExpiryMode: ExpiryStrict, Striping: stripes})
				if err != nil {
					t.Fatalf("reopen striping=%d: %v", stripes, err)
				}
				got := snapshot(dst)
				dst.Close()
				if len(got) != len(want) {
					t.Fatalf("striping=%d replay size %d want %d", stripes, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("striping=%d replay diverged at %d: %q want %q", stripes, i, got[i], want[i])
					}
				}
			}
		})
	}
}

func TestStripedFsyncAlwaysDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "always.aof")
	s, err := Open(Config{AOFPath: path, AOFSync: FsyncAlways, Striping: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := s.Set(fmt.Sprintf("k%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	// appendfsync always: every acknowledged write is already fsynced, so
	// the durable file is complete before Close.
	st := s.Stats()
	if st.AOFFlushes == 0 {
		t.Fatal("appendfsync always performed no fsyncs")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Config{AOFPath: path, Striping: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if n := s2.DBSize(); n != 100 {
		t.Fatalf("replayed %d keys, want 100", n)
	}
}

func TestStripedRewriteCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rw.aof")
	s, err := Open(Config{AOFPath: path, Striping: 4})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		for i := 0; i < 50; i++ {
			if err := s.Set(fmt.Sprintf("k%d", i), fmt.Sprintf("round-%d", round)); err != nil {
				t.Fatal(err)
			}
		}
	}
	before, err := s.AOFSize()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Rewrite(); err != nil {
		t.Fatal(err)
	}
	after, err := s.AOFSize()
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("rewrite did not compact: %d -> %d", before, after)
	}
	// The pipe must keep appending to the swapped-in file.
	if err := s.Set("post-rewrite", "v"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Config{AOFPath: path, Striping: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, ok := s2.Get("k49"); !ok || v != "round-4" {
		t.Fatalf("k49 = %q,%v after rewrite replay", v, ok)
	}
	if _, ok := s2.Get("post-rewrite"); !ok {
		t.Fatal("post-rewrite write lost")
	}
}

func TestStripedScanCoversAllKeys(t *testing.T) {
	s, err := Open(Config{Striping: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := map[string]bool{}
	for i := 0; i < 97; i++ {
		k := fmt.Sprintf("scan-%03d", i)
		want[k] = true
		if err := s.Set(k, "v"); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]bool{}
	cursor := 0
	for {
		keys, next := s.Scan(cursor, 10)
		for _, k := range keys {
			got[k] = true
		}
		if next == 0 {
			break
		}
		cursor = next
	}
	if len(got) != len(want) {
		t.Fatalf("scan covered %d keys, want %d", len(got), len(want))
	}
	if keys, next := s.Scan(10_000, 10); keys != nil || next != 0 {
		t.Fatalf("out-of-range cursor returned %v,%d", keys, next)
	}
}

// TestStripedConcurrentStress exercises the striped engine under -race:
// concurrent writers, readers, scans, expiry cycles and a rewrite, all
// against a live staged AOF.
func TestStripedConcurrentStress(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stress.aof")
	s, err := Open(Config{AOFPath: path, AOFSync: FsyncEverySec, Striping: 8, MetadataIndexing: true})
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		opsEach = 300
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				k := fmt.Sprintf("w%d-k%d", w, i%50)
				switch i % 7 {
				case 0, 1, 2:
					if err := s.Set(k, fmt.Sprintf("v%d", i)); err != nil {
						t.Errorf("set: %v", err)
						return
					}
				case 3:
					s.Get(k)
				case 4:
					if _, err := s.Del(k); err != nil {
						t.Errorf("del: %v", err)
						return
					}
				case 5:
					// Deadlines are either already past or an hour out, so a
					// key's expired-ness cannot flip between the live snapshot
					// and the replay check below.
					deadline := time.Now().Add(-time.Second)
					if i%2 == 0 {
						deadline = time.Now().Add(time.Hour)
					}
					if err := s.SetWithExpiry(k, "ttl", deadline); err != nil {
						t.Errorf("setex: %v", err)
						return
					}
				case 6:
					n := 0
					s.ForEach(func(string, string, time.Time) bool {
						n++
						return n < 20
					})
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			s.CycleOnce()
			s.Scan(0, 25)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if err := s.Rewrite(); err != nil {
				t.Errorf("rewrite: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	want := snapshot(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Everything the live store held must replay.
	s2, err := Open(Config{AOFPath: path, Striping: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := snapshot(s2)
	if len(got) < len(want) {
		t.Fatalf("replay lost keys: %d < %d", len(got), len(want))
	}
}

func TestStripedInfoAndStats(t *testing.T) {
	s, err := Open(Config{Striping: 5}) // rounds up to 8
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Info()["striping"]; got != "8" {
		t.Fatalf("striping info = %q, want 8", got)
	}
	st := s.Stats()
	if st.Stripes != 8 {
		t.Fatalf("Stats.Stripes = %d, want 8", st.Stripes)
	}
	legacy, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	if got := legacy.Info()["striping"]; got != "0" {
		t.Fatalf("legacy striping info = %q, want 0", got)
	}
}

func TestStripedLogReads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reads.aof")
	s, err := Open(Config{AOFPath: path, LogReads: true, Striping: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Set("a", "1"); err != nil {
		t.Fatal(err)
	}
	s.Get("a")
	s.Get("missing")
	s.Scan(0, 10)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// 1 SET + 2 GET + 1 SCAN — and the read frames must replay as no-ops.
	s2, err := Open(Config{AOFPath: path, LogReads: true, Striping: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, ok := s2.Get("a"); !ok || v != "1" {
		t.Fatalf("a = %q,%v after read-logged replay", v, ok)
	}
	if n := s2.DBSize(); n != 1 {
		t.Fatalf("dbsize = %d, want 1", n)
	}
}

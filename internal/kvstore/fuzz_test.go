package kvstore

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/clock"
)

// kvFrame wraps one encoded command in the securefs plaintext framing
// (4-byte big-endian length prefix).
func kvFrame(args ...string) []byte {
	payload := encodeCommand(nil, args...)
	out := make([]byte, 4, 4+len(payload))
	binary.BigEndian.PutUint32(out, uint32(len(payload)))
	return append(out, payload...)
}

// FuzzAOFDecode feeds arbitrary bytes through the AOF command decoder —
// both the frame-payload grammar (decodeCommand + parseReplayCommand)
// and whole-file replay into both concurrency profiles. Corrupt,
// truncated or overlong input must fail cleanly, never panic, and any
// command that decodes must re-encode to an equivalent command.
func FuzzAOFDecode(f *testing.F) {
	// One seed per command the two writers emit, plus malformed shapes.
	f.Add(encodeCommand(nil, opSet, "key", "value"))
	f.Add(encodeCommand(nil, opSetex, "key", "value", "1500000000000000000"))
	f.Add(encodeCommand(nil, opDel, "key"))
	f.Add(encodeCommand(nil, opExpireAt, "key", "0"))
	f.Add(encodeCommand(nil, opFlushAll))
	f.Add(encodeCommand(nil, opGet, "key"))
	f.Add(encodeCommand(nil, opScan, "*"))
	f.Add(encodeCommand(nil, opIdxScan, "PUR=ads"))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // absurd argc
	f.Add(encodeCommand(nil, opSet, "key", "value")[:3])                      // truncated argument
	f.Add(append(encodeCommand(nil, opDel, "key"), 0xAA))                     // trailing bytes
	f.Add(encodeCommand(nil, opSetex, "key", "value", "not-a-number"))
	f.Add(encodeCommand(nil, "BOGUS", "key"))
	f.Add(binary.AppendUvarint(nil, 3)) // argc promises more than the payload holds

	f.Fuzz(func(t *testing.T, data []byte) {
		args, err := decodeCommand(data)
		if err == nil {
			op, perr := parseReplayCommand(args)
			if perr == nil && !op.read {
				// A decoded write command must apply without panicking...
				st := &stripe{
					dict:    make(map[string]*entry),
					expires: make(map[string]time.Time),
					keyPos:  make(map[string]int),
				}
				st.apply(op)
				// ...and survive an encode/decode round trip intact (the
				// uvarints we emit are minimal, so re-encoding canonicalizes).
				back, derr := decodeCommand(encodeCommand(nil, args...))
				if derr != nil {
					t.Fatalf("re-decode of re-encoded command failed: %v", derr)
				}
				if len(back) != len(args) {
					t.Fatalf("round trip changed arity: %d != %d", len(back), len(args))
				}
				for i := range args {
					if back[i] != args[i] {
						t.Fatalf("round trip changed arg %d: %q != %q", i, back[i], args[i])
					}
				}
			}
		}

		// Whole-file replay: the payload framed as one record, behind a
		// valid SET, with raw fuzz bytes appended as a torn tail. Both the
		// sequential and the concurrent rebuild must fail cleanly or open.
		file := append(kvFrame(opSet, "seed", "v"), kvFrame()...)
		file = append(file[:len(file)-len(kvFrame())], func() []byte {
			payload := data
			out := make([]byte, 4, 4+len(payload))
			binary.BigEndian.PutUint32(out, uint32(len(payload)))
			return append(out, payload...)
		}()...)
		for _, striping := range []int{0, 4} {
			path := filepath.Join(t.TempDir(), "fuzz.aof")
			if err := os.WriteFile(path, file, 0o600); err != nil {
				t.Fatal(err)
			}
			s, err := Open(Config{Clock: clock.NewSim(time.Unix(0, 0)), AOFPath: path, Striping: striping})
			if err != nil {
				continue // clean failure is fine
			}
			// The file opened: the store must be usable afterwards.
			if err := s.Set("post", "recovery"); err != nil {
				t.Fatalf("striping=%d: set after replay: %v", striping, err)
			}
			if err := s.Close(); err != nil {
				t.Fatalf("striping=%d: close after replay: %v", striping, err)
			}
		}
	})
}

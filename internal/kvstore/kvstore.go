// Package kvstore is a from-scratch, in-memory key-value store modeled on
// Redis v5.0, the NoSQL system the paper retrofits (§5.1). It reproduces
// the Redis properties the paper's measurements depend on:
//
//   - a single-threaded command core (one mutex serializes all commands,
//     preserving Redis' contention profile under multi-threaded clients);
//   - an append-only file (AOF) for persistence with the appendfsync
//     spectrum (always / everysec / no), optionally encrypted at rest;
//   - the lazy probabilistic TTL algorithm ("once every 100ms, it samples
//     20 random keys from the set of keys with expire flag set; if any of
//     these twenty have expired, they are actively deleted; if less than 5
//     keys got deleted, then wait till the next iteration, else repeat the
//     loop immediately") plus the paper's strict modification that scans
//     the entire expires set;
//   - lazy deletion of expired keys on access;
//   - by default no secondary indexes: attribute lookups are O(n) scans,
//     which is what makes GDPR metadata queries slow on Redis (§6.2).
//
// Config.MetadataIndexing goes beyond the paper's retrofit (which stopped
// at PostgreSQL because "Redis lacks the support for multiple secondary
// indices"): it maintains inverted indexes over the five equality
// metadata dimensions of stored GDPR records plus an ordered expiry index
// (internal/index), all mutated under the same single store mutex — the
// command core stays single-threaded, only the selector cost profile
// changes from O(n) to O(result). Off by default so the paper's scan
// profile survives as the ablation baseline.
package kvstore

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/gdpr"
	"repro/internal/index"
)

// ExpiryMode selects the active-expiry algorithm.
type ExpiryMode int

// Expiry modes.
const (
	// ExpiryLazy is Redis' native probabilistic sampler.
	ExpiryLazy ExpiryMode = iota
	// ExpiryStrict is the paper's modification: every cycle iterates the
	// entire set of keys with an expiry ("we modify Redis to iterate
	// through the entire list of keys with associated EXPIRE").
	ExpiryStrict
)

func (m ExpiryMode) String() string {
	switch m {
	case ExpiryLazy:
		return "lazy"
	case ExpiryStrict:
		return "strict"
	default:
		return fmt.Sprintf("ExpiryMode(%d)", int(m))
	}
}

// Lazy-expiry constants, straight from Redis' activeExpireCycle.
const (
	// ExpireCyclePeriod is the interval between cycles.
	ExpireCyclePeriod = 100 * time.Millisecond
	// expireSampleSize keys are sampled per iteration.
	expireSampleSize = 20
	// expireRepeatThreshold: if at least this many sampled keys were
	// expired, the loop repeats immediately.
	expireRepeatThreshold = 5
	// expireMaxIterations bounds a single cycle so a strict-heavy cycle
	// cannot spin forever inside one lock hold.
	expireMaxIterations = 1000
)

// Config configures a Store.
type Config struct {
	// Clock supplies time; defaults to the real clock.
	Clock clock.Clock
	// AOFPath enables append-only-file persistence when non-empty.
	AOFPath string
	// AOFSync is the fsync policy for the AOF.
	AOFSync FsyncPolicy
	// EncryptionKey encrypts the AOF at rest (the LUKS substitution).
	EncryptionKey []byte
	// LogReads extends the AOF to record read operations too — the
	// paper's monitoring retrofit ("we update its internal logic to log
	// all interactions including reads and scans"). Requires AOFPath.
	LogReads bool
	// ExpiryMode selects lazy (native) or strict (retrofit) expiry.
	ExpiryMode ExpiryMode
	// MetadataIndexing maintains inverted indexes over the five equality
	// metadata dimensions of stored GDPR wire records (PUR/USR/OBJ/DEC/SHR)
	// plus a B-tree-ordered expiry index, under the store mutex. Values
	// that do not decode as GDPR records are simply not indexed. Indexes
	// are rebuilt during AOF replay.
	MetadataIndexing bool
}

type entry struct {
	value    string
	expireAt time.Time // zero when the key has no TTL
}

// Store is the key-value engine. All commands are safe for concurrent use;
// like Redis, they execute one at a time.
type Store struct {
	mu   sync.Mutex
	dict map[string]*entry
	// expires maps the keys carrying a TTL to their deadline (Redis'
	// "expires" dict, which likewise stores the expire time), so expiry
	// walks never need the main dict.
	expires map[string]time.Time
	// keyOrder supports cursor scans and random sampling without
	// rehashing; index is the key's position in keySlice.
	keySlice []string
	keyPos   map[string]int

	// meta and exp are the metadata-index layer (nil when indexing is
	// off); both are maintained under mu like everything else.
	meta *index.Inverted
	exp  *index.Expiry

	clk      clock.Clock
	aof      *aof
	aofKey   []byte
	logReads bool
	mode     ExpiryMode

	bytes     int64 // sum of key+value bytes currently stored
	fullScans int64 // full-keyspace scans served (ForEach)

	stopExpiry chan struct{}
	expiryDone chan struct{}
	closed     bool
}

// Open creates a Store. If cfg.AOFPath exists, its commands are replayed
// to rebuild state before the store accepts commands.
func Open(cfg Config) (*Store, error) {
	s := &Store{
		dict:     make(map[string]*entry),
		expires:  make(map[string]time.Time),
		keyPos:   make(map[string]int),
		clk:      cfg.Clock,
		logReads: cfg.LogReads,
		mode:     cfg.ExpiryMode,
	}
	if cfg.MetadataIndexing {
		// Created before replay so the AOF rebuild maintains them.
		s.meta = index.NewInverted()
		s.exp = index.NewExpiry()
	}
	if s.clk == nil {
		s.clk = clock.NewReal()
	}
	if cfg.LogReads && cfg.AOFPath == "" {
		return nil, fmt.Errorf("kvstore: LogReads requires an AOF path")
	}
	if cfg.AOFPath != "" {
		if err := replayAOF(cfg.AOFPath, cfg.EncryptionKey, s); err != nil {
			return nil, err
		}
		a, err := openAOF(cfg.AOFPath, cfg.EncryptionKey, cfg.AOFSync, s.clk)
		if err != nil {
			return nil, err
		}
		s.aof = a
		s.aofKey = cfg.EncryptionKey
	}
	return s, nil
}

// ---------------------------------------------------------------------------
// internal helpers (callers hold s.mu)

func (s *Store) addKeyLocked(key string) {
	if _, ok := s.keyPos[key]; ok {
		return
	}
	s.keyPos[key] = len(s.keySlice)
	s.keySlice = append(s.keySlice, key)
}

func (s *Store) removeKeyLocked(key string) {
	pos, ok := s.keyPos[key]
	if !ok {
		return
	}
	last := len(s.keySlice) - 1
	moved := s.keySlice[last]
	s.keySlice[pos] = moved
	s.keyPos[moved] = pos
	s.keySlice = s.keySlice[:last]
	delete(s.keyPos, key)
}

// metaInsert / metaRemove maintain the inverted metadata index for one
// stored value. Values that do not decode as GDPR wire records carry no
// metadata to index and are skipped — the decode per write is the index
// write amplification the Figure 3b retrofit measures on the relational
// side.
func (s *Store) metaInsert(key, value string) {
	if s.meta == nil {
		return
	}
	if rec, err := gdpr.Decode(value); err == nil {
		s.meta.Insert(key, rec)
	}
}

func (s *Store) metaRemove(key, value string) {
	if s.meta == nil {
		return
	}
	if rec, err := gdpr.Decode(value); err == nil {
		s.meta.Remove(key, rec)
	}
}

func (s *Store) setLocked(key, value string, expireAt time.Time) {
	if old, ok := s.dict[key]; ok {
		s.bytes -= int64(len(key) + len(old.value))
		if !old.expireAt.IsZero() {
			delete(s.expires, key)
			if s.exp != nil {
				s.exp.Remove(key, old.expireAt)
			}
		}
		s.metaRemove(key, old.value)
	} else {
		s.addKeyLocked(key)
	}
	s.dict[key] = &entry{value: value, expireAt: expireAt}
	s.bytes += int64(len(key) + len(value))
	if !expireAt.IsZero() {
		s.expires[key] = expireAt
		if s.exp != nil {
			s.exp.Set(key, expireAt)
		}
	}
	s.metaInsert(key, value)
}

func (s *Store) deleteLocked(key string) bool {
	e, ok := s.dict[key]
	if !ok {
		return false
	}
	s.bytes -= int64(len(key) + len(e.value))
	if !e.expireAt.IsZero() && s.exp != nil {
		s.exp.Remove(key, e.expireAt)
	}
	s.metaRemove(key, e.value)
	delete(s.dict, key)
	delete(s.expires, key)
	s.removeKeyLocked(key)
	return true
}

// expireAtLocked rewrites key's TTL deadline (zero clears it), keeping
// the expires dict and the ordered expiry index in sync. It reports
// whether the key exists.
func (s *Store) expireAtLocked(key string, t time.Time) bool {
	e, ok := s.dict[key]
	if !ok {
		return false
	}
	if !e.expireAt.IsZero() && s.exp != nil {
		s.exp.Remove(key, e.expireAt)
	}
	e.expireAt = t
	if t.IsZero() {
		delete(s.expires, key)
	} else {
		s.expires[key] = t
		if s.exp != nil {
			s.exp.Set(key, t)
		}
	}
	return true
}

// flushLocked drops every key and index entry (FLUSHALL and its replay).
func (s *Store) flushLocked() {
	s.dict = make(map[string]*entry)
	s.expires = make(map[string]time.Time)
	s.keySlice = nil
	s.keyPos = make(map[string]int)
	s.bytes = 0
	if s.meta != nil {
		s.meta.Reset()
	}
	if s.exp != nil {
		s.exp.Reset()
	}
}

// expireIfDueLocked performs Redis-style lazy deletion on access.
func (s *Store) expireIfDueLocked(key string, now time.Time) bool {
	e, ok := s.dict[key]
	if !ok {
		return false
	}
	if e.expireAt.IsZero() || e.expireAt.After(now) {
		return false
	}
	s.deleteLocked(key)
	return true
}

// ---------------------------------------------------------------------------
// commands

// Set stores value under key with no TTL, logging to the AOF if enabled.
func (s *Store) Set(key, value string) error {
	return s.SetWithExpiry(key, value, time.Time{})
}

// SetWithExpiry stores value under key; a non-zero expireAt arms a TTL.
func (s *Store) SetWithExpiry(key, value string, expireAt time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	s.setLocked(key, value, expireAt)
	if s.aof != nil {
		return s.aof.appendSet(key, value, expireAt)
	}
	return nil
}

// Get returns the value for key. Expired keys are deleted on access and
// reported as missing.
func (s *Store) Get(key string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", false
	}
	now := s.clk.Now()
	if s.expireIfDueLocked(key, now) {
		s.maybeLogReadLocked("GET", key)
		return "", false
	}
	e, ok := s.dict[key]
	if !ok {
		s.maybeLogReadLocked("GET", key)
		return "", false
	}
	s.maybeLogReadLocked("GET", key)
	return e.value, true
}

func (s *Store) maybeLogReadLocked(op, key string) {
	if s.logReads && s.aof != nil {
		// Read logging failures do not fail the read (Redis' AOF write
		// errors are handled out-of-band); they surface on Sync/Close.
		_ = s.aof.appendRead(op, key)
	}
}

// Update atomically applies fn to the current value and expiry of key
// under the store lock, storing the result. It returns false if the key
// is missing or expired. fn must not call back into the store. If fn
// returns an error, the key is left unchanged and the error is returned.
func (s *Store) Update(key string, fn func(value string, expireAt time.Time) (string, time.Time, error)) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, errClosed
	}
	now := s.clk.Now()
	if s.expireIfDueLocked(key, now) {
		return false, nil
	}
	e, ok := s.dict[key]
	if !ok {
		return false, nil
	}
	newValue, newExpiry, err := fn(e.value, e.expireAt)
	if err != nil {
		return false, err
	}
	s.setLocked(key, newValue, newExpiry)
	if s.aof != nil {
		return true, s.aof.appendSet(key, newValue, newExpiry)
	}
	return true, nil
}

// Del removes the given keys, returning how many existed.
func (s *Store) Del(keys ...string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, errClosed
	}
	n := 0
	for _, k := range keys {
		if s.deleteLocked(k) {
			n++
			if s.aof != nil {
				if err := s.aof.appendDel(k); err != nil {
					return n, err
				}
			}
		}
	}
	return n, nil
}

// Exists reports whether key is present and unexpired.
func (s *Store) Exists(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.expireIfDueLocked(key, s.clk.Now()) {
		return false
	}
	_, ok := s.dict[key]
	return ok
}

// ExpireAt arms a TTL on an existing key. It reports whether the key exists.
func (s *Store) ExpireAt(key string, t time.Time) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, errClosed
	}
	if !s.expireAtLocked(key, t) {
		return false, nil
	}
	if s.aof != nil {
		return true, s.aof.appendExpireAt(key, t)
	}
	return true, nil
}

// TTL returns the remaining lifetime of key. ok is false if the key does
// not exist; a zero duration with ok=true means no TTL is set.
func (s *Store) TTL(key string) (time.Duration, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clk.Now()
	if s.expireIfDueLocked(key, now) {
		return 0, false
	}
	e, ok := s.dict[key]
	if !ok {
		return 0, false
	}
	if e.expireAt.IsZero() {
		return 0, true
	}
	return e.expireAt.Sub(now), true
}

// Persist removes the TTL from key, reporting whether a TTL was removed.
func (s *Store) Persist(key string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, errClosed
	}
	e, ok := s.dict[key]
	if !ok || e.expireAt.IsZero() {
		return false, nil
	}
	s.expireAtLocked(key, time.Time{})
	if s.aof != nil {
		return true, s.aof.appendExpireAt(key, time.Time{})
	}
	return true, nil
}

// DBSize returns the number of keys (including not-yet-expired ones).
func (s *Store) DBSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.dict)
}

// ExpiresSize returns the number of keys carrying a TTL.
func (s *Store) ExpiresSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.expires)
}

// MemoryBytes approximates Redis' used-memory for the dataset: the sum of
// key and value bytes currently stored. It feeds the space-overhead metric.
func (s *Store) MemoryBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// ForEach invokes fn for every live (unexpired) key under the store lock,
// stopping early if fn returns false. This is the engine's only way to
// evaluate attribute predicates — the O(n) scan the paper attributes to
// Redis' lack of secondary indexes. Expired-but-unreaped keys are skipped
// (and counted) but not deleted, since fn must not mutate during iteration.
func (s *Store) ForEach(fn func(key, value string, expireAt time.Time) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fullScans++
	now := s.clk.Now()
	for _, k := range s.keySlice {
		e := s.dict[k]
		if !e.expireAt.IsZero() && !e.expireAt.After(now) {
			continue
		}
		if !fn(k, e.value, e.expireAt) {
			break
		}
	}
	if s.logReads && s.aof != nil {
		_ = s.aof.appendRead("SCAN", "*")
	}
}

// IndexedForEach resolves the records whose attr metadata contains value
// through the inverted metadata index and invokes fn for each live
// (unexpired) one in sorted key order, all under one lock hold — O(result)
// instead of ForEach's O(n). It reports false, having visited nothing,
// when metadata indexing is off or attr is not an inverted dimension;
// callers then fall back to the scan. Expired-but-unreaped keys are
// skipped but not deleted, mirroring ForEach's semantics exactly so the
// two access paths stay byte-equivalent.
func (s *Store) IndexedForEach(attr gdpr.Attribute, value string, fn func(key, value string, expireAt time.Time) bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.meta == nil {
		return false
	}
	keys, ok := s.meta.Lookup(attr, value)
	if !ok {
		return false
	}
	now := s.clk.Now()
	for _, k := range keys {
		e := s.dict[k]
		if e == nil {
			continue // unreachable while the index is maintained; stay safe
		}
		if !e.expireAt.IsZero() && !e.expireAt.After(now) {
			continue
		}
		if !fn(k, e.value, e.expireAt) {
			break
		}
	}
	s.maybeLogReadLocked("IDXSCAN", string(attr)+"="+value)
	return true
}

// FullScans reports how many full-keyspace scans (ForEach) the store has
// served; the indexing tests pin that indexed selectors perform none.
func (s *Store) FullScans() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fullScans
}

// IndexBytes approximates the memory held by the metadata-index layer
// (inverted postings plus ordered expiry entries); 0 when indexing is
// off. It is the Redis-model input to Table 3's indexing space overhead.
func (s *Store) IndexBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.meta == nil {
		return 0
	}
	return s.meta.Bytes() + s.exp.Bytes()
}

// Scan returns up to count keys starting at cursor, plus the next cursor
// (0 when the iteration completed). Like Redis SCAN it guarantees that
// keys present for the whole scan are returned at least once.
func (s *Store) Scan(cursor, count int) ([]string, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cursor < 0 || cursor >= len(s.keySlice) {
		s.maybeLogReadLocked("SCAN", "*")
		return nil, 0
	}
	end := cursor + count
	if end > len(s.keySlice) {
		end = len(s.keySlice)
	}
	out := append([]string(nil), s.keySlice[cursor:end]...)
	next := end
	if next >= len(s.keySlice) {
		next = 0
	}
	s.maybeLogReadLocked("SCAN", "*")
	return out, next
}

// FlushAll removes all keys.
func (s *Store) FlushAll() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	s.flushLocked()
	if s.aof != nil {
		return s.aof.appendFlushAll()
	}
	return nil
}

// Info returns server facts, GET-SYSTEM-FEATURES style.
func (s *Store) Info() map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	info := map[string]string{
		"engine":            "kvstore (redis-model)",
		"keys":              fmt.Sprintf("%d", len(s.dict)),
		"expires":           fmt.Sprintf("%d", len(s.expires)),
		"expiry_mode":       s.mode.String(),
		"aof":               "off",
		"log_reads":         fmt.Sprintf("%v", s.logReads),
		"metadata_indexing": fmt.Sprintf("%v", s.meta != nil),
	}
	if s.aof != nil {
		info["aof"] = s.aof.policy.String()
		info["aof_encrypted"] = fmt.Sprintf("%v", s.aof.encrypted)
	}
	return info
}

// Sync flushes the AOF to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.aof == nil {
		return nil
	}
	return s.aof.sync()
}

// AOFSize returns the AOF's on-disk size in bytes (0 without an AOF).
func (s *Store) AOFSize() (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.aof == nil {
		return 0, nil
	}
	return s.aof.size()
}

// Close stops background expiry and closes the AOF. Close is idempotent.
func (s *Store) Close() error {
	s.StopExpiry()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.aof != nil {
		return s.aof.close()
	}
	return nil
}

var errClosed = fmt.Errorf("kvstore: store is closed")

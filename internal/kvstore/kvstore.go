// Package kvstore is a from-scratch, in-memory key-value store modeled on
// Redis v5.0, the NoSQL system the paper retrofits (§5.1). It reproduces
// the Redis properties the paper's measurements depend on:
//
//   - a single-threaded command core (one mutex serializes all commands,
//     preserving Redis' contention profile under multi-threaded clients);
//   - an append-only file (AOF) for persistence with the appendfsync
//     spectrum (always / everysec / no), optionally encrypted at rest;
//   - the lazy probabilistic TTL algorithm ("once every 100ms, it samples
//     20 random keys from the set of keys with expire flag set; if any of
//     these twenty have expired, they are actively deleted; if less than 5
//     keys got deleted, then wait till the next iteration, else repeat the
//     loop immediately") plus the paper's strict modification that scans
//     the entire expires set;
//   - lazy deletion of expired keys on access;
//   - by default no secondary indexes: attribute lookups are O(n) scans,
//     which is what makes GDPR metadata queries slow on Redis (§6.2).
//
// Config.Striping goes beyond that faithful profile: N > 0 partitions the
// keyspace into cacheline-padded, power-of-two hash stripes, each guarded
// by its own reader/writer lock (point reads and selector copy-outs run
// shared; writers and the lazy-expiry upgrade run exclusive) and
// carrying its own expires dict, key order and
// metadata/expiry indexes, and moves AOF persistence off the command path
// onto a staged group-commit pipeline (a dedicated writer goroutine
// batch-encodes and fsyncs; appendfsync always waits on the group commit,
// everysec/no return immediately). Commands stay linearizable per key;
// multi-key operations (Del over several keys, ForEach, Scan) observe the
// stripes per-stripe-consistently rather than under one global snapshot —
// the same contract the shard router already gives cross-shard queries.
// Striping = 0 (the default) keeps the single-mutex, inline-AOF profile as
// the Redis-faithful ablation baseline; the two profiles produce
// byte-identical AOFs and differential transcripts. See DESIGN.md §1f.
//
// Config.MetadataIndexing goes beyond the paper's retrofit (which stopped
// at PostgreSQL because "Redis lacks the support for multiple secondary
// indices"): it maintains inverted indexes over the five equality
// metadata dimensions of stored GDPR records plus an ordered expiry index
// (internal/index), mutated under the owning stripe's mutex — only the
// selector cost profile changes, from O(n) to O(result). Off by default
// so the paper's scan profile survives as the ablation baseline.
package kvstore

import (
	"fmt"
	"os"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/gdpr"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/pool"
)

// ExpiryMode selects the active-expiry algorithm.
type ExpiryMode int

// Expiry modes.
const (
	// ExpiryLazy is Redis' native probabilistic sampler.
	ExpiryLazy ExpiryMode = iota
	// ExpiryStrict is the paper's modification: every cycle iterates the
	// entire set of keys with an expiry ("we modify Redis to iterate
	// through the entire list of keys with associated EXPIRE").
	ExpiryStrict
)

func (m ExpiryMode) String() string {
	switch m {
	case ExpiryLazy:
		return "lazy"
	case ExpiryStrict:
		return "strict"
	default:
		return fmt.Sprintf("ExpiryMode(%d)", int(m))
	}
}

// Lazy-expiry constants, straight from Redis' activeExpireCycle.
const (
	// ExpireCyclePeriod is the interval between cycles.
	ExpireCyclePeriod = 100 * time.Millisecond
	// expireSampleSize keys are sampled per iteration.
	expireSampleSize = 20
	// expireRepeatThreshold: if at least this many sampled keys were
	// expired, the loop repeats immediately.
	expireRepeatThreshold = 5
	// expireMaxIterations bounds a single cycle so a strict-heavy cycle
	// cannot spin forever inside one lock hold.
	expireMaxIterations = 1000
)

// Config configures a Store.
type Config struct {
	// Clock supplies time; defaults to the real clock.
	Clock clock.Clock
	// AOFPath enables append-only-file persistence when non-empty.
	AOFPath string
	// AOFSync is the fsync policy for the AOF.
	AOFSync FsyncPolicy
	// EncryptionKey encrypts the AOF at rest (the LUKS substitution).
	EncryptionKey []byte
	// LogReads extends the AOF to record read operations too — the
	// paper's monitoring retrofit ("we update its internal logic to log
	// all interactions including reads and scans"). Requires AOFPath.
	LogReads bool
	// ExpiryMode selects lazy (native) or strict (retrofit) expiry.
	ExpiryMode ExpiryMode
	// MetadataIndexing maintains inverted indexes over the five equality
	// metadata dimensions of stored GDPR wire records (PUR/USR/OBJ/DEC/SHR)
	// plus a B-tree-ordered expiry index, under the owning stripe's mutex.
	// Values that do not decode as GDPR records are simply not indexed.
	// Indexes are rebuilt during AOF replay.
	MetadataIndexing bool
	// Striping partitions the keyspace into hash stripes (rounded up to a
	// power of two), each with its own mutex, and routes AOF appends
	// through the staged group-commit pipeline instead of the command
	// path. 0 keeps the Redis-faithful single-mutex, inline-AOF profile.
	Striping int
	// AutoRewritePct arms the automatic AOF rewrite policy (Redis'
	// auto-aof-rewrite-percentage): when the AOF has grown by this
	// percentage over its size after the last rewrite (and past a 1 MiB
	// floor), a rewrite fires — concurrent with traffic in the striped
	// profile, foreground in the legacy one. 0 disables auto rewrites.
	AutoRewritePct int
	// Obs is the observability registry the store exports its counters to
	// (a pull-time collector wrapping Stats, so the hot path gains no new
	// shared atomics); nil means the process-wide obs.Default().
	Obs *obs.Registry
}

type entry struct {
	value    string
	expireAt time.Time // zero when the key has no TTL
}

// kv is one gathered (key, value, deadline) triple; the striped read
// paths collect these under the stripe locks and invoke the caller's
// function afterwards, so user code never runs inside a stripe lock.
type kv struct {
	key      string
	value    string
	expireAt time.Time
}

// stripe is one hash partition of the keyspace: its own dict, expires
// dict, scan order and index shards, all guarded by one reader/writer
// lock. Striped-profile reads share the lock; writers — and every
// legacy-profile command, reads included, because the Redis-faithful
// core serializes everything — take it exclusively. The pad rounds the
// struct to whole cache lines so adjacent stripe locks never share one
// under concurrent commands.
type stripe struct {
	mu   sync.RWMutex
	dict map[string]*entry
	// expires maps the keys carrying a TTL to their deadline (Redis'
	// "expires" dict, which likewise stores the expire time), so expiry
	// walks never need the main dict.
	expires map[string]time.Time
	// keySlice supports cursor scans and random sampling without
	// rehashing; keyPos is the key's position in keySlice.
	keySlice []string
	keyPos   map[string]int

	// meta and exp are this stripe's shard of the metadata-index layer
	// (nil when indexing is off); maintained under mu like the dicts.
	meta *index.Inverted
	exp  *index.Expiry

	bytes int64 // sum of key+value bytes stored in this stripe

	// arena recycles entry structs within the stripe — freed on DEL or
	// expiry, reused by the next insert — so steady-state SET/DEL churn
	// allocates no per-entry garbage. Guarded by mu like the dicts.
	arena pool.Arena[entry]

	// reads / writes count lock acquisitions by mode: reads are read-path
	// visits (shared in the striped profile, still exclusive in the
	// legacy one), writes are exclusive mutating holds (commands,
	// lazy-expiry upgrades, expiry cycles, global freezes). They feed the
	// Stats lock-traffic block.
	reads  atomic.Int64
	writes atomic.Int64
	// contended counts lock acquisitions that found the stripe already
	// held in a conflicting mode (the Try* probe failed and the caller
	// blocked) — the Stats/obs stripe-contention signal.
	contended atomic.Int64

	_ [24]byte
}

// Store is the key-value engine. All commands are safe for concurrent
// use. With Striping = 0 they execute one at a time, like Redis; with
// Striping > 0 commands on different stripes run in parallel.
type Store struct {
	stripes []stripe
	mask    uint32
	// striped selects the concurrency profile: false is the faithful
	// single-mutex core with inline AOF appends, true the lock-striped
	// core with the staged AOF pipeline.
	striped bool

	clk      clock.Clock
	aof      *aof     // inline AOF (single-mutex profile); nil otherwise
	pipe     *aofPipe // staged AOF (striped profile); nil otherwise
	aofKey   []byte
	logReads bool
	mode     ExpiryMode

	fullScans atomic.Int64 // full-keyspace scans served (ForEach)
	closed    atomic.Bool
	obsColl   *obs.CollectorHandle

	// Rewrite/recovery bookkeeping. aofBase is the AOF's size at open /
	// after the last rewrite; aofAppended approximates bytes appended
	// since — the pair drives the AutoRewritePct ratio without touching
	// the file. rewriteRunning keeps auto-triggered rewrites to one in
	// flight.
	autoPct           int
	aofBase           atomic.Int64
	aofAppended       atomic.Int64
	rewriteRunning    atomic.Bool
	rewrites          atomic.Int64
	lastRewriteMicros atomic.Int64
	divertedFrames    atomic.Int64
	replayOps         atomic.Int64
	replayMicros      atomic.Int64

	// expMu guards the background expiry-loop registration: exclusive for
	// start/stop, shared for liveness checks.
	expMu      sync.RWMutex
	stopExpiry chan struct{}
	expiryDone chan struct{}
}

// nextPow2 rounds n up to the next power of two (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Stats snapshots the engine's concurrency and persistence counters —
// the kvstore block of gdprbench -json, mirroring the audit pipeline's
// counters block.
type Stats struct {
	// Stripes is the number of hash stripes (1 in the single-mutex
	// profile).
	Stripes int
	// FullScans counts full-keyspace ForEach scans served.
	FullScans int64
	// Bytes is the dataset's in-memory footprint (key+value bytes).
	Bytes int64
	// IndexBytes approximates the metadata-index layer's footprint.
	IndexBytes int64
	// AOFBatches counts AOF group commits (inline profile: one per
	// appended command).
	AOFBatches int64
	// AOFFlushes counts AOF fsyncs.
	AOFFlushes int64
	// LockContention counts command-path stripe-lock acquisitions that
	// found the lock already held in a conflicting mode and had to block
	// — the striping-effectiveness signal (0 means stripes never collide).
	LockContention int64
	// ReadLocks / WriteLocks split stripe-lock traffic by mode: reads are
	// read-path acquisitions (shared in the striped profile; the legacy
	// profile's read commands still hold the lock exclusively but count
	// here, so the traffic split stays comparable across profiles), writes
	// are exclusive mutating holds (commands, lazy-expiry upgrades, expiry
	// cycles, global freezes).
	ReadLocks  int64
	WriteLocks int64
	// AOFRewrites counts completed AOF rewrites (manual and auto-
	// triggered); AOFLastRewriteMicros is the last one's wall-clock
	// duration, and AOFRewriteDiverted the total command frames captured
	// by rewrite buffers while snapshots streamed (0 in the foreground
	// paths, which freeze writers instead).
	AOFRewrites          int64
	AOFLastRewriteMicros int64
	AOFRewriteDiverted   int64
	// ReplayOps / ReplayMicros describe the Open-time AOF replay: frames
	// applied and wall-clock time — the recovery cost a rewrite bounds to
	// O(live keys).
	ReplayOps    int64
	ReplayMicros int64
}

// Open creates a Store. If cfg.AOFPath exists, its commands are replayed
// to rebuild state before the store accepts commands; the striped
// profile rebuilds stripes concurrently.
func Open(cfg Config) (*Store, error) {
	striped := cfg.Striping > 0
	n := 1
	if striped {
		n = nextPow2(cfg.Striping)
	}
	s := &Store{
		stripes:  make([]stripe, n),
		mask:     uint32(n - 1),
		striped:  striped,
		clk:      cfg.Clock,
		logReads: cfg.LogReads,
		mode:     cfg.ExpiryMode,
	}
	for i := range s.stripes {
		st := &s.stripes[i]
		st.dict = make(map[string]*entry)
		st.expires = make(map[string]time.Time)
		st.keyPos = make(map[string]int)
		if cfg.MetadataIndexing {
			// Created before replay so the AOF rebuild maintains them.
			st.meta = index.NewInverted()
			st.exp = index.NewExpiry()
		}
	}
	if s.clk == nil {
		s.clk = clock.NewReal()
	}
	if cfg.LogReads && cfg.AOFPath == "" {
		return nil, fmt.Errorf("kvstore: LogReads requires an AOF path")
	}
	if cfg.AOFPath != "" {
		// A leftover ".rewrite" tmp is a rewrite that crashed before its
		// atomic rename: the live AOF is still authoritative and the tmp
		// must never be replayed.
		os.Remove(cfg.AOFPath + ".rewrite")
		replayStart := time.Now()
		if err := replayAOF(cfg.AOFPath, cfg.EncryptionKey, s); err != nil {
			return nil, err
		}
		s.replayMicros.Store(time.Since(replayStart).Microseconds())
		if striped {
			p, err := openPipe(cfg.AOFPath, cfg.EncryptionKey, cfg.AOFSync, s.clk)
			if err != nil {
				return nil, err
			}
			s.pipe = p
			if sz, err := p.file.Size(); err == nil {
				s.aofBase.Store(sz)
			}
		} else {
			a, err := openAOF(cfg.AOFPath, cfg.EncryptionKey, cfg.AOFSync, s.clk)
			if err != nil {
				return nil, err
			}
			s.aof = a
			if sz, err := a.size(); err == nil {
				s.aofBase.Store(sz)
			}
		}
		s.aofKey = cfg.EncryptionKey
		s.autoPct = cfg.AutoRewritePct
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.Default()
	}
	// Pull-time export: Stats() already sums the per-stripe atomics, so a
	// scrape pays the summation and the command path pays nothing. Several
	// open stores (shards) emitting the same names roll up by summation.
	s.obsColl = reg.RegisterCollector(func(emit func(string, int64, bool)) {
		stats := s.Stats()
		emit("kvstore_stripes", int64(stats.Stripes), true)
		emit("kvstore_bytes", stats.Bytes, true)
		emit("kvstore_index_bytes", stats.IndexBytes, true)
		emit("kvstore_full_scans_total", stats.FullScans, false)
		emit("kvstore_read_locks_total", stats.ReadLocks, false)
		emit("kvstore_write_locks_total", stats.WriteLocks, false)
		emit("kvstore_lock_contention_total", stats.LockContention, false)
		emit("kvstore_aof_batches_total", stats.AOFBatches, false)
		emit("kvstore_aof_flushes_total", stats.AOFFlushes, false)
		emit("kvstore_aof_rewrites_total", stats.AOFRewrites, false)
		emit("kvstore_aof_last_rewrite_us", stats.AOFLastRewriteMicros, true)
		emit("kvstore_aof_rewrite_diverted_total", stats.AOFRewriteDiverted, false)
		emit("kvstore_replay_ops_total", stats.ReplayOps, false)
		emit("kvstore_replay_us_total", stats.ReplayMicros, false)
	})
	return s, nil
}

// stripeIndex hashes key to its stripe (FNV-1a, masked to the power-of-
// two stripe count).
func (s *Store) stripeIndex(key string) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return int(h & s.mask)
}

func (s *Store) stripeFor(key string) *stripe { return &s.stripes[s.stripeIndex(key)] }

// lockAll acquires every stripe lock in index order (the one total order
// that makes multi-stripe holders — FLUSHALL, Rewrite, Close — deadlock-
// free against each other).
func (s *Store) lockAll() {
	for i := range s.stripes {
		s.stripes[i].writes.Add(1)
		s.stripes[i].mu.Lock()
	}
}

func (s *Store) unlockAll() {
	for i := range s.stripes {
		s.stripes[i].mu.Unlock()
	}
}

// rlock / runlock acquire st for a read-only visit: shared in the
// striped profile, exclusive in the legacy one (the Redis-faithful core
// serializes every command, reads included).
func (s *Store) rlock(st *stripe) {
	st.reads.Add(1)
	if s.striped {
		if !st.mu.TryRLock() {
			st.contended.Add(1)
			st.mu.RLock()
		}
		return
	}
	if !st.mu.TryLock() {
		st.contended.Add(1)
		st.mu.Lock()
	}
}

// wlock acquires st exclusively for a mutating command, counting the
// acquisition and whether it contended.
func (s *Store) wlock(st *stripe) {
	st.writes.Add(1)
	if !st.mu.TryLock() {
		st.contended.Add(1)
		st.mu.Lock()
	}
}

func (s *Store) runlock(st *stripe) {
	if s.striped {
		st.mu.RUnlock()
		return
	}
	st.mu.Unlock()
}

// kvScratch / partsScratch pool the striped selector copy-out buffers
// (gather/ForEach/IndexedForEach). Elements are cleared on Put, so
// pooled scratch never extends the lifetime of gathered values — the
// copy-on-checkout contract internal/pool documents.
var (
	kvScratch    pool.Slice[kv]
	partsScratch pool.Slice[[]kv]
)

// putParts returns a scatter-gather result — the outer slice and every
// per-stripe copy-out — to the pools.
func putParts(parts [][]kv) {
	for i := range parts {
		kvScratch.Put(parts[i])
	}
	partsScratch.Put(parts)
}

// ---------------------------------------------------------------------------
// stripe mutation helpers (callers hold st.mu, or have exclusive access
// during replay)

func (st *stripe) addKey(key string) {
	if _, ok := st.keyPos[key]; ok {
		return
	}
	st.keyPos[key] = len(st.keySlice)
	st.keySlice = append(st.keySlice, key)
}

func (st *stripe) removeKey(key string) {
	pos, ok := st.keyPos[key]
	if !ok {
		return
	}
	last := len(st.keySlice) - 1
	moved := st.keySlice[last]
	st.keySlice[pos] = moved
	st.keyPos[moved] = pos
	st.keySlice = st.keySlice[:last]
	delete(st.keyPos, key)
}

// metaInsert / metaRemove maintain the inverted metadata index for one
// stored value. Values that do not decode as GDPR wire records carry no
// metadata to index and are skipped — the decode per write is the index
// write amplification the Figure 3b retrofit measures on the relational
// side.
func (st *stripe) metaInsert(key, value string) {
	if st.meta == nil {
		return
	}
	if rec, err := gdpr.Decode(value); err == nil {
		st.meta.Insert(key, rec)
	}
}

func (st *stripe) metaRemove(key, value string) {
	if st.meta == nil {
		return
	}
	if rec, err := gdpr.Decode(value); err == nil {
		st.meta.Remove(key, rec)
	}
}

func (st *stripe) set(key, value string, expireAt time.Time) {
	if old, ok := st.dict[key]; ok {
		st.bytes -= int64(len(key) + len(old.value))
		if !old.expireAt.IsZero() {
			delete(st.expires, key)
			if st.exp != nil {
				st.exp.Remove(key, old.expireAt)
			}
		}
		st.metaRemove(key, old.value)
		// Overwrite the entry in place: the exclusive stripe lock excludes
		// shared-lock readers, so nobody can observe it mid-update, and
		// the rewrite allocates nothing.
		old.value = value
		old.expireAt = expireAt
	} else {
		st.addKey(key)
		e := st.arena.New()
		e.value = value
		e.expireAt = expireAt
		st.dict[key] = e
	}
	st.bytes += int64(len(key) + len(value))
	if !expireAt.IsZero() {
		st.expires[key] = expireAt
		if st.exp != nil {
			st.exp.Set(key, expireAt)
		}
	}
	st.metaInsert(key, value)
}

func (st *stripe) del(key string) bool {
	e, ok := st.dict[key]
	if !ok {
		return false
	}
	st.bytes -= int64(len(key) + len(e.value))
	if !e.expireAt.IsZero() && st.exp != nil {
		st.exp.Remove(key, e.expireAt)
	}
	st.metaRemove(key, e.value)
	delete(st.dict, key)
	delete(st.expires, key)
	st.removeKey(key)
	st.arena.Free(e)
	return true
}

// setExpireAt rewrites key's TTL deadline (zero clears it), keeping the
// expires dict and the ordered expiry index in sync. It reports whether
// the key exists.
func (st *stripe) setExpireAt(key string, t time.Time) bool {
	e, ok := st.dict[key]
	if !ok {
		return false
	}
	if !e.expireAt.IsZero() && st.exp != nil {
		st.exp.Remove(key, e.expireAt)
	}
	e.expireAt = t
	if t.IsZero() {
		delete(st.expires, key)
	} else {
		st.expires[key] = t
		if st.exp != nil {
			st.exp.Set(key, t)
		}
	}
	return true
}

// flush drops every key and index entry in this stripe (FLUSHALL and its
// replay).
func (st *stripe) flush() {
	st.dict = make(map[string]*entry)
	st.expires = make(map[string]time.Time)
	st.keySlice = nil
	st.keyPos = make(map[string]int)
	st.bytes = 0
	st.arena.Reset()
	if st.meta != nil {
		st.meta.Reset()
	}
	if st.exp != nil {
		st.exp.Reset()
	}
}

// expireIfDue performs Redis-style lazy deletion on access. Lazy deletes
// write no AOF DEL — replay re-applies the SETEX and the key expires
// again by its own deadline.
func (st *stripe) expireIfDue(key string, now time.Time) bool {
	e, ok := st.dict[key]
	if !ok {
		return false
	}
	if e.expireAt.IsZero() || e.expireAt.After(now) {
		return false
	}
	st.del(key)
	return true
}

// gather collects the live (unexpired) keys of this stripe in scan
// order, under the stripe's shared lock (striped profile only), into a
// pooled scratch slice the caller hands back through putParts.
func (st *stripe) gather(now time.Time) []kv {
	st.reads.Add(1)
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := kvScratch.Get(len(st.keySlice))
	for _, k := range st.keySlice {
		e := st.dict[k]
		if !e.expireAt.IsZero() && !e.expireAt.After(now) {
			continue
		}
		out = append(out, kv{k, e.value, e.expireAt})
	}
	return out
}

// ---------------------------------------------------------------------------
// AOF append helpers: the single-mutex profile appends inline under the
// stripe lock (the faithful command-path cost); the striped profile
// stages the op for the writer goroutine and waits only as far as the
// fsync policy requires. Both emit byte-identical frames.

// stageSet / stageDel / stageExpireAt / stageFlushAll run with the
// caller holding the mutated stripe's lock (or every stripe's, for
// FLUSHALL), so the assigned sequence — hence AOF file order — matches
// apply order per key.

func (s *Store) appendSet(key, value string, expireAt time.Time) (uint64, error) {
	// ~frame size; feeds the auto-rewrite growth ratio, not accounting.
	s.aofAppended.Add(int64(len(key)+len(value)) + 16)
	if s.aof != nil {
		return 0, s.aof.appendSet(key, value, expireAt)
	}
	if s.pipe != nil {
		op := stagedOp{op: opSet, key: key, value: value, slotted: true}
		if !expireAt.IsZero() {
			op.op = opSetex
			op.ns = expireAt.UnixNano()
		}
		return s.pipe.stage(op), nil
	}
	return 0, nil
}

func (s *Store) appendDel(key string) (uint64, error) {
	s.aofAppended.Add(int64(len(key)) + 16)
	if s.aof != nil {
		return 0, s.aof.appendDel(key)
	}
	if s.pipe != nil {
		return s.pipe.stage(stagedOp{op: opDel, key: key, slotted: true}), nil
	}
	return 0, nil
}

func (s *Store) appendExpireAt(key string, t time.Time) (uint64, error) {
	s.aofAppended.Add(int64(len(key)) + 24)
	if s.aof != nil {
		return 0, s.aof.appendExpireAt(key, t)
	}
	if s.pipe != nil {
		var ns int64
		if !t.IsZero() {
			ns = t.UnixNano()
		}
		return s.pipe.stage(stagedOp{op: opExpireAt, key: key, ns: ns, slotted: true}), nil
	}
	return 0, nil
}

// expiryDel records an expiry-cycle DEL. Cycle victims bypass the
// backpressure semaphore (their volume is bounded by the cycle's sample
// budget, and a cycle must not park inside a stripe lock).
func (s *Store) expiryDel(key string) {
	if s.aof != nil {
		_ = s.aof.appendDel(key)
	}
	if s.pipe != nil {
		s.pipe.stage(stagedOp{op: opDel, key: key})
	}
}

// logRead records a read op (GET/SCAN/IDXSCAN) when read logging is on.
// Read logging failures do not fail the read (Redis' AOF write errors
// are handled out-of-band); they surface on Sync/Close.
func (s *Store) logRead(op, operand string) {
	if !s.logReads {
		return
	}
	if s.aof != nil {
		_ = s.aof.appendRead(op, operand)
	}
	if s.pipe != nil {
		s.pipe.stage(stagedOp{op: op, key: operand})
	}
}

// reserve acquires one backpressure slot before a command write (a
// no-op in the inline profile). Callers must not hold a stripe lock.
func (s *Store) reserve() error {
	if s.pipe == nil {
		return nil
	}
	return s.pipe.reserve()
}

// unreserve returns an unused slot when the command turned out not to
// stage anything (missing key, no TTL to clear).
func (s *Store) unreserve() {
	if s.pipe != nil {
		s.pipe.release()
	}
}

// commit applies the post-stage wait for one staged write: under
// appendfsync always the caller blocks until a group commit covers seq;
// everysec/no return immediately (surfacing any sticky writer error).
// Every successful write also ticks the auto-rewrite policy here, off
// the stripe lock.
func (s *Store) commit(seq uint64, err error) error {
	if err == nil && s.pipe != nil && seq != 0 {
		err = s.pipe.commit(seq)
	}
	if err == nil {
		s.maybeAutoRewrite()
	}
	return err
}

// ---------------------------------------------------------------------------
// commands

// Set stores value under key with no TTL, logging to the AOF if enabled.
func (s *Store) Set(key, value string) error {
	return s.SetWithExpiry(key, value, time.Time{})
}

// SetWithExpiry stores value under key; a non-zero expireAt arms a TTL.
func (s *Store) SetWithExpiry(key, value string, expireAt time.Time) error {
	if err := s.reserve(); err != nil {
		return err
	}
	st := s.stripeFor(key)
	s.wlock(st)
	if s.closed.Load() {
		st.mu.Unlock()
		s.unreserve()
		return errClosed
	}
	st.set(key, value, expireAt)
	seq, err := s.appendSet(key, value, expireAt)
	st.mu.Unlock()
	return s.commit(seq, err)
}

// Get returns the value for key. Expired keys are deleted on access and
// reported as missing. The striped profile serves hits and misses under
// a shared stripe lock, upgrading to the exclusive lock only when it
// finds a due deadline; the legacy profile keeps the exclusive lock so
// the Redis-faithful core stays fully serialized.
func (s *Store) Get(key string) (string, bool) {
	st := s.stripeFor(key)
	if !s.striped {
		st.reads.Add(1)
		st.mu.Lock()
		defer st.mu.Unlock()
		if s.closed.Load() {
			return "", false
		}
		now := s.clk.Now()
		if st.expireIfDue(key, now) {
			s.logRead(opGet, key)
			return "", false
		}
		e, ok := st.dict[key]
		if !ok {
			s.logRead(opGet, key)
			return "", false
		}
		s.logRead(opGet, key)
		return e.value, true
	}
	st.reads.Add(1)
	st.mu.RLock()
	if s.closed.Load() {
		st.mu.RUnlock()
		return "", false
	}
	now := s.clk.Now()
	e, ok := st.dict[key]
	if ok && !e.expireAt.IsZero() && !e.expireAt.After(now) {
		st.mu.RUnlock()
		s.lazyExpire(st, key, now, opGet)
		return "", false
	}
	var v string
	if ok {
		// Copying the string header under the shared lock is what makes
		// the in-place entry overwrite in stripe.set safe: writers are
		// excluded until RUnlock, and the bytes themselves are immutable.
		v = e.value
	}
	s.logRead(opGet, key)
	st.mu.RUnlock()
	return v, ok
}

// lazyExpire is the read path's lock upgrade: a reader that observed a
// due deadline under the shared lock drops it, takes the exclusive lock
// and re-checks before deleting — the key may have been deleted,
// overwritten or re-armed in the unlocked window, in which case
// expireIfDue correctly does nothing. logOp, when non-empty, records the
// triggering read once under the exclusive hold, matching the legacy
// profile's log position.
func (s *Store) lazyExpire(st *stripe, key string, now time.Time, logOp string) {
	s.wlock(st)
	defer st.mu.Unlock()
	if s.closed.Load() {
		return
	}
	st.expireIfDue(key, now)
	if logOp != "" {
		s.logRead(logOp, key)
	}
}

// Update atomically applies fn to the current value and expiry of key
// under the key's stripe lock, storing the result. It returns false if
// the key is missing or expired. fn must not call back into the store.
// If fn returns an error, the key is left unchanged and the error is
// returned.
func (s *Store) Update(key string, fn func(value string, expireAt time.Time) (string, time.Time, error)) (bool, error) {
	if err := s.reserve(); err != nil {
		return false, err
	}
	st := s.stripeFor(key)
	s.wlock(st)
	if s.closed.Load() {
		st.mu.Unlock()
		s.unreserve()
		return false, errClosed
	}
	now := s.clk.Now()
	if st.expireIfDue(key, now) {
		st.mu.Unlock()
		s.unreserve()
		return false, nil
	}
	e, ok := st.dict[key]
	if !ok {
		st.mu.Unlock()
		s.unreserve()
		return false, nil
	}
	newValue, newExpiry, err := fn(e.value, e.expireAt)
	if err != nil {
		st.mu.Unlock()
		s.unreserve()
		return false, err
	}
	st.set(key, newValue, newExpiry)
	seq, err := s.appendSet(key, newValue, newExpiry)
	st.mu.Unlock()
	return true, s.commit(seq, err)
}

// Del removes the given keys, returning how many existed. In the
// single-mutex profile the whole multi-key delete holds the one lock,
// like Redis' atomic DEL; the striped profile deletes per key under each
// key's stripe lock (per-key linearizable, not atomic across keys — the
// shard router's cross-shard contract).
func (s *Store) Del(keys ...string) (int, error) {
	if !s.striped {
		st := &s.stripes[0]
		s.wlock(st)
		defer st.mu.Unlock()
		if s.closed.Load() {
			return 0, errClosed
		}
		n := 0
		for _, k := range keys {
			if st.del(k) {
				n++
				if _, err := s.appendDel(k); err != nil {
					return n, err
				}
			}
		}
		return n, nil
	}
	n := 0
	var lastSeq uint64
	for _, k := range keys {
		if err := s.reserve(); err != nil {
			return n, err
		}
		st := s.stripeFor(k)
		s.wlock(st)
		if s.closed.Load() {
			st.mu.Unlock()
			s.unreserve()
			return n, errClosed
		}
		if !st.del(k) {
			st.mu.Unlock()
			s.unreserve()
			continue
		}
		n++
		seq, _ := s.appendDel(k)
		st.mu.Unlock()
		lastSeq = seq
	}
	// One durability wait covers the batch: group commits are ordered,
	// so the last staged DEL being durable implies the earlier ones are.
	return n, s.commit(lastSeq, nil)
}

// Exists reports whether key is present and unexpired.
func (s *Store) Exists(key string) bool {
	st := s.stripeFor(key)
	if !s.striped {
		st.reads.Add(1)
		st.mu.Lock()
		defer st.mu.Unlock()
		if st.expireIfDue(key, s.clk.Now()) {
			return false
		}
		_, ok := st.dict[key]
		return ok
	}
	st.reads.Add(1)
	st.mu.RLock()
	now := s.clk.Now()
	e, ok := st.dict[key]
	if ok && !e.expireAt.IsZero() && !e.expireAt.After(now) {
		st.mu.RUnlock()
		s.lazyExpire(st, key, now, "")
		return false
	}
	st.mu.RUnlock()
	return ok
}

// ExpireAt arms a TTL on an existing key. It reports whether the key exists.
func (s *Store) ExpireAt(key string, t time.Time) (bool, error) {
	if err := s.reserve(); err != nil {
		return false, err
	}
	st := s.stripeFor(key)
	s.wlock(st)
	if s.closed.Load() {
		st.mu.Unlock()
		s.unreserve()
		return false, errClosed
	}
	if !st.setExpireAt(key, t) {
		st.mu.Unlock()
		s.unreserve()
		return false, nil
	}
	seq, err := s.appendExpireAt(key, t)
	st.mu.Unlock()
	return true, s.commit(seq, err)
}

// TTL returns the remaining lifetime of key. ok is false if the key does
// not exist; a zero duration with ok=true means no TTL is set.
func (s *Store) TTL(key string) (time.Duration, bool) {
	st := s.stripeFor(key)
	if !s.striped {
		st.reads.Add(1)
		st.mu.Lock()
		defer st.mu.Unlock()
		now := s.clk.Now()
		if st.expireIfDue(key, now) {
			return 0, false
		}
		e, ok := st.dict[key]
		if !ok {
			return 0, false
		}
		if e.expireAt.IsZero() {
			return 0, true
		}
		return e.expireAt.Sub(now), true
	}
	st.reads.Add(1)
	st.mu.RLock()
	now := s.clk.Now()
	e, ok := st.dict[key]
	if !ok {
		st.mu.RUnlock()
		return 0, false
	}
	if !e.expireAt.IsZero() && !e.expireAt.After(now) {
		st.mu.RUnlock()
		s.lazyExpire(st, key, now, "")
		return 0, false
	}
	var d time.Duration
	if !e.expireAt.IsZero() {
		d = e.expireAt.Sub(now)
	}
	st.mu.RUnlock()
	return d, true
}

// Persist removes the TTL from key, reporting whether a TTL was removed.
func (s *Store) Persist(key string) (bool, error) {
	if err := s.reserve(); err != nil {
		return false, err
	}
	st := s.stripeFor(key)
	s.wlock(st)
	if s.closed.Load() {
		st.mu.Unlock()
		s.unreserve()
		return false, errClosed
	}
	e, ok := st.dict[key]
	if !ok || e.expireAt.IsZero() {
		st.mu.Unlock()
		s.unreserve()
		return false, nil
	}
	st.setExpireAt(key, time.Time{})
	seq, err := s.appendExpireAt(key, time.Time{})
	st.mu.Unlock()
	return true, s.commit(seq, err)
}

// DBSize returns the number of keys (including not-yet-expired ones).
func (s *Store) DBSize() int {
	n := 0
	for i := range s.stripes {
		st := &s.stripes[i]
		s.rlock(st)
		n += len(st.dict)
		s.runlock(st)
	}
	return n
}

// ExpiresSize returns the number of keys carrying a TTL.
func (s *Store) ExpiresSize() int {
	n := 0
	for i := range s.stripes {
		st := &s.stripes[i]
		s.rlock(st)
		n += len(st.expires)
		s.runlock(st)
	}
	return n
}

// MemoryBytes approximates Redis' used-memory for the dataset: the sum of
// key and value bytes currently stored. It feeds the space-overhead metric.
func (s *Store) MemoryBytes() int64 {
	var b int64
	for i := range s.stripes {
		st := &s.stripes[i]
		s.rlock(st)
		b += st.bytes
		s.runlock(st)
	}
	return b
}

// ForEach invokes fn for every live (unexpired) key, stopping early if
// fn returns false. This is the engine's only way to evaluate attribute
// predicates — the O(n) scan the paper attributes to Redis' lack of
// secondary indexes. Expired-but-unreaped keys are skipped (and counted)
// but not deleted. In the single-mutex profile fn runs under the store
// lock, exactly like Redis' scan; the striped profile gathers each
// stripe in parallel under its own lock and then invokes fn outside any
// lock — per-stripe consistent, not a global snapshot (the shard
// router's scatter-gather contract). fn must not mutate the store.
func (s *Store) ForEach(fn func(key, value string, expireAt time.Time) bool) {
	s.fullScans.Add(1)
	now := s.clk.Now()
	if !s.striped {
		st := &s.stripes[0]
		st.reads.Add(1)
		st.mu.Lock()
		defer st.mu.Unlock()
		for _, k := range st.keySlice {
			e := st.dict[k]
			if !e.expireAt.IsZero() && !e.expireAt.After(now) {
				continue
			}
			if !fn(k, e.value, e.expireAt) {
				break
			}
		}
		s.logRead(opScan, "*")
		return
	}
	parts := s.gatherAll(now)
	defer putParts(parts)
	for _, part := range parts {
		for _, item := range part {
			if !fn(item.key, item.value, item.expireAt) {
				s.logRead(opScan, "*")
				return
			}
		}
	}
	s.logRead(opScan, "*")
}

// gatherAll snapshots every stripe's live keys in parallel — the
// scatter-gather half of the striped selector paths. The result (outer
// slice and every part) is pooled; callers must release it with
// putParts once they are done with the gathered values.
func (s *Store) gatherAll(now time.Time) [][]kv {
	parts := partsScratch.Get(len(s.stripes))
	parts = parts[:len(s.stripes)]
	var wg sync.WaitGroup
	for i := range s.stripes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			parts[i] = s.stripes[i].gather(now)
		}(i)
	}
	wg.Wait()
	return parts
}

// IndexedForEach resolves the records whose attr metadata contains value
// through the inverted metadata index and invokes fn for each live
// (unexpired) one in sorted key order — O(result) instead of ForEach's
// O(n). It reports false, having visited nothing, when metadata indexing
// is off or attr is not an inverted dimension; callers then fall back to
// the scan. Expired-but-unreaped keys are skipped but not deleted,
// mirroring ForEach's semantics exactly so the two access paths stay
// byte-equivalent. The striped profile looks up each stripe's posting
// shard in parallel and merges; fn runs outside the stripe locks.
func (s *Store) IndexedForEach(attr gdpr.Attribute, value string, fn func(key, value string, expireAt time.Time) bool) bool {
	if s.stripes[0].meta == nil {
		return false
	}
	now := s.clk.Now()
	if !s.striped {
		st := &s.stripes[0]
		st.reads.Add(1)
		st.mu.Lock()
		defer st.mu.Unlock()
		keys, ok := st.meta.Lookup(attr, value)
		if !ok {
			return false
		}
		for _, k := range keys {
			e := st.dict[k]
			if e == nil {
				continue // unreachable while the index is maintained; stay safe
			}
			if !e.expireAt.IsZero() && !e.expireAt.After(now) {
				continue
			}
			if !fn(k, e.value, e.expireAt) {
				break
			}
		}
		s.logRead(opIdxScan, string(attr)+"="+value)
		return true
	}
	// Lookup's ok depends only on whether attr is an indexed dimension,
	// so every stripe agrees; probe under the shared stripe locks in
	// parallel, copying matches out into pooled scratch.
	parts := partsScratch.Get(len(s.stripes))
	parts = parts[:len(s.stripes)]
	defer putParts(parts)
	dim := atomic.Bool{}
	dim.Store(true)
	var wg sync.WaitGroup
	for i := range s.stripes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := &s.stripes[i]
			st.reads.Add(1)
			st.mu.RLock()
			defer st.mu.RUnlock()
			keys, ok := st.meta.Lookup(attr, value)
			if !ok {
				dim.Store(false)
				return
			}
			out := kvScratch.Get(len(keys))
			for _, k := range keys {
				e := st.dict[k]
				if e == nil {
					continue
				}
				if !e.expireAt.IsZero() && !e.expireAt.After(now) {
					continue
				}
				out = append(out, kv{k, e.value, e.expireAt})
			}
			parts[i] = out
		}(i)
	}
	wg.Wait()
	if !dim.Load() {
		return false
	}
	total := 0
	for _, part := range parts {
		total += len(part)
	}
	merged := kvScratch.Get(total)
	defer func() { kvScratch.Put(merged) }()
	for _, part := range parts {
		merged = append(merged, part...)
	}
	// Per-stripe postings come back sorted; restore the global sorted
	// key order the single-mutex profile emits.
	slices.SortFunc(merged, func(a, b kv) int { return strings.Compare(a.key, b.key) })
	for _, item := range merged {
		if !fn(item.key, item.value, item.expireAt) {
			break
		}
	}
	s.logRead(opIdxScan, string(attr)+"="+value)
	return true
}

// FullScans reports how many full-keyspace scans (ForEach) the store has
// served; the indexing tests pin that indexed selectors perform none.
func (s *Store) FullScans() int64 { return s.fullScans.Load() }

// IndexBytes approximates the memory held by the metadata-index layer
// (inverted postings plus ordered expiry entries); 0 when indexing is
// off. It is the Redis-model input to Table 3's indexing space overhead.
func (s *Store) IndexBytes() int64 {
	if s.stripes[0].meta == nil {
		return 0
	}
	var b int64
	for i := range s.stripes {
		st := &s.stripes[i]
		s.rlock(st)
		b += st.meta.Bytes() + st.exp.Bytes()
		s.runlock(st)
	}
	return b
}

// Scan returns up to count keys starting at cursor, plus the next cursor
// (0 when the iteration completed). Like Redis SCAN it guarantees that
// keys present for the whole scan are returned at least once. The striped
// profile treats the cursor as an offset into the concatenation of the
// per-stripe scan orders, locking one stripe at a time — approximate
// under concurrent mutation, exactly like Redis' cursor.
func (s *Store) Scan(cursor, count int) ([]string, int) {
	if !s.striped {
		st := &s.stripes[0]
		st.reads.Add(1)
		st.mu.Lock()
		defer st.mu.Unlock()
		if cursor < 0 || cursor >= len(st.keySlice) {
			s.logRead(opScan, "*")
			return nil, 0
		}
		end := cursor + count
		if end > len(st.keySlice) {
			end = len(st.keySlice)
		}
		out := append([]string(nil), st.keySlice[cursor:end]...)
		next := end
		if next >= len(st.keySlice) {
			next = 0
		}
		s.logRead(opScan, "*")
		return out, next
	}
	if cursor < 0 {
		s.logRead(opScan, "*")
		return nil, 0
	}
	var out []string
	offset, total := 0, 0
	for i := range s.stripes {
		st := &s.stripes[i]
		st.reads.Add(1)
		st.mu.RLock()
		n := len(st.keySlice)
		lo, hi := cursor, cursor+count
		if lo < offset {
			lo = offset
		}
		if hi > offset+n {
			hi = offset + n
		}
		if lo < hi {
			out = append(out, st.keySlice[lo-offset:hi-offset]...)
		}
		offset += n
		total += n
		st.mu.RUnlock()
	}
	s.logRead(opScan, "*")
	if cursor >= total {
		return nil, 0
	}
	next := cursor + count
	if next >= total {
		next = 0
	}
	return out, next
}

// FlushAll removes all keys. The striped profile locks every stripe, so
// the flush is totally ordered against every concurrent command and its
// AOF record lands at the matching position.
func (s *Store) FlushAll() error {
	if err := s.reserve(); err != nil {
		return err
	}
	s.lockAll()
	if s.closed.Load() {
		s.unlockAll()
		s.unreserve()
		return errClosed
	}
	for i := range s.stripes {
		s.stripes[i].flush()
	}
	var seq uint64
	var err error
	if s.aof != nil {
		err = s.aof.appendFlushAll()
	} else if s.pipe != nil {
		seq = s.pipe.stage(stagedOp{op: opFlushAll, slotted: true})
	}
	s.unlockAll()
	return s.commit(seq, err)
}

// Info returns server facts, GET-SYSTEM-FEATURES style.
func (s *Store) Info() map[string]string {
	striping := 0
	if s.striped {
		striping = len(s.stripes)
	}
	info := map[string]string{
		"engine":            "kvstore (redis-model)",
		"keys":              fmt.Sprintf("%d", s.DBSize()),
		"expires":           fmt.Sprintf("%d", s.ExpiresSize()),
		"expiry_mode":       s.mode.String(),
		"striping":          fmt.Sprintf("%d", striping),
		"aof":               "off",
		"log_reads":         fmt.Sprintf("%v", s.logReads),
		"metadata_indexing": fmt.Sprintf("%v", s.stripes[0].meta != nil),
	}
	if s.aof != nil {
		info["aof"] = s.aof.policy.String()
		info["aof_encrypted"] = fmt.Sprintf("%v", s.aof.encrypted)
	}
	if s.pipe != nil {
		info["aof"] = s.pipe.policy.String() + " (staged)"
		info["aof_encrypted"] = fmt.Sprintf("%v", s.pipe.encrypted)
	}
	return info
}

// Stats snapshots the concurrency/persistence counters for gdprbench
// -json's kvstore block.
func (s *Store) Stats() Stats {
	st := Stats{
		Stripes:              len(s.stripes),
		FullScans:            s.fullScans.Load(),
		Bytes:                s.MemoryBytes(),
		IndexBytes:           s.IndexBytes(),
		AOFRewrites:          s.rewrites.Load(),
		AOFLastRewriteMicros: s.lastRewriteMicros.Load(),
		AOFRewriteDiverted:   s.divertedFrames.Load(),
		ReplayOps:            s.replayOps.Load(),
		ReplayMicros:         s.replayMicros.Load(),
	}
	for i := range s.stripes {
		st.ReadLocks += s.stripes[i].reads.Load()
		st.WriteLocks += s.stripes[i].writes.Load()
		st.LockContention += s.stripes[i].contended.Load()
	}
	if s.aof != nil {
		s.stripes[0].mu.Lock()
		st.AOFBatches = s.aof.appends
		st.AOFFlushes = s.aof.syncs
		s.stripes[0].mu.Unlock()
	}
	if s.pipe != nil {
		st.AOFBatches, st.AOFFlushes = s.pipe.counters()
	}
	return st
}

// Sync flushes the AOF to stable storage. The staged pipeline first
// barriers on the writer having consumed every staged command.
func (s *Store) Sync() error {
	if s.aof != nil {
		s.stripes[0].mu.Lock()
		defer s.stripes[0].mu.Unlock()
		return s.aof.sync()
	}
	if s.pipe != nil {
		return s.pipe.syncAll()
	}
	return nil
}

// AOFSize returns the AOF's on-disk size in bytes (0 without an AOF).
func (s *Store) AOFSize() (int64, error) {
	if s.aof != nil {
		s.stripes[0].mu.Lock()
		defer s.stripes[0].mu.Unlock()
		return s.aof.size()
	}
	if s.pipe != nil {
		return s.pipe.sizeBarrier()
	}
	return 0, nil
}

// Close stops background expiry, drains the staged AOF pipeline and
// closes the AOF. Close is idempotent.
func (s *Store) Close() error {
	s.obsColl.Close()
	s.StopExpiry()
	s.lockAll()
	if s.closed.Load() {
		s.unlockAll()
		return nil
	}
	// Setting closed under every stripe lock freezes the command
	// sequence: no op can stage after this point, so the pipe drain
	// below is complete.
	s.closed.Store(true)
	s.unlockAll()
	if s.aof != nil {
		s.stripes[0].mu.Lock()
		defer s.stripes[0].mu.Unlock()
		return s.aof.close()
	}
	if s.pipe != nil {
		return s.pipe.close()
	}
	return nil
}

var errClosed = fmt.Errorf("kvstore: store is closed")

package kvstore

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/clock"
	"repro/internal/securefs"
)

func memStore(t *testing.T, clk clock.Clock) *Store {
	t.Helper()
	s, err := Open(Config{Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestSetGetDel(t *testing.T) {
	s := memStore(t, nil)
	if err := s.Set("k1", "v1"); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get("k1"); !ok || v != "v1" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("missing key found")
	}
	if err := s.Set("k1", "v2"); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get("k1"); v != "v2" {
		t.Fatalf("overwrite lost: %q", v)
	}
	n, err := s.Del("k1", "missing")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Del = %d", n)
	}
	if s.Exists("k1") {
		t.Fatal("deleted key exists")
	}
	if s.DBSize() != 0 {
		t.Fatalf("DBSize = %d", s.DBSize())
	}
}

func TestExpiryOnAccess(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	s := memStore(t, sim)
	if err := s.SetWithExpiry("k", "v", sim.Now().Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); !ok {
		t.Fatal("live key missing")
	}
	sim.Advance(2 * time.Minute)
	if _, ok := s.Get("k"); ok {
		t.Fatal("expired key returned")
	}
	// Lazy deletion removed the key entirely.
	if s.DBSize() != 0 || s.ExpiresSize() != 0 {
		t.Fatalf("expired key not reaped: dbsize=%d expires=%d", s.DBSize(), s.ExpiresSize())
	}
}

func TestExistsExpiresLazily(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	s := memStore(t, sim)
	s.SetWithExpiry("k", "v", sim.Now().Add(time.Second))
	sim.Advance(2 * time.Second)
	if s.Exists("k") {
		t.Fatal("expired key exists")
	}
}

func TestTTLAndPersist(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	s := memStore(t, sim)
	s.Set("plain", "v")
	if d, ok := s.TTL("plain"); !ok || d != 0 {
		t.Fatalf("no-TTL key: %v %v", d, ok)
	}
	if _, ok := s.TTL("absent"); ok {
		t.Fatal("absent key has TTL")
	}
	s.SetWithExpiry("tmp", "v", sim.Now().Add(time.Hour))
	if d, ok := s.TTL("tmp"); !ok || d != time.Hour {
		t.Fatalf("TTL = %v %v", d, ok)
	}
	if ok, err := s.Persist("tmp"); err != nil || !ok {
		t.Fatalf("Persist = %v %v", ok, err)
	}
	if ok, _ := s.Persist("tmp"); ok {
		t.Fatal("second Persist should report false")
	}
	if s.ExpiresSize() != 0 {
		t.Fatalf("expires size = %d", s.ExpiresSize())
	}
	sim.Advance(2 * time.Hour)
	if !s.Exists("tmp") {
		t.Fatal("persisted key expired")
	}
}

func TestExpireAt(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	s := memStore(t, sim)
	s.Set("k", "v")
	if ok, err := s.ExpireAt("k", sim.Now().Add(time.Second)); err != nil || !ok {
		t.Fatalf("ExpireAt = %v %v", ok, err)
	}
	if ok, _ := s.ExpireAt("absent", sim.Now()); ok {
		t.Fatal("ExpireAt on absent key reported true")
	}
	sim.Advance(2 * time.Second)
	if s.Exists("k") {
		t.Fatal("key did not expire")
	}
}

func TestOverwriteClearsOldTTL(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	s := memStore(t, sim)
	s.SetWithExpiry("k", "v1", sim.Now().Add(time.Second))
	s.Set("k", "v2") // plain SET clears TTL, like Redis
	sim.Advance(time.Minute)
	if v, ok := s.Get("k"); !ok || v != "v2" {
		t.Fatalf("key expired after overwrite: %q %v", v, ok)
	}
	if s.ExpiresSize() != 0 {
		t.Fatalf("expires size = %d", s.ExpiresSize())
	}
}

func TestMemoryBytesAccounting(t *testing.T) {
	s := memStore(t, nil)
	s.Set("abc", "12345") // 8 bytes
	if got := s.MemoryBytes(); got != 8 {
		t.Fatalf("bytes = %d, want 8", got)
	}
	s.Set("abc", "1") // 4 bytes
	if got := s.MemoryBytes(); got != 4 {
		t.Fatalf("bytes after overwrite = %d, want 4", got)
	}
	s.Del("abc")
	if got := s.MemoryBytes(); got != 0 {
		t.Fatalf("bytes after delete = %d, want 0", got)
	}
}

func TestForEachSkipsExpired(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	s := memStore(t, sim)
	s.Set("live", "v")
	s.SetWithExpiry("dead", "v", sim.Now().Add(time.Second))
	sim.Advance(time.Minute)
	var seen []string
	s.ForEach(func(k, v string, _ time.Time) bool {
		seen = append(seen, k)
		return true
	})
	if len(seen) != 1 || seen[0] != "live" {
		t.Fatalf("ForEach saw %v", seen)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := memStore(t, nil)
	for i := 0; i < 10; i++ {
		s.Set(fmt.Sprintf("k%d", i), "v")
	}
	n := 0
	s.ForEach(func(string, string, time.Time) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("visited %d, want 3", n)
	}
}

func TestScanCursor(t *testing.T) {
	s := memStore(t, nil)
	want := map[string]bool{}
	for i := 0; i < 25; i++ {
		k := fmt.Sprintf("k%d", i)
		s.Set(k, "v")
		want[k] = true
	}
	got := map[string]bool{}
	cursor := 0
	rounds := 0
	for {
		keys, next := s.Scan(cursor, 10)
		for _, k := range keys {
			got[k] = true
		}
		rounds++
		if next == 0 {
			break
		}
		cursor = next
		if rounds > 10 {
			t.Fatal("scan did not terminate")
		}
	}
	if len(got) != len(want) {
		t.Fatalf("scan found %d keys, want %d", len(got), len(want))
	}
	// Scan on empty store.
	s2 := memStore(t, nil)
	if keys, next := s2.Scan(0, 10); keys != nil || next != 0 {
		t.Fatalf("empty scan = %v %d", keys, next)
	}
	// Out-of-range cursor.
	if keys, next := s.Scan(9999, 10); keys != nil || next != 0 {
		t.Fatalf("oob scan = %v %d", keys, next)
	}
}

func TestFlushAll(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	s := memStore(t, sim)
	s.Set("a", "1")
	s.SetWithExpiry("b", "2", sim.Now().Add(time.Hour))
	if err := s.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if s.DBSize() != 0 || s.ExpiresSize() != 0 || s.MemoryBytes() != 0 {
		t.Fatal("flush left state behind")
	}
}

func TestInfo(t *testing.T) {
	s := memStore(t, nil)
	s.Set("a", "1")
	info := s.Info()
	if info["keys"] != "1" || info["aof"] != "off" || info["expiry_mode"] != "lazy" {
		t.Fatalf("info = %v", info)
	}
}

func TestClosedStoreRejectsWrites(t *testing.T) {
	s, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if err := s.Set("k", "v"); err == nil {
		t.Fatal("Set after close should fail")
	}
	if _, err := s.Del("k"); err == nil {
		t.Fatal("Del after close should fail")
	}
	if err := s.FlushAll(); err == nil {
		t.Fatal("FlushAll after close should fail")
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	s := memStore(t, nil)
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := fmt.Sprintf("w%d-k%d", w, i%50)
				switch i % 4 {
				case 0, 1:
					if err := s.Set(k, "v"); err != nil {
						t.Error(err)
						return
					}
				case 2:
					s.Get(k)
				case 3:
					if _, err := s.Del(k); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// Internal key index must be consistent with the dict.
	n := 0
	s.ForEach(func(string, string, time.Time) bool { n++; return true })
	if n != s.DBSize() {
		t.Fatalf("ForEach saw %d keys, DBSize = %d", n, s.DBSize())
	}
}

// TestStoreMatchesModelProperty runs random command sequences against the
// store and a plain map-based model and checks they agree.
func TestStoreMatchesModelProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sim := clock.NewSim(time.Time{})
		s, err := Open(Config{Clock: sim})
		if err != nil {
			return false
		}
		defer s.Close()
		type mval struct {
			v   string
			exp time.Time
		}
		model := map[string]mval{}
		expireModel := func(now time.Time) {
			for k, m := range model {
				if !m.exp.IsZero() && !m.exp.After(now) {
					delete(model, k)
				}
			}
		}
		for i := 0; i < 300; i++ {
			k := fmt.Sprintf("k%d", r.Intn(20))
			switch r.Intn(6) {
			case 0, 1:
				v := fmt.Sprintf("v%d", r.Intn(1000))
				s.Set(k, v)
				model[k] = mval{v: v}
			case 2:
				v := fmt.Sprintf("v%d", r.Intn(1000))
				exp := sim.Now().Add(time.Duration(r.Intn(10)+1) * time.Second)
				s.SetWithExpiry(k, v, exp)
				model[k] = mval{v: v, exp: exp}
			case 3:
				s.Del(k)
				delete(model, k)
			case 4:
				sim.Advance(time.Duration(r.Intn(5)) * time.Second)
				expireModel(sim.Now())
			case 5:
				expireModel(sim.Now())
				got, ok := s.Get(k)
				m, wantOK := model[k]
				if ok != wantOK || (ok && got != m.v) {
					t.Logf("seed %d step %d key %s: store=(%q,%v) model=(%q,%v)",
						seed, i, k, got, ok, m.v, wantOK)
					return false
				}
			}
		}
		// Final full comparison.
		expireModel(sim.Now())
		live := 0
		okAll := true
		s.ForEach(func(k, v string, _ time.Time) bool {
			live++
			if m, ok := model[k]; !ok || m.v != v {
				okAll = false
			}
			return true
		})
		return okAll && live == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAOFPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.aof")
	sim := clock.NewSim(time.Time{})
	s, err := Open(Config{Clock: sim, AOFPath: path})
	if err != nil {
		t.Fatal(err)
	}
	s.Set("a", "1")
	s.SetWithExpiry("b", "2", sim.Now().Add(time.Hour))
	s.Set("c", "3")
	s.Del("c")
	s.ExpireAt("a", sim.Now().Add(2*time.Hour))
	s.Persist("a")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Config{Clock: sim, AOFPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, ok := s2.Get("a"); !ok || v != "1" {
		t.Fatalf("a = %q %v", v, ok)
	}
	if d, ok := s2.TTL("a"); !ok || d != 0 {
		t.Fatalf("a TTL = %v %v, want persisted", d, ok)
	}
	if d, ok := s2.TTL("b"); !ok || d != time.Hour {
		t.Fatalf("b TTL = %v %v", d, ok)
	}
	if s2.Exists("c") {
		t.Fatal("deleted key resurrected")
	}
}

func TestAOFFlushAllReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.aof")
	s, err := Open(Config{AOFPath: path})
	if err != nil {
		t.Fatal(err)
	}
	s.Set("a", "1")
	s.FlushAll()
	s.Set("b", "2")
	s.Close()
	s2, err := Open(Config{AOFPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Exists("a") || !s2.Exists("b") {
		t.Fatal("FLUSHALL replay wrong")
	}
}

func TestAOFEncrypted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.aof")
	key := securefs.Key("kv")
	s, err := Open(Config{AOFPath: path, EncryptionKey: key})
	if err != nil {
		t.Fatal(err)
	}
	s.Set("secret-key", "secret-value")
	s.Close()
	// Wrong key fails replay.
	if _, err := Open(Config{AOFPath: path, EncryptionKey: securefs.Key("wrong")}); err == nil {
		t.Fatal("wrong key should fail to open")
	}
	// Right key restores.
	s2, err := Open(Config{AOFPath: path, EncryptionKey: key})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, ok := s2.Get("secret-key"); !ok || v != "secret-value" {
		t.Fatalf("restore = %q %v", v, ok)
	}
}

func TestAOFLogsReads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.aof")
	s, err := Open(Config{AOFPath: path, LogReads: true})
	if err != nil {
		t.Fatal(err)
	}
	s.Set("k", "v")
	s.Get("k")
	s.Get("nope")
	s.Scan(0, 10)
	s.ForEach(func(string, string, time.Time) bool { return true })
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// 1 SET + 2 GET + 2 SCAN = 5 frames.
	n, err := securefs.CountFrames(path, securefs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("AOF frames = %d, want 5", n)
	}
	// Reads must replay as no-ops.
	s2, err := Open(Config{AOFPath: path, LogReads: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, ok := s2.Get("k"); !ok || v != "v" {
		t.Fatalf("replay with reads = %q %v", v, ok)
	}
}

func TestLogReadsRequiresAOF(t *testing.T) {
	if _, err := Open(Config{LogReads: true}); err == nil {
		t.Fatal("LogReads without AOF should fail")
	}
}

func TestAOFSizeGrowsAndRewriteCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.aof")
	s, err := Open(Config{AOFPath: path})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s.Set("hot", fmt.Sprintf("v%d", i)) // same key overwritten 100×
	}
	before, err := s.AOFSize()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Rewrite(); err != nil {
		t.Fatal(err)
	}
	after, err := s.AOFSize()
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("rewrite did not compact: %d -> %d", before, after)
	}
	if v, ok := s.Get("hot"); !ok || v != "v99" {
		t.Fatalf("post-rewrite value = %q %v", v, ok)
	}
	s.Close()
	// Rewritten AOF must replay correctly.
	s2, err := Open(Config{AOFPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, ok := s2.Get("hot"); !ok || v != "v99" {
		t.Fatalf("replay after rewrite = %q %v", v, ok)
	}
}

func TestRewriteWithoutAOFFails(t *testing.T) {
	s := memStore(t, nil)
	if err := s.Rewrite(); err == nil {
		t.Fatal("Rewrite without AOF should fail")
	}
}

func TestRewritePreservesEncryption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.aof")
	key := securefs.Key("rw")
	s, err := Open(Config{AOFPath: path, EncryptionKey: key})
	if err != nil {
		t.Fatal(err)
	}
	sim := clock.NewSim(time.Time{})
	_ = sim
	s.Set("a", "1")
	s.Set("a", "2")
	if err := s.Rewrite(); err != nil {
		t.Fatal(err)
	}
	s.Set("b", "3")
	s.Close()
	s2, err := Open(Config{AOFPath: path, EncryptionKey: key})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, _ := s2.Get("a"); v != "2" {
		t.Fatalf("a = %q", v)
	}
	if v, _ := s2.Get("b"); v != "3" {
		t.Fatalf("b = %q", v)
	}
}

func TestAOFCommandCodec(t *testing.T) {
	cases := [][]string{
		{"SET", "k", "v"},
		{"SETEX", "k", "v", "12345"},
		{"DEL", "k"},
		{"FLUSHALL"},
		{"GET", ""},
		{"SET", "k with spaces", "value;with;semis\nand\tnewlines"},
	}
	var buf []byte
	for _, args := range cases {
		buf = encodeCommand(buf, args...)
		got, err := decodeCommand(buf)
		if err != nil {
			t.Fatalf("decode %v: %v", args, err)
		}
		if len(got) != len(args) {
			t.Fatalf("arity %d != %d", len(got), len(args))
		}
		for i := range args {
			if got[i] != args[i] {
				t.Fatalf("arg %d = %q, want %q", i, got[i], args[i])
			}
		}
	}
}

func TestAOFCommandCodecErrors(t *testing.T) {
	bad := [][]byte{
		{},
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, // absurd argc
		append(encodeCommand(nil, "SET", "k", "v"), 0x99),            // trailing bytes
		{2, 5, 'a'}, // truncated arg
	}
	for i, p := range bad {
		if _, err := decodeCommand(p); err == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
}

func BenchmarkSetNoAOF(b *testing.B) {
	s, _ := Open(Config{})
	defer s.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Set(fmt.Sprintf("k%d", i%100000), "value-payload-1234567890")
	}
}

func BenchmarkGetNoAOF(b *testing.B) {
	s, _ := Open(Config{})
	defer s.Close()
	for i := 0; i < 100000; i++ {
		s.Set(fmt.Sprintf("k%d", i), "value-payload-1234567890")
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Get(fmt.Sprintf("k%d", i%100000))
	}
}

func BenchmarkGetWithReadLogging(b *testing.B) {
	s, _ := Open(Config{AOFPath: filepath.Join(b.TempDir(), "a.aof"), AOFSync: FsyncEverySec, LogReads: true})
	defer s.Close()
	for i := 0; i < 100000; i++ {
		s.Set(fmt.Sprintf("k%d", i), "value-payload-1234567890")
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Get(fmt.Sprintf("k%d", i%100000))
	}
}

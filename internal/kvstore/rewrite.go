package kvstore

import (
	"encoding/binary"
	"fmt"
	"os"
	"time"

	"repro/internal/securefs"
)

// Background AOF rewrite — Redis' BGREWRITEAOF, done concurrently with
// live traffic instead of under a global freeze:
//
//  1. start diverting: every frame the staged writer appends to the live
//     AOF is also copied into an in-memory rewrite buffer (under the
//     same IO lock as the append, so the copy is exact and ordered);
//  2. snapshot the store stripe by stripe: copy each stripe's (key,
//     value, deadline) triples out under its shared lock, then encode
//     and stream them to path+".rewrite" with no lock held;
//  3. swap under a short exclusive IO window: drain the rewrite buffer
//     onto the new file, fsync, atomically rename over the live AOF and
//     reopen.
//
// Correctness rests on the AOF grammar being idempotent last-writer-wins
// state setters and on the staging protocol's apply-then-stage critical
// section: an op sequenced before the divert began was applied inside
// its stripe's critical section, which the snapshot's shared lock cannot
// enter mid-update — so its effect is in the snapshot. An op applied
// after a stripe's snapshot was staged after the divert began, so its
// frame lands in the rewrite buffer. Ops captured by both re-apply
// idempotently. FLUSHALL holds every stripe lock, so a flush landing
// between two stripe snapshots wipes the mixed prefix via its diverted
// frame, exactly as it wiped the live store.
//
// GETs never block: readers share stripe locks with the snapshot copy.
// Writers to a stripe wait only for that stripe's copy-out (memory
// speed, no IO), plus the swap's buffered-drain window at the end.

// autoRewriteMinBytes is the size floor below which the auto-rewrite
// policy never fires (Redis' auto-aof-rewrite-min-size, scaled to
// benchmark datasets).
const autoRewriteMinBytes = 1 << 20

// beginDivert arms the rewrite buffer. From here every frame the writer
// appends is mirrored into p.divert until swapRewritten or abortDivert.
func (p *aofPipe) beginDivert() error {
	p.fileMu.Lock()
	defer p.fileMu.Unlock()
	if p.fileClosed {
		return errClosed
	}
	p.diverting = true
	p.divert = p.divert[:0]
	p.divertOps = 0
	return nil
}

// abortDivert drops the rewrite buffer (failed rewrite; the live AOF is
// untouched and still authoritative).
func (p *aofPipe) abortDivert() {
	p.fileMu.Lock()
	p.diverting = false
	p.divert = nil
	p.divertOps = 0
	p.fileMu.Unlock()
}

// swapRewritten is the rewrite's exclusive window: with the IO lock held
// it drains the rewrite buffer onto nf, fsyncs it, renames it over the
// live AOF and reopens. Writer batches queue on fileMu for the duration
// (buffered-drain plus one rename — no snapshot IO). Callers hold
// rewriteMu. On an error before the old file is touched the live AOF
// stays authoritative; after that point the pipeline is poisoned via
// fail. Returns the diverted-frame count and the new file's size.
func (p *aofPipe) swapRewritten(nf *securefs.File, tmp string, key []byte) (int64, int64, error) {
	p.fileMu.Lock()
	defer p.fileMu.Unlock()
	abort := func(err error) (int64, int64, error) {
		p.diverting = false
		p.divert = nil
		p.divertOps = 0
		nf.Close()
		os.Remove(tmp)
		return 0, 0, err
	}
	if p.fileClosed {
		return abort(errClosed)
	}
	if p.failed.Load() {
		return abort(p.stickyErr())
	}
	// Drain the rewrite buffer: every frame appended to the old file
	// since the divert began replays onto the new file in commit order.
	buf := p.divert
	for len(buf) > 0 {
		l, n := binary.Uvarint(buf)
		if n <= 0 || uint64(len(buf)-n) < l {
			return abort(fmt.Errorf("kvstore: corrupt rewrite buffer"))
		}
		if err := nf.AppendFrame(buf[n : n+int(l)]); err != nil {
			return abort(err)
		}
		buf = buf[n+int(l):]
	}
	if err := nf.Sync(); err != nil {
		return abort(err)
	}
	if err := nf.Close(); err != nil {
		return abort(err)
	}
	diverted := p.divertOps
	p.diverting = false
	p.divert = nil
	p.divertOps = 0
	// Point of no return: the old handle closes before the rename, so
	// any failure past here poisons the pipeline rather than risking a
	// half-swapped AOF.
	if err := p.file.Close(); err != nil {
		p.fail(err)
		return 0, 0, err
	}
	if err := os.Rename(tmp, p.path); err != nil {
		p.fail(err)
		return 0, 0, err
	}
	na, err := securefs.Append(p.path, securefs.Options{Key: key, BufferSize: 1 << 16})
	if err != nil {
		p.fail(err)
		return 0, 0, err
	}
	p.file = na
	size, _ := na.Size()
	// The new file holds every written seq (snapshot ∪ rewrite buffer)
	// and is fully synced: everything written is durable.
	p.mu.Lock()
	p.durable = p.written
	p.dirty = false
	p.lastSync = p.clk.Now()
	p.mu.Unlock()
	p.cond.Broadcast()
	return diverted, size, nil
}

// backgroundRewrite is the striped profile's concurrent rewrite (see the
// file comment). One runs at a time; close() waits for it via rewriteMu.
func (s *Store) backgroundRewrite() error {
	p := s.pipe
	p.rewriteMu.Lock()
	defer p.rewriteMu.Unlock()
	if s.closed.Load() {
		return errClosed
	}
	if err := p.stickyErr(); err != nil {
		return err
	}
	start := time.Now()
	tmp := p.path + ".rewrite"
	var key []byte
	if p.encrypted {
		key = s.aofKey
	}
	nf, err := securefs.Create(tmp, securefs.Options{Key: key, BufferSize: 1 << 16})
	if err != nil {
		return err
	}
	if err := p.beginDivert(); err != nil {
		nf.Close()
		os.Remove(tmp)
		return err
	}
	fail := func(err error) error {
		p.abortDivert()
		nf.Close()
		os.Remove(tmp)
		return err
	}
	// Snapshot stripe by stripe: copy the (key, value, deadline) triples
	// out under the stripe's shared lock — readers proceed concurrently,
	// writers to this stripe wait only for the copy-out — then encode and
	// append with no lock held. Expired-but-unreaped keys are kept, like
	// the foreground snapshot, so replay state is identical either way.
	var buf []byte
	var snap []kv
	for i := range s.stripes {
		st := &s.stripes[i]
		st.reads.Add(1)
		st.mu.RLock()
		snap = snap[:0]
		for _, k := range st.keySlice {
			e := st.dict[k]
			snap = append(snap, kv{k, e.value, e.expireAt})
		}
		st.mu.RUnlock()
		for _, item := range snap {
			if item.expireAt.IsZero() {
				buf = encodeCommand(buf, opSet, item.key, item.value)
			} else {
				buf = encodeCommandNum(buf, item.expireAt.UnixNano(), opSetex, item.key, item.value)
			}
			if err := nf.AppendFrame(buf); err != nil {
				return fail(err)
			}
		}
	}
	diverted, size, err := p.swapRewritten(nf, tmp, key)
	if err != nil {
		return err
	}
	s.finishRewrite(start, diverted, size)
	return nil
}

// finishRewrite records rewrite stats and re-bases the auto-trigger
// ratio on the compacted size.
func (s *Store) finishRewrite(start time.Time, diverted, size int64) {
	s.rewrites.Add(1)
	s.lastRewriteMicros.Store(time.Since(start).Microseconds())
	s.divertedFrames.Add(diverted)
	if reclaimed := s.aofBase.Load() + s.aofAppended.Load() - size; reclaimed > 0 {
		obsRewriteReclaimed.Set(reclaimed)
	}
	obsRewriteNs.ObserveDuration(time.Since(start))
	s.aofBase.Store(size)
	s.aofAppended.Store(0)
}

// maybeAutoRewrite applies the -aofrewrite-pct policy on the write path:
// two atomic loads decide, and the rewrite itself runs on its own
// goroutine (at most one in flight). The policy is Redis' ratio — fire
// when the AOF has grown by pct% over its size after the last rewrite —
// with a floor so small datasets never churn.
func (s *Store) maybeAutoRewrite() {
	if s.autoPct <= 0 {
		return
	}
	base := s.aofBase.Load()
	grown := s.aofAppended.Load()
	if base+grown < autoRewriteMinBytes {
		return
	}
	if grown*100 < base*int64(s.autoPct) {
		return
	}
	if !s.rewriteRunning.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.rewriteRunning.Store(false)
		// Failure here is benign (store closing mid-trigger) or sticky
		// (pipeline poisoned) — either way it resurfaces on the write path.
		_ = s.Rewrite()
	}()
}

package kvstore

import (
	"encoding/binary"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/securefs"
)

// The striped profile's AOF is a two-stage pipeline (the PR 1 WAL /
// audit-pipeline recipe):
//
//	command ── seq (under its data-stripe lock) ── staging stripes ──▶ writer goroutine
//	                                                                      │
//	                                                                      ├─ batch-encode → securefs frames
//	                                                                      ├─ group fsync (appendfsync policy)
//	                                                                      └─ publish written/durable watermarks
//
// Ordering: a write op's sequence number is assigned while the caller
// still holds the mutated key's stripe lock, so for any key, AOF file
// order equals apply order; FLUSHALL sequences while holding every
// stripe lock, so its frame totally orders it against all concurrent
// commands. Sequences are globally dense (one atomic counter), and the
// writer restores dense order through a reorder buffer before encoding,
// so replay is deterministic per key no matter how producers interleave
// their staging.
//
// The appendfsync spectrum maps onto group commit: `always` callers wait
// for the durable watermark to cover their sequence (one leader fsync
// covers the whole batch); `everysec` and `no` return immediately —
// everysec gains an idle-flush timer so a quiet store cannot sit
// unsynced. Backpressure is a bounded slot semaphore: command writes
// acquire a slot before their stripe lock and the writer releases it
// once the frame is on disk, so staging is lossless and bounded. Read
// logging and expiry-cycle DELs stage without a slot (bounded by their
// own budgets) so they never park inside the hot path.
//
// Writer/disk errors are sticky: the AOF is no longer trustworthy, so
// every subsequent write, commit wait and Sync surfaces the first error.

const (
	pipeStripes    = 8
	pipeQueueDepth = 1 << 14
	pipeSyncEvery  = time.Second
)

// stagedOp is one parked AOF command: the op tag plus its operands.
// Reads carry their logged operand in key; slotted marks ops holding a
// backpressure slot the writer must release.
type stagedOp struct {
	seq     uint64
	op      string
	key     string
	value   string
	ns      int64
	slotted bool
}

type pipeStripe struct {
	mu  sync.Mutex
	buf []stagedOp
	// Pad the struct to exactly one cache line (mu 8 + buf 24 + pad 32 =
	// 64) so adjacent staging locks do not false-share under concurrent
	// producers; pad_test.go asserts the size at compile time.
	_ [32]byte
}

// aofPipe is the staged writer. See the file comment for the contract.
type aofPipe struct {
	policy    FsyncPolicy
	clk       clock.Clock
	encrypted bool
	path      string // AOF path; stable across rewrite swaps

	nextSeq atomic.Uint64

	stripes  [pipeStripes]pipeStripe
	slots    chan struct{} // backpressure semaphore (slotted ops only)
	notify   chan struct{} // writer wake-up, capacity 1
	quit     chan struct{}
	done     chan struct{}
	failedCh chan struct{} // closed on the first sticky error
	failed   atomic.Bool

	// rewriteMu serializes background rewrites against each other and
	// against close(): close acquires it first, so a Close waits for an
	// in-flight rewrite to finish its swap before tearing the file down.
	rewriteMu sync.Mutex

	// fileMu serializes file IO and file swaps (writer batches, fsyncs,
	// Rewrite, Close) — never held while waiting on producers.
	fileMu sync.Mutex
	file   *securefs.File
	buf    []byte // writer-only encode buffer
	// Divert state (guarded by fileMu): while a background rewrite is
	// streaming its snapshot, every frame appended to the live file is
	// also copied here (uvarint length + bytes) and replayed onto the new
	// file before the swap, so no staged command can fall between the
	// snapshot and the new file's first direct append.
	diverting  bool
	divert     []byte
	divertOps  int64
	fileClosed bool // set by close(); makes a post-close rewrite fail cleanly

	// Published state: watermarks and counters. The writer publishes
	// under mu and broadcasts cond; appendfsync-always committers and
	// barriers wait on it.
	mu           sync.Mutex
	cond         *sync.Cond
	written      uint64 // highest seq encoded into the file buffer
	durable      uint64 // highest seq covered by an fsync
	werr         error  // sticky writer/disk error
	lastSync     time.Time
	dirty        bool // file bytes not yet fsynced
	batches      int64
	flushes      int64
	writerExited bool
}

func openPipe(path string, key []byte, policy FsyncPolicy, clk clock.Clock) (*aofPipe, error) {
	// A larger buffer than the inline profile's: frames reach the OS per
	// group commit, not per command.
	f, err := securefs.Append(path, securefs.Options{Key: key, BufferSize: 1 << 16})
	if err != nil {
		return nil, err
	}
	p := &aofPipe{
		policy:    policy,
		clk:       clk,
		encrypted: key != nil,
		path:      path,
		file:      f,
		slots:     make(chan struct{}, pipeQueueDepth),
		notify:    make(chan struct{}, 1),
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
		failedCh:  make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	p.lastSync = clk.Now()
	go p.runWriter()
	return p, nil
}

// reserve acquires one backpressure slot; callers must not hold a
// stripe lock. release returns an unused one.
func (p *aofPipe) reserve() error {
	if p.failed.Load() {
		// After a sticky failure the writer stops releasing slots, so
		// parking here could block forever instead of surfacing the error.
		return p.stickyErr()
	}
	select {
	case p.slots <- struct{}{}:
		return nil
	case <-p.quit:
		return errClosed
	case <-p.failedCh:
		return p.stickyErr()
	}
}

func (p *aofPipe) release() { <-p.slots }

// stage assigns the next sequence and parks op in a staging stripe.
// Write callers hold their data-stripe lock (FLUSHALL: all of them), so
// file order equals apply order per key; reads may stage lock-free.
func (p *aofPipe) stage(op stagedOp) uint64 {
	op.seq = p.nextSeq.Add(1)
	st := &p.stripes[op.seq%pipeStripes]
	st.mu.Lock()
	st.buf = append(st.buf, op)
	st.mu.Unlock()
	select {
	case p.notify <- struct{}{}:
	default:
	}
	return op.seq
}

// commit is the post-stage wait: appendfsync always blocks until the
// group commit covering seq is durable; everysec/no return immediately.
func (p *aofPipe) commit(seq uint64) error {
	if p.policy != FsyncAlways {
		if p.failed.Load() {
			return p.stickyErr()
		}
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.werr != nil {
			return p.werr
		}
		if p.durable >= seq {
			return nil
		}
		if p.writerExited {
			return errClosed
		}
		p.cond.Wait()
	}
}

// barrier waits until the writer has consumed every staged command, so
// Sync/AOFSize/Stats/Rewrite observe a file covering all accepted writes.
func (p *aofPipe) barrier() error {
	target := p.nextSeq.Load()
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.written < target && p.werr == nil && !p.writerExited {
		p.cond.Wait()
	}
	return p.werr
}

func (p *aofPipe) stickyErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.werr
}

// fail records a sticky writer/disk error; failedCh unblocks producers
// parked on the backpressure semaphore.
func (p *aofPipe) fail(err error) {
	p.mu.Lock()
	first := p.werr == nil
	if first {
		p.werr = err
	}
	p.mu.Unlock()
	p.failed.Store(true)
	if first {
		close(p.failedCh)
	}
	p.cond.Broadcast()
}

func (p *aofPipe) counters() (batches, flushes int64) {
	_ = p.barrier()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.batches, p.flushes
}

// syncAll barriers and forces every accepted command to stable storage.
func (p *aofPipe) syncAll() error {
	if err := p.barrier(); err != nil {
		return err
	}
	p.mu.Lock()
	target := p.written
	p.mu.Unlock()
	return p.syncTo(target)
}

// sizeBarrier barriers and reports the AOF's on-disk size.
func (p *aofPipe) sizeBarrier() (int64, error) {
	if err := p.barrier(); err != nil {
		return 0, err
	}
	p.fileMu.Lock()
	defer p.fileMu.Unlock()
	return p.file.Size()
}

// rewrite compacts the AOF under the caller's all-stripe freeze (the
// foreground ablation path): barrier the writer, write the live dataset
// to path+".rewrite", and atomically swap it in under the IO lock.
// Returns the rewritten file's size.
func (p *aofPipe) rewrite(s *Store) (int64, error) {
	if err := p.barrier(); err != nil {
		return 0, err
	}
	p.fileMu.Lock()
	defer p.fileMu.Unlock()
	tmp := p.path + ".rewrite"
	var key []byte
	if p.encrypted {
		key = s.aofKey
	}
	nf, err := securefs.Create(tmp, securefs.Options{Key: key})
	if err != nil {
		return 0, err
	}
	if err := s.writeSnapshot(nf); err != nil {
		nf.Close()
		return 0, err
	}
	if err := nf.Close(); err != nil {
		return 0, err
	}
	if err := p.file.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, p.path); err != nil {
		return 0, err
	}
	na, err := securefs.Append(p.path, securefs.Options{Key: key, BufferSize: 1 << 16})
	if err != nil {
		return 0, err
	}
	p.file = na
	size, _ := na.Size()
	// The rewritten file is fully flushed: everything written is durable.
	p.mu.Lock()
	p.durable = p.written
	p.dirty = false
	p.lastSync = p.clk.Now()
	p.mu.Unlock()
	p.cond.Broadcast()
	return size, nil
}

// close drains staging (the store froze the sequence first by setting
// closed under every stripe lock) and closes the file. Sticky writer
// errors take precedence over the close error. Acquiring rewriteMu
// first makes close wait for an in-flight background rewrite's swap.
func (p *aofPipe) close() error {
	p.rewriteMu.Lock()
	defer p.rewriteMu.Unlock()
	close(p.quit)
	<-p.done
	p.fileMu.Lock()
	cerr := p.file.Close()
	p.fileClosed = true
	p.fileMu.Unlock()
	if err := p.stickyErr(); err != nil {
		return err
	}
	return cerr
}

// ---------------------------------------------------------------------------
// Writer goroutine

func (p *aofPipe) runWriter() {
	defer close(p.done)
	reorder := make(map[uint64]stagedOp)
	var timerCh <-chan time.Time
	for {
		// Arm the idle-flush timer whenever unsynced bytes exist: under
		// everysec a command-driven check alone would leave an idle store
		// unsynced indefinitely.
		if timerCh == nil && p.policy == FsyncEverySec {
			p.mu.Lock()
			dirty := p.dirty
			p.mu.Unlock()
			if dirty {
				timerCh = p.clk.After(pipeSyncEvery)
			}
		}
		select {
		case <-p.quit:
			p.drainStaging(reorder)
			p.mu.Lock()
			p.writerExited = true
			p.mu.Unlock()
			p.cond.Broadcast()
			return
		case <-timerCh:
			timerCh = nil
			p.timedSync()
		case <-p.notify:
			p.consume(reorder)
		}
	}
}

// consume drains the staging stripes, restores dense sequence order
// through the reorder buffer, and group-commits the contiguous batch.
// Ops whose predecessors are still being staged stay parked until the
// producer's notify triggers the next consume.
func (p *aofPipe) consume(reorder map[uint64]stagedOp) {
	for i := range p.stripes {
		st := &p.stripes[i]
		st.mu.Lock()
		for _, op := range st.buf {
			reorder[op.seq] = op
		}
		st.buf = st.buf[:0]
		st.mu.Unlock()
	}
	p.mu.Lock()
	next := p.written + 1
	p.mu.Unlock()
	var batch []stagedOp
	for {
		op, ok := reorder[next]
		if !ok {
			break
		}
		delete(reorder, next)
		batch = append(batch, op)
		next++
	}
	if len(batch) == 0 {
		return
	}
	p.writeBatch(batch)
	for _, op := range batch {
		if op.slotted {
			<-p.slots // release backpressure for written commands
		}
	}
}

// encodeOp renders one staged op as the frame the inline profile would
// have written — the two persistence paths are byte-compatible.
func (p *aofPipe) encodeOp(op stagedOp) []byte {
	switch op.op {
	case opSet:
		p.buf = encodeCommand(p.buf, opSet, op.key, op.value)
	case opSetex:
		p.buf = encodeCommandNum(p.buf, op.ns, opSetex, op.key, op.value)
	case opDel:
		p.buf = encodeCommand(p.buf, opDel, op.key)
	case opExpireAt:
		p.buf = encodeCommandNum(p.buf, op.ns, opExpireAt, op.key)
	case opFlushAll:
		p.buf = encodeCommand(p.buf, opFlushAll)
	default: // GET / SCAN / IDXSCAN read-audit frames
		p.buf = encodeCommand(p.buf, op.op, op.key)
	}
	return p.buf
}

// writeBatch writes one group-commit batch and applies the fsync policy:
// one leader fsync covers the whole batch under appendfsync always.
func (p *aofPipe) writeBatch(batch []stagedOp) {
	p.fileMu.Lock()
	for _, op := range batch {
		frame := p.encodeOp(op)
		if err := p.file.AppendFrame(frame); err != nil {
			p.fileMu.Unlock()
			p.fail(err)
			return
		}
		if p.diverting {
			p.divert = binary.AppendUvarint(p.divert, uint64(len(frame)))
			p.divert = append(p.divert, frame...)
			p.divertOps++
		}
	}
	p.fileMu.Unlock()
	obsAOFBatchOps.Observe(int64(len(batch)))
	last := batch[len(batch)-1].seq
	p.mu.Lock()
	p.written = last
	p.batches++
	p.dirty = true
	p.mu.Unlock()
	p.cond.Broadcast()
	switch p.policy {
	case FsyncAlways:
		_ = p.syncTo(last)
	case FsyncEverySec:
		p.mu.Lock()
		due := p.clk.Now().Sub(p.lastSync) >= pipeSyncEvery
		p.mu.Unlock()
		if due {
			_ = p.syncTo(last)
		}
	}
}

// syncTo fsyncs the file and advances the durable watermark.
func (p *aofPipe) syncTo(target uint64) error {
	start := p.clk.Now()
	p.fileMu.Lock()
	err := p.file.Sync()
	p.fileMu.Unlock()
	obsAOFFsyncNs.ObserveDuration(p.clk.Since(start))
	if err != nil {
		p.fail(err)
		return err
	}
	p.mu.Lock()
	p.flushes++
	if target > p.durable {
		p.durable = target
	}
	p.lastSync = p.clk.Now()
	if p.written == target {
		p.dirty = false
	}
	p.mu.Unlock()
	p.cond.Broadcast()
	return nil
}

// timedSync is the everysec idle-flush: fsync if anything is dirty.
func (p *aofPipe) timedSync() {
	p.mu.Lock()
	dirty := p.dirty
	target := p.written
	p.mu.Unlock()
	if !dirty {
		return
	}
	_ = p.syncTo(target)
}

// drainStaging consumes until every sequenced op is written. The store
// sealed the sequence before quit (closed set under every stripe lock),
// so only stragglers between their atomic seq grab and their staging
// park remain; they finish within a few scheduler quanta.
func (p *aofPipe) drainStaging(reorder map[uint64]stagedOp) {
	for {
		p.consume(reorder)
		if p.failed.Load() {
			return
		}
		target := p.nextSeq.Load()
		p.mu.Lock()
		caughtUp := p.written >= target
		p.mu.Unlock()
		if caughtUp {
			return
		}
		runtime.Gosched()
	}
}

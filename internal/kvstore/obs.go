package kvstore

import "repro/internal/obs"

// Amortized-event histograms and background-task gauges, reported to the
// process-wide registry. These sites fire per group commit, per fsync or
// per rewrite — never per command — so recording straight into the default
// registry costs nothing on the hot path. Per-command counters stay in the
// per-store atomics and reach the registry through the pull-time collector
// registered in Open.
var (
	obsAOFBatchOps      = obs.Default().Histogram("kvstore_aof_batch_ops")
	obsAOFFsyncNs       = obs.Default().Histogram("kvstore_aof_fsync_ns")
	obsRewriteNs        = obs.Default().Histogram("kvstore_aof_rewrite_duration_ns")
	obsRewriteReclaimed = obs.Default().Gauge("kvstore_aof_rewrite_bytes_reclaimed")
)

package kvstore

// Chunked selector walks: the bounded-memory counterparts of ForEach and
// IndexedForEach. A streaming caller drives a cursor through repeated
// chunk calls; each call holds every stripe lock only long enough to copy
// out at most one chunk's worth of entries through the internal/pool
// scratch buffers, so an export of the whole keyspace never pins a stripe
// for longer than one chunk and never materializes more than
// O(stripes x chunk) keys at once. Snapshots are therefore per-chunk, not
// per-query: a record mutated between two chunk calls is observed in
// whichever state the chunk that covers its key finds it — the same
// per-stripe-consistency contract ForEach and the shard router already
// give multi-key reads (see DESIGN.md §1i).

import (
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gdpr"
)

// MetadataIndexed reports whether the store maintains the metadata-index
// layer (Config.MetadataIndexing); the streaming selector path uses it to
// choose between the indexed and scan chunk walks.
func (s *Store) MetadataIndexed() bool { return s.stripes[0].meta != nil }

// IndexedChunk visits up to limit live entries whose attr metadata
// contains value and whose keys sort strictly after `after`, in global
// sorted key order — one bounded step of IndexedForEach. It returns the
// cursor for the following call and done=true when the posting lists are
// exhausted; ok is false (nothing visited) when metadata indexing is off
// or attr is not an inverted dimension, in which case callers fall back
// to ScanChunk.
//
// Each stripe's posting shard is probed under the shared stripe lock
// through index.LookupChunk's bounded selection, so per-call memory is
// O(stripes x limit) regardless of result size. Expired-but-unreaped
// keys are skipped but not deleted, mirroring IndexedForEach. fn runs
// outside every stripe lock.
func (s *Store) IndexedChunk(attr gdpr.Attribute, value, after string, limit int, fn func(key, value string, expireAt time.Time)) (next string, done, ok bool) {
	if s.stripes[0].meta == nil || limit <= 0 {
		return "", false, false
	}
	now := s.clk.Now()
	parts := partsScratch.Get(len(s.stripes))
	parts = parts[:len(s.stripes)]
	defer putParts(parts)
	// bound is the min over full stripes of the largest posting examined:
	// keys past it may exist unexamined in some stripe, so the chunk must
	// not emit (or advance the cursor) beyond it.
	var mu sync.Mutex
	bound, bounded := "", false
	dim := atomic.Bool{}
	dim.Store(true)
	var wg sync.WaitGroup
	for i := range s.stripes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := &s.stripes[i]
			s.rlock(st)
			defer s.runlock(st)
			keys, last, full, ok := st.meta.LookupChunk(attr, value, after, limit)
			if !ok {
				dim.Store(false)
				return
			}
			out := kvScratch.Get(len(keys))
			for _, k := range keys {
				e := st.dict[k]
				if e == nil {
					continue
				}
				if !e.expireAt.IsZero() && !e.expireAt.After(now) {
					continue
				}
				out = append(out, kv{k, e.value, e.expireAt})
			}
			parts[i] = out
			if full {
				mu.Lock()
				if !bounded || last < bound {
					bound, bounded = last, true
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if !dim.Load() {
		return "", false, false
	}
	total := 0
	for _, part := range parts {
		total += len(part)
	}
	merged := kvScratch.Get(total)
	defer func() { kvScratch.Put(merged) }()
	for _, part := range parts {
		if !bounded {
			merged = append(merged, part...)
			continue
		}
		for _, item := range part {
			if item.key <= bound {
				merged = append(merged, item)
			}
		}
	}
	// Per-stripe chunks come back sorted; restore the global sorted key
	// order IndexedForEach emits.
	slices.SortFunc(merged, func(a, b kv) int { return strings.Compare(a.key, b.key) })
	emit := merged
	truncated := len(emit) > limit
	if truncated {
		emit = emit[:limit]
	}
	for _, item := range emit {
		fn(item.key, item.value, item.expireAt)
	}
	s.logRead(opIdxScan, string(attr)+"="+value)
	switch {
	case truncated:
		return emit[len(emit)-1].key, false, true
	case bounded:
		// Every posting <= bound in every stripe was examined; resuming at
		// bound makes progress even when the whole chunk was expired holes.
		return bound, false, true
	default:
		return "", true, true
	}
}

// ScanChunk visits up to limit live entries starting at the global scan
// offset cursor — one bounded step of ForEach, over the same
// concatenation of per-stripe scan orders Scan walks. It returns the next
// cursor and done=true when the walk is complete. Like Scan the cursor is
// positional, so it is approximate under concurrent mutation (keys
// present for the whole walk are seen at least once; Redis' SCAN
// contract); under a quiescent store the concatenated chunks reproduce
// ForEach's emission order exactly. fn runs outside every stripe lock.
func (s *Store) ScanChunk(cursor, limit int, fn func(key, value string, expireAt time.Time)) (next int, done bool) {
	if cursor < 0 || limit <= 0 {
		return 0, true
	}
	now := s.clk.Now()
	out := kvScratch.Get(limit)
	defer func() { kvScratch.Put(out) }()
	offset, total := 0, 0
	for i := range s.stripes {
		st := &s.stripes[i]
		s.rlock(st)
		n := len(st.keySlice)
		lo, hi := cursor, cursor+limit
		if lo < offset {
			lo = offset
		}
		if hi > offset+n {
			hi = offset + n
		}
		if lo < hi {
			for _, k := range st.keySlice[lo-offset : hi-offset] {
				e := st.dict[k]
				if !e.expireAt.IsZero() && !e.expireAt.After(now) {
					continue
				}
				out = append(out, kv{k, e.value, e.expireAt})
			}
		}
		offset += n
		total += n
		s.runlock(st)
	}
	for _, item := range out {
		fn(item.key, item.value, item.expireAt)
	}
	s.logRead(opScan, "*")
	if cursor >= total || cursor+limit >= total {
		return 0, true
	}
	return cursor + limit, false
}

package kvstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/securefs"
)

// These tests pin the rewrite path's safety properties: a rewrite that
// crashed before its rename must not leak state into a recovery, a
// rewritten AOF must hold zero bytes of deleted (right-to-be-forgotten)
// payloads, an auto-triggered rewrite must round-trip through replay,
// and a background rewrite racing live traffic must leave a log that
// replays to the exact live state.

// bothProfiles runs fn against the legacy single-mutex profile and the
// striped staged-AOF profile.
func bothProfiles(t *testing.T, fn func(t *testing.T, stripes int)) {
	for _, stripes := range []int{0, 4} {
		name := "legacy"
		if stripes > 0 {
			name = fmt.Sprintf("striped-%d", stripes)
		}
		t.Run(name, func(t *testing.T) { fn(t, stripes) })
	}
}

// TestCrashMidRewriteIgnored simulates a rewrite killed between writing
// the snapshot and the atomic rename: a fully valid ".rewrite" tmp sits
// next to the AOF, holding state that was never committed. Open must
// recover from the live AOF alone and discard the tmp.
func TestCrashMidRewriteIgnored(t *testing.T) {
	bothProfiles(t, func(t *testing.T, stripes int) {
		path := filepath.Join(t.TempDir(), "crash.aof")
		s, err := Open(Config{AOFPath: path, Striping: stripes})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			if err := s.Set(fmt.Sprintf("live-%02d", i), "committed"); err != nil {
				t.Fatalf("set: %v", err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}

		// The orphaned tmp: a well-formed snapshot whose content must
		// nevertheless never surface, because the rename never happened.
		tmp := path + ".rewrite"
		nf, err := securefs.Create(tmp, securefs.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var buf []byte
		buf = encodeCommand(buf, opSet, "phantom-key", "uncommitted-state")
		if err := nf.AppendFrame(buf); err != nil {
			t.Fatal(err)
		}
		if err := nf.Close(); err != nil {
			t.Fatal(err)
		}

		s2, err := Open(Config{AOFPath: path, Striping: stripes})
		if err != nil {
			t.Fatalf("reopen after simulated crash: %v", err)
		}
		defer s2.Close()
		if s2.Exists("phantom-key") {
			t.Fatal("uncommitted rewrite tmp leaked into recovered state")
		}
		if n := s2.DBSize(); n != 20 {
			t.Fatalf("recovered %d keys, want 20", n)
		}
		if _, err := os.Stat(tmp); !os.IsNotExist(err) {
			t.Fatalf("orphaned rewrite tmp not cleaned up: stat err=%v", err)
		}
	})
}

// TestRewriteErasesDeletedPayload is the storage-limitation check behind
// the paper's right-to-be-forgotten queries: after DEL + rewrite, the
// AOF on disk must contain zero bytes of the deleted record — not just
// a trailing DEL masking an earlier SET.
func TestRewriteErasesDeletedPayload(t *testing.T) {
	const victim = "victim-key"
	const secret = "SECRET-PII-PAYLOAD-DO-NOT-RETAIN"
	bothProfiles(t, func(t *testing.T, stripes int) {
		path := filepath.Join(t.TempDir(), "rtbf.aof")
		s, err := Open(Config{AOFPath: path, Striping: stripes})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		for i := 0; i < 10; i++ {
			if err := s.Set(fmt.Sprintf("keep-%02d", i), "retained"); err != nil {
				t.Fatalf("set: %v", err)
			}
		}
		if err := s.Set(victim, secret); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Del(victim); err != nil {
			t.Fatal(err)
		}
		// Pre-rewrite the log still holds the payload (append-only).
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(raw, []byte(secret)) {
			t.Fatal("sanity: append-only AOF should still hold the deleted payload")
		}

		if err := s.Rewrite(); err != nil {
			t.Fatalf("rewrite: %v", err)
		}
		var joined strings.Builder
		err = securefs.Replay(path, securefs.Options{}, func(frame []byte) error {
			joined.Write(frame)
			return nil
		})
		if err != nil {
			t.Fatalf("replay rewritten AOF: %v", err)
		}
		if strings.Contains(joined.String(), secret) {
			t.Fatal("rewritten AOF retains deleted payload bytes")
		}
		if strings.Contains(joined.String(), victim) {
			t.Fatal("rewritten AOF retains deleted key bytes")
		}
		if !strings.Contains(joined.String(), "keep-05") {
			t.Fatal("rewritten AOF lost a live key")
		}
	})
}

// TestAutoRewriteRoundTrip drives the -aofrewrite-pct trigger over its
// 1 MiB floor, waits for the background pass, and proves the compacted
// log replays to the same state.
func TestAutoRewriteRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "auto.aof")
	s, err := Open(Config{AOFPath: path, Striping: 4, AutoRewritePct: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 64 keys overwritten until the 1 MiB floor trips the trigger: the
	// append history grows past a mebibyte while the live dataset stays
	// ~256 KiB. Writes stop as soon as the background pass lands, so
	// the size assertion below sees the compacted file, not regrowth.
	val := strings.Repeat("x", 4096)
	deadline := time.Now().Add(30 * time.Second)
writing:
	for round := 0; ; round++ {
		for i := 0; i < 64; i++ {
			if s.Stats().AOFRewrites > 0 {
				break writing
			}
			if err := s.Set(fmt.Sprintf("hot-%02d", i), fmt.Sprintf("%s-%d", val, round)); err != nil {
				t.Fatalf("set: %v", err)
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("auto rewrite never fired")
		}
	}
	want := snapshot(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The compacted log is O(live data): one frame per key, not the
	// full overwrite history.
	if fi, err := os.Stat(path); err != nil {
		t.Fatal(err)
	} else if fi.Size() > autoRewriteMinBytes {
		t.Fatalf("post-rewrite AOF is %d bytes, want < %d", fi.Size(), autoRewriteMinBytes)
	}
	s2, err := Open(Config{AOFPath: path, Striping: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := snapshot(s2); !equalStrings(got, want) {
		t.Fatalf("replay diverged after auto rewrite: got %d keys want %d", len(got), len(want))
	}
	if s2.Stats().ReplayOps == 0 {
		t.Fatal("replay stats not recorded")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRewriteConcurrentStress races writers, readers and background
// rewrites, then proves the surviving AOF replays to the exact live
// state. Run with -race this also exercises the divert-buffer and swap
// synchronization.
func TestRewriteConcurrentStress(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stress.aof")
	s, err := Open(Config{AOFPath: path, Striping: 8, Clock: clock.NewReal()})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	const opsPerWriter = 400
	var wg, rwg sync.WaitGroup
	stop := make(chan struct{})
	// Readers hammer GETs throughout — they must never block on the
	// rewrite's snapshot or observe torn state.
	for r := 0; r < 2; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.Get(fmt.Sprintf("w%d-k%03d", i%writers, i%opsPerWriter))
			}
		}()
	}
	var werr sync.Map
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWriter; i++ {
				k := fmt.Sprintf("w%d-k%03d", w, i)
				if err := s.Set(k, fmt.Sprintf("v%d", i)); err != nil {
					werr.Store(w, err)
					return
				}
				if i%7 == 0 {
					if _, err := s.Del(fmt.Sprintf("w%d-k%03d", w, i/2)); err != nil {
						werr.Store(w, err)
						return
					}
				}
			}
		}(w)
	}
	// Rewrites overlap the write storm.
	for i := 0; i < 3; i++ {
		if err := s.Rewrite(); err != nil {
			t.Fatalf("rewrite %d: %v", i, err)
		}
	}
	wg.Wait()
	close(stop)
	rwg.Wait()
	werr.Range(func(k, v any) bool {
		t.Fatalf("writer %v: %v", k, v)
		return false
	})
	// One final rewrite after the dust settles, then replay equality.
	if err := s.Rewrite(); err != nil {
		t.Fatal(err)
	}
	want := snapshot(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Config{AOFPath: path, Striping: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := snapshot(s2); !equalStrings(got, want) {
		t.Fatalf("replay diverged: got %d keys want %d", len(got), len(want))
	}
	if s2.Stats().ReplayOps == 0 {
		t.Fatal("replay stats not recorded")
	}
}

package kvstore

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/securefs"
)

// TestStripedRLockLazyExpiryUpgrade races shared-lock readers, a writer
// and expiry cycles on ONE stripe (Striping: 1 keeps striped semantics
// with a single stripe, so everything contends on the same RWMutex). It
// pins the two contracts of the read path's lock upgrade:
//
//   - an expired key is never served: every Get/Exists/TTL that observes
//     a due deadline under RLock must report a miss, even while other
//     readers race the same upgrade and a writer holds the lock;
//   - the AOF DEL for an expiry victim is staged exactly once, by the
//     expiry cycle that deleted it — lazy (on-read) expiry stages no DEL
//     by design (replay re-applies the SETEX), and the upgrade's
//     re-check must not double-delete a key a concurrent upgrade or
//     cycle already reaped.
func TestStripedRLockLazyExpiryUpgrade(t *testing.T) {
	const (
		expKeys  = 64
		liveKeys = 64
		readers  = 4
		rounds   = 200
	)
	sim := clock.NewSim(time.Time{})
	path := filepath.Join(t.TempDir(), "aof")
	s, err := Open(Config{
		Clock:      sim,
		AOFPath:    path,
		AOFSync:    FsyncNo,
		ExpiryMode: ExpiryStrict,
		Striping:   1,
	})
	if err != nil {
		t.Fatal(err)
	}

	deadline := sim.Now().Add(time.Second)
	for i := 0; i < expKeys; i++ {
		if err := s.SetWithExpiry(fmt.Sprintf("exp-%02d", i), "doomed", deadline); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < liveKeys; i++ {
		if err := s.Set(fmt.Sprintf("live-%02d", i), "v0"); err != nil {
			t.Fatal(err)
		}
	}
	sim.Advance(2 * time.Second) // every exp- key is now due

	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				ek := fmt.Sprintf("exp-%02d", i%expKeys)
				if v, ok := s.Get(ek); ok {
					t.Errorf("Get served expired key %s = %q", ek, v)
				}
				if s.Exists(ek) {
					t.Errorf("Exists reported expired key %s", ek)
				}
				if _, ok := s.TTL(ek); ok {
					t.Errorf("TTL reported expired key %s", ek)
				}
				lk := fmt.Sprintf("live-%02d", i%liveKeys)
				if v, ok := s.Get(lk); !ok || v == "" {
					t.Errorf("Get lost live key %s (ok=%v)", lk, ok)
				}
			}
		}()
	}
	// Writer churns the live keys on the same stripe, so exclusive holds
	// interleave with the readers' shared holds and upgrade attempts.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if err := s.Set(fmt.Sprintf("live-%02d", i%liveKeys), fmt.Sprintf("w%d", i)); err != nil {
				t.Errorf("Set: %v", err)
			}
		}
	}()
	// Expiry cycles race the lazy (on-read) expirations for the same
	// victims; cycleExpired counts only the deletions the cycles won.
	cycleExpired := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			cycleExpired += s.CycleOnce().Expired
		}
	}()
	wg.Wait()

	for i := 0; i < expKeys; i++ {
		if s.Exists(fmt.Sprintf("exp-%02d", i)) {
			t.Errorf("exp-%02d survived lazy expiry and %d cycles", i, 8)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay the AOF: every DEL frame must name an exp- key, no key may
	// carry more than one, and the total must equal the cycles' kill
	// count — lazy expirations contribute none.
	dels := map[string]int{}
	err = securefs.Replay(path, securefs.Options{}, func(p []byte) error {
		args, derr := decodeCommand(p)
		if derr != nil {
			return derr
		}
		if args[0] == opDel {
			dels[args[1]]++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for k, n := range dels {
		if n != 1 {
			t.Errorf("key %s has %d AOF DEL frames, want exactly 1", k, n)
		}
		if len(k) < 4 || k[:4] != "exp-" {
			t.Errorf("unexpected AOF DEL for non-expiry key %s", k)
		}
		total += n
	}
	if total != cycleExpired {
		t.Errorf("AOF holds %d DEL frames, expiry cycles reported %d victims", total, cycleExpired)
	}
}

// TestStripedReadersShareTheLock pins the read concurrency itself,
// independent of host parallelism: with a stripe's lock already held in
// shared mode, Get/Exists/TTL on that stripe must still complete —
// i.e. the striped read path acquires the RWMutex shared, where the
// pre-RWMutex engine (and today's legacy profile) would block behind
// any holder.
func TestStripedReadersShareTheLock(t *testing.T) {
	s, err := Open(Config{Striping: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Set("k", "v"); err != nil {
		t.Fatal(err)
	}
	st := s.stripeFor("k")
	st.mu.RLock()
	defer st.mu.RUnlock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if v, ok := s.Get("k"); !ok || v != "v" {
			t.Errorf("Get under a shared holder: %q, %v", v, ok)
		}
		if !s.Exists("k") {
			t.Error("Exists under a shared holder reported a miss")
		}
		if d, ok := s.TTL("k"); !ok || d != 0 {
			t.Errorf("TTL under a shared holder: %v, %v (want 0, true for a persistent key)", d, ok)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("reads blocked behind a shared lock holder — the striped read path is not taking RLock")
	}
}

package kvstore

import (
	"encoding/binary"
	"fmt"
	"os"
	"time"

	"repro/internal/clock"
	"repro/internal/securefs"
)

// The AOF records one command per securefs frame. A command is a list of
// string arguments encoded as:
//
//	uvarint(argc) { uvarint(len) bytes }*
//
// Commands: SET key value, SETEX key value unixnano, EXPIREAT key unixnano
// (unixnano 0 clears the TTL), DEL key, FLUSHALL, and — when read logging
// is enabled — GET key / SCAN pattern / IDXSCAN attr=value, which replay
// as no-ops (they exist for the audit trail, mirroring the paper's "log
// all interactions including reads and scans" retrofit).

// FsyncPolicy is Redis' appendfsync setting.
type FsyncPolicy int

// Fsync policies.
const (
	// FsyncNo leaves flushing to the OS.
	FsyncNo FsyncPolicy = iota
	// FsyncEverySec syncs at most once per second (Redis default; the
	// configuration the paper benchmarks).
	FsyncEverySec
	// FsyncAlways syncs after every command.
	FsyncAlways
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncNo:
		return "no"
	case FsyncEverySec:
		return "everysec"
	case FsyncAlways:
		return "always"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

type aof struct {
	file      *securefs.File
	policy    FsyncPolicy
	clk       clock.Clock
	lastSync  time.Time
	encrypted bool
	buf       []byte // reused encode buffer; callers hold the store lock
}

func openAOF(path string, key []byte, policy FsyncPolicy, clk clock.Clock) (*aof, error) {
	// A small write buffer makes AOF bytes reach the OS every few dozen
	// commands, like Redis flushing aof_buf each event-loop iteration.
	f, err := securefs.Append(path, securefs.Options{Key: key, BufferSize: 1 << 10})
	if err != nil {
		return nil, err
	}
	return &aof{file: f, policy: policy, clk: clk, lastSync: clk.Now(), encrypted: key != nil}, nil
}

func encodeCommand(buf []byte, args ...string) []byte {
	buf = binary.AppendUvarint(buf[:0], uint64(len(args)))
	for _, a := range args {
		buf = binary.AppendUvarint(buf, uint64(len(a)))
		buf = append(buf, a...)
	}
	return buf
}

func decodeCommand(p []byte) ([]string, error) {
	argc, n := binary.Uvarint(p)
	if n <= 0 || argc > 16 {
		return nil, fmt.Errorf("kvstore: bad AOF command header")
	}
	p = p[n:]
	args := make([]string, 0, argc)
	for i := uint64(0); i < argc; i++ {
		l, n := binary.Uvarint(p)
		if n <= 0 || uint64(len(p)-n) < l {
			return nil, fmt.Errorf("kvstore: truncated AOF argument")
		}
		args = append(args, string(p[n:n+int(l)]))
		p = p[n+int(l):]
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("kvstore: trailing bytes in AOF command")
	}
	return args, nil
}

func (a *aof) append(args ...string) error {
	a.buf = encodeCommand(a.buf, args...)
	if err := a.file.AppendFrame(a.buf); err != nil {
		return err
	}
	switch a.policy {
	case FsyncAlways:
		if err := a.file.Sync(); err != nil {
			return err
		}
		a.lastSync = a.clk.Now()
	case FsyncEverySec:
		if now := a.clk.Now(); now.Sub(a.lastSync) >= time.Second {
			if err := a.file.Sync(); err != nil {
				return err
			}
			a.lastSync = now
		}
	}
	return nil
}

func (a *aof) appendSet(key, value string, expireAt time.Time) error {
	if expireAt.IsZero() {
		return a.append("SET", key, value)
	}
	return a.append("SETEX", key, value, fmt.Sprintf("%d", expireAt.UnixNano()))
}

func (a *aof) appendDel(key string) error { return a.append("DEL", key) }

func (a *aof) appendExpireAt(key string, t time.Time) error {
	ns := int64(0)
	if !t.IsZero() {
		ns = t.UnixNano()
	}
	return a.append("EXPIREAT", key, fmt.Sprintf("%d", ns))
}

func (a *aof) appendFlushAll() error { return a.append("FLUSHALL") }

func (a *aof) appendRead(op, key string) error { return a.append(op, key) }

func (a *aof) sync() error { return a.file.Sync() }

func (a *aof) size() (int64, error) { return a.file.Size() }

func (a *aof) close() error { return a.file.Close() }

// replayAOF rebuilds store state from the AOF at path. Missing files are
// fine (fresh store). Read entries (GET/SCAN) replay as no-ops.
func replayAOF(path string, key []byte, s *Store) error {
	if _, err := os.Stat(path); os.IsNotExist(err) {
		return nil
	}
	return securefs.Replay(path, securefs.Options{Key: key}, func(p []byte) error {
		args, err := decodeCommand(p)
		if err != nil {
			return err
		}
		if len(args) == 0 {
			return fmt.Errorf("kvstore: empty AOF command")
		}
		switch args[0] {
		case "SET":
			if len(args) != 3 {
				return fmt.Errorf("kvstore: bad SET arity %d", len(args))
			}
			s.setLocked(args[1], args[2], time.Time{})
		case "SETEX":
			if len(args) != 4 {
				return fmt.Errorf("kvstore: bad SETEX arity %d", len(args))
			}
			ns, err := parseInt64(args[3])
			if err != nil {
				return err
			}
			s.setLocked(args[1], args[2], time.Unix(0, ns))
		case "DEL":
			if len(args) != 2 {
				return fmt.Errorf("kvstore: bad DEL arity %d", len(args))
			}
			s.deleteLocked(args[1])
		case "EXPIREAT":
			if len(args) != 3 {
				return fmt.Errorf("kvstore: bad EXPIREAT arity %d", len(args))
			}
			ns, err := parseInt64(args[2])
			if err != nil {
				return err
			}
			if ns == 0 {
				s.expireAtLocked(args[1], time.Time{})
			} else {
				s.expireAtLocked(args[1], time.Unix(0, ns))
			}
		case "FLUSHALL":
			s.flushLocked()
		case "GET", "SCAN", "IDXSCAN":
			// Read audit entries: no state change.
		default:
			return fmt.Errorf("kvstore: unknown AOF command %q", args[0])
		}
		return nil
	})
}

func parseInt64(s string) (int64, error) {
	var v int64
	if _, err := fmt.Sscanf(s, "%d", &v); err != nil {
		return 0, fmt.Errorf("kvstore: bad integer %q: %w", s, err)
	}
	return v, nil
}

// Rewrite compacts the AOF: the current dataset is written as a fresh
// sequence of SET/SETEX commands to path+".rewrite", which then atomically
// replaces the live AOF (Redis' BGREWRITEAOF, done in the foreground).
func (s *Store) Rewrite() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.aof == nil {
		return fmt.Errorf("kvstore: no AOF to rewrite")
	}
	if s.closed {
		return errClosed
	}
	path := s.aof.file.Path()
	tmp := path + ".rewrite"
	key := s.aofKey
	encrypted := s.aof.encrypted
	nf, err := securefs.Create(tmp, securefs.Options{Key: key})
	if err != nil {
		return err
	}
	var buf []byte
	for _, k := range s.keySlice {
		e := s.dict[k]
		if e.expireAt.IsZero() {
			buf = encodeCommand(buf, "SET", k, e.value)
		} else {
			buf = encodeCommand(buf, "SETEX", k, e.value, fmt.Sprintf("%d", e.expireAt.UnixNano()))
		}
		if err := nf.AppendFrame(buf); err != nil {
			nf.Close()
			return err
		}
	}
	if err := nf.Close(); err != nil {
		return err
	}
	if err := s.aof.close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	na, err := openAOF(path, key, s.aof.policy, s.clk)
	if err != nil {
		return err
	}
	na.encrypted = encrypted
	s.aof = na
	return nil
}

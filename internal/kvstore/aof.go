package kvstore

import (
	"encoding/binary"
	"fmt"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/securefs"
)

// The AOF records one command per securefs frame. A command is a list of
// string arguments encoded as:
//
//	uvarint(argc) { uvarint(len) bytes }*
//
// Commands: SET key value, SETEX key value unixnano, EXPIREAT key unixnano
// (unixnano 0 clears the TTL), DEL key, FLUSHALL, and — when read logging
// is enabled — GET key / SCAN pattern / IDXSCAN attr=value, which replay
// as no-ops (they exist for the audit trail, mirroring the paper's "log
// all interactions including reads and scans" retrofit).
//
// Both persistence profiles — the inline single-mutex appender below and
// the staged group-commit pipeline in staged.go — emit these exact frames,
// so one replay path rebuilds state regardless of which profile wrote the
// file.

// AOF command names (also the staged-op tags in staged.go).
const (
	opSet      = "SET"
	opSetex    = "SETEX"
	opDel      = "DEL"
	opExpireAt = "EXPIREAT"
	opFlushAll = "FLUSHALL"
	opGet      = "GET"
	opScan     = "SCAN"
	opIdxScan  = "IDXSCAN"
)

// FsyncPolicy is Redis' appendfsync setting.
type FsyncPolicy int

// Fsync policies.
const (
	// FsyncNo leaves flushing to the OS.
	FsyncNo FsyncPolicy = iota
	// FsyncEverySec syncs at most once per second (Redis default; the
	// configuration the paper benchmarks).
	FsyncEverySec
	// FsyncAlways syncs after every command.
	FsyncAlways
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncNo:
		return "no"
	case FsyncEverySec:
		return "everysec"
	case FsyncAlways:
		return "always"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

type aof struct {
	file      *securefs.File
	policy    FsyncPolicy
	clk       clock.Clock
	lastSync  time.Time
	encrypted bool
	buf       []byte // reused encode buffer; callers hold the store lock
	appends   int64  // commands appended (each is its own "batch" inline)
	syncs     int64  // fsyncs issued
}

func openAOF(path string, key []byte, policy FsyncPolicy, clk clock.Clock) (*aof, error) {
	// A small write buffer makes AOF bytes reach the OS every few dozen
	// commands, like Redis flushing aof_buf each event-loop iteration.
	f, err := securefs.Append(path, securefs.Options{Key: key, BufferSize: 1 << 10})
	if err != nil {
		return nil, err
	}
	return &aof{file: f, policy: policy, clk: clk, lastSync: clk.Now(), encrypted: key != nil}, nil
}

func encodeCommand(buf []byte, args ...string) []byte {
	buf = binary.AppendUvarint(buf[:0], uint64(len(args)))
	for _, a := range args {
		buf = binary.AppendUvarint(buf, uint64(len(a)))
		buf = append(buf, a...)
	}
	return buf
}

// encodeCommandNum encodes args plus the decimal rendering of ns as one
// final argument — byte-identical to encodeCommand(buf, append(args,
// fmt.Sprintf("%d", ns))...) without materializing the string. The
// SETEX/EXPIREAT hot paths go through here so a deadline costs no
// allocation.
func encodeCommandNum(buf []byte, ns int64, args ...string) []byte {
	var num [20]byte // len("-9223372036854775808")
	nb := strconv.AppendInt(num[:0], ns, 10)
	buf = binary.AppendUvarint(buf[:0], uint64(len(args))+1)
	for _, a := range args {
		buf = binary.AppendUvarint(buf, uint64(len(a)))
		buf = append(buf, a...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(nb)))
	return append(buf, nb...)
}

func decodeCommand(p []byte) ([]string, error) {
	argc, n := binary.Uvarint(p)
	if n <= 0 || argc > 16 {
		return nil, fmt.Errorf("kvstore: bad AOF command header")
	}
	p = p[n:]
	args := make([]string, 0, argc)
	for i := uint64(0); i < argc; i++ {
		l, n := binary.Uvarint(p)
		if n <= 0 || uint64(len(p)-n) < l {
			return nil, fmt.Errorf("kvstore: truncated AOF argument")
		}
		args = append(args, string(p[n:n+int(l)]))
		p = p[n+int(l):]
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("kvstore: trailing bytes in AOF command")
	}
	return args, nil
}

func (a *aof) append(args ...string) error {
	a.buf = encodeCommand(a.buf, args...)
	return a.writeBuf()
}

// appendNum is append with a final integer argument, encoded without the
// intermediate string.
func (a *aof) appendNum(ns int64, args ...string) error {
	a.buf = encodeCommandNum(a.buf, ns, args...)
	return a.writeBuf()
}

// writeBuf appends the encoded frame in a.buf and applies the fsync
// policy.
func (a *aof) writeBuf() error {
	if err := a.file.AppendFrame(a.buf); err != nil {
		return err
	}
	a.appends++
	switch a.policy {
	case FsyncAlways:
		if err := a.syncTimed(); err != nil {
			return err
		}
		a.lastSync = a.clk.Now()
	case FsyncEverySec:
		if now := a.clk.Now(); now.Sub(a.lastSync) >= time.Second {
			if err := a.syncTimed(); err != nil {
				return err
			}
			a.lastSync = now
		}
	}
	return nil
}

// syncTimed fsyncs, feeding the fsync-latency histogram — the same series
// the staged pipeline reports, so the two persistence profiles compare
// directly on a scrape.
func (a *aof) syncTimed() error {
	start := a.clk.Now()
	err := a.file.Sync()
	obsAOFFsyncNs.ObserveDuration(a.clk.Since(start))
	if err != nil {
		return err
	}
	a.syncs++
	return nil
}

func (a *aof) appendSet(key, value string, expireAt time.Time) error {
	if expireAt.IsZero() {
		return a.append(opSet, key, value)
	}
	return a.appendNum(expireAt.UnixNano(), opSetex, key, value)
}

func (a *aof) appendDel(key string) error { return a.append(opDel, key) }

func (a *aof) appendExpireAt(key string, t time.Time) error {
	ns := int64(0)
	if !t.IsZero() {
		ns = t.UnixNano()
	}
	return a.appendNum(ns, opExpireAt, key)
}

func (a *aof) appendFlushAll() error { return a.append(opFlushAll) }

func (a *aof) appendRead(op, key string) error { return a.append(op, key) }

func (a *aof) sync() error { return a.syncTimed() }

func (a *aof) size() (int64, error) { return a.file.Size() }

func (a *aof) close() error { return a.file.Close() }

// ---------------------------------------------------------------------------
// Replay: one decoded-frame grammar shared by the sequential rebuild, the
// concurrent striped rebuild and the fuzzer.

// replayOp is one parsed, validated AOF command.
type replayOp struct {
	op   string
	key  string
	val  string
	ns   int64
	read bool // GET/SCAN/IDXSCAN: audit-only, replays as a no-op
}

// parseReplayCommand validates one decoded command's name, arity and
// integer arguments. Every malformed frame fails here, before any state
// is touched, so both replay paths (and the fuzzer) share one error
// surface.
func parseReplayCommand(args []string) (replayOp, error) {
	if len(args) == 0 {
		return replayOp{}, fmt.Errorf("kvstore: empty AOF command")
	}
	switch args[0] {
	case opSet:
		if len(args) != 3 {
			return replayOp{}, fmt.Errorf("kvstore: bad SET arity %d", len(args))
		}
		return replayOp{op: opSet, key: args[1], val: args[2]}, nil
	case opSetex:
		if len(args) != 4 {
			return replayOp{}, fmt.Errorf("kvstore: bad SETEX arity %d", len(args))
		}
		ns, err := parseInt64(args[3])
		if err != nil {
			return replayOp{}, err
		}
		return replayOp{op: opSetex, key: args[1], val: args[2], ns: ns}, nil
	case opDel:
		if len(args) != 2 {
			return replayOp{}, fmt.Errorf("kvstore: bad DEL arity %d", len(args))
		}
		return replayOp{op: opDel, key: args[1]}, nil
	case opExpireAt:
		if len(args) != 3 {
			return replayOp{}, fmt.Errorf("kvstore: bad EXPIREAT arity %d", len(args))
		}
		ns, err := parseInt64(args[2])
		if err != nil {
			return replayOp{}, err
		}
		return replayOp{op: opExpireAt, key: args[1], ns: ns}, nil
	case opFlushAll:
		if len(args) != 1 {
			return replayOp{}, fmt.Errorf("kvstore: bad FLUSHALL arity %d", len(args))
		}
		return replayOp{op: opFlushAll}, nil
	case opGet, opScan, opIdxScan:
		// Read audit entries: no state change.
		return replayOp{op: args[0], read: true}, nil
	default:
		return replayOp{}, fmt.Errorf("kvstore: unknown AOF command %q", args[0])
	}
}

// apply replays one single-key op onto this stripe. The caller has
// exclusive access (Open-time rebuild).
func (st *stripe) apply(op replayOp) {
	switch op.op {
	case opSet:
		st.set(op.key, op.val, time.Time{})
	case opSetex:
		st.set(op.key, op.val, time.Unix(0, op.ns))
	case opDel:
		st.del(op.key)
	case opExpireAt:
		if op.ns == 0 {
			st.setExpireAt(op.key, time.Time{})
		} else {
			st.setExpireAt(op.key, time.Unix(0, op.ns))
		}
	}
}

// replayAOF rebuilds store state from the AOF at path. Missing files are
// fine (fresh store). Read entries (GET/SCAN) replay as no-ops. The
// striped profile decodes sequentially (frame order is the commit order)
// but applies concurrently: one worker per stripe consumes a routed
// channel, so per-key order is preserved while stripes rebuild in
// parallel; FLUSHALL acts as a barrier (drain every worker, wipe, resume).
func replayAOF(path string, key []byte, s *Store) error {
	if _, err := os.Stat(path); os.IsNotExist(err) {
		return nil
	}
	if len(s.stripes) == 1 {
		return securefs.Replay(path, securefs.Options{Key: key}, func(p []byte) error {
			op, err := decodeReplayFrame(p)
			if err != nil {
				return err
			}
			s.replayOps.Add(1)
			if op.read {
				return nil
			}
			if op.op == opFlushAll {
				s.stripes[0].flush()
				return nil
			}
			s.stripes[0].apply(op)
			return nil
		})
	}
	return s.replayConcurrent(path, key)
}

func decodeReplayFrame(p []byte) (replayOp, error) {
	args, err := decodeCommand(p)
	if err != nil {
		return replayOp{}, err
	}
	return parseReplayCommand(args)
}

// replayConcurrent is the striped rebuild: a per-stripe worker pool fed
// by the sequential decoder. Decode/parse errors surface in the reader,
// before routing; workers apply infallible typed ops.
func (s *Store) replayConcurrent(path string, key []byte) error {
	var (
		chans []chan replayOp
		wg    sync.WaitGroup
	)
	start := func() {
		chans = make([]chan replayOp, len(s.stripes))
		for i := range chans {
			ch := make(chan replayOp, 128)
			chans[i] = ch
			wg.Add(1)
			go func(st *stripe, ch <-chan replayOp) {
				defer wg.Done()
				for op := range ch {
					st.apply(op)
				}
			}(&s.stripes[i], ch)
		}
	}
	stop := func() {
		for _, ch := range chans {
			close(ch)
		}
		wg.Wait()
	}
	start()
	err := securefs.Replay(path, securefs.Options{Key: key}, func(p []byte) error {
		op, err := decodeReplayFrame(p)
		if err != nil {
			return err
		}
		s.replayOps.Add(1)
		switch {
		case op.read:
		case op.op == opFlushAll:
			stop()
			for i := range s.stripes {
				s.stripes[i].flush()
			}
			start()
		default:
			chans[s.stripeIndex(op.key)] <- op
		}
		return nil
	})
	stop()
	return err
}

// parseInt64 sits on the AOF replay hot path (every SETEX/EXPIREAT
// deadline goes through it), so it parses without the Sscanf machinery.
func parseInt64(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("kvstore: bad integer %q: %w", s, err)
	}
	return v, nil
}

// Rewrite compacts the AOF: the current dataset is written as a fresh
// sequence of SET/SETEX commands to path+".rewrite", which then
// atomically replaces the live AOF (Redis' BGREWRITEAOF). The striped
// profile rewrites concurrently with live traffic — per-stripe shared-
// lock snapshots, a rewrite buffer for concurrently staged commands, a
// short exclusive swap window (rewrite.go); the legacy single-mutex
// profile rewrites in the foreground, like everything else it does.
func (s *Store) Rewrite() error {
	if s.aof == nil && s.pipe == nil {
		return fmt.Errorf("kvstore: no AOF to rewrite")
	}
	if s.pipe != nil {
		return s.backgroundRewrite()
	}
	return s.RewriteForeground()
}

// RewriteForeground is the stop-the-world rewrite: every stripe stays
// frozen for the whole snapshot write. It is the legacy profile's only
// rewrite, and is kept callable on the striped profile as the ablation
// baseline the pause benchmark compares backgroundRewrite against.
func (s *Store) RewriteForeground() error {
	if s.aof == nil && s.pipe == nil {
		return fmt.Errorf("kvstore: no AOF to rewrite")
	}
	start := time.Now()
	if s.pipe != nil {
		// rewriteMu before the stripe locks — the order backgroundRewrite
		// and close() use — so a foreground and a background rewrite can
		// never deadlock on each other's swap.
		s.pipe.rewriteMu.Lock()
		defer s.pipe.rewriteMu.Unlock()
	}
	s.lockAll()
	defer s.unlockAll()
	if s.closed.Load() {
		return errClosed
	}
	if s.pipe != nil {
		size, err := s.pipe.rewrite(s)
		if err != nil {
			return err
		}
		s.finishRewrite(start, 0, size)
		return nil
	}
	path := s.aof.file.Path()
	tmp := path + ".rewrite"
	key := s.aofKey
	encrypted := s.aof.encrypted
	nf, err := securefs.Create(tmp, securefs.Options{Key: key})
	if err != nil {
		return err
	}
	if err := s.writeSnapshot(nf); err != nil {
		nf.Close()
		return err
	}
	if err := nf.Close(); err != nil {
		return err
	}
	if err := s.aof.close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	na, err := openAOF(path, key, s.aof.policy, s.clk)
	if err != nil {
		return err
	}
	na.encrypted = encrypted
	s.aof = na
	size, _ := na.size()
	s.finishRewrite(start, 0, size)
	return nil
}

// writeSnapshot emits the live dataset as SET/SETEX frames. Callers hold
// every stripe lock.
func (s *Store) writeSnapshot(f *securefs.File) error {
	var buf []byte
	for i := range s.stripes {
		st := &s.stripes[i]
		for _, k := range st.keySlice {
			e := st.dict[k]
			if e.expireAt.IsZero() {
				buf = encodeCommand(buf, opSet, k, e.value)
			} else {
				buf = encodeCommandNum(buf, e.expireAt.UnixNano(), opSetex, k, e.value)
			}
			if err := f.AppendFrame(buf); err != nil {
				return err
			}
		}
	}
	return nil
}

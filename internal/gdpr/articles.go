package gdpr

// This file encodes Table 1 of the paper: the mapping from key GDPR
// articles to the database-system attributes and actions they induce. The
// table is load-bearing for the benchmark — workloads and the feature
// matrix of the compliant engines are derived from these actions — and a
// test pins it against the paper.

// Action is a database-system capability induced by one or more articles
// (the "Actions" column of Table 1).
type Action string

// The five action families of Table 1 / §3.2.
const (
	ActionMetadataIndexing Action = "metadata-indexing"
	ActionTimelyDeletion   Action = "timely-deletion"
	ActionAccessControl    Action = "access-control"
	ActionMonitorAndLog    Action = "monitor-and-log"
	ActionEncryption       Action = "encryption"
)

// Article is one row of Table 1.
type Article struct {
	// Number of the GDPR article (the paper prefixes these with G).
	Number int
	// Clause is the article's short name.
	Clause string
	// Regulates summarizes what the article requires.
	Regulates string
	// Attributes are the GDPR metadata attributes the article induces.
	Attributes []Attribute
	// Actions are the database actions the article requires.
	Actions []Action
}

// Articles is Table 1 of the paper, in row order.
var Articles = []Article{
	{
		Number: 5, Clause: "Purpose limitation",
		Regulates:  "Collect data for explicit purposes",
		Attributes: []Attribute{AttrPurpose},
		Actions:    []Action{ActionMetadataIndexing},
	},
	{
		Number: 5, Clause: "Storage limitation",
		Regulates:  "Do not store data indefinitely",
		Attributes: []Attribute{AttrTTL},
		Actions:    []Action{ActionTimelyDeletion},
	},
	{
		Number: 13, Clause: "Information to be provided [13, 14]",
		Regulates:  "Inform customers about all the GDPR metadata associated with their data",
		Attributes: []Attribute{AttrPurpose, AttrTTL, AttrSource, AttrSharing},
		Actions:    []Action{ActionMetadataIndexing},
	},
	{
		Number: 15, Clause: "Right of access by users",
		Regulates:  "Allow customers to access all their data",
		Attributes: []Attribute{AttrUser},
		Actions:    []Action{ActionMetadataIndexing},
	},
	{
		Number: 17, Clause: "Right to be forgotten",
		Regulates:  "Allow customers to erasure their data",
		Attributes: []Attribute{AttrTTL},
		Actions:    []Action{ActionTimelyDeletion},
	},
	{
		Number: 21, Clause: "Right to object",
		Regulates:  "Do not use data for any objected reasons",
		Attributes: []Attribute{AttrObjection},
		Actions:    []Action{ActionMetadataIndexing},
	},
	{
		Number: 22, Clause: "Automated individual decision-making",
		Regulates:  "Allow customers to withdraw from fully algorithmic decision-making",
		Attributes: []Attribute{AttrDecision},
		Actions:    []Action{ActionMetadataIndexing},
	},
	{
		Number: 25, Clause: "Data protection by design and default",
		Regulates: "Safeguard and restrict access to data",
		Actions:   []Action{ActionAccessControl},
	},
	{
		Number: 28, Clause: "Processor",
		Regulates: "Do not grant unlimited access to data",
		Actions:   []Action{ActionAccessControl},
	},
	{
		Number: 30, Clause: "Records of processing activity",
		Regulates:  "Audit all operations on personal data",
		Attributes: []Attribute{"AUD"},
		Actions:    []Action{ActionMonitorAndLog},
	},
	{
		Number: 32, Clause: "Security of processing",
		Regulates: "Implement appropriate data security",
		Actions:   []Action{ActionEncryption},
	},
	{
		Number: 33, Clause: "Notification of personal data breach",
		Regulates:  "Share audit trails from affected systems",
		Attributes: []Attribute{"AUD"},
		Actions:    []Action{ActionMonitorAndLog},
	},
}

// ActionsRequired returns the deduplicated set of actions across all of
// Table 1 — the capability checklist a compliant datastore must support.
func ActionsRequired() []Action {
	seen := map[Action]bool{}
	var out []Action
	for _, a := range Articles {
		for _, act := range a.Actions {
			if !seen[act] {
				seen[act] = true
				out = append(out, act)
			}
		}
	}
	return out
}

// ArticlesFor returns the Table 1 rows that require the given action.
func ArticlesFor(act Action) []Article {
	var out []Article
	for _, a := range Articles {
		for _, x := range a.Actions {
			if x == act {
				out = append(out, a)
				break
			}
		}
	}
	return out
}

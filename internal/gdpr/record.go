// Package gdpr defines the abstraction at the heart of the paper: the
// personal-data record. Under GDPR every personal data item carries up to
// seven metadata attributes (purpose, time-to-live, owning user, objections,
// automated-decision flags, third-party sharing, and origin) — the
// "metadata explosion" of §3.1. This package provides the record model, the
// benchmark's wire format (§4.2.1), field selectors used by GDPR queries,
// and the Table 1 article → attribute/action mapping.
package gdpr

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Attribute names the seven GDPR metadata attributes plus the record key.
// The three-letter forms (PUR, TTL, ...) match the paper's record format.
type Attribute string

// The attribute set from §3.1 / §4.2.1.
const (
	AttrKey       Attribute = "KEY"
	AttrData      Attribute = "DATA"
	AttrPurpose   Attribute = "PUR"
	AttrTTL       Attribute = "TTL"
	AttrUser      Attribute = "USR"
	AttrObjection Attribute = "OBJ"
	AttrDecision  Attribute = "DEC"
	AttrSharing   Attribute = "SHR"
	AttrSource    Attribute = "SRC"
)

// MetadataAttributes lists the seven metadata attributes in the order they
// appear in the paper's record layout.
var MetadataAttributes = []Attribute{
	AttrPurpose, AttrTTL, AttrUser, AttrObjection, AttrDecision, AttrSharing, AttrSource,
}

// Metadata is the set of behavioral properties attached to every personal
// data item (§3.1's "metadata explosion").
type Metadata struct {
	// Purposes for which the data may be processed (G 5(1b), G 21).
	Purposes []string
	// Expiry is the absolute time-to-live deadline (G 5(1e), G 13(2a)).
	// The zero time means "no expiry recorded", which is non-compliant in
	// strict mode.
	Expiry time.Time
	// User identifies the data subject the record concerns (G 15).
	User string
	// Objections is the per-item blacklist of uses (G 21).
	Objections []string
	// Decisions records automated decision-making uses (G 15(1), G 22).
	Decisions []string
	// SharedWith lists third parties the item was shared with (G 13, 14).
	SharedWith []string
	// Source records how the item was procured (G 13, 14).
	Source string
}

// Record is one personal data item with its GDPR metadata, the unit of
// storage in GDPRbench (§4.2.1: <Key><Data><Metadata>).
type Record struct {
	Key  string
	Data string
	Meta Metadata
}

// Clone returns a deep copy of the record.
func (r Record) Clone() Record {
	out := r
	out.Meta = r.Meta.Clone()
	return out
}

// Clone returns a deep copy of the metadata.
func (m Metadata) Clone() Metadata {
	out := m
	out.Purposes = append([]string(nil), m.Purposes...)
	out.Objections = append([]string(nil), m.Objections...)
	out.Decisions = append([]string(nil), m.Decisions...)
	out.SharedWith = append([]string(nil), m.SharedWith...)
	return out
}

// Expired reports whether the record's TTL has passed at time now.
func (m Metadata) Expired(now time.Time) bool {
	return !m.Expiry.IsZero() && !m.Expiry.After(now)
}

// HasPurpose reports whether p is among the record's allowed purposes.
func (m Metadata) HasPurpose(p string) bool { return contains(m.Purposes, p) }

// Objects reports whether the user has objected to use u.
func (m Metadata) Objects(u string) bool { return contains(m.Objections, u) }

// UsedForDecision reports whether the record is registered for automated
// decision-making use d.
func (m Metadata) UsedForDecision(d string) bool { return contains(m.Decisions, d) }

// SharedTo reports whether the record has been shared with third party s.
func (m Metadata) SharedTo(s string) bool { return contains(m.SharedWith, s) }

func contains(xs []string, v string) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Values returns the metadata values for a (multi-valued) attribute; for
// single-valued attributes it returns a slice of length 0 or 1. AttrTTL is
// rendered in wire form (unix seconds).
func (m Metadata) Values(a Attribute) []string {
	switch a {
	case AttrPurpose:
		return m.Purposes
	case AttrUser:
		if m.User == "" {
			return nil
		}
		return []string{m.User}
	case AttrObjection:
		return m.Objections
	case AttrDecision:
		return m.Decisions
	case AttrSharing:
		return m.SharedWith
	case AttrSource:
		if m.Source == "" {
			return nil
		}
		return []string{m.Source}
	case AttrTTL:
		if m.Expiry.IsZero() {
			return nil
		}
		return []string{fmt.Sprintf("%d", m.Expiry.Unix())}
	default:
		return nil
	}
}

// ValidationError describes a record that violates the benchmark's record
// grammar or strict-compliance requirements.
type ValidationError struct {
	Key    string
	Reason string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("gdpr: invalid record %q: %s", e.Key, e.Reason)
}

// ErrEmptyKey is returned when a record has no key.
var ErrEmptyKey = errors.New("gdpr: empty record key")

// forbidden runes: the wire format reserves ';' and ',' as separators and
// all fields must be printable ASCII (§4.2.1).
func fieldOK(s string) bool {
	for _, c := range s {
		if c < 0x20 || c > 0x7e || c == ';' || c == ',' {
			return false
		}
	}
	return true
}

// Validate checks the record against the §4.2.1 grammar. If strict is true
// it additionally enforces the strict-interpretation invariants the paper
// adopts: a non-zero TTL (G 5(1e)) and a non-empty owning user (G 15).
func (r Record) Validate(strict bool) error {
	if r.Key == "" {
		return ErrEmptyKey
	}
	if !fieldOK(r.Key) {
		return &ValidationError{r.Key, "key contains reserved or non-ASCII characters"}
	}
	if !fieldOK(r.Data) {
		return &ValidationError{r.Key, "data contains reserved or non-ASCII characters"}
	}
	for _, a := range MetadataAttributes {
		if a == AttrTTL {
			continue
		}
		for _, v := range r.Meta.Values(a) {
			if !fieldOK(v) {
				return &ValidationError{r.Key, fmt.Sprintf("%s value %q contains reserved or non-ASCII characters", a, v)}
			}
		}
	}
	if strict {
		if r.Meta.Expiry.IsZero() {
			return &ValidationError{r.Key, "strict mode requires a TTL (G 5(1e))"}
		}
		if r.Meta.User == "" {
			return &ValidationError{r.Key, "strict mode requires an associated person (G 15)"}
		}
	}
	return nil
}

// DataSize returns the personal-data payload size in bytes; the denominator
// of the paper's space-overhead metric (§4.2.3).
func (r Record) DataSize() int { return len(r.Data) }

// WireSize returns the size of the record in wire format — the paper's
// notion of how much the datastore grows per record before engine overheads.
func (r Record) WireSize() int { return len(Encode(r)) }

// MetadataSize returns WireSize minus key and data bytes.
func (r Record) MetadataSize() int {
	return r.WireSize() - len(r.Key) - len(r.Data)
}

// SortStrings sorts a copy of xs; helper for canonical comparisons in tests
// and the correctness validator.
func SortStrings(xs []string) []string {
	out := append([]string(nil), xs...)
	sort.Strings(out)
	return out
}

// EqualSets reports whether two string slices contain the same multiset of
// values irrespective of order.
func EqualSets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := SortStrings(a), SortStrings(b)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// String renders the record in wire form.
func (r Record) String() string { return Encode(r) }

// addUnique appends v to xs if absent, returning the new slice.
func addUnique(xs []string, v string) []string {
	if contains(xs, v) {
		return xs
	}
	return append(xs, v)
}

// removeValue removes all occurrences of v from xs, returning the new slice.
func removeValue(xs []string, v string) []string {
	out := xs[:0]
	for _, x := range xs {
		if x != v {
			out = append(out, x)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return append([]string(nil), out...)
}

// DeltaOp is the kind of metadata mutation in a Delta.
type DeltaOp int

// Supported metadata mutations.
const (
	// DeltaSet replaces the attribute's values.
	DeltaSet DeltaOp = iota
	// DeltaAdd inserts a value if absent.
	DeltaAdd
	// DeltaRemove deletes a value if present.
	DeltaRemove
)

func (o DeltaOp) String() string {
	switch o {
	case DeltaSet:
		return "set"
	case DeltaAdd:
		return "add"
	case DeltaRemove:
		return "remove"
	default:
		return fmt.Sprintf("DeltaOp(%d)", int(o))
	}
}

// Delta is one metadata mutation: customers changing objections (G 18.1,
// G 7.3), processors registering automated-decision use (G 22.3), or
// controllers updating sharing/access lists (G 13.3).
type Delta struct {
	Attr   Attribute
	Op     DeltaOp
	Values []string
	// Expiry is used instead of Values when Attr == AttrTTL and Op == DeltaSet.
	Expiry time.Time
}

// Apply mutates m according to the delta. It returns an error for deltas
// that do not type-check (e.g. removing from a single-valued attribute).
func (d Delta) Apply(m *Metadata) error {
	switch d.Attr {
	case AttrPurpose:
		return applyList(&m.Purposes, d)
	case AttrObjection:
		return applyList(&m.Objections, d)
	case AttrDecision:
		return applyList(&m.Decisions, d)
	case AttrSharing:
		return applyList(&m.SharedWith, d)
	case AttrUser:
		if d.Op != DeltaSet || len(d.Values) != 1 {
			return fmt.Errorf("gdpr: USR only supports set with one value, got %s %v", d.Op, d.Values)
		}
		m.User = d.Values[0]
		return nil
	case AttrSource:
		if d.Op != DeltaSet || len(d.Values) != 1 {
			return fmt.Errorf("gdpr: SRC only supports set with one value, got %s %v", d.Op, d.Values)
		}
		m.Source = d.Values[0]
		return nil
	case AttrTTL:
		if d.Op != DeltaSet {
			return fmt.Errorf("gdpr: TTL only supports set, got %s", d.Op)
		}
		m.Expiry = d.Expiry
		return nil
	default:
		return fmt.Errorf("gdpr: delta on unknown attribute %q", d.Attr)
	}
}

func applyList(target *[]string, d Delta) error {
	switch d.Op {
	case DeltaSet:
		*target = append([]string(nil), d.Values...)
	case DeltaAdd:
		for _, v := range d.Values {
			*target = addUnique(*target, v)
		}
	case DeltaRemove:
		for _, v := range d.Values {
			*target = removeValue(*target, v)
		}
	default:
		return fmt.Errorf("gdpr: unknown delta op %d", d.Op)
	}
	return nil
}

// Selector identifies the records a GDPR query acts on: by key, by a
// metadata attribute value, or by TTL expiry (§3.3's *-BY-{KEY|PUR|USR|...}
// query families).
type Selector struct {
	// Attr is the attribute matched: AttrKey, AttrPurpose, AttrUser,
	// AttrObjection, AttrDecision, AttrSharing, AttrSource, or AttrTTL.
	Attr Attribute
	// Value is the match value for every attribute except AttrTTL.
	Value string
	// AsOf is the cutoff instant for AttrTTL selectors (match records whose
	// expiry is <= AsOf).
	AsOf time.Time
	// Negate inverts the match. The G 21.3 processor query — "get data
	// that do not object to specific usage" — is ByNotObjecting, an
	// objection selector with Negate set.
	Negate bool
}

// ByKey selects a single record by key.
func ByKey(key string) Selector { return Selector{Attr: AttrKey, Value: key} }

// ByUser selects all records of a data subject.
func ByUser(u string) Selector { return Selector{Attr: AttrUser, Value: u} }

// ByPurpose selects all records collected for purpose p.
func ByPurpose(p string) Selector { return Selector{Attr: AttrPurpose, Value: p} }

// ByObjection selects all records whose owners objected to use u.
func ByObjection(u string) Selector { return Selector{Attr: AttrObjection, Value: u} }

// ByNotObjecting selects all records whose owners did NOT object to use u
// (the G 21.3 processor read shape).
func ByNotObjecting(u string) Selector {
	return Selector{Attr: AttrObjection, Value: u, Negate: true}
}

// ByDecision selects all records registered for automated decision d.
func ByDecision(d string) Selector { return Selector{Attr: AttrDecision, Value: d} }

// ByShare selects all records shared with third party s.
func ByShare(s string) Selector { return Selector{Attr: AttrSharing, Value: s} }

// ByExpiredAt selects all records whose TTL has passed at time t.
func ByExpiredAt(t time.Time) Selector { return Selector{Attr: AttrTTL, AsOf: t} }

// Matches reports whether the selector matches record r.
func (s Selector) Matches(r Record) bool {
	m := s.matchesPositive(r)
	if s.Negate {
		return !m
	}
	return m
}

func (s Selector) matchesPositive(r Record) bool {
	switch s.Attr {
	case AttrKey:
		return r.Key == s.Value
	case AttrUser:
		return r.Meta.User == s.Value
	case AttrPurpose:
		return r.Meta.HasPurpose(s.Value)
	case AttrObjection:
		return r.Meta.Objects(s.Value)
	case AttrDecision:
		return r.Meta.UsedForDecision(s.Value)
	case AttrSharing:
		return r.Meta.SharedTo(s.Value)
	case AttrSource:
		return r.Meta.Source == s.Value
	case AttrTTL:
		return r.Meta.Expired(s.AsOf)
	default:
		return false
	}
}

// String renders the selector for logs and error messages.
func (s Selector) String() string {
	if s.Attr == AttrTTL {
		return fmt.Sprintf("TTL<=%d", s.AsOf.Unix())
	}
	op := "="
	if s.Negate {
		op = "!="
	}
	return fmt.Sprintf("%s%s%s", s.Attr, op, s.Value)
}

// NotObjecting returns a predicate matching records that do NOT object to
// use u — the G 21.3 / G 22 "read data that does not object" query shape.
func NotObjecting(u string) func(Record) bool {
	return func(r Record) bool { return !r.Meta.Objects(u) }
}

// ParseKeyList splits a comma-separated key list; helper for CLIs.
func ParseKeyList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

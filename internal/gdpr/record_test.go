package gdpr

import (
	"strings"
	"testing"
	"time"
)

func sampleRecord() Record {
	return Record{
		Key:  "ph-1x4b",
		Data: "123-456-7890",
		Meta: Metadata{
			Purposes:   []string{"ads", "2fa"},
			Expiry:     time.Date(2019, 3, 18, 0, 0, 0, 0, time.UTC),
			User:       "neo",
			Objections: nil,
			Decisions:  nil,
			SharedWith: nil,
			Source:     "first-party",
		},
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := sampleRecord()
	c := r.Clone()
	c.Meta.Purposes[0] = "mutated"
	c.Meta.Objections = append(c.Meta.Objections, "x")
	if r.Meta.Purposes[0] != "ads" {
		t.Fatal("clone shares Purposes backing array")
	}
	if len(r.Meta.Objections) != 0 {
		t.Fatal("clone shares Objections")
	}
}

func TestExpired(t *testing.T) {
	now := time.Date(2020, 6, 1, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name   string
		expiry time.Time
		want   bool
	}{
		{"zero expiry never expires", time.Time{}, false},
		{"future", now.Add(time.Hour), false},
		{"past", now.Add(-time.Hour), true},
		{"exactly now counts as expired", now, true},
	}
	for _, c := range cases {
		m := Metadata{Expiry: c.expiry}
		if got := m.Expired(now); got != c.want {
			t.Errorf("%s: Expired = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestMetadataPredicates(t *testing.T) {
	m := Metadata{
		Purposes:   []string{"ads"},
		Objections: []string{"ads"},
		Decisions:  []string{"credit-score"},
		SharedWith: []string{"partner-a"},
	}
	if !m.HasPurpose("ads") || m.HasPurpose("2fa") {
		t.Fatal("HasPurpose wrong")
	}
	if !m.Objects("ads") || m.Objects("2fa") {
		t.Fatal("Objects wrong")
	}
	if !m.UsedForDecision("credit-score") || m.UsedForDecision("x") {
		t.Fatal("UsedForDecision wrong")
	}
	if !m.SharedTo("partner-a") || m.SharedTo("partner-b") {
		t.Fatal("SharedTo wrong")
	}
}

func TestValuesPerAttribute(t *testing.T) {
	r := sampleRecord()
	if got := r.Meta.Values(AttrPurpose); len(got) != 2 {
		t.Fatalf("PUR values = %v", got)
	}
	if got := r.Meta.Values(AttrUser); len(got) != 1 || got[0] != "neo" {
		t.Fatalf("USR values = %v", got)
	}
	if got := r.Meta.Values(AttrObjection); got != nil {
		t.Fatalf("OBJ values = %v, want nil", got)
	}
	if got := r.Meta.Values(AttrTTL); len(got) != 1 {
		t.Fatalf("TTL values = %v", got)
	}
	if got := r.Meta.Values(Attribute("ZZZ")); got != nil {
		t.Fatalf("unknown attr values = %v", got)
	}
	var empty Metadata
	if got := empty.Values(AttrUser); got != nil {
		t.Fatalf("empty USR = %v", got)
	}
	if got := empty.Values(AttrTTL); got != nil {
		t.Fatalf("empty TTL = %v", got)
	}
	if got := empty.Values(AttrSource); got != nil {
		t.Fatalf("empty SRC = %v", got)
	}
}

func TestValidate(t *testing.T) {
	good := sampleRecord()
	if err := good.Validate(true); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Record)
		strict bool
	}{
		{"empty key", func(r *Record) { r.Key = "" }, false},
		{"semicolon in key", func(r *Record) { r.Key = "a;b" }, false},
		{"comma in data", func(r *Record) { r.Data = "a,b" }, false},
		{"non-ascii purpose", func(r *Record) { r.Meta.Purposes = []string{"Ω"} }, false},
		{"control char user", func(r *Record) { r.Meta.User = "a\x01" }, false},
		{"strict requires TTL", func(r *Record) { r.Meta.Expiry = time.Time{} }, true},
		{"strict requires user", func(r *Record) { r.Meta.User = "" }, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := sampleRecord()
			c.mutate(&r)
			if err := r.Validate(c.strict); err == nil {
				t.Fatalf("%s: expected error", c.name)
			}
		})
	}

	// Non-strict mode allows missing TTL/user.
	r := sampleRecord()
	r.Meta.Expiry = time.Time{}
	r.Meta.User = ""
	if err := r.Validate(false); err != nil {
		t.Fatalf("lenient mode rejected record: %v", err)
	}
}

func TestValidationErrorMessage(t *testing.T) {
	r := sampleRecord()
	r.Data = "a;b"
	err := r.Validate(false)
	if err == nil || !strings.Contains(err.Error(), "ph-1x4b") {
		t.Fatalf("error should name the key: %v", err)
	}
}

func TestSizes(t *testing.T) {
	r := sampleRecord()
	if r.DataSize() != len("123-456-7890") {
		t.Fatalf("DataSize = %d", r.DataSize())
	}
	if r.WireSize() != len(Encode(r)) {
		t.Fatalf("WireSize mismatch")
	}
	if r.MetadataSize() <= 0 {
		t.Fatalf("MetadataSize = %d", r.MetadataSize())
	}
	if r.WireSize() != r.MetadataSize()+len(r.Key)+len(r.Data) {
		t.Fatal("size identity broken")
	}
}

func TestEqualSets(t *testing.T) {
	if !EqualSets([]string{"a", "b"}, []string{"b", "a"}) {
		t.Fatal("order should not matter")
	}
	if EqualSets([]string{"a"}, []string{"a", "a"}) {
		t.Fatal("multiset lengths differ")
	}
	if !EqualSets(nil, nil) || !EqualSets(nil, []string{}) {
		t.Fatal("empty sets should be equal")
	}
}

func TestDeltaApply(t *testing.T) {
	m := Metadata{Purposes: []string{"ads"}}
	if err := (Delta{Attr: AttrPurpose, Op: DeltaAdd, Values: []string{"2fa", "ads"}}).Apply(&m); err != nil {
		t.Fatal(err)
	}
	if !EqualSets(m.Purposes, []string{"ads", "2fa"}) {
		t.Fatalf("after add: %v", m.Purposes)
	}
	if err := (Delta{Attr: AttrPurpose, Op: DeltaRemove, Values: []string{"ads"}}).Apply(&m); err != nil {
		t.Fatal(err)
	}
	if !EqualSets(m.Purposes, []string{"2fa"}) {
		t.Fatalf("after remove: %v", m.Purposes)
	}
	if err := (Delta{Attr: AttrObjection, Op: DeltaSet, Values: []string{"ads"}}).Apply(&m); err != nil {
		t.Fatal(err)
	}
	if !m.Objects("ads") {
		t.Fatal("set objection lost")
	}
	exp := time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)
	if err := (Delta{Attr: AttrTTL, Op: DeltaSet, Expiry: exp}).Apply(&m); err != nil {
		t.Fatal(err)
	}
	if !m.Expiry.Equal(exp) {
		t.Fatalf("expiry = %v", m.Expiry)
	}
	if err := (Delta{Attr: AttrUser, Op: DeltaSet, Values: []string{"trinity"}}).Apply(&m); err != nil {
		t.Fatal(err)
	}
	if m.User != "trinity" {
		t.Fatalf("user = %q", m.User)
	}
	if err := (Delta{Attr: AttrSource, Op: DeltaSet, Values: []string{"3p"}}).Apply(&m); err != nil {
		t.Fatal(err)
	}
	if m.Source != "3p" {
		t.Fatalf("source = %q", m.Source)
	}
}

func TestDeltaApplyErrors(t *testing.T) {
	var m Metadata
	bad := []Delta{
		{Attr: AttrUser, Op: DeltaAdd, Values: []string{"x"}},
		{Attr: AttrUser, Op: DeltaSet, Values: []string{"x", "y"}},
		{Attr: AttrSource, Op: DeltaRemove, Values: []string{"x"}},
		{Attr: AttrTTL, Op: DeltaAdd},
		{Attr: Attribute("NOPE"), Op: DeltaSet},
		{Attr: AttrPurpose, Op: DeltaOp(99)},
	}
	for i, d := range bad {
		if err := d.Apply(&m); err == nil {
			t.Fatalf("delta %d (%s on %s) should fail", i, d.Op, d.Attr)
		}
	}
}

func TestDeltaRemoveToEmptyYieldsNil(t *testing.T) {
	m := Metadata{Objections: []string{"ads"}}
	if err := (Delta{Attr: AttrObjection, Op: DeltaRemove, Values: []string{"ads"}}).Apply(&m); err != nil {
		t.Fatal(err)
	}
	if m.Objections != nil {
		t.Fatalf("objections = %#v, want nil", m.Objections)
	}
}

func TestSelectors(t *testing.T) {
	r := sampleRecord()
	r.Meta.Objections = []string{"profiling"}
	r.Meta.Decisions = []string{"ranking"}
	r.Meta.SharedWith = []string{"partner-a"}

	cases := []struct {
		sel  Selector
		want bool
	}{
		{ByKey("ph-1x4b"), true},
		{ByKey("nope"), false},
		{ByUser("neo"), true},
		{ByUser("smith"), false},
		{ByPurpose("ads"), true},
		{ByPurpose("telemetry"), false},
		{ByObjection("profiling"), true},
		{ByObjection("ads"), false},
		{ByDecision("ranking"), true},
		{ByDecision("pricing"), false},
		{ByShare("partner-a"), true},
		{ByShare("partner-b"), false},
		{Selector{Attr: AttrSource, Value: "first-party"}, true},
		{Selector{Attr: AttrSource, Value: "third-party"}, false},
		{ByExpiredAt(r.Meta.Expiry.Add(time.Second)), true},
		{ByExpiredAt(r.Meta.Expiry.Add(-time.Second)), false},
		{Selector{Attr: Attribute("BOGUS")}, false},
	}
	for _, c := range cases {
		if got := c.sel.Matches(r); got != c.want {
			t.Errorf("selector %v: Matches = %v, want %v", c.sel, got, c.want)
		}
	}
}

func TestSelectorString(t *testing.T) {
	if s := ByUser("neo").String(); s != "USR=neo" {
		t.Fatalf("String = %q", s)
	}
	if s := ByExpiredAt(time.Unix(100, 0)).String(); !strings.Contains(s, "TTL<=") {
		t.Fatalf("TTL selector string = %q", s)
	}
}

func TestNotObjecting(t *testing.T) {
	r := sampleRecord()
	r.Meta.Objections = []string{"ads"}
	if NotObjecting("ads")(r) {
		t.Fatal("should object to ads")
	}
	if !NotObjecting("2fa")(r) {
		t.Fatal("should not object to 2fa")
	}
}

func TestParseKeyList(t *testing.T) {
	if got := ParseKeyList(" a, b ,,c "); len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("ParseKeyList = %v", got)
	}
	if got := ParseKeyList("  "); got != nil {
		t.Fatalf("empty list = %v", got)
	}
}

func TestDeltaOpString(t *testing.T) {
	for op, want := range map[DeltaOp]string{DeltaSet: "set", DeltaAdd: "add", DeltaRemove: "remove", DeltaOp(42): "DeltaOp(42)"} {
		if op.String() != want {
			t.Fatalf("DeltaOp(%d).String = %q, want %q", int(op), op.String(), want)
		}
	}
}

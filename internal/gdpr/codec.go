package gdpr

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// The wire format is the paper's §4.2.1 example, with absolute unix-second
// expiry timestamps in the TTL field (this is also how the paper's
// PostgreSQL retrofit stores expiry — "we modify the INSERT queries to
// include the expiry timestamp"):
//
//	ph-1x4b;123-456-7890;PUR=ads,2fa;TTL=1552867200;USR=neo;OBJ=;DEC=;SHR=;SRC=first-party;
//
// All fields are printable ASCII; ';' separates fields and ',' separates
// values inside a multi-valued attribute. Empty attributes render as an
// empty value (the paper prints ∅).

// Encode renders r in wire format.
func Encode(r Record) string {
	var b strings.Builder
	// Rough capacity: key+data+7 attrs of ~8 bytes each.
	b.Grow(len(r.Key) + len(r.Data) + 96)
	b.WriteString(r.Key)
	b.WriteByte(';')
	b.WriteString(r.Data)
	b.WriteByte(';')
	writeAttr(&b, AttrPurpose, r.Meta.Purposes)
	b.WriteString("TTL=")
	if !r.Meta.Expiry.IsZero() {
		b.WriteString(strconv.FormatInt(r.Meta.Expiry.Unix(), 10))
	}
	b.WriteByte(';')
	writeAttr(&b, AttrUser, r.Meta.Values(AttrUser))
	writeAttr(&b, AttrObjection, r.Meta.Objections)
	writeAttr(&b, AttrDecision, r.Meta.Decisions)
	writeAttr(&b, AttrSharing, r.Meta.SharedWith)
	writeAttr(&b, AttrSource, r.Meta.Values(AttrSource))
	return b.String()
}

func writeAttr(b *strings.Builder, a Attribute, values []string) {
	b.WriteString(string(a))
	b.WriteByte('=')
	for i, v := range values {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(v)
	}
	b.WriteByte(';')
}

// DecodeError reports a malformed wire record.
type DecodeError struct {
	Input  string
	Reason string
}

func (e *DecodeError) Error() string {
	in := e.Input
	if len(in) > 64 {
		in = in[:64] + "…"
	}
	return fmt.Sprintf("gdpr: decode %q: %s", in, e.Reason)
}

// Decode parses a wire-format record produced by Encode.
func Decode(s string) (Record, error) {
	var r Record
	// Trailing ';' yields one empty trailing segment; require at least
	// key, data and the seven attributes.
	trimmed := strings.TrimSuffix(s, ";")
	parts := strings.Split(trimmed, ";")
	if len(parts) < 9 {
		return r, &DecodeError{s, fmt.Sprintf("want 9 fields, got %d", len(parts))}
	}
	r.Key = parts[0]
	r.Data = parts[1]
	if r.Key == "" {
		return r, &DecodeError{s, "empty key"}
	}
	seen := map[Attribute]bool{}
	for _, seg := range parts[2:] {
		eq := strings.IndexByte(seg, '=')
		if eq < 0 {
			return r, &DecodeError{s, fmt.Sprintf("attribute segment %q missing '='", seg)}
		}
		attr := Attribute(seg[:eq])
		val := seg[eq+1:]
		if seen[attr] {
			return r, &DecodeError{s, fmt.Sprintf("duplicate attribute %s", attr)}
		}
		seen[attr] = true
		switch attr {
		case AttrPurpose:
			r.Meta.Purposes = splitValues(val)
		case AttrTTL:
			if val != "" {
				sec, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					return r, &DecodeError{s, fmt.Sprintf("bad TTL %q", val)}
				}
				r.Meta.Expiry = time.Unix(sec, 0).UTC()
			}
		case AttrUser:
			r.Meta.User = val
		case AttrObjection:
			r.Meta.Objections = splitValues(val)
		case AttrDecision:
			r.Meta.Decisions = splitValues(val)
		case AttrSharing:
			r.Meta.SharedWith = splitValues(val)
		case AttrSource:
			r.Meta.Source = val
		default:
			return r, &DecodeError{s, fmt.Sprintf("unknown attribute %q", attr)}
		}
	}
	for _, a := range MetadataAttributes {
		if !seen[a] {
			return r, &DecodeError{s, fmt.Sprintf("missing attribute %s", a)}
		}
	}
	return r, nil
}

func splitValues(v string) []string {
	if v == "" {
		return nil
	}
	return strings.Split(v, ",")
}

// MustDecode decodes s and panics on error; for tests and examples.
func MustDecode(s string) Record {
	r, err := Decode(s)
	if err != nil {
		panic(err)
	}
	return r
}

// EncodeMetadata renders only the metadata attributes of r in wire form —
// the payload of READ-METADATA responses.
func EncodeMetadata(m Metadata) string {
	r := Record{Key: "k", Data: "", Meta: m}
	enc := Encode(r)
	// Strip "k;;" prefix: key + ';' + empty data + ';'.
	return enc[len("k;;"):]
}

package gdpr

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestEncodeMatchesPaperShape(t *testing.T) {
	r := sampleRecord()
	enc := Encode(r)
	if !strings.HasPrefix(enc, "ph-1x4b;123-456-7890;PUR=ads,2fa;TTL=") {
		t.Fatalf("prefix wrong: %s", enc)
	}
	for _, want := range []string{";USR=neo;", ";OBJ=;", ";DEC=;", ";SHR=;", ";SRC=first-party;"} {
		if !strings.Contains(enc, want) {
			t.Fatalf("encoding missing %q: %s", want, enc)
		}
	}
	if !strings.HasSuffix(enc, ";") {
		t.Fatalf("encoding must end with ';': %s", enc)
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	r := sampleRecord()
	r.Meta.Objections = []string{"profiling", "ads"}
	r.Meta.Decisions = []string{"ranking"}
	r.Meta.SharedWith = []string{"p1", "p2", "p3"}
	got, err := Decode(Encode(r))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, normalize(r)) {
		t.Fatalf("roundtrip mismatch:\n got %#v\nwant %#v", got, normalize(r))
	}
}

// normalize maps a record through the wire format's canonical form:
// expiry truncated to seconds in UTC.
func normalize(r Record) Record {
	out := r.Clone()
	if !out.Meta.Expiry.IsZero() {
		out.Meta.Expiry = time.Unix(out.Meta.Expiry.Unix(), 0).UTC()
	}
	return out
}

func TestDecodeZeroTTL(t *testing.T) {
	r := sampleRecord()
	r.Meta.Expiry = time.Time{}
	got, err := Decode(Encode(r))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Meta.Expiry.IsZero() {
		t.Fatalf("expiry = %v, want zero", got.Meta.Expiry)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"too few fields":    "a;b;PUR=;TTL=;",
		"missing equals":    "a;b;PUR=;TTL=;USR;OBJ=;DEC=;SHR=;SRC=;",
		"bad ttl":           "a;b;PUR=;TTL=abc;USR=;OBJ=;DEC=;SHR=;SRC=;",
		"unknown attribute": "a;b;PUR=;TTL=;USR=;OBJ=;DEC=;SHR=;XXX=;",
		"duplicate":         "a;b;PUR=;PUR=;TTL=;USR=;OBJ=;DEC=;SHR=;",
		"missing attribute": "a;b;PUR=;TTL=;USR=;OBJ=;DEC=;SHR=;",
		"empty key":         ";b;PUR=;TTL=;USR=;OBJ=;DEC=;SHR=;SRC=;",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Decode(in); err == nil {
				t.Fatalf("Decode(%q) should fail", in)
			}
		})
	}
}

func TestDecodeErrorTruncatesLongInput(t *testing.T) {
	long := strings.Repeat("x", 500)
	_, err := Decode(long)
	if err == nil {
		t.Fatal("expected error")
	}
	if len(err.Error()) > 200 {
		t.Fatalf("error message too long: %d bytes", len(err.Error()))
	}
}

func TestMustDecodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustDecode should panic on bad input")
		}
	}()
	MustDecode("garbage")
}

func TestEncodeMetadata(t *testing.T) {
	m := sampleRecord().Meta
	enc := EncodeMetadata(m)
	if !strings.HasPrefix(enc, "PUR=ads,2fa;") {
		t.Fatalf("metadata encoding prefix: %s", enc)
	}
	if strings.Contains(enc, "ph-1x4b") {
		t.Fatalf("metadata encoding leaked key: %s", enc)
	}
}

// asciiField generates wire-safe field values for the property test.
func asciiField(r *rand.Rand, maxLen int) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_./:@ "
	n := r.Intn(maxLen)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(alphabet[r.Intn(len(alphabet))])
	}
	return b.String()
}

func asciiList(r *rand.Rand, maxItems int) []string {
	n := r.Intn(maxItems + 1)
	var out []string
	for i := 0; i < n; i++ {
		// Values inside lists must be non-empty to round-trip.
		v := asciiField(r, 8)
		if v == "" {
			v = "v"
		}
		out = append(out, v)
	}
	return out
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rec := Record{
			Key:  "k-" + asciiField(r, 12),
			Data: asciiField(r, 40),
			Meta: Metadata{
				Purposes:   asciiList(r, 4),
				User:       asciiField(r, 10),
				Objections: asciiList(r, 3),
				Decisions:  asciiList(r, 3),
				SharedWith: asciiList(r, 3),
				Source:     asciiField(r, 10),
			},
		}
		if r.Intn(2) == 0 {
			rec.Meta.Expiry = time.Unix(r.Int63n(1<<32), 0).UTC()
		}
		got, err := Decode(Encode(rec))
		if err != nil {
			t.Logf("decode failed for %q: %v", Encode(rec), err)
			return false
		}
		want := normalize(rec)
		// nil vs empty slices normalize to nil on decode.
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestArticlesTable(t *testing.T) {
	// Pin Table 1 row count and the article numbers in paper order.
	wantNumbers := []int{5, 5, 13, 15, 17, 21, 22, 25, 28, 30, 32, 33}
	if len(Articles) != len(wantNumbers) {
		t.Fatalf("Articles rows = %d, want %d", len(Articles), len(wantNumbers))
	}
	for i, a := range Articles {
		if a.Number != wantNumbers[i] {
			t.Errorf("row %d: article %d, want %d", i, a.Number, wantNumbers[i])
		}
	}
	// The action set must be exactly the five §3.2 families.
	acts := ActionsRequired()
	want := map[Action]bool{
		ActionMetadataIndexing: true, ActionTimelyDeletion: true,
		ActionAccessControl: true, ActionMonitorAndLog: true, ActionEncryption: true,
	}
	if len(acts) != len(want) {
		t.Fatalf("actions = %v", acts)
	}
	for _, a := range acts {
		if !want[a] {
			t.Fatalf("unexpected action %q", a)
		}
	}
}

func TestArticlesFor(t *testing.T) {
	del := ArticlesFor(ActionTimelyDeletion)
	if len(del) != 2 {
		t.Fatalf("timely-deletion articles = %d, want 2 (G5 storage limitation, G17)", len(del))
	}
	seen := map[int]bool{}
	for _, a := range del {
		seen[a.Number] = true
	}
	if !seen[5] || !seen[17] {
		t.Fatalf("timely deletion should come from G5 and G17, got %v", del)
	}
	if got := ArticlesFor(Action("nope")); got != nil {
		t.Fatalf("unknown action rows = %v", got)
	}
}

func BenchmarkEncode(b *testing.B) {
	r := sampleRecord()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(r)
	}
}

func BenchmarkDecode(b *testing.B) {
	enc := Encode(sampleRecord())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

package relstore

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/wal"
)

// dumpAll returns every row of the records table in primary-key order.
func dumpAll(t *testing.T, db *DB) []Row {
	t.Helper()
	rows, err := db.ScanPK("records", "", 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "test.wal")
	cfg := Config{WALPath: walPath, WALSync: wal.SyncOnCommit}
	db := openDB(t, cfg)

	exp := time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("k%04d", i)
		if err := db.Insert("records", row(k, "v0", "usr", exp, nil, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Churn: updates and deletes so the log holds dead history.
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%04d", i)
		if err := db.Update("records", k, row(k, "v1", "usr", exp, nil, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 150; i < 200; i++ {
		if _, err := db.Delete("records", fmt.Sprintf("k%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	preSize, err := db.WALSize()
	if err != nil {
		t.Fatal(err)
	}

	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(walPath + ".ckpt"); err != nil {
		t.Fatalf("no sealed checkpoint file: %v", err)
	}
	if _, err := os.Stat(walPath + wal.RotatedSuffix); !os.IsNotExist(err) {
		t.Fatalf("rotated segment not removed after checkpoint: %v", err)
	}
	postSize, err := db.WALSize()
	if err != nil {
		t.Fatal(err)
	}
	if postSize >= preSize {
		t.Fatalf("live WAL not truncated: %d -> %d bytes", preSize, postSize)
	}

	// Writes after the checkpoint land in the fresh live log.
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("p%04d", i)
		if err := db.Insert("records", row(k, "post", "usr", exp, nil, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	want := dumpAll(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDB(t, cfg)
	got := dumpAll(t, db2)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("state mismatch after checkpointed recovery: got %d rows want %d", len(got), len(want))
	}
	records, micros, _ := db2.RecoveryStats()
	// Replay cost is bounded by live rows plus the post-checkpoint suffix,
	// not the 370-record history.
	if wantMax := int64(150 + 20); records > wantMax {
		t.Fatalf("recovery replayed %d records, want <= %d", records, wantMax)
	}
	if micros < 0 {
		t.Fatalf("negative recovery duration %d", micros)
	}
}

// TestCheckpointCrashAfterRotate simulates a crash between Rotate and
// Seal: the filled segment sits at WALPath+".old", no checkpoint covers
// it. Recovery must replay it, fold it into a fresh checkpoint, and
// remove it so the next rotation has a clear target.
func TestCheckpointCrashAfterRotate(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "test.wal")
	cfg := Config{WALPath: walPath, WALSync: wal.SyncOnCommit}
	db := openDB(t, cfg)
	exp := time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("k%04d", i)
		if err := db.Insert("records", row(k, "v", "usr", exp, nil, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	want := dumpAll(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// The crash: log rotated out, empty live file, no sealed checkpoint.
	if err := os.Rename(walPath, walPath+wal.RotatedSuffix); err != nil {
		t.Fatal(err)
	}

	db2 := openDB(t, cfg)
	got := dumpAll(t, db2)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("lost rotated segment: got %d rows want %d", len(got), len(want))
	}
	if _, err := os.Stat(walPath + wal.RotatedSuffix); !os.IsNotExist(err) {
		t.Fatalf("orphaned segment not folded away: %v", err)
	}
	if _, err := os.Stat(walPath + ".ckpt"); err != nil {
		t.Fatalf("recovery did not seal a fresh checkpoint: %v", err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}

	// And the folded state survives another plain recovery.
	db3 := openDB(t, cfg)
	if got := dumpAll(t, db3); !reflect.DeepEqual(got, want) {
		t.Fatalf("state mismatch after re-recovery: got %d rows want %d", len(got), len(want))
	}
}

// TestCheckpointTmpIgnored: a checkpoint writer that crashed mid-write
// leaves WALPath+".ckpt.tmp"; it was never renamed into place, so
// recovery must delete it unread.
func TestCheckpointTmpIgnored(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "test.wal")
	cfg := Config{WALPath: walPath, WALSync: wal.SyncOnCommit}
	db := openDB(t, cfg)
	exp := time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)
	if err := db.Insert("records", row("k1", "v", "usr", exp, nil, 1)); err != nil {
		t.Fatal(err)
	}
	want := dumpAll(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath+".ckpt.tmp", []byte("torn garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	db2 := openDB(t, cfg)
	if got := dumpAll(t, db2); !reflect.DeepEqual(got, want) {
		t.Fatalf("tmp checkpoint affected recovery")
	}
	if _, err := os.Stat(walPath + ".ckpt.tmp"); !os.IsNotExist(err) {
		t.Fatalf("tmp checkpoint not cleaned up: %v", err)
	}
}

func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "test.wal")
	cfg := Config{WALPath: walPath, WALSync: wal.SyncOnCommit, CheckpointBytes: 1}
	db := openDB(t, cfg)
	exp := time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("k%04d", i)
		if err := db.Insert("records", row(k, "v", "usr", exp, nil, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, ckpts := db.RecoveryStats(); ckpts > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("auto-checkpoint never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	want := dumpAll(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := openDB(t, cfg)
	if got := dumpAll(t, db2); !reflect.DeepEqual(got, want) {
		t.Fatalf("state mismatch after auto-checkpointed recovery")
	}
}

// TestCheckpointEncrypted round-trips a checkpoint through an encrypted
// WAL: the checkpoint file shares the log's at-rest key.
func TestCheckpointEncrypted(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "test.wal")
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i)
	}
	cfg := Config{WALPath: walPath, WALSync: wal.SyncOnCommit, EncryptionKey: key}
	db := openDB(t, cfg)
	exp := time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("k%04d", i)
		if err := db.Insert("records", row(k, "secret", "usr", exp, nil, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := dumpAll(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := openDB(t, cfg)
	if got := dumpAll(t, db2); !reflect.DeepEqual(got, want) {
		t.Fatalf("state mismatch after encrypted checkpointed recovery")
	}
}

package relstore

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/clock"
	"repro/internal/securefs"
	"repro/internal/wal"
)

func testSchema() Schema {
	return Schema{
		Name: "records",
		Columns: []Column{
			{Name: "key", Type: TypeText},
			{Name: "data", Type: TypeText},
			{Name: "usr", Type: TypeText},
			{Name: "ttl", Type: TypeTime},
			{Name: "pur", Type: TypeTextList},
			{Name: "score", Type: TypeInt},
		},
		PrimaryKey: "key",
	}
}

func row(key, data, usr string, ttl time.Time, pur []string, score int64) Row {
	return Row{key, data, usr, ttl, pur, score}
}

func openDB(t *testing.T, cfg Config) *DB {
	t.Helper()
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(testSchema()); err != nil {
		t.Fatal(err)
	}
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestSchemaValidate(t *testing.T) {
	good := testSchema()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*Schema){
		"empty name":       func(s *Schema) { s.Name = "" },
		"no columns":       func(s *Schema) { s.Columns = nil },
		"unnamed column":   func(s *Schema) { s.Columns[0].Name = "" },
		"duplicate column": func(s *Schema) { s.Columns[1].Name = "key" },
		"missing pk":       func(s *Schema) { s.PrimaryKey = "nope" },
		"non-text pk":      func(s *Schema) { s.PrimaryKey = "score" },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			s := testSchema()
			mutate(&s)
			if err := s.Validate(); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestInsertGetUpdateDelete(t *testing.T) {
	db := openDB(t, Config{})
	exp := time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)
	r := row("k1", "data1", "neo", exp, []string{"ads"}, 7)
	if err := db.Insert("records", r); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("records", r); err == nil {
		t.Fatal("duplicate insert should fail")
	}
	got, ok, err := db.Get("records", "k1")
	if err != nil || !ok {
		t.Fatalf("Get = %v %v", ok, err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("got %v want %v", got, r)
	}
	// Returned row is a copy.
	got[1] = "mutated"
	again, _, _ := db.Get("records", "k1")
	if again[1] != "data1" {
		t.Fatal("Get returned aliased row")
	}
	r2 := row("k1", "data2", "neo", exp, []string{"ads", "2fa"}, 8)
	if err := db.Update("records", "k1", r2); err != nil {
		t.Fatal(err)
	}
	got, _, _ = db.Get("records", "k1")
	if got[1] != "data2" {
		t.Fatalf("update lost: %v", got[1])
	}
	if err := db.Update("records", "missing", r2); err == nil {
		t.Fatal("update of missing row should fail")
	}
	// Update must not change the PK.
	bad := r2.Clone()
	bad[0] = "other"
	if err := db.Update("records", "k1", bad); err == nil {
		t.Fatal("pk-changing update should fail")
	}
	existed, err := db.Delete("records", "k1")
	if err != nil || !existed {
		t.Fatalf("Delete = %v %v", existed, err)
	}
	if existed, _ := db.Delete("records", "k1"); existed {
		t.Fatal("double delete reported true")
	}
	if n, _ := db.Count("records"); n != 0 {
		t.Fatalf("count = %d", n)
	}
}

func TestRowTypeChecking(t *testing.T) {
	db := openDB(t, Config{})
	bad := []Row{
		{"k", "d", "u", time.Time{}, []string{"p"}},                // wrong arity
		{"k", 42, "u", time.Time{}, []string{"p"}, int64(1)},       // int for text
		{"k", "d", "u", "not-time", []string{"p"}, int64(1)},       // string for time
		{"k", "d", "u", time.Time{}, "not-list", int64(1)},         // string for list
		{"k", "d", "u", time.Time{}, []string{"p"}, 3.14},          // float for int
		{"k\x00x", "d", "u", time.Time{}, []string{"p"}, int64(1)}, // NUL in text
		{"k", "d", "u", time.Time{}, []string{"p\x00q"}, int64(1)}, // NUL in list
		{"", "d", "u", time.Time{}, []string{"p"}, int64(1)},       // empty pk
	}
	for i, r := range bad {
		if err := db.Insert("records", r); err == nil {
			t.Fatalf("row %d should be rejected", i)
		}
	}
	// nil list value is allowed.
	if err := db.Insert("records", Row{"k", "d", "u", time.Time{}, nil, int64(1)}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownTableErrors(t *testing.T) {
	db := openDB(t, Config{})
	if err := db.Insert("nope", Row{}); err == nil {
		t.Fatal("insert into unknown table")
	}
	if _, _, err := db.Get("nope", "k"); err == nil {
		t.Fatal("get from unknown table")
	}
	if _, err := db.Select("nope", All()); err == nil {
		t.Fatal("select from unknown table")
	}
	if err := db.CreateIndex("nope", "usr"); err == nil {
		t.Fatal("index on unknown table")
	}
	if err := db.CreateTable(testSchema()); err == nil {
		t.Fatal("duplicate table create")
	}
}

func TestSelectPredicates(t *testing.T) {
	db := openDB(t, Config{})
	now := time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)
	rows := []Row{
		row("k1", "d1", "neo", now.Add(time.Hour), []string{"ads", "2fa"}, 1),
		row("k2", "d2", "neo", now.Add(-time.Hour), []string{"ads"}, 2),
		row("k3", "d3", "smith", time.Time{}, []string{"2fa"}, 3),
	}
	for _, r := range rows {
		if err := db.Insert("records", r); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		name string
		pred Predicate
		want []string
	}{
		{"all", All(), []string{"k1", "k2", "k3"}},
		{"eq usr", Eq("usr", "neo"), []string{"k1", "k2"}},
		{"eq miss", Eq("usr", "oracle"), nil},
		{"contains", Contains("pur", "2fa"), []string{"k1", "k3"}},
		{"le time", Le("ttl", now), []string{"k2"}},
		{"le excludes zero time", Le("ttl", now.Add(100*365*24*time.Hour)), []string{"k1", "k2"}},
	}
	for _, withIndex := range []bool{false, true} {
		if withIndex {
			for _, col := range []string{"usr", "pur", "ttl"} {
				if err := db.CreateIndex("records", col); err != nil {
					t.Fatal(err)
				}
			}
		}
		for _, c := range cases {
			t.Run(fmt.Sprintf("%s-index=%v", c.name, withIndex), func(t *testing.T) {
				keys, err := db.SelectKeys("records", c.pred)
				if err != nil {
					t.Fatal(err)
				}
				if len(keys) != len(c.want) {
					t.Fatalf("keys = %v, want %v", keys, c.want)
				}
				for i := range c.want {
					if keys[i] != c.want[i] {
						t.Fatalf("keys = %v, want %v", keys, c.want)
					}
				}
			})
		}
	}
}

func TestSelectTypeErrors(t *testing.T) {
	db := openDB(t, Config{})
	db.Insert("records", row("k1", "d", "u", time.Time{}, nil, 0))
	bad := []Predicate{
		Eq("ttl", "x"),
		Contains("usr", "x"),
		Le("usr", time.Now()),
		Eq("missing", "x"),
		{Op: PredOp(99), Col: "usr"},
	}
	for i, p := range bad {
		if _, err := db.Select("records", p); err == nil {
			t.Fatalf("predicate %d should fail", i)
		}
	}
}

func TestExplainChoosesIndex(t *testing.T) {
	db := openDB(t, Config{})
	plan, err := db.Explain("records", Eq("usr", "neo"))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Access != "seqscan" {
		t.Fatalf("plan without index = %+v", plan)
	}
	if err := db.CreateIndex("records", "usr"); err != nil {
		t.Fatal(err)
	}
	plan, _ = db.Explain("records", Eq("usr", "neo"))
	if plan.Access != "index" || plan.Index != "usr" {
		t.Fatalf("plan with index = %+v", plan)
	}
	// All() never uses an index.
	plan, _ = db.Explain("records", All())
	if plan.Access != "seqscan" {
		t.Fatalf("All plan = %+v", plan)
	}
}

func TestIndexMaintenanceOnUpdateAndDelete(t *testing.T) {
	db := openDB(t, Config{})
	for _, col := range []string{"usr", "pur"} {
		if err := db.CreateIndex("records", col); err != nil {
			t.Fatal(err)
		}
	}
	db.Insert("records", row("k1", "d", "neo", time.Time{}, []string{"ads"}, 0))
	// Move the row to another user; index must follow.
	if err := db.Update("records", "k1", row("k1", "d", "trinity", time.Time{}, []string{"2fa"}, 0)); err != nil {
		t.Fatal(err)
	}
	if keys, _ := db.SelectKeys("records", Eq("usr", "neo")); len(keys) != 0 {
		t.Fatalf("stale index entry: %v", keys)
	}
	if keys, _ := db.SelectKeys("records", Eq("usr", "trinity")); len(keys) != 1 {
		t.Fatalf("missing index entry: %v", keys)
	}
	if keys, _ := db.SelectKeys("records", Contains("pur", "ads")); len(keys) != 0 {
		t.Fatalf("stale list index entry: %v", keys)
	}
	db.Delete("records", "k1")
	if keys, _ := db.SelectKeys("records", Eq("usr", "trinity")); len(keys) != 0 {
		t.Fatalf("index entry after delete: %v", keys)
	}
	heap, idx, err := db.Sizes("records")
	if err != nil || heap != 0 || idx != 0 {
		t.Fatalf("sizes after emptying = %d %d %v", heap, idx, err)
	}
}

func TestCreateIndexBackfillsAndDrops(t *testing.T) {
	db := openDB(t, Config{})
	for i := 0; i < 10; i++ {
		db.Insert("records", row(fmt.Sprintf("k%d", i), "d", fmt.Sprintf("u%d", i%2), time.Time{}, nil, 0))
	}
	if err := db.CreateIndex("records", "usr"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("records", "usr"); err == nil {
		t.Fatal("duplicate index create should fail")
	}
	keys, _ := db.SelectKeys("records", Eq("usr", "u0"))
	if len(keys) != 5 {
		t.Fatalf("backfilled index found %d", len(keys))
	}
	_, idxBytes, _ := db.Sizes("records")
	if idxBytes <= 0 {
		t.Fatal("index bytes not accounted")
	}
	if err := db.DropIndex("records", "usr"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropIndex("records", "usr"); err == nil {
		t.Fatal("double drop should fail")
	}
	if err := db.CreateIndex("records", "missing"); err == nil {
		t.Fatal("index on missing column should fail")
	}
	_, idxBytes, _ = db.Sizes("records")
	if idxBytes != 0 {
		t.Fatalf("index bytes after drop = %d", idxBytes)
	}
}

func TestUpdateFuncAndWhere(t *testing.T) {
	db := openDB(t, Config{})
	for i := 0; i < 6; i++ {
		db.Insert("records", row(fmt.Sprintf("k%d", i), "d", "neo", time.Time{}, nil, int64(i)))
	}
	ok, err := db.UpdateFunc("records", "k0", func(r Row) (Row, error) {
		r[5] = int64(100)
		return r, nil
	})
	if err != nil || !ok {
		t.Fatalf("UpdateFunc = %v %v", ok, err)
	}
	got, _, _ := db.Get("records", "k0")
	if got[5].(int64) != 100 {
		t.Fatalf("score = %v", got[5])
	}
	ok, err = db.UpdateFunc("records", "missing", func(r Row) (Row, error) { return r, nil })
	if err != nil || ok {
		t.Fatalf("UpdateFunc missing = %v %v", ok, err)
	}
	n, err := db.UpdateWhere("records", Eq("usr", "neo"), func(r Row) (Row, error) {
		r[2] = "switched"
		return r, nil
	})
	if err != nil || n != 6 {
		t.Fatalf("UpdateWhere = %d %v", n, err)
	}
	if keys, _ := db.SelectKeys("records", Eq("usr", "switched")); len(keys) != 6 {
		t.Fatalf("after UpdateWhere: %v", keys)
	}
	fnErr := fmt.Errorf("boom")
	if _, err := db.UpdateWhere("records", All(), func(Row) (Row, error) { return nil, fnErr }); err == nil {
		t.Fatal("fn error should propagate")
	}
}

func TestDeleteWhere(t *testing.T) {
	db := openDB(t, Config{})
	now := time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		ttl := now.Add(time.Hour)
		if i < 4 {
			ttl = now.Add(-time.Hour)
		}
		db.Insert("records", row(fmt.Sprintf("k%d", i), "d", "neo", ttl, nil, 0))
	}
	n, err := db.DeleteWhere("records", Le("ttl", now))
	if err != nil || n != 4 {
		t.Fatalf("DeleteWhere = %d %v", n, err)
	}
	if cnt, _ := db.Count("records"); cnt != 6 {
		t.Fatalf("count = %d", cnt)
	}
}

func TestWALRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rel.wal")
	cfg := Config{WALPath: path, WALSync: wal.SyncOnCommit}
	db := openDB(t, cfg)
	exp := time.Date(2031, 5, 1, 0, 0, 0, 0, time.UTC)
	db.Insert("records", row("k1", "d1", "neo", exp, []string{"ads"}, 1))
	db.Insert("records", row("k2", "d2", "smith", time.Time{}, nil, 2))
	db.Update("records", "k1", row("k1", "d1b", "neo", exp, []string{"ads", "2fa"}, 1))
	db.Delete("records", "k2")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDB(t, cfg)
	got, ok, err := db2.Get("records", "k1")
	if err != nil || !ok {
		t.Fatalf("recovered Get = %v %v", ok, err)
	}
	if got[1] != "d1b" {
		t.Fatalf("recovered data = %v", got[1])
	}
	if got[3].(time.Time).IsZero() || !got[3].(time.Time).Equal(exp) {
		t.Fatalf("recovered ttl = %v", got[3])
	}
	if l, _ := got[4].([]string); len(l) != 2 {
		t.Fatalf("recovered list = %v", got[4])
	}
	if _, ok, _ := db2.Get("records", "k2"); ok {
		t.Fatal("deleted row recovered")
	}
	if n, _ := db2.Count("records"); n != 1 {
		t.Fatalf("recovered count = %d", n)
	}
}

func TestWALRecoveryEncrypted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rel.wal")
	key := securefs.Key("rel")
	cfg := Config{WALPath: path, EncryptionKey: key, WALSync: wal.SyncOnCommit}
	db := openDB(t, cfg)
	db.Insert("records", row("k1", "secret", "neo", time.Time{}, nil, 0))
	db.Close()

	// Wrong key must fail recovery loudly... actually the frame layer
	// treats auth failure as a torn tail; the DB then sees an empty log.
	// Right key restores the row.
	db2 := openDB(t, cfg)
	if _, ok, _ := db2.Get("records", "k1"); !ok {
		t.Fatal("encrypted recovery lost the row")
	}
}

func TestRecoverTwiceFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rel.wal")
	db, err := Open(Config{WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateTable(testSchema()); err != nil {
		t.Fatal(err)
	}
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := db.Recover(); err == nil {
		t.Fatal("second Recover should fail")
	}
}

func TestStatementLogging(t *testing.T) {
	log, err := audit.Open(audit.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	db := openDB(t, Config{Audit: log, LogStatements: true})
	db.Insert("records", row("k1", "d", "neo", time.Time{}, nil, 0))
	db.Get("records", "k1")
	db.Select("records", Eq("usr", "neo"))
	db.Delete("records", "k1")
	if got := log.Total(); got != 4 {
		t.Fatalf("audit entries = %d, want 4", got)
	}
	tail, err := log.Tail(10)
	if err != nil {
		t.Fatal(err)
	}
	ops := map[string]bool{}
	for _, e := range tail {
		ops[e.Op] = true
		if !strings.HasPrefix(e.Target, "records:") {
			t.Fatalf("target = %q", e.Target)
		}
	}
	for _, want := range []string{"INSERT", "SELECT", "DELETE"} {
		if !ops[want] {
			t.Fatalf("missing op %s in %v", want, ops)
		}
	}
}

func TestTTLDaemonWithSimClock(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	db := openDB(t, Config{Clock: sim})
	now := sim.Now()
	for i := 0; i < 10; i++ {
		ttl := now.Add(time.Hour)
		if i < 3 {
			ttl = now.Add(time.Second)
		}
		db.Insert("records", row(fmt.Sprintf("k%d", i), "d", "u", ttl, nil, 0))
	}
	sim.Advance(time.Minute)
	n, err := db.SweepExpired("records", "ttl")
	if err != nil || n != 3 {
		t.Fatalf("sweep = %d %v", n, err)
	}
	if cnt, _ := db.Count("records"); cnt != 7 {
		t.Fatalf("count = %d", cnt)
	}
}

func TestTTLDaemonBackground(t *testing.T) {
	db := openDB(t, Config{})
	now := time.Now()
	for i := 0; i < 20; i++ {
		db.Insert("records", row(fmt.Sprintf("k%d", i), "d", "u", now.Add(30*time.Millisecond), nil, 0))
	}
	if err := db.StartTTLDaemon("records", "ttl", 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := db.StartTTLDaemon("records", "ttl", time.Second); err == nil {
		t.Fatal("second daemon should fail")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		n, _ := db.Count("records")
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon left %d rows", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
	db.StopTTLDaemon()
	db.StopTTLDaemon() // idempotent
}

func TestTTLDaemonValidatesColumn(t *testing.T) {
	db := openDB(t, Config{})
	if err := db.StartTTLDaemon("records", "usr", time.Second); err == nil {
		t.Fatal("non-time TTL column should fail")
	}
	if err := db.StartTTLDaemon("missing", "ttl", time.Second); err == nil {
		t.Fatal("missing table should fail")
	}
}

func TestClosedDBRejectsOps(t *testing.T) {
	db := openDB(t, Config{})
	db.Close()
	if err := db.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if err := db.Insert("records", row("k", "d", "u", time.Time{}, nil, 0)); err == nil {
		t.Fatal("insert after close")
	}
	if _, err := db.DeleteWhere("records", All()); err == nil {
		t.Fatal("delete after close")
	}
	if err := db.CreateTable(Schema{Name: "x", Columns: []Column{{Name: "k", Type: TypeText}}, PrimaryKey: "k"}); err == nil {
		t.Fatal("create table after close")
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	s := testSchema()
	exp := time.Date(2030, 3, 4, 5, 6, 7, 0, time.UTC)
	rows := []Row{
		row("k1", "data", "neo", exp, []string{"a", "b"}, 42),
		row("k2", "", "", time.Time{}, nil, -1),
		row("k3", strings.Repeat("x", 1000), "u", exp, []string{}, 0),
	}
	for _, r := range rows {
		enc := encodeRow(s, r)
		got, err := decodeRow(s, enc)
		if err != nil {
			t.Fatal(err)
		}
		// nil and empty lists both decode to nil.
		want := r.Clone()
		if l, ok := want[4].([]string); ok && len(l) == 0 {
			want[4] = []string(nil)
		}
		if want[4] == nil {
			want[4] = []string(nil)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("roundtrip:\n got %#v\nwant %#v", got, want)
		}
	}
}

func TestEncodedRowSizeMatchesEncoder(t *testing.T) {
	s := testSchema()
	exp := time.Date(2030, 3, 4, 5, 6, 7, 0, time.UTC)
	rows := []Row{
		row("k1", "data", "neo", exp, []string{"a", "b"}, 42),
		row("k2", "", "", time.Time{}, nil, -1),
		row("k3", strings.Repeat("x", 1000), "u", exp, []string{strings.Repeat("y", 200)}, 0),
	}
	for i, r := range rows {
		if got, want := encodedRowSize(s, r), int64(len(encodeRow(s, r))); got != want {
			t.Fatalf("row %d: encodedRowSize = %d, encoder produced %d", i, got, want)
		}
	}
}

func TestRowCodecErrors(t *testing.T) {
	s := testSchema()
	good := encodeRow(s, row("k", "d", "u", time.Time{}, nil, 0))
	bad := [][]byte{
		{},
		good[:3],
		append(append([]byte{}, good...), 0xff),
	}
	for i, p := range bad {
		if _, err := decodeRow(s, p); err == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
	// Wrong schema arity.
	s2 := Schema{Name: "t", Columns: []Column{{Name: "k", Type: TypeText}}, PrimaryKey: "k"}
	if _, err := decodeRow(s2, good); err == nil {
		t.Fatal("cross-schema decode should fail")
	}
}

func TestFeatures(t *testing.T) {
	db := openDB(t, Config{})
	db.CreateIndex("records", "usr")
	f := db.Features()
	if f["wal"] != "off" || !strings.Contains(f["indexes"], "records.usr") {
		t.Fatalf("features = %v", f)
	}
	if got := db.Tables(); len(got) != 1 || got[0] != "records" {
		t.Fatalf("tables = %v", got)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	db := openDB(t, Config{})
	db.CreateIndex("records", "usr")
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("w%d-k%d", w, i)
				if err := db.Insert("records", row(k, "d", fmt.Sprintf("u%d", w), time.Time{}, nil, 0)); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := db.Get("records", k); err != nil {
					t.Error(err)
					return
				}
				if i%10 == 0 {
					if _, err := db.Select("records", Eq("usr", fmt.Sprintf("u%d", w))); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if n, _ := db.Count("records"); n != workers*200 {
		t.Fatalf("count = %d", n)
	}
}

func TestPgbenchRunsAndIndexesSlowItDown(t *testing.T) {
	run := func(cols []string) PgbenchResult {
		db, err := Open(Config{})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		res, err := RunPgbench(db, PgbenchConfig{Accounts: 2000, Transactions: 4000, IndexColumns: cols, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r0 := run(nil)
	r2 := run([]string{"purpose", "usr"})
	if r0.TPS <= 0 || r2.TPS <= 0 {
		t.Fatalf("tps = %v, %v", r0.TPS, r2.TPS)
	}
	if r2.Indices != 2 || r0.Indices != 0 {
		t.Fatalf("indices = %d, %d", r0.Indices, r2.Indices)
	}
	if r2.TPS >= r0.TPS {
		t.Fatalf("indexes did not slow updates: %0.f -> %0.f tps", r0.TPS, r2.TPS)
	}
}

func TestPgbenchValidation(t *testing.T) {
	db, _ := Open(Config{})
	defer db.Close()
	if _, err := RunPgbench(db, PgbenchConfig{}); err == nil {
		t.Fatal("zero config should fail")
	}
	if _, err := RunPgbench(db, PgbenchConfig{Accounts: 10, Transactions: 10, IndexColumns: []string{"nope"}}); err == nil {
		t.Fatal("bad index column should fail")
	}
}

func TestPredicateStrings(t *testing.T) {
	if All().String() != "true" {
		t.Fatal("All string")
	}
	if !strings.Contains(Eq("usr", "neo").String(), "usr") {
		t.Fatal("Eq string")
	}
	if !strings.Contains(Contains("pur", "ads").String(), "@>") {
		t.Fatal("Contains string")
	}
	if !strings.Contains(Le("ttl", time.Unix(5, 0)).String(), "<=") {
		t.Fatal("Le string")
	}
	if ColType(9).String() == "" || TypeText.String() != "text" {
		t.Fatal("ColType string")
	}
}

func BenchmarkInsertNoIndexes(b *testing.B) {
	db, _ := Open(Config{})
	defer db.Close()
	db.CreateTable(testSchema())
	db.Recover()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.Insert("records", row(fmt.Sprintf("k%d", i), "data-payload", "neo", time.Time{}, []string{"ads"}, 0))
	}
}

func BenchmarkInsertThreeIndexes(b *testing.B) {
	db, _ := Open(Config{})
	defer db.Close()
	db.CreateTable(testSchema())
	db.Recover()
	for _, c := range []string{"usr", "pur", "ttl"} {
		db.CreateIndex("records", c)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.Insert("records", row(fmt.Sprintf("k%d", i), "data-payload", "neo", time.Time{}, []string{"ads"}, 0))
	}
}

func BenchmarkSelectByUserIndexed(b *testing.B) {
	db, _ := Open(Config{})
	defer db.Close()
	db.CreateTable(testSchema())
	db.Recover()
	db.CreateIndex("records", "usr")
	for i := 0; i < 100_000; i++ {
		db.Insert("records", row(fmt.Sprintf("k%d", i), "d", fmt.Sprintf("u%d", i%1000), time.Time{}, nil, 0))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := db.Select("records", Eq("usr", fmt.Sprintf("u%d", i%1000))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectByUserSeqScan(b *testing.B) {
	db, _ := Open(Config{})
	defer db.Close()
	db.CreateTable(testSchema())
	db.Recover()
	for i := 0; i < 10_000; i++ {
		db.Insert("records", row(fmt.Sprintf("k%d", i), "d", fmt.Sprintf("u%d", i%1000), time.Time{}, nil, 0))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := db.Select("records", Eq("usr", fmt.Sprintf("u%d", i%1000))); err != nil {
			b.Fatal(err)
		}
	}
}

func TestWALRecoveryAfterTornTail(t *testing.T) {
	// Crash injection: truncate the WAL mid-record and verify the engine
	// recovers the intact prefix (like PostgreSQL crash recovery).
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.wal")
	cfg := Config{WALPath: path, WALSync: wal.SyncOnCommit}
	db := openDB(t, cfg)
	for i := 0; i < 20; i++ {
		if err := db.Insert("records", row(fmt.Sprintf("k%02d", i), "d", "u", time.Time{}, nil, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o600); err != nil {
		t.Fatal(err)
	}
	db2 := openDB(t, cfg)
	n, err := db2.Count("records")
	if err != nil {
		t.Fatal(err)
	}
	// The torn record (k19) is lost; everything before it survives.
	if n != 19 {
		t.Fatalf("recovered rows = %d, want 19", n)
	}
	if _, ok, _ := db2.Get("records", "k18"); !ok {
		t.Fatal("intact row lost")
	}
	if _, ok, _ := db2.Get("records", "k19"); ok {
		t.Fatal("torn row resurrected")
	}
	// The engine keeps working after recovery.
	if err := db2.Insert("records", row("k19", "again", "u", time.Time{}, nil, 0)); err != nil {
		t.Fatalf("insert after torn recovery: %v", err)
	}
}

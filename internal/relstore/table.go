package relstore

import (
	"fmt"

	"repro/internal/btree"
)

// Table is one heap table with its primary-key and secondary indexes.
// Tables are not safe for concurrent use on their own; the owning DB
// serializes access.
type Table struct {
	schema Schema
	pkCol  int
	// heap maps primary key -> row (the heap file).
	heap map[string]Row
	// pk orders primary keys (Postgres' implicit PK index).
	pk *btree.Tree[struct{}]
	// indexes maps column name -> secondary index of composite keys
	// (value component + NUL + pk).
	indexes map[string]*btree.Tree[struct{}]

	heapBytes  int64
	indexBytes map[string]int64
}

func newTable(s Schema) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &Table{
		schema:     s,
		pkCol:      s.ColIndex(s.PrimaryKey),
		heap:       make(map[string]Row),
		pk:         btree.NewDefault[struct{}](),
		indexes:    make(map[string]*btree.Tree[struct{}]),
		indexBytes: make(map[string]int64),
	}, nil
}

// Schema returns the table's schema.
func (t *Table) Schema() Schema { return t.schema }

// Rows returns the number of live rows.
func (t *Table) Rows() int { return len(t.heap) }

// HeapBytes returns the encoded size of all heap rows.
func (t *Table) HeapBytes() int64 { return t.heapBytes }

// IndexBytes returns the total size of all secondary index entries
// (composite key bytes plus an 8-byte pointer per entry, approximating a
// B-tree leaf entry).
func (t *Table) IndexBytes() int64 {
	var n int64
	for _, b := range t.indexBytes {
		n += b
	}
	return n
}

// IndexedColumns lists columns with secondary indexes, sorted by creation
// order not guaranteed; callers sort if needed.
func (t *Table) IndexedColumns() []string {
	out := make([]string, 0, len(t.indexes))
	for c := range t.indexes {
		out = append(out, c)
	}
	return out
}

// createIndex builds a secondary index over col, backfilling existing rows.
func (t *Table) createIndex(col string) error {
	ci := t.schema.ColIndex(col)
	if ci < 0 {
		return fmt.Errorf("relstore: table %s has no column %q", t.schema.Name, col)
	}
	if _, ok := t.indexes[col]; ok {
		return fmt.Errorf("relstore: index on %s.%s already exists", t.schema.Name, col)
	}
	idx := btree.NewDefault[struct{}]()
	t.indexes[col] = idx
	t.indexBytes[col] = 0
	for pk, row := range t.heap {
		t.indexInsert(col, ci, row, pk)
	}
	return nil
}

// dropIndex removes the secondary index on col.
func (t *Table) dropIndex(col string) error {
	if _, ok := t.indexes[col]; !ok {
		return fmt.Errorf("relstore: no index on %s.%s", t.schema.Name, col)
	}
	delete(t.indexes, col)
	delete(t.indexBytes, col)
	return nil
}

func (t *Table) indexInsert(col string, ci int, row Row, pk string) {
	idx := t.indexes[col]
	for _, comp := range indexComponents(t.schema.Columns[ci].Type, row[ci]) {
		k := compositeKey(comp, pk)
		if idx.Set(k, struct{}{}) {
			t.indexBytes[col] += int64(len(k)) + 8
		}
	}
}

func (t *Table) indexDelete(col string, ci int, row Row, pk string) {
	idx := t.indexes[col]
	for _, comp := range indexComponents(t.schema.Columns[ci].Type, row[ci]) {
		k := compositeKey(comp, pk)
		if idx.Delete(k) {
			t.indexBytes[col] -= int64(len(k)) + 8
		}
	}
}

// insert adds a new row. It fails if the primary key already exists.
func (t *Table) insert(row Row) error {
	if err := t.schema.checkRow(row); err != nil {
		return err
	}
	pk := row[t.pkCol].(string)
	if pk == "" {
		return fmt.Errorf("relstore: table %s: empty primary key", t.schema.Name)
	}
	if _, exists := t.heap[pk]; exists {
		return fmt.Errorf("relstore: table %s: duplicate key %q", t.schema.Name, pk)
	}
	stored := row.Clone()
	t.heap[pk] = stored
	t.pk.Set(pk, struct{}{})
	t.heapBytes += int64(len(encodeRow(t.schema, stored)))
	for col, ci := range t.indexedCols() {
		t.indexInsert(col, ci, stored, pk)
	}
	return nil
}

// update replaces the row at pk. Mirroring PostgreSQL's MVCC (non-HOT
// updates write a new row version), the row's entries are rewritten in
// every secondary index whether or not the indexed columns changed —
// this is the index write-amplification Figure 3b measures.
func (t *Table) update(pk string, row Row) error {
	if err := t.schema.checkRow(row); err != nil {
		return err
	}
	old, exists := t.heap[pk]
	if !exists {
		return fmt.Errorf("relstore: table %s: no row %q", t.schema.Name, pk)
	}
	if row[t.pkCol].(string) != pk {
		return fmt.Errorf("relstore: table %s: update cannot change primary key", t.schema.Name)
	}
	for col, ci := range t.indexedCols() {
		t.indexDelete(col, ci, old, pk)
	}
	t.heapBytes -= int64(len(encodeRow(t.schema, old)))
	stored := row.Clone()
	t.heap[pk] = stored
	t.heapBytes += int64(len(encodeRow(t.schema, stored)))
	for col, ci := range t.indexedCols() {
		t.indexInsert(col, ci, stored, pk)
	}
	return nil
}

// delete removes the row at pk, reporting whether it existed.
func (t *Table) delete(pk string) bool {
	row, exists := t.heap[pk]
	if !exists {
		return false
	}
	for col, ci := range t.indexedCols() {
		t.indexDelete(col, ci, row, pk)
	}
	t.heapBytes -= int64(len(encodeRow(t.schema, row)))
	delete(t.heap, pk)
	t.pk.Delete(pk)
	return true
}

// get returns a copy of the row at pk.
func (t *Table) get(pk string) (Row, bool) {
	row, ok := t.heap[pk]
	if !ok {
		return nil, false
	}
	return row.Clone(), true
}

func (t *Table) indexedCols() map[string]int {
	out := make(map[string]int, len(t.indexes))
	for col := range t.indexes {
		out[col] = t.schema.ColIndex(col)
	}
	return out
}

// scanAll visits every row in primary-key order.
func (t *Table) scanAll(fn func(pk string, row Row) bool) {
	t.pk.Ascend(func(pk string, _ struct{}) bool {
		return fn(pk, t.heap[pk])
	})
}

// indexLookup returns the primary keys whose col contains/equals the
// component, using the secondary index. ok is false when no index exists.
func (t *Table) indexLookup(col, component string) (pks []string, ok bool) {
	idx, exists := t.indexes[col]
	if !exists {
		return nil, false
	}
	prefix := component + "\x00"
	idx.AscendPrefix(prefix, func(k string, _ struct{}) bool {
		pks = append(pks, pkFromComposite(k))
		return true
	})
	return pks, true
}

// indexRangeLE returns primary keys whose scalar col value is <= the
// encoded bound, using the secondary index.
func (t *Table) indexRangeLE(col, encodedBound string) (pks []string, ok bool) {
	idx, exists := t.indexes[col]
	if !exists {
		return nil, false
	}
	// Composite keys are component+NUL+pk; everything with component <=
	// bound sorts below bound+\x01 (components are fixed-width encodings).
	end := encodedBound + "\x01"
	idx.AscendRange("", end, func(k string, _ struct{}) bool {
		pks = append(pks, pkFromComposite(k))
		return true
	})
	return pks, true
}

package relstore

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/btree"
)

// view is one version of a table: the heap (a B-tree from primary key to
// row, which doubles as the PK index) plus the secondary indexes and
// storage accounting. The DB mutates a table's live view under the
// table's write lock; readers run against an O(1) copy-on-write clone
// published as the read snapshot, so on the hot path they take no table
// lock and never block behind writers (PostgreSQL's
// readers-don't-block-writers MVCC property, reduced to one version).
type view struct {
	schema Schema
	pkCol  int
	// heap maps primary key -> row in key order (heap file + implicit PK
	// index in one structure).
	heap *btree.Tree[Row]
	// indexes maps column name -> secondary index of composite keys
	// (value component + NUL + pk).
	indexes map[string]*btree.Tree[struct{}]

	heapBytes  int64
	indexBytes map[string]int64
}

// Table is one heap table: the live view, its writer lock, and the
// published read snapshot.
//
// Snapshots are published lazily: writers only mark the table dirty
// (markDirty), and the first reader after a write pays the O(1)
// copy-on-write clone for everyone (reader). Write-only phases — bulk
// loads, pgbench update storms — therefore publish nothing at all, while
// a read-heavy steady state refreshes at most once per intervening
// write and every subsequent read is lock-free on the shared snapshot.
type Table struct {
	// mu serializes writers to the live view. Readers take it only to
	// refresh a stale snapshot.
	mu   sync.RWMutex
	live view
	// snap is the latest published snapshot; never nil after newTable.
	snap atomic.Pointer[view]
	// stale is set by writers when live has moved past snap.
	stale atomic.Bool
}

func newTable(s Schema) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	t := &Table{live: view{
		schema:     s,
		pkCol:      s.ColIndex(s.PrimaryKey),
		heap:       btree.NewDefault[Row](),
		indexes:    make(map[string]*btree.Tree[struct{}]),
		indexBytes: make(map[string]int64),
	}}
	t.publish()
	return t, nil
}

// publish installs a copy-on-write clone of the live view as the read
// snapshot. Callers hold the table write lock (or have exclusive access).
func (t *Table) publish() {
	t.snap.Store(t.live.clone())
	t.stale.Store(false)
}

// markDirty records that the live view has moved past the published
// snapshot. Callers hold the table write lock.
func (t *Table) markDirty() { t.stale.Store(true) }

// reader returns a snapshot no older than the last completed write: the
// published one when fresh (lock-free), otherwise it takes the table
// lock once to publish a new clone, which un-stales the table for every
// subsequent reader.
func (t *Table) reader() *view {
	if !t.stale.Load() {
		return t.snap.Load()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stale.Load() {
		t.publish()
	}
	return t.snap.Load()
}

// clone copies the view in O(1) per tree: the heap and every index become
// copy-on-write clones, and the small accounting maps are copied.
func (v *view) clone() *view {
	c := &view{
		schema:     v.schema,
		pkCol:      v.pkCol,
		heap:       v.heap.Clone(),
		indexes:    make(map[string]*btree.Tree[struct{}], len(v.indexes)),
		heapBytes:  v.heapBytes,
		indexBytes: make(map[string]int64, len(v.indexBytes)),
	}
	for col, idx := range v.indexes {
		c.indexes[col] = idx.Clone()
	}
	for col, b := range v.indexBytes {
		c.indexBytes[col] = b
	}
	return c
}

// Schema returns the table's schema.
func (v *view) Schema() Schema { return v.schema }

// Rows returns the number of live rows.
func (v *view) Rows() int { return v.heap.Len() }

// HeapBytes returns the encoded size of all heap rows.
func (v *view) HeapBytes() int64 { return v.heapBytes }

// IndexBytes returns the total size of all secondary index entries
// (composite key bytes plus an 8-byte pointer per entry, approximating a
// B-tree leaf entry).
func (v *view) IndexBytes() int64 {
	var n int64
	for _, b := range v.indexBytes {
		n += b
	}
	return n
}

// IndexedColumns lists columns with secondary indexes, in no particular
// order; callers sort if needed.
func (v *view) IndexedColumns() []string {
	out := make([]string, 0, len(v.indexes))
	for c := range v.indexes {
		out = append(out, c)
	}
	return out
}

// createIndex builds a secondary index over col, backfilling existing rows.
func (v *view) createIndex(col string) error {
	ci := v.schema.ColIndex(col)
	if ci < 0 {
		return fmt.Errorf("relstore: table %s has no column %q", v.schema.Name, col)
	}
	if _, ok := v.indexes[col]; ok {
		return fmt.Errorf("relstore: index on %s.%s already exists", v.schema.Name, col)
	}
	idx := btree.NewDefault[struct{}]()
	v.indexes[col] = idx
	v.indexBytes[col] = 0
	v.heap.Ascend(func(pk string, row Row) bool {
		v.indexInsert(col, ci, row, pk)
		return true
	})
	return nil
}

// dropIndex removes the secondary index on col.
func (v *view) dropIndex(col string) error {
	if _, ok := v.indexes[col]; !ok {
		return fmt.Errorf("relstore: no index on %s.%s", v.schema.Name, col)
	}
	delete(v.indexes, col)
	delete(v.indexBytes, col)
	return nil
}

func (v *view) indexInsert(col string, ci int, row Row, pk string) {
	idx := v.indexes[col]
	for _, comp := range indexComponents(v.schema.Columns[ci].Type, row[ci]) {
		k := compositeKey(comp, pk)
		if idx.Set(k, struct{}{}) {
			v.indexBytes[col] += int64(len(k)) + 8
		}
	}
}

func (v *view) indexDelete(col string, ci int, row Row, pk string) {
	idx := v.indexes[col]
	for _, comp := range indexComponents(v.schema.Columns[ci].Type, row[ci]) {
		k := compositeKey(comp, pk)
		if idx.Delete(k) {
			v.indexBytes[col] -= int64(len(k)) + 8
		}
	}
}

// insert adds a new row. It fails if the primary key already exists.
func (v *view) insert(row Row) error {
	if err := v.schema.checkRow(row); err != nil {
		return err
	}
	pk := row[v.pkCol].(string)
	if pk == "" {
		return fmt.Errorf("relstore: table %s: empty primary key", v.schema.Name)
	}
	if v.heap.Has(pk) {
		return fmt.Errorf("relstore: table %s: duplicate key %q", v.schema.Name, pk)
	}
	stored := row.Clone()
	v.heap.Set(pk, stored)
	v.heapBytes += encodedRowSize(v.schema, stored)
	for col, ci := range v.indexedCols() {
		v.indexInsert(col, ci, stored, pk)
	}
	return nil
}

// update replaces the row at pk. Mirroring PostgreSQL's MVCC (non-HOT
// updates write a new row version), the row's entries are rewritten in
// every secondary index whether or not the indexed columns changed —
// this is the index write-amplification Figure 3b measures.
func (v *view) update(pk string, row Row) error {
	if err := v.schema.checkRow(row); err != nil {
		return err
	}
	old, exists := v.heap.Get(pk)
	if !exists {
		return fmt.Errorf("relstore: table %s: no row %q", v.schema.Name, pk)
	}
	if row[v.pkCol].(string) != pk {
		return fmt.Errorf("relstore: table %s: update cannot change primary key", v.schema.Name)
	}
	for col, ci := range v.indexedCols() {
		v.indexDelete(col, ci, old, pk)
	}
	v.heapBytes -= encodedRowSize(v.schema, old)
	stored := row.Clone()
	v.heap.Set(pk, stored)
	v.heapBytes += encodedRowSize(v.schema, stored)
	for col, ci := range v.indexedCols() {
		v.indexInsert(col, ci, stored, pk)
	}
	return nil
}

// delete removes the row at pk, reporting whether it existed.
func (v *view) delete(pk string) bool {
	row, exists := v.heap.Get(pk)
	if !exists {
		return false
	}
	for col, ci := range v.indexedCols() {
		v.indexDelete(col, ci, row, pk)
	}
	v.heapBytes -= encodedRowSize(v.schema, row)
	v.heap.Delete(pk)
	return true
}

// get returns a copy of the row at pk.
func (v *view) get(pk string) (Row, bool) {
	row, ok := v.heap.Get(pk)
	if !ok {
		return nil, false
	}
	return row.Clone(), true
}

// has reports whether a row exists at pk without copying it.
func (v *view) has(pk string) bool { return v.heap.Has(pk) }

func (v *view) indexedCols() map[string]int {
	out := make(map[string]int, len(v.indexes))
	for col := range v.indexes {
		out[col] = v.schema.ColIndex(col)
	}
	return out
}

// scanAll visits every row in primary-key order. Rows are the stored
// values; callers must not mutate them (clone before returning).
func (v *view) scanAll(fn func(pk string, row Row) bool) {
	v.heap.Ascend(fn)
}

// scanFrom visits rows with pk >= start in primary-key order.
func (v *view) scanFrom(start string, fn func(pk string, row Row) bool) {
	v.heap.AscendFrom(start, fn)
}

// indexLookup returns the primary keys whose col contains/equals the
// component, using the secondary index. ok is false when no index exists.
func (v *view) indexLookup(col, component string) (pks []string, ok bool) {
	idx, exists := v.indexes[col]
	if !exists {
		return nil, false
	}
	prefix := component + "\x00"
	idx.AscendPrefix(prefix, func(k string, _ struct{}) bool {
		pks = append(pks, pkFromComposite(k))
		return true
	})
	return pks, true
}

// indexRangeLE returns primary keys whose scalar col value is <= the
// encoded bound, using the secondary index.
func (v *view) indexRangeLE(col, encodedBound string) (pks []string, ok bool) {
	idx, exists := v.indexes[col]
	if !exists {
		return nil, false
	}
	// Composite keys are component+NUL+pk; everything with component <=
	// bound sorts below bound+\x01 (components are fixed-width encodings).
	end := encodedBound + "\x01"
	idx.AscendRange("", end, func(k string, _ struct{}) bool {
		pks = append(pks, pkFromComposite(k))
		return true
	})
	return pks, true
}

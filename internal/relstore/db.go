package relstore

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/audit"
	"repro/internal/clock"
	"repro/internal/wal"
)

// Config configures a DB.
type Config struct {
	// Clock supplies time; defaults to the real clock.
	Clock clock.Clock
	// WALPath enables write-ahead logging and crash recovery.
	WALPath string
	// WALSync is the WAL sync policy.
	WALSync wal.SyncPolicy
	// EncryptionKey encrypts the WAL at rest (the LUKS substitution).
	EncryptionKey []byte
	// Audit receives csvlog-style statement/response entries when
	// LogStatements is set.
	Audit *audit.Log
	// LogStatements enables statement + response logging for every
	// operation, reads included (the paper's PostgreSQL monitoring
	// retrofit: csvlog plus a row-level-security policy recording query
	// responses).
	LogStatements bool
}

// DB is the relational engine: a set of tables behind one lock, with
// write-ahead logging and optional statement logging. All methods are
// safe for concurrent use.
type DB struct {
	mu     sync.Mutex
	tables map[string]*Table
	clk    clock.Clock
	wal    *wal.WAL
	cfg    Config

	ttlStop chan struct{}
	ttlDone chan struct{}
	closed  bool
}

// Open creates a DB. If cfg.WALPath holds a log from a previous run, the
// caller must register the same schemas (CreateTable) and then call
// Recover before issuing operations.
func Open(cfg Config) (*DB, error) {
	db := &DB{tables: make(map[string]*Table), clk: cfg.Clock, cfg: cfg}
	if db.clk == nil {
		db.clk = clock.NewReal()
	}
	return db, nil
}

// CreateTable registers a table.
func (db *DB) CreateTable(s Schema) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errDBClosed
	}
	if _, ok := db.tables[s.Name]; ok {
		return fmt.Errorf("relstore: table %s already exists", s.Name)
	}
	t, err := newTable(s)
	if err != nil {
		return err
	}
	db.tables[s.Name] = t
	return nil
}

// CreateIndex builds a secondary index on table.col.
func (db *DB) CreateIndex(table, col string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.tableLocked(table)
	if err != nil {
		return err
	}
	return t.createIndex(col)
}

// DropIndex removes the secondary index on table.col.
func (db *DB) DropIndex(table, col string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.tableLocked(table)
	if err != nil {
		return err
	}
	return t.dropIndex(col)
}

// Recover replays the WAL (if configured) into the registered tables and
// opens the WAL for appending. It must be called once, after CreateTable
// and before any operation.
func (db *DB) Recover() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.cfg.WALPath == "" {
		return nil
	}
	if db.wal != nil {
		return fmt.Errorf("relstore: Recover called twice")
	}
	last, err := wal.Replay(db.cfg.WALPath, db.cfg.EncryptionKey, func(r wal.Record) error {
		switch r.Type {
		case wal.RecInsert, wal.RecUpdate:
			table, pk, rowBytes, err := wal.DecodeKV(r.Payload)
			if err != nil {
				return err
			}
			t, err := db.tableLocked(table)
			if err != nil {
				return err
			}
			row, err := decodeRow(t.schema, rowBytes)
			if err != nil {
				return err
			}
			if r.Type == wal.RecInsert {
				// Replayed inserts may collide if a crash interleaved; an
				// insert over an existing key applies as update.
				if _, exists := t.heap[pk]; exists {
					return t.update(pk, row)
				}
				return t.insert(row)
			}
			if _, exists := t.heap[pk]; !exists {
				return t.insert(row)
			}
			return t.update(pk, row)
		case wal.RecDelete:
			table, pk, _, err := wal.DecodeKV(r.Payload)
			if err != nil {
				return err
			}
			t, err := db.tableLocked(table)
			if err != nil {
				return err
			}
			t.delete(pk)
			return nil
		case wal.RecCheckpoint:
			return nil
		default:
			return fmt.Errorf("relstore: unknown WAL record type %v", r.Type)
		}
	})
	if err != nil {
		return err
	}
	w, err := wal.Open(wal.Config{
		Path:   db.cfg.WALPath,
		Key:    db.cfg.EncryptionKey,
		Policy: db.cfg.WALSync,
		Clock:  db.clk,
	}, last)
	if err != nil {
		return err
	}
	db.wal = w
	return nil
}

func (db *DB) tableLocked(name string) (*Table, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("relstore: no table %q", name)
	}
	return t, nil
}

func (db *DB) logStatement(op, table, detail string, rows int, ok bool) {
	if !db.cfg.LogStatements || db.cfg.Audit == nil {
		return
	}
	note := fmt.Sprintf("rows=%d", rows)
	_, _ = db.cfg.Audit.Append(audit.Entry{
		Actor:  "relstore",
		Op:     op,
		Target: table + ":" + detail,
		OK:     ok,
		Note:   note,
	})
}

var errDBClosed = fmt.Errorf("relstore: database is closed")

// Insert adds a row.
func (db *DB) Insert(table string, row Row) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errDBClosed
	}
	t, err := db.tableLocked(table)
	if err != nil {
		return err
	}
	if err := t.insert(row); err != nil {
		db.logStatement("INSERT", table, "", 0, false)
		return err
	}
	pk := row[t.pkCol].(string)
	if db.wal != nil {
		if _, err := db.wal.Append(wal.RecInsert, wal.EncodeKV(table, pk, encodeRow(t.schema, row))); err != nil {
			return err
		}
	}
	db.logStatement("INSERT", table, pk, 1, true)
	return nil
}

// Get returns the row with the given primary key.
func (db *DB) Get(table, pk string) (Row, bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.tableLocked(table)
	if err != nil {
		return nil, false, err
	}
	row, ok := t.get(pk)
	n := 0
	if ok {
		n = 1
	}
	db.logStatement("SELECT", table, "pk="+pk, n, true)
	return row, ok, nil
}

// Update replaces the row with primary key pk.
func (db *DB) Update(table, pk string, row Row) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errDBClosed
	}
	t, err := db.tableLocked(table)
	if err != nil {
		return err
	}
	if err := t.update(pk, row); err != nil {
		db.logStatement("UPDATE", table, "pk="+pk, 0, false)
		return err
	}
	if db.wal != nil {
		if _, err := db.wal.Append(wal.RecUpdate, wal.EncodeKV(table, pk, encodeRow(t.schema, row))); err != nil {
			return err
		}
	}
	db.logStatement("UPDATE", table, "pk="+pk, 1, true)
	return nil
}

// UpdateFunc loads the row at pk, applies fn, and stores the result.
// It returns false if the row does not exist.
func (db *DB) UpdateFunc(table, pk string, fn func(Row) (Row, error)) (bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return false, errDBClosed
	}
	t, err := db.tableLocked(table)
	if err != nil {
		return false, err
	}
	old, ok := t.get(pk)
	if !ok {
		db.logStatement("UPDATE", table, "pk="+pk, 0, true)
		return false, nil
	}
	next, err := fn(old)
	if err != nil {
		return false, err
	}
	if err := t.update(pk, next); err != nil {
		return false, err
	}
	if db.wal != nil {
		if _, err := db.wal.Append(wal.RecUpdate, wal.EncodeKV(table, pk, encodeRow(t.schema, next))); err != nil {
			return false, err
		}
	}
	db.logStatement("UPDATE", table, "pk="+pk, 1, true)
	return true, nil
}

// Delete removes the row with primary key pk, reporting whether it existed.
func (db *DB) Delete(table, pk string) (bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return false, errDBClosed
	}
	t, err := db.tableLocked(table)
	if err != nil {
		return false, err
	}
	existed := t.delete(pk)
	if existed && db.wal != nil {
		if _, err := db.wal.Append(wal.RecDelete, wal.EncodeKV(table, pk, nil)); err != nil {
			return existed, err
		}
	}
	n := 0
	if existed {
		n = 1
	}
	db.logStatement("DELETE", table, "pk="+pk, n, true)
	return existed, nil
}

// Select returns the rows matching pred, using a secondary index when one
// covers the predicate column (see Explain).
func (db *DB) Select(table string, pred Predicate) ([]Row, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.tableLocked(table)
	if err != nil {
		return nil, err
	}
	rows, _, err := db.selectLocked(t, pred)
	if err != nil {
		return nil, err
	}
	db.logStatement("SELECT", table, pred.String(), len(rows), true)
	return rows, nil
}

// SelectKeys returns the primary keys matching pred.
func (db *DB) SelectKeys(table string, pred Predicate) ([]string, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.tableLocked(table)
	if err != nil {
		return nil, err
	}
	_, pks, err := db.selectLocked(t, pred)
	if err != nil {
		return nil, err
	}
	db.logStatement("SELECT", table, pred.String(), len(pks), true)
	return pks, nil
}

// DeleteWhere removes all rows matching pred, returning how many went.
func (db *DB) DeleteWhere(table string, pred Predicate) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, errDBClosed
	}
	t, err := db.tableLocked(table)
	if err != nil {
		return 0, err
	}
	_, pks, err := db.selectLocked(t, pred)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, pk := range pks {
		if t.delete(pk) {
			n++
			if db.wal != nil {
				if _, err := db.wal.Append(wal.RecDelete, wal.EncodeKV(table, pk, nil)); err != nil {
					return n, err
				}
			}
		}
	}
	db.logStatement("DELETE", table, pred.String(), n, true)
	return n, nil
}

// UpdateWhere applies fn to every row matching pred, returning how many
// rows were updated.
func (db *DB) UpdateWhere(table string, pred Predicate, fn func(Row) (Row, error)) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, errDBClosed
	}
	t, err := db.tableLocked(table)
	if err != nil {
		return 0, err
	}
	_, pks, err := db.selectLocked(t, pred)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, pk := range pks {
		old, ok := t.get(pk)
		if !ok {
			continue
		}
		next, err := fn(old)
		if err != nil {
			return n, err
		}
		if err := t.update(pk, next); err != nil {
			return n, err
		}
		if db.wal != nil {
			if _, err := db.wal.Append(wal.RecUpdate, wal.EncodeKV(table, pk, encodeRow(t.schema, next))); err != nil {
				return n, err
			}
		}
		n++
	}
	db.logStatement("UPDATE", table, pred.String(), n, true)
	return n, nil
}

// ScanPK returns up to limit rows in primary-key order starting at the
// first key >= start (a B-tree range scan on the PK index; YCSB workload
// E's access shape).
func (db *DB) ScanPK(table, start string, limit int) ([]Row, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.tableLocked(table)
	if err != nil {
		return nil, err
	}
	var rows []Row
	t.pk.AscendFrom(start, func(pk string, _ struct{}) bool {
		if row, ok := t.get(pk); ok {
			rows = append(rows, row)
		}
		return len(rows) < limit
	})
	db.logStatement("SELECT", table, fmt.Sprintf("pk>=%s limit %d", start, limit), len(rows), true)
	return rows, nil
}

// Count returns the number of rows in table.
func (db *DB) Count(table string) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.tableLocked(table)
	if err != nil {
		return 0, err
	}
	return t.Rows(), nil
}

// Sizes reports storage accounting for table: heap bytes and secondary
// index bytes — the inputs to the Table 3 space-overhead metric.
func (db *DB) Sizes(table string) (heap, index int64, err error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.tableLocked(table)
	if err != nil {
		return 0, 0, err
	}
	return t.HeapBytes(), t.IndexBytes(), nil
}

// Tables lists table names, sorted.
func (db *DB) Tables() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Features reports engine facts, GET-SYSTEM-FEATURES style.
func (db *DB) Features() map[string]string {
	db.mu.Lock()
	defer db.mu.Unlock()
	f := map[string]string{
		"engine":         "relstore (postgres-model)",
		"wal":            "off",
		"log_statements": fmt.Sprintf("%v", db.cfg.LogStatements),
	}
	if db.wal != nil {
		f["wal"] = "on"
		f["wal_encrypted"] = fmt.Sprintf("%v", db.cfg.EncryptionKey != nil)
	}
	var idx []string
	for name, t := range db.tables {
		for _, c := range t.IndexedColumns() {
			idx = append(idx, name+"."+c)
		}
	}
	sort.Strings(idx)
	f["indexes"] = fmt.Sprintf("%v", idx)
	return f
}

// StartTTLDaemon launches the timely-deletion daemon: every period it
// deletes rows of table whose col (a time column) is <= now. The paper's
// retrofit runs at a 1-second period.
func (db *DB) StartTTLDaemon(table, col string, period time.Duration) error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return errDBClosed
	}
	if db.ttlStop != nil {
		db.mu.Unlock()
		return fmt.Errorf("relstore: TTL daemon already running")
	}
	t, err := db.tableLocked(table)
	if err != nil {
		db.mu.Unlock()
		return err
	}
	ci := t.schema.ColIndex(col)
	if ci < 0 || t.schema.Columns[ci].Type != TypeTime {
		db.mu.Unlock()
		return fmt.Errorf("relstore: TTL column %s.%s must be a time column", table, col)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	db.ttlStop = stop
	db.ttlDone = done
	clk := db.clk
	db.mu.Unlock()

	go func() {
		defer close(done)
		for {
			timer := clk.After(period)
			select {
			case <-stop:
				return
			case <-timer:
				_, _ = db.DeleteWhere(table, Le(col, clk.Now()))
			}
		}
	}()
	return nil
}

// StopTTLDaemon stops the daemon, waiting for it to exit.
func (db *DB) StopTTLDaemon() {
	db.mu.Lock()
	stop := db.ttlStop
	done := db.ttlDone
	db.ttlStop = nil
	db.ttlDone = nil
	db.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// SweepExpired synchronously deletes rows of table whose time column col
// is <= now; the TTL daemon's body, callable directly from simulations.
func (db *DB) SweepExpired(table, col string) (int, error) {
	return db.DeleteWhere(table, Le(col, db.clk.Now()))
}

// Sync flushes the WAL.
func (db *DB) Sync() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal == nil {
		return nil
	}
	return db.wal.Sync()
}

// WALSize returns the WAL's on-disk size (0 without a WAL).
func (db *DB) WALSize() (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal == nil {
		return 0, nil
	}
	return db.wal.Size()
}

// Close stops the TTL daemon and closes the WAL. Close is idempotent.
func (db *DB) Close() error {
	db.StopTTLDaemon()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	if db.wal != nil {
		return db.wal.Close()
	}
	return nil
}

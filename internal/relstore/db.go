package relstore

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/wal"
)

// Config configures a DB.
type Config struct {
	// Clock supplies time; defaults to the real clock.
	Clock clock.Clock
	// WALPath enables write-ahead logging and crash recovery.
	WALPath string
	// WALSync is the WAL sync policy.
	WALSync wal.SyncPolicy
	// EncryptionKey encrypts the WAL at rest (the LUKS substitution).
	EncryptionKey []byte
	// Audit receives csvlog-style statement/response entries when
	// LogStatements is set.
	Audit *audit.Log
	// LogStatements enables statement + response logging for every
	// operation, reads included (the paper's PostgreSQL monitoring
	// retrofit: csvlog plus a row-level-security policy recording query
	// responses).
	LogStatements bool
	// GlobalLock serializes every operation behind one exclusive mutex
	// and disables snapshot reads — the engine's original contention
	// profile, kept as an ablation baseline so the locking benchmarks can
	// measure what table-level locking and copy-on-write snapshots buy.
	GlobalLock bool
	// CheckpointBytes arms automatic WAL checkpointing: once the live WAL
	// grows past this size, a background checkpoint snapshots every table
	// to WALPath+".ckpt" and truncates the pre-checkpoint log prefix, so
	// recovery replay time is bounded by live data instead of history.
	// 0 disables automatic checkpoints (Checkpoint stays callable).
	CheckpointBytes int64
}

// DB is the relational engine: a set of tables with write-ahead logging
// and optional statement logging. All methods are safe for concurrent
// use.
//
// Concurrency model (see DESIGN.md): the DB-level mu is a meta lock —
// every operation holds it shared for its whole duration, while
// CreateTable, Recover and Close take it exclusively. Writers then take
// their table's write lock, mutate the live view, append to the WAL, and
// publish a copy-on-write snapshot before releasing; the group-commit
// durability wait happens after the table lock is released, so
// concurrent committers batch into one fsync. Readers load the published
// snapshot and never take a table lock at all: reads on one table run in
// parallel with each other, with writes to that table, and with
// everything on other tables. Config.GlobalLock restores the original
// one-big-mutex behavior for baseline measurements.
type DB struct {
	mu     sync.RWMutex // meta lock: tables map, wal, closed, ttl fields
	gmu    sync.Mutex   // the single big lock, used only under Config.GlobalLock
	tables map[string]*Table
	clk    clock.Clock
	wal    *wal.WAL
	cfg    Config

	ttlStop chan struct{}
	ttlDone chan struct{}
	closed  bool

	// Checkpoint state. ckptMu serializes checkpoints; ckptRunning keeps
	// auto-triggered ones to a single in-flight goroutine; writesSince
	// paces the WAL-size poll to one stat per 64 commits.
	ckptMu      sync.Mutex
	ckptRunning atomic.Bool
	writesSince atomic.Int64
	checkpoints atomic.Int64

	// Recovery stats: WAL records applied by the last Recover and its
	// wall-clock duration — the replay cost checkpointing bounds.
	recoveredRecords int64
	recoveryMicros   int64

	obsColl *obs.CollectorHandle
}

// Open creates a DB. If cfg.WALPath holds a log from a previous run, the
// caller must register the same schemas (CreateTable) and then call
// Recover before issuing operations.
func Open(cfg Config) (*DB, error) {
	db := &DB{tables: make(map[string]*Table), clk: cfg.Clock, cfg: cfg}
	if db.clk == nil {
		db.clk = clock.NewReal()
	}
	// Pull-time export of the checkpoint/recovery counters; several open
	// DBs (shards) emitting the same names roll up by summation.
	db.obsColl = obs.Default().RegisterCollector(func(emit func(string, int64, bool)) {
		records, micros, checkpoints := db.RecoveryStats()
		emit("relstore_wal_checkpoints_total", checkpoints, false)
		emit("relstore_recovered_records", records, true)
		emit("relstore_recovery_us", micros, true)
	})
	return db, nil
}

// CreateTable registers a table.
func (db *DB) CreateTable(s Schema) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errDBClosed
	}
	if _, ok := db.tables[s.Name]; ok {
		return fmt.Errorf("relstore: table %s already exists", s.Name)
	}
	t, err := newTable(s)
	if err != nil {
		return err
	}
	db.tables[s.Name] = t
	return nil
}

// lockTable acquires the write lock covering t: the table's own lock, or
// the global mutex when Config.GlobalLock is set. It returns the release
// function.
func (db *DB) lockTable(t *Table) func() {
	if db.cfg.GlobalLock {
		db.gmu.Lock()
		return db.gmu.Unlock
	}
	t.mu.Lock()
	return t.mu.Unlock
}

// readView returns a read-only view of t: the published snapshot
// (lock-free, never blocks behind writers), or the live view under the
// global mutex when Config.GlobalLock is set.
func (db *DB) readView(t *Table) (*view, func()) {
	if db.cfg.GlobalLock {
		db.gmu.Lock()
		return &t.live, db.gmu.Unlock
	}
	return t.reader(), func() {}
}

// publish marks t's snapshot stale so the next reader refreshes it; the
// clone itself is deferred to that reader (see Table.reader). Callers
// hold t's write lock. Under GlobalLock snapshots are not used, so this
// is skipped to keep the baseline's write path faithful to the original.
func (db *DB) publish(t *Table) {
	if db.cfg.GlobalLock {
		return
	}
	t.markDirty()
}

// waitDurable blocks until the WAL record at lsn is on stable storage
// (group commit). Called after the table lock is released so that
// concurrent committers share one fsync.
func (db *DB) waitDurable(lsn uint64) error {
	if db.wal == nil || lsn == 0 {
		return nil
	}
	return db.wal.WaitDurable(lsn)
}

// commit finishes a write: release the write lock, then wait for WAL
// durability so concurrent committers batch into one fsync. Under
// GlobalLock the wait happens while still holding the lock — the seed's
// original profile, where a synchronous commit stalled every other
// operation behind the fsync — keeping the ablation baseline faithful.
func (db *DB) commit(unlock func(), lsn uint64) error {
	if db.cfg.GlobalLock {
		err := db.waitDurable(lsn)
		unlock()
		db.maybeCheckpoint()
		return err
	}
	unlock()
	err := db.waitDurable(lsn)
	db.maybeCheckpoint()
	return err
}

// CreateIndex builds a secondary index on table.col.
func (db *DB) CreateIndex(table, col string) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.tableLocked(table)
	if err != nil {
		return err
	}
	unlock := db.lockTable(t)
	defer unlock()
	if err := t.live.createIndex(col); err != nil {
		return err
	}
	db.publish(t)
	return nil
}

// DropIndex removes the secondary index on table.col.
func (db *DB) DropIndex(table, col string) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.tableLocked(table)
	if err != nil {
		return err
	}
	unlock := db.lockTable(t)
	defer unlock()
	if err := t.live.dropIndex(col); err != nil {
		return err
	}
	db.publish(t)
	return nil
}

// applyRecord applies one replayed WAL or checkpoint record to the
// registered tables. Application is idempotent: an insert over an
// existing key applies as update, an update of a missing key as insert,
// and a delete of a missing key as a no-op — so a record may safely be
// replayed over state that already reflects it (checkpoint snapshots
// overlap the log suffix by design).
func (db *DB) applyRecord(r wal.Record) error {
	switch r.Type {
	case wal.RecInsert, wal.RecUpdate:
		table, pk, rowBytes, err := wal.DecodeKV(r.Payload)
		if err != nil {
			return err
		}
		t, err := db.tableLocked(table)
		if err != nil {
			return err
		}
		row, err := decodeRow(t.live.schema, rowBytes)
		if err != nil {
			return err
		}
		if t.live.has(pk) {
			return t.live.update(pk, row)
		}
		return t.live.insert(row)
	case wal.RecDelete:
		table, pk, _, err := wal.DecodeKV(r.Payload)
		if err != nil {
			return err
		}
		t, err := db.tableLocked(table)
		if err != nil {
			return err
		}
		t.live.delete(pk)
		return nil
	case wal.RecCheckpoint:
		return nil
	default:
		return fmt.Errorf("relstore: unknown WAL record type %v", r.Type)
	}
}

// checkpointPath returns the sealed checkpoint file's path.
func (db *DB) checkpointPath() string { return db.cfg.WALPath + ".ckpt" }

// Recover replays the checkpoint (if one exists) and then the WAL into
// the registered tables, and opens the WAL for appending. It must be
// called once, after CreateTable and before any operation.
//
// Replay order: the sealed checkpoint file supplies the base state and
// its cut LSN; a rotated segment left by a checkpoint that crashed
// between Rotate and Seal replays next; finally the live log. Records at
// or below the cut are skipped — the checkpoint supersedes them — which
// is what bounds recovery time by live data rather than log history.
func (db *DB) Recover() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.cfg.WALPath == "" {
		return nil
	}
	if db.wal != nil {
		return fmt.Errorf("relstore: Recover called twice")
	}
	start := time.Now()
	var applied int64
	oldPath := db.cfg.WALPath + wal.RotatedSuffix
	// A leftover tmp means a checkpoint writer crashed mid-snapshot; it
	// was never renamed into place, so it holds no unique data.
	_ = os.Remove(db.checkpointPath() + ".tmp")

	var cut uint64
	if _, err := wal.Replay(db.checkpointPath(), db.cfg.EncryptionKey, func(r wal.Record) error {
		if r.Type == wal.RecCheckpoint {
			if c, ok := wal.CheckpointCut(r.Payload); ok {
				cut = c
			}
			return nil
		}
		applied++
		return db.applyRecord(r)
	}); err != nil {
		return err
	}
	applyPastCut := func(r wal.Record) error {
		if r.LSN <= cut {
			return nil
		}
		applied++
		return db.applyRecord(r)
	}
	// A rotated segment that outlived its checkpoint means the previous
	// checkpoint crashed between Rotate and Seal: its suffix past the cut
	// is covered by neither file, so replay it, then fold everything into
	// a fresh checkpoint below before deleting it.
	hadOld := false
	var oldLast uint64
	if _, err := os.Stat(oldPath); err == nil {
		hadOld = true
		var rerr error
		if oldLast, rerr = wal.Replay(oldPath, db.cfg.EncryptionKey, applyPastCut); rerr != nil {
			return rerr
		}
	}
	liveLast, err := wal.Replay(db.cfg.WALPath, db.cfg.EncryptionKey, applyPastCut)
	if err != nil {
		return err
	}
	last := cut
	if oldLast > last {
		last = oldLast
	}
	if liveLast > last {
		last = liveLast
	}
	w, err := wal.Open(wal.Config{
		Path:   db.cfg.WALPath,
		Key:    db.cfg.EncryptionKey,
		Policy: db.cfg.WALSync,
		Clock:  db.clk,
	}, last)
	if err != nil {
		return err
	}
	db.wal = w
	// Publish the recovered state as every table's first snapshot.
	for _, t := range db.tables {
		t.publish()
	}
	if hadOld {
		// Fold the orphaned segment into a fresh checkpoint so the next
		// Rotate has a clear target name, then drop it.
		if err := db.writeCheckpoint(last); err != nil {
			return err
		}
		if err := os.Remove(oldPath); err != nil {
			return err
		}
	}
	db.recoveredRecords = applied
	db.recoveryMicros = time.Since(start).Microseconds()
	return nil
}

// Checkpoint snapshots every table into WALPath+".ckpt" and truncates
// the pre-checkpoint WAL prefix, bounding recovery replay to roughly the
// live rows plus the log written since. The snapshot is taken per table
// under a brief write lock (an O(1) copy-on-write clone — LSNs are
// assigned under the same lock, so the clone covers everything at or
// below the cut) and streamed to disk off-lock; concurrent operations
// keep running throughout. No-op without a WAL. Safe to call manually
// even when automatic checkpointing is off.
func (db *DB) Checkpoint() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return errDBClosed
	}
	if db.wal == nil {
		return nil
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	ckptStart := time.Now()
	sizeBefore, _ := db.wal.Size()
	defer func() {
		obsCheckpointNs.ObserveDuration(time.Since(ckptStart))
		if sizeAfter, err := db.wal.Size(); err == nil && sizeBefore > sizeAfter {
			obsCheckpointReclaimed.Set(sizeBefore - sizeAfter)
		}
	}()
	oldPath := db.cfg.WALPath + wal.RotatedSuffix
	var cut uint64
	if _, err := os.Stat(oldPath); err == nil {
		// An earlier checkpoint crashed or failed between Rotate and
		// Seal: rotating again would clobber the only copy of that
		// segment's records. Cut at the current head instead — the
		// snapshot below covers both the orphaned segment and the live
		// log's prefix.
		cut = db.wal.NextLSN() - 1
	} else {
		c, err := db.wal.Rotate()
		if err != nil {
			return err
		}
		cut = c
	}
	if err := db.writeCheckpoint(cut); err != nil {
		return err
	}
	if err := os.Remove(oldPath); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// writeCheckpoint streams a snapshot of every table into the checkpoint
// file (via a tmp name, renamed into place only after Seal) recording
// cut as the log position the snapshot supersedes. Callers hold db.mu
// (any mode) and, outside Recover, ckptMu.
func (db *DB) writeCheckpoint(cut uint64) error {
	tmp := db.checkpointPath() + ".tmp"
	cw, err := wal.CreateCheckpoint(tmp, db.cfg.EncryptionKey)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		t := db.tables[name]
		// Clone under the table write lock: any writer whose record has
		// an LSN <= cut finished its live-view mutation under this lock
		// before we got it, so the clone reflects the whole cut prefix.
		unlock := db.lockTable(t)
		t.publish()
		v := t.snap.Load()
		unlock()
		var werr error
		v.scanAll(func(pk string, row Row) bool {
			werr = cw.Append(wal.RecInsert, wal.EncodeKV(name, pk, encodeRow(v.schema, row)))
			return werr == nil
		})
		if werr != nil {
			cw.Abort()
			_ = os.Remove(tmp)
			return werr
		}
	}
	if err := cw.Seal(cut); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, db.checkpointPath()); err != nil {
		return err
	}
	db.checkpoints.Add(1)
	return nil
}

// maybeCheckpoint arms the automatic checkpoint: every 64th commit polls
// the live WAL's size, and crossing Config.CheckpointBytes launches one
// background Checkpoint (never more than one in flight).
func (db *DB) maybeCheckpoint() {
	if db.cfg.CheckpointBytes <= 0 || db.wal == nil {
		return
	}
	if db.writesSince.Add(1)%64 != 0 {
		return
	}
	size, err := db.wal.Size()
	if err != nil || size < db.cfg.CheckpointBytes {
		return
	}
	if !db.ckptRunning.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer db.ckptRunning.Store(false)
		_ = db.Checkpoint()
	}()
}

// RecoveryStats reports the last Recover's applied record count and
// wall-clock duration, plus checkpoints completed since open.
func (db *DB) RecoveryStats() (records, micros, checkpoints int64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.recoveredRecords, db.recoveryMicros, db.checkpoints.Load()
}

// tableLocked resolves a table name; callers hold db.mu (any mode).
func (db *DB) tableLocked(name string) (*Table, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("relstore: no table %q", name)
	}
	return t, nil
}

func (db *DB) logStatement(op, table, detail string, rows int, ok bool) {
	if !db.cfg.LogStatements || db.cfg.Audit == nil {
		return
	}
	note := fmt.Sprintf("rows=%d", rows)
	// Submit stages the entry into the audit pipeline; under the batched
	// and async modes nothing is encoded or written while the table lock
	// is held.
	db.cfg.Audit.Submit(audit.Entry{
		Actor:  "relstore",
		Op:     op,
		Target: table + ":" + detail,
		OK:     ok,
		Note:   note,
	})
}

var errDBClosed = fmt.Errorf("relstore: database is closed")

// Insert adds a row.
func (db *DB) Insert(table string, row Row) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return errDBClosed
	}
	t, err := db.tableLocked(table)
	if err != nil {
		return err
	}
	unlock := db.lockTable(t)
	if err := t.live.insert(row); err != nil {
		unlock()
		db.logStatement("INSERT", table, "", 0, false)
		return err
	}
	pk := row[t.live.pkCol].(string)
	var lsn uint64
	if db.wal != nil {
		if lsn, err = db.wal.Append(wal.RecInsert, wal.EncodeKV(table, pk, encodeRow(t.live.schema, row))); err != nil {
			db.publish(t)
			unlock()
			return err
		}
	}
	db.publish(t)
	err = db.commit(unlock, lsn)
	db.logStatement("INSERT", table, pk, 1, true)
	return err
}

// InsertBatch adds rows to table as one engine call: one writer-lock
// acquisition, one WAL append per row, one snapshot publish and one
// group-commit wait for the whole batch — the bulk-load fast path used
// by core.Load. Rows apply in order; on the first bad row the rows
// already applied stay applied and the error is returned.
func (db *DB) InsertBatch(table string, rows []Row) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return errDBClosed
	}
	t, err := db.tableLocked(table)
	if err != nil {
		return err
	}
	unlock := db.lockTable(t)
	var lsn uint64
	n := 0
	for _, row := range rows {
		if err = t.live.insert(row); err != nil {
			break
		}
		n++
		if db.wal != nil {
			pk := row[t.live.pkCol].(string)
			appended, aerr := db.wal.Append(wal.RecInsert, wal.EncodeKV(table, pk, encodeRow(t.live.schema, row)))
			if aerr != nil {
				// Keep the last successful LSN: the rows already applied
				// are visible, so the commit below must still wait for
				// their records' durability.
				err = aerr
				break
			}
			lsn = appended
		}
	}
	if n > 0 {
		db.publish(t)
	}
	if werr := db.commit(unlock, lsn); err == nil {
		err = werr
	}
	db.logStatement("INSERT", table, fmt.Sprintf("batch=%d", len(rows)), n, err == nil)
	return err
}

// Get returns the row with the given primary key.
func (db *DB) Get(table, pk string) (Row, bool, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.tableLocked(table)
	if err != nil {
		return nil, false, err
	}
	v, release := db.readView(t)
	row, ok := v.get(pk)
	release()
	n := 0
	if ok {
		n = 1
	}
	db.logStatement("SELECT", table, "pk="+pk, n, true)
	return row, ok, nil
}

// Update replaces the row with primary key pk.
func (db *DB) Update(table, pk string, row Row) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return errDBClosed
	}
	t, err := db.tableLocked(table)
	if err != nil {
		return err
	}
	unlock := db.lockTable(t)
	if err := t.live.update(pk, row); err != nil {
		unlock()
		db.logStatement("UPDATE", table, "pk="+pk, 0, false)
		return err
	}
	var lsn uint64
	if db.wal != nil {
		if lsn, err = db.wal.Append(wal.RecUpdate, wal.EncodeKV(table, pk, encodeRow(t.live.schema, row))); err != nil {
			db.publish(t)
			unlock()
			return err
		}
	}
	db.publish(t)
	err = db.commit(unlock, lsn)
	db.logStatement("UPDATE", table, "pk="+pk, 1, true)
	return err
}

// UpdateFunc loads the row at pk, applies fn, and stores the result.
// It returns false if the row does not exist.
func (db *DB) UpdateFunc(table, pk string, fn func(Row) (Row, error)) (bool, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return false, errDBClosed
	}
	t, err := db.tableLocked(table)
	if err != nil {
		return false, err
	}
	unlock := db.lockTable(t)
	old, ok := t.live.get(pk)
	if !ok {
		unlock()
		db.logStatement("UPDATE", table, "pk="+pk, 0, true)
		return false, nil
	}
	next, err := fn(old)
	if err != nil {
		unlock()
		return false, err
	}
	if err := t.live.update(pk, next); err != nil {
		unlock()
		return false, err
	}
	var lsn uint64
	if db.wal != nil {
		if lsn, err = db.wal.Append(wal.RecUpdate, wal.EncodeKV(table, pk, encodeRow(t.live.schema, next))); err != nil {
			db.publish(t)
			unlock()
			return false, err
		}
	}
	db.publish(t)
	err = db.commit(unlock, lsn)
	db.logStatement("UPDATE", table, "pk="+pk, 1, true)
	return true, err
}

// Delete removes the row with primary key pk, reporting whether it existed.
func (db *DB) Delete(table, pk string) (bool, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return false, errDBClosed
	}
	t, err := db.tableLocked(table)
	if err != nil {
		return false, err
	}
	unlock := db.lockTable(t)
	existed := t.live.delete(pk)
	var lsn uint64
	if existed && db.wal != nil {
		if lsn, err = db.wal.Append(wal.RecDelete, wal.EncodeKV(table, pk, nil)); err != nil {
			db.publish(t)
			unlock()
			return existed, err
		}
	}
	if existed {
		db.publish(t)
	}
	err = db.commit(unlock, lsn)
	n := 0
	if existed {
		n = 1
	}
	db.logStatement("DELETE", table, "pk="+pk, n, true)
	return existed, err
}

// Select returns the rows matching pred, using a secondary index when one
// covers the predicate column (see Explain).
func (db *DB) Select(table string, pred Predicate) ([]Row, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.tableLocked(table)
	if err != nil {
		return nil, err
	}
	v, release := db.readView(t)
	rows, _, err := v.runSelect(pred)
	release()
	if err != nil {
		return nil, err
	}
	db.logStatement("SELECT", table, pred.String(), len(rows), true)
	return rows, nil
}

// SelectKeys returns the primary keys matching pred: a key-only
// projection that materializes no rows on either access path.
func (db *DB) SelectKeys(table string, pred Predicate) ([]string, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.tableLocked(table)
	if err != nil {
		return nil, err
	}
	v, release := db.readView(t)
	pks, err := v.selectKeys(pred)
	release()
	if err != nil {
		return nil, err
	}
	db.logStatement("SELECT", table, pred.String(), len(pks), true)
	return pks, nil
}

// DeleteWhere removes all rows matching pred, returning how many went.
// Candidates resolve through the key-only path: with an index on the
// predicate column (the TTL daemon's case under MetadataIndexing) the
// sweep touches exactly the matching rows.
func (db *DB) DeleteWhere(table string, pred Predicate) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return 0, errDBClosed
	}
	t, err := db.tableLocked(table)
	if err != nil {
		return 0, err
	}
	unlock := db.lockTable(t)
	pks, err := t.live.selectKeys(pred)
	if err != nil {
		unlock()
		return 0, err
	}
	var lsn uint64
	n := 0
	for _, pk := range pks {
		if t.live.delete(pk) {
			n++
			if db.wal != nil {
				if lsn, err = db.wal.Append(wal.RecDelete, wal.EncodeKV(table, pk, nil)); err != nil {
					db.publish(t)
					unlock()
					return n, err
				}
			}
		}
	}
	if n > 0 {
		db.publish(t)
	}
	err = db.commit(unlock, lsn)
	db.logStatement("DELETE", table, pred.String(), n, true)
	return n, err
}

// UpdateWhere applies fn to every row matching pred, returning how many
// rows were updated.
func (db *DB) UpdateWhere(table string, pred Predicate, fn func(Row) (Row, error)) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return 0, errDBClosed
	}
	t, err := db.tableLocked(table)
	if err != nil {
		return 0, err
	}
	unlock := db.lockTable(t)
	pks, err := t.live.selectKeys(pred)
	if err != nil {
		unlock()
		return 0, err
	}
	var lsn uint64
	n := 0
	for _, pk := range pks {
		old, ok := t.live.get(pk)
		if !ok {
			continue
		}
		next, err := fn(old)
		if err != nil {
			db.publish(t)
			unlock()
			return n, err
		}
		if err := t.live.update(pk, next); err != nil {
			db.publish(t)
			unlock()
			return n, err
		}
		if db.wal != nil {
			if lsn, err = db.wal.Append(wal.RecUpdate, wal.EncodeKV(table, pk, encodeRow(t.live.schema, next))); err != nil {
				db.publish(t)
				unlock()
				return n, err
			}
		}
		n++
	}
	if n > 0 {
		db.publish(t)
	}
	err = db.commit(unlock, lsn)
	db.logStatement("UPDATE", table, pred.String(), n, true)
	return n, err
}

// ScanPK returns up to limit rows in primary-key order starting at the
// first key >= start (a B-tree range scan on the PK index; YCSB workload
// E's access shape).
func (db *DB) ScanPK(table, start string, limit int) ([]Row, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.tableLocked(table)
	if err != nil {
		return nil, err
	}
	v, release := db.readView(t)
	var rows []Row
	v.scanFrom(start, func(pk string, row Row) bool {
		rows = append(rows, row.Clone())
		return len(rows) < limit
	})
	release()
	db.logStatement("SELECT", table, fmt.Sprintf("pk>=%s limit %d", start, limit), len(rows), true)
	return rows, nil
}

// Count returns the number of rows in table.
func (db *DB) Count(table string) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.tableLocked(table)
	if err != nil {
		return 0, err
	}
	v, release := db.readView(t)
	defer release()
	return v.Rows(), nil
}

// Sizes reports storage accounting for table: heap bytes and secondary
// index bytes — the inputs to the Table 3 space-overhead metric.
func (db *DB) Sizes(table string) (heap, index int64, err error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.tableLocked(table)
	if err != nil {
		return 0, 0, err
	}
	v, release := db.readView(t)
	defer release()
	return v.HeapBytes(), v.IndexBytes(), nil
}

// Tables lists table names, sorted.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Features reports engine facts, GET-SYSTEM-FEATURES style.
func (db *DB) Features() map[string]string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	f := map[string]string{
		"engine":         "relstore (postgres-model)",
		"wal":            "off",
		"log_statements": fmt.Sprintf("%v", db.cfg.LogStatements),
		"locking":        "table+snapshot",
	}
	if db.cfg.GlobalLock {
		f["locking"] = "global"
	}
	if db.wal != nil {
		f["wal"] = "on"
		f["wal_encrypted"] = fmt.Sprintf("%v", db.cfg.EncryptionKey != nil)
		f["wal_checkpoints"] = fmt.Sprintf("%d", db.checkpoints.Load())
		if db.cfg.CheckpointBytes > 0 {
			f["wal_checkpoint_bytes"] = fmt.Sprintf("%d", db.cfg.CheckpointBytes)
		}
	}
	var idx []string
	for name, t := range db.tables {
		v, release := db.readView(t)
		for _, c := range v.IndexedColumns() {
			idx = append(idx, name+"."+c)
		}
		release()
	}
	sort.Strings(idx)
	f["indexes"] = fmt.Sprintf("%v", idx)
	return f
}

// StartTTLDaemon launches the timely-deletion daemon: every period it
// deletes rows of table whose col (a time column) is <= now. The paper's
// retrofit runs at a 1-second period. The sweep resolves expired rows
// through the key-only select path, so when col carries a secondary index
// (MetadataIndexing indexes the ttl column) each cycle is an ordered
// range scan over exactly the due rows — O(expired + log n), the same
// ordered-expiry path the kvstore's strict cycle gains — instead of a
// full-table scan.
func (db *DB) StartTTLDaemon(table, col string, period time.Duration) error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return errDBClosed
	}
	if db.ttlStop != nil {
		db.mu.Unlock()
		return fmt.Errorf("relstore: TTL daemon already running")
	}
	t, err := db.tableLocked(table)
	if err != nil {
		db.mu.Unlock()
		return err
	}
	ci := t.live.schema.ColIndex(col)
	if ci < 0 || t.live.schema.Columns[ci].Type != TypeTime {
		db.mu.Unlock()
		return fmt.Errorf("relstore: TTL column %s.%s must be a time column", table, col)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	db.ttlStop = stop
	db.ttlDone = done
	clk := db.clk
	db.mu.Unlock()

	go func() {
		defer close(done)
		for {
			timer := clk.After(period)
			select {
			case <-stop:
				return
			case <-timer:
				_, _ = db.DeleteWhere(table, Le(col, clk.Now()))
			}
		}
	}()
	return nil
}

// StopTTLDaemon stops the daemon, waiting for it to exit.
func (db *DB) StopTTLDaemon() {
	db.mu.Lock()
	stop := db.ttlStop
	done := db.ttlDone
	db.ttlStop = nil
	db.ttlDone = nil
	db.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// SweepExpired synchronously deletes rows of table whose time column col
// is <= now; the TTL daemon's body, callable directly from simulations.
func (db *DB) SweepExpired(table, col string) (int, error) {
	return db.DeleteWhere(table, Le(col, db.clk.Now()))
}

// Sync flushes the WAL.
func (db *DB) Sync() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.wal == nil {
		return nil
	}
	return db.wal.Sync()
}

// WALSize returns the WAL's on-disk size (0 without a WAL).
func (db *DB) WALSize() (int64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.wal == nil {
		return 0, nil
	}
	return db.wal.Size()
}

// Close stops the TTL daemon and closes the WAL. Close is idempotent.
func (db *DB) Close() error {
	db.obsColl.Close()
	db.StopTTLDaemon()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	if db.wal != nil {
		return db.wal.Close()
	}
	return nil
}

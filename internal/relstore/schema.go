// Package relstore is a from-scratch embedded relational engine modeled on
// PostgreSQL v9.5, the RDBMS the paper retrofits (§5.2). It provides what
// the paper's measurements depend on:
//
//   - heap tables with typed columns and a primary-key B-tree;
//   - secondary B-tree indexes on any column, including multi-valued
//     (list) columns — the "metadata indexing via the built-in secondary
//     indices" retrofit;
//   - MVCC-style updates: a row update rewrites the row's entries in
//     every index (PostgreSQL's non-HOT update behavior), which is the
//     mechanism behind Figure 3b's throughput collapse as indexes are
//     added;
//   - a write-ahead log with crash recovery;
//   - csvlog-style statement/response logging (the monitoring retrofit);
//   - a TTL daemon that purges expired rows on a fixed period (the
//     paper's timely-deletion retrofit: "a daemon that checks for expired
//     rows periodically (currently set to 1 sec)").
package relstore

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
	"time"
)

// ColType is a column's type.
type ColType int

// Column types.
const (
	// TypeText holds a string without NUL bytes.
	TypeText ColType = iota
	// TypeInt holds an int64.
	TypeInt
	// TypeTime holds a time.Time (zero allowed, meaning "unset").
	TypeTime
	// TypeTextList holds a list of NUL-free strings; indexing a list
	// column indexes each element (like a Postgres GIN index).
	TypeTextList
)

func (c ColType) String() string {
	switch c {
	case TypeText:
		return "text"
	case TypeInt:
		return "int"
	case TypeTime:
		return "time"
	case TypeTextList:
		return "text[]"
	default:
		return fmt.Sprintf("ColType(%d)", int(c))
	}
}

// Column describes one table column.
type Column struct {
	Name string
	Type ColType
}

// Schema describes a table: its columns and which text column is the
// primary key.
type Schema struct {
	Name    string
	Columns []Column
	// PrimaryKey names a TypeText column.
	PrimaryKey string
}

// Validate checks schema well-formedness.
func (s Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("relstore: empty table name")
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("relstore: table %s has no columns", s.Name)
	}
	seen := map[string]bool{}
	pkOK := false
	for _, c := range s.Columns {
		if c.Name == "" {
			return fmt.Errorf("relstore: table %s has an unnamed column", s.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("relstore: table %s duplicates column %q", s.Name, c.Name)
		}
		seen[c.Name] = true
		if c.Name == s.PrimaryKey {
			if c.Type != TypeText {
				return fmt.Errorf("relstore: primary key %q must be text", c.Name)
			}
			pkOK = true
		}
	}
	if !pkOK {
		return fmt.Errorf("relstore: table %s: primary key %q is not a column", s.Name, s.PrimaryKey)
	}
	return nil
}

// ColIndex returns the position of the named column, or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Value is a column value: string, int64, time.Time or []string depending
// on the column type.
type Value any

// Row is one table row; values are positional per the schema.
type Row []Value

// Clone deep-copies a row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	for i, v := range r {
		if l, ok := v.([]string); ok {
			out[i] = append([]string(nil), l...)
		} else {
			out[i] = v
		}
	}
	return out
}

// checkValue verifies v matches t; text values must be NUL-free so they
// can participate in composite index keys.
func checkValue(t ColType, v Value) error {
	switch t {
	case TypeText:
		s, ok := v.(string)
		if !ok {
			return fmt.Errorf("relstore: want text, got %T", v)
		}
		if strings.IndexByte(s, 0) >= 0 {
			return fmt.Errorf("relstore: text value contains NUL")
		}
	case TypeInt:
		if _, ok := v.(int64); !ok {
			return fmt.Errorf("relstore: want int64, got %T", v)
		}
	case TypeTime:
		if _, ok := v.(time.Time); !ok {
			return fmt.Errorf("relstore: want time.Time, got %T", v)
		}
	case TypeTextList:
		l, ok := v.([]string)
		if !ok {
			if v == nil {
				return nil
			}
			return fmt.Errorf("relstore: want []string, got %T", v)
		}
		for _, s := range l {
			if strings.IndexByte(s, 0) >= 0 {
				return fmt.Errorf("relstore: list element contains NUL")
			}
		}
	default:
		return fmt.Errorf("relstore: unknown column type %v", t)
	}
	return nil
}

// checkRow validates a full row against the schema.
func (s Schema) checkRow(r Row) error {
	if len(r) != len(s.Columns) {
		return fmt.Errorf("relstore: table %s: row has %d values, want %d", s.Name, len(r), len(s.Columns))
	}
	for i, c := range s.Columns {
		if err := checkValue(c.Type, r[i]); err != nil {
			return fmt.Errorf("relstore: table %s column %q: %w", s.Name, c.Name, err)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Row serialization (WAL payloads and heap-size accounting)

// encodeRow serializes a row: per value a type tag then the value bytes.
func encodeRow(s Schema, r Row) []byte {
	var out []byte
	out = binary.AppendUvarint(out, uint64(len(r)))
	for i, c := range s.Columns {
		out = append(out, byte(c.Type))
		switch c.Type {
		case TypeText:
			v := r[i].(string)
			out = binary.AppendUvarint(out, uint64(len(v)))
			out = append(out, v...)
		case TypeInt:
			out = binary.BigEndian.AppendUint64(out, uint64(r[i].(int64)))
		case TypeTime:
			t := r[i].(time.Time)
			var ns int64
			if !t.IsZero() {
				ns = t.UnixNano()
			}
			out = binary.BigEndian.AppendUint64(out, uint64(ns))
		case TypeTextList:
			var l []string
			if r[i] != nil {
				l = r[i].([]string)
			}
			out = binary.AppendUvarint(out, uint64(len(l)))
			for _, e := range l {
				out = binary.AppendUvarint(out, uint64(len(e)))
				out = append(out, e...)
			}
		}
	}
	return out
}

// encodedRowSize returns len(encodeRow(s, r)) without building the
// buffer. The write path charges heap accounting per mutation (twice
// per update: the old and the new version), so sizing must not allocate.
func encodedRowSize(s Schema, r Row) int64 {
	n := int64(uvarintLen(uint64(len(r))))
	for i, c := range s.Columns {
		n++ // type tag
		switch c.Type {
		case TypeText:
			v := r[i].(string)
			n += int64(uvarintLen(uint64(len(v)))) + int64(len(v))
		case TypeInt, TypeTime:
			n += 8
		case TypeTextList:
			var l []string
			if r[i] != nil {
				l = r[i].([]string)
			}
			n += int64(uvarintLen(uint64(len(l))))
			for _, e := range l {
				n += int64(uvarintLen(uint64(len(e)))) + int64(len(e))
			}
		}
	}
	return n
}

// uvarintLen is the encoded length of v as a binary.AppendUvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// decodeRow parses a row serialized by encodeRow.
func decodeRow(s Schema, p []byte) (Row, error) {
	n, off := binary.Uvarint(p)
	if off <= 0 || n != uint64(len(s.Columns)) {
		return nil, fmt.Errorf("relstore: row header mismatch (have %d cols, want %d)", n, len(s.Columns))
	}
	p = p[off:]
	row := make(Row, len(s.Columns))
	for i, c := range s.Columns {
		if len(p) == 0 {
			return nil, fmt.Errorf("relstore: truncated row at column %q", c.Name)
		}
		if ColType(p[0]) != c.Type {
			return nil, fmt.Errorf("relstore: column %q type tag %d, want %d", c.Name, p[0], c.Type)
		}
		p = p[1:]
		switch c.Type {
		case TypeText:
			l, off := binary.Uvarint(p)
			if off <= 0 || uint64(len(p)-off) < l {
				return nil, fmt.Errorf("relstore: truncated text for %q", c.Name)
			}
			row[i] = string(p[off : off+int(l)])
			p = p[off+int(l):]
		case TypeInt:
			if len(p) < 8 {
				return nil, fmt.Errorf("relstore: truncated int for %q", c.Name)
			}
			row[i] = int64(binary.BigEndian.Uint64(p))
			p = p[8:]
		case TypeTime:
			if len(p) < 8 {
				return nil, fmt.Errorf("relstore: truncated time for %q", c.Name)
			}
			ns := int64(binary.BigEndian.Uint64(p))
			if ns == 0 {
				row[i] = time.Time{}
			} else {
				row[i] = time.Unix(0, ns).UTC()
			}
			p = p[8:]
		case TypeTextList:
			cnt, off := binary.Uvarint(p)
			if off <= 0 {
				return nil, fmt.Errorf("relstore: truncated list for %q", c.Name)
			}
			p = p[off:]
			var l []string
			for j := uint64(0); j < cnt; j++ {
				el, off := binary.Uvarint(p)
				if off <= 0 || uint64(len(p)-off) < el {
					return nil, fmt.Errorf("relstore: truncated list element for %q", c.Name)
				}
				l = append(l, string(p[off:off+int(el)]))
				p = p[off+int(el):]
			}
			row[i] = l
		}
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("relstore: %d trailing bytes after row", len(p))
	}
	return row, nil
}

// ---------------------------------------------------------------------------
// Sortable index-key encodings

// encodeIndexScalar renders a single column value as a byte string whose
// lexicographic order matches the value order, suitable as an index-key
// component.
func encodeIndexScalar(t ColType, v Value) string {
	switch t {
	case TypeText:
		return v.(string)
	case TypeInt:
		var b [8]byte
		// Bias so negative numbers sort before positives.
		binary.BigEndian.PutUint64(b[:], uint64(v.(int64))+math.MaxInt64+1)
		return string(b[:])
	case TypeTime:
		tv := v.(time.Time)
		var b [8]byte
		if tv.IsZero() {
			// Unset times sort after every real time so they never match
			// "expired before t" range scans.
			binary.BigEndian.PutUint64(b[:], math.MaxUint64)
		} else {
			binary.BigEndian.PutUint64(b[:], uint64(tv.UnixNano())+math.MaxInt64+1)
		}
		return string(b[:])
	default:
		return ""
	}
}

// indexComponents returns the index-key components a value contributes:
// one for scalars, one per element for lists.
func indexComponents(t ColType, v Value) []string {
	if t == TypeTextList {
		var l []string
		if v != nil {
			l = v.([]string)
		}
		return l
	}
	return []string{encodeIndexScalar(t, v)}
}

// compositeKey builds the index entry key for (value-component, pk).
func compositeKey(component, pk string) string {
	return component + "\x00" + pk
}

// pkFromComposite recovers the primary key from a composite index key.
func pkFromComposite(k string) string {
	i := strings.LastIndexByte(k, 0)
	if i < 0 {
		return k
	}
	return k[i+1:]
}

package relstore

import (
	"fmt"
	"sort"
	"time"
)

// PredOp is a predicate operator.
type PredOp int

// Predicate operators.
const (
	// OpAll matches every row.
	OpAll PredOp = iota
	// OpEq matches rows whose text column equals Text.
	OpEq
	// OpContains matches rows whose list column contains Text.
	OpContains
	// OpNotContains matches rows whose list column does NOT contain Text.
	// No index can serve it; it always sequential-scans.
	OpNotContains
	// OpLe matches rows whose time column is non-zero and <= Time.
	OpLe
)

// Predicate is a single-column filter — the query shapes GDPR metadata
// operations need (§3.3 is dominated by attribute-equality and TTL-cutoff
// selections).
type Predicate struct {
	Op   PredOp
	Col  string
	Text string
	Time time.Time
}

// All matches every row.
func All() Predicate { return Predicate{Op: OpAll} }

// Eq matches rows with col == v (text columns).
func Eq(col, v string) Predicate { return Predicate{Op: OpEq, Col: col, Text: v} }

// Contains matches rows whose list column contains v.
func Contains(col, v string) Predicate { return Predicate{Op: OpContains, Col: col, Text: v} }

// NotContains matches rows whose list column does not contain v.
func NotContains(col, v string) Predicate { return Predicate{Op: OpNotContains, Col: col, Text: v} }

// Le matches rows whose time column is set and <= t.
func Le(col string, t time.Time) Predicate { return Predicate{Op: OpLe, Col: col, Time: t} }

// String renders the predicate for logs.
func (p Predicate) String() string {
	switch p.Op {
	case OpAll:
		return "true"
	case OpEq:
		return fmt.Sprintf("%s = %q", p.Col, p.Text)
	case OpContains:
		return fmt.Sprintf("%s @> %q", p.Col, p.Text)
	case OpNotContains:
		return fmt.Sprintf("NOT %s @> %q", p.Col, p.Text)
	case OpLe:
		return fmt.Sprintf("%s <= %d", p.Col, p.Time.Unix())
	default:
		return fmt.Sprintf("PredOp(%d)", int(p.Op))
	}
}

// Plan describes how a predicate will be executed.
type Plan struct {
	// Access is "index" or "seqscan".
	Access string
	// Index is the column whose index is used (empty for seqscan).
	Index string
}

// Explain reports the access path Select would use for pred on table.
func (db *DB) Explain(table string, pred Predicate) (Plan, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.tableLocked(table)
	if err != nil {
		return Plan{}, err
	}
	v, release := db.readView(t)
	defer release()
	return v.plan(pred), nil
}

func (v *view) plan(pred Predicate) Plan {
	switch pred.Op {
	case OpEq, OpContains, OpLe:
		if _, ok := v.indexes[pred.Col]; ok {
			return Plan{Access: "index", Index: pred.Col}
		}
	}
	return Plan{Access: "seqscan"}
}

// matches evaluates pred against a row (seq-scan filter).
func (v *view) matches(pred Predicate, row Row) (bool, error) {
	if pred.Op == OpAll {
		return true, nil
	}
	ci := v.schema.ColIndex(pred.Col)
	if ci < 0 {
		return false, fmt.Errorf("relstore: table %s has no column %q", v.schema.Name, pred.Col)
	}
	col := v.schema.Columns[ci]
	switch pred.Op {
	case OpEq:
		if col.Type != TypeText {
			return false, fmt.Errorf("relstore: Eq on non-text column %q", pred.Col)
		}
		return row[ci].(string) == pred.Text, nil
	case OpContains, OpNotContains:
		if col.Type != TypeTextList {
			return false, fmt.Errorf("relstore: Contains on non-list column %q", pred.Col)
		}
		l, _ := row[ci].([]string)
		found := false
		for _, v := range l {
			if v == pred.Text {
				found = true
				break
			}
		}
		if pred.Op == OpNotContains {
			return !found, nil
		}
		return found, nil
	case OpLe:
		if col.Type != TypeTime {
			return false, fmt.Errorf("relstore: Le on non-time column %q", pred.Col)
		}
		tv := row[ci].(time.Time)
		return !tv.IsZero() && !tv.After(pred.Time), nil
	default:
		return false, fmt.Errorf("relstore: unknown predicate op %d", int(pred.Op))
	}
}

// checkPredicate validates the predicate column eagerly so bad queries
// fail loudly on every access path.
func (v *view) checkPredicate(pred Predicate) error {
	if pred.Op == OpAll {
		return nil
	}
	ci := v.schema.ColIndex(pred.Col)
	if ci < 0 {
		return fmt.Errorf("relstore: table %s has no column %q", v.schema.Name, pred.Col)
	}
	col := v.schema.Columns[ci]
	switch pred.Op {
	case OpEq:
		if col.Type != TypeText {
			return fmt.Errorf("relstore: Eq on non-text column %q", pred.Col)
		}
	case OpContains, OpNotContains:
		if col.Type != TypeTextList {
			return fmt.Errorf("relstore: Contains on non-list column %q", pred.Col)
		}
	case OpLe:
		if col.Type != TypeTime {
			return fmt.Errorf("relstore: Le on non-time column %q", pred.Col)
		}
	}
	return nil
}

// indexPKs resolves pred through the covering secondary index, returning
// the matching primary keys unsorted. ok is false when no index serves
// the predicate.
func (v *view) indexPKs(pred Predicate) (pks []string, ok bool) {
	switch pred.Op {
	case OpEq, OpContains:
		return v.indexLookup(pred.Col, pred.Text)
	case OpLe:
		return v.indexRangeLE(pred.Col, encodeIndexScalar(TypeTime, pred.Time))
	}
	return nil, false
}

// runSelect executes pred on one table version, returning matching rows
// (clones) and their primary keys in primary-key order. The view is
// either a published snapshot (lock-free reads) or the live view under
// the table's write lock (read-modify-write operations).
func (v *view) runSelect(pred Predicate) ([]Row, []string, error) {
	if err := v.checkPredicate(pred); err != nil {
		return nil, nil, err
	}
	if v.plan(pred).Access == "index" {
		if pks, ok := v.indexPKs(pred); ok {
			sort.Strings(pks)
			rows := make([]Row, 0, len(pks))
			for _, pk := range pks {
				if row, exists := v.get(pk); exists {
					rows = append(rows, row)
				}
			}
			return rows, pks, nil
		}
	}
	// Sequential scan.
	var rows []Row
	var pks []string
	var scanErr error
	v.scanAll(func(pk string, row Row) bool {
		ok, err := v.matches(pred, row)
		if err != nil {
			scanErr = err
			return false
		}
		if ok {
			rows = append(rows, row.Clone())
			pks = append(pks, pk)
		}
		return true
	})
	if scanErr != nil {
		return nil, nil, scanErr
	}
	return rows, pks, nil
}

// selectKeys executes pred returning only the matching primary keys in
// primary-key order — no row materialization on either access path. The
// key-only consumers (SELECT-KEYS projections, DELETE/UPDATE WHERE
// candidate resolution, the TTL daemon's expired-row sweep) route through
// it: with a covering index the cost is O(result + log n) — for the TTL
// column that is the ordered-expiry path, O(expired) per daemon cycle —
// and even the sequential fallback no longer clones every matching row.
func (v *view) selectKeys(pred Predicate) ([]string, error) {
	if err := v.checkPredicate(pred); err != nil {
		return nil, err
	}
	if v.plan(pred).Access == "index" {
		if pks, ok := v.indexPKs(pred); ok {
			sort.Strings(pks)
			return pks, nil
		}
	}
	var pks []string
	var scanErr error
	v.scanAll(func(pk string, row Row) bool {
		ok, err := v.matches(pred, row)
		if err != nil {
			scanErr = err
			return false
		}
		if ok {
			pks = append(pks, pk)
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	return pks, nil
}

package relstore

import "fmt"

// SelectChunk returns up to limit rows matching pred whose primary key
// sorts strictly after `after`, in primary-key order — one bounded step
// of Select. Each call resolves against the snapshot current at that
// moment (readView), so a streaming walk observes per-chunk snapshots,
// not one query-wide version: rows mutated between chunks appear in
// whichever state the chunk covering their key finds them, and the
// monotone pk cursor guarantees every row present for the whole walk is
// visited exactly once. Both Select access paths emit pk order, so under
// a quiescent table the concatenated chunks are byte-identical to the
// materialized result.
//
// The walk is a bounded range scan from the pk B-tree with a per-row
// predicate filter: memory is O(limit) regardless of result size, and
// each row is visited once across the whole stream (chunk k+1 resumes at
// the pk after chunk k's last match).
func (db *DB) SelectChunk(table string, pred Predicate, after string, limit int) ([]Row, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.tableLocked(table)
	if err != nil {
		return nil, err
	}
	v, release := db.readView(t)
	defer release()
	if err := v.checkPredicate(pred); err != nil {
		return nil, err
	}
	start := ""
	if after != "" {
		// scanFrom's start is inclusive; the NUL suffix makes it the
		// smallest key strictly after the cursor.
		start = after + "\x00"
	}
	var rows []Row
	var scanErr error
	if limit > 0 {
		v.scanFrom(start, func(pk string, row Row) bool {
			ok, err := v.matches(pred, row)
			if err != nil {
				scanErr = err
				return false
			}
			if ok {
				rows = append(rows, row.Clone())
			}
			return len(rows) < limit
		})
	}
	if scanErr != nil {
		return nil, scanErr
	}
	db.logStatement("SELECT", table, fmt.Sprintf("%s pk>%q limit %d", pred.String(), after, limit), len(rows), true)
	return rows, nil
}

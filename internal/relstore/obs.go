package relstore

import "repro/internal/obs"

// Checkpoint telemetry, reported to the process-wide registry. Both series
// fire once per checkpoint — a background task — so the commit path is
// untouched; the bytes-reclaimed gauge is the live WAL's shrink across the
// last rotate-and-truncate cycle.
var (
	obsCheckpointNs        = obs.Default().Histogram("relstore_wal_checkpoint_duration_ns")
	obsCheckpointReclaimed = obs.Default().Gauge("relstore_wal_checkpoint_bytes_reclaimed")
)

package relstore

import (
	"fmt"
	"math/rand"
	"time"
)

// This file is the pgbench substitution for Figure 3b. pgbench's TPC-B
// transaction updates one row of pgbench_accounts per transaction; the
// paper runs it while varying the number of secondary indices on the
// table ("just introducing two secondary indices, for the widely used
// metadata criteria of purpose and user-id, reduces PostgreSQL's
// throughput to 33% of the original"). Because updates rewrite every
// index entry (MVCC non-HOT behavior, see Table.update), each added index
// multiplies the write amplification — the effect the figure shows.

// PgbenchConfig parameterizes a run.
type PgbenchConfig struct {
	// Accounts is the table size (pgbench "scale" × 100k in the original;
	// scaled down here).
	Accounts int
	// Transactions is how many update transactions to run.
	Transactions int
	// IndexColumns are the metadata columns to index before the run
	// (subset of "purpose", "usr", "filler").
	IndexColumns []string
	// Seed drives the account-selection randomness.
	Seed int64
}

// PgbenchResult reports a run's outcome.
type PgbenchResult struct {
	Indices      int
	Transactions int
	Elapsed      time.Duration
	TPS          float64
}

// pgbenchSchema is the accounts table: aid primary key, a balance, and
// GDPR-ish metadata columns that secondary indexes target.
func pgbenchSchema() Schema {
	return Schema{
		Name: "pgbench_accounts",
		Columns: []Column{
			{Name: "aid", Type: TypeText},
			{Name: "abalance", Type: TypeInt},
			{Name: "purpose", Type: TypeText},
			{Name: "usr", Type: TypeText},
			{Name: "filler", Type: TypeText},
		},
		PrimaryKey: "aid",
	}
}

// RunPgbench loads pgbench_accounts into db, builds the requested
// secondary indexes, then runs cfg.Transactions single-row update
// transactions and reports throughput. The caller provides a fresh DB.
func RunPgbench(db *DB, cfg PgbenchConfig) (PgbenchResult, error) {
	if cfg.Accounts <= 0 || cfg.Transactions <= 0 {
		return PgbenchResult{}, fmt.Errorf("relstore: pgbench needs positive accounts and transactions")
	}
	if err := db.CreateTable(pgbenchSchema()); err != nil {
		return PgbenchResult{}, err
	}
	if err := db.Recover(); err != nil {
		return PgbenchResult{}, err
	}
	for i := 0; i < cfg.Accounts; i++ {
		row := Row{
			fmt.Sprintf("acct-%08d", i),
			int64(0),
			fmt.Sprintf("purpose-%d", i%16),
			fmt.Sprintf("user-%d", i%1000),
			"0123456789abcdef0123456789abcdef", // pgbench pads rows with filler
		}
		if err := db.Insert("pgbench_accounts", row); err != nil {
			return PgbenchResult{}, err
		}
	}
	for _, col := range cfg.IndexColumns {
		if err := db.CreateIndex("pgbench_accounts", col); err != nil {
			return PgbenchResult{}, err
		}
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	start := time.Now()
	for i := 0; i < cfg.Transactions; i++ {
		aid := fmt.Sprintf("acct-%08d", r.Intn(cfg.Accounts))
		delta := int64(r.Intn(10000) - 5000)
		ok, err := db.UpdateFunc("pgbench_accounts", aid, func(row Row) (Row, error) {
			row[1] = row[1].(int64) + delta
			return row, nil
		})
		if err != nil {
			return PgbenchResult{}, err
		}
		if !ok {
			return PgbenchResult{}, fmt.Errorf("relstore: pgbench account %s missing", aid)
		}
	}
	elapsed := time.Since(start)
	res := PgbenchResult{
		Indices:      len(cfg.IndexColumns),
		Transactions: cfg.Transactions,
		Elapsed:      elapsed,
	}
	if elapsed > 0 {
		res.TPS = float64(cfg.Transactions) / elapsed.Seconds()
	}
	return res, nil
}

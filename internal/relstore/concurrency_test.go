package relstore

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wal"
)

// TestConcurrentMixedStress hammers one table with mixed readers and
// writers. Run under -race this validates the table-lock + snapshot
// discipline: writers serialize on the table lock while readers run
// lock-free against published snapshots.
func TestConcurrentMixedStress(t *testing.T) {
	db := openDB(t, Config{})
	if err := db.CreateIndex("records", "usr"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("records", "pur"); err != nil {
		t.Fatal(err)
	}

	const writers, readers, per = 4, 4, 300
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				k := fmt.Sprintf("w%d-k%d", w, i)
				usr := fmt.Sprintf("u%d", w)
				if err := db.Insert("records", row(k, "d", usr, time.Time{}, []string{"ads"}, 0)); err != nil {
					t.Error(err)
					return
				}
				switch r.Intn(3) {
				case 0:
					if err := db.Update("records", k, row(k, "d2", usr, time.Time{}, []string{"2fa"}, 1)); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := db.UpdateFunc("records", k, func(r Row) (Row, error) {
						r[5] = r[5].(int64) + 1
						return r, nil
					}); err != nil {
						t.Error(err)
						return
					}
				}
				if i%7 == 0 && i > 0 {
					if _, err := db.Delete("records", fmt.Sprintf("w%d-k%d", w, i-1)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}

	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch r.Intn(5) {
				case 0:
					if _, _, err := db.Get("records", fmt.Sprintf("w%d-k%d", r.Intn(writers), r.Intn(per))); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := db.Select("records", Eq("usr", fmt.Sprintf("u%d", r.Intn(writers)))); err != nil {
						t.Error(err)
						return
					}
				case 2:
					if _, err := db.Select("records", Contains("pur", "ads")); err != nil {
						t.Error(err)
						return
					}
				case 3:
					if _, err := db.ScanPK("records", "", 50); err != nil {
						t.Error(err)
						return
					}
				default:
					if _, err := db.Count("records"); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}

	// Wait for writers, then stop readers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	// Writers finish first (readers loop until stop); poll row count to
	// know when, with a hard deadline.
	deadline := time.After(60 * time.Second)
	testDone := make(chan struct{})
	defer close(testDone)
	writersDone := make(chan struct{})
	go func() {
		for {
			select {
			case <-testDone:
				return
			default:
			}
			n, _ := db.Count("records")
			// Each writer nets per - (per-1)/7 rows (one delete every 7
			// inserts, starting at i=7).
			want := writers * (per - (per-1)/7)
			if n >= want {
				close(writersDone)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	select {
	case <-writersDone:
	case <-deadline:
	}
	close(stop)
	<-done

	// Verify final state: deterministic per-writer row sets.
	want := 0
	for w := 0; w < writers; w++ {
		for i := 0; i < per; i++ {
			deleted := i%7 == 6 && i+1 < per // k(i) deleted by iteration i+1 when (i+1)%7==0
			_, ok, err := db.Get("records", fmt.Sprintf("w%d-k%d", w, i))
			if err != nil {
				t.Fatal(err)
			}
			if ok == deleted {
				t.Fatalf("w%d-k%d: present=%v, want deleted=%v", w, i, ok, deleted)
			}
			if ok {
				want++
			}
		}
	}
	if n, _ := db.Count("records"); n != want {
		t.Fatalf("count = %d, want %d", n, want)
	}
}

// TestSnapshotReadsSeeAtomicRows verifies the copy-on-write snapshot
// property: a reader never observes a half-applied write. A writer
// atomically flips a row between two self-consistent states ({x,x} and
// {y,y}); readers running flat-out must never see a mixed row, and a
// Select by indexed column must never return a row whose value
// contradicts the index that found it.
func TestSnapshotReadsSeeAtomicRows(t *testing.T) {
	db := openDB(t, Config{})
	if err := db.CreateIndex("records", "usr"); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("records", row("k", "x", "x", time.Time{}, nil, 0)); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				got, ok, err := db.Get("records", "k")
				if err != nil || !ok {
					t.Errorf("Get = %v %v", ok, err)
					return
				}
				if got[1].(string) != got[2].(string) {
					t.Errorf("torn row visible: data=%v usr=%v", got[1], got[2])
					return
				}
				for _, state := range []string{"x", "y"} {
					rows, err := db.Select("records", Eq("usr", state))
					if err != nil {
						t.Error(err)
						return
					}
					for _, r := range rows {
						if r[2].(string) != state {
							t.Errorf("index/value mismatch: found via usr=%s, row has %v", state, r[2])
							return
						}
					}
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		s := "x"
		if i%2 == 0 {
			s = "y"
		}
		if err := db.Update("records", "k", row("k", s, s, time.Time{}, nil, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestTablesLockIndependently verifies per-table locking: a writer
// holding one table's write path does not block operations on another
// table. Two goroutines each pound their own table; with the old global
// mutex this still passes but under -race it pins the two-lock scheme.
func TestTablesLockIndependently(t *testing.T) {
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, name := range []string{"ta", "tb"} {
		s := testSchema()
		s.Name = name
		if err := db.CreateTable(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, name := range []string{"ta", "tb"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i)
				if err := db.Insert(name, row(k, "d", "u", time.Time{}, nil, 0)); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := db.Get(name, k); err != nil {
					t.Error(err)
					return
				}
			}
		}(name)
	}
	wg.Wait()
	for _, name := range []string{"ta", "tb"} {
		if n, _ := db.Count(name); n != 500 {
			t.Fatalf("%s count = %d", name, n)
		}
	}
}

// TestGlobalLockModeStillCorrect runs the same operations under the
// Config.GlobalLock ablation baseline, so the benchmark's two legs share
// one correctness bar.
func TestGlobalLockModeStillCorrect(t *testing.T) {
	db := openDB(t, Config{GlobalLock: true})
	if err := db.CreateIndex("records", "usr"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("w%d-k%d", w, i)
				if err := db.Insert("records", row(k, "d", fmt.Sprintf("u%d", w), time.Time{}, nil, 0)); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := db.Get("records", k); err != nil {
					t.Error(err)
					return
				}
				if i%10 == 0 {
					if _, err := db.Select("records", Eq("usr", fmt.Sprintf("u%d", w))); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if n, _ := db.Count("records"); n != 800 {
		t.Fatalf("count = %d", n)
	}
	if f := db.Features(); f["locking"] != "global" {
		t.Fatalf("locking feature = %q", f["locking"])
	}
}

// TestInsertBatch covers the bulk-load path: one call inserts many rows,
// errors surface mid-batch with the applied prefix kept, and the batch
// recovers from the WAL like per-row inserts do.
func TestInsertBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.wal")
	cfg := Config{WALPath: path, WALSync: wal.SyncOnCommit}
	db := openDB(t, cfg)
	var rows []Row
	for i := 0; i < 50; i++ {
		rows = append(rows, row(fmt.Sprintf("k%02d", i), "d", "u", time.Time{}, nil, int64(i)))
	}
	if err := db.InsertBatch("records", rows); err != nil {
		t.Fatal(err)
	}
	if n, _ := db.Count("records"); n != 50 {
		t.Fatalf("count = %d", n)
	}
	// Duplicate mid-batch: prefix applies, error reported.
	bad := []Row{
		row("new-1", "d", "u", time.Time{}, nil, 0),
		row("k00", "d", "u", time.Time{}, nil, 0), // duplicate
		row("new-2", "d", "u", time.Time{}, nil, 0),
	}
	if err := db.InsertBatch("records", bad); err == nil {
		t.Fatal("duplicate in batch should fail")
	}
	if _, ok, _ := db.Get("records", "new-1"); !ok {
		t.Fatal("batch prefix lost")
	}
	if _, ok, _ := db.Get("records", "new-2"); ok {
		t.Fatal("batch suffix applied after error")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Everything the batch reported durable survives recovery.
	db2 := openDB(t, cfg)
	if n, _ := db2.Count("records"); n != 51 {
		t.Fatalf("recovered count = %d", n)
	}
}

// TestConcurrentWritersWithWAL exercises the group-commit write path
// under -race: concurrent writers on one table, each waiting for
// durability, must all recover.
func TestConcurrentWritersWithWAL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gc.wal")
	cfg := Config{WALPath: path, WALSync: wal.SyncOnCommit}
	db := openDB(t, cfg)
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := fmt.Sprintf("w%d-k%d", w, i)
				if err := db.Insert("records", row(k, "d", "u", time.Time{}, nil, 0)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := openDB(t, cfg)
	if n, _ := db2.Count("records"); n != workers*per {
		t.Fatalf("recovered %d rows, want %d", n, workers*per)
	}
}

package shard

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/audit"
	"repro/internal/clock"
	"repro/internal/core"
)

// This file builds ready-to-use sharded clients: N storage engines (one
// subdirectory, AOF/WAL and expiry loop each) under one Router, wrapped
// in one compliance middleware with a single audit trail — the topology
// the package comment describes.

// shardDir returns (and creates) shard i's subdirectory; "" stays "".
func shardDir(base string, i int) (string, error) {
	if base == "" {
		return "", nil
	}
	dir := filepath.Join(base, fmt.Sprintf("shard-%03d", i))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	return dir, nil
}

// closeAll closes the engines built so far on a constructor error path.
func closeAll(engines []core.Engine) {
	for _, e := range engines {
		if e != nil {
			e.Close()
		}
	}
}

// OpenRedis builds a sharded Redis-model client: shards kvstore engines
// (each with its own AOF and strict-expiry loop in cfg.Dir/shard-NNN)
// behind one compliance middleware whose audit trail lives at the top of
// cfg.Dir. The returned DB implements core.BatchCreator — batched loads
// fan out per shard — unlike the unsharded Redis client, which keeps the
// paper's one-command-per-record load shape.
func OpenRedis(shards int, cfg core.RedisConfig) (core.DB, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d < 1", shards)
	}
	engines := make([]core.Engine, shards)
	for i := range engines {
		ecfg := cfg
		dir, err := shardDir(cfg.Dir, i)
		if err != nil {
			closeAll(engines)
			return nil, err
		}
		ecfg.Dir = dir
		engines[i], err = core.NewRedisEngine(ecfg)
		if err != nil {
			closeAll(engines)
			return nil, err
		}
	}
	router, err := New(engines)
	if err != nil {
		closeAll(engines)
		return nil, err
	}
	db, err := core.Wrap(router, cfg.WrapConfig())
	if err != nil {
		router.Close()
		return nil, err
	}
	return db, nil
}

// OpenPostgres builds a sharded PostgreSQL-model client: shards relstore
// engines (each with its own WAL, indexes and TTL daemon in
// cfg.Dir/shard-NNN) behind one compliance middleware. All shards log
// statements into the middleware's single csvlog-style audit trail, so
// GET-SYSTEM-LOGS stays one query over one log.
func OpenPostgres(shards int, cfg core.PostgresConfig) (core.DB, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d < 1", shards)
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.NewReal()
	}
	wc := cfg.WrapConfig()
	var log *audit.Log
	if cfg.Compliance.Logging {
		if cfg.Dir == "" {
			return nil, fmt.Errorf("shard: postgres logging requires a directory")
		}
		var err error
		// One audit pipeline serves every shard: the middleware and N
		// statement loggers all stage into the same lock-striped buffers,
		// so a scatter-gather query's per-shard goroutines never
		// serialize behind one encode+write lock.
		log, err = core.OpenAudit(wc, clk)
		if err != nil {
			return nil, err
		}
		wc.Audit = log
	}
	fail := func(engines []core.Engine, err error) (core.DB, error) {
		closeAll(engines)
		if log != nil {
			log.Close()
		}
		return nil, err
	}
	engines := make([]core.Engine, shards)
	for i := range engines {
		ecfg := cfg
		dir, err := shardDir(cfg.Dir, i)
		if err != nil {
			return fail(engines, err)
		}
		ecfg.Dir = dir
		engines[i], err = core.NewPostgresEngine(ecfg, log)
		if err != nil {
			return fail(engines, err)
		}
	}
	router, err := New(engines)
	if err != nil {
		return fail(engines, err)
	}
	db, err := core.Wrap(router, wc)
	if err != nil {
		router.Close()
		if log != nil {
			log.Close()
		}
		return nil, err
	}
	return db, nil
}

// Open dispatches on the engine model name ("redis" | "postgres")
// shared by the CLIs and experiments. policy selects the audit append
// pipeline (core's -auditpolicy spectrum); kvstripes selects the
// kvstore concurrency profile (0 = single-mutex baseline, ignored by
// the postgres model); tun arms the background log-compaction triggers
// (AOF rewrite, WAL checkpoint, audit retention — zero disables all).
func Open(engine string, shards int, dir string, comp core.Compliance, clk clock.Clock, disableDaemons bool, policy audit.Pipeline, kvstripes int, tun core.Tuning) (core.DB, error) {
	switch engine {
	case "redis":
		return OpenRedis(shards, core.RedisConfig{
			Dir: dir, Compliance: comp, Clock: clk, DisableBackgroundExpiry: disableDaemons,
			AuditPolicy: policy, KVStripes: kvstripes, Tuning: tun,
		})
	case "postgres":
		return OpenPostgres(shards, core.PostgresConfig{
			Dir: dir, Compliance: comp, Clock: clk, DisableTTLDaemon: disableDaemons,
			AuditPolicy: policy, Tuning: tun,
		})
	default:
		return nil, fmt.Errorf("shard: unknown engine %q", engine)
	}
}

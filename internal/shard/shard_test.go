package shard

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/gdpr"
)

func testRecord(i int) gdpr.Record {
	return gdpr.Record{
		Key:  fmt.Sprintf("k%05d", i),
		Data: fmt.Sprintf("data-%05d", i),
		Meta: gdpr.Metadata{
			User:     fmt.Sprintf("u%03d", i%10),
			Purposes: []string{fmt.Sprintf("pur%02d", i%4)},
			Expiry:   time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC),
			Source:   "test",
		},
	}
}

func newMemRouter(t *testing.T, shards int) *Router {
	t.Helper()
	engines := make([]core.Engine, shards)
	for i := range engines {
		var err error
		engines[i], err = core.NewRedisEngine(core.RedisConfig{
			Clock: clock.NewSim(time.Time{}), DisableBackgroundExpiry: true,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	r, err := New(engines)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func TestRouterPlacementIsStableAndSpread(t *testing.T) {
	r := newMemRouter(t, 4)
	const n = 400
	for i := 0; i < n; i++ {
		if err := r.Put(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Every key routes back to the shard holding it.
	for i := 0; i < n; i++ {
		rec, ok, err := r.Get(testRecord(i).Key)
		if err != nil || !ok {
			t.Fatalf("get %d: ok=%v err=%v", i, ok, err)
		}
		if rec.Data != testRecord(i).Data {
			t.Fatalf("get %d: wrong record %q", i, rec.Key)
		}
	}
	// The hash spreads keys over every shard (no empty shard at 100x the
	// shard count).
	counts := make([]int, r.Shards())
	for i := range r.shards {
		u, err := r.shards[i].SpaceUsage()
		if err != nil {
			t.Fatal(err)
		}
		if u.PersonalBytes == 0 {
			t.Fatalf("shard %d is empty", i)
		}
		counts[i] = int(u.PersonalBytes)
	}
	t.Logf("per-shard personal bytes: %v", counts)
}

func TestRouterScatterGatherMatchesSingleShard(t *testing.T) {
	one := newMemRouter(t, 1)
	four := newMemRouter(t, 4)
	const n = 300
	for i := 0; i < n; i++ {
		if err := one.Put(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	// The 4-shard router ingests through the batch fan-out path.
	recs := make([]gdpr.Record, n)
	for i := range recs {
		recs[i] = testRecord(i)
	}
	if err := four.PutBatch(recs); err != nil {
		t.Fatal(err)
	}
	sels := []gdpr.Selector{
		gdpr.ByUser("u003"),
		gdpr.ByPurpose("pur01"),
		{Attr: gdpr.AttrSource, Value: "test"},
	}
	for _, sel := range sels {
		a, err := one.Select(sel)
		if err != nil {
			t.Fatal(err)
		}
		b, err := four.Select(sel)
		if err != nil {
			t.Fatal(err)
		}
		if !sameKeySet(a, b) {
			t.Fatalf("%v: 1-shard %d records, 4-shard %d records", sel, len(a), len(b))
		}
		ka, err := one.SelectKeys(sel)
		if err != nil {
			t.Fatal(err)
		}
		kb, err := four.SelectKeys(sel)
		if err != nil {
			t.Fatal(err)
		}
		if len(ka) != len(a) || len(kb) != len(b) {
			t.Fatalf("%v: SelectKeys disagrees with Select (%d/%d vs %d/%d)", sel, len(ka), len(a), len(kb), len(b))
		}
	}
	// Delete by grouped keys: counts sum across shards.
	keys, err := four.SelectKeys(gdpr.ByUser("u003"))
	if err != nil {
		t.Fatal(err)
	}
	nDel, err := four.Delete(append(keys, "never-existed"))
	if err != nil {
		t.Fatal(err)
	}
	if nDel != len(keys) {
		t.Fatalf("deleted %d, want %d", nDel, len(keys))
	}
	after, err := four.Select(gdpr.ByUser("u003"))
	if err != nil || len(after) != 0 {
		t.Fatalf("after delete: %d records err=%v", len(after), err)
	}
}

func sameKeySet(a, b []gdpr.Record) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[string]int, len(a))
	for _, r := range a {
		seen[r.Key]++
	}
	for _, r := range b {
		seen[r.Key]--
		if seen[r.Key] < 0 {
			return false
		}
	}
	return true
}

// failingEngine errors on every scatter-gathered call.
type failingEngine struct{ core.Engine }

var errBroken = errors.New("shard-2 exploded")

func (f *failingEngine) Select(gdpr.Selector) ([]gdpr.Record, error) { return nil, errBroken }
func (f *failingEngine) SelectKeys(gdpr.Selector) ([]string, error)  { return nil, errBroken }

func TestRouterAggregatesPerShardErrors(t *testing.T) {
	good, err := core.NewRedisEngine(core.RedisConfig{Clock: clock.NewSim(time.Time{}), DisableBackgroundExpiry: true})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := core.NewRedisEngine(core.RedisConfig{Clock: clock.NewSim(time.Time{}), DisableBackgroundExpiry: true})
	if err != nil {
		t.Fatal(err)
	}
	r, err := New([]core.Engine{good, &failingEngine{bad}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Select(gdpr.ByUser("u001")); !errors.Is(err, errBroken) {
		t.Fatalf("select err = %v, want wrapped errBroken", err)
	}
	if _, err := r.SelectKeys(gdpr.ByUser("u001")); !errors.Is(err, errBroken) {
		t.Fatalf("select-keys err = %v, want wrapped errBroken", err)
	}
}

func TestRouterFeaturesReportTopology(t *testing.T) {
	r := newMemRouter(t, 4)
	f := r.Features()
	if f["shards"] != "4" || !strings.Contains(f["engine"], "x4") {
		t.Fatalf("features = %v", f)
	}
}

func TestNewRejectsEmpty(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty router should fail")
	}
	if _, err := OpenRedis(0, core.RedisConfig{}); err == nil {
		t.Fatal("0 shards should fail")
	}
}

// TestShardedClientsImplementBatchCreator: the wrapped sharded DB must
// batch (loads fan out per shard) while the plain Redis client must not
// (the paper's one-command-per-record load shape).
func TestShardedClientsImplementBatchCreator(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	sharded, err := OpenRedis(2, core.RedisConfig{Clock: sim, DisableBackgroundExpiry: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	if _, ok := sharded.(core.BatchCreator); !ok {
		t.Fatal("sharded redis DB must implement BatchCreator")
	}
	plain, err := core.OpenRedis(core.RedisConfig{Clock: sim, DisableBackgroundExpiry: true})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if _, ok := interface{}(plain).(core.BatchCreator); ok {
		t.Fatal("plain redis client must NOT implement BatchCreator")
	}
}

// TestShardedCorrectnessOracle runs the §4.2.3 correctness pass against
// sharded engines: every query family must return exactly what the
// in-memory oracle expects, i.e. N shards behave like one store.
func TestShardedCorrectnessOracle(t *testing.T) {
	for _, tc := range []struct {
		engine string
		shards int
	}{
		{"redis", 3},
		{"postgres", 2},
	} {
		t.Run(fmt.Sprintf("%s-%d", tc.engine, tc.shards), func(t *testing.T) {
			sim := clock.NewSim(time.Time{})
			cfg := core.Config{Records: 300, Operations: 200, Threads: 2, Seed: 7}.WithDefaults()
			open := func() (core.DB, *core.Dataset, error) {
				db, err := Open(tc.engine, tc.shards, t.TempDir(), core.Full(), sim, true, audit.PipeAsync, 0, core.Tuning{})
				if err != nil {
					return nil, nil, err
				}
				ds, _, err := core.Load(db, cfg, sim)
				if err != nil {
					db.Close()
					return nil, nil, err
				}
				return db, ds, nil
			}
			rep, err := core.ValidateAll(open, sim, true)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Score() != 100 {
				t.Fatalf("correctness = %.2f%% (%d/%d)\nmismatches: %s",
					rep.Score(), rep.Matched, rep.Total, strings.Join(rep.Mismatches, "\n  "))
			}
		})
	}
}

// TestShardedWorkloadsRun drives all four Table 2a workloads end to end
// on sharded engines, including the audit-backed regulator workload.
func TestShardedWorkloadsRun(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	cfg := core.Config{Records: 300, Operations: 150, Threads: 4, Seed: 5}.WithDefaults()
	for _, engine := range []string{"redis", "postgres"} {
		db, err := Open(engine, 3, t.TempDir(), core.Full(), sim, true, audit.PipeBatched, 0, core.Tuning{})
		if err != nil {
			t.Fatal(err)
		}
		ds, _, err := core.Load(db, cfg, sim)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range core.WorkloadNames() {
			run, err := core.Run(db, ds, name, sim)
			if err != nil {
				t.Fatalf("%s/%s: %v", engine, name, err)
			}
			if run.TotalErrors() != 0 {
				t.Fatalf("%s/%s errors: %s", engine, name, run.Summary())
			}
		}
		if _, err := db.SpaceUsage(); err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedRedisPersistsAcrossReopen: each shard replays its own AOF.
func TestShardedRedisPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	sim := clock.NewSim(time.Time{})
	cfg := core.Config{Records: 60, Operations: 5, Threads: 1, Seed: 3}.WithDefaults()
	db, err := Open("redis", 3, dir, core.Full(), sim, true, audit.PipeAsync, 0, core.Tuning{})
	if err != nil {
		t.Fatal(err)
	}
	ds, _, err := core.Load(db, cfg, sim)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open("redis", 3, dir, core.Full(), sim, true, audit.PipeAsync, 0, core.Tuning{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for _, i := range []int{0, 30, 59} {
		got, err := db2.ReadData(core.ControllerActor(), gdpr.ByKey(ds.KeyAt(i)))
		if err != nil || len(got) != 1 {
			t.Fatalf("after reopen, record %d: %d records err=%v", i, len(got), err)
		}
	}
}

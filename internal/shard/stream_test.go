package shard

import (
	"io"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/difftest"
	"repro/internal/gdpr"
)

// Streaming legs of the shard differential matrix: the scatter-gather
// merge cursor (per-shard streams, bounded per-shard buffers) must
// reproduce the materialized scatter-gather Select exactly — the same
// transcript, byte for byte — for both engine models, at chunk sizes
// that force merge boundaries inside every multi-shard result.

func TestShardStreamingTranscriptMatchesMaterialized(t *testing.T) {
	cfg := core.Config{Records: 240, Operations: 10, Threads: 2, Seed: 42}.WithDefaults()
	comp := core.Compliance{Logging: true, AccessControl: true, Strict: true, TimelyDeletion: true}
	idx := comp
	idx.MetadataIndexing = true
	for _, v := range []struct {
		name      string
		engine    string
		shards    int
		comp      core.Compliance
		kvstripes int
	}{
		{"redis-4shard", "redis", 4, comp, 0},
		{"redis-4shard-indexed", "redis", 4, idx, 0},
		{"redis-4shard-striped-indexed", "redis", 4, idx, 4},
		{"postgres-3shard", "postgres", 3, comp, 0},
	} {
		v := v
		t.Run(v.name, func(t *testing.T) {
			run := func(chunk int, streamed bool) []string {
				sim := clock.NewSim(time.Unix(1_500_000_000, 0))
				db, err := Open(v.engine, v.shards, t.TempDir(), v.comp, sim, true, audit.PipeSync, v.kvstripes, core.Tuning{})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { db.Close() })
				ds, _, err := core.Load(db, cfg, sim)
				if err != nil {
					t.Fatal(err)
				}
				under := core.DB(db)
				if streamed {
					under = difftest.StreamDB{DB: db, Chunk: chunk}
				}
				return difftest.Transcript(t, under, ds, sim)
			}
			want := run(0, false)
			for _, chunk := range []int{1, 3, 0} {
				got := run(chunk, true)
				difftest.AssertEqual(t, "materialized", want, "streamed", got)
			}
		})
	}
}

// TestShardStreamCloseMidStream pins the merge cursor's lifetime
// contract: Close mid-stream cancels the per-shard workers and returns
// only after they exit, and the router stays fully usable.
func TestShardStreamCloseMidStream(t *testing.T) {
	cfg := core.Config{Records: 400, Seed: 8}.WithDefaults()
	sim := clock.NewSim(time.Unix(1_500_000_000, 0))
	comp := core.Compliance{AccessControl: true, Strict: true, MetadataIndexing: true}
	db, err := Open("redis", 4, t.TempDir(), comp, sim, true, audit.PipeSync, 2, core.Tuning{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ds, _, err := core.Load(db, cfg, sim)
	if err != nil {
		t.Fatal(err)
	}
	sr, ok := db.(core.StreamReader)
	if !ok {
		t.Fatalf("%T does not implement StreamReader", db)
	}
	reg := core.RegulatorActor()
	sel := gdpr.ByUser(ds.UserName(0))
	for i := 0; i < 8; i++ {
		cur, err := sr.ReadMetadataStream(reg, sel, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cur.Next(); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if err := cur.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// A full drain after many abandoned streams still sees everything.
	cur, err := sr.ReadMetadataStream(reg, sel, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Drain(cur)
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.ReadMetadata(reg, sel)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || len(got) == 0 {
		t.Fatalf("drain after aborted streams saw %d records, want %d (>0)", len(got), len(want))
	}
}

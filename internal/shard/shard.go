// Package shard adds horizontal partitioning beneath the compliance
// middleware: a Router hash-partitions personal-data records by key
// across N storage engines (Redis-model kvstores or PostgreSQL-model
// relstores, each with its own AOF/WAL and expiry loop) and implements
// core.Engine itself, so core.Wrap layers the full GDPR compliance stack
// — access control, audit, redaction, transit encryption, strict
// validation — over the whole fleet exactly as it does over one engine.
//
// Routing rules:
//
//   - keyed operations (Put, Get, Update, Exists, key selectors) touch
//     exactly one shard, chosen by FNV-1a hash of the key;
//   - attribute selectors (BY-PUR|USR|OBJ|DEC|SHR|TTL) scatter to every
//     shard in parallel and gather merged results, with per-shard errors
//     aggregated via errors.Join;
//   - batched loads split the batch by shard and ingest the parts
//     concurrently — the load phase fans out per shard;
//   - deletes group their keys by shard and run concurrently, summing
//     per-shard counts.
//
// Consistency model: per-key linearizability only. Each key lives on one
// shard and inherits that engine's per-key atomicity (read-modify-write
// under the engine lock), so the middleware's apply-time re-checks still
// hold. Cross-shard operations are NOT atomic: a scatter-gather read is
// not a snapshot — it observes each shard at a slightly different
// instant, and a multi-record mutation (update/delete by attribute) that
// fails on one shard may already have applied on another. That is the
// same contract the single-engine stubs offer for multi-record
// operations (they mutate record by record), which is why the oracle
// validation passes unchanged on sharded engines.
package shard

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/gdpr"
)

// Router is a core.Engine that partitions records across child engines.
type Router struct {
	shards []core.Engine
}

// New builds a Router over the given engines. The shard count is fixed
// for the lifetime of the dataset (keys are placed by hash modulo N;
// there is no resharding).
func New(shards []core.Engine) (*Router, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: need at least one engine")
	}
	return &Router{shards: shards}, nil
}

// Shards reports the shard count.
func (r *Router) Shards() int { return len(r.shards) }

// shardIndex places a key on its owning shard by FNV-1a hash. The
// modulo stays in uint32 so the index is valid on 32-bit ints too.
func (r *Router) shardIndex(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(r.shards)))
}

// shardFor returns the engine owning key.
func (r *Router) shardFor(key string) core.Engine {
	return r.shards[r.shardIndex(key)]
}

// scatter runs fn once per shard, concurrently when there is more than
// one, and aggregates every shard's error. The first shard failure
// cancels ctx, so sibling workers that have not started yet skip their
// engine call and workers with cooperation points (the per-record
// PutBatch fallback) stop between items instead of running a doomed
// operation to completion into the errors.Join aggregation.
// Cancellation noise (context.Canceled) is dropped from the aggregate —
// only root-cause shard errors surface.
func (r *Router) scatter(fn func(ctx context.Context, i int, e core.Engine) error) error {
	if len(r.shards) == 1 {
		return fn(context.Background(), 0, r.shards[0])
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i, e := range r.shards {
		wg.Add(1)
		go func(i int, e core.Engine) {
			defer wg.Done()
			if ctx.Err() != nil {
				return
			}
			if err := fn(ctx, i, e); err != nil && !errors.Is(err, context.Canceled) {
				errs[i] = err
				cancel()
			}
		}(i, e)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// scatterAll runs fn once per shard, concurrently, always visiting
// every shard even after a failure — the shape for operations that must
// not be skipped on sibling error (Close must release every engine,
// Delete must report what actually happened per shard).
func (r *Router) scatterAll(fn func(i int, e core.Engine) error) error {
	if len(r.shards) == 1 {
		return fn(0, r.shards[0])
	}
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i, e := range r.shards {
		wg.Add(1)
		go func(i int, e core.Engine) {
			defer wg.Done()
			errs[i] = fn(i, e)
		}(i, e)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// groupKeys splits keys into per-shard buckets, preserving each shard's
// relative order.
func (r *Router) groupKeys(keys []string) [][]string {
	groups := make([][]string, len(r.shards))
	for _, k := range keys {
		i := r.shardIndex(k)
		groups[i] = append(groups[i], k)
	}
	return groups
}

// Put implements core.Engine: one shard, chosen by key.
func (r *Router) Put(rec gdpr.Record) error { return r.shardFor(rec.Key).Put(rec) }

// PutBatch implements core.BatchEngine: the batch splits by shard and the
// parts ingest concurrently — each shard takes its engine's native bulk
// path when it has one (relstore's InsertBatch) and falls back to
// per-record puts otherwise (the kvstore keeps one command per record,
// but N shards absorb them in parallel).
func (r *Router) PutBatch(recs []gdpr.Record) error {
	groups := make([][]gdpr.Record, len(r.shards))
	for _, rec := range recs {
		i := r.shardIndex(rec.Key)
		groups[i] = append(groups[i], rec)
	}
	return r.scatter(func(ctx context.Context, i int, e core.Engine) error {
		if len(groups[i]) == 0 {
			return nil
		}
		if be, ok := e.(core.BatchEngine); ok {
			return be.PutBatch(groups[i])
		}
		for _, rec := range groups[i] {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := e.Put(rec); err != nil {
				return err
			}
		}
		return nil
	})
}

// Get implements core.Engine: one shard.
func (r *Router) Get(key string) (gdpr.Record, bool, error) {
	return r.shardFor(key).Get(key)
}

// Select implements core.Engine: key selectors route to one shard;
// attribute selectors scatter to every shard in parallel and gather the
// merged result set.
func (r *Router) Select(sel gdpr.Selector) ([]gdpr.Record, error) {
	if sel.Attr == gdpr.AttrKey {
		return r.shardFor(sel.Value).Select(sel)
	}
	parts := make([][]gdpr.Record, len(r.shards))
	err := r.scatter(func(_ context.Context, i int, e core.Engine) error {
		recs, err := e.Select(sel)
		parts[i] = recs
		return err
	})
	if err != nil {
		return nil, err
	}
	return flatten(parts), nil
}

// SelectKeys implements core.Engine with the same scatter-gather shape.
func (r *Router) SelectKeys(sel gdpr.Selector) ([]string, error) {
	if sel.Attr == gdpr.AttrKey {
		return r.shardFor(sel.Value).SelectKeys(sel)
	}
	parts := make([][]string, len(r.shards))
	err := r.scatter(func(_ context.Context, i int, e core.Engine) error {
		keys, err := e.SelectKeys(sel)
		parts[i] = keys
		return err
	})
	if err != nil {
		return nil, err
	}
	return flatten(parts), nil
}

// Update implements core.Engine: one shard, preserving the child
// engine's lock-time atomicity for the middleware's re-checks.
func (r *Router) Update(key string, mutate func(gdpr.Record) (gdpr.Record, error)) (bool, error) {
	return r.shardFor(key).Update(key, mutate)
}

// Delete implements core.Engine: keys group by owning shard and the
// groups delete concurrently; the count is the sum over shards.
func (r *Router) Delete(keys []string) (int, error) {
	groups := r.groupKeys(keys)
	counts := make([]int, len(r.shards))
	err := r.scatterAll(func(i int, e core.Engine) error {
		if len(groups[i]) == 0 {
			return nil
		}
		n, err := e.Delete(groups[i])
		counts[i] = n
		return err
	})
	total := 0
	for _, n := range counts {
		total += n
	}
	return total, err
}

// Exists implements core.Engine: one shard.
func (r *Router) Exists(key string) (bool, error) { return r.shardFor(key).Exists(key) }

// Features implements core.Engine: the first shard's facts plus the
// sharding topology.
func (r *Router) Features() map[string]string {
	f := r.shards[0].Features()
	f["shards"] = fmt.Sprintf("%d", len(r.shards))
	f["engine"] = fmt.Sprintf("sharded(%s x%d)", f["engine"], len(r.shards))
	return f
}

// SpaceUsage implements core.Engine: the sum over shards.
func (r *Router) SpaceUsage() (core.SpaceUsage, error) {
	parts := make([]core.SpaceUsage, len(r.shards))
	err := r.scatterAll(func(i int, e core.Engine) error {
		u, err := e.SpaceUsage()
		parts[i] = u
		return err
	})
	var total core.SpaceUsage
	for _, u := range parts {
		total.PersonalBytes += u.PersonalBytes
		total.TotalBytes += u.TotalBytes
	}
	return total, err
}

// Close implements core.Engine: every shard closes; errors aggregate.
// (Per-shard engine counters need no router rollup: each kvstore
// registers an obs collector under the same series names, and the
// registry sums same-name emissions at snapshot time.)
func (r *Router) Close() error {
	return r.scatterAll(func(_ int, e core.Engine) error { return e.Close() })
}

func flatten[T any](parts [][]T) []T {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	if n == 0 {
		return nil
	}
	out := make([]T, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// ---------------------------------------------------------------------------
// Streaming scatter-gather

// SelectStream implements core.StreamEngine: key selectors stream from
// their one owning shard; attribute selectors run one streaming worker
// per shard, each driving that shard's cursor into a buffered channel,
// while the merge cursor drains the shards in index order — the same
// concatenation flatten gives the materialized path, so chunked and
// materialized results agree byte-for-byte on a quiescent fleet.
//
// Memory stays bounded at O(shards x chunk): each worker holds at most
// one chunk in flight plus one parked in its channel, so a slow
// consumer back-pressures every shard instead of buffering whole
// per-shard result sets. The first shard error (and Close) cancels the
// shared context, which unparks and retires every worker; Close waits
// for them, so no goroutines or engine cursors outlive the stream.
func (r *Router) SelectStream(sel gdpr.Selector, chunk int) (core.RecordCursor, error) {
	if sel.Attr == gdpr.AttrKey {
		return core.StreamOf(r.shardFor(sel.Value), sel, chunk)
	}
	if chunk <= 0 {
		chunk = core.DefaultStreamChunk
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &mergeCursor{cancel: cancel, chans: make([]chan shardChunk, len(r.shards))}
	for i, e := range r.shards {
		ch := make(chan shardChunk, 1)
		m.chans[i] = ch
		m.wg.Add(1)
		go func(e core.Engine, ch chan shardChunk) {
			defer m.wg.Done()
			defer close(ch)
			terminal := func(err error) {
				select {
				case ch <- shardChunk{err: err}:
				case <-ctx.Done():
				}
			}
			cur, err := core.StreamOf(e, sel, chunk)
			if err != nil {
				terminal(err)
				return
			}
			defer cur.Close()
			for {
				recs, err := cur.Next()
				if err == io.EOF {
					return
				}
				if err != nil {
					terminal(err)
					return
				}
				select {
				case ch <- shardChunk{recs: recs}:
				case <-ctx.Done():
					return
				}
			}
		}(e, ch)
	}
	return m, nil
}

// shardChunk is one worker-to-merger hand-off: a batch of records or a
// terminal error.
type shardChunk struct {
	recs []gdpr.Record
	err  error
}

// mergeCursor drains per-shard channels in shard-index order.
type mergeCursor struct {
	cancel context.CancelFunc
	chans  []chan shardChunk
	wg     sync.WaitGroup
	cur    int
	err    error
	done   bool
}

func (m *mergeCursor) Next() ([]gdpr.Record, error) {
	if m.err != nil {
		return nil, m.err
	}
	if m.done {
		return nil, io.EOF
	}
	for m.cur < len(m.chans) {
		c, ok := <-m.chans[m.cur]
		if !ok {
			m.cur++
			continue
		}
		if c.err != nil {
			m.err = c.err
			m.cancel()
			return nil, c.err
		}
		return c.recs, nil
	}
	m.done = true
	return nil, io.EOF
}

func (m *mergeCursor) Close() error {
	m.cancel()
	m.wg.Wait()
	m.done = true
	return nil
}

var (
	_ core.BatchEngine  = (*Router)(nil)
	_ core.StreamEngine = (*Router)(nil)
)

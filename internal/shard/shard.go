// Package shard adds horizontal partitioning beneath the compliance
// middleware: a Router hash-partitions personal-data records by key
// across N storage engines (Redis-model kvstores or PostgreSQL-model
// relstores, each with its own AOF/WAL and expiry loop) and implements
// core.Engine itself, so core.Wrap layers the full GDPR compliance stack
// — access control, audit, redaction, transit encryption, strict
// validation — over the whole fleet exactly as it does over one engine.
//
// Routing rules:
//
//   - keyed operations (Put, Get, Update, Exists, key selectors) touch
//     exactly one shard, chosen by FNV-1a hash of the key;
//   - attribute selectors (BY-PUR|USR|OBJ|DEC|SHR|TTL) scatter to every
//     shard in parallel and gather merged results, with per-shard errors
//     aggregated via errors.Join;
//   - batched loads split the batch by shard and ingest the parts
//     concurrently — the load phase fans out per shard;
//   - deletes group their keys by shard and run concurrently, summing
//     per-shard counts.
//
// Consistency model: per-key linearizability only. Each key lives on one
// shard and inherits that engine's per-key atomicity (read-modify-write
// under the engine lock), so the middleware's apply-time re-checks still
// hold. Cross-shard operations are NOT atomic: a scatter-gather read is
// not a snapshot — it observes each shard at a slightly different
// instant, and a multi-record mutation (update/delete by attribute) that
// fails on one shard may already have applied on another. That is the
// same contract the single-engine stubs offer for multi-record
// operations (they mutate record by record), which is why the oracle
// validation passes unchanged on sharded engines.
package shard

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/core"
	"repro/internal/gdpr"
)

// Router is a core.Engine that partitions records across child engines.
type Router struct {
	shards []core.Engine
}

// New builds a Router over the given engines. The shard count is fixed
// for the lifetime of the dataset (keys are placed by hash modulo N;
// there is no resharding).
func New(shards []core.Engine) (*Router, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: need at least one engine")
	}
	return &Router{shards: shards}, nil
}

// Shards reports the shard count.
func (r *Router) Shards() int { return len(r.shards) }

// shardIndex places a key on its owning shard by FNV-1a hash. The
// modulo stays in uint32 so the index is valid on 32-bit ints too.
func (r *Router) shardIndex(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(r.shards)))
}

// shardFor returns the engine owning key.
func (r *Router) shardFor(key string) core.Engine {
	return r.shards[r.shardIndex(key)]
}

// scatter runs fn once per shard, concurrently when there is more than
// one, and aggregates every shard's error.
func (r *Router) scatter(fn func(i int, e core.Engine) error) error {
	if len(r.shards) == 1 {
		return fn(0, r.shards[0])
	}
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i, e := range r.shards {
		wg.Add(1)
		go func(i int, e core.Engine) {
			defer wg.Done()
			errs[i] = fn(i, e)
		}(i, e)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// groupKeys splits keys into per-shard buckets, preserving each shard's
// relative order.
func (r *Router) groupKeys(keys []string) [][]string {
	groups := make([][]string, len(r.shards))
	for _, k := range keys {
		i := r.shardIndex(k)
		groups[i] = append(groups[i], k)
	}
	return groups
}

// Put implements core.Engine: one shard, chosen by key.
func (r *Router) Put(rec gdpr.Record) error { return r.shardFor(rec.Key).Put(rec) }

// PutBatch implements core.BatchEngine: the batch splits by shard and the
// parts ingest concurrently — each shard takes its engine's native bulk
// path when it has one (relstore's InsertBatch) and falls back to
// per-record puts otherwise (the kvstore keeps one command per record,
// but N shards absorb them in parallel).
func (r *Router) PutBatch(recs []gdpr.Record) error {
	groups := make([][]gdpr.Record, len(r.shards))
	for _, rec := range recs {
		i := r.shardIndex(rec.Key)
		groups[i] = append(groups[i], rec)
	}
	return r.scatter(func(i int, e core.Engine) error {
		if len(groups[i]) == 0 {
			return nil
		}
		if be, ok := e.(core.BatchEngine); ok {
			return be.PutBatch(groups[i])
		}
		for _, rec := range groups[i] {
			if err := e.Put(rec); err != nil {
				return err
			}
		}
		return nil
	})
}

// Get implements core.Engine: one shard.
func (r *Router) Get(key string) (gdpr.Record, bool, error) {
	return r.shardFor(key).Get(key)
}

// Select implements core.Engine: key selectors route to one shard;
// attribute selectors scatter to every shard in parallel and gather the
// merged result set.
func (r *Router) Select(sel gdpr.Selector) ([]gdpr.Record, error) {
	if sel.Attr == gdpr.AttrKey {
		return r.shardFor(sel.Value).Select(sel)
	}
	parts := make([][]gdpr.Record, len(r.shards))
	err := r.scatter(func(i int, e core.Engine) error {
		recs, err := e.Select(sel)
		parts[i] = recs
		return err
	})
	if err != nil {
		return nil, err
	}
	return flatten(parts), nil
}

// SelectKeys implements core.Engine with the same scatter-gather shape.
func (r *Router) SelectKeys(sel gdpr.Selector) ([]string, error) {
	if sel.Attr == gdpr.AttrKey {
		return r.shardFor(sel.Value).SelectKeys(sel)
	}
	parts := make([][]string, len(r.shards))
	err := r.scatter(func(i int, e core.Engine) error {
		keys, err := e.SelectKeys(sel)
		parts[i] = keys
		return err
	})
	if err != nil {
		return nil, err
	}
	return flatten(parts), nil
}

// Update implements core.Engine: one shard, preserving the child
// engine's lock-time atomicity for the middleware's re-checks.
func (r *Router) Update(key string, mutate func(gdpr.Record) (gdpr.Record, error)) (bool, error) {
	return r.shardFor(key).Update(key, mutate)
}

// Delete implements core.Engine: keys group by owning shard and the
// groups delete concurrently; the count is the sum over shards.
func (r *Router) Delete(keys []string) (int, error) {
	groups := r.groupKeys(keys)
	counts := make([]int, len(r.shards))
	err := r.scatter(func(i int, e core.Engine) error {
		if len(groups[i]) == 0 {
			return nil
		}
		n, err := e.Delete(groups[i])
		counts[i] = n
		return err
	})
	total := 0
	for _, n := range counts {
		total += n
	}
	return total, err
}

// Exists implements core.Engine: one shard.
func (r *Router) Exists(key string) (bool, error) { return r.shardFor(key).Exists(key) }

// Features implements core.Engine: the first shard's facts plus the
// sharding topology.
func (r *Router) Features() map[string]string {
	f := r.shards[0].Features()
	f["shards"] = fmt.Sprintf("%d", len(r.shards))
	f["engine"] = fmt.Sprintf("sharded(%s x%d)", f["engine"], len(r.shards))
	return f
}

// SpaceUsage implements core.Engine: the sum over shards.
func (r *Router) SpaceUsage() (core.SpaceUsage, error) {
	parts := make([]core.SpaceUsage, len(r.shards))
	err := r.scatter(func(i int, e core.Engine) error {
		u, err := e.SpaceUsage()
		parts[i] = u
		return err
	})
	var total core.SpaceUsage
	for _, u := range parts {
		total.PersonalBytes += u.PersonalBytes
		total.TotalBytes += u.TotalBytes
	}
	return total, err
}

// Close implements core.Engine: every shard closes; errors aggregate.
// (Per-shard engine counters need no router rollup: each kvstore
// registers an obs collector under the same series names, and the
// registry sums same-name emissions at snapshot time.)
func (r *Router) Close() error {
	return r.scatter(func(_ int, e core.Engine) error { return e.Close() })
}

func flatten[T any](parts [][]T) []T {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	if n == 0 {
		return nil
	}
	out := make([]T, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

var _ core.BatchEngine = (*Router)(nil)

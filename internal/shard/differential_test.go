package shard

import (
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/difftest"
	"repro/internal/gdpr"
)

// The cross-engine differential test: one seeded mini-workload (the
// shared internal/difftest harness) replayed against the Redis model
// (scanning and metadata-indexed), the PostgreSQL model (indexed) and
// sharded variants of both, recording every query's result as a
// canonical, order-insensitive transcript line. All engines must produce
// byte-identical transcripts — same selector results, same mutation
// counts — which is the acceptance bar for "compliance above storage":
// the middleware, not the backend, defines observable behavior, and the
// index layer changes cost, never results.

// variant opens one engine under test.
type variant struct {
	name string
	open func(t *testing.T, sim *clock.Sim) core.DB
}

func diffVariants() []variant {
	comp := core.Compliance{Logging: true, AccessControl: true, Strict: true, TimelyDeletion: true}
	idx := comp
	idx.MetadataIndexing = true
	mkStriped := func(engine string, shards int, c core.Compliance, policy audit.Pipeline, kvstripes int) func(t *testing.T, sim *clock.Sim) core.DB {
		return func(t *testing.T, sim *clock.Sim) core.DB {
			t.Helper()
			db, err := Open(engine, shards, t.TempDir(), c, sim, true, policy, kvstripes, core.Tuning{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { db.Close() })
			return db
		}
	}
	mk := func(engine string, shards int, c core.Compliance, policy audit.Pipeline) func(t *testing.T, sim *clock.Sim) core.DB {
		return mkStriped(engine, shards, c, policy, 0)
	}
	return []variant{
		{"redis", func(t *testing.T, sim *clock.Sim) core.DB {
			t.Helper()
			db, err := core.OpenRedis(core.RedisConfig{
				Dir: t.TempDir(), Compliance: comp, Clock: sim, DisableBackgroundExpiry: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { db.Close() })
			return db
		}},
		{"postgres", func(t *testing.T, sim *clock.Sim) core.DB {
			t.Helper()
			db, err := core.OpenPostgres(core.PostgresConfig{
				Dir: t.TempDir(), Compliance: idx, Clock: sim, DisableTTLDaemon: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { db.Close() })
			return db
		}},
		{"redis-indexed", func(t *testing.T, sim *clock.Sim) core.DB {
			t.Helper()
			db, err := core.OpenRedis(core.RedisConfig{
				Dir: t.TempDir(), Compliance: idx, Clock: sim, DisableBackgroundExpiry: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { db.Close() })
			return db
		}},
		{"redis-1shard", mk("redis", 1, comp, audit.PipeSync)},
		{"redis-4shard", mk("redis", 4, comp, audit.PipeSync)},
		{"redis-4shard-indexed", mk("redis", 4, idx, audit.PipeSync)},
		{"postgres-3shard", mk("postgres", 3, comp, audit.PipeSync)},
		// The audit pipeline must never change observable behavior: the
		// same legs under batched and async audit stay byte-identical.
		// The kvstore concurrency profile must never change observable
		// behavior: lock-striped legs (with their staged group-commit AOF)
		// stay byte-identical to the single-mutex baseline.
		{"redis-striped", func(t *testing.T, sim *clock.Sim) core.DB {
			t.Helper()
			db, err := core.OpenRedis(core.RedisConfig{
				Dir: t.TempDir(), Compliance: comp, Clock: sim, DisableBackgroundExpiry: true,
				KVStripes: 8,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { db.Close() })
			return db
		}},
		{"redis-striped-indexed", func(t *testing.T, sim *clock.Sim) core.DB {
			t.Helper()
			db, err := core.OpenRedis(core.RedisConfig{
				Dir: t.TempDir(), Compliance: idx, Clock: sim, DisableBackgroundExpiry: true,
				KVStripes: 8,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { db.Close() })
			return db
		}},
		{"redis-4shard-striped", mkStriped("redis", 4, comp, audit.PipeSync, 4)},
		{"redis-batched-audit", mk("redis", 1, comp, audit.PipeBatched)},
		{"redis-async-audit", mk("redis", 1, comp, audit.PipeAsync)},
		{"redis-4shard-async-audit", mk("redis", 4, comp, audit.PipeAsync)},
		{"postgres-async-audit", mk("postgres", 1, comp, audit.PipeAsync)},
		{"postgres-3shard-batched-audit", mk("postgres", 3, comp, audit.PipeBatched)},
	}
}

func TestDifferentialAcrossEnginesAndShardCounts(t *testing.T) {
	cfg := core.Config{Records: 240, Operations: 10, Threads: 2, Seed: 42}.WithDefaults()
	var wantName string
	var want []string
	for _, v := range diffVariants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			sim := clock.NewSim(time.Unix(1_500_000_000, 0))
			db := v.open(t, sim)
			ds, _, err := core.Load(db, cfg, sim)
			if err != nil {
				t.Fatal(err)
			}
			got := difftest.Transcript(t, db, ds, sim)
			if want == nil {
				wantName, want = v.name, got
				return
			}
			difftest.AssertEqual(t, wantName, want, v.name, got)
		})
	}
}

// TestShardCountInvariantUnderExpiry pins the 1-shard-vs-N-shard
// equivalence through the TTL path within one engine model: after the
// clock passes the short-TTL horizon, scans hide the same records and
// DELETE-BY-TTL purges the same count regardless of shard count.
func TestShardCountInvariantUnderExpiry(t *testing.T) {
	cfg := core.Config{
		Records: 200, Operations: 10, Threads: 1, Seed: 9,
		ShortTTLFraction: 0.25, ShortTTL: time.Minute,
	}.WithDefaults()
	comp := core.Compliance{Logging: true, AccessControl: true, Strict: true, TimelyDeletion: true}
	run := func(engine string, shards int) (visible int, purged int) {
		sim := clock.NewSim(time.Unix(1_500_000_000, 0))
		db, err := Open(engine, shards, t.TempDir(), comp, sim, true, audit.PipeAsync, 0, core.Tuning{})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		ds, _, err := core.Load(db, cfg, sim)
		if err != nil {
			t.Fatal(err)
		}
		sim.Advance(2 * time.Minute)
		recs, err := db.ReadData(core.ControllerActor(), gdpr.Selector{Attr: gdpr.AttrSource, Value: ds.SourceName(0)})
		if err != nil {
			t.Fatal(err)
		}
		n, err := db.DeleteRecord(core.ControllerActor(), gdpr.ByExpiredAt(sim.Now()))
		if err != nil {
			t.Fatal(err)
		}
		return len(recs), n
	}
	for _, engine := range []string{"redis", "postgres"} {
		v1, p1 := run(engine, 1)
		v4, p4 := run(engine, 4)
		if v1 != v4 || p1 != p4 {
			t.Fatalf("%s: 1-shard (visible=%d purged=%d) != 4-shard (visible=%d purged=%d)",
				engine, v1, p1, v4, p4)
		}
		if p1 == 0 {
			t.Fatalf("%s: TTL purge deleted nothing — test is vacuous", engine)
		}
		t.Logf("%s: visible=%d purged=%d at both shard counts", engine, v1, p1)
	}
}

package shard

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/gdpr"
)

// The cross-engine differential test: one seeded mini-workload replayed
// against the Redis model (scanning and metadata-indexed), the PostgreSQL
// model (indexed) and sharded variants of both, recording every query's
// result as a canonical, order-insensitive transcript line. All engines
// must produce byte-identical transcripts — same selector results, same
// mutation counts — which is the acceptance bar for "compliance above
// storage": the middleware, not the backend, defines observable behavior,
// and the index layer changes cost, never results.

// variant opens one engine under test.
type variant struct {
	name string
	open func(t *testing.T, sim *clock.Sim) core.DB
}

func diffVariants() []variant {
	comp := core.Compliance{Logging: true, AccessControl: true, Strict: true, TimelyDeletion: true}
	idx := comp
	idx.MetadataIndexing = true
	mk := func(engine string, shards int, c core.Compliance) func(t *testing.T, sim *clock.Sim) core.DB {
		return func(t *testing.T, sim *clock.Sim) core.DB {
			t.Helper()
			db, err := Open(engine, shards, t.TempDir(), c, sim, true)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { db.Close() })
			return db
		}
	}
	return []variant{
		{"redis", func(t *testing.T, sim *clock.Sim) core.DB {
			t.Helper()
			db, err := core.OpenRedis(core.RedisConfig{
				Dir: t.TempDir(), Compliance: comp, Clock: sim, DisableBackgroundExpiry: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { db.Close() })
			return db
		}},
		{"postgres", func(t *testing.T, sim *clock.Sim) core.DB {
			t.Helper()
			db, err := core.OpenPostgres(core.PostgresConfig{
				Dir: t.TempDir(), Compliance: idx, Clock: sim, DisableTTLDaemon: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { db.Close() })
			return db
		}},
		{"redis-indexed", func(t *testing.T, sim *clock.Sim) core.DB {
			t.Helper()
			db, err := core.OpenRedis(core.RedisConfig{
				Dir: t.TempDir(), Compliance: idx, Clock: sim, DisableBackgroundExpiry: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { db.Close() })
			return db
		}},
		{"redis-1shard", mk("redis", 1, comp)},
		{"redis-4shard", mk("redis", 4, comp)},
		{"redis-4shard-indexed", mk("redis", 4, idx)},
		{"postgres-3shard", mk("postgres", 3, comp)},
	}
}

// transcript runs the seeded mini-workload and renders each operation's
// outcome canonically (sorted keys, counts).
func transcript(t *testing.T, db core.DB, ds *core.Dataset, sim *clock.Sim) []string {
	t.Helper()
	var lines []string
	emitRecs := func(op string, recs []gdpr.Record, err error) {
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		keys := make([]string, len(recs))
		for i, r := range recs {
			keys[i] = r.Key
		}
		sort.Strings(keys)
		lines = append(lines, fmt.Sprintf("%s -> [%s]", op, strings.Join(keys, ",")))
	}
	emitN := func(op string, n int, err error) {
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		lines = append(lines, fmt.Sprintf("%s -> n=%d", op, n))
	}

	cfg := ds.Cfg
	for round := 0; round < 6; round++ {
		p := round % cfg.Purposes
		u := round * 3 % ds.Users
		s := round % cfg.Shares
		d := round % cfg.Decisions
		k := round * 17 % cfg.Records

		rec := ds.RecordAt(0)
		rec.Key = fmt.Sprintf("rec-diff-%04d", round)
		rec.Data = fmt.Sprintf("%0*d", cfg.DataSize, round)
		rec.Meta.User = ds.UserName(u)
		rec.Meta.Expiry = sim.Now().Add(cfg.DefaultTTL)
		if err := db.CreateRecord(core.ControllerActor(), rec); err != nil {
			t.Fatalf("create round %d: %v", round, err)
		}
		lines = append(lines, fmt.Sprintf("create(%s) -> ok", rec.Key))

		recs, err := db.ReadData(ds.ProcessorActor(p), gdpr.ByPurpose(ds.PurposeName(p)))
		emitRecs(fmt.Sprintf("read-data-by-pur(%d)", p), recs, err)
		recs, err = db.ReadData(ds.CustomerActor(u), gdpr.ByUser(ds.UserName(u)))
		emitRecs(fmt.Sprintf("read-data-by-usr(%d)", u), recs, err)
		recs, err = db.ReadData(ds.ProcessorActor(p), gdpr.ByObjection(ds.PurposeName(p)))
		emitRecs(fmt.Sprintf("read-data-by-obj(%d)", p), recs, err)
		recs, err = db.ReadData(ds.ProcessorActor(d), gdpr.ByDecision(ds.DecisionName(d)))
		emitRecs(fmt.Sprintf("read-data-by-dec(%d)", d), recs, err)
		recs, err = db.ReadMetadata(core.RegulatorActor(), gdpr.ByShare(ds.ShareName(s)))
		emitRecs(fmt.Sprintf("read-meta-by-shr(%d)", s), recs, err)
		for _, r := range recs {
			if r.Data != "" {
				t.Fatalf("metadata read leaked data for %q", r.Key)
			}
		}
		recs, err = db.ReadMetadata(core.RegulatorActor(), gdpr.ByUser(ds.UserName(u)))
		emitRecs(fmt.Sprintf("read-meta-by-usr(%d)", u), recs, err)

		n, err := db.UpdateMetadata(core.ControllerActor(), gdpr.ByUser(ds.UserName(u)),
			gdpr.Delta{Attr: gdpr.AttrSharing, Op: gdpr.DeltaAdd, Values: []string{ds.ShareName(s)}})
		emitN(fmt.Sprintf("update-meta-by-usr(%d)", u), n, err)
		n, err = db.UpdateMetadata(core.ControllerActor(), gdpr.ByPurpose(ds.PurposeName(p)),
			gdpr.Delta{Attr: gdpr.AttrTTL, Op: gdpr.DeltaSet, Expiry: sim.Now().Add(cfg.DefaultTTL)})
		emitN(fmt.Sprintf("update-meta-by-pur(%d)", p), n, err)
		n, err = db.UpdateMetadata(ds.CustomerActor(ds.OwnerOfKey(k)), gdpr.ByKey(ds.KeyAt(k)),
			gdpr.Delta{Attr: gdpr.AttrObjection, Op: gdpr.DeltaAdd, Values: []string{ds.PurposeName(p)}})
		emitN(fmt.Sprintf("update-meta-by-key(%d)", k), n, err)
		n, err = db.UpdateData(ds.CustomerActor(ds.OwnerOfKey(k)), ds.KeyAt(k),
			fmt.Sprintf("%0*d", cfg.DataSize, round))
		emitN(fmt.Sprintf("update-data-by-key(%d)", k), n, err)

		n, err = db.DeleteRecord(ds.CustomerActor(ds.OwnerOfKey(k)), gdpr.ByKey(ds.KeyAt(k)))
		emitN(fmt.Sprintf("delete-by-key(%d)", k), n, err)
		n, err = db.DeleteRecord(core.ControllerActor(), gdpr.ByUser(ds.UserName((u+5)%ds.Users)))
		emitN(fmt.Sprintf("delete-by-usr(%d)", (u+5)%ds.Users), n, err)
		n, err = db.DeleteRecord(core.ControllerActor(), gdpr.ByPurpose(ds.PurposeName((p+3)%cfg.Purposes)))
		emitN(fmt.Sprintf("delete-by-pur(%d)", (p+3)%cfg.Purposes), n, err)

		present, err := db.VerifyDeletion(core.RegulatorActor(),
			[]string{ds.KeyAt(k), ds.KeyAt((k + 1) % cfg.Records), "never-existed"})
		emitN("verify-deletion", present, err)
	}
	return lines
}

func TestDifferentialAcrossEnginesAndShardCounts(t *testing.T) {
	cfg := core.Config{Records: 240, Operations: 10, Threads: 2, Seed: 42}.WithDefaults()
	var wantName string
	var want []string
	for _, v := range diffVariants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			sim := clock.NewSim(time.Unix(1_500_000_000, 0))
			db := v.open(t, sim)
			ds, _, err := core.Load(db, cfg, sim)
			if err != nil {
				t.Fatal(err)
			}
			got := transcript(t, db, ds, sim)
			if want == nil {
				wantName, want = v.name, got
				return
			}
			if len(got) != len(want) {
				t.Fatalf("transcript length %d vs %s's %d", len(got), wantName, len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("diverged from %s at op %d:\n  %s: %s\n  %s: %s",
						wantName, i, wantName, want[i], v.name, got[i])
				}
			}
		})
	}
}

// TestShardCountInvariantUnderExpiry pins the 1-shard-vs-N-shard
// equivalence through the TTL path within one engine model: after the
// clock passes the short-TTL horizon, scans hide the same records and
// DELETE-BY-TTL purges the same count regardless of shard count.
func TestShardCountInvariantUnderExpiry(t *testing.T) {
	cfg := core.Config{
		Records: 200, Operations: 10, Threads: 1, Seed: 9,
		ShortTTLFraction: 0.25, ShortTTL: time.Minute,
	}.WithDefaults()
	comp := core.Compliance{Logging: true, AccessControl: true, Strict: true, TimelyDeletion: true}
	run := func(engine string, shards int) (visible int, purged int) {
		sim := clock.NewSim(time.Unix(1_500_000_000, 0))
		db, err := Open(engine, shards, t.TempDir(), comp, sim, true)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		ds, _, err := core.Load(db, cfg, sim)
		if err != nil {
			t.Fatal(err)
		}
		sim.Advance(2 * time.Minute)
		recs, err := db.ReadData(core.ControllerActor(), gdpr.Selector{Attr: gdpr.AttrSource, Value: ds.SourceName(0)})
		if err != nil {
			t.Fatal(err)
		}
		n, err := db.DeleteRecord(core.ControllerActor(), gdpr.ByExpiredAt(sim.Now()))
		if err != nil {
			t.Fatal(err)
		}
		return len(recs), n
	}
	for _, engine := range []string{"redis", "postgres"} {
		v1, p1 := run(engine, 1)
		v4, p4 := run(engine, 4)
		if v1 != v4 || p1 != p4 {
			t.Fatalf("%s: 1-shard (visible=%d purged=%d) != 4-shard (visible=%d purged=%d)",
				engine, v1, p1, v4, p4)
		}
		if p1 == 0 {
			t.Fatalf("%s: TTL purge deleted nothing — test is vacuous", engine)
		}
		t.Logf("%s: visible=%d purged=%d at both shard counts", engine, v1, p1)
	}
}

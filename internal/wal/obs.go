package wal

import "repro/internal/obs"

// Group-commit telemetry, reported to the process-wide registry. Both
// series fire once per leader fsync — the amortized point the group-commit
// design already funnels every committer through — so the append path
// itself stays untouched. wal_group_commit_lsns is the number of records
// one leader fsync made durable (the batching-efficiency signal: 1 means
// group commit degenerated to per-commit fsyncs).
var (
	obsWALBatchLSNs = obs.Default().Histogram("wal_group_commit_lsns")
	obsWALFsyncNs   = obs.Default().Histogram("wal_fsync_ns")
)

// Package wal is a write-ahead log for the relational engine, standing in
// for PostgreSQL's WAL. Every mutation is logged before it is applied;
// recovery replays intact records in LSN order and stops at the first
// corrupt or torn record.
//
// Each record is one securefs frame (optionally encrypted at rest — the
// LUKS substitution) containing:
//
//	lsn(8) | type(1) | crc32(4) | payload
//
// The CRC covers lsn, type and payload, catching corruption even on
// unencrypted files (encrypted files are additionally authenticated by
// AES-GCM).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/securefs"
)

// RecordType tags what a WAL record describes.
type RecordType byte

// Record types.
const (
	// RecInsert is a row insert; payload is table\x00key\x00rowbytes.
	RecInsert RecordType = 1
	// RecUpdate is a row update; payload layout matches RecInsert.
	RecUpdate RecordType = 2
	// RecDelete is a row delete; payload is table\x00key.
	RecDelete RecordType = 3
	// RecCheckpoint marks a consistent point; payload is free-form.
	RecCheckpoint RecordType = 4
)

func (t RecordType) String() string {
	switch t {
	case RecInsert:
		return "insert"
	case RecUpdate:
		return "update"
	case RecDelete:
		return "delete"
	case RecCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("RecordType(%d)", byte(t))
	}
}

// Record is one decoded WAL entry.
type Record struct {
	LSN     uint64
	Type    RecordType
	Payload []byte
}

// ErrCorrupt is returned when a record fails its CRC or framing checks.
var ErrCorrupt = errors.New("wal: corrupt record")

// SyncPolicy controls when the WAL reaches stable storage.
type SyncPolicy int

// Sync policies (PostgreSQL's synchronous_commit spectrum, reduced).
const (
	// SyncOnCommit makes every committed operation wait for an fsync
	// covering its record (synchronous_commit=on). The fsync is shared:
	// Append only buffers the record, and WaitDurable batches all
	// concurrent committers into one fsync (group commit), so N writers
	// pay ~1 fsync instead of N.
	SyncOnCommit SyncPolicy = iota
	// SyncBatched fsyncs at most once per second (off/local semantics).
	SyncBatched
	// SyncNever leaves flushing to the OS.
	SyncNever
)

// Config configures a WAL.
type Config struct {
	// Path is the backing file.
	Path string
	// Key enables at-rest encryption.
	Key []byte
	// Policy is the sync policy; default SyncBatched.
	Policy SyncPolicy
	// Clock supplies time for batched syncs; defaults to the real clock.
	Clock clock.Clock
}

// WAL is an append-only write-ahead log. It is safe for concurrent use.
//
// Commit protocol: Append assigns an LSN and buffers the record;
// durability is a separate step. A committer that needs its record on
// stable storage calls WaitDurable(lsn): the first committer through
// becomes the sync leader and fsyncs everything appended so far, while
// committers arriving during that fsync queue up and are covered either
// by the leader's fsync (if their record was already buffered) or by the
// single fsync the next leader issues for the whole queued batch. That
// is group commit: under concurrency the fsync cost amortizes across all
// in-flight commits instead of serializing per record.
type WAL struct {
	mu       sync.Mutex
	file     *securefs.File
	path     string
	key      []byte
	nextLSN  uint64
	policy   SyncPolicy
	clk      clock.Clock
	lastSync time.Time
	closed   bool
	buf      []byte

	// syncMu serializes fsyncs; the queue that forms on it is the group-
	// commit batch. durable is the highest LSN known to be on stable
	// storage.
	syncMu  sync.Mutex
	durable atomic.Uint64
}

// groupGatherYields is how many scheduler yields a batch leader performs
// before flushing — the commit_delay analog, in scheduler quanta instead
// of wall time (a timer sleep would round up to OS timer granularity,
// ~1ms, dwarfing the fsync it amortizes). Each yield lets runnable
// sibling committers append their records and queue behind the leader,
// growing the batch its one fsync covers; when no siblings are runnable
// the whole loop costs ~a microsecond.
const groupGatherYields = 16

// Open opens (creating if needed) the WAL at cfg.Path for appending. The
// caller replays existing records first via Replay, then passes the last
// seen LSN to continue the sequence.
func Open(cfg Config, lastLSN uint64) (*WAL, error) {
	f, err := securefs.Append(cfg.Path, securefs.Options{Key: cfg.Key})
	if err != nil {
		return nil, err
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.NewReal()
	}
	return &WAL{file: f, path: cfg.Path, key: cfg.Key, nextLSN: lastLSN + 1, policy: cfg.Policy, clk: clk, lastSync: clk.Now()}, nil
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendRecord renders one record — lsn(8) | type(1) | crc32(4) | payload
// — into buf, shared by the live Append path and the checkpoint writer.
func appendRecord(buf []byte, lsn uint64, t RecordType, payload []byte) []byte {
	buf = binary.BigEndian.AppendUint64(buf[:0], lsn)
	buf = append(buf, byte(t))
	// CRC over lsn|type|payload; reserve its slot now.
	crcPos := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf = append(buf, payload...)
	crc := crc32.Checksum(buf[:crcPos], crcTable)
	crc = crc32.Update(crc, crcTable, buf[crcPos+4:])
	binary.BigEndian.PutUint32(buf[crcPos:], crc)
	return buf
}

// Append logs one record and returns its LSN.
func (w *WAL) Append(t RecordType, payload []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, errors.New("wal: append to closed WAL")
	}
	lsn := w.nextLSN
	w.nextLSN++

	w.buf = appendRecord(w.buf, lsn, t, payload)
	if err := w.file.AppendFrame(w.buf); err != nil {
		return 0, err
	}
	// SyncOnCommit does not sync here: the committer calls WaitDurable,
	// which batches concurrent commits into one fsync.
	if w.policy == SyncBatched {
		if now := w.clk.Now(); now.Sub(w.lastSync) >= time.Second {
			if err := w.file.Sync(); err != nil {
				return 0, err
			}
			w.lastSync = now
			w.advanceDurable(lsn)
		}
	}
	return lsn, nil
}

// syncFile fsyncs on a dedicated goroutine and parks the caller on a
// channel until it completes. Parking releases the caller's P, so other
// goroutines — snapshot readers and the committers forming the next
// group-commit batch — keep running while the kernel flushes. A raw
// blocking fsync syscall would instead pin the P until the scheduler's
// sysmon retakes it, which on a single-P runtime serializes everything
// behind every flush.
func (w *WAL) syncFile() error {
	done := make(chan error, 1)
	go func() { done <- w.file.Sync() }()
	return <-done
}

// advanceDurable raises the durable watermark to target (monotonic).
func (w *WAL) advanceDurable(target uint64) {
	for {
		cur := w.durable.Load()
		if target <= cur || w.durable.CompareAndSwap(cur, target) {
			return
		}
	}
}

// WaitDurable blocks until the record at lsn is on stable storage, using
// group commit: one fsync covers every record appended before it runs,
// so concurrent committers share the wait. Under SyncBatched and
// SyncNever it returns immediately — those policies trade durability lag
// for throughput by design (synchronous_commit=off), and their flushing
// stays time- or OS-driven.
func (w *WAL) WaitDurable(lsn uint64) error {
	if w.policy != SyncOnCommit {
		return nil
	}
	if w.durable.Load() >= lsn {
		return nil
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.durable.Load() >= lsn {
		// A leader that ran while we queued already covered our record.
		return nil
	}
	// We are this batch's leader: yield a few scheduler quanta so any
	// concurrent committers get to append their records into this batch,
	// then fsync everything appended so far.
	for i := 0; i < groupGatherYields; i++ {
		runtime.Gosched()
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return errors.New("wal: wait on closed WAL")
	}
	target := w.nextLSN - 1
	start := w.clk.Now()
	w.lastSync = start
	w.mu.Unlock()
	batch := int64(target - w.durable.Load())
	if err := w.syncFile(); err != nil {
		return err
	}
	obsWALFsyncNs.ObserveDuration(w.clk.Since(start))
	obsWALBatchLSNs.Observe(batch)
	w.advanceDurable(target)
	return nil
}

// DurableLSN returns the highest LSN known to be on stable storage.
func (w *WAL) DurableLSN() uint64 { return w.durable.Load() }

// Sync forces buffered records to stable storage.
func (w *WAL) Sync() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	if w.file == nil {
		w.mu.Unlock()
		return nil
	}
	target := w.nextLSN - 1
	w.lastSync = w.clk.Now()
	w.mu.Unlock()
	if err := w.syncFile(); err != nil {
		return err
	}
	w.advanceDurable(target)
	return nil
}

// Size returns the on-disk size of the WAL.
func (w *WAL) Size() (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.file.Size()
}

// NextLSN returns the LSN the next Append will use.
func (w *WAL) NextLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN
}

// RotatedSuffix names the file a Rotate moves the filled log segment to.
const RotatedSuffix = ".old"

// Rotate seals the current log file and starts a fresh one at the same
// path: the filled segment is fsynced, closed and renamed to
// path+RotatedSuffix, and the LSN sequence continues into the new file.
// It returns the highest LSN contained in the rotated-out segment — the
// checkpoint "cut": once a checkpoint covering the cut is durable, the
// rotated segment is redundant and may be deleted, which is how the WAL
// prefix gets truncated without ever rewriting the live file. Callers
// must not leave an earlier rotated segment at the target name (a second
// rotation would clobber it).
func (w *WAL) Rotate() (cut uint64, err error) {
	// syncMu first (the WaitDurable order) so no group-commit fsync can
	// hold the old file handle across the swap.
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, errors.New("wal: rotate on closed WAL")
	}
	cut = w.nextLSN - 1
	if err := w.file.Sync(); err != nil {
		return 0, err
	}
	if err := w.file.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(w.path, w.path+RotatedSuffix); err != nil {
		return 0, err
	}
	nf, err := securefs.Append(w.path, securefs.Options{Key: w.key})
	if err != nil {
		return 0, err
	}
	w.file = nf
	w.lastSync = w.clk.Now()
	// Everything in the rotated segment was fsynced above.
	w.advanceDurable(cut)
	return cut, nil
}

// Close flushes and closes the WAL. Close is idempotent.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	return w.file.Close()
}

// Replay reads the WAL at path in order, calling fn for each intact
// record. It returns the last LSN seen. Like crash recovery, it treats a
// missing file as an empty log and a torn tail (ErrCorrupt from the frame
// layer or a CRC mismatch) as end-of-log rather than an error; earlier
// records are all delivered.
func Replay(path string, key []byte, fn func(Record) error) (uint64, error) {
	if _, err := os.Stat(path); os.IsNotExist(err) {
		return 0, nil
	}
	var last uint64
	err := securefs.Replay(path, securefs.Options{Key: key}, func(p []byte) error {
		rec, err := decode(p)
		if err != nil {
			return err
		}
		if rec.LSN <= last && last != 0 {
			return fmt.Errorf("wal: LSN regression %d after %d: %w", rec.LSN, last, ErrCorrupt)
		}
		last = rec.LSN
		return fn(rec)
	})
	if err != nil && (errors.Is(err, ErrCorrupt) || errors.Is(err, securefs.ErrCorruptFrame)) {
		// Torn tail: recovered up to `last`.
		return last, nil
	}
	return last, err
}

func decode(p []byte) (Record, error) {
	if len(p) < 13 {
		return Record{}, fmt.Errorf("wal: short record (%d bytes): %w", len(p), ErrCorrupt)
	}
	lsn := binary.BigEndian.Uint64(p[:8])
	t := RecordType(p[8])
	crcStored := binary.BigEndian.Uint32(p[9:13])
	crc := crc32.Checksum(p[:9], crcTable)
	crc = crc32.Update(crc, crcTable, p[13:])
	if crc != crcStored {
		return Record{}, fmt.Errorf("wal: crc mismatch at lsn %d: %w", lsn, ErrCorrupt)
	}
	return Record{LSN: lsn, Type: t, Payload: append([]byte(nil), p[13:]...)}, nil
}

// ---------------------------------------------------------------------------
// Checkpoint files
//
// A checkpoint is a self-contained file in the WAL's own record format:
// a snapshot of the database as RecInsert records (with synthetic dense
// LSNs starting at 1, so Replay's monotonicity check holds) followed by
// one RecCheckpoint trailer whose payload is the 8-byte big-endian "cut"
// — the live-log LSN the snapshot supersedes. Recovery replays the
// checkpoint like any WAL, reads the cut from the trailer, and skips
// live-log records at or below it. A checkpoint file without its trailer
// (crash mid-write) is simply a torn tail: the snapshot prefix applies,
// the cut stays 0, and the full live log replays over it idempotently —
// but writers avoid even that window by building the file under a tmp
// name and renaming it into place only after Seal.

// CheckpointWriter streams a checkpoint file.
type CheckpointWriter struct {
	file *securefs.File
	lsn  uint64
	buf  []byte
}

// CreateCheckpoint starts a checkpoint file at path (truncating any
// previous one there).
func CreateCheckpoint(path string, key []byte) (*CheckpointWriter, error) {
	f, err := securefs.Create(path, securefs.Options{Key: key, BufferSize: 1 << 16})
	if err != nil {
		return nil, err
	}
	return &CheckpointWriter{file: f}, nil
}

// Append adds one snapshot record.
func (c *CheckpointWriter) Append(t RecordType, payload []byte) error {
	c.lsn++
	c.buf = appendRecord(c.buf, c.lsn, t, payload)
	return c.file.AppendFrame(c.buf)
}

// Seal writes the RecCheckpoint trailer recording cut, then syncs and
// closes the file. The checkpoint is complete only once Seal returns.
func (c *CheckpointWriter) Seal(cut uint64) error {
	var p [8]byte
	binary.BigEndian.PutUint64(p[:], cut)
	if err := c.Append(RecCheckpoint, p[:]); err != nil {
		c.file.Close()
		return err
	}
	if err := c.file.Sync(); err != nil {
		c.file.Close()
		return err
	}
	return c.file.Close()
}

// Abort discards the writer (the caller removes the tmp file).
func (c *CheckpointWriter) Abort() { c.file.Close() }

// CheckpointCut extracts the cut LSN from a RecCheckpoint payload.
func CheckpointCut(payload []byte) (uint64, bool) {
	if len(payload) != 8 {
		return 0, false
	}
	return binary.BigEndian.Uint64(payload), true
}

// EncodeKV packs table, key and row bytes into a mutation payload.
func EncodeKV(table, key string, row []byte) []byte {
	out := make([]byte, 0, len(table)+len(key)+len(row)+2)
	out = append(out, table...)
	out = append(out, 0)
	out = append(out, key...)
	out = append(out, 0)
	out = append(out, row...)
	return out
}

// DecodeKV unpacks a mutation payload produced by EncodeKV.
func DecodeKV(p []byte) (table, key string, row []byte, err error) {
	i := indexByte(p, 0)
	if i < 0 {
		return "", "", nil, fmt.Errorf("wal: payload missing table separator: %w", ErrCorrupt)
	}
	j := indexByte(p[i+1:], 0)
	if j < 0 {
		return "", "", nil, fmt.Errorf("wal: payload missing key separator: %w", ErrCorrupt)
	}
	table = string(p[:i])
	key = string(p[i+1 : i+1+j])
	row = p[i+1+j+1:]
	return table, key, row, nil
}

func indexByte(p []byte, b byte) int {
	for i, c := range p {
		if c == b {
			return i
		}
	}
	return -1
}

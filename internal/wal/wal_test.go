package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/securefs"
)

func openTemp(t *testing.T, policy SyncPolicy) (*WAL, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.wal")
	w, err := Open(Config{Path: path, Policy: policy, Clock: clock.NewSim(time.Time{})}, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w, path
}

func TestAppendAssignsMonotonicLSNs(t *testing.T) {
	w, _ := openTemp(t, SyncNever)
	var prev uint64
	for i := 0; i < 100; i++ {
		lsn, err := w.Append(RecInsert, []byte(fmt.Sprintf("payload-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if lsn <= prev {
			t.Fatalf("lsn %d not > %d", lsn, prev)
		}
		prev = lsn
	}
	if w.NextLSN() != prev+1 {
		t.Fatalf("NextLSN = %d", w.NextLSN())
	}
}

func TestReplayRoundTrip(t *testing.T) {
	w, path := openTemp(t, SyncOnCommit)
	want := []struct {
		t RecordType
		p string
	}{
		{RecInsert, "t\x00k1\x00row1"},
		{RecUpdate, "t\x00k1\x00row2"},
		{RecDelete, "t\x00k1"},
		{RecCheckpoint, "cp"},
	}
	for _, r := range want {
		if _, err := w.Append(r.t, []byte(r.p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got []Record
	last, err := Replay(path, nil, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if last != 4 {
		t.Fatalf("last LSN = %d", last)
	}
	if len(got) != len(want) {
		t.Fatalf("records = %d", len(got))
	}
	for i, r := range got {
		if r.Type != want[i].t || string(r.Payload) != want[i].p {
			t.Fatalf("record %d = %v %q", i, r.Type, r.Payload)
		}
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d LSN = %d", i, r.LSN)
		}
	}
}

func TestReplayContinuesLSNSequence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seq.wal")
	w, err := Open(Config{Path: path}, 0)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(RecInsert, []byte("a"))
	w.Append(RecInsert, []byte("b"))
	w.Close()

	last, err := Replay(path, nil, func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Open(Config{Path: path}, last)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	lsn, err := w2.Append(RecInsert, []byte("c"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 3 {
		t.Fatalf("continued LSN = %d, want 3", lsn)
	}
}

func TestTornTailRecoversPrefix(t *testing.T) {
	w, path := openTemp(t, SyncOnCommit)
	w.Append(RecInsert, []byte("keep-1"))
	w.Append(RecInsert, []byte("keep-2"))
	w.Append(RecInsert, []byte("torn"))
	w.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-2], 0o600); err != nil {
		t.Fatal(err)
	}
	var got []string
	last, err := Replay(path, nil, func(r Record) error {
		got = append(got, string(r.Payload))
		return nil
	})
	if err != nil {
		t.Fatalf("torn tail should not error: %v", err)
	}
	if last != 2 || len(got) != 2 {
		t.Fatalf("recovered %d records, last=%d", len(got), last)
	}
}

func TestCorruptCRCStopsReplay(t *testing.T) {
	w, path := openTemp(t, SyncOnCommit)
	w.Append(RecInsert, []byte("good"))
	w.Append(RecInsert, []byte("bad-crc"))
	w.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01 // flip a payload byte; frame still parses
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		t.Fatal(err)
	}
	var got []string
	last, err := Replay(path, nil, func(r Record) error {
		got = append(got, string(r.Payload))
		return nil
	})
	if err != nil {
		t.Fatalf("crc-corrupt tail should recover prefix: %v", err)
	}
	if len(got) != 1 || last != 1 {
		t.Fatalf("recovered %v last=%d", got, last)
	}
}

func TestEncryptedWAL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "enc.wal")
	key := securefs.Key("wal")
	w, err := Open(Config{Path: path, Key: key, Policy: SyncOnCommit}, 0)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(RecInsert, []byte("secret-row-contents"))
	w.Close()
	raw, _ := os.ReadFile(path)
	if bytes.Contains(raw, []byte("secret-row-contents")) {
		t.Fatal("plaintext row in encrypted WAL")
	}
	n := 0
	if _, err := Replay(path, key, func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("records = %d", n)
	}
}

func TestReplayCallbackErrorPropagates(t *testing.T) {
	w, path := openTemp(t, SyncOnCommit)
	w.Append(RecInsert, []byte("x"))
	w.Close()
	sentinel := fmt.Errorf("boom")
	if _, err := Replay(path, nil, func(Record) error { return sentinel }); err == nil {
		t.Fatal("callback error should propagate")
	}
}

func TestAppendAfterClose(t *testing.T) {
	w, _ := openTemp(t, SyncNever)
	w.Close()
	if _, err := w.Append(RecInsert, []byte("x")); err == nil {
		t.Fatal("append after close should fail")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestBatchedSyncPolicy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batched.wal")
	sim := clock.NewSim(time.Time{})
	w, err := Open(Config{Path: path, Policy: SyncBatched, Clock: sim}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		sim.Advance(300 * time.Millisecond)
		if _, err := w.Append(RecInsert, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	n := 0
	if _, err := Replay(path, nil, func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("records = %d", n)
	}
}

func TestSizeGrows(t *testing.T) {
	w, _ := openTemp(t, SyncNever)
	s0, err := w.Size()
	if err != nil {
		t.Fatal(err)
	}
	w.Append(RecInsert, bytes.Repeat([]byte("x"), 1024))
	s1, err := w.Size()
	if err != nil {
		t.Fatal(err)
	}
	if s1 <= s0 {
		t.Fatalf("size did not grow: %d -> %d", s0, s1)
	}
}

func TestKVPayloadCodec(t *testing.T) {
	cases := []struct {
		table, key string
		row        []byte
	}{
		{"records", "k1", []byte("row-bytes")},
		{"t", "", nil},
		{"records", "key with spaces", []byte{0x01, 0x02, 0xff}},
	}
	for _, c := range cases {
		p := EncodeKV(c.table, c.key, c.row)
		table, key, row, err := DecodeKV(p)
		if err != nil {
			t.Fatal(err)
		}
		if table != c.table || key != c.key || !bytes.Equal(row, c.row) {
			t.Fatalf("roundtrip = %q %q %q", table, key, row)
		}
	}
}

func TestKVPayloadDecodeErrors(t *testing.T) {
	if _, _, _, err := DecodeKV([]byte("no-separators")); err == nil {
		t.Fatal("expected error")
	}
	if _, _, _, err := DecodeKV([]byte("table\x00only-one")); err == nil {
		t.Fatal("expected error")
	}
}

func TestConcurrentAppends(t *testing.T) {
	w, path := openTemp(t, SyncNever)
	var wg sync.WaitGroup
	const workers, per = 8, 100
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				if _, err := w.Append(RecInsert, []byte("c")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	w.Close()
	seen := map[uint64]bool{}
	if _, err := Replay(path, nil, func(r Record) error {
		if seen[r.LSN] {
			return fmt.Errorf("duplicate LSN %d", r.LSN)
		}
		seen[r.LSN] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != workers*per {
		t.Fatalf("records = %d", len(seen))
	}
}

func TestRecordTypeString(t *testing.T) {
	for rt, want := range map[RecordType]string{
		RecInsert: "insert", RecUpdate: "update", RecDelete: "delete",
		RecCheckpoint: "checkpoint", RecordType(99): "RecordType(99)",
	} {
		if rt.String() != want {
			t.Fatalf("%d.String() = %q", byte(rt), rt.String())
		}
	}
}

func BenchmarkAppendSyncNever(b *testing.B) {
	w, err := Open(Config{Path: filepath.Join(b.TempDir(), "b.wal"), Policy: SyncNever}, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	payload := EncodeKV("records", "key-123456", bytes.Repeat([]byte("r"), 64))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := w.Append(RecInsert, payload); err != nil {
			b.Fatal(err)
		}
	}
}

package wal

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

// TestGroupCommitDurability: WaitDurable must cover the caller's record,
// and a batch of concurrent committers must share fsyncs rather than
// each paying one.
func TestGroupCommitDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gc.wal")
	w, err := Open(Config{Path: path, Policy: SyncOnCommit}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	const workers, per = 8, 200
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				lsn, err := w.Append(RecInsert, []byte(fmt.Sprintf("w%d-%d", i, j)))
				if err != nil {
					t.Error(err)
					return
				}
				if err := w.WaitDurable(lsn); err != nil {
					t.Error(err)
					return
				}
				if got := w.DurableLSN(); got < lsn {
					t.Errorf("WaitDurable returned with durable=%d < lsn=%d", got, lsn)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	// Every record every committer waited for is replayable without
	// closing the WAL first — that is the durability contract.
	seen := map[uint64]bool{}
	last, err := Replay(path, nil, func(r Record) error {
		seen[r.LSN] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != workers*per || last != uint64(workers*per) {
		t.Fatalf("replayed %d records, last=%d, want %d", len(seen), last, workers*per)
	}
}

// TestGroupCommitPreservesPerRecordOrdering is the regression test for
// the group-commit refactor: with many concurrent committers batching
// into shared fsyncs, replay must still deliver records in strictly
// increasing LSN order, and each key's operation sequence
// (insert -> update -> delete) must replay in the order it was issued —
// per-record durability ordering is exactly what recovery correctness
// rests on.
func TestGroupCommitPreservesPerRecordOrdering(t *testing.T) {
	path := filepath.Join(t.TempDir(), "order.wal")
	w, err := Open(Config{Path: path, Policy: SyncOnCommit}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	const workers, keys = 8, 100
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < keys; j++ {
				key := fmt.Sprintf("w%d-k%d", i, j)
				for _, step := range []RecordType{RecInsert, RecUpdate, RecDelete} {
					lsn, err := w.Append(step, EncodeKV("t", key, []byte{byte(step)}))
					if err != nil {
						t.Error(err)
						return
					}
					if err := w.WaitDurable(lsn); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()

	var lastLSN uint64
	lastStep := map[string]RecordType{}
	n := 0
	if _, err := Replay(path, nil, func(r Record) error {
		n++
		if r.LSN <= lastLSN {
			return fmt.Errorf("LSN order broken: %d after %d", r.LSN, lastLSN)
		}
		lastLSN = r.LSN
		_, key, _, err := DecodeKV(r.Payload)
		if err != nil {
			return err
		}
		prev := lastStep[key]
		switch r.Type {
		case RecInsert:
			if prev != 0 {
				return fmt.Errorf("key %s: insert after %v", key, prev)
			}
		case RecUpdate:
			if prev != RecInsert {
				return fmt.Errorf("key %s: update after %v", key, prev)
			}
		case RecDelete:
			if prev != RecUpdate {
				return fmt.Errorf("key %s: delete after %v", key, prev)
			}
		}
		lastStep[key] = r.Type
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != workers*keys*3 {
		t.Fatalf("replayed %d records, want %d", n, workers*keys*3)
	}
	for key, step := range lastStep {
		if step != RecDelete {
			t.Fatalf("key %s ended at %v, want delete", key, step)
		}
	}
}

// TestWaitDurableIsPolicyGated: batched and never policies do not turn
// WaitDurable into an fsync — their durability lag is the configuration's
// point (synchronous_commit=off).
func TestWaitDurableIsPolicyGated(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncBatched, SyncNever} {
		w, _ := openTemp(t, policy)
		lsn, err := w.Append(RecInsert, []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WaitDurable(lsn); err != nil {
			t.Fatal(err)
		}
	}
}

func BenchmarkCommitSerialFsync(b *testing.B) {
	// The pre-group-commit shape: one fsync per committed record.
	w, err := Open(Config{Path: filepath.Join(b.TempDir(), "serial.wal"), Policy: SyncOnCommit}, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	payload := EncodeKV("records", "key-123456", []byte("row"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lsn, err := w.Append(RecInsert, payload)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.WaitDurable(lsn); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCommitGroup8Writers(b *testing.B) {
	// Eight concurrent committers sharing fsyncs via group commit.
	w, err := Open(Config{Path: filepath.Join(b.TempDir(), "group.wal"), Policy: SyncOnCommit}, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	payload := EncodeKV("records", "key-123456", []byte("row"))
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			lsn, err := w.Append(RecInsert, payload)
			if err != nil {
				b.Fatal(err)
			}
			if err := w.WaitDurable(lsn); err != nil {
				b.Fatal(err)
			}
		}
	})
}

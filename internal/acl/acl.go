// Package acl implements the access-control action of Table 1 (G 25(2)
// data protection by default, G 28 processor restrictions): fine-grained,
// metadata-driven checks deciding which GDPR entity may perform which
// operation on which record.
//
// The paper enforces access control in the benchmark's client stubs ("we
// extend the Redis client in GDPRbench to enforce metadata-based access
// rights", §5.1); this package is that enforcement layer, shared by both
// engine adapters. The permission matrix follows Figure 1:
//
//   - the controller may create, delete and update any personal data and
//     GDPR metadata;
//   - a customer may read, update or delete data and metadata that
//     concerns them (record USR == customer id);
//   - a processor may only read personal data, and only records whose
//     purposes include the processor's declared purpose and whose owner
//     has not objected to it (G 28(3c), G 21.3) — plus register automated
//     decisions (G 22.3);
//   - a regulator may read GDPR metadata and system logs, never personal
//     data.
package acl

import (
	"fmt"

	"repro/internal/gdpr"
)

// Role is a GDPR entity (Figure 1).
type Role int

// The four roles.
const (
	Controller Role = iota
	Customer
	Processor
	Regulator
)

func (r Role) String() string {
	switch r {
	case Controller:
		return "controller"
	case Customer:
		return "customer"
	case Processor:
		return "processor"
	case Regulator:
		return "regulator"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Actor is an authenticated principal issuing GDPR queries.
type Actor struct {
	Role Role
	// ID is the principal's identity; for customers it must equal the USR
	// metadata of the records they touch.
	ID string
	// Purpose is the processor's declared processing purpose; required
	// for processor reads (G 28(3c)).
	Purpose string
}

// String renders the actor for audit entries.
func (a Actor) String() string { return a.Role.String() + ":" + a.ID }

// Verb is the kind of operation being attempted.
type Verb int

// Operation verbs, matching the §3.3 query families.
const (
	VerbCreate Verb = iota
	VerbReadData
	VerbReadMetadata
	VerbUpdateData
	VerbUpdateMetadata
	VerbDelete
	VerbReadLogs
	VerbReadFeatures
	VerbVerifyDeletion
)

func (v Verb) String() string {
	switch v {
	case VerbCreate:
		return "create"
	case VerbReadData:
		return "read-data"
	case VerbReadMetadata:
		return "read-metadata"
	case VerbUpdateData:
		return "update-data"
	case VerbUpdateMetadata:
		return "update-metadata"
	case VerbDelete:
		return "delete"
	case VerbReadLogs:
		return "read-logs"
	case VerbReadFeatures:
		return "read-features"
	case VerbVerifyDeletion:
		return "verify-deletion"
	default:
		return fmt.Sprintf("Verb(%d)", int(v))
	}
}

// DeniedError explains a rejected operation.
type DeniedError struct {
	Actor  Actor
	Verb   Verb
	Key    string
	Reason string
}

func (e *DeniedError) Error() string {
	return fmt.Sprintf("acl: %s denied %s on %q: %s", e.Actor, e.Verb, e.Key, e.Reason)
}

func deny(a Actor, v Verb, key, reason string) error {
	return &DeniedError{Actor: a, Verb: v, Key: key, Reason: reason}
}

// CheckSystem authorizes record-independent operations (system logs,
// feature discovery, deletion verification).
func CheckSystem(a Actor, v Verb) error {
	switch v {
	case VerbReadLogs:
		// G 33, 34: regulators investigate logs; controllers must produce
		// them for breach notification.
		if a.Role == Regulator || a.Role == Controller {
			return nil
		}
		return deny(a, v, "", "only regulators and controllers may read system logs")
	case VerbReadFeatures:
		return nil // G 24, 25: capability discovery is open to all roles.
	case VerbVerifyDeletion:
		if a.Role == Regulator || a.Role == Controller || a.Role == Customer {
			return nil
		}
		return deny(a, v, "", "processors cannot verify deletions")
	default:
		return deny(a, v, "", "not a system verb")
	}
}

// CheckRecord authorizes verb v by actor a on record rec. For
// VerbUpdateMetadata, delta describes the attempted mutation (needed to
// scope processor updates to the DEC attribute).
func CheckRecord(a Actor, v Verb, rec gdpr.Record, delta *gdpr.Delta) error {
	switch a.Role {
	case Controller:
		// Figure 1: create, delete, update any personal- and metadata.
		// Reads of metadata are needed for lifecycle management; reads of
		// personal data are not the controller's workload but are lawful
		// (the controller collected the data).
		return nil

	case Customer:
		if rec.Meta.User != a.ID {
			return deny(a, v, rec.Key, fmt.Sprintf("record belongs to %q", rec.Meta.User))
		}
		switch v {
		case VerbReadData, VerbReadMetadata, VerbUpdateData, VerbUpdateMetadata, VerbDelete:
			return nil
		default:
			return deny(a, v, rec.Key, "customers cannot perform this operation")
		}

	case Processor:
		switch v {
		case VerbReadData:
			if a.Purpose == "" {
				return deny(a, v, rec.Key, "processor has no declared purpose (G 28(3c))")
			}
			if !rec.Meta.HasPurpose(a.Purpose) {
				return deny(a, v, rec.Key, fmt.Sprintf("purpose %q not granted", a.Purpose))
			}
			if rec.Meta.Objects(a.Purpose) {
				return deny(a, v, rec.Key, fmt.Sprintf("owner objected to %q (G 21)", a.Purpose))
			}
			return nil
		case VerbUpdateMetadata:
			// G 22.3: processors register automated-decision use; nothing else.
			if delta == nil || delta.Attr != gdpr.AttrDecision {
				return deny(a, v, rec.Key, "processors may only update DEC metadata (G 22.3)")
			}
			return nil
		default:
			return deny(a, v, rec.Key, "processors are read-only on personal data")
		}

	case Regulator:
		switch v {
		case VerbReadMetadata:
			return nil // G 31: metadata of affected customers.
		default:
			return deny(a, v, rec.Key, "regulators access metadata and logs only")
		}

	default:
		return deny(a, v, rec.Key, "unknown role")
	}
}

// Filter returns the subset of records actor a may perform v on, plus the
// count of records that were denied. Engines use it to narrow selector
// matches to the actor's rights before acting.
func Filter(a Actor, v Verb, recs []gdpr.Record, delta *gdpr.Delta) (allowed []gdpr.Record, denied int) {
	for _, r := range recs {
		if CheckRecord(a, v, r, delta) == nil {
			allowed = append(allowed, r)
		} else {
			denied++
		}
	}
	return allowed, denied
}

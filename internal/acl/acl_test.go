package acl

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/gdpr"
)

func rec(user string, purposes, objections []string) gdpr.Record {
	return gdpr.Record{
		Key:  "k1",
		Data: "payload",
		Meta: gdpr.Metadata{
			User:       user,
			Purposes:   purposes,
			Objections: objections,
			Expiry:     time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC),
			Source:     "first-party",
		},
	}
}

func TestControllerAllowedEverything(t *testing.T) {
	a := Actor{Role: Controller, ID: "acme"}
	r := rec("neo", []string{"ads"}, nil)
	for _, v := range []Verb{VerbCreate, VerbReadData, VerbReadMetadata, VerbUpdateData, VerbUpdateMetadata, VerbDelete} {
		if err := CheckRecord(a, v, r, nil); err != nil {
			t.Fatalf("controller denied %s: %v", v, err)
		}
	}
}

func TestCustomerOwnRecordsOnly(t *testing.T) {
	neo := Actor{Role: Customer, ID: "neo"}
	smith := Actor{Role: Customer, ID: "smith"}
	r := rec("neo", []string{"ads"}, nil)
	for _, v := range []Verb{VerbReadData, VerbReadMetadata, VerbUpdateData, VerbUpdateMetadata, VerbDelete} {
		if err := CheckRecord(neo, v, r, nil); err != nil {
			t.Fatalf("owner denied %s: %v", v, err)
		}
		if err := CheckRecord(smith, v, r, nil); err == nil {
			t.Fatalf("non-owner allowed %s", v)
		}
	}
	if err := CheckRecord(neo, VerbCreate, r, nil); err == nil {
		t.Fatal("customer create should be denied")
	}
}

func TestProcessorPurposeGating(t *testing.T) {
	r := rec("neo", []string{"ads", "2fa"}, []string{"profiling"})

	cases := []struct {
		name    string
		actor   Actor
		verb    Verb
		delta   *gdpr.Delta
		allowed bool
	}{
		{"granted purpose", Actor{Role: Processor, ID: "p", Purpose: "ads"}, VerbReadData, nil, true},
		{"ungranted purpose", Actor{Role: Processor, ID: "p", Purpose: "telemetry"}, VerbReadData, nil, false},
		{"no declared purpose", Actor{Role: Processor, ID: "p"}, VerbReadData, nil, false},
		{"write denied", Actor{Role: Processor, ID: "p", Purpose: "ads"}, VerbUpdateData, nil, false},
		{"delete denied", Actor{Role: Processor, ID: "p", Purpose: "ads"}, VerbDelete, nil, false},
		{"read metadata denied", Actor{Role: Processor, ID: "p", Purpose: "ads"}, VerbReadMetadata, nil, false},
		{"DEC update allowed", Actor{Role: Processor, ID: "p", Purpose: "ads"}, VerbUpdateMetadata,
			&gdpr.Delta{Attr: gdpr.AttrDecision, Op: gdpr.DeltaAdd, Values: []string{"rank"}}, true},
		{"non-DEC update denied", Actor{Role: Processor, ID: "p", Purpose: "ads"}, VerbUpdateMetadata,
			&gdpr.Delta{Attr: gdpr.AttrPurpose, Op: gdpr.DeltaAdd, Values: []string{"x"}}, false},
		{"nil delta update denied", Actor{Role: Processor, ID: "p", Purpose: "ads"}, VerbUpdateMetadata, nil, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := CheckRecord(c.actor, c.verb, r, c.delta)
			if c.allowed && err != nil {
				t.Fatalf("denied: %v", err)
			}
			if !c.allowed && err == nil {
				t.Fatal("allowed")
			}
		})
	}
}

func TestProcessorObjectionBlocksRead(t *testing.T) {
	// Record allows "ads" as purpose but the owner objected to "ads".
	r := rec("neo", []string{"ads"}, []string{"ads"})
	p := Actor{Role: Processor, ID: "p", Purpose: "ads"}
	err := CheckRecord(p, VerbReadData, r, nil)
	if err == nil {
		t.Fatal("objection should block processor read (G 21)")
	}
	var de *DeniedError
	if !errors.As(err, &de) {
		t.Fatalf("error type = %T", err)
	}
	if !strings.Contains(de.Reason, "objected") {
		t.Fatalf("reason = %q", de.Reason)
	}
}

func TestRegulatorMetadataOnly(t *testing.T) {
	reg := Actor{Role: Regulator, ID: "dpa"}
	r := rec("neo", []string{"ads"}, nil)
	if err := CheckRecord(reg, VerbReadMetadata, r, nil); err != nil {
		t.Fatalf("regulator metadata read denied: %v", err)
	}
	for _, v := range []Verb{VerbReadData, VerbUpdateData, VerbUpdateMetadata, VerbDelete, VerbCreate} {
		if err := CheckRecord(reg, v, r, nil); err == nil {
			t.Fatalf("regulator allowed %s", v)
		}
	}
}

func TestCheckSystem(t *testing.T) {
	cases := []struct {
		role    Role
		verb    Verb
		allowed bool
	}{
		{Regulator, VerbReadLogs, true},
		{Controller, VerbReadLogs, true},
		{Customer, VerbReadLogs, false},
		{Processor, VerbReadLogs, false},
		{Regulator, VerbReadFeatures, true},
		{Processor, VerbReadFeatures, true},
		{Regulator, VerbVerifyDeletion, true},
		{Customer, VerbVerifyDeletion, true},
		{Controller, VerbVerifyDeletion, true},
		{Processor, VerbVerifyDeletion, false},
		{Regulator, VerbReadData, false}, // not a system verb
	}
	for _, c := range cases {
		err := CheckSystem(Actor{Role: c.role, ID: "x"}, c.verb)
		if c.allowed && err != nil {
			t.Errorf("%s %s: denied: %v", c.role, c.verb, err)
		}
		if !c.allowed && err == nil {
			t.Errorf("%s %s: allowed", c.role, c.verb)
		}
	}
}

func TestFilter(t *testing.T) {
	recs := []gdpr.Record{
		rec("neo", []string{"ads"}, nil),
		rec("smith", []string{"ads"}, nil),
		rec("neo", []string{"2fa"}, nil),
	}
	neo := Actor{Role: Customer, ID: "neo"}
	allowed, denied := Filter(neo, VerbReadData, recs, nil)
	if len(allowed) != 2 || denied != 1 {
		t.Fatalf("allowed=%d denied=%d", len(allowed), denied)
	}
	for _, r := range allowed {
		if r.Meta.User != "neo" {
			t.Fatalf("leaked record of %q", r.Meta.User)
		}
	}
}

func TestUnknownRoleDenied(t *testing.T) {
	bad := Actor{Role: Role(99), ID: "?"}
	if err := CheckRecord(bad, VerbReadData, rec("neo", nil, nil), nil); err == nil {
		t.Fatal("unknown role should be denied")
	}
}

func TestStringers(t *testing.T) {
	if Controller.String() != "controller" || Role(9).String() != "Role(9)" {
		t.Fatal("Role.String wrong")
	}
	if VerbReadData.String() != "read-data" || Verb(99).String() != "Verb(99)" {
		t.Fatal("Verb.String wrong")
	}
	a := Actor{Role: Customer, ID: "neo"}
	if a.String() != "customer:neo" {
		t.Fatalf("Actor.String = %q", a.String())
	}
	var de *DeniedError
	err := CheckRecord(Actor{Role: Regulator, ID: "dpa"}, VerbReadData, rec("neo", nil, nil), nil)
	if !errors.As(err, &de) {
		t.Fatalf("want DeniedError, got %T", err)
	}
	if !strings.Contains(de.Error(), "regulator:dpa") || !strings.Contains(de.Error(), "read-data") {
		t.Fatalf("DeniedError.Error = %q", de.Error())
	}
}

package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/acl"
	"repro/internal/clock"
	"repro/internal/gdpr"
)

// This file pins the Figure 1 access matrix end to end through the
// compliance middleware: a table over every GDPR role × query-type
// combination, asserting exactly which operations succeed, how many
// records each selector query yields after ACL filtering, and that
// metadata reads redact personal data for every role. The matrix is the
// middleware's contract — the differential test guarantees it is engine-
// independent, so one engine model suffices here.

// aclFixture builds a fresh access-controlled client with three records:
//
//	r-alice-ads  USR=alice PUR=[ads]              (clean processor target)
//	r-alice-obj  USR=alice PUR=[ads] OBJ=[ads]    (owner objected to ads)
//	r-bob        USR=bob   PUR=[mail] DEC=[score] (decision-making record)
func aclFixture(t *testing.T) (DB, *clock.Sim) {
	t.Helper()
	sim := clock.NewSim(time.Unix(1_500_000_000, 0))
	db, err := OpenRedis(RedisConfig{
		Dir:                     t.TempDir(),
		Compliance:              Compliance{AccessControl: true, Strict: true, Logging: true},
		Clock:                   sim,
		DisableBackgroundExpiry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	ttl := sim.Now().Add(365 * 24 * time.Hour)
	recs := []gdpr.Record{
		{Key: "r-alice-ads", Data: "d1", Meta: gdpr.Metadata{User: "alice", Purposes: []string{"ads"}, Expiry: ttl}},
		{Key: "r-alice-obj", Data: "d2", Meta: gdpr.Metadata{User: "alice", Purposes: []string{"ads"}, Objections: []string{"ads"}, Expiry: ttl}},
		{Key: "r-bob", Data: "d3", Meta: gdpr.Metadata{User: "bob", Purposes: []string{"mail"}, Decisions: []string{"score"}, Expiry: ttl}},
	}
	for _, r := range recs {
		if err := db.CreateRecord(ControllerActor(), r); err != nil {
			t.Fatal(err)
		}
	}
	return db, sim
}

func TestACLMatrixEveryRoleByQueryType(t *testing.T) {
	actors := map[string]acl.Actor{
		"controller": ControllerActor(),
		"alice":      {Role: acl.Customer, ID: "alice"},
		"bob":        {Role: acl.Customer, ID: "bob"},
		"proc-ads":   {Role: acl.Processor, ID: "p1", Purpose: "ads"},
		"proc-mail":  {Role: acl.Processor, ID: "p2", Purpose: "mail"},
		"regulator":  RegulatorActor(),
	}
	roleOrder := []string{"controller", "alice", "bob", "proc-ads", "proc-mail", "regulator"}

	// Each query reports (records/rows affected, hard-denied). Selector
	// reads never hard-deny — disallowed records are filtered out — while
	// create and the system queries reject the whole operation.
	queries := []struct {
		name string
		run  func(db DB, a acl.Actor, sim *clock.Sim) (int, error)
		want map[string]int // rows per role; -1 = expect a DeniedError
	}{
		{
			name: "create-record",
			run: func(db DB, a acl.Actor, sim *clock.Sim) (int, error) {
				rec := gdpr.Record{Key: "r-new", Data: "d", Meta: gdpr.Metadata{
					User: "carol", Purposes: []string{"ads"}, Expiry: sim.Now().Add(time.Hour),
				}}
				if err := db.CreateRecord(a, rec); err != nil {
					return 0, err
				}
				return 1, nil
			},
			// Figure 1: only the controller creates records.
			want: map[string]int{"controller": 1, "alice": -1, "bob": -1, "proc-ads": -1, "proc-mail": -1, "regulator": -1},
		},
		{
			name: "read-data-by-usr",
			run: func(db DB, a acl.Actor, _ *clock.Sim) (int, error) {
				recs, err := db.ReadData(a, gdpr.ByUser("alice"))
				return len(recs), err
			},
			// proc-ads sees only the non-objecting ads record (G 21);
			// proc-mail holds no granted purpose; the regulator never
			// reads personal data.
			want: map[string]int{"controller": 2, "alice": 2, "bob": 0, "proc-ads": 1, "proc-mail": 0, "regulator": 0},
		},
		{
			name: "read-data-by-pur",
			run: func(db DB, a acl.Actor, _ *clock.Sim) (int, error) {
				recs, err := db.ReadData(a, gdpr.ByPurpose("ads"))
				return len(recs), err
			},
			want: map[string]int{"controller": 2, "alice": 2, "bob": 0, "proc-ads": 1, "proc-mail": 0, "regulator": 0},
		},
		{
			name: "read-metadata-by-usr",
			run: func(db DB, a acl.Actor, _ *clock.Sim) (int, error) {
				recs, err := db.ReadMetadata(a, gdpr.ByUser("alice"))
				for _, r := range recs {
					if r.Data != "" {
						return len(recs), errors.New("metadata read leaked personal data")
					}
				}
				return len(recs), err
			},
			// Regulators read metadata (G 31); processors never do.
			want: map[string]int{"controller": 2, "alice": 2, "bob": 0, "proc-ads": 0, "proc-mail": 0, "regulator": 2},
		},
		{
			name: "update-data-by-key",
			run: func(db DB, a acl.Actor, _ *clock.Sim) (int, error) {
				return db.UpdateData(a, "r-alice-ads", "rectified")
			},
			// Rectification (G 16): the owner and the controller only.
			want: map[string]int{"controller": 1, "alice": 1, "bob": 0, "proc-ads": 0, "proc-mail": 0, "regulator": 0},
		},
		{
			name: "update-metadata-obj",
			run: func(db DB, a acl.Actor, _ *clock.Sim) (int, error) {
				return db.UpdateMetadata(a, gdpr.ByKey("r-alice-ads"),
					gdpr.Delta{Attr: gdpr.AttrObjection, Op: gdpr.DeltaAdd, Values: []string{"ads"}})
			},
			// Objections (G 21): owner and controller; processors may only
			// touch DEC metadata.
			want: map[string]int{"controller": 1, "alice": 1, "bob": 0, "proc-ads": 0, "proc-mail": 0, "regulator": 0},
		},
		{
			name: "update-metadata-dec",
			run: func(db DB, a acl.Actor, _ *clock.Sim) (int, error) {
				return db.UpdateMetadata(a, gdpr.ByKey("r-bob"),
					gdpr.Delta{Attr: gdpr.AttrDecision, Op: gdpr.DeltaAdd, Values: []string{"rank"}})
			},
			// G 22.3: processors register automated-decision use; the
			// record's owner (bob) and the controller also may.
			want: map[string]int{"controller": 1, "alice": 0, "bob": 1, "proc-ads": 1, "proc-mail": 1, "regulator": 0},
		},
		{
			name: "delete-record-by-key",
			run: func(db DB, a acl.Actor, _ *clock.Sim) (int, error) {
				return db.DeleteRecord(a, gdpr.ByKey("r-alice-ads"))
			},
			// Erasure (G 17): owner and controller.
			want: map[string]int{"controller": 1, "alice": 1, "bob": 0, "proc-ads": 0, "proc-mail": 0, "regulator": 0},
		},
		{
			name: "delete-record-by-ttl",
			run: func(db DB, a acl.Actor, _ *clock.Sim) (int, error) {
				return db.DeleteRecord(a, gdpr.ByExpiredAt(time.Unix(1_400_000_000, 0)))
			},
			// The TTL purge is a controller-only maintenance operation.
			want: map[string]int{"controller": 0, "alice": -1, "bob": -1, "proc-ads": -1, "proc-mail": -1, "regulator": -1},
		},
		{
			name: "get-system-logs",
			run: func(db DB, a acl.Actor, sim *clock.Sim) (int, error) {
				entries, err := db.GetSystemLogs(a, sim.Now().Add(-time.Hour), sim.Now())
				return len(entries), err
			},
			// G 30/33/34: regulators investigate, controllers produce.
			// Row counts vary with the audit trail, so only denial is
			// pinned (-2 marks "must succeed, count unchecked"; 0 would
			// pin the count to exactly zero).
			want: map[string]int{"controller": -2, "alice": -1, "bob": -1, "proc-ads": -1, "proc-mail": -1, "regulator": -2},
		},
		{
			name: "get-system-features",
			run: func(db DB, a acl.Actor, _ *clock.Sim) (int, error) {
				_, err := db.GetSystemFeatures(a)
				return 0, err
			},
			// Capability discovery (G 24/25) is open to every role.
			want: map[string]int{"controller": -2, "alice": -2, "bob": -2, "proc-ads": -2, "proc-mail": -2, "regulator": -2},
		},
		{
			name: "verify-deletion",
			run: func(db DB, a acl.Actor, _ *clock.Sim) (int, error) {
				return db.VerifyDeletion(a, []string{"never-existed"})
			},
			// Processors alone cannot audit deletions.
			want: map[string]int{"controller": 0, "alice": 0, "bob": 0, "proc-ads": -1, "proc-mail": -1, "regulator": 0},
		},
	}

	for _, q := range queries {
		q := q
		t.Run(q.name, func(t *testing.T) {
			for _, role := range roleOrder {
				// A fresh fixture per combination: mutating queries must
				// not bleed into the next role's expectations.
				db, sim := aclFixture(t)
				n, err := q.run(db, actors[role], sim)
				want := q.want[role]
				var denied *acl.DeniedError
				switch {
				case want == -1:
					if !errors.As(err, &denied) {
						t.Fatalf("%s/%s: want DeniedError, got n=%d err=%v", q.name, role, n, err)
					}
				case err != nil:
					t.Fatalf("%s/%s: unexpected error %v", q.name, role, err)
				case want >= 0 && n != want:
					t.Fatalf("%s/%s: n=%d, want %d", q.name, role, n, want)
				}
			}
		})
	}
}

// TestMetadataRedactionAcrossRoles pins that ReadMetadata strips the Data
// field for every role that can see records at all, on both key and
// selector paths.
func TestMetadataRedactionAcrossRoles(t *testing.T) {
	db, _ := aclFixture(t)
	cases := []struct {
		role acl.Actor
		sel  gdpr.Selector
		want int
	}{
		{ControllerActor(), gdpr.ByKey("r-alice-ads"), 1},
		{ControllerActor(), gdpr.ByUser("alice"), 2},
		{acl.Actor{Role: acl.Customer, ID: "bob"}, gdpr.ByKey("r-bob"), 1},
		{RegulatorActor(), gdpr.ByUser("bob"), 1},
		{RegulatorActor(), gdpr.ByShare("none"), 0},
	}
	for _, c := range cases {
		recs, err := db.ReadMetadata(c.role, c.sel)
		if err != nil {
			t.Fatalf("%v %v: %v", c.role, c.sel, err)
		}
		if len(recs) != c.want {
			t.Fatalf("%v %v: %d records, want %d", c.role, c.sel, len(recs), c.want)
		}
		for _, r := range recs {
			if r.Data != "" {
				t.Fatalf("%v %v: record %q leaked data %q", c.role, c.sel, r.Key, r.Data)
			}
			if r.Meta.User == "" {
				t.Fatalf("%v %v: record %q lost its metadata", c.role, c.sel, r.Key)
			}
		}
	}
}

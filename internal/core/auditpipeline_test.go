package core

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/clock"
	"repro/internal/gdpr"
)

// These tests pin the middleware-level guarantees of the audit pipeline
// rebuild: GET-SYSTEM-LOGS answers from disk + memory, so its results
// are independent of the audit log's MemoryCap, survive a close/reopen
// of the trail, and are identical under every append-pipeline mode.

// auditScript runs a fixed single-threaded §3.3 op sequence so the audit
// trail is deterministic (same Seqs, same frozen-clock Times) across
// configurations.
func auditScript(t *testing.T, db DB, ds *Dataset, sim *clock.Sim) {
	t.Helper()
	for i := 0; i < 60; i++ {
		sim.Advance(time.Second)
		u := i % ds.Users
		if _, err := db.ReadData(ds.CustomerActor(u), gdpr.ByUser(ds.UserName(u))); err != nil {
			t.Fatal(err)
		}
		if _, err := db.ReadMetadata(RegulatorActor(), gdpr.ByUser(ds.UserName(u))); err != nil {
			t.Fatal(err)
		}
		if _, err := db.UpdateData(ds.CustomerActor(ds.OwnerOfKey(i)), ds.KeyAt(i),
			fmt.Sprintf("%0*d", ds.Cfg.DataSize, i)); err != nil {
			t.Fatal(err)
		}
	}
}

// trailFor loads a Redis-model engine wrapped with the given audit log
// configuration, runs the deterministic script, and returns the full
// GET-SYSTEM-LOGS answer.
func trailFor(t *testing.T, policy audit.Pipeline, memCap int) (entries []audit.Entry, auditPath string, reopen func() []audit.Entry) {
	t.Helper()
	dir := t.TempDir()
	sim := clock.NewSim(time.Time{})
	epoch := sim.Now()
	comp := Compliance{Logging: true, AccessControl: true, Strict: true}
	auditPath = filepath.Join(dir, "trail.log")
	log, err := audit.Open(audit.Config{
		Path: auditPath, Clock: sim, Policy: audit.SyncEverySec,
		Pipeline: policy, MemoryCap: memCap, SegmentBytes: 8 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewRedisEngine(RedisConfig{
		Dir: dir, Compliance: comp, Clock: sim, DisableBackgroundExpiry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Wrap(eng, WrapConfig{Compliance: comp, Clock: sim, Audit: log})
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })

	cfg := Config{Records: 120, Operations: 10, Threads: 1, Seed: 11}.WithDefaults()
	ds, _, err := Load(db, cfg, sim)
	if err != nil {
		t.Fatal(err)
	}
	auditScript(t, db, ds, sim)
	entries, err = db.GetSystemLogs(RegulatorActor(), epoch, sim.Now())
	if err != nil {
		t.Fatal(err)
	}
	reopen = func() []audit.Entry {
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		re, err := audit.Open(audit.Config{Path: auditPath, Clock: sim, Pipeline: policy, MemoryCap: memCap})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { re.Close() })
		out, err := re.Range(epoch, sim.Now())
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	return entries, auditPath, reopen
}

func assertEntriesEqual(t *testing.T, what string, got, want []audit.Entry) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d entries, want %d", what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: entry %d = %+v, want %+v", what, i, got[i], want[i])
		}
	}
}

// TestGetSystemLogsUnaffectedByMemoryCapEviction is the acceptance pin:
// a regulator's GET-SYSTEM-LOGS answer must be byte-for-byte identical
// whether or not MemoryCap eviction discarded the in-memory tail — the
// evicted history is served from the segment store. The old
// implementation silently lost everything past the cap.
func TestGetSystemLogsUnaffectedByMemoryCapEviction(t *testing.T) {
	// Load(120 records) + 180 script ops ≈ 300+ audit entries: a cap of
	// 50 forces multiple evictions.
	uncapped, _, _ := trailFor(t, audit.PipeBatched, 1<<20)
	capped, _, _ := trailFor(t, audit.PipeBatched, 50)
	if len(uncapped) < 250 {
		t.Fatalf("trail has only %d entries — eviction never triggered, test is vacuous", len(uncapped))
	}
	assertEntriesEqual(t, "capped vs uncapped GET-SYSTEM-LOGS", capped, uncapped)
}

// TestGetSystemLogsSurvivesReopen pins crash-replay over segments: the
// trail reopened from disk answers the same Range as the live log did.
func TestGetSystemLogsSurvivesReopen(t *testing.T) {
	live, _, reopen := trailFor(t, audit.PipeAsync, 50)
	replayed := reopen()
	// The live answer includes one extra trailing entry: the audit
	// record of the GET-SYSTEM-LOGS call itself is appended after the
	// range is taken, so it lands outside `live` but inside the reopened
	// trail.
	if len(replayed) != len(live)+1 {
		t.Fatalf("reopened trail has %d entries, want %d+1", len(replayed), len(live))
	}
	assertEntriesEqual(t, "reopened prefix", replayed[:len(live)], live)
	if last := replayed[len(replayed)-1]; last.Op != "GET-SYSTEM-LOGS" {
		t.Fatalf("trailing entry = %+v, want the GET-SYSTEM-LOGS self-audit", last)
	}
}

// TestGetSystemLogsIdenticalAcrossPipelines pins that sync, batched and
// async audit produce byte-identical compliance trails for the same
// operation sequence — the pipeline changes cost, never evidence.
func TestGetSystemLogsIdenticalAcrossPipelines(t *testing.T) {
	want, _, _ := trailFor(t, audit.PipeSync, 1<<20)
	for _, policy := range []audit.Pipeline{audit.PipeBatched, audit.PipeAsync} {
		got, _, _ := trailFor(t, policy, 1<<20)
		assertEntriesEqual(t, policy.String()+" vs sync trail", got, want)
	}
}

// TestAuditStatsExposed pins the middleware's pipeline accounting (the
// gdprbench -json audit block's source).
func TestAuditStatsExposed(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	c := openRedis(t, sim, Full())
	cfg := Config{Records: 50, Operations: 10, Threads: 1, Seed: 3}.WithDefaults()
	if _, _, err := Load(c, cfg, sim); err != nil {
		t.Fatal(err)
	}
	st, ok := c.AuditStats()
	if !ok {
		t.Fatal("AuditStats reported logging off under Full compliance")
	}
	if st.Appended < 50 || st.Bytes <= 0 || st.Batches <= 0 || st.Segments < 1 {
		t.Fatalf("implausible audit stats: %+v", st)
	}
	// Logging off: no stats.
	noLog := openRedis(t, sim, Compliance{AccessControl: true})
	if _, ok := noLog.AuditStats(); ok {
		t.Fatal("AuditStats reported logging on without Logging")
	}
}

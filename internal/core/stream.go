package core

// Streaming selector reads: the cursor counterpart of Engine.Select.
// A RecordCursor hands back records a bounded chunk at a time so a
// portability export of one subject among millions costs O(chunk)
// memory, not O(result), at every layer that composes over it (shard
// router, middleware, wire protocol, remote client). Engines that can
// walk their storage incrementally implement StreamEngine; StreamOf
// papers over the rest by materializing once and chunking the slice,
// so callers can always obtain a cursor.

import (
	"fmt"
	"io"
	"time"

	"repro/internal/acl"
	"repro/internal/gdpr"
	"repro/internal/obs"
	"repro/internal/relstore"
)

// DefaultStreamChunk is the chunk size used when a caller passes 0.
const DefaultStreamChunk = 256

// RecordCursor iterates a selector result set chunk by chunk. Next
// returns the next non-empty batch of records, or io.EOF when the
// stream is exhausted; any other error is terminal. Close releases the
// cursor's resources and is safe to call at any point, including after
// EOF and more than once. Cursors are not safe for concurrent use.
type RecordCursor interface {
	Next() ([]gdpr.Record, error)
	Close() error
}

// StreamEngine is implemented by engines whose storage supports chunked
// selector iteration. SelectStream returns a cursor over the same
// result set Select(sel) materializes; chunk <= 0 selects
// DefaultStreamChunk. Under a quiescent store the concatenated chunks
// are identical to the materialized result; under concurrent mutation
// each chunk observes the engine state at its own Next call (per-chunk
// snapshots — see DESIGN.md §1i).
type StreamEngine interface {
	Engine
	SelectStream(sel gdpr.Selector, chunk int) (RecordCursor, error)
}

// StreamReader is implemented by DBs that serve compliance-checked
// streaming reads (the cursor counterpart of ReadData/ReadMetadata).
// ACL filtering and redaction apply per chunk; the audit trail records
// one entry per stream when the cursor completes (EOF, error, or
// Close), carrying the total record count.
type StreamReader interface {
	ReadDataStream(a acl.Actor, sel gdpr.Selector, chunk int) (RecordCursor, error)
	ReadMetadataStream(a acl.Actor, sel gdpr.Selector, chunk int) (RecordCursor, error)
}

func normChunk(chunk int) int {
	if chunk <= 0 {
		return DefaultStreamChunk
	}
	return chunk
}

// ---------------------------------------------------------------------------
// Materialized fallback

// sliceCursor chunks an already-materialized result set.
type sliceCursor struct {
	recs  []gdpr.Record
	chunk int
}

// SliceCursor returns a cursor over an in-memory result set — the
// materialized fallback for engines without SelectStream and the
// server's ablation path.
func SliceCursor(recs []gdpr.Record, chunk int) RecordCursor {
	return &sliceCursor{recs: recs, chunk: normChunk(chunk)}
}

func (c *sliceCursor) Next() ([]gdpr.Record, error) {
	if len(c.recs) == 0 {
		return nil, io.EOF
	}
	n := min(c.chunk, len(c.recs))
	out := c.recs[:n:n]
	c.recs = c.recs[n:]
	return out, nil
}

func (c *sliceCursor) Close() error {
	c.recs = nil
	return nil
}

// Drain consumes cur to EOF, returning the concatenated result, and
// closes it. It is how a caller that ultimately wants the materialized
// result exercises the streaming path (the equivalence tests and the
// validate-oracle-over-iterator leg).
func Drain(cur RecordCursor) ([]gdpr.Record, error) {
	defer cur.Close()
	var out []gdpr.Record
	for {
		recs, err := cur.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, recs...)
	}
}

// StreamOf returns a cursor over e's result set for sel: the engine's
// own SelectStream when it implements StreamEngine, otherwise a
// SliceCursor over a one-shot materialized Select. Key selectors are
// always served as a single-record chunk via Get.
func StreamOf(e Engine, sel gdpr.Selector, chunk int) (RecordCursor, error) {
	if se, ok := e.(StreamEngine); ok {
		return se.SelectStream(sel, chunk)
	}
	recs, err := e.Select(sel)
	if err != nil {
		return nil, err
	}
	return SliceCursor(recs, chunk), nil
}

// ---------------------------------------------------------------------------
// kvEngine streaming

// SelectStream implements StreamEngine for the Redis-model engine: key
// selectors resolve to a single Get; indexed equality selectors walk the
// inverted metadata index per stripe in bounded chunks (IndexedChunk);
// everything else walks the keyspace through the positional scan cursor
// (ScanChunk). Both walks hold each stripe lock only per chunk.
func (e *kvEngine) SelectStream(sel gdpr.Selector, chunk int) (RecordCursor, error) {
	chunk = normChunk(chunk)
	if sel.Attr == gdpr.AttrKey {
		rec, ok, err := e.Get(sel.Value)
		if err != nil {
			return nil, err
		}
		if !ok {
			return SliceCursor(nil, chunk), nil
		}
		return SliceCursor([]gdpr.Record{rec}, chunk), nil
	}
	if indexable(sel) && e.store.MetadataIndexed() {
		return &kvIndexedCursor{e: e, sel: sel, chunk: chunk}, nil
	}
	return &kvScanCursor{e: e, sel: sel, chunk: chunk}, nil
}

// kvIndexedCursor streams an indexed equality selector: `after` is the
// last emitted (or bound-advanced) key, so each Next call resumes the
// global sorted key order where the previous chunk stopped.
type kvIndexedCursor struct {
	e     *kvEngine
	sel   gdpr.Selector
	chunk int
	after string
	done  bool
}

func (c *kvIndexedCursor) Next() ([]gdpr.Record, error) {
	if c.done {
		return nil, io.EOF
	}
	for {
		out := make([]gdpr.Record, 0, c.chunk)
		var decodeErr error
		next, done, ok := c.e.store.IndexedChunk(c.sel.Attr, c.sel.Value, c.after, c.chunk,
			func(key, value string, _ time.Time) {
				if decodeErr != nil {
					return
				}
				rec, err := gdpr.Decode(value)
				if err != nil {
					decodeErr = fmt.Errorf("core: record %q: %w", key, err)
					return
				}
				if c.sel.Matches(rec) {
					out = append(out, rec)
				}
			})
		if decodeErr != nil {
			c.done = true
			return nil, decodeErr
		}
		if !ok {
			// Indexing was toggled off under the cursor; there is no
			// consistent way to resume a key-ordered walk mid-stream.
			c.done = true
			return nil, fmt.Errorf("core: metadata index unavailable mid-stream for %s=%s", c.sel.Attr, c.sel.Value)
		}
		c.after = next
		if len(out) > 0 {
			if done {
				c.done = true
			}
			return out, nil
		}
		if done {
			c.done = true
			return nil, io.EOF
		}
		// A whole chunk of expired holes or non-matching postings:
		// the cursor advanced, try the next window.
	}
}

func (c *kvIndexedCursor) Close() error {
	c.done = true
	return nil
}

// kvScanCursor streams a scan-path selector through the positional scan
// cursor, filtering with sel.Matches like Select's scan leg.
type kvScanCursor struct {
	e      *kvEngine
	sel    gdpr.Selector
	chunk  int
	cursor int
	done   bool
}

func (c *kvScanCursor) Next() ([]gdpr.Record, error) {
	if c.done {
		return nil, io.EOF
	}
	for {
		out := make([]gdpr.Record, 0, c.chunk)
		var decodeErr error
		next, done := c.e.store.ScanChunk(c.cursor, c.chunk,
			func(key, value string, _ time.Time) {
				if decodeErr != nil {
					return
				}
				rec, err := gdpr.Decode(value)
				if err != nil {
					decodeErr = fmt.Errorf("core: record %q: %w", key, err)
					return
				}
				if c.sel.Matches(rec) {
					out = append(out, rec)
				}
			})
		if decodeErr != nil {
			c.done = true
			return nil, decodeErr
		}
		c.cursor = next
		if len(out) > 0 {
			if done {
				c.done = true
			}
			return out, nil
		}
		if done {
			c.done = true
			return nil, io.EOF
		}
	}
}

func (c *kvScanCursor) Close() error {
	c.done = true
	return nil
}

var _ StreamEngine = (*kvEngine)(nil)

// ---------------------------------------------------------------------------
// relEngine streaming

// SelectStream implements StreamEngine for the PostgreSQL-model engine:
// key selectors resolve to a single Get; everything else becomes a
// bounded pk-ordered range walk with a per-row predicate filter
// (SelectChunk), resolving against a fresh btree snapshot per chunk.
func (e *relEngine) SelectStream(sel gdpr.Selector, chunk int) (RecordCursor, error) {
	chunk = normChunk(chunk)
	if sel.Attr == gdpr.AttrKey {
		rec, ok, err := e.Get(sel.Value)
		if err != nil {
			return nil, err
		}
		if !ok {
			return SliceCursor(nil, chunk), nil
		}
		return SliceCursor([]gdpr.Record{rec}, chunk), nil
	}
	pred, err := predicateFor(sel)
	if err != nil {
		return nil, err
	}
	return &relChunkCursor{e: e, pred: pred, chunk: chunk}, nil
}

// relChunkCursor streams SelectChunk pages; `after` is the pk of the
// last returned row.
type relChunkCursor struct {
	e     *relEngine
	pred  relstore.Predicate
	chunk int
	after string
	done  bool
}

func (c *relChunkCursor) Next() ([]gdpr.Record, error) {
	if c.done {
		return nil, io.EOF
	}
	rows, err := c.e.db.SelectChunk(RecordsTable, c.pred, c.after, c.chunk)
	if err != nil {
		c.done = true
		return nil, err
	}
	if len(rows) < c.chunk {
		// SelectChunk only comes back short when the table is exhausted.
		c.done = true
	}
	if len(rows) == 0 {
		return nil, io.EOF
	}
	recs := make([]gdpr.Record, len(rows))
	for i, row := range rows {
		recs[i] = recordFromRow(row)
	}
	c.after = recs[len(recs)-1].Key
	return recs, nil
}

func (c *relChunkCursor) Close() error {
	c.done = true
	return nil
}

var _ StreamEngine = (*relEngine)(nil)

// ---------------------------------------------------------------------------
// Middleware streaming reads

// ReadDataStream implements StreamReader: the cursor counterpart of
// ReadData. Compliance work is paid per chunk — ACL filtering as each
// batch surfaces, the in-transit record layer per chunk crossing the
// simulated wire — while the audit trail records ONE entry when the
// stream completes (EOF, terminal error, or early Close), carrying the
// total record count, mirroring the one-entry-per-operation contract of
// the materialized path.
func (m *middleware) ReadDataStream(a acl.Actor, sel gdpr.Selector, chunk int) (RecordCursor, error) {
	return m.openStream(kReadDataStream, a, sel, chunk, acl.VerbReadData, false)
}

// ReadMetadataStream implements StreamReader: ReadMetadata's cursor
// counterpart — ACL-filtered and Data-redacted per chunk.
func (m *middleware) ReadMetadataStream(a acl.Actor, sel gdpr.Selector, chunk int) (RecordCursor, error) {
	return m.openStream(kReadMetaStream, a, sel, chunk, acl.VerbReadMetadata, true)
}

func (m *middleware) openStream(k opKind, a acl.Actor, sel gdpr.Selector, chunk int, verb acl.Verb, redact bool) (RecordCursor, error) {
	sp := m.begin(k, a, string(sel.Attr))
	sp.EnterPhase(obs.PhaseEngine)
	inner, err := StreamOf(m.eng, sel, chunk)
	if err != nil {
		sp.EnterPhase(obs.PhaseAudit)
		auditOp(m.log, a, opKindNames[k], sel.String(), false, "")
		m.finish(k, sp, err)
		return nil, err
	}
	return &mwCursor{m: m, k: k, sp: sp, inner: inner, a: a, sel: sel, verb: verb, redact: redact}, nil
}

// mwCursor wraps an engine cursor with the per-chunk compliance work.
type mwCursor struct {
	m      *middleware
	k      opKind
	sp     *obs.Span
	inner  RecordCursor
	a      acl.Actor
	sel    gdpr.Selector
	verb   acl.Verb
	redact bool
	total  int
	closed bool
}

func (c *mwCursor) Next() ([]gdpr.Record, error) {
	if c.closed {
		return nil, io.EOF
	}
	for {
		c.sp.EnterPhase(obs.PhaseEngine)
		recs, err := c.inner.Next()
		if err == io.EOF {
			c.finalize(nil)
			return nil, io.EOF
		}
		if err != nil {
			c.finalize(err)
			return nil, err
		}
		c.sp.EnterPhase(obs.PhaseACL)
		out := filterACL(c.m.comp.AccessControl, c.a, c.verb, recs, nil)
		if c.redact {
			out = redactData(out)
		}
		if len(out) == 0 {
			// The ACL filter can empty a chunk; keep pulling — Next's
			// contract is a non-empty batch or EOF.
			continue
		}
		if c.m.pipe != nil {
			// Each chunk crosses the simulated wire as its own record-layer
			// message — the transit cost the streaming path actually pays.
			c.sp.EnterPhase(obs.PhaseTransit)
			if _, err := c.m.pipe.RoundTrip([]byte("STREAM-CHUNK"), func([]byte) []byte {
				return []byte(encodeAll(out))
			}); err != nil {
				c.finalize(err)
				return nil, err
			}
		}
		c.total += len(out)
		return out, nil
	}
}

func (c *mwCursor) Close() error {
	err := c.inner.Close()
	c.finalize(nil)
	return err
}

// finalize emits the stream's single audit entry and closes the span;
// idempotent so EOF-then-Close (the normal shape) audits once.
func (c *mwCursor) finalize(err error) {
	if c.closed {
		return
	}
	c.closed = true
	c.sp.EnterPhase(obs.PhaseAudit)
	auditOp(c.m.log, c.a, opKindNames[c.k], c.sel.String(), err == nil, countNote(c.total))
	c.m.finish(c.k, c.sp, err)
}

var _ StreamReader = (*middleware)(nil)

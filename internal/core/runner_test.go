package core

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/acl"
	"repro/internal/clock"
	"repro/internal/dist"
	"repro/internal/gdpr"
)

// These tests exercise the executor and validator details beyond the
// whole-workload runs in core_test.go: per-query stats, ACL denials as
// valid outcomes, deletion sampling, and engine parity on every query
// family.

func TestRunRecordsPerQueryStats(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	c := openRedis(t, sim, Full())
	cfg := Config{Records: 200, Operations: 400, Threads: 4, Seed: 11}.WithDefaults()
	ds, _, err := Load(c, cfg, sim)
	if err != nil {
		t.Fatal(err)
	}
	run, err := Run(c, ds, Customer, sim)
	if err != nil {
		t.Fatal(err)
	}
	names := run.OpNames()
	// All five customer query families should appear with 400 ops.
	want := map[string]bool{
		string(QReadDataByUser): true, string(QReadMetaByKey): true,
		string(QUpdateDataByKey): true, string(QUpdateMetaByKey): true,
		string(QDeleteByKey): true,
	}
	for _, n := range names {
		if !want[n] {
			t.Fatalf("unexpected op %q in customer run", n)
		}
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("missing ops: %v (got %v)", want, names)
	}
	if !strings.Contains(run.Summary(), "[OVERALL]") {
		t.Fatal("summary missing overall section")
	}
}

// TestEveryQueryFamilyOnBothEngines drives each §3.3 query family
// directly and checks the two client stubs agree on the result counts —
// an engine-parity test narrower than full validation.
func TestEveryQueryFamilyOnBothEngines(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	cfg := Config{Records: 120, Operations: 10, Threads: 1, Seed: 2}.WithDefaults()

	type resultSet map[string]int
	runAll := func(db DB) resultSet {
		ds, _, err := Load(db, cfg, sim)
		if err != nil {
			t.Fatal(err)
		}
		out := resultSet{}
		count := func(name string, n int, err error) {
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			out[name] = n
		}
		recs, err := db.ReadData(ds.ProcessorActor(3), gdpr.ByPurpose(ds.PurposeName(3)))
		count("read-data-by-pur", len(recs), err)
		recs, err = db.ReadData(ds.CustomerActor(5), gdpr.ByUser(ds.UserName(5)))
		count("read-data-by-usr", len(recs), err)
		recs, err = db.ReadData(ds.ProcessorActor(0), gdpr.ByObjection(ds.PurposeName(0)))
		count("read-data-by-obj", len(recs), err)
		recs, err = db.ReadData(ds.ProcessorActor(1), gdpr.ByDecision(ds.DecisionName(1)))
		count("read-data-by-dec", len(recs), err)
		recs, err = db.ReadMetadata(RegulatorActor(), gdpr.ByUser(ds.UserName(2)))
		count("read-meta-by-usr", len(recs), err)
		recs, err = db.ReadMetadata(RegulatorActor(), gdpr.ByShare(ds.ShareName(1)))
		count("read-meta-by-shr", len(recs), err)
		n, err := db.UpdateMetadata(ControllerActor(), gdpr.ByUser(ds.UserName(7)),
			gdpr.Delta{Attr: gdpr.AttrSharing, Op: gdpr.DeltaAdd, Values: []string{"shr-x"}})
		count("update-meta-by-usr", n, err)
		n, err = db.UpdateData(ds.CustomerActor(ds.OwnerOfKey(9)), ds.KeyAt(9), "rectified00")
		count("update-data-by-key", n, err)
		n, err = db.DeleteRecord(ControllerActor(), gdpr.ByUser(ds.UserName(4)))
		count("delete-by-usr", n, err)
		n, err = db.DeleteRecord(ControllerActor(), gdpr.ByExpiredAt(sim.Now()))
		count("delete-by-ttl", n, err)
		present, err := db.VerifyDeletion(RegulatorActor(), []string{ds.KeyAt(9), "never-existed"})
		count("verify-deletion", present, err)
		return out
	}

	redis := openRedis(t, sim, Full())
	pg := openPostgres(t, sim, Full())
	r := runAll(redis)
	p := runAll(pg)
	for name, rv := range r {
		if pv, ok := p[name]; !ok || pv != rv {
			t.Errorf("%s: redis=%d postgres=%d", name, rv, pv)
		}
	}
}

func TestExecuteUnknownQueryFails(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	c := openRedis(t, sim, None())
	ds := NewDataset(Config{Records: 10, Seed: 1}.WithDefaults(), sim.Now())
	oc := testOpContext(ds, sim)
	if err := execute(c, QueryType("bogus"), oc); err == nil {
		t.Fatal("unknown query should fail")
	}
}

func TestDeniedOpsAreNotErrors(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	c := openRedis(t, sim, Full())
	cfg := Config{Records: 50, Operations: 5, Threads: 1, Seed: 2}.WithDefaults()
	ds, _, err := Load(c, cfg, sim)
	if err != nil {
		t.Fatal(err)
	}
	// A customer attempting a by-TTL purge is denied by the client stub;
	// the executor must swallow the denial as a valid outcome.
	oc := testOpContext(ds, sim)
	// Force the deletion path through a non-controller by calling the
	// client directly and checking the error type, then the executor.
	_, err = c.DeleteRecord(ds.CustomerActor(0), gdpr.ByExpiredAt(sim.Now()))
	var denied *acl.DeniedError
	if !asDenied(err, &denied) {
		t.Fatalf("expected DeniedError, got %v", err)
	}
	if err := execute(c, QDeleteByTTL, oc); err != nil {
		t.Fatalf("executor surfaced error: %v", err)
	}
}

func asDenied(err error, target **acl.DeniedError) bool {
	for err != nil {
		if de, ok := err.(*acl.DeniedError); ok {
			*target = de
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func testOpContext(ds *Dataset, clk clock.Clock) *opContext {
	r := rand.New(rand.NewSource(99))
	sample := make([]string, 0, 8)
	return &opContext{
		ds:            ds,
		r:             r,
		keys:          &fixedGen{},
		secondary:     dist.NewUniform(r, 8),
		clk:           clk,
		newKeySeq:     &atomic.Int64{},
		deletedMu:     &sync.Mutex{},
		deletedSample: &sample,
	}
}

// Tiny helpers keeping the test self-contained without exporting runner
// internals.

type fixedGen struct{ n int64 }

func (f *fixedGen) Next() int64 { f.n++; return f.n % 10 }
func (f *fixedGen) Last() int64 { return f.n % 10 }

func TestOpContextDeletedSampling(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	ds := NewDataset(Config{Records: 10, Seed: 1}.WithDefaults(), sim.Now())
	oc := testOpContext(ds, sim)
	// Before anything is deleted, samples are synthetic missing keys.
	for _, k := range oc.sampleDeleted(3) {
		if !strings.HasPrefix(k, "rec-deleted-") {
			t.Fatalf("synthetic key = %q", k)
		}
	}
	for i := 0; i < 300; i++ {
		oc.recordDeleted(fmt.Sprintf("k%d", i))
	}
	if got := len(*oc.deletedSample); got > 256 {
		t.Fatalf("sample grew unbounded: %d", got)
	}
	for _, k := range oc.sampleDeleted(5) {
		if !strings.HasPrefix(k, "k") {
			t.Fatalf("sampled key = %q", k)
		}
	}
}

func TestValidateDetectsBrokenEngine(t *testing.T) {
	// A DB that lies about deletions must be caught by the oracle.
	sim := clock.NewSim(time.Time{})
	inner := openRedis(t, sim, Compliance{Logging: true, Strict: true})
	cfg := Config{Records: 100, Operations: 200, Threads: 1, Seed: 3}.WithDefaults()
	ds, _, err := Load(inner, cfg, sim)
	if err != nil {
		t.Fatal(err)
	}
	broken := &lyingDB{DB: inner}
	rep, err := Validate(broken, ds, Customer, sim, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Score() >= 100 {
		t.Fatalf("oracle failed to catch a lying engine: %.2f%%", rep.Score())
	}
	if len(rep.Mismatches) == 0 {
		t.Fatal("no mismatches recorded")
	}
}

// lyingDB claims every delete removed an extra record.
type lyingDB struct{ DB }

func (l *lyingDB) DeleteRecord(a acl.Actor, sel gdpr.Selector) (int, error) {
	n, err := l.DB.DeleteRecord(a, sel)
	return n + 1, err
}

func TestRunMixCustomWorkload(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	c := openRedis(t, sim, Full())
	cfg := Config{Records: 100, Operations: 120, Threads: 2, Seed: 4}.WithDefaults()
	ds, _, err := Load(c, cfg, sim)
	if err != nil {
		t.Fatal(err)
	}
	// A custom "export service" mix: portability reads plus feature checks.
	mix := Mix{
		Name:    WorkloadName("exporter"),
		Queries: []QueryType{QReadDataByUser, QGetSystemFeatures},
		Weights: []float64{90, 10},
		Dist:    DistZipf,
	}
	run, err := RunMix(c, ds, mix, sim)
	if err != nil {
		t.Fatal(err)
	}
	if run.TotalErrors() != 0 {
		t.Fatalf("errors: %s", run.Summary())
	}
	names := run.OpNames()
	if len(names) != 2 {
		t.Fatalf("ops = %v", names)
	}
}

func TestRunMixRejectsMalformedMix(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	c := openRedis(t, sim, None())
	ds := NewDataset(Config{Records: 10, Seed: 1}.WithDefaults(), sim.Now())
	if _, err := RunMix(c, ds, Mix{}, sim); err == nil {
		t.Fatal("empty mix should fail")
	}
	bad := Mix{Queries: []QueryType{QCreateRecord}, Weights: []float64{1, 2}}
	if _, err := RunMix(c, ds, bad, sim); err == nil {
		t.Fatal("mismatched mix should fail")
	}
}

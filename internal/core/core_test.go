package core

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/acl"
	"repro/internal/clock"
	"repro/internal/gdpr"
)

func smallConfig() Config {
	return Config{
		Records:    400,
		Operations: 250,
		Threads:    4,
		Seed:       7,
	}.WithDefaults()
}

// openRedis returns a fully-compliant Redis-model client on a sim clock.
func openRedis(t testing.TB, sim *clock.Sim, comp Compliance) *RedisClient {
	t.Helper()
	c, err := OpenRedis(RedisConfig{
		Dir:                     t.TempDir(),
		Compliance:              comp,
		Clock:                   sim,
		DisableBackgroundExpiry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// openPostgres returns a Postgres-model client on a sim clock.
func openPostgres(t testing.TB, sim *clock.Sim, comp Compliance) *PostgresClient {
	t.Helper()
	c, err := OpenPostgres(PostgresConfig{
		Dir:              t.TempDir(),
		Compliance:       comp,
		Clock:            sim,
		DisableTTLDaemon: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestDefaultWorkloadsMatchTable2a(t *testing.T) {
	ws := DefaultWorkloads()
	if len(ws) != 4 {
		t.Fatalf("workloads = %d", len(ws))
	}
	sum := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s
	}
	// Controller: 25% create, 25% delete family, 50% update-metadata family; uniform.
	c := ws[Controller]
	if c.Dist != DistUniform {
		t.Fatal("controller dist")
	}
	if c.Weights[0] != 25 {
		t.Fatal("controller create weight")
	}
	if math.Abs(sum(c.Weights[1:4])-25) > 1e-9 || math.Abs(sum(c.Weights[4:])-50) > 1e-9 {
		t.Fatalf("controller family weights: %v", c.Weights)
	}
	// Customer: five query types at 20% each; zipf.
	cu := ws[Customer]
	if cu.Dist != DistZipf || len(cu.Queries) != 5 {
		t.Fatalf("customer mix: %+v", cu)
	}
	for _, w := range cu.Weights {
		if w != 20 {
			t.Fatalf("customer weights: %v", cu.Weights)
		}
	}
	// Processor: 80% read-by-key zipf, 20% metadata reads uniform.
	p := ws[Processor]
	if p.Weights[0] != 80 || math.Abs(sum(p.Weights[1:])-20) > 1e-9 {
		t.Fatalf("processor weights: %v", p.Weights)
	}
	if p.Dist != DistZipf || p.SecondaryDist != DistUniform {
		t.Fatal("processor dists")
	}
	// Regulator: 46/31/23 zipf.
	r := ws[Regulator]
	if !reflect.DeepEqual(r.Weights, []float64{46, 31, 23}) || r.Dist != DistZipf {
		t.Fatalf("regulator mix: %+v", r)
	}
	if r.Queries[0] != QReadMetaByUser || r.Queries[1] != QGetSystemLogs || r.Queries[2] != QVerifyDeletion {
		t.Fatalf("regulator queries: %v", r.Queries)
	}
	// Mix renders.
	if !strings.Contains(c.String(), "controller") {
		t.Fatal("mix string")
	}
}

func TestDatasetDeterministicAndStrictValid(t *testing.T) {
	cfg := smallConfig()
	ds := NewDataset(cfg, time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))
	for i := 0; i < 100; i++ {
		a := ds.RecordAt(i)
		b := ds.RecordAt(i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("record %d not deterministic", i)
		}
		if err := a.Validate(true); err != nil {
			t.Fatalf("record %d invalid: %v", i, err)
		}
		if a.Meta.User != ds.UserAt(i) {
			t.Fatalf("record %d owner mismatch", i)
		}
		if len(a.Data) != cfg.DataSize {
			t.Fatalf("record %d data size = %d", i, len(a.Data))
		}
	}
	// Distinct records have distinct keys.
	if ds.KeyAt(1) == ds.KeyAt(2) {
		t.Fatal("keys collide")
	}
}

func TestComplianceString(t *testing.T) {
	if None().String() != "none" {
		t.Fatalf("none = %q", None().String())
	}
	full := Full().String()
	for _, want := range []string{"rest", "transit", "log", "ttl", "acl", "strict"} {
		if !strings.Contains(full, want) {
			t.Fatalf("full = %q missing %q", full, want)
		}
	}
	if strings.Contains(full, "idx") {
		t.Fatal("Full should not enable indexing by default")
	}
}

func TestSpaceUsageFactor(t *testing.T) {
	s := SpaceUsage{PersonalBytes: 10, TotalBytes: 35}
	if s.Factor() != 3.5 {
		t.Fatalf("factor = %f", s.Factor())
	}
	if (SpaceUsage{}).Factor() != 0 {
		t.Fatal("zero factor")
	}
}

func runAllWorkloads(t *testing.T, db DB, sim *clock.Sim, cfg Config) {
	t.Helper()
	ds, loadRun, err := Load(db, cfg, sim)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if loadRun.TotalErrors() != 0 {
		t.Fatalf("load errors: %s", loadRun.Summary())
	}
	for _, name := range WorkloadNames() {
		run, err := Run(db, ds, name, sim)
		if err != nil {
			t.Fatalf("%s: %v\n%s", name, err, run.Summary())
		}
		if run.TotalErrors() != 0 {
			t.Fatalf("%s errors: %s", name, run.Summary())
		}
		if run.TotalOps() < int64(cfg.Operations) {
			t.Fatalf("%s ops = %d", name, run.TotalOps())
		}
	}
}

func TestRedisClientAllWorkloads(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	c := openRedis(t, sim, Full())
	runAllWorkloads(t, c, sim, smallConfig())
}

func TestPostgresClientAllWorkloads(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	c := openPostgres(t, sim, Full())
	runAllWorkloads(t, c, sim, smallConfig())
}

func TestPostgresClientAllWorkloadsIndexed(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	comp := Full()
	comp.MetadataIndexing = true
	c := openPostgres(t, sim, comp)
	runAllWorkloads(t, c, sim, smallConfig())
}

func TestBaselineNoComplianceWorkloads(t *testing.T) {
	// Without logging the regulator workload's GET-SYSTEM-LOGS fails, so
	// run only the other three.
	sim := clock.NewSim(time.Time{})
	c := openRedis(t, sim, None())
	cfg := smallConfig()
	ds, _, err := Load(c, cfg, sim)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []WorkloadName{Controller, Customer, Processor} {
		run, err := Run(c, ds, name, sim)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if run.TotalErrors() != 0 {
			t.Fatalf("%s errors: %s", name, run.Summary())
		}
	}
}

func validateClient(t *testing.T, open func() (DB, *Dataset, error), sim *clock.Sim, aclOn bool) CorrectnessReport {
	t.Helper()
	rep, err := ValidateAll(open, sim, aclOn)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Score() != 100 {
		t.Fatalf("correctness = %.2f%% (%d/%d)\nmismatches: %s",
			rep.Score(), rep.Matched, rep.Total, strings.Join(rep.Mismatches, "\n  "))
	}
	return rep
}

func TestRedisClientCorrectness(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	cfg := smallConfig()
	open := func() (DB, *Dataset, error) {
		c, err := OpenRedis(RedisConfig{
			Dir: t.TempDir(), Compliance: Full(), Clock: sim, DisableBackgroundExpiry: true,
		})
		if err != nil {
			return nil, nil, err
		}
		ds, _, err := Load(c, cfg, sim)
		if err != nil {
			c.Close()
			return nil, nil, err
		}
		return c, ds, nil
	}
	rep := validateClient(t, open, sim, true)
	if rep.Total < 4*cfg.Operations {
		t.Fatalf("validated %d queries", rep.Total)
	}
}

func TestPostgresClientCorrectness(t *testing.T) {
	for _, indexed := range []bool{false, true} {
		sim := clock.NewSim(time.Time{})
		cfg := smallConfig()
		comp := Full()
		comp.MetadataIndexing = indexed
		open := func() (DB, *Dataset, error) {
			c, err := OpenPostgres(PostgresConfig{
				Dir: t.TempDir(), Compliance: comp, Clock: sim, DisableTTLDaemon: true,
			})
			if err != nil {
				return nil, nil, err
			}
			ds, _, err := Load(c, cfg, sim)
			if err != nil {
				c.Close()
				return nil, nil, err
			}
			return c, ds, nil
		}
		validateClient(t, open, sim, true)
	}
}

func TestCorrectnessWithoutACL(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	cfg := smallConfig()
	comp := Compliance{Logging: true, Strict: true} // no ACL, no encryption
	open := func() (DB, *Dataset, error) {
		c, err := OpenRedis(RedisConfig{
			Dir: t.TempDir(), Compliance: comp, Clock: sim, DisableBackgroundExpiry: true,
		})
		if err != nil {
			return nil, nil, err
		}
		ds, _, err := Load(c, cfg, sim)
		if err != nil {
			c.Close()
			return nil, nil, err
		}
		return c, ds, nil
	}
	validateClient(t, open, sim, false)
}

func TestACLEnforcedAcrossClients(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	cfg := Config{Records: 50, Operations: 10, Threads: 1, Seed: 3}.WithDefaults()
	for _, mk := range []func() DB{
		func() DB { return openRedis(t, sim, Full()) },
		func() DB { return openPostgres(t, sim, Full()) },
	} {
		db := mk()
		ds, _, err := Load(db, cfg, sim)
		if err != nil {
			t.Fatal(err)
		}
		// A customer reading another user's records gets nothing.
		other := ds.CustomerActor(1)
		got, err := db.ReadData(other, gdpr.ByUser(ds.UserName(0)))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Fatalf("customer read another user's %d records", len(got))
		}
		// A regulator cannot read personal data.
		got, err = db.ReadData(RegulatorActor(), gdpr.ByUser(ds.UserName(0)))
		if err != nil || len(got) != 0 {
			t.Fatalf("regulator read %d records (err=%v)", len(got), err)
		}
		// A processor without the right purpose reads nothing by key.
		rec := ds.RecordAt(0)
		wrongPurpose := acl.Actor{Role: acl.Processor, ID: "p", Purpose: "purpose-nope"}
		got, err = db.ReadData(wrongPurpose, gdpr.ByKey(rec.Key))
		if err != nil || len(got) != 0 {
			t.Fatalf("processor with wrong purpose read %d records (err=%v)", len(got), err)
		}
		// A processor cannot delete.
		n, err := db.DeleteRecord(ds.ProcessorActor(0), gdpr.ByKey(rec.Key))
		if err != nil || n != 0 {
			t.Fatalf("processor deleted %d records (err=%v)", n, err)
		}
		// Customers cannot read system logs.
		if _, err := db.GetSystemLogs(ds.CustomerActor(0), sim.Now().Add(-time.Hour), sim.Now()); err == nil {
			t.Fatal("customer read system logs")
		}
	}
}

func TestMetadataReadsAreRedacted(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	cfg := Config{Records: 30, Operations: 10, Threads: 1, Seed: 3}.WithDefaults()
	for _, db := range []DB{openRedis(t, sim, Full()), openPostgres(t, sim, Full())} {
		ds, _, err := Load(db, cfg, sim)
		if err != nil {
			t.Fatal(err)
		}
		got, err := db.ReadMetadata(RegulatorActor(), gdpr.ByUser(ds.UserName(0)))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			t.Fatal("no metadata returned")
		}
		for _, r := range got {
			if r.Data != "" {
				t.Fatalf("metadata read leaked data %q", r.Data)
			}
			if r.Meta.User != ds.UserName(0) {
				t.Fatalf("wrong user %q", r.Meta.User)
			}
		}
	}
}

func TestTTLExpiryHidesRecordsOnRedis(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	c := openRedis(t, sim, Full())
	cfg := Config{Records: 100, Operations: 10, Threads: 1, Seed: 3, ShortTTLFraction: 0.3, ShortTTL: time.Minute}.WithDefaults()
	ds, _, err := Load(c, cfg, sim)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := c.ReadData(ControllerActor(), gdpr.ByUser(ds.UserName(0)))
	sim.Advance(2 * time.Minute) // past ShortTTL
	after, err := c.ReadData(ControllerActor(), gdpr.ByUser(ds.UserName(0)))
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(before) {
		t.Fatalf("expired records still visible: %d -> %d", len(before), len(after))
	}
}

func TestTTLSweepOnPostgres(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	c := openPostgres(t, sim, Full())
	cfg := Config{Records: 100, Operations: 10, Threads: 1, Seed: 3, ShortTTLFraction: 0.3, ShortTTL: time.Minute}.WithDefaults()
	if _, _, err := Load(c, cfg, sim); err != nil {
		t.Fatal(err)
	}
	sim.Advance(2 * time.Minute)
	n, err := c.SweepExpired()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("sweep deleted nothing")
	}
	// A second sweep finds nothing.
	n2, _ := c.SweepExpired()
	if n2 != 0 {
		t.Fatalf("second sweep deleted %d", n2)
	}
}

func TestGetSystemLogsRequiresLogging(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	comp := Compliance{AccessControl: true} // no logging
	for _, db := range []DB{openRedis(t, sim, comp), openPostgres(t, sim, comp)} {
		_, err := db.GetSystemLogs(RegulatorActor(), sim.Now().Add(-time.Hour), sim.Now())
		if !errors.Is(err, ErrFeatureDisabled) {
			t.Fatalf("err = %v, want ErrFeatureDisabled", err)
		}
	}
}

func TestSystemLogsRecordOperations(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	c := openRedis(t, sim, Full())
	cfg := Config{Records: 20, Operations: 10, Threads: 1, Seed: 3}.WithDefaults()
	ds, _, err := Load(c, cfg, sim)
	if err != nil {
		t.Fatal(err)
	}
	sim.Advance(time.Second)
	if _, err := c.ReadData(ds.ProcessorActor(0), gdpr.ByPurpose(ds.PurposeName(0))); err != nil {
		t.Fatal(err)
	}
	entries, err := c.GetSystemLogs(RegulatorActor(), sim.Now().Add(-time.Hour), sim.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < int(cfg.Records)+1 {
		t.Fatalf("log entries = %d, want >= %d", len(entries), cfg.Records+1)
	}
	found := false
	for _, e := range entries {
		if e.Op == "READ-DATA" && strings.HasPrefix(e.Actor, "processor:") {
			found = true
		}
	}
	if !found {
		t.Fatal("processor read not in audit trail")
	}
}

func TestSpaceUsageNearTable3Shape(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	cfg := Config{Records: 500, Operations: 10, Threads: 2, Seed: 3}.WithDefaults()

	redis := openRedis(t, sim, Full())
	if _, _, err := Load(redis, cfg, sim); err != nil {
		t.Fatal(err)
	}
	ru, err := redis.SpaceUsage()
	if err != nil {
		t.Fatal(err)
	}
	if ru.Factor() < 2 {
		t.Fatalf("redis space factor = %.2f, want metadata-dominated (>2)", ru.Factor())
	}

	pgPlain := openPostgres(t, sim, Full())
	if _, _, err := Load(pgPlain, cfg, sim); err != nil {
		t.Fatal(err)
	}
	pu, err := pgPlain.SpaceUsage()
	if err != nil {
		t.Fatal(err)
	}

	compIdx := Full()
	compIdx.MetadataIndexing = true
	pgIdx := openPostgres(t, sim, compIdx)
	if _, _, err := Load(pgIdx, cfg, sim); err != nil {
		t.Fatal(err)
	}
	iu, err := pgIdx.SpaceUsage()
	if err != nil {
		t.Fatal(err)
	}
	// Table 3's shape: indexes inflate the space factor substantially.
	if iu.Factor() <= pu.Factor()*1.2 {
		t.Fatalf("indexed factor %.2f not clearly above plain %.2f", iu.Factor(), pu.Factor())
	}
	t.Logf("space factors: redis=%.2f pg=%.2f pg+idx=%.2f", ru.Factor(), pu.Factor(), iu.Factor())
}

func TestVerifyDeletionCountsPresent(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	c := openPostgres(t, sim, Full())
	cfg := Config{Records: 10, Operations: 5, Threads: 1, Seed: 3}.WithDefaults()
	ds, _, err := Load(c, cfg, sim)
	if err != nil {
		t.Fatal(err)
	}
	owner := ds.CustomerActor(ds.OwnerOfKey(0))
	if _, err := c.DeleteRecord(owner, gdpr.ByKey(ds.KeyAt(0))); err != nil {
		t.Fatal(err)
	}
	n, err := c.VerifyDeletion(RegulatorActor(), []string{ds.KeyAt(0), ds.KeyAt(1)})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("present = %d, want 1", n)
	}
}

func TestGetSystemFeatures(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	comp := Full()
	comp.MetadataIndexing = true
	pg := openPostgres(t, sim, comp)
	f, err := pg.GetSystemFeatures(RegulatorActor())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f["indexes"], "personal_records.usr") {
		t.Fatalf("features = %v", f)
	}
	if f["compliance"] == "" || f["encrypt_in_transit"] != "true" {
		t.Fatalf("features = %v", f)
	}

	redis := openRedis(t, sim, Full())
	f, err = redis.GetSystemFeatures(RegulatorActor())
	if err != nil {
		t.Fatal(err)
	}
	if f["expiry_mode"] != "strict" || f["aof"] != "everysec" {
		t.Fatalf("redis features = %v", f)
	}
}

func TestRedisClientPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	sim := clock.NewSim(time.Time{})
	comp := Full()
	c, err := OpenRedis(RedisConfig{Dir: dir, Compliance: comp, Clock: sim, DisableBackgroundExpiry: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Records: 25, Operations: 5, Threads: 1, Seed: 3}.WithDefaults()
	ds, _, err := Load(c, cfg, sim)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenRedis(RedisConfig{Dir: dir, Compliance: comp, Clock: sim, DisableBackgroundExpiry: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got, err := c2.ReadData(ControllerActor(), gdpr.ByKey(ds.KeyAt(0)))
	if err != nil || len(got) != 1 {
		t.Fatalf("after reopen: %d records, err=%v", len(got), err)
	}
}

func TestPostgresClientPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	sim := clock.NewSim(time.Time{})
	comp := Full()
	open := func() *PostgresClient {
		c, err := OpenPostgres(PostgresConfig{Dir: dir, Compliance: comp, Clock: sim, DisableTTLDaemon: true})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c := open()
	cfg := Config{Records: 25, Operations: 5, Threads: 1, Seed: 3}.WithDefaults()
	ds, _, err := Load(c, cfg, sim)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2 := open()
	defer c2.Close()
	got, err := c2.ReadData(ControllerActor(), gdpr.ByKey(ds.KeyAt(0)))
	if err != nil || len(got) != 1 {
		t.Fatalf("after reopen: %d records, err=%v", len(got), err)
	}
}

func TestStrictModeRejectsBadRecords(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	c := openRedis(t, sim, Full())
	bad := gdpr.Record{Key: "k", Data: "d", Meta: gdpr.Metadata{User: "u"}} // no TTL
	if err := c.CreateRecord(ControllerActor(), bad); err == nil {
		t.Fatal("strict mode accepted record without TTL")
	}
}

func TestRunUnknownWorkloadFails(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	c := openRedis(t, sim, None())
	ds := NewDataset(Config{Records: 10}.WithDefaults(), sim.Now())
	if _, err := Run(c, ds, WorkloadName("nope"), sim); err == nil {
		t.Fatal("unknown workload should fail")
	}
	if _, err := Validate(c, ds, WorkloadName("nope"), sim, false); err == nil {
		t.Fatal("unknown workload validation should fail")
	}
}

func TestReportString(t *testing.T) {
	r := Report{
		Engine:  "redis",
		Records: 100,
		Results: []WorkloadResult{{
			Workload: Controller, Operations: 10, CompletionTime: time.Second,
			Throughput: 10, Correctness: 100,
		}},
		Space: SpaceUsage{PersonalBytes: 10, TotalBytes: 35},
	}
	s := r.String()
	for _, want := range []string{"redis", "controller", "3.50x", "correctness=100.0%"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/acl"
	"repro/internal/clock"
	"repro/internal/dist"
	"repro/internal/gdpr"
	"repro/internal/stats"
)

// loadBatchSize is how many records a load worker claims per engine call
// when the client supports batched creates.
const loadBatchSize = 128

// Load populates db with cfg.Records personal-data records as the
// controller, using cfg.Threads workers, and returns the dataset
// descriptor plus load statistics. Clients implementing BatchCreator
// (the PostgreSQL model) ingest batches of loadBatchSize records per
// engine call — one lock acquisition and one group-commit wait per
// batch; other clients load record by record.
func Load(db DB, cfg Config, clk clock.Clock) (*Dataset, *stats.Run, error) {
	cfg = cfg.WithDefaults()
	if clk == nil {
		clk = clock.NewReal()
	}
	ds := NewDataset(cfg, clk.Now())
	run := stats.NewRun()
	run.Start(time.Now())
	actor := ControllerActor()
	bc, batched := db.(BatchCreator)
	claim := int64(1)
	if batched {
		claim = loadBatchSize
	}
	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			op := run.Op(string(QCreateRecord))
			for {
				lo := next.Add(claim) - claim
				if lo >= int64(cfg.Records) {
					return
				}
				hi := lo + claim
				if hi > int64(cfg.Records) {
					hi = int64(cfg.Records)
				}
				t0 := time.Now()
				var err error
				if batched {
					recs := make([]gdpr.Record, 0, hi-lo)
					for i := lo; i < hi; i++ {
						recs = append(recs, ds.RecordAt(int(i)))
					}
					err = bc.CreateRecords(actor, recs)
				} else {
					err = db.CreateRecord(actor, ds.RecordAt(int(lo)))
				}
				elapsed := time.Since(t0)
				if err != nil {
					op.RecordErr(elapsed)
					firstErr.CompareAndSwap(nil, err)
					return
				}
				// Attribute the batch latency evenly across its records so
				// per-record stats stay comparable across load paths.
				per := elapsed / time.Duration(hi-lo)
				for i := lo; i < hi; i++ {
					op.RecordOK(per)
				}
			}
		}()
	}
	wg.Wait()
	run.Finish(time.Now())
	if err, _ := firstErr.Load().(error); err != nil {
		return nil, run, err
	}
	return ds, run, nil
}

// opContext carries per-worker state through query execution.
type opContext struct {
	ds   *Dataset
	r    *rand.Rand
	keys dist.Generator // selects record indexes under mix.Dist
	// secondary selects attribute-value indexes (purposes, shares,
	// decisions) for the minority query class under mix.SecondaryDist.
	secondary dist.Generator
	clk       clock.Clock
	// newKeySeq hands out indexes for controller-created records.
	newKeySeq *atomic.Int64
	// deletedSample remembers recently deleted keys for verify-deletion.
	deletedMu     *sync.Mutex
	deletedSample *[]string
}

func (oc *opContext) recordDeleted(keys ...string) {
	oc.deletedMu.Lock()
	defer oc.deletedMu.Unlock()
	for _, k := range keys {
		if len(*oc.deletedSample) >= 256 {
			(*oc.deletedSample)[oc.r.Intn(256)] = k
		} else {
			*oc.deletedSample = append(*oc.deletedSample, k)
		}
	}
}

func (oc *opContext) sampleDeleted(n int) []string {
	oc.deletedMu.Lock()
	defer oc.deletedMu.Unlock()
	if len(*oc.deletedSample) == 0 {
		// Nothing deleted yet: verify keys that never existed.
		out := make([]string, n)
		for i := range out {
			out[i] = fmt.Sprintf("rec-deleted-%06d", oc.r.Intn(1_000_000))
		}
		return out
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, (*oc.deletedSample)[oc.r.Intn(len(*oc.deletedSample))])
	}
	return out
}

// execute runs one query of type q against db, returning an error only
// for engine failures. Denials under access control and empty matches are
// valid benchmark outcomes.
func execute(db DB, q QueryType, oc *opContext) error {
	ds := oc.ds
	cfg := ds.Cfg
	i := int(oc.keys.Next()) // record index under the workload's distribution
	var err error
	switch q {
	case QCreateRecord:
		idx := int(oc.newKeySeq.Add(1))
		rec := ds.RecordAt(0) // shape template
		rec.Key = fmt.Sprintf("rec-new-%08d", idx)
		rec.Data = fmt.Sprintf("%0*d", cfg.DataSize, idx%1_000_000)
		rec.Meta.User = ds.UserAt(i)
		rec.Meta.Expiry = oc.clk.Now().Add(cfg.DefaultTTL)
		err = db.CreateRecord(ControllerActor(), rec)

	case QDeleteByKey:
		key := ds.KeyAt(i)
		_, err = db.DeleteRecord(ds.CustomerActor(ds.OwnerOfKey(i)), gdpr.ByKey(key))
		if err == nil {
			oc.recordDeleted(key)
		}
	case QDeleteByPurpose:
		_, err = db.DeleteRecord(ControllerActor(), gdpr.ByPurpose(ds.PurposeName(int(oc.secondary.Next()))))
	case QDeleteByTTL:
		_, err = db.DeleteRecord(ControllerActor(), gdpr.ByExpiredAt(oc.clk.Now()))
	case QDeleteByUser:
		_, err = db.DeleteRecord(ControllerActor(), gdpr.ByUser(ds.UserAt(i)))

	case QReadDataByKey:
		// The processor reads under the record's first load-time purpose,
		// which the dataset can recompute without touching the store.
		rec := ds.RecordAt(i)
		actor := acl.Actor{Role: acl.Processor, ID: "processor-1", Purpose: rec.Meta.Purposes[0]}
		_, err = db.ReadData(actor, gdpr.ByKey(rec.Key))
	case QReadDataByPurpose:
		p := int(oc.secondary.Next())
		_, err = db.ReadData(ds.ProcessorActor(p), gdpr.ByPurpose(ds.PurposeName(p)))
	case QReadDataByUser:
		u := ds.OwnerOfKey(i)
		_, err = db.ReadData(ds.CustomerActor(u), gdpr.ByUser(ds.UserName(u)))
	case QReadDataByObj:
		// Objection-conditioned processor read (G 21.3). Like the
		// GDPRbench implementation, the workload matches the OBJ
		// attribute value directly; the access-control layer then filters
		// out what the processor may not see.
		p := int(oc.secondary.Next())
		_, err = db.ReadData(ds.ProcessorActor(p), gdpr.ByObjection(ds.PurposeName(p)))
	case QReadDataByDec:
		p := int(oc.secondary.Next())
		_, err = db.ReadData(ds.ProcessorActor(p), gdpr.ByDecision(ds.DecisionName(p)))

	case QReadMetaByKey:
		_, err = db.ReadMetadata(ds.CustomerActor(ds.OwnerOfKey(i)), gdpr.ByKey(ds.KeyAt(i)))
	case QReadMetaByUser:
		_, err = db.ReadMetadata(RegulatorActor(), gdpr.ByUser(ds.UserAt(i)))
	case QReadMetaByShare:
		_, err = db.ReadMetadata(RegulatorActor(), gdpr.ByShare(ds.ShareName(int(oc.secondary.Next()))))

	case QUpdateDataByKey:
		newData := fmt.Sprintf("%0*d", cfg.DataSize, oc.r.Intn(1_000_000))
		_, err = db.UpdateData(ds.CustomerActor(ds.OwnerOfKey(i)), ds.KeyAt(i), newData)

	case QUpdateMetaByKey:
		// The customer flips an objection (G 18.1 / G 7.3).
		delta := gdpr.Delta{Attr: gdpr.AttrObjection, Op: gdpr.DeltaAdd, Values: []string{ds.PurposeName(oc.r.Intn(cfg.Purposes))}}
		_, err = db.UpdateMetadata(ds.CustomerActor(ds.OwnerOfKey(i)), gdpr.ByKey(ds.KeyAt(i)), delta)
	case QUpdateMetaByPur:
		// The controller extends retention for a purpose (G 13.3).
		delta := gdpr.Delta{Attr: gdpr.AttrTTL, Op: gdpr.DeltaSet, Expiry: oc.clk.Now().Add(cfg.DefaultTTL)}
		_, err = db.UpdateMetadata(ControllerActor(), gdpr.ByPurpose(ds.PurposeName(int(oc.secondary.Next()))), delta)
	case QUpdateMetaByUser:
		// The controller records a new third-party share for a user.
		delta := gdpr.Delta{Attr: gdpr.AttrSharing, Op: gdpr.DeltaAdd, Values: []string{ds.ShareName(oc.r.Intn(cfg.Shares))}}
		_, err = db.UpdateMetadata(ControllerActor(), gdpr.ByUser(ds.UserAt(i)), delta)
	case QUpdateMetaByShare:
		// The controller retires a third-party share.
		s := ds.ShareName(int(oc.secondary.Next()))
		delta := gdpr.Delta{Attr: gdpr.AttrSharing, Op: gdpr.DeltaRemove, Values: []string{s}}
		_, err = db.UpdateMetadata(ControllerActor(), gdpr.ByShare(s), delta)

	case QGetSystemLogs:
		now := oc.clk.Now()
		_, err = db.GetSystemLogs(RegulatorActor(), now.Add(-cfg.LogWindow), now)
	case QGetSystemFeatures:
		_, err = db.GetSystemFeatures(RegulatorActor())
	case QVerifyDeletion:
		_, err = db.VerifyDeletion(RegulatorActor(), oc.sampleDeleted(4))

	default:
		return fmt.Errorf("core: unknown query type %q", q)
	}
	// Access denials are correct benchmark responses, not failures.
	var denied *acl.DeniedError
	if errors.As(err, &denied) {
		return nil
	}
	return err
}

// Run executes one workload against db: cfg.Operations queries drawn from
// the workload's Table 2a mix, spread over cfg.Threads workers. The
// returned stats carry per-query latencies and the workload completion
// time (§4.2.3's headline metric).
func Run(db DB, ds *Dataset, name WorkloadName, clk clock.Clock) (*stats.Run, error) {
	mix, ok := DefaultWorkloads()[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown workload %q", name)
	}
	return RunMix(db, ds, mix, clk)
}

// RunMix executes a custom workload mix — §4.2.2 makes the default
// workloads replaceable ("we make it possible to update or replace them
// with custom workloads, when necessary"). The mix must name at least one
// query with positive weight.
func RunMix(db DB, ds *Dataset, mix Mix, clk clock.Clock) (*stats.Run, error) {
	if len(mix.Queries) == 0 || len(mix.Queries) != len(mix.Weights) {
		return nil, fmt.Errorf("core: mix needs equal, non-empty queries/weights")
	}
	if clk == nil {
		clk = clock.NewReal()
	}
	cfg := ds.Cfg
	run := stats.NewRun()
	var newKeySeq atomic.Int64
	var deletedMu sync.Mutex
	deletedSample := make([]string, 0, 256)
	var done atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup

	run.Start(time.Now())
	for t := 0; t < cfg.Threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.Seed + 1000 + int64(t)))
			oc := &opContext{
				ds:            ds,
				r:             r,
				keys:          newGenerator(r, mix.Dist, int64(cfg.Records)),
				secondary:     newGenerator(r, mix.SecondaryDist, int64(maxOf(cfg.Purposes, cfg.Shares, cfg.Decisions, cfg.Sources))),
				clk:           clk,
				newKeySeq:     &newKeySeq,
				deletedMu:     &deletedMu,
				deletedSample: &deletedSample,
			}
			chooser := dist.NewWeighted(r, mix.Queries, mix.Weights)
			for done.Add(1) <= int64(cfg.Operations) {
				q := chooser.Next()
				op := run.Op(string(q))
				t0 := time.Now()
				if err := execute(db, q, oc); err != nil {
					op.RecordErr(time.Since(t0))
					firstErr.CompareAndSwap(nil, err)
					return
				}
				op.RecordOK(time.Since(t0))
			}
		}(t)
	}
	wg.Wait()
	run.Finish(time.Now())
	if err, _ := firstErr.Load().(error); err != nil {
		return run, err
	}
	return run, nil
}

// newGenerator builds the index generator for a Table 2a distribution.
// Both the record-selection distribution (Mix.Dist) and the minority
// query class's attribute-value distribution (Mix.SecondaryDist) route
// through it, so a mix's declared distributions are what actually runs.
func newGenerator(r *rand.Rand, d Dist, n int64) dist.Generator {
	if d == DistZipf {
		return dist.NewScrambledZipfian(r, n)
	}
	return dist.NewUniform(r, n)
}

func maxOf(vs ...int) int {
	m := 1
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}

// WorkloadResult is one workload's §4.2.3 measurements.
type WorkloadResult struct {
	Workload       WorkloadName
	Operations     int64
	Errors         int64
	CompletionTime time.Duration
	Throughput     float64
	Correctness    float64 // 0..100; negative when not validated
}

// Report aggregates a full GDPRbench run.
type Report struct {
	Engine  string
	Records int
	Results []WorkloadResult
	Space   SpaceUsage
}

// String renders the report as text.
func (r Report) String() string {
	out := fmt.Sprintf("GDPRbench: engine=%s records=%d\n", r.Engine, r.Records)
	for _, res := range r.Results {
		out += fmt.Sprintf("  %-10s ops=%-7d errs=%-3d completion=%-12v tput=%8.1f ops/s",
			res.Workload, res.Operations, res.Errors, res.CompletionTime, res.Throughput)
		if res.Correctness >= 0 {
			out += fmt.Sprintf(" correctness=%.1f%%", res.Correctness)
		}
		out += "\n"
	}
	out += fmt.Sprintf("  space: personal=%dB total=%dB factor=%.2fx\n",
		r.Space.PersonalBytes, r.Space.TotalBytes, r.Space.Factor())
	return out
}

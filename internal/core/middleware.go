package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/acl"
	"repro/internal/audit"
	"repro/internal/clock"
	"repro/internal/gdpr"
	"repro/internal/obs"
	"repro/internal/transit"
)

// This file is the compliance middleware: one implementation of the §3.3
// query interface (core.DB) layered over any storage Engine. It owns every
// cross-cutting concern the two client stubs used to duplicate — strict
// validation, Figure 1 access control, metadata redaction, audit logging,
// the in-transit record layer, and read-modify-write re-checks under the
// engine lock — so a backend only implements the narrow Engine contract
// and inherits full GDPR compliance.

// WrapConfig configures Wrap.
type WrapConfig struct {
	// Compliance selects the feature set the middleware enforces.
	Compliance Compliance
	// Clock supplies time; defaults to the real clock.
	Clock clock.Clock
	// Audit is a pre-opened audit log to use (and close) when Logging is
	// on; the sharded PostgreSQL model shares one log between the
	// middleware and every shard's statement logger. When nil, the
	// middleware opens AuditPath itself.
	Audit *audit.Log
	// AuditPath is the audit-trail base path, used when Audit is nil.
	// Required when Logging is enabled.
	AuditPath string
	// AuditKey encrypts the audit trail at rest (nil = plaintext).
	AuditKey []byte
	// AuditPolicy selects the audit append pipeline (sync | batched |
	// async) when the middleware opens AuditPath itself.
	AuditPolicy audit.Pipeline
	// AuditSyncAlways makes the audit trail fsync per group commit (the
	// strict interpretation) instead of the paper's everysec batching.
	AuditSyncAlways bool
	// AuditMemoryCap bounds the audit log's in-memory tail (0 = its
	// default); queries stay correct past it via the segment store.
	AuditMemoryCap int
	// AuditRetention compacts trail segments older than this window
	// (0 keeps everything forever).
	AuditRetention time.Duration
	// TransitKey derives the in-transit record layer; required when
	// EncryptInTransit is enabled.
	TransitKey []byte
	// Obs is the observability registry the middleware reports to (op
	// counters, sampled phase spans, slowlog, audit-pipeline collector);
	// nil means the process-wide obs.Default().
	Obs *obs.Registry
}

// OpenAudit opens the audit trail described by a WrapConfig (sync policy
// per the paper's conventions — everysec unless AuditSyncAlways — with
// the configured pipeline and optional at-rest encryption). Sharded
// openers use it to create the single log all shards and the middleware
// share.
func OpenAudit(wc WrapConfig, clk clock.Clock) (*audit.Log, error) {
	policy := audit.SyncEverySec
	if wc.AuditSyncAlways {
		policy = audit.SyncAlways
	}
	return audit.Open(audit.Config{
		Path:      wc.AuditPath,
		Key:       wc.AuditKey,
		Policy:    policy,
		Pipeline:  wc.AuditPolicy,
		Clock:     clk,
		MemoryCap: wc.AuditMemoryCap,
		Retention: wc.AuditRetention,
	})
}

// Wrap layers the compliance middleware over an Engine, returning the
// GDPR query interface. When the engine implements BatchEngine the
// returned DB also implements BatchCreator, so core.Load batches.
func Wrap(e Engine, cfg WrapConfig) (DB, error) {
	m, err := newMiddleware(e, cfg)
	if err != nil {
		return nil, err
	}
	if _, ok := e.(BatchEngine); ok {
		return &batchDB{m}, nil
	}
	return m, nil
}

// opKind indexes the middleware's interned per-op metrics so the always-on
// counter increments never pay a map lookup on the hot path.
type opKind int

const (
	kCreate opKind = iota
	kCreateBatch
	kReadData
	kReadMeta
	kUpdateData
	kUpdateMeta
	kDelete
	kGetLogs
	kGetFeatures
	kVerifyDel
	kReadDataStream
	kReadMetaStream
	numOpKinds
)

// opKindNames are the metric label values — identical to the audit trail's
// op names so a slowlog entry, a metric series, and an audit line all name
// the op the same way.
var opKindNames = [numOpKinds]string{
	"CREATE-RECORD", "CREATE-RECORDS", "READ-DATA", "READ-METADATA",
	"UPDATE-DATA", "UPDATE-METADATA", "DELETE-RECORD", "GET-SYSTEM-LOGS",
	"GET-SYSTEM-FEATURES", "VERIFY-DELETION", "READ-DATA-STREAM",
	"READ-METADATA-STREAM",
}

type opMetrics struct {
	total *obs.Counter
	errs  *obs.Counter
}

// middleware implements DB over an Engine.
type middleware struct {
	eng  Engine
	log  *audit.Log
	pipe *transit.Pipe
	comp Compliance
	clk  clock.Clock
	obs  *obs.Registry
	ops  [numOpKinds]opMetrics
	coll *obs.CollectorHandle
}

func newMiddleware(e Engine, cfg WrapConfig) (*middleware, error) {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.NewReal()
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.Default()
	}
	m := &middleware{eng: e, comp: cfg.Compliance, clk: clk, log: cfg.Audit, obs: reg}
	for k := opKind(0); k < numOpKinds; k++ {
		m.ops[k] = opMetrics{
			total: reg.Counter(`gdpr_ops_total{op="` + opKindNames[k] + `"}`),
			errs:  reg.Counter(`gdpr_op_errors_total{op="` + opKindNames[k] + `"}`),
		}
	}
	if cfg.Compliance.Logging && m.log == nil {
		if cfg.AuditPath == "" {
			return nil, fmt.Errorf("core: logging requires an audit path")
		}
		log, err := OpenAudit(cfg, clk)
		if err != nil {
			return nil, err
		}
		m.log = log
	}
	if cfg.Compliance.EncryptInTransit {
		if len(cfg.TransitKey) == 0 {
			m.closeOwned()
			return nil, fmt.Errorf("core: in-transit encryption requires a transit key")
		}
		pipe, err := transit.NewPipe(cfg.TransitKey)
		if err != nil {
			m.closeOwned()
			return nil, err
		}
		m.pipe = pipe
	}
	if m.log != nil {
		// The audit pipeline's counters live in audit.Log; export them
		// pull-time so scrapes see the trail without new hot-path atomics.
		log := m.log
		m.coll = reg.RegisterCollector(func(emit func(string, int64, bool)) {
			s := log.Stats()
			emit("audit_appended_total", s.Appended, false)
			emit("audit_bytes_total", s.Bytes, false)
			emit("audit_batches_total", s.Batches, false)
			emit("audit_flushes_total", s.Flushes, false)
			emit("audit_compactions_total", s.Compactions, false)
			emit("audit_compacted_entries_total", s.CompactedEntries, false)
			emit("audit_max_queue_depth", s.MaxQueueDepth, true)
			emit("audit_segments", s.Segments, true)
		})
	}
	return m, nil
}

// closeOwned releases middleware-held resources without touching the
// engine (constructor error paths; the caller still owns the engine).
func (m *middleware) closeOwned() {
	if m.log != nil {
		m.log.Close()
	}
	m.coll.Close()
}

// begin counts the op (always) and opens a sampled span (usually nil). The
// span starts in the validate phase.
func (m *middleware) begin(k opKind, a acl.Actor, keyClass string) *obs.Span {
	m.ops[k].total.Inc()
	return m.obs.StartSpan(opKindNames[k], a.Role.String(), keyClass)
}

// finish counts a failure and closes the span.
func (m *middleware) finish(k opKind, sp *obs.Span, err error) {
	if err != nil {
		m.ops[k].errs.Inc()
	}
	sp.Finish(err)
}

// batchDB is the middleware with the bulk CREATE-RECORD path exposed; Wrap
// returns it when the engine can batch.
type batchDB struct{ *middleware }

// CreateRecords implements BatchCreator.
func (b *batchDB) CreateRecords(a acl.Actor, recs []gdpr.Record) error {
	return b.createBatch(a, recs)
}

// transitWrap pays the in-transit record-layer cost around fn. The request
// and response payloads cross the simulated wire. The span's engine phase
// brackets fn; the encrypt/decrypt work on both sides accumulates into the
// transit phase.
func (m *middleware) transitWrap(sp *obs.Span, req string, fn func() (string, error)) error {
	if m.pipe == nil {
		sp.EnterPhase(obs.PhaseEngine)
		_, err := fn()
		return err
	}
	sp.EnterPhase(obs.PhaseTransit)
	var opErr error
	_, err := m.pipe.RoundTrip([]byte(req), func([]byte) []byte {
		sp.EnterPhase(obs.PhaseEngine)
		resp, e := fn()
		opErr = e
		sp.EnterPhase(obs.PhaseTransit)
		return []byte(resp)
	})
	if opErr != nil {
		return opErr
	}
	return err
}

// fetch resolves a selector to records: the engine's point path for key
// lookups, its native selector path otherwise.
func (m *middleware) fetch(sel gdpr.Selector) ([]gdpr.Record, error) {
	if sel.Attr == gdpr.AttrKey {
		rec, ok, err := m.eng.Get(sel.Value)
		if err != nil || !ok {
			return nil, err
		}
		return []gdpr.Record{rec}, nil
	}
	return m.eng.Select(sel)
}

// CreateRecord implements DB.
func (m *middleware) CreateRecord(a acl.Actor, rec gdpr.Record) error {
	sp := m.begin(kCreate, a, "key")
	if err := rec.Validate(m.comp.Strict); err != nil {
		m.finish(kCreate, sp, err)
		return err
	}
	if m.comp.AccessControl {
		sp.EnterPhase(obs.PhaseACL)
		if err := acl.CheckRecord(a, acl.VerbCreate, rec, nil); err != nil {
			sp.EnterPhase(obs.PhaseAudit)
			auditOp(m.log, a, "CREATE-RECORD", rec.Key, false, err.Error())
			m.finish(kCreate, sp, err)
			return err
		}
	}
	err := m.transitWrap(sp, "CREATE "+rec.Key, func() (string, error) {
		return "OK", m.eng.Put(rec)
	})
	sp.EnterPhase(obs.PhaseAudit)
	auditOp(m.log, a, "CREATE-RECORD", rec.Key, err == nil, "")
	m.finish(kCreate, sp, err)
	return err
}

// createBatch validates and ACL-checks every record, then inserts the
// batch through the engine's bulk path — one engine call, one durability
// wait (or one per-shard fan-out) per batch instead of per record.
func (m *middleware) createBatch(a acl.Actor, recs []gdpr.Record) error {
	be, ok := m.eng.(BatchEngine)
	if !ok {
		for _, rec := range recs {
			if err := m.CreateRecord(a, rec); err != nil {
				return err
			}
		}
		return nil
	}
	sp := m.begin(kCreateBatch, a, "key")
	for _, rec := range recs {
		if err := rec.Validate(m.comp.Strict); err != nil {
			m.finish(kCreateBatch, sp, err)
			return err
		}
		if m.comp.AccessControl {
			sp.EnterPhase(obs.PhaseACL)
			if err := acl.CheckRecord(a, acl.VerbCreate, rec, nil); err != nil {
				sp.EnterPhase(obs.PhaseAudit)
				auditOp(m.log, a, "CREATE-RECORD", rec.Key, false, err.Error())
				m.finish(kCreateBatch, sp, err)
				return err
			}
		}
	}
	err := m.transitWrap(sp, fmt.Sprintf("CREATE-BATCH %d", len(recs)), func() (string, error) {
		return "OK", be.PutBatch(recs)
	})
	sp.EnterPhase(obs.PhaseAudit)
	auditOp(m.log, a, "CREATE-RECORDS", fmt.Sprintf("%d records", len(recs)), err == nil, "")
	m.finish(kCreateBatch, sp, err)
	return err
}

// ReadData implements DB.
func (m *middleware) ReadData(a acl.Actor, sel gdpr.Selector) ([]gdpr.Record, error) {
	sp := m.begin(kReadData, a, string(sel.Attr))
	var out []gdpr.Record
	err := m.transitWrap(sp, "READ-DATA "+sel.String(), func() (string, error) {
		recs, err := m.fetch(sel)
		if err != nil {
			return "", err
		}
		sp.EnterPhase(obs.PhaseACL)
		out = filterACL(m.comp.AccessControl, a, acl.VerbReadData, recs, nil)
		return encodeAll(out), nil
	})
	sp.EnterPhase(obs.PhaseAudit)
	auditOp(m.log, a, "READ-DATA", sel.String(), err == nil, countNote(len(out)))
	m.finish(kReadData, sp, err)
	return out, err
}

// ReadMetadata implements DB.
func (m *middleware) ReadMetadata(a acl.Actor, sel gdpr.Selector) ([]gdpr.Record, error) {
	sp := m.begin(kReadMeta, a, string(sel.Attr))
	var out []gdpr.Record
	err := m.transitWrap(sp, "READ-META "+sel.String(), func() (string, error) {
		recs, err := m.fetch(sel)
		if err != nil {
			return "", err
		}
		sp.EnterPhase(obs.PhaseACL)
		out = redactData(filterACL(m.comp.AccessControl, a, acl.VerbReadMetadata, recs, nil))
		return encodeAll(out), nil
	})
	sp.EnterPhase(obs.PhaseAudit)
	auditOp(m.log, a, "READ-METADATA", sel.String(), err == nil, countNote(len(out)))
	m.finish(kReadMeta, sp, err)
	return out, err
}

// rmw atomically applies mutate to the record at key, re-verifying the
// selector and the actor's rights under the engine lock (a concurrent
// mutation may have changed the record since it was selected). It reports
// whether the record was updated.
func (m *middleware) rmw(a acl.Actor, verb acl.Verb, key string, sel gdpr.Selector, delta *gdpr.Delta, mutate func(*gdpr.Record) error) (bool, error) {
	updated, err := m.eng.Update(key, func(rec gdpr.Record) (gdpr.Record, error) {
		if !sel.Matches(rec) {
			return gdpr.Record{}, errSkipUpdate
		}
		if m.comp.AccessControl {
			if err := acl.CheckRecord(a, verb, rec, delta); err != nil {
				return gdpr.Record{}, errSkipUpdate
			}
		}
		if err := mutate(&rec); err != nil {
			return gdpr.Record{}, err
		}
		if err := rec.Validate(m.comp.Strict); err != nil {
			return gdpr.Record{}, err
		}
		return rec, nil
	})
	if errors.Is(err, errSkipUpdate) {
		return false, nil
	}
	return updated, err
}

// UpdateData implements DB.
func (m *middleware) UpdateData(a acl.Actor, key, data string) (int, error) {
	sp := m.begin(kUpdateData, a, "key")
	n := 0
	err := m.transitWrap(sp, "UPDATE-DATA "+key, func() (string, error) {
		ok, err := m.rmw(a, acl.VerbUpdateData, key, gdpr.ByKey(key), nil, func(rec *gdpr.Record) error {
			rec.Data = data
			return nil
		})
		if err != nil {
			return "", err
		}
		if ok {
			n = 1
		}
		return fmt.Sprintf("%d", n), nil
	})
	sp.EnterPhase(obs.PhaseAudit)
	auditOp(m.log, a, "UPDATE-DATA", key, err == nil, countNote(n))
	m.finish(kUpdateData, sp, err)
	return n, err
}

// UpdateMetadata implements DB. Candidate keys are collected in ONE
// selector resolution (a single scan on the Redis model, one index probe
// on the PostgreSQL model, one scatter-gather on the shard router); each
// candidate is then re-checked against the selector and the actor's
// rights at apply time under the engine lock, so a by-user update is one
// scan plus k point read-modify-writes, not k+1 scans.
func (m *middleware) UpdateMetadata(a acl.Actor, sel gdpr.Selector, delta gdpr.Delta) (int, error) {
	sp := m.begin(kUpdateMeta, a, string(sel.Attr))
	n := 0
	err := m.transitWrap(sp, "UPDATE-META "+sel.String(), func() (string, error) {
		keys, err := m.eng.SelectKeys(sel)
		if err != nil {
			return "", err
		}
		for _, key := range keys {
			ok, err := m.rmw(a, acl.VerbUpdateMetadata, key, sel, &delta, func(r *gdpr.Record) error {
				return delta.Apply(&r.Meta)
			})
			if err != nil {
				return "", err
			}
			if ok {
				n++
			}
		}
		return fmt.Sprintf("%d", n), nil
	})
	sp.EnterPhase(obs.PhaseAudit)
	auditOp(m.log, a, "UPDATE-METADATA", sel.String(), err == nil, countNote(n))
	m.finish(kUpdateMeta, sp, err)
	return n, err
}

// DeleteRecord implements DB.
func (m *middleware) DeleteRecord(a acl.Actor, sel gdpr.Selector) (int, error) {
	sp := m.begin(kDelete, a, string(sel.Attr))
	n := 0
	err := m.transitWrap(sp, "DELETE "+sel.String(), func() (string, error) {
		var keys []string
		if sel.Attr == gdpr.AttrTTL {
			// Purge expired records (G 5(1e)): engines resolve this from
			// their expiry tracking without a value scan, and the purge is
			// not ACL-filtered per record — only controllers may run it.
			if m.comp.AccessControl && a.Role != acl.Controller {
				return "", &acl.DeniedError{Actor: a, Verb: acl.VerbDelete, Reason: "only controllers purge by TTL"}
			}
			var err error
			keys, err = m.eng.SelectKeys(sel)
			if err != nil {
				return "", err
			}
		} else {
			recs, err := m.fetch(sel)
			if err != nil {
				return "", err
			}
			recs = filterACL(m.comp.AccessControl, a, acl.VerbDelete, recs, nil)
			keys = make([]string, len(recs))
			for i, r := range recs {
				keys[i] = r.Key
			}
		}
		if len(keys) == 0 {
			return "0", nil
		}
		deleted, err := m.eng.Delete(keys)
		if err != nil {
			return "", err
		}
		n = deleted
		return fmt.Sprintf("%d", n), nil
	})
	sp.EnterPhase(obs.PhaseAudit)
	auditOp(m.log, a, "DELETE-RECORD", sel.String(), err == nil, countNote(n))
	m.finish(kDelete, sp, err)
	return n, err
}

// GetSystemLogs implements DB. Range barriers on the audit pipeline and
// merges the segment store with the memory tail, so the answer covers
// every completed operation regardless of the pipeline mode, the
// in-memory eviction cap, or restarts.
func (m *middleware) GetSystemLogs(a acl.Actor, from, to time.Time) ([]audit.Entry, error) {
	sp := m.begin(kGetLogs, a, "range")
	sp.EnterPhase(obs.PhaseACL)
	if err := checkSystemACL(m.comp.AccessControl, a, acl.VerbReadLogs); err != nil {
		m.finish(kGetLogs, sp, err)
		return nil, err
	}
	if m.log == nil {
		err := fmt.Errorf("%w: logging", ErrFeatureDisabled)
		m.finish(kGetLogs, sp, err)
		return nil, err
	}
	sp.EnterPhase(obs.PhaseEngine)
	entries, err := m.log.Range(from, to)
	if err != nil {
		m.finish(kGetLogs, sp, err)
		return nil, err
	}
	sp.EnterPhase(obs.PhaseAudit)
	auditOp(m.log, a, "GET-SYSTEM-LOGS", fmt.Sprintf("%d..%d", from.Unix(), to.Unix()), true, countNote(len(entries)))
	m.finish(kGetLogs, sp, nil)
	return entries, nil
}

// GetSystemFeatures implements DB.
func (m *middleware) GetSystemFeatures(a acl.Actor) (map[string]string, error) {
	sp := m.begin(kGetFeatures, a, "system")
	sp.EnterPhase(obs.PhaseACL)
	if err := checkSystemACL(m.comp.AccessControl, a, acl.VerbReadFeatures); err != nil {
		m.finish(kGetFeatures, sp, err)
		return nil, err
	}
	sp.EnterPhase(obs.PhaseEngine)
	defer m.finish(kGetFeatures, sp, nil)
	f := m.eng.Features()
	f["compliance"] = m.comp.String()
	f["encrypt_in_transit"] = fmt.Sprintf("%v", m.pipe != nil)
	if m.log != nil {
		f["audit_policy"] = m.log.Pipeline().String()
		f["audit_sync"] = m.log.SyncPolicy().String()
	}
	return f, nil
}

// AuditStats reports the audit pipeline's counters (entries, bytes,
// batches, flushes, queue high-water mark, segments). The second result
// is false when logging is off. gdprbench -json surfaces it.
func (m *middleware) AuditStats() (audit.Stats, bool) {
	if m.log == nil {
		return audit.Stats{}, false
	}
	return m.log.Stats(), true
}

// VerifyDeletion implements DB.
func (m *middleware) VerifyDeletion(a acl.Actor, keys []string) (int, error) {
	sp := m.begin(kVerifyDel, a, "key")
	sp.EnterPhase(obs.PhaseACL)
	if err := checkSystemACL(m.comp.AccessControl, a, acl.VerbVerifyDeletion); err != nil {
		m.finish(kVerifyDel, sp, err)
		return 0, err
	}
	sp.EnterPhase(obs.PhaseEngine)
	present := 0
	for _, k := range keys {
		ok, err := m.eng.Exists(k)
		if err != nil {
			m.finish(kVerifyDel, sp, err)
			return present, err
		}
		if ok {
			present++
		}
	}
	sp.EnterPhase(obs.PhaseAudit)
	auditOp(m.log, a, "VERIFY-DELETION", fmt.Sprintf("%d keys", len(keys)), true, countNote(present))
	m.finish(kVerifyDel, sp, nil)
	return present, nil
}

// SpaceUsage implements DB.
func (m *middleware) SpaceUsage() (SpaceUsage, error) { return m.eng.SpaceUsage() }

// Close implements DB: the engine first, then the audit trail.
func (m *middleware) Close() error {
	m.coll.Close()
	var first error
	if err := m.eng.Close(); err != nil {
		first = err
	}
	if m.log != nil {
		if err := m.log.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func encodeAll(recs []gdpr.Record) string {
	var b strings.Builder
	for _, r := range recs {
		b.WriteString(gdpr.Encode(r))
		b.WriteByte('\n')
	}
	return b.String()
}

var (
	_ DB           = (*middleware)(nil)
	_ BatchCreator = (*batchDB)(nil)
)

package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/acl"
	"repro/internal/audit"
	"repro/internal/clock"
	"repro/internal/gdpr"
	"repro/internal/kvstore"
	"repro/internal/transit"
)

// This file is the compliance middleware: one implementation of the §3.3
// query interface (core.DB) layered over any storage Engine. It owns every
// cross-cutting concern the two client stubs used to duplicate — strict
// validation, Figure 1 access control, metadata redaction, audit logging,
// the in-transit record layer, and read-modify-write re-checks under the
// engine lock — so a backend only implements the narrow Engine contract
// and inherits full GDPR compliance.

// WrapConfig configures Wrap.
type WrapConfig struct {
	// Compliance selects the feature set the middleware enforces.
	Compliance Compliance
	// Clock supplies time; defaults to the real clock.
	Clock clock.Clock
	// Audit is a pre-opened audit log to use (and close) when Logging is
	// on; the sharded PostgreSQL model shares one log between the
	// middleware and every shard's statement logger. When nil, the
	// middleware opens AuditPath itself.
	Audit *audit.Log
	// AuditPath is the audit-trail base path, used when Audit is nil.
	// Required when Logging is enabled.
	AuditPath string
	// AuditKey encrypts the audit trail at rest (nil = plaintext).
	AuditKey []byte
	// AuditPolicy selects the audit append pipeline (sync | batched |
	// async) when the middleware opens AuditPath itself.
	AuditPolicy audit.Pipeline
	// AuditSyncAlways makes the audit trail fsync per group commit (the
	// strict interpretation) instead of the paper's everysec batching.
	AuditSyncAlways bool
	// AuditMemoryCap bounds the audit log's in-memory tail (0 = its
	// default); queries stay correct past it via the segment store.
	AuditMemoryCap int
	// AuditRetention compacts trail segments older than this window
	// (0 keeps everything forever).
	AuditRetention time.Duration
	// TransitKey derives the in-transit record layer; required when
	// EncryptInTransit is enabled.
	TransitKey []byte
}

// OpenAudit opens the audit trail described by a WrapConfig (sync policy
// per the paper's conventions — everysec unless AuditSyncAlways — with
// the configured pipeline and optional at-rest encryption). Sharded
// openers use it to create the single log all shards and the middleware
// share.
func OpenAudit(wc WrapConfig, clk clock.Clock) (*audit.Log, error) {
	policy := audit.SyncEverySec
	if wc.AuditSyncAlways {
		policy = audit.SyncAlways
	}
	return audit.Open(audit.Config{
		Path:      wc.AuditPath,
		Key:       wc.AuditKey,
		Policy:    policy,
		Pipeline:  wc.AuditPolicy,
		Clock:     clk,
		MemoryCap: wc.AuditMemoryCap,
		Retention: wc.AuditRetention,
	})
}

// Wrap layers the compliance middleware over an Engine, returning the
// GDPR query interface. When the engine implements BatchEngine the
// returned DB also implements BatchCreator, so core.Load batches.
func Wrap(e Engine, cfg WrapConfig) (DB, error) {
	m, err := newMiddleware(e, cfg)
	if err != nil {
		return nil, err
	}
	if _, ok := e.(BatchEngine); ok {
		return &batchDB{m}, nil
	}
	return m, nil
}

// middleware implements DB over an Engine.
type middleware struct {
	eng  Engine
	log  *audit.Log
	pipe *transit.Pipe
	comp Compliance
	clk  clock.Clock
}

func newMiddleware(e Engine, cfg WrapConfig) (*middleware, error) {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.NewReal()
	}
	m := &middleware{eng: e, comp: cfg.Compliance, clk: clk, log: cfg.Audit}
	if cfg.Compliance.Logging && m.log == nil {
		if cfg.AuditPath == "" {
			return nil, fmt.Errorf("core: logging requires an audit path")
		}
		log, err := OpenAudit(cfg, clk)
		if err != nil {
			return nil, err
		}
		m.log = log
	}
	if cfg.Compliance.EncryptInTransit {
		if len(cfg.TransitKey) == 0 {
			m.closeOwned()
			return nil, fmt.Errorf("core: in-transit encryption requires a transit key")
		}
		pipe, err := transit.NewPipe(cfg.TransitKey)
		if err != nil {
			m.closeOwned()
			return nil, err
		}
		m.pipe = pipe
	}
	return m, nil
}

// closeOwned releases middleware-held resources without touching the
// engine (constructor error paths; the caller still owns the engine).
func (m *middleware) closeOwned() {
	if m.log != nil {
		m.log.Close()
	}
}

// batchDB is the middleware with the bulk CREATE-RECORD path exposed; Wrap
// returns it when the engine can batch.
type batchDB struct{ *middleware }

// CreateRecords implements BatchCreator.
func (b *batchDB) CreateRecords(a acl.Actor, recs []gdpr.Record) error {
	return b.createBatch(a, recs)
}

// transitWrap pays the in-transit record-layer cost around fn. The request
// and response payloads cross the simulated wire.
func (m *middleware) transitWrap(req string, fn func() (string, error)) error {
	if m.pipe == nil {
		_, err := fn()
		return err
	}
	var opErr error
	_, err := m.pipe.RoundTrip([]byte(req), func([]byte) []byte {
		resp, e := fn()
		opErr = e
		return []byte(resp)
	})
	if opErr != nil {
		return opErr
	}
	return err
}

// fetch resolves a selector to records: the engine's point path for key
// lookups, its native selector path otherwise.
func (m *middleware) fetch(sel gdpr.Selector) ([]gdpr.Record, error) {
	if sel.Attr == gdpr.AttrKey {
		rec, ok, err := m.eng.Get(sel.Value)
		if err != nil || !ok {
			return nil, err
		}
		return []gdpr.Record{rec}, nil
	}
	return m.eng.Select(sel)
}

// CreateRecord implements DB.
func (m *middleware) CreateRecord(a acl.Actor, rec gdpr.Record) error {
	if err := rec.Validate(m.comp.Strict); err != nil {
		return err
	}
	if m.comp.AccessControl {
		if err := acl.CheckRecord(a, acl.VerbCreate, rec, nil); err != nil {
			auditOp(m.log, a, "CREATE-RECORD", rec.Key, false, err.Error())
			return err
		}
	}
	err := m.transitWrap("CREATE "+rec.Key, func() (string, error) {
		return "OK", m.eng.Put(rec)
	})
	auditOp(m.log, a, "CREATE-RECORD", rec.Key, err == nil, "")
	return err
}

// createBatch validates and ACL-checks every record, then inserts the
// batch through the engine's bulk path — one engine call, one durability
// wait (or one per-shard fan-out) per batch instead of per record.
func (m *middleware) createBatch(a acl.Actor, recs []gdpr.Record) error {
	be, ok := m.eng.(BatchEngine)
	if !ok {
		for _, rec := range recs {
			if err := m.CreateRecord(a, rec); err != nil {
				return err
			}
		}
		return nil
	}
	for _, rec := range recs {
		if err := rec.Validate(m.comp.Strict); err != nil {
			return err
		}
		if m.comp.AccessControl {
			if err := acl.CheckRecord(a, acl.VerbCreate, rec, nil); err != nil {
				auditOp(m.log, a, "CREATE-RECORD", rec.Key, false, err.Error())
				return err
			}
		}
	}
	err := m.transitWrap(fmt.Sprintf("CREATE-BATCH %d", len(recs)), func() (string, error) {
		return "OK", be.PutBatch(recs)
	})
	auditOp(m.log, a, "CREATE-RECORDS", fmt.Sprintf("%d records", len(recs)), err == nil, "")
	return err
}

// ReadData implements DB.
func (m *middleware) ReadData(a acl.Actor, sel gdpr.Selector) ([]gdpr.Record, error) {
	var out []gdpr.Record
	err := m.transitWrap("READ-DATA "+sel.String(), func() (string, error) {
		recs, err := m.fetch(sel)
		if err != nil {
			return "", err
		}
		out = filterACL(m.comp.AccessControl, a, acl.VerbReadData, recs, nil)
		return encodeAll(out), nil
	})
	auditOp(m.log, a, "READ-DATA", sel.String(), err == nil, countNote(len(out)))
	return out, err
}

// ReadMetadata implements DB.
func (m *middleware) ReadMetadata(a acl.Actor, sel gdpr.Selector) ([]gdpr.Record, error) {
	var out []gdpr.Record
	err := m.transitWrap("READ-META "+sel.String(), func() (string, error) {
		recs, err := m.fetch(sel)
		if err != nil {
			return "", err
		}
		out = redactData(filterACL(m.comp.AccessControl, a, acl.VerbReadMetadata, recs, nil))
		return encodeAll(out), nil
	})
	auditOp(m.log, a, "READ-METADATA", sel.String(), err == nil, countNote(len(out)))
	return out, err
}

// rmw atomically applies mutate to the record at key, re-verifying the
// selector and the actor's rights under the engine lock (a concurrent
// mutation may have changed the record since it was selected). It reports
// whether the record was updated.
func (m *middleware) rmw(a acl.Actor, verb acl.Verb, key string, sel gdpr.Selector, delta *gdpr.Delta, mutate func(*gdpr.Record) error) (bool, error) {
	updated, err := m.eng.Update(key, func(rec gdpr.Record) (gdpr.Record, error) {
		if !sel.Matches(rec) {
			return gdpr.Record{}, errSkipUpdate
		}
		if m.comp.AccessControl {
			if err := acl.CheckRecord(a, verb, rec, delta); err != nil {
				return gdpr.Record{}, errSkipUpdate
			}
		}
		if err := mutate(&rec); err != nil {
			return gdpr.Record{}, err
		}
		if err := rec.Validate(m.comp.Strict); err != nil {
			return gdpr.Record{}, err
		}
		return rec, nil
	})
	if errors.Is(err, errSkipUpdate) {
		return false, nil
	}
	return updated, err
}

// UpdateData implements DB.
func (m *middleware) UpdateData(a acl.Actor, key, data string) (int, error) {
	n := 0
	err := m.transitWrap("UPDATE-DATA "+key, func() (string, error) {
		ok, err := m.rmw(a, acl.VerbUpdateData, key, gdpr.ByKey(key), nil, func(rec *gdpr.Record) error {
			rec.Data = data
			return nil
		})
		if err != nil {
			return "", err
		}
		if ok {
			n = 1
		}
		return fmt.Sprintf("%d", n), nil
	})
	auditOp(m.log, a, "UPDATE-DATA", key, err == nil, countNote(n))
	return n, err
}

// UpdateMetadata implements DB. Candidate keys are collected in ONE
// selector resolution (a single scan on the Redis model, one index probe
// on the PostgreSQL model, one scatter-gather on the shard router); each
// candidate is then re-checked against the selector and the actor's
// rights at apply time under the engine lock, so a by-user update is one
// scan plus k point read-modify-writes, not k+1 scans.
func (m *middleware) UpdateMetadata(a acl.Actor, sel gdpr.Selector, delta gdpr.Delta) (int, error) {
	n := 0
	err := m.transitWrap("UPDATE-META "+sel.String(), func() (string, error) {
		keys, err := m.eng.SelectKeys(sel)
		if err != nil {
			return "", err
		}
		for _, key := range keys {
			ok, err := m.rmw(a, acl.VerbUpdateMetadata, key, sel, &delta, func(r *gdpr.Record) error {
				return delta.Apply(&r.Meta)
			})
			if err != nil {
				return "", err
			}
			if ok {
				n++
			}
		}
		return fmt.Sprintf("%d", n), nil
	})
	auditOp(m.log, a, "UPDATE-METADATA", sel.String(), err == nil, countNote(n))
	return n, err
}

// DeleteRecord implements DB.
func (m *middleware) DeleteRecord(a acl.Actor, sel gdpr.Selector) (int, error) {
	n := 0
	err := m.transitWrap("DELETE "+sel.String(), func() (string, error) {
		var keys []string
		if sel.Attr == gdpr.AttrTTL {
			// Purge expired records (G 5(1e)): engines resolve this from
			// their expiry tracking without a value scan, and the purge is
			// not ACL-filtered per record — only controllers may run it.
			if m.comp.AccessControl && a.Role != acl.Controller {
				return "", &acl.DeniedError{Actor: a, Verb: acl.VerbDelete, Reason: "only controllers purge by TTL"}
			}
			var err error
			keys, err = m.eng.SelectKeys(sel)
			if err != nil {
				return "", err
			}
		} else {
			recs, err := m.fetch(sel)
			if err != nil {
				return "", err
			}
			recs = filterACL(m.comp.AccessControl, a, acl.VerbDelete, recs, nil)
			keys = make([]string, len(recs))
			for i, r := range recs {
				keys[i] = r.Key
			}
		}
		if len(keys) == 0 {
			return "0", nil
		}
		deleted, err := m.eng.Delete(keys)
		if err != nil {
			return "", err
		}
		n = deleted
		return fmt.Sprintf("%d", n), nil
	})
	auditOp(m.log, a, "DELETE-RECORD", sel.String(), err == nil, countNote(n))
	return n, err
}

// GetSystemLogs implements DB. Range barriers on the audit pipeline and
// merges the segment store with the memory tail, so the answer covers
// every completed operation regardless of the pipeline mode, the
// in-memory eviction cap, or restarts.
func (m *middleware) GetSystemLogs(a acl.Actor, from, to time.Time) ([]audit.Entry, error) {
	if err := checkSystemACL(m.comp.AccessControl, a, acl.VerbReadLogs); err != nil {
		return nil, err
	}
	if m.log == nil {
		return nil, fmt.Errorf("%w: logging", ErrFeatureDisabled)
	}
	entries, err := m.log.Range(from, to)
	if err != nil {
		return nil, err
	}
	auditOp(m.log, a, "GET-SYSTEM-LOGS", fmt.Sprintf("%d..%d", from.Unix(), to.Unix()), true, countNote(len(entries)))
	return entries, nil
}

// GetSystemFeatures implements DB.
func (m *middleware) GetSystemFeatures(a acl.Actor) (map[string]string, error) {
	if err := checkSystemACL(m.comp.AccessControl, a, acl.VerbReadFeatures); err != nil {
		return nil, err
	}
	f := m.eng.Features()
	f["compliance"] = m.comp.String()
	f["encrypt_in_transit"] = fmt.Sprintf("%v", m.pipe != nil)
	if m.log != nil {
		f["audit_policy"] = m.log.Pipeline().String()
		f["audit_sync"] = m.log.SyncPolicy().String()
	}
	return f, nil
}

// AuditStats reports the audit pipeline's counters (entries, bytes,
// batches, flushes, queue high-water mark, segments). The second result
// is false when logging is off. gdprbench -json surfaces it.
func (m *middleware) AuditStats() (audit.Stats, bool) {
	if m.log == nil {
		return audit.Stats{}, false
	}
	return m.log.Stats(), true
}

// KvstoreStats forwards the kvstore engine's concurrency/persistence
// counters when the wrapped engine is (or routes to) one; the second
// result is false for other engines. gdprbench -json surfaces it.
func (m *middleware) KvstoreStats() (kvstore.Stats, bool) {
	if ks, ok := m.eng.(interface {
		KvstoreStats() (kvstore.Stats, bool)
	}); ok {
		return ks.KvstoreStats()
	}
	return kvstore.Stats{}, false
}

// VerifyDeletion implements DB.
func (m *middleware) VerifyDeletion(a acl.Actor, keys []string) (int, error) {
	if err := checkSystemACL(m.comp.AccessControl, a, acl.VerbVerifyDeletion); err != nil {
		return 0, err
	}
	present := 0
	for _, k := range keys {
		ok, err := m.eng.Exists(k)
		if err != nil {
			return present, err
		}
		if ok {
			present++
		}
	}
	auditOp(m.log, a, "VERIFY-DELETION", fmt.Sprintf("%d keys", len(keys)), true, countNote(present))
	return present, nil
}

// SpaceUsage implements DB.
func (m *middleware) SpaceUsage() (SpaceUsage, error) { return m.eng.SpaceUsage() }

// Close implements DB: the engine first, then the audit trail.
func (m *middleware) Close() error {
	var first error
	if err := m.eng.Close(); err != nil {
		first = err
	}
	if m.log != nil {
		if err := m.log.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func encodeAll(recs []gdpr.Record) string {
	var b strings.Builder
	for _, r := range recs {
		b.WriteString(gdpr.Encode(r))
		b.WriteByte('\n')
	}
	return b.String()
}

var (
	_ DB           = (*middleware)(nil)
	_ BatchCreator = (*batchDB)(nil)
)

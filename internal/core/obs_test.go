package core

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/gdpr"
	"repro/internal/obs"
)

// These tests pin the middleware's observability contract: every op
// increments its always-on counter, an armed slowlog threshold traces
// every op with phase attribution, denied ops count as errors, and the
// audit pipeline's counters surface through the pull-time collector.

// obsWrappedDB builds a Redis-model engine wrapped with a private
// registry whose slowlog threshold forces every-op tracing.
func obsWrappedDB(t *testing.T) (DB, *Dataset, *obs.Registry) {
	t.Helper()
	dir := t.TempDir()
	reg := obs.NewRegistry(nil)
	reg.SetSlowlogThreshold(time.Nanosecond)
	comp := Compliance{Logging: true, AccessControl: true, Strict: true, EncryptInTransit: true}
	eng, err := NewRedisEngine(RedisConfig{
		Dir: dir, Compliance: comp, DisableBackgroundExpiry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Wrap(eng, WrapConfig{
		Compliance:  comp,
		AuditPath:   filepath.Join(dir, "trail.log"),
		TransitKey:  []byte("0123456789abcdef0123456789abcdef"),
		Obs:         reg,
		AuditPolicy: 0, // sync: counters are current without a flush wait
	})
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })

	cfg := Config{Records: 60, Operations: 10, Threads: 1, Seed: 7}.WithDefaults()
	ds, _, err := Load(db, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return db, ds, reg
}

func TestMiddlewareOpCountersAndSpans(t *testing.T) {
	db, ds, reg := obsWrappedDB(t)

	const reads = 5
	for i := 0; i < reads; i++ {
		u := i % ds.Users
		if _, err := db.ReadData(ds.CustomerActor(u), gdpr.ByUser(ds.UserName(u))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.UpdateData(ds.CustomerActor(ds.OwnerOfKey(0)), ds.KeyAt(0), "fresh-payload"); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot(true)
	if got := snap.Counter(`gdpr_ops_total{op="READ-DATA"}`); got != reads {
		t.Fatalf("READ-DATA counter = %d, want %d", got, reads)
	}
	if got := snap.Counter(`gdpr_ops_total{op="UPDATE-DATA"}`); got != 1 {
		t.Fatalf("UPDATE-DATA counter = %d, want 1", got)
	}
	// The armed threshold forces tracing, so latency histograms track
	// the counters exactly.
	if got := snap.Hists[`gdpr_op_latency_ns{op="READ-DATA"}`].Count; got != reads {
		t.Fatalf("READ-DATA latency count = %d, want %d", got, reads)
	}

	// Slowlog: every op recorded (threshold 1ns), newest first, with
	// phase attribution that adds up to the total.
	var read *obs.SlowEntry
	for i := range snap.Slowlog {
		e := &snap.Slowlog[i]
		if e.Op == "READ-DATA" {
			read = e
			break
		}
	}
	if read == nil {
		t.Fatalf("no READ-DATA slowlog entry in %d entries", len(snap.Slowlog))
	}
	if read.Role != "customer" || read.KeyClass != "USR" {
		t.Fatalf("entry identity = role %q, keyClass %q; want customer/USR", read.Role, read.KeyClass)
	}
	if read.Err {
		t.Fatal("successful read marked as error")
	}
	if read.Total <= 0 {
		t.Fatalf("total = %v, want > 0", read.Total)
	}
	var phaseSum time.Duration
	for _, d := range read.Phases {
		if d < 0 {
			t.Fatalf("negative phase duration: %v", read.Phases)
		}
		phaseSum += d
	}
	if phaseSum > read.Total {
		t.Fatalf("phase sum %v exceeds total %v", phaseSum, read.Total)
	}
	if read.Phases[obs.PhaseEngine] <= 0 {
		t.Fatalf("engine phase not attributed: %v", read.Phases)
	}
	// With in-transit encryption on, the transit record layer is paid
	// and attributed around the engine phase.
	if read.Phases[obs.PhaseTransit] <= 0 {
		t.Fatalf("transit phase not attributed: %v", read.Phases)
	}

	// The audit pipeline's counters surface through the collector.
	if got := snap.Counter("audit_appended_total"); got <= 0 {
		t.Fatalf("audit_appended_total = %d, want > 0", got)
	}
}

func TestMiddlewareErrorCounter(t *testing.T) {
	db, ds, reg := obsWrappedDB(t)

	// Figure 1's matrix denies customers the audit trail.
	if _, err := db.GetSystemLogs(ds.CustomerActor(0), time.Time{}, time.Now()); err == nil {
		t.Fatal("customer GET-SYSTEM-LOGS unexpectedly allowed")
	}

	snap := reg.Snapshot(true)
	if got := snap.Counter(`gdpr_op_errors_total{op="GET-SYSTEM-LOGS"}`); got != 1 {
		t.Fatalf("GET-SYSTEM-LOGS error counter = %d, want 1", got)
	}
	// The denied op is still traced and its slowlog entry carries the
	// error flag.
	for _, e := range snap.Slowlog {
		if e.Op == "GET-SYSTEM-LOGS" && e.Err {
			return
		}
	}
	t.Fatal("no errored GET-SYSTEM-LOGS slowlog entry")
}

package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/acl"
	"repro/internal/clock"
	"repro/internal/gdpr"
)

func openBatchClient(t *testing.T, comp Compliance) (*PostgresClient, *Dataset) {
	t.Helper()
	sim := clock.NewSim(time.Time{})
	c, err := OpenPostgres(PostgresConfig{
		Dir: t.TempDir(), Clock: sim, Compliance: comp, DisableTTLDaemon: true,
		SynchronousCommit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	ds := NewDataset(Config{Records: 64, Seed: 1}.WithDefaults(), sim.Now())
	return c, ds
}

// TestCreateRecordsMatchesPerRecordPath: the batched load path must leave
// the store in the same state a record-by-record load produces.
func TestCreateRecordsMatchesPerRecordPath(t *testing.T) {
	comp := Compliance{AccessControl: true, Strict: true}
	batch, ds := openBatchClient(t, comp)
	single, _ := openBatchClient(t, comp)

	recs := make([]gdpr.Record, 64)
	for i := range recs {
		recs[i] = ds.RecordAt(i)
	}
	if err := batch.CreateRecords(ControllerActor(), recs); err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := single.CreateRecord(ControllerActor(), rec); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range []*PostgresClient{batch, single} {
		got, err := c.ReadData(ControllerActor(), gdpr.ByUser(recs[0].Meta.User))
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, r := range recs {
			if r.Meta.User == recs[0].Meta.User {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("by-user read = %d records, want %d", len(got), want)
		}
	}
	bu, err := batch.SpaceUsage()
	if err != nil {
		t.Fatal(err)
	}
	su, err := single.SpaceUsage()
	if err != nil {
		t.Fatal(err)
	}
	if bu.PersonalBytes != su.PersonalBytes || bu.TotalBytes != su.TotalBytes {
		t.Fatalf("space diverged: batch=%+v single=%+v", bu, su)
	}
}

// TestCreateRecordsEnforcesValidationAndACL: the batch path keeps the
// per-record checks — an invalid record or denied actor rejects the
// batch before anything is written.
func TestCreateRecordsEnforcesValidationAndACL(t *testing.T) {
	c, ds := openBatchClient(t, Compliance{AccessControl: true, Strict: true})
	bad := ds.RecordAt(0)
	bad.Meta.User = "" // strict validation requires an owner
	if err := c.CreateRecords(ControllerActor(), []gdpr.Record{ds.RecordAt(1), bad}); err == nil {
		t.Fatal("invalid record in batch should fail")
	}
	customer := ds.CustomerActor(0)
	err := c.CreateRecords(customer, []gdpr.Record{ds.RecordAt(2)})
	var denied *acl.DeniedError
	if !errors.As(err, &denied) {
		t.Fatalf("customer create = %v, want denial", err)
	}
	// Nothing from the rejected batches landed.
	if got, err := c.ReadData(ControllerActor(), gdpr.ByKey(ds.KeyAt(1))); err != nil || len(got) != 0 {
		t.Fatalf("rejected batch leaked: %v %v", got, err)
	}
}

// TestLoadUsesBatchPathOnPostgres: core.Load against the Postgres client
// (a BatchCreator) must produce the full dataset.
func TestLoadUsesBatchPathOnPostgres(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	c, err := OpenPostgres(PostgresConfig{
		Dir: t.TempDir(), Clock: sim, DisableTTLDaemon: true, SynchronousCommit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, ok := interface{}(c).(BatchCreator); !ok {
		t.Fatal("PostgresClient must implement BatchCreator")
	}
	cfg := Config{Records: 500, Threads: 4, Seed: 1}
	ds, run, err := Load(c, cfg, sim)
	if err != nil {
		t.Fatal(err)
	}
	if got := run.TotalOps(); got != 500 {
		t.Fatalf("load recorded %d ops, want 500", got)
	}
	for _, i := range []int{0, 250, 499} {
		got, err := c.ReadData(ControllerActor(), gdpr.ByKey(ds.KeyAt(i)))
		if err != nil || len(got) != 1 {
			t.Fatalf("record %d after batched load: %v %v", i, got, err)
		}
	}
}

package core

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/acl"
	"repro/internal/clock"
	"repro/internal/dist"
	"repro/internal/gdpr"
)

// This file implements §4.2.3's correctness metric: "the percentage of
// query responses that match the results expected by the benchmark". The
// validator replays a deterministic single-threaded script of each
// workload's queries against both the engine and an in-memory oracle and
// compares responses. The metric is computed cumulatively across the four
// workloads by ValidateAll.

// CorrectnessReport is the correctness metric for one or more workloads.
type CorrectnessReport struct {
	Total      int
	Matched    int
	Mismatches []string // first few, for debugging
}

// Score returns matched/total as a percentage (100 when no queries ran).
func (c CorrectnessReport) Score() float64 {
	if c.Total == 0 {
		return 100
	}
	return 100 * float64(c.Matched) / float64(c.Total)
}

func (c *CorrectnessReport) record(match bool, desc string) {
	c.Total++
	if match {
		c.Matched++
		return
	}
	if len(c.Mismatches) < 10 {
		c.Mismatches = append(c.Mismatches, desc)
	}
}

func (c *CorrectnessReport) merge(o CorrectnessReport) {
	c.Total += o.Total
	c.Matched += o.Matched
	for _, m := range o.Mismatches {
		if len(c.Mismatches) < 10 {
			c.Mismatches = append(c.Mismatches, m)
		}
	}
}

// oracle is the reference model: the set of live records.
type oracle struct {
	recs map[string]gdpr.Record
}

func newOracle(ds *Dataset) *oracle {
	o := &oracle{recs: make(map[string]gdpr.Record, ds.Cfg.Records)}
	for i := 0; i < ds.Cfg.Records; i++ {
		r := ds.RecordAt(i)
		o.recs[r.Key] = r
	}
	return o
}

// selectRecs returns the oracle records matching sel, ACL-filtered for
// (actor, verb) the way a compliant store must filter them.
func (o *oracle) selectRecs(a acl.Actor, verb acl.Verb, sel gdpr.Selector, delta *gdpr.Delta, aclOn bool) []gdpr.Record {
	var out []gdpr.Record
	if sel.Attr == gdpr.AttrKey {
		if r, ok := o.recs[sel.Value]; ok && sel.Matches(r) {
			out = append(out, r)
		}
	} else {
		for _, r := range o.recs {
			if sel.Matches(r) {
				out = append(out, r)
			}
		}
	}
	if aclOn {
		out, _ = acl.Filter(a, verb, out, delta)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func keysOf(recs []gdpr.Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Key
	}
	sort.Strings(out)
	return out
}

func sameKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Validate runs the correctness pass for one workload: cfg.Operations
// single-threaded queries compared against the oracle. The db should be
// freshly loaded with ds (Load with the same cfg and clock).
func Validate(db DB, ds *Dataset, name WorkloadName, clk clock.Clock, aclOn bool) (CorrectnessReport, error) {
	mix, ok := DefaultWorkloads()[name]
	if !ok {
		return CorrectnessReport{}, fmt.Errorf("core: unknown workload %q", name)
	}
	if clk == nil {
		clk = clock.NewReal()
	}
	cfg := ds.Cfg
	o := newOracle(ds)
	var rep CorrectnessReport
	r := rand.New(rand.NewSource(cfg.Seed + 9000))
	keys := newGenerator(r, mix.Dist, int64(cfg.Records))
	// The minority query class draws attribute values under the mix's
	// secondary distribution, matching the timed runner.
	secondary := newGenerator(r, mix.SecondaryDist, int64(maxOf(cfg.Purposes, cfg.Shares, cfg.Decisions, cfg.Sources)))
	chooser := dist.NewWeighted(r, mix.Queries, mix.Weights)
	var deleted []string
	newSeq := 0

	for opn := 0; opn < cfg.Operations; opn++ {
		q := chooser.Next()
		i := int(keys.Next())
		switch q {
		case QCreateRecord:
			newSeq++
			rec := ds.RecordAt(0)
			rec.Key = fmt.Sprintf("rec-val-%08d", newSeq)
			rec.Data = fmt.Sprintf("%0*d", cfg.DataSize, newSeq%1_000_000)
			rec.Meta.User = ds.UserAt(i)
			rec.Meta.Expiry = clk.Now().Add(cfg.DefaultTTL)
			err := db.CreateRecord(ControllerActor(), rec)
			rep.record(err == nil, fmt.Sprintf("create %s: %v", rec.Key, err))
			if err == nil {
				o.recs[rec.Key] = rec
			}

		case QDeleteByKey:
			key := ds.KeyAt(i)
			a := ds.CustomerActor(ds.OwnerOfKey(i))
			want := o.selectRecs(a, acl.VerbDelete, gdpr.ByKey(key), nil, aclOn)
			n, err := db.DeleteRecord(a, gdpr.ByKey(key))
			rep.record(err == nil && n == len(want), fmt.Sprintf("delete-by-key %s: n=%d want=%d err=%v", key, n, len(want), err))
			for _, rec := range want {
				delete(o.recs, rec.Key)
				deleted = append(deleted, rec.Key)
			}

		case QDeleteByPurpose:
			sel := gdpr.ByPurpose(ds.PurposeName(int(secondary.Next())))
			want := o.selectRecs(ControllerActor(), acl.VerbDelete, sel, nil, aclOn)
			n, err := db.DeleteRecord(ControllerActor(), sel)
			rep.record(err == nil && n == len(want), fmt.Sprintf("delete-by-pur %v: n=%d want=%d err=%v", sel, n, len(want), err))
			for _, rec := range want {
				delete(o.recs, rec.Key)
				deleted = append(deleted, rec.Key)
			}

		case QDeleteByTTL:
			sel := gdpr.ByExpiredAt(clk.Now())
			want := o.selectRecs(ControllerActor(), acl.VerbDelete, sel, nil, false) // TTL purge is not ACL-filtered
			n, err := db.DeleteRecord(ControllerActor(), sel)
			rep.record(err == nil && n == len(want), fmt.Sprintf("delete-by-ttl: n=%d want=%d err=%v", n, len(want), err))
			for _, rec := range want {
				delete(o.recs, rec.Key)
				deleted = append(deleted, rec.Key)
			}

		case QDeleteByUser:
			sel := gdpr.ByUser(ds.UserAt(i))
			want := o.selectRecs(ControllerActor(), acl.VerbDelete, sel, nil, aclOn)
			n, err := db.DeleteRecord(ControllerActor(), sel)
			rep.record(err == nil && n == len(want), fmt.Sprintf("delete-by-usr %v: n=%d want=%d err=%v", sel, n, len(want), err))
			for _, rec := range want {
				delete(o.recs, rec.Key)
				deleted = append(deleted, rec.Key)
			}

		case QReadDataByKey:
			rec := ds.RecordAt(i)
			a := acl.Actor{Role: acl.Processor, ID: "processor-1", Purpose: rec.Meta.Purposes[0]}
			want := o.selectRecs(a, acl.VerbReadData, gdpr.ByKey(rec.Key), nil, aclOn)
			got, err := db.ReadData(a, gdpr.ByKey(rec.Key))
			match := err == nil && sameKeys(keysOf(got), keysOf(want))
			if match && len(got) == 1 && got[0].Data != want[0].Data {
				match = false
			}
			rep.record(match, fmt.Sprintf("read-data-by-key %s: got=%d want=%d err=%v", rec.Key, len(got), len(want), err))

		case QReadDataByPurpose:
			p := int(secondary.Next())
			a := ds.ProcessorActor(p)
			sel := gdpr.ByPurpose(ds.PurposeName(p))
			want := o.selectRecs(a, acl.VerbReadData, sel, nil, aclOn)
			got, err := db.ReadData(a, sel)
			rep.record(err == nil && sameKeys(keysOf(got), keysOf(want)),
				fmt.Sprintf("read-data-by-pur %v: got=%d want=%d err=%v", sel, len(got), len(want), err))

		case QReadDataByUser:
			u := ds.OwnerOfKey(i)
			a := ds.CustomerActor(u)
			sel := gdpr.ByUser(ds.UserName(u))
			want := o.selectRecs(a, acl.VerbReadData, sel, nil, aclOn)
			got, err := db.ReadData(a, sel)
			rep.record(err == nil && sameKeys(keysOf(got), keysOf(want)),
				fmt.Sprintf("read-data-by-usr %v: got=%d want=%d err=%v", sel, len(got), len(want), err))

		case QReadDataByObj:
			p := int(secondary.Next())
			a := ds.ProcessorActor(p)
			sel := gdpr.ByObjection(ds.PurposeName(p))
			want := o.selectRecs(a, acl.VerbReadData, sel, nil, aclOn)
			got, err := db.ReadData(a, sel)
			rep.record(err == nil && sameKeys(keysOf(got), keysOf(want)),
				fmt.Sprintf("read-data-by-obj %v: got=%d want=%d err=%v", sel, len(got), len(want), err))

		case QReadDataByDec:
			p := int(secondary.Next())
			a := ds.ProcessorActor(p)
			sel := gdpr.ByDecision(ds.DecisionName(p))
			want := o.selectRecs(a, acl.VerbReadData, sel, nil, aclOn)
			got, err := db.ReadData(a, sel)
			rep.record(err == nil && sameKeys(keysOf(got), keysOf(want)),
				fmt.Sprintf("read-data-by-dec %v: got=%d want=%d err=%v", sel, len(got), len(want), err))

		case QReadMetaByKey:
			key := ds.KeyAt(i)
			a := ds.CustomerActor(ds.OwnerOfKey(i))
			want := o.selectRecs(a, acl.VerbReadMetadata, gdpr.ByKey(key), nil, aclOn)
			got, err := db.ReadMetadata(a, gdpr.ByKey(key))
			match := err == nil && sameKeys(keysOf(got), keysOf(want))
			// Metadata reads must redact personal data.
			for _, g := range got {
				if g.Data != "" {
					match = false
				}
			}
			// And must preserve the metadata itself.
			if match && len(got) == 1 && !gdpr.EqualSets(got[0].Meta.Purposes, want[0].Meta.Purposes) {
				match = false
			}
			rep.record(match, fmt.Sprintf("read-meta-by-key %s: got=%d want=%d err=%v", key, len(got), len(want), err))

		case QReadMetaByUser:
			sel := gdpr.ByUser(ds.UserAt(i))
			want := o.selectRecs(RegulatorActor(), acl.VerbReadMetadata, sel, nil, aclOn)
			got, err := db.ReadMetadata(RegulatorActor(), sel)
			rep.record(err == nil && sameKeys(keysOf(got), keysOf(want)),
				fmt.Sprintf("read-meta-by-usr %v: got=%d want=%d err=%v", sel, len(got), len(want), err))

		case QReadMetaByShare:
			sel := gdpr.ByShare(ds.ShareName(int(secondary.Next())))
			want := o.selectRecs(RegulatorActor(), acl.VerbReadMetadata, sel, nil, aclOn)
			got, err := db.ReadMetadata(RegulatorActor(), sel)
			rep.record(err == nil && sameKeys(keysOf(got), keysOf(want)),
				fmt.Sprintf("read-meta-by-shr %v: got=%d want=%d err=%v", sel, len(got), len(want), err))

		case QUpdateDataByKey:
			key := ds.KeyAt(i)
			a := ds.CustomerActor(ds.OwnerOfKey(i))
			newData := fmt.Sprintf("%0*d", cfg.DataSize, r.Intn(1_000_000))
			want := o.selectRecs(a, acl.VerbUpdateData, gdpr.ByKey(key), nil, aclOn)
			n, err := db.UpdateData(a, key, newData)
			rep.record(err == nil && n == len(want), fmt.Sprintf("update-data %s: n=%d want=%d err=%v", key, n, len(want), err))
			if len(want) == 1 {
				rec := want[0]
				rec.Data = newData
				o.recs[key] = rec
			}

		case QUpdateMetaByKey:
			key := ds.KeyAt(i)
			a := ds.CustomerActor(ds.OwnerOfKey(i))
			delta := gdpr.Delta{Attr: gdpr.AttrObjection, Op: gdpr.DeltaAdd, Values: []string{ds.PurposeName(r.Intn(cfg.Purposes))}}
			want := o.selectRecs(a, acl.VerbUpdateMetadata, gdpr.ByKey(key), &delta, aclOn)
			n, err := db.UpdateMetadata(a, gdpr.ByKey(key), delta)
			rep.record(err == nil && n == len(want), fmt.Sprintf("update-meta-by-key %s: n=%d want=%d err=%v", key, n, len(want), err))
			o.apply(want, delta)

		case QUpdateMetaByPur:
			sel := gdpr.ByPurpose(ds.PurposeName(int(secondary.Next())))
			delta := gdpr.Delta{Attr: gdpr.AttrTTL, Op: gdpr.DeltaSet, Expiry: clk.Now().Add(cfg.DefaultTTL)}
			want := o.selectRecs(ControllerActor(), acl.VerbUpdateMetadata, sel, &delta, aclOn)
			n, err := db.UpdateMetadata(ControllerActor(), sel, delta)
			rep.record(err == nil && n == len(want), fmt.Sprintf("update-meta-by-pur %v: n=%d want=%d err=%v", sel, n, len(want), err))
			o.apply(want, delta)

		case QUpdateMetaByUser:
			sel := gdpr.ByUser(ds.UserAt(i))
			delta := gdpr.Delta{Attr: gdpr.AttrSharing, Op: gdpr.DeltaAdd, Values: []string{ds.ShareName(r.Intn(cfg.Shares))}}
			want := o.selectRecs(ControllerActor(), acl.VerbUpdateMetadata, sel, &delta, aclOn)
			n, err := db.UpdateMetadata(ControllerActor(), sel, delta)
			rep.record(err == nil && n == len(want), fmt.Sprintf("update-meta-by-usr %v: n=%d want=%d err=%v", sel, n, len(want), err))
			o.apply(want, delta)

		case QUpdateMetaByShare:
			s := ds.ShareName(int(secondary.Next()))
			sel := gdpr.ByShare(s)
			delta := gdpr.Delta{Attr: gdpr.AttrSharing, Op: gdpr.DeltaRemove, Values: []string{s}}
			want := o.selectRecs(ControllerActor(), acl.VerbUpdateMetadata, sel, &delta, aclOn)
			n, err := db.UpdateMetadata(ControllerActor(), sel, delta)
			rep.record(err == nil && n == len(want), fmt.Sprintf("update-meta-by-shr %v: n=%d want=%d err=%v", sel, n, len(want), err))
			o.apply(want, delta)

		case QGetSystemLogs:
			now := clk.Now()
			from := now.Add(-cfg.LogWindow)
			entries, err := db.GetSystemLogs(RegulatorActor(), from, now)
			match := err == nil
			for _, e := range entries {
				if e.Time.Before(from) || e.Time.After(now) {
					match = false
				}
			}
			rep.record(match, fmt.Sprintf("get-system-logs: %d entries err=%v", len(entries), err))

		case QGetSystemFeatures:
			f, err := db.GetSystemFeatures(RegulatorActor())
			rep.record(err == nil && len(f) > 0, fmt.Sprintf("get-system-features: %v err=%v", f, err))

		case QVerifyDeletion:
			sample := sampleFrom(r, deleted, 4)
			wantPresent := 0
			for _, k := range sample {
				if _, ok := o.recs[k]; ok {
					wantPresent++
				}
			}
			n, err := db.VerifyDeletion(RegulatorActor(), sample)
			rep.record(err == nil && n == wantPresent,
				fmt.Sprintf("verify-deletion: present=%d want=%d err=%v", n, wantPresent, err))

		default:
			return rep, fmt.Errorf("core: unknown query type %q", q)
		}
	}
	return rep, nil
}

func (o *oracle) apply(recs []gdpr.Record, delta gdpr.Delta) {
	for _, rec := range recs {
		cur, ok := o.recs[rec.Key]
		if !ok {
			continue
		}
		_ = delta.Apply(&cur.Meta)
		o.recs[rec.Key] = cur
	}
}

func sampleFrom(r *rand.Rand, pool []string, n int) []string {
	if len(pool) == 0 {
		out := make([]string, n)
		for i := range out {
			out[i] = fmt.Sprintf("rec-deleted-%06d", r.Intn(1_000_000))
		}
		return out
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, pool[r.Intn(len(pool))])
	}
	return out
}

// ValidateAll runs the correctness pass for all four workloads against a
// freshly-loaded database per workload (openDB must return a new, loaded
// instance each call) and returns the cumulative report.
func ValidateAll(openDB func() (DB, *Dataset, error), clk clock.Clock, aclOn bool) (CorrectnessReport, error) {
	var total CorrectnessReport
	for _, name := range WorkloadNames() {
		db, ds, err := openDB()
		if err != nil {
			return total, err
		}
		rep, err := Validate(db, ds, name, clk, aclOn)
		db.Close()
		if err != nil {
			return total, err
		}
		total.merge(rep)
	}
	return total, nil
}

package core

import (
	"repro/internal/gdpr"
)

// Engine is the narrow storage contract a backend must implement to serve
// GDPR workloads. It is deliberately compliance-free: no access control,
// no audit logging, no redaction, no transit encryption, no strict-mode
// validation — those cross-cutting concerns live in the compliance
// middleware (middleware.go) that wraps an Engine into a core.DB. The two
// client stubs (Redis model, PostgreSQL model) and the shard router
// (internal/shard) are all Engines, so every backend inherits the full
// compliance layer for free.
//
// All methods must be safe for concurrent use. Selector resolution keeps
// each engine's native cost profile: with MetadataIndexing off the Redis
// model serves attribute selectors with O(n) scans and the PostgreSQL
// model with sequential scans; with it on, both consult their
// metadata-index layer (inverted + ordered-expiry indexes in the kvstore,
// per-column secondary B-trees in the relstore) for O(result) selectors.
// The shard router scatter-gathers its children either way.
type Engine interface {
	// Put stores rec, overwriting or erroring on duplicate keys per the
	// engine's native semantics (SET vs INSERT).
	Put(rec gdpr.Record) error
	// Get returns the record stored under key, if present and unexpired.
	Get(key string) (gdpr.Record, bool, error)
	// Select returns the records matching sel. AttrKey selectors resolve
	// like Get; attribute selectors use the engine's native access path.
	Select(sel gdpr.Selector) ([]gdpr.Record, error)
	// SelectKeys returns just the keys of the records matching sel — one
	// scan (or index probe), no record materialization. Engines may serve
	// AttrTTL selectors from expiry-tracking structures without touching
	// values.
	SelectKeys(sel gdpr.Selector) ([]string, error)
	// Update atomically applies mutate to the record at key under the
	// engine's write lock, reporting whether the record existed and was
	// rewritten. An error returned by mutate aborts the update, leaves the
	// record unchanged, and is returned verbatim (the middleware uses a
	// sentinel to skip records that no longer match at apply time).
	Update(key string, mutate func(gdpr.Record) (gdpr.Record, error)) (bool, error)
	// Delete removes the given keys, reporting how many existed.
	Delete(keys []string) (int, error)
	// Exists reports whether key is present and unexpired.
	Exists(key string) (bool, error)
	// Features reports engine facts for GET-SYSTEM-FEATURES.
	Features() map[string]string
	// SpaceUsage reports the space-overhead metric inputs.
	SpaceUsage() (SpaceUsage, error)
	// Close releases engine resources.
	Close() error
}

// BatchEngine is implemented by engines with a bulk insert path (one lock
// acquisition / durability wait per batch, or a per-shard fan-out). Wrap
// exposes a BatchCreator DB when the engine supports it; the plain Redis
// model deliberately does not, keeping the paper's one-command-per-record
// load shape.
type BatchEngine interface {
	Engine
	// PutBatch stores recs; engines may reorder freely (keys are unique).
	PutBatch(recs []gdpr.Record) error
}

package core

import "time"

// Tuning carries the background log-compaction knobs shared by the CLIs,
// the engine openers and the shard router. The zero value disables every
// automatic trigger, keeping logs append-forever — the pre-compaction
// behavior — while the manual entry points (Store.Rewrite, DB.Checkpoint,
// Log.Compact) stay callable.
type Tuning struct {
	// AOFRewritePct arms the Redis-model background AOF rewrite: once the
	// log has grown this percent past its size after the last rewrite
	// (Redis' auto-aof-rewrite-percentage semantics, with a 1 MiB floor),
	// a concurrent rewrite compacts it to one command per live key.
	// 0 disables automatic rewrites.
	AOFRewritePct int
	// WALCheckpointBytes arms the PostgreSQL-model WAL checkpoint: once
	// the live log crosses this many bytes, a background checkpoint
	// snapshots every table and truncates the replayed-at-recovery prefix.
	// 0 disables automatic checkpoints.
	WALCheckpointBytes int64
	// AuditRetention bounds the audit trail's history: sealed segments
	// holding only entries older than this window are compacted away
	// (storage limitation applied to the trail itself). 0 keeps all.
	AuditRetention time.Duration
}

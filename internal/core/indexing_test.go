package core

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/gdpr"
)

// These tests pin the acceptance bar of the metadata-index layer on the
// Redis model: with MetadataIndexing on, equality attribute selectors are
// served entirely by the inverted index (no full-keyspace scan), return
// exactly what the scan path returns, and the non-indexable shapes
// (negated selectors, SRC equality) still fall back to the scan.

func openIndexingClient(t *testing.T, sim *clock.Sim, indexed bool) (*RedisClient, *Dataset) {
	t.Helper()
	client, err := OpenRedis(RedisConfig{
		Compliance:              Compliance{Strict: true, MetadataIndexing: indexed},
		Clock:                   sim,
		DisableBackgroundExpiry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	cfg := Config{Records: 400, Seed: 7}.WithDefaults()
	ds, _, err := Load(client, cfg, sim)
	if err != nil {
		t.Fatal(err)
	}
	return client, ds
}

func TestIndexedSelectPerformsNoFullScan(t *testing.T) {
	sim := clock.NewSim(time.Unix(1_500_000_000, 0))
	client, ds := openIndexingClient(t, sim, true)
	actor := ControllerActor()

	selectors := []gdpr.Selector{
		gdpr.ByUser(ds.UserName(3)),
		gdpr.ByPurpose(ds.PurposeName(1)),
		gdpr.ByObjection(ds.PurposeName(1)),
		gdpr.ByDecision(ds.DecisionName(0)),
		gdpr.ByShare(ds.ShareName(0)),
	}
	for _, sel := range selectors {
		if _, err := client.ReadData(actor, sel); err != nil {
			t.Fatalf("%v: %v", sel, err)
		}
		if _, err := client.UpdateMetadata(actor, sel, gdpr.Delta{
			Attr: gdpr.AttrTTL, Op: gdpr.DeltaSet, Expiry: sim.Now().Add(24 * time.Hour),
		}); err != nil {
			t.Fatalf("update %v: %v", sel, err)
		}
	}
	if _, err := client.DeleteRecord(actor, gdpr.ByExpiredAt(sim.Now())); err != nil {
		t.Fatal(err)
	}
	if got := client.Store().FullScans(); got != 0 {
		t.Fatalf("indexed equality selectors performed %d full scans, want 0", got)
	}

	// Non-indexable shapes still work — through the scan fallback.
	before := client.Store().FullScans()
	if _, err := client.ReadData(actor, gdpr.ByNotObjecting(ds.PurposeName(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := client.ReadData(actor, gdpr.Selector{Attr: gdpr.AttrSource, Value: ds.SourceName(0)}); err != nil {
		t.Fatal(err)
	}
	if got := client.Store().FullScans(); got != before+2 {
		t.Fatalf("fallback selectors scanned %d times, want 2", got-before)
	}
}

func TestScanBaselineStillScans(t *testing.T) {
	sim := clock.NewSim(time.Unix(1_500_000_000, 0))
	client, ds := openIndexingClient(t, sim, false)
	if _, err := client.ReadData(ControllerActor(), gdpr.ByUser(ds.UserName(3))); err != nil {
		t.Fatal(err)
	}
	if got := client.Store().FullScans(); got != 1 {
		t.Fatalf("baseline BY-USR read scanned %d times, want 1", got)
	}
}

// TestIndexedMatchesScanResults cross-checks every equality dimension,
// the TTL selector and the space accounting between an indexed and a
// scan-only client over the same dataset and mutation history.
func TestIndexedMatchesScanResults(t *testing.T) {
	sim := clock.NewSim(time.Unix(1_500_000_000, 0))
	indexed, ds := openIndexingClient(t, sim, true)
	scan, _ := openIndexingClient(t, sim, false)
	actor := ControllerActor()

	mutate := func(db DB) {
		// Deltas, deletes and TTL rewrites keep the two histories identical
		// while exercising index maintenance on update and delete.
		if _, err := db.UpdateMetadata(actor, gdpr.ByUser(ds.UserName(2)), gdpr.Delta{
			Attr: gdpr.AttrSharing, Op: gdpr.DeltaAdd, Values: []string{ds.ShareName(1)},
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := db.UpdateMetadata(actor, gdpr.ByPurpose(ds.PurposeName(2)), gdpr.Delta{
			Attr: gdpr.AttrTTL, Op: gdpr.DeltaSet, Expiry: sim.Now().Add(time.Minute),
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := db.DeleteRecord(actor, gdpr.ByUser(ds.UserName(5))); err != nil {
			t.Fatal(err)
		}
	}
	mutate(indexed)
	mutate(scan)
	sim.Advance(2 * time.Minute) // the rewritten TTLs fall due

	selectors := []gdpr.Selector{
		gdpr.ByUser(ds.UserName(2)),
		gdpr.ByUser(ds.UserName(5)),
		gdpr.ByPurpose(ds.PurposeName(2)),
		gdpr.ByObjection(ds.PurposeName(2)),
		gdpr.ByDecision(ds.DecisionName(1)),
		gdpr.ByShare(ds.ShareName(1)),
		gdpr.ByExpiredAt(sim.Now()),
	}
	for _, sel := range selectors {
		a, err := indexed.ReadData(actor, sel)
		if err != nil {
			t.Fatalf("indexed %v: %v", sel, err)
		}
		b, err := scan.ReadData(actor, sel)
		if err != nil {
			t.Fatalf("scan %v: %v", sel, err)
		}
		ka, kb := recordKeys(a), recordKeys(b)
		if !reflect.DeepEqual(ka, kb) {
			t.Fatalf("%v diverged: indexed=%v scan=%v", sel, ka, kb)
		}
	}

	// Purging by TTL must delete the same records on both clients.
	na, err := indexed.DeleteRecord(actor, gdpr.ByExpiredAt(sim.Now()))
	if err != nil {
		t.Fatal(err)
	}
	nb, err := scan.DeleteRecord(actor, gdpr.ByExpiredAt(sim.Now()))
	if err != nil {
		t.Fatal(err)
	}
	if na != nb || na == 0 {
		t.Fatalf("TTL purge: indexed=%d scan=%d (must match and be non-zero)", na, nb)
	}

	// The index layer costs space: total bytes must exceed the scan
	// client's, by exactly the reported index bytes.
	ua, err := indexed.SpaceUsage()
	if err != nil {
		t.Fatal(err)
	}
	ub, err := scan.SpaceUsage()
	if err != nil {
		t.Fatal(err)
	}
	if ua.PersonalBytes != ub.PersonalBytes {
		t.Fatalf("personal bytes diverged: %d vs %d", ua.PersonalBytes, ub.PersonalBytes)
	}
	idxBytes := indexed.Store().IndexBytes()
	if idxBytes <= 0 {
		t.Fatal("indexed client reports no index bytes")
	}
	if ua.TotalBytes != ub.TotalBytes+idxBytes {
		t.Fatalf("total bytes: indexed=%d scan=%d index=%d", ua.TotalBytes, ub.TotalBytes, idxBytes)
	}
}

func recordKeys(recs []gdpr.Record) []string {
	keys := make([]string, len(recs))
	for i, r := range recs {
		keys[i] = r.Key
	}
	return gdpr.SortStrings(keys)
}

// TestIndexedStoreSurvivesAOFReplay pins that indexes are rebuilt during
// replay: a restarted store answers indexed selectors without scanning
// and with the same results as before the restart.
func TestIndexedStoreSurvivesAOFReplay(t *testing.T) {
	dir := t.TempDir()
	sim := clock.NewSim(time.Unix(1_500_000_000, 0))
	comp := Compliance{Strict: true, Logging: true, MetadataIndexing: true}
	open := func() *RedisClient {
		client, err := OpenRedis(RedisConfig{
			Dir: dir, Compliance: comp, Clock: sim, DisableBackgroundExpiry: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return client
	}
	client := open()
	cfg := Config{Records: 120, Seed: 3}.WithDefaults()
	ds, _, err := Load(client, cfg, sim)
	if err != nil {
		t.Fatal(err)
	}
	actor := ControllerActor()
	sel := gdpr.ByUser(ds.UserName(1))
	want, err := client.ReadData(actor, sel)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("selector matched nothing — test is vacuous")
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}

	client = open()
	defer client.Close()
	got, err := client.ReadData(actor, sel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recordKeys(got), recordKeys(want)) {
		t.Fatalf("replayed index answered %v, want %v", recordKeys(got), recordKeys(want))
	}
	if n := client.Store().FullScans(); n != 0 {
		t.Fatalf("post-replay indexed read scanned %d times, want 0", n)
	}
	if fmt.Sprintf("%v", client.Store().Info()["metadata_indexing"]) != "true" {
		t.Fatal("replayed store lost its indexing flag")
	}
}

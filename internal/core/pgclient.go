package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/acl"
	"repro/internal/audit"
	"repro/internal/clock"
	"repro/internal/gdpr"
	"repro/internal/relstore"
	"repro/internal/securefs"
	"repro/internal/transit"
	"repro/internal/wal"
)

// PostgresClient is the GDPRbench client stub for the PostgreSQL-model
// engine (§5.2). Records live in one wide table with a column per GDPR
// metadata attribute; metadata queries become predicates that the planner
// serves from secondary indexes when MetadataIndexing is on (Figure 5c)
// and sequential scans otherwise (Figure 5b). Compliance features map to:
//
//	EncryptAtRest    → WAL and audit log encrypted via securefs (LUKS)
//	EncryptInTransit → per-op transit.Pipe record layer (SSL verify-CA)
//	Logging          → csvlog-style statement+response logging
//	TimelyDeletion   → TTL daemon at a 1-second period
//	AccessControl    → acl checks in this client
//	MetadataIndexing → secondary indexes on every metadata column
type PostgresClient struct {
	db   *relstore.DB
	log  *audit.Log
	pipe *transit.Pipe
	comp Compliance
	clk  clock.Clock
}

// RecordsTable is the personal-data table name.
const RecordsTable = "personal_records"

// TTLDaemonPeriod is the paper's retrofit period ("currently set to 1 sec").
const TTLDaemonPeriod = time.Second

// recordsSchema maps the §4.2.1 record format onto columns.
func recordsSchema() relstore.Schema {
	return relstore.Schema{
		Name: RecordsTable,
		Columns: []relstore.Column{
			{Name: "key", Type: relstore.TypeText},
			{Name: "data", Type: relstore.TypeText},
			{Name: "pur", Type: relstore.TypeTextList},
			{Name: "ttl", Type: relstore.TypeTime},
			{Name: "usr", Type: relstore.TypeText},
			{Name: "obj", Type: relstore.TypeTextList},
			{Name: "dec", Type: relstore.TypeTextList},
			{Name: "shr", Type: relstore.TypeTextList},
			{Name: "src", Type: relstore.TypeText},
		},
		PrimaryKey: "key",
	}
}

// metadataColumns are the columns that get secondary indexes under
// MetadataIndexing — all seven attributes, matching Table 3's "secondary
// indices for all the metadata fields".
var metadataColumns = []string{"pur", "ttl", "usr", "obj", "dec", "shr", "src"}

func rowFromRecord(r gdpr.Record) relstore.Row {
	return relstore.Row{
		r.Key, r.Data, r.Meta.Purposes, r.Meta.Expiry, r.Meta.User,
		r.Meta.Objections, r.Meta.Decisions, r.Meta.SharedWith, r.Meta.Source,
	}
}

func recordFromRow(row relstore.Row) gdpr.Record {
	listAt := func(i int) []string {
		l, _ := row[i].([]string)
		return l
	}
	return gdpr.Record{
		Key:  row[0].(string),
		Data: row[1].(string),
		Meta: gdpr.Metadata{
			Purposes:   listAt(2),
			Expiry:     row[3].(time.Time),
			User:       row[4].(string),
			Objections: listAt(5),
			Decisions:  listAt(6),
			SharedWith: listAt(7),
			Source:     row[8].(string),
		},
	}
}

// predicateFor translates a GDPR selector into a relational predicate.
func predicateFor(sel gdpr.Selector) (relstore.Predicate, error) {
	switch sel.Attr {
	case gdpr.AttrUser:
		return relstore.Eq("usr", sel.Value), nil
	case gdpr.AttrSource:
		return relstore.Eq("src", sel.Value), nil
	case gdpr.AttrPurpose:
		return relstore.Contains("pur", sel.Value), nil
	case gdpr.AttrObjection:
		if sel.Negate {
			return relstore.NotContains("obj", sel.Value), nil
		}
		return relstore.Contains("obj", sel.Value), nil
	case gdpr.AttrDecision:
		return relstore.Contains("dec", sel.Value), nil
	case gdpr.AttrSharing:
		return relstore.Contains("shr", sel.Value), nil
	case gdpr.AttrTTL:
		return relstore.Le("ttl", sel.AsOf), nil
	default:
		return relstore.Predicate{}, fmt.Errorf("core: selector %v has no relational predicate", sel)
	}
}

// PostgresConfig configures OpenPostgres.
type PostgresConfig struct {
	// Dir is where the WAL and audit files live; required for Logging
	// and WAL persistence. Empty disables persistence entirely.
	Dir string
	// Compliance selects the feature set.
	Compliance Compliance
	// Clock supplies time; defaults to the real clock.
	Clock clock.Clock
	// Passphrase derives the at-rest and in-transit keys.
	Passphrase string
	// DisableTTLDaemon leaves expiry to the caller (simulated-clock
	// harnesses call SweepExpired directly).
	DisableTTLDaemon bool
	// SynchronousCommit makes every write wait for WAL durability via
	// group commit (synchronous_commit=on). Default is the paper's
	// batched once-per-second flushing (=off/local).
	SynchronousCommit bool
	// GlobalLock serializes the engine behind one mutex (the seed's
	// original contention profile); ablation baseline for benchmarks.
	GlobalLock bool
}

// OpenPostgres builds a PostgresClient.
func OpenPostgres(cfg PostgresConfig) (*PostgresClient, error) {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.NewReal()
	}
	comp := cfg.Compliance
	pass := cfg.Passphrase
	if pass == "" {
		pass = "gdprbench-postgres"
	}

	relCfg := relstore.Config{Clock: clk, GlobalLock: cfg.GlobalLock}
	var log *audit.Log
	if comp.Logging {
		if cfg.Dir == "" {
			return nil, fmt.Errorf("core: postgres logging requires a directory")
		}
		auditCfg := audit.Config{
			Path:   filepath.Join(cfg.Dir, "postgres-csvlog"),
			Policy: audit.SyncEverySec,
			Clock:  clk,
		}
		if comp.EncryptAtRest {
			auditCfg.Key = securefs.Key(pass + "/csvlog")
		}
		var err error
		log, err = audit.Open(auditCfg)
		if err != nil {
			return nil, err
		}
		relCfg.Audit = log
		relCfg.LogStatements = true
	}
	if cfg.Dir != "" {
		relCfg.WALPath = filepath.Join(cfg.Dir, "postgres.wal")
		relCfg.WALSync = wal.SyncBatched
		if cfg.SynchronousCommit {
			relCfg.WALSync = wal.SyncOnCommit
		}
		if comp.EncryptAtRest {
			relCfg.EncryptionKey = securefs.Key(pass + "/wal")
		}
	}
	db, err := relstore.Open(relCfg)
	if err != nil {
		return nil, err
	}
	if err := db.CreateTable(recordsSchema()); err != nil {
		return nil, err
	}
	if err := db.Recover(); err != nil {
		return nil, err
	}
	if comp.MetadataIndexing {
		for _, col := range metadataColumns {
			if err := db.CreateIndex(RecordsTable, col); err != nil {
				return nil, err
			}
		}
	}
	c := &PostgresClient{db: db, log: log, comp: comp, clk: clk}
	if comp.EncryptInTransit {
		pipe, err := transit.NewPipe(securefs.Key(pass + "/transit"))
		if err != nil {
			c.Close()
			return nil, err
		}
		c.pipe = pipe
	}
	if comp.TimelyDeletion && !cfg.DisableTTLDaemon {
		if err := db.StartTTLDaemon(RecordsTable, "ttl", TTLDaemonPeriod); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// DB exposes the underlying engine for experiment harnesses.
func (c *PostgresClient) DB() *relstore.DB { return c.db }

// SweepExpired runs one synchronous TTL-daemon pass (simulated clocks).
func (c *PostgresClient) SweepExpired() (int, error) {
	return c.db.SweepExpired(RecordsTable, "ttl")
}

func (c *PostgresClient) transitWrap(req string, fn func() (string, error)) error {
	if c.pipe == nil {
		_, err := fn()
		return err
	}
	var opErr error
	_, err := c.pipe.RoundTrip([]byte(req), func([]byte) []byte {
		resp, e := fn()
		opErr = e
		return []byte(resp)
	})
	if opErr != nil {
		return opErr
	}
	return err
}

// fetch resolves a selector to records.
func (c *PostgresClient) fetch(sel gdpr.Selector) ([]gdpr.Record, error) {
	if sel.Attr == gdpr.AttrKey {
		row, ok, err := c.db.Get(RecordsTable, sel.Value)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil
		}
		return []gdpr.Record{recordFromRow(row)}, nil
	}
	pred, err := predicateFor(sel)
	if err != nil {
		return nil, err
	}
	rows, err := c.db.Select(RecordsTable, pred)
	if err != nil {
		return nil, err
	}
	recs := make([]gdpr.Record, len(rows))
	for i, row := range rows {
		recs[i] = recordFromRow(row)
	}
	return recs, nil
}

// CreateRecord implements DB.
func (c *PostgresClient) CreateRecord(a acl.Actor, rec gdpr.Record) error {
	if err := rec.Validate(c.comp.Strict); err != nil {
		return err
	}
	if c.comp.AccessControl {
		if err := acl.CheckRecord(a, acl.VerbCreate, rec, nil); err != nil {
			auditOp(c.log, a, "CREATE-RECORD", rec.Key, false, err.Error())
			return err
		}
	}
	err := c.transitWrap("CREATE "+rec.Key, func() (string, error) {
		return "OK", c.db.Insert(RecordsTable, rowFromRecord(rec))
	})
	auditOp(c.log, a, "CREATE-RECORD", rec.Key, err == nil, "")
	return err
}

// CreateRecords implements BatchCreator: it validates and ACL-checks
// every record, then inserts the batch through the engine's bulk path —
// one table-lock acquisition, one snapshot publish and one group-commit
// wait for the whole batch instead of per record. core.Load uses it to
// make the load phase scale with writer threads.
func (c *PostgresClient) CreateRecords(a acl.Actor, recs []gdpr.Record) error {
	rows := make([]relstore.Row, 0, len(recs))
	for _, rec := range recs {
		if err := rec.Validate(c.comp.Strict); err != nil {
			return err
		}
		if c.comp.AccessControl {
			if err := acl.CheckRecord(a, acl.VerbCreate, rec, nil); err != nil {
				auditOp(c.log, a, "CREATE-RECORD", rec.Key, false, err.Error())
				return err
			}
		}
		rows = append(rows, rowFromRecord(rec))
	}
	err := c.transitWrap(fmt.Sprintf("CREATE-BATCH %d", len(rows)), func() (string, error) {
		return "OK", c.db.InsertBatch(RecordsTable, rows)
	})
	auditOp(c.log, a, "CREATE-RECORDS", fmt.Sprintf("%d records", len(rows)), err == nil, "")
	return err
}

// ReadData implements DB.
func (c *PostgresClient) ReadData(a acl.Actor, sel gdpr.Selector) ([]gdpr.Record, error) {
	var out []gdpr.Record
	err := c.transitWrap("READ-DATA "+sel.String(), func() (string, error) {
		recs, err := c.fetch(sel)
		if err != nil {
			return "", err
		}
		out = filterACL(c.comp.AccessControl, a, acl.VerbReadData, recs, nil)
		return encodeAll(out), nil
	})
	auditOp(c.log, a, "READ-DATA", sel.String(), err == nil, countNote(len(out)))
	return out, err
}

// ReadMetadata implements DB.
func (c *PostgresClient) ReadMetadata(a acl.Actor, sel gdpr.Selector) ([]gdpr.Record, error) {
	var out []gdpr.Record
	err := c.transitWrap("READ-META "+sel.String(), func() (string, error) {
		recs, err := c.fetch(sel)
		if err != nil {
			return "", err
		}
		out = redactData(filterACL(c.comp.AccessControl, a, acl.VerbReadMetadata, recs, nil))
		return encodeAll(out), nil
	})
	auditOp(c.log, a, "READ-METADATA", sel.String(), err == nil, countNote(len(out)))
	return out, err
}

// rmw atomically applies mutate to the row at key via the engine's
// read-modify-write, re-verifying the selector and the actor's rights at
// apply time (a concurrent mutation may have changed the row since it was
// selected). It reports whether the row was updated.
func (c *PostgresClient) rmw(a acl.Actor, verb acl.Verb, key string, sel gdpr.Selector, delta *gdpr.Delta, mutate func(*gdpr.Record) error) (bool, error) {
	ok, err := c.db.UpdateFunc(RecordsTable, key, func(row relstore.Row) (relstore.Row, error) {
		rec := recordFromRow(row)
		if !sel.Matches(rec) {
			return nil, errSkipUpdate
		}
		if c.comp.AccessControl {
			if err := acl.CheckRecord(a, verb, rec, delta); err != nil {
				return nil, errSkipUpdate
			}
		}
		if err := mutate(&rec); err != nil {
			return nil, err
		}
		if err := rec.Validate(c.comp.Strict); err != nil {
			return nil, err
		}
		return rowFromRecord(rec), nil
	})
	if errors.Is(err, errSkipUpdate) {
		return false, nil
	}
	return ok, err
}

// UpdateData implements DB.
func (c *PostgresClient) UpdateData(a acl.Actor, key, data string) (int, error) {
	n := 0
	err := c.transitWrap("UPDATE-DATA "+key, func() (string, error) {
		ok, err := c.rmw(a, acl.VerbUpdateData, key, gdpr.ByKey(key), nil, func(rec *gdpr.Record) error {
			rec.Data = data
			return nil
		})
		if err != nil {
			return "", err
		}
		if ok {
			n = 1
		}
		return fmt.Sprintf("%d", n), nil
	})
	auditOp(c.log, a, "UPDATE-DATA", key, err == nil, countNote(n))
	return n, err
}

// UpdateMetadata implements DB.
func (c *PostgresClient) UpdateMetadata(a acl.Actor, sel gdpr.Selector, delta gdpr.Delta) (int, error) {
	n := 0
	err := c.transitWrap("UPDATE-META "+sel.String(), func() (string, error) {
		recs, err := c.fetch(sel)
		if err != nil {
			return "", err
		}
		for _, rec := range recs {
			ok, err := c.rmw(a, acl.VerbUpdateMetadata, rec.Key, sel, &delta, func(r *gdpr.Record) error {
				return delta.Apply(&r.Meta)
			})
			if err != nil {
				return "", err
			}
			if ok {
				n++
			}
		}
		return fmt.Sprintf("%d", n), nil
	})
	auditOp(c.log, a, "UPDATE-METADATA", sel.String(), err == nil, countNote(n))
	return n, err
}

// DeleteRecord implements DB.
func (c *PostgresClient) DeleteRecord(a acl.Actor, sel gdpr.Selector) (int, error) {
	n := 0
	err := c.transitWrap("DELETE "+sel.String(), func() (string, error) {
		if sel.Attr == gdpr.AttrTTL && c.comp.AccessControl && a.Role != acl.Controller {
			return "", &acl.DeniedError{Actor: a, Verb: acl.VerbDelete, Reason: "only controllers purge by TTL"}
		}
		recs, err := c.fetch(sel)
		if err != nil {
			return "", err
		}
		if sel.Attr != gdpr.AttrTTL {
			recs = filterACL(c.comp.AccessControl, a, acl.VerbDelete, recs, nil)
		}
		for _, rec := range recs {
			existed, err := c.db.Delete(RecordsTable, rec.Key)
			if err != nil {
				return "", err
			}
			if existed {
				n++
			}
		}
		return fmt.Sprintf("%d", n), nil
	})
	auditOp(c.log, a, "DELETE-RECORD", sel.String(), err == nil, countNote(n))
	return n, err
}

// GetSystemLogs implements DB.
func (c *PostgresClient) GetSystemLogs(a acl.Actor, from, to time.Time) ([]audit.Entry, error) {
	if err := checkSystemACL(c.comp.AccessControl, a, acl.VerbReadLogs); err != nil {
		return nil, err
	}
	if c.log == nil {
		return nil, fmt.Errorf("%w: logging", ErrFeatureDisabled)
	}
	entries := c.log.Range(from, to)
	auditOp(c.log, a, "GET-SYSTEM-LOGS", fmt.Sprintf("%d..%d", from.Unix(), to.Unix()), true, countNote(len(entries)))
	return entries, nil
}

// GetSystemFeatures implements DB.
func (c *PostgresClient) GetSystemFeatures(a acl.Actor) (map[string]string, error) {
	if err := checkSystemACL(c.comp.AccessControl, a, acl.VerbReadFeatures); err != nil {
		return nil, err
	}
	f := c.db.Features()
	f["compliance"] = c.comp.String()
	f["encrypt_in_transit"] = fmt.Sprintf("%v", c.pipe != nil)
	return f, nil
}

// VerifyDeletion implements DB.
func (c *PostgresClient) VerifyDeletion(a acl.Actor, keys []string) (int, error) {
	if err := checkSystemACL(c.comp.AccessControl, a, acl.VerbVerifyDeletion); err != nil {
		return 0, err
	}
	present := 0
	for _, k := range keys {
		_, ok, err := c.db.Get(RecordsTable, k)
		if err != nil {
			return present, err
		}
		if ok {
			present++
		}
	}
	auditOp(c.log, a, "VERIFY-DELETION", fmt.Sprintf("%d keys", len(keys)), true, countNote(present))
	return present, nil
}

// SpaceUsage implements DB: total bytes are heap plus secondary indexes
// (what "database size" means for the relational engine); personal bytes
// are the Data column alone.
func (c *PostgresClient) SpaceUsage() (SpaceUsage, error) {
	rows, err := c.db.Select(RecordsTable, relstore.All())
	if err != nil {
		return SpaceUsage{}, err
	}
	var personal int64
	for _, row := range rows {
		personal += int64(len(row[1].(string)))
	}
	heap, index, err := c.db.Sizes(RecordsTable)
	if err != nil {
		return SpaceUsage{}, err
	}
	return SpaceUsage{PersonalBytes: personal, TotalBytes: heap + index}, nil
}

// Close implements DB.
func (c *PostgresClient) Close() error {
	var first error
	if err := c.db.Close(); err != nil {
		first = err
	}
	if c.log != nil {
		if err := c.log.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

var _ DB = (*PostgresClient)(nil)

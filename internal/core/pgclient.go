package core

import (
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/acl"
	"repro/internal/audit"
	"repro/internal/clock"
	"repro/internal/gdpr"
	"repro/internal/relstore"
	"repro/internal/securefs"
	"repro/internal/wal"
)

// PostgresClient is the GDPRbench client for the PostgreSQL-model engine
// (§5.2): the compliance middleware over a relEngine storage adapter.
// Records live in one wide table with a column per GDPR metadata
// attribute; metadata queries become predicates that the planner serves
// from secondary indexes when MetadataIndexing is on (Figure 5c) and
// sequential scans otherwise (Figure 5b). Compliance features map to:
//
//	EncryptAtRest    → WAL and audit log encrypted via securefs (LUKS)
//	EncryptInTransit → per-op transit.Pipe record layer (SSL verify-CA)
//	Logging          → csvlog-style statement+response logging
//	TimelyDeletion   → TTL daemon at a 1-second period
//	AccessControl    → acl checks in the middleware
//	MetadataIndexing → secondary indexes on every metadata column
type PostgresClient struct {
	*middleware
	db *relstore.DB
}

// RecordsTable is the personal-data table name.
const RecordsTable = "personal_records"

// TTLDaemonPeriod is the paper's retrofit period ("currently set to 1 sec").
const TTLDaemonPeriod = time.Second

// recordsSchema maps the §4.2.1 record format onto columns.
func recordsSchema() relstore.Schema {
	return relstore.Schema{
		Name: RecordsTable,
		Columns: []relstore.Column{
			{Name: "key", Type: relstore.TypeText},
			{Name: "data", Type: relstore.TypeText},
			{Name: "pur", Type: relstore.TypeTextList},
			{Name: "ttl", Type: relstore.TypeTime},
			{Name: "usr", Type: relstore.TypeText},
			{Name: "obj", Type: relstore.TypeTextList},
			{Name: "dec", Type: relstore.TypeTextList},
			{Name: "shr", Type: relstore.TypeTextList},
			{Name: "src", Type: relstore.TypeText},
		},
		PrimaryKey: "key",
	}
}

// metadataColumns are the columns that get secondary indexes under
// MetadataIndexing — all seven attributes, matching Table 3's "secondary
// indices for all the metadata fields".
var metadataColumns = []string{"pur", "ttl", "usr", "obj", "dec", "shr", "src"}

func rowFromRecord(r gdpr.Record) relstore.Row {
	return relstore.Row{
		r.Key, r.Data, r.Meta.Purposes, r.Meta.Expiry, r.Meta.User,
		r.Meta.Objections, r.Meta.Decisions, r.Meta.SharedWith, r.Meta.Source,
	}
}

func recordFromRow(row relstore.Row) gdpr.Record {
	listAt := func(i int) []string {
		l, _ := row[i].([]string)
		return l
	}
	return gdpr.Record{
		Key:  row[0].(string),
		Data: row[1].(string),
		Meta: gdpr.Metadata{
			Purposes:   listAt(2),
			Expiry:     row[3].(time.Time),
			User:       row[4].(string),
			Objections: listAt(5),
			Decisions:  listAt(6),
			SharedWith: listAt(7),
			Source:     row[8].(string),
		},
	}
}

// predicateFor translates a GDPR selector into a relational predicate.
func predicateFor(sel gdpr.Selector) (relstore.Predicate, error) {
	switch sel.Attr {
	case gdpr.AttrUser:
		return relstore.Eq("usr", sel.Value), nil
	case gdpr.AttrSource:
		return relstore.Eq("src", sel.Value), nil
	case gdpr.AttrPurpose:
		return relstore.Contains("pur", sel.Value), nil
	case gdpr.AttrObjection:
		if sel.Negate {
			return relstore.NotContains("obj", sel.Value), nil
		}
		return relstore.Contains("obj", sel.Value), nil
	case gdpr.AttrDecision:
		return relstore.Contains("dec", sel.Value), nil
	case gdpr.AttrSharing:
		return relstore.Contains("shr", sel.Value), nil
	case gdpr.AttrTTL:
		return relstore.Le("ttl", sel.AsOf), nil
	default:
		return relstore.Predicate{}, fmt.Errorf("core: selector %v has no relational predicate", sel)
	}
}

// PostgresConfig configures OpenPostgres.
type PostgresConfig struct {
	// Dir is where the WAL and audit files live; required for Logging
	// and WAL persistence. Empty disables persistence entirely.
	Dir string
	// Compliance selects the feature set.
	Compliance Compliance
	// Clock supplies time; defaults to the real clock.
	Clock clock.Clock
	// Passphrase derives the at-rest and in-transit keys.
	Passphrase string
	// DisableTTLDaemon leaves expiry to the caller (simulated-clock
	// harnesses call SweepExpired directly).
	DisableTTLDaemon bool
	// SynchronousCommit makes every write wait for WAL durability via
	// group commit (synchronous_commit=on). Default is the paper's
	// batched once-per-second flushing (=off/local).
	SynchronousCommit bool
	// AuditPolicy selects the audit append pipeline (sync | batched |
	// async); zero value is the legacy inline sync path.
	AuditPolicy audit.Pipeline
	// AuditSyncAlways makes the audit trail fsync per group commit
	// instead of everysec (the strict durable-audit configuration).
	AuditSyncAlways bool
	// GlobalLock serializes the engine behind one mutex (the seed's
	// original contention profile); ablation baseline for benchmarks.
	GlobalLock bool
	// Tuning arms the background log-compaction triggers (WAL checkpoint,
	// audit retention); the zero value disables them all.
	Tuning Tuning
}

// WrapConfig derives the middleware configuration from the
// PostgreSQL-model conventions: csvlog-style audit trail at
// Dir/postgres-csvlog, keys derived from the passphrase.
func (cfg PostgresConfig) WrapConfig() WrapConfig {
	pass := cfg.Passphrase
	if pass == "" {
		pass = "gdprbench-postgres"
	}
	wc := WrapConfig{
		Compliance:      cfg.Compliance,
		Clock:           cfg.Clock,
		AuditPolicy:     cfg.AuditPolicy,
		AuditSyncAlways: cfg.AuditSyncAlways,
		AuditRetention:  cfg.Tuning.AuditRetention,
	}
	if cfg.Compliance.Logging && cfg.Dir != "" {
		wc.AuditPath = filepath.Join(cfg.Dir, "postgres-csvlog")
		if cfg.Compliance.EncryptAtRest {
			wc.AuditKey = securefs.Key(pass + "/csvlog")
		}
	}
	if cfg.Compliance.EncryptInTransit {
		wc.TransitKey = securefs.Key(pass + "/transit")
	}
	return wc
}

// OpenPostgres builds a PostgresClient.
func OpenPostgres(cfg PostgresConfig) (*PostgresClient, error) {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.NewReal()
	}
	wc := cfg.WrapConfig()
	if cfg.Compliance.Logging {
		if cfg.Dir == "" {
			return nil, fmt.Errorf("core: postgres logging requires a directory")
		}
		log, err := OpenAudit(wc, clk)
		if err != nil {
			return nil, err
		}
		wc.Audit = log
	}
	eng, err := NewPostgresEngine(cfg, wc.Audit)
	if err != nil {
		if wc.Audit != nil {
			wc.Audit.Close()
		}
		return nil, err
	}
	m, err := newMiddleware(eng, wc)
	if err != nil {
		eng.Close()
		if wc.Audit != nil {
			wc.Audit.Close()
		}
		return nil, err
	}
	return &PostgresClient{middleware: m, db: eng.(*relEngine).db}, nil
}

// NewPostgresEngine builds a bare PostgreSQL-model storage engine
// (relstore with WAL, indexes and TTL daemon per the compliance
// configuration) with no compliance layer attached. statements, when
// non-nil, receives csvlog-style statement logging — the sharded opener
// passes one shared log for all shards. The shard router composes several
// of these; Wrap adds the middleware.
func NewPostgresEngine(cfg PostgresConfig, statements *audit.Log) (Engine, error) {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.NewReal()
	}
	comp := cfg.Compliance
	pass := cfg.Passphrase
	if pass == "" {
		pass = "gdprbench-postgres"
	}

	relCfg := relstore.Config{
		Clock:           clk,
		GlobalLock:      cfg.GlobalLock,
		CheckpointBytes: cfg.Tuning.WALCheckpointBytes,
	}
	if comp.Logging {
		if statements == nil {
			return nil, fmt.Errorf("core: postgres statement logging requires an audit log")
		}
		relCfg.Audit = statements
		relCfg.LogStatements = true
	}
	if cfg.Dir != "" {
		relCfg.WALPath = filepath.Join(cfg.Dir, "postgres.wal")
		relCfg.WALSync = wal.SyncBatched
		if cfg.SynchronousCommit {
			relCfg.WALSync = wal.SyncOnCommit
		}
		if comp.EncryptAtRest {
			relCfg.EncryptionKey = securefs.Key(pass + "/wal")
		}
	}
	db, err := relstore.Open(relCfg)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (Engine, error) {
		db.Close()
		return nil, err
	}
	if err := db.CreateTable(recordsSchema()); err != nil {
		return fail(err)
	}
	if err := db.Recover(); err != nil {
		return fail(err)
	}
	if comp.MetadataIndexing {
		for _, col := range metadataColumns {
			if err := db.CreateIndex(RecordsTable, col); err != nil {
				return fail(err)
			}
		}
	}
	if comp.TimelyDeletion && !cfg.DisableTTLDaemon {
		if err := db.StartTTLDaemon(RecordsTable, "ttl", TTLDaemonPeriod); err != nil {
			return fail(err)
		}
	}
	return &relEngine{db: db}, nil
}

// DB exposes the underlying engine for experiment harnesses.
func (c *PostgresClient) DB() *relstore.DB { return c.db }

// SweepExpired runs one synchronous TTL-daemon pass (simulated clocks).
func (c *PostgresClient) SweepExpired() (int, error) {
	return c.db.SweepExpired(RecordsTable, "ttl")
}

// CreateRecords implements BatchCreator: it validates and ACL-checks
// every record, then inserts the batch through the engine's bulk path —
// one table-lock acquisition, one snapshot publish and one group-commit
// wait for the whole batch instead of per record. core.Load uses it to
// make the load phase scale with writer threads.
func (c *PostgresClient) CreateRecords(a acl.Actor, recs []gdpr.Record) error {
	return c.createBatch(a, recs)
}

var (
	_ DB           = (*PostgresClient)(nil)
	_ BatchCreator = (*PostgresClient)(nil)
)

// ---------------------------------------------------------------------------
// relEngine: the storage adapter

// relEngine adapts relstore.DB to the Engine contract. It holds no
// compliance state — rows in, records out, with the PostgreSQL cost
// profile (point reads and indexed predicates when indexes exist,
// sequential scans otherwise).
type relEngine struct {
	db *relstore.DB
}

// Put implements Engine (INSERT semantics: duplicate keys error).
func (e *relEngine) Put(rec gdpr.Record) error {
	return e.db.Insert(RecordsTable, rowFromRecord(rec))
}

// PutBatch implements BatchEngine: one table-lock acquisition, one
// snapshot publish, one group-commit wait per batch.
func (e *relEngine) PutBatch(recs []gdpr.Record) error {
	rows := make([]relstore.Row, len(recs))
	for i, rec := range recs {
		rows[i] = rowFromRecord(rec)
	}
	return e.db.InsertBatch(RecordsTable, rows)
}

// Get implements Engine.
func (e *relEngine) Get(key string) (gdpr.Record, bool, error) {
	row, ok, err := e.db.Get(RecordsTable, key)
	if err != nil || !ok {
		return gdpr.Record{}, false, err
	}
	return recordFromRow(row), true, nil
}

// Select implements Engine.
func (e *relEngine) Select(sel gdpr.Selector) ([]gdpr.Record, error) {
	if sel.Attr == gdpr.AttrKey {
		rec, ok, err := e.Get(sel.Value)
		if err != nil || !ok {
			return nil, err
		}
		return []gdpr.Record{rec}, nil
	}
	pred, err := predicateFor(sel)
	if err != nil {
		return nil, err
	}
	rows, err := e.db.Select(RecordsTable, pred)
	if err != nil {
		return nil, err
	}
	recs := make([]gdpr.Record, len(rows))
	for i, row := range rows {
		recs[i] = recordFromRow(row)
	}
	return recs, nil
}

// SelectKeys implements Engine: the planner's key-only projection.
func (e *relEngine) SelectKeys(sel gdpr.Selector) ([]string, error) {
	if sel.Attr == gdpr.AttrKey {
		_, ok, err := e.db.Get(RecordsTable, sel.Value)
		if err != nil || !ok {
			return nil, err
		}
		return []string{sel.Value}, nil
	}
	pred, err := predicateFor(sel)
	if err != nil {
		return nil, err
	}
	return e.db.SelectKeys(RecordsTable, pred)
}

// Update implements Engine.
func (e *relEngine) Update(key string, mutate func(gdpr.Record) (gdpr.Record, error)) (bool, error) {
	return e.db.UpdateFunc(RecordsTable, key, func(row relstore.Row) (relstore.Row, error) {
		out, err := mutate(recordFromRow(row))
		if err != nil {
			return nil, err
		}
		return rowFromRecord(out), nil
	})
}

// Delete implements Engine.
func (e *relEngine) Delete(keys []string) (int, error) {
	n := 0
	for _, key := range keys {
		existed, err := e.db.Delete(RecordsTable, key)
		if err != nil {
			return n, err
		}
		if existed {
			n++
		}
	}
	return n, nil
}

// Exists implements Engine.
func (e *relEngine) Exists(key string) (bool, error) {
	_, ok, err := e.db.Get(RecordsTable, key)
	return ok, err
}

// Features implements Engine.
func (e *relEngine) Features() map[string]string { return e.db.Features() }

// SpaceUsage implements Engine: total bytes are heap plus secondary
// indexes (what "database size" means for the relational engine);
// personal bytes are the Data column alone.
func (e *relEngine) SpaceUsage() (SpaceUsage, error) {
	rows, err := e.db.Select(RecordsTable, relstore.All())
	if err != nil {
		return SpaceUsage{}, err
	}
	var personal int64
	for _, row := range rows {
		personal += int64(len(row[1].(string)))
	}
	heap, index, err := e.db.Sizes(RecordsTable)
	if err != nil {
		return SpaceUsage{}, err
	}
	return SpaceUsage{PersonalBytes: personal, TotalBytes: heap + index}, nil
}

// Close implements Engine.
func (e *relEngine) Close() error { return e.db.Close() }

var _ BatchEngine = (*relEngine)(nil)

package core

import (
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/audit"
	"repro/internal/clock"
	"repro/internal/gdpr"
	"repro/internal/index"
	"repro/internal/kvstore"
	"repro/internal/securefs"
)

// RedisClient is the GDPRbench client for the Redis-model engine (§5.1):
// the compliance middleware over a kvEngine storage adapter. Records are
// stored in wire format under their key; by default every attribute query
// is an O(n) scan because the engine has no secondary indexes — exactly
// the property that makes GDPR workloads slow on Redis in §6.2.
// Compliance features map to:
//
//	EncryptAtRest    → AOF encrypted via securefs (LUKS substitute)
//	EncryptInTransit → per-op transit.Pipe record layer (Stunnel substitute)
//	Logging          → AOF extended to log reads + middleware audit trail
//	TimelyDeletion   → strict active-expiry cycle
//	AccessControl    → acl checks in the middleware ("we defer access
//	                   control to DBMS applications", §5.1)
//	MetadataIndexing → inverted metadata + ordered expiry indexes inside
//	                   the kvstore (beyond the paper's retrofit, which
//	                   left Redis scanning); equality attribute selectors
//	                   become O(result), TTL purges O(expired)
//
// The Redis model deliberately does not batch creates (no BatchCreator):
// the paper's load phase issues one command per record.
type RedisClient struct {
	*middleware
	store *kvstore.Store
}

// RedisConfig configures OpenRedis.
type RedisConfig struct {
	// Dir is where the AOF and audit files live; required when Logging
	// or EncryptAtRest persistence is enabled.
	Dir string
	// Compliance selects the feature set.
	Compliance Compliance
	// Clock supplies time; defaults to the real clock.
	Clock clock.Clock
	// Passphrase derives the at-rest and in-transit keys.
	Passphrase string
	// DisableBackgroundExpiry leaves the expiry loop to the caller
	// (simulated-clock harnesses drive CycleOnce directly).
	DisableBackgroundExpiry bool
	// AuditPolicy selects the audit append pipeline (sync | batched |
	// async); zero value is the legacy inline sync path.
	AuditPolicy audit.Pipeline
	// AuditSyncAlways makes the audit trail fsync per group commit
	// instead of everysec (the strict durable-audit configuration).
	AuditSyncAlways bool
	// KVStripes partitions each kvstore's keyspace into that many hash
	// stripes (rounded up to a power of two) with a staged group-commit
	// AOF; 0 keeps the Redis-faithful single-mutex, inline-AOF profile.
	KVStripes int
	// Tuning arms the background log-compaction triggers (AOF rewrite,
	// audit retention); the zero value disables them all.
	Tuning Tuning
}

// WrapConfig derives the middleware configuration from the Redis-model
// conventions: audit trail at Dir/redis-audit.log, keys derived from the
// passphrase. Sharded openers reuse it so one middleware (and one audit
// trail) covers every shard.
func (cfg RedisConfig) WrapConfig() WrapConfig {
	pass := cfg.Passphrase
	if pass == "" {
		pass = "gdprbench-redis"
	}
	wc := WrapConfig{
		Compliance:      cfg.Compliance,
		Clock:           cfg.Clock,
		AuditPolicy:     cfg.AuditPolicy,
		AuditSyncAlways: cfg.AuditSyncAlways,
		AuditRetention:  cfg.Tuning.AuditRetention,
	}
	if cfg.Compliance.Logging && cfg.Dir != "" {
		wc.AuditPath = filepath.Join(cfg.Dir, "redis-audit.log")
		if cfg.Compliance.EncryptAtRest {
			wc.AuditKey = securefs.Key(pass + "/audit")
		}
	}
	if cfg.Compliance.EncryptInTransit {
		wc.TransitKey = securefs.Key(pass + "/transit")
	}
	return wc
}

// OpenRedis builds a RedisClient.
func OpenRedis(cfg RedisConfig) (*RedisClient, error) {
	eng, err := newKVEngine(cfg)
	if err != nil {
		return nil, err
	}
	m, err := newMiddleware(eng, cfg.WrapConfig())
	if err != nil {
		eng.Close()
		return nil, err
	}
	return &RedisClient{middleware: m, store: eng.store}, nil
}

// NewRedisEngine builds a bare Redis-model storage engine (kvstore with
// AOF and expiry per the compliance configuration) with no compliance
// layer attached. The shard router composes several of these; Wrap adds
// the middleware.
func NewRedisEngine(cfg RedisConfig) (Engine, error) { return newKVEngine(cfg) }

// Store exposes the underlying engine for experiment harnesses (expiry
// cycle driving, AOF inspection).
func (c *RedisClient) Store() *kvstore.Store { return c.store }

var _ DB = (*RedisClient)(nil)

// ---------------------------------------------------------------------------
// kvEngine: the storage adapter

// kvEngine adapts kvstore.Store to the Engine contract. It holds no
// compliance state — records in, records out, with the Redis cost profile
// (O(1) keyed access, O(n) attribute scans, expiry bookkeeping).
type kvEngine struct {
	store *kvstore.Store
}

func newKVEngine(cfg RedisConfig) (*kvEngine, error) {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.NewReal()
	}
	comp := cfg.Compliance
	pass := cfg.Passphrase
	if pass == "" {
		pass = "gdprbench-redis"
	}

	kvCfg := kvstore.Config{
		Clock:            clk,
		MetadataIndexing: comp.MetadataIndexing,
		Striping:         cfg.KVStripes,
		AutoRewritePct:   cfg.Tuning.AOFRewritePct,
	}
	if comp.TimelyDeletion {
		kvCfg.ExpiryMode = kvstore.ExpiryStrict
	}
	if comp.Logging {
		if cfg.Dir == "" {
			return nil, fmt.Errorf("core: redis logging requires a directory")
		}
		kvCfg.AOFPath = filepath.Join(cfg.Dir, "redis.aof")
		kvCfg.AOFSync = kvstore.FsyncEverySec
		kvCfg.LogReads = true
	}
	if comp.EncryptAtRest && kvCfg.AOFPath != "" {
		kvCfg.EncryptionKey = securefs.Key(pass + "/aof")
	}
	store, err := kvstore.Open(kvCfg)
	if err != nil {
		return nil, err
	}
	if comp.TimelyDeletion && !cfg.DisableBackgroundExpiry {
		store.StartExpiry()
	}
	return &kvEngine{store: store}, nil
}

// Put implements Engine.
func (e *kvEngine) Put(rec gdpr.Record) error {
	return e.store.SetWithExpiry(rec.Key, gdpr.Encode(rec), rec.Meta.Expiry)
}

// Get implements Engine.
func (e *kvEngine) Get(key string) (gdpr.Record, bool, error) {
	v, ok := e.store.Get(key)
	if !ok {
		return gdpr.Record{}, false, nil
	}
	rec, err := gdpr.Decode(v)
	if err != nil {
		return gdpr.Record{}, false, fmt.Errorf("core: record %q: %w", key, err)
	}
	return rec, true, nil
}

// indexable reports whether sel can be served by the inverted metadata
// index: a positive equality match on one of the indexed dimensions.
// Negated selectors (BY-NOT-OBJ) need the complement set, and SRC is
// deliberately unindexed — both always scan.
func indexable(sel gdpr.Selector) bool {
	return !sel.Negate && index.IsDim(sel.Attr)
}

// Select implements Engine: O(1) for key lookups, O(result) through the
// inverted metadata index when indexing is on, an O(n) scan otherwise.
func (e *kvEngine) Select(sel gdpr.Selector) ([]gdpr.Record, error) {
	if sel.Attr == gdpr.AttrKey {
		rec, ok, err := e.Get(sel.Value)
		if err != nil || !ok {
			return nil, err
		}
		return []gdpr.Record{rec}, nil
	}
	var out []gdpr.Record
	var decodeErr error
	visit := func(key, value string, _ time.Time) bool {
		rec, err := gdpr.Decode(value)
		if err != nil {
			decodeErr = fmt.Errorf("core: record %q: %w", key, err)
			return false
		}
		if sel.Matches(rec) {
			out = append(out, rec)
		}
		return true
	}
	if indexable(sel) && e.store.IndexedForEach(sel.Attr, sel.Value, visit) {
		return out, decodeErr
	}
	e.store.ForEach(visit)
	return out, decodeErr
}

// SelectKeys implements Engine. TTL selectors come straight from the
// engine's expiry tracking — the ordered expiry index (O(expired)) when
// indexing is on, the expires dict otherwise; equality selectors use the
// inverted index like Select.
func (e *kvEngine) SelectKeys(sel gdpr.Selector) ([]string, error) {
	if sel.Attr == gdpr.AttrTTL {
		return e.store.ExpiredKeys(), nil
	}
	if sel.Attr == gdpr.AttrKey {
		if e.store.Exists(sel.Value) {
			return []string{sel.Value}, nil
		}
		return nil, nil
	}
	var out []string
	var decodeErr error
	visit := func(key, value string, _ time.Time) bool {
		rec, err := gdpr.Decode(value)
		if err != nil {
			decodeErr = fmt.Errorf("core: record %q: %w", key, err)
			return false
		}
		if sel.Matches(rec) {
			out = append(out, key)
		}
		return true
	}
	if indexable(sel) && e.store.IndexedForEach(sel.Attr, sel.Value, visit) {
		return out, decodeErr
	}
	e.store.ForEach(visit)
	return out, decodeErr
}

// Update implements Engine.
func (e *kvEngine) Update(key string, mutate func(gdpr.Record) (gdpr.Record, error)) (bool, error) {
	return e.store.Update(key, func(value string, _ time.Time) (string, time.Time, error) {
		rec, err := gdpr.Decode(value)
		if err != nil {
			return "", time.Time{}, fmt.Errorf("core: record %q: %w", key, err)
		}
		out, err := mutate(rec)
		if err != nil {
			return "", time.Time{}, err
		}
		return gdpr.Encode(out), out.Meta.Expiry, nil
	})
}

// Delete implements Engine.
func (e *kvEngine) Delete(keys []string) (int, error) { return e.store.Del(keys...) }

// Exists implements Engine.
func (e *kvEngine) Exists(key string) (bool, error) { return e.store.Exists(key), nil }

// Features implements Engine.
func (e *kvEngine) Features() map[string]string { return e.store.Info() }

// SpaceUsage implements Engine: total bytes are the engine's in-memory
// footprint (Redis' used-memory analog) plus the metadata-index layer, so
// Table 3 reflects the indexing space overhead; personal bytes are the
// Data fields alone.
func (e *kvEngine) SpaceUsage() (SpaceUsage, error) {
	var personal int64
	var decodeErr error
	e.store.ForEach(func(key, value string, _ time.Time) bool {
		rec, err := gdpr.Decode(value)
		if err != nil {
			decodeErr = err
			return false
		}
		personal += int64(rec.DataSize())
		return true
	})
	if decodeErr != nil {
		return SpaceUsage{}, decodeErr
	}
	return SpaceUsage{
		PersonalBytes: personal,
		TotalBytes:    e.store.MemoryBytes() + e.store.IndexBytes(),
	}, nil
}

// Close implements Engine.
func (e *kvEngine) Close() error { return e.store.Close() }

var _ Engine = (*kvEngine)(nil)

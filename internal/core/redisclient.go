package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/acl"
	"repro/internal/audit"
	"repro/internal/clock"
	"repro/internal/gdpr"
	"repro/internal/kvstore"
	"repro/internal/securefs"
	"repro/internal/transit"
)

// RedisClient is the GDPRbench client stub for the Redis-model engine
// (§5.1). Records are stored in wire format under their key; every
// attribute query is an O(n) scan because the engine has no secondary
// indexes — exactly the property that makes GDPR workloads slow on Redis
// in §6.2. Compliance features map to:
//
//	EncryptAtRest    → AOF encrypted via securefs (LUKS substitute)
//	EncryptInTransit → per-op transit.Pipe record layer (Stunnel substitute)
//	Logging          → AOF extended to log reads + adapter audit trail
//	TimelyDeletion   → strict active-expiry cycle
//	AccessControl    → acl checks in this client ("we defer access
//	                   control to DBMS applications", §5.1)
type RedisClient struct {
	store *kvstore.Store
	log   *audit.Log
	pipe  *transit.Pipe
	comp  Compliance
	clk   clock.Clock
}

// RedisConfig configures OpenRedis.
type RedisConfig struct {
	// Dir is where the AOF and audit files live; required when Logging
	// or EncryptAtRest persistence is enabled.
	Dir string
	// Compliance selects the feature set.
	Compliance Compliance
	// Clock supplies time; defaults to the real clock.
	Clock clock.Clock
	// Passphrase derives the at-rest and in-transit keys.
	Passphrase string
	// DisableBackgroundExpiry leaves the expiry loop to the caller
	// (simulated-clock harnesses drive CycleOnce directly).
	DisableBackgroundExpiry bool
}

// OpenRedis builds a RedisClient.
func OpenRedis(cfg RedisConfig) (*RedisClient, error) {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.NewReal()
	}
	comp := cfg.Compliance
	pass := cfg.Passphrase
	if pass == "" {
		pass = "gdprbench-redis"
	}

	kvCfg := kvstore.Config{Clock: clk}
	if comp.TimelyDeletion {
		kvCfg.ExpiryMode = kvstore.ExpiryStrict
	}
	if comp.Logging {
		if cfg.Dir == "" {
			return nil, fmt.Errorf("core: redis logging requires a directory")
		}
		kvCfg.AOFPath = filepath.Join(cfg.Dir, "redis.aof")
		kvCfg.AOFSync = kvstore.FsyncEverySec
		kvCfg.LogReads = true
	}
	if comp.EncryptAtRest && kvCfg.AOFPath != "" {
		kvCfg.EncryptionKey = securefs.Key(pass + "/aof")
	}
	store, err := kvstore.Open(kvCfg)
	if err != nil {
		return nil, err
	}

	c := &RedisClient{store: store, comp: comp, clk: clk}
	if comp.Logging {
		auditCfg := audit.Config{
			Path:   filepath.Join(cfg.Dir, "redis-audit.log"),
			Policy: audit.SyncEverySec,
			Clock:  clk,
		}
		if comp.EncryptAtRest {
			auditCfg.Key = securefs.Key(pass + "/audit")
		}
		log, err := audit.Open(auditCfg)
		if err != nil {
			store.Close()
			return nil, err
		}
		c.log = log
	}
	if comp.EncryptInTransit {
		pipe, err := transit.NewPipe(securefs.Key(pass + "/transit"))
		if err != nil {
			c.Close()
			return nil, err
		}
		c.pipe = pipe
	}
	if comp.TimelyDeletion && !cfg.DisableBackgroundExpiry {
		store.StartExpiry()
	}
	return c, nil
}

// Store exposes the underlying engine for experiment harnesses (expiry
// cycle driving, AOF inspection).
func (c *RedisClient) Store() *kvstore.Store { return c.store }

// transitWrap pays the in-transit record-layer cost around fn. The
// request and response payloads cross the simulated wire.
func (c *RedisClient) transitWrap(req string, fn func() (string, error)) error {
	if c.pipe == nil {
		_, err := fn()
		return err
	}
	var opErr error
	_, err := c.pipe.RoundTrip([]byte(req), func([]byte) []byte {
		resp, e := fn()
		opErr = e
		return []byte(resp)
	})
	if opErr != nil {
		return opErr
	}
	return err
}

// scan decodes every live record and returns those matching sel.
func (c *RedisClient) scan(sel gdpr.Selector) ([]gdpr.Record, error) {
	var out []gdpr.Record
	var decodeErr error
	c.store.ForEach(func(key, value string, _ time.Time) bool {
		rec, err := gdpr.Decode(value)
		if err != nil {
			decodeErr = fmt.Errorf("core: record %q: %w", key, err)
			return false
		}
		if sel.Matches(rec) {
			out = append(out, rec)
		}
		return true
	})
	return out, decodeErr
}

// fetch resolves a selector to records: O(1) for key lookups, O(n)
// otherwise.
func (c *RedisClient) fetch(sel gdpr.Selector) ([]gdpr.Record, error) {
	if sel.Attr == gdpr.AttrKey {
		v, ok := c.store.Get(sel.Value)
		if !ok {
			return nil, nil
		}
		rec, err := gdpr.Decode(v)
		if err != nil {
			return nil, fmt.Errorf("core: record %q: %w", sel.Value, err)
		}
		return []gdpr.Record{rec}, nil
	}
	return c.scan(sel)
}

func (c *RedisClient) put(rec gdpr.Record) error {
	return c.store.SetWithExpiry(rec.Key, gdpr.Encode(rec), rec.Meta.Expiry)
}

// CreateRecord implements DB.
func (c *RedisClient) CreateRecord(a acl.Actor, rec gdpr.Record) error {
	if err := rec.Validate(c.comp.Strict); err != nil {
		return err
	}
	if c.comp.AccessControl {
		if err := acl.CheckRecord(a, acl.VerbCreate, rec, nil); err != nil {
			auditOp(c.log, a, "CREATE-RECORD", rec.Key, false, err.Error())
			return err
		}
	}
	err := c.transitWrap("CREATE "+rec.Key, func() (string, error) {
		return "OK", c.put(rec)
	})
	auditOp(c.log, a, "CREATE-RECORD", rec.Key, err == nil, "")
	return err
}

// ReadData implements DB.
func (c *RedisClient) ReadData(a acl.Actor, sel gdpr.Selector) ([]gdpr.Record, error) {
	var out []gdpr.Record
	err := c.transitWrap("READ-DATA "+sel.String(), func() (string, error) {
		recs, err := c.fetch(sel)
		if err != nil {
			return "", err
		}
		out = filterACL(c.comp.AccessControl, a, acl.VerbReadData, recs, nil)
		return encodeAll(out), nil
	})
	auditOp(c.log, a, "READ-DATA", sel.String(), err == nil, countNote(len(out)))
	return out, err
}

// ReadMetadata implements DB.
func (c *RedisClient) ReadMetadata(a acl.Actor, sel gdpr.Selector) ([]gdpr.Record, error) {
	var out []gdpr.Record
	err := c.transitWrap("READ-META "+sel.String(), func() (string, error) {
		recs, err := c.fetch(sel)
		if err != nil {
			return "", err
		}
		out = redactData(filterACL(c.comp.AccessControl, a, acl.VerbReadMetadata, recs, nil))
		return encodeAll(out), nil
	})
	auditOp(c.log, a, "READ-METADATA", sel.String(), err == nil, countNote(len(out)))
	return out, err
}

// rmw atomically applies mutate to the record at key, re-verifying the
// selector and the actor's rights under the engine lock (a concurrent
// mutation may have changed the record since it was selected). It reports
// whether the record was updated.
func (c *RedisClient) rmw(a acl.Actor, verb acl.Verb, key string, sel gdpr.Selector, delta *gdpr.Delta, mutate func(*gdpr.Record) error) (bool, error) {
	updated, err := c.store.Update(key, func(value string, _ time.Time) (string, time.Time, error) {
		rec, err := gdpr.Decode(value)
		if err != nil {
			return "", time.Time{}, fmt.Errorf("core: record %q: %w", key, err)
		}
		if !sel.Matches(rec) {
			return "", time.Time{}, errSkipUpdate
		}
		if c.comp.AccessControl {
			if err := acl.CheckRecord(a, verb, rec, delta); err != nil {
				return "", time.Time{}, errSkipUpdate
			}
		}
		if err := mutate(&rec); err != nil {
			return "", time.Time{}, err
		}
		if err := rec.Validate(c.comp.Strict); err != nil {
			return "", time.Time{}, err
		}
		return gdpr.Encode(rec), rec.Meta.Expiry, nil
	})
	if errors.Is(err, errSkipUpdate) {
		return false, nil
	}
	return updated, err
}

// UpdateData implements DB.
func (c *RedisClient) UpdateData(a acl.Actor, key, data string) (int, error) {
	n := 0
	err := c.transitWrap("UPDATE-DATA "+key, func() (string, error) {
		ok, err := c.rmw(a, acl.VerbUpdateData, key, gdpr.ByKey(key), nil, func(rec *gdpr.Record) error {
			rec.Data = data
			return nil
		})
		if err != nil {
			return "", err
		}
		if ok {
			n = 1
		}
		return fmt.Sprintf("%d", n), nil
	})
	auditOp(c.log, a, "UPDATE-DATA", key, err == nil, countNote(n))
	return n, err
}

// UpdateMetadata implements DB.
func (c *RedisClient) UpdateMetadata(a acl.Actor, sel gdpr.Selector, delta gdpr.Delta) (int, error) {
	n := 0
	err := c.transitWrap("UPDATE-META "+sel.String(), func() (string, error) {
		recs, err := c.fetch(sel)
		if err != nil {
			return "", err
		}
		for _, rec := range recs {
			ok, err := c.rmw(a, acl.VerbUpdateMetadata, rec.Key, sel, &delta, func(r *gdpr.Record) error {
				return delta.Apply(&r.Meta)
			})
			if err != nil {
				return "", err
			}
			if ok {
				n++
			}
		}
		return fmt.Sprintf("%d", n), nil
	})
	auditOp(c.log, a, "UPDATE-METADATA", sel.String(), err == nil, countNote(n))
	return n, err
}

// DeleteRecord implements DB.
func (c *RedisClient) DeleteRecord(a acl.Actor, sel gdpr.Selector) (int, error) {
	n := 0
	err := c.transitWrap("DELETE "+sel.String(), func() (string, error) {
		var keys []string
		if sel.Attr == gdpr.AttrTTL {
			// Purge expired records (G 5(1e)): the engine's expires set
			// knows them without a value scan.
			keys = c.store.ExpiredKeys()
			if c.comp.AccessControl && a.Role != acl.Controller {
				return "", &acl.DeniedError{Actor: a, Verb: acl.VerbDelete, Reason: "only controllers purge by TTL"}
			}
		} else {
			recs, err := c.fetch(sel)
			if err != nil {
				return "", err
			}
			recs = filterACL(c.comp.AccessControl, a, acl.VerbDelete, recs, nil)
			for _, r := range recs {
				keys = append(keys, r.Key)
			}
		}
		if len(keys) == 0 {
			return "0", nil
		}
		deleted, err := c.store.Del(keys...)
		if err != nil {
			return "", err
		}
		n = deleted
		return fmt.Sprintf("%d", n), nil
	})
	auditOp(c.log, a, "DELETE-RECORD", sel.String(), err == nil, countNote(n))
	return n, err
}

// GetSystemLogs implements DB.
func (c *RedisClient) GetSystemLogs(a acl.Actor, from, to time.Time) ([]audit.Entry, error) {
	if err := checkSystemACL(c.comp.AccessControl, a, acl.VerbReadLogs); err != nil {
		return nil, err
	}
	if c.log == nil {
		return nil, fmt.Errorf("%w: logging", ErrFeatureDisabled)
	}
	entries := c.log.Range(from, to)
	auditOp(c.log, a, "GET-SYSTEM-LOGS", fmt.Sprintf("%d..%d", from.Unix(), to.Unix()), true, countNote(len(entries)))
	return entries, nil
}

// GetSystemFeatures implements DB.
func (c *RedisClient) GetSystemFeatures(a acl.Actor) (map[string]string, error) {
	if err := checkSystemACL(c.comp.AccessControl, a, acl.VerbReadFeatures); err != nil {
		return nil, err
	}
	f := c.store.Info()
	f["compliance"] = c.comp.String()
	f["encrypt_in_transit"] = fmt.Sprintf("%v", c.pipe != nil)
	return f, nil
}

// VerifyDeletion implements DB.
func (c *RedisClient) VerifyDeletion(a acl.Actor, keys []string) (int, error) {
	if err := checkSystemACL(c.comp.AccessControl, a, acl.VerbVerifyDeletion); err != nil {
		return 0, err
	}
	present := 0
	for _, k := range keys {
		if c.store.Exists(k) {
			present++
		}
	}
	auditOp(c.log, a, "VERIFY-DELETION", fmt.Sprintf("%d keys", len(keys)), true, countNote(present))
	return present, nil
}

// SpaceUsage implements DB: total bytes are the engine's in-memory
// footprint (Redis' used-memory analog); personal bytes are the Data
// fields alone.
func (c *RedisClient) SpaceUsage() (SpaceUsage, error) {
	var personal int64
	var decodeErr error
	c.store.ForEach(func(key, value string, _ time.Time) bool {
		rec, err := gdpr.Decode(value)
		if err != nil {
			decodeErr = err
			return false
		}
		personal += int64(rec.DataSize())
		return true
	})
	if decodeErr != nil {
		return SpaceUsage{}, decodeErr
	}
	return SpaceUsage{PersonalBytes: personal, TotalBytes: c.store.MemoryBytes()}, nil
}

// Close implements DB.
func (c *RedisClient) Close() error {
	var first error
	if err := c.store.Close(); err != nil {
		first = err
	}
	if c.log != nil {
		if err := c.log.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func encodeAll(recs []gdpr.Record) string {
	var b strings.Builder
	for _, r := range recs {
		b.WriteString(gdpr.Encode(r))
		b.WriteByte('\n')
	}
	return b.String()
}

var _ DB = (*RedisClient)(nil)

// Package core is GDPRbench itself — the paper's primary contribution
// (§4): a benchmark for personal-data datastores built from
//
//   - the GDPR query set of §3.3 (CREATE-RECORD through GET-SYSTEM-LOGS),
//     expressed by the DB interface;
//   - the four role workloads of Table 2a (controller, customer,
//     processor, regulator) with their default query mixes and record
//     distributions;
//   - the three metrics of §4.2.3: correctness, completion time, and
//     storage space overhead;
//   - client stubs ("DB interface layer") for the two engines, which also
//     enforce metadata-based access control, mirroring the paper's
//     retrofits ("we extend the Redis client in GDPRbench to enforce
//     metadata-based access rights").
package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/acl"
	"repro/internal/audit"
	"repro/internal/gdpr"
)

// ErrFeatureDisabled is returned when a query needs a compliance feature
// (e.g. logging for GET-SYSTEM-LOGS) that the configuration turned off.
var ErrFeatureDisabled = errors.New("core: required compliance feature is disabled")

// DB is the GDPR query interface of §3.3. Every call carries the acting
// GDPR entity; implementations enforce Figure 1's access matrix when
// access control is enabled.
type DB interface {
	// CreateRecord inserts a personal data record with its metadata
	// (controller, G 24).
	CreateRecord(a acl.Actor, rec gdpr.Record) error
	// ReadData returns the records matching sel with their personal data
	// (READ-DATA-BY-{KEY|PUR|USR|OBJ|DEC}).
	ReadData(a acl.Actor, sel gdpr.Selector) ([]gdpr.Record, error)
	// ReadMetadata returns the records matching sel with personal data
	// redacted (READ-METADATA-BY-{KEY|USR|SHR}).
	ReadMetadata(a acl.Actor, sel gdpr.Selector) ([]gdpr.Record, error)
	// UpdateData rectifies the personal data of one record
	// (UPDATE-DATA-BY-KEY, G 16). It reports how many records changed.
	UpdateData(a acl.Actor, key, data string) (int, error)
	// UpdateMetadata applies delta to every record matching sel
	// (UPDATE-METADATA-BY-{KEY|PUR|USR}). It reports how many changed.
	UpdateMetadata(a acl.Actor, sel gdpr.Selector, delta gdpr.Delta) (int, error)
	// DeleteRecord erases the records matching sel
	// (DELETE-RECORD-BY-{KEY|PUR|TTL|USR}). It reports how many went.
	DeleteRecord(a acl.Actor, sel gdpr.Selector) (int, error)
	// GetSystemLogs returns audit entries in [from, to]
	// (GET-SYSTEM-LOGS, G 30/33/34).
	GetSystemLogs(a acl.Actor, from, to time.Time) ([]audit.Entry, error)
	// GetSystemFeatures reports the engine's security capabilities
	// (GET-SYSTEM-FEATURES, G 24/25).
	GetSystemFeatures(a acl.Actor) (map[string]string, error)
	// VerifyDeletion reports how many of the given keys still exist
	// (regulator workload; 0 means the deletions are verified).
	VerifyDeletion(a acl.Actor, keys []string) (int, error)
	// SpaceUsage reports the space-overhead metric inputs.
	SpaceUsage() (SpaceUsage, error)
	// Close releases engine resources.
	Close() error
}

// BatchCreator is implemented by clients with a bulk CREATE-RECORD path
// (one engine call, one durability wait per batch). core.Load prefers it
// when present; clients without one — the Redis model keeps the paper's
// one-command-per-record shape — load record by record.
type BatchCreator interface {
	CreateRecords(a acl.Actor, recs []gdpr.Record) error
}

// SpaceUsage captures §4.2.3's storage space overhead: "the ratio of
// total size of the database to the total size of personal data in it".
type SpaceUsage struct {
	// PersonalBytes is the size of the personal data alone.
	PersonalBytes int64
	// TotalBytes is the total datastore footprint (records + metadata +
	// secondary indexes).
	TotalBytes int64
}

// Factor returns TotalBytes / PersonalBytes (>= 1 by construction when
// any metadata is stored).
func (s SpaceUsage) Factor() float64 {
	if s.PersonalBytes <= 0 {
		return 0
	}
	return float64(s.TotalBytes) / float64(s.PersonalBytes)
}

// Compliance toggles the five GDPR feature families of §3.2 on a client.
type Compliance struct {
	// EncryptAtRest routes engine persistence through AES-GCM (the
	// paper's LUKS setup).
	EncryptAtRest bool
	// EncryptInTransit pays a TLS-like record-layer cost per operation
	// (the paper's Stunnel / verify-CA SSL setup).
	EncryptInTransit bool
	// Logging audits every operation, reads included (AOF piggyback /
	// csvlog retrofits) and enables GET-SYSTEM-LOGS.
	Logging bool
	// TimelyDeletion enables strict active expiry (Redis retrofit) or
	// the 1-second TTL daemon (PostgreSQL retrofit).
	TimelyDeletion bool
	// AccessControl enforces Figure 1's matrix in the client stub.
	AccessControl bool
	// MetadataIndexing builds secondary indexes on all metadata fields
	// (PostgreSQL only; "Redis lacks the support for multiple secondary
	// indices", §6.2).
	MetadataIndexing bool
	// Strict applies the paper's strict interpretation to records
	// (mandatory TTL and owner).
	Strict bool
}

// Full returns the fully-compliant configuration the paper evaluates in
// §6.2 (for PostgreSQL, §6.2 additionally measures MetadataIndexing on
// and off).
func Full() Compliance {
	return Compliance{
		EncryptAtRest:    true,
		EncryptInTransit: true,
		Logging:          true,
		TimelyDeletion:   true,
		AccessControl:    true,
		Strict:           true,
	}
}

// None returns the no-security baseline of §6.1.
func None() Compliance { return Compliance{} }

// String summarizes the enabled features.
func (c Compliance) String() string {
	out := ""
	add := func(on bool, tag string) {
		if on {
			if out != "" {
				out += "+"
			}
			out += tag
		}
	}
	add(c.EncryptAtRest, "rest")
	add(c.EncryptInTransit, "transit")
	add(c.Logging, "log")
	add(c.TimelyDeletion, "ttl")
	add(c.AccessControl, "acl")
	add(c.MetadataIndexing, "idx")
	add(c.Strict, "strict")
	if out == "" {
		return "none"
	}
	return out
}

// filterACL narrows recs to those actor a may apply verb to, when access
// control is on. It never fails: denied records are simply excluded,
// which is the correct response shape for selector queries (you receive
// the records you are entitled to).
func filterACL(enabled bool, a acl.Actor, verb acl.Verb, recs []gdpr.Record, delta *gdpr.Delta) []gdpr.Record {
	if !enabled {
		return recs
	}
	allowed, _ := acl.Filter(a, verb, recs, delta)
	return allowed
}

// checkSystemACL verifies record-independent rights when enabled.
func checkSystemACL(enabled bool, a acl.Actor, verb acl.Verb) error {
	if !enabled {
		return nil
	}
	return acl.CheckSystem(a, verb)
}

// redactData strips personal data from records (metadata-only reads).
func redactData(recs []gdpr.Record) []gdpr.Record {
	out := make([]gdpr.Record, len(recs))
	for i, r := range recs {
		c := r.Clone()
		c.Data = ""
		out[i] = c
	}
	return out
}

// auditOp submits an operation entry when logging is enabled. Under the
// batched/async audit pipelines this stages the entry and returns
// without encoding or touching disk in the caller — the hot path no
// longer serializes every engine, shard and connection behind one
// encode+write lock. Ordering is still exact: the entry's sequence and
// timestamp are assigned here, and GET-SYSTEM-LOGS barriers on the
// pipeline before answering.
func auditOp(log *audit.Log, a acl.Actor, op, target string, ok bool, note string) {
	if log == nil {
		return
	}
	log.Submit(audit.Entry{Actor: a.String(), Op: op, Target: target, OK: ok, Note: note})
}

func countNote(n int) string { return fmt.Sprintf("n=%d", n) }

// errSkipUpdate is the sentinel a read-modify-write closure returns when
// the record no longer matches the selector or the actor's rights at
// apply time (a concurrent mutation won the race). The operation simply
// skips the record.
var errSkipUpdate = errors.New("core: record skipped")

package core

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/acl"
	"repro/internal/gdpr"
)

// WorkloadName names one of the four GDPR-role workloads.
type WorkloadName string

// The Table 2a workloads.
const (
	Controller WorkloadName = "controller"
	Customer   WorkloadName = "customer"
	Processor  WorkloadName = "processor"
	Regulator  WorkloadName = "regulator"
)

// WorkloadNames returns the four workloads in the paper's order.
func WorkloadNames() []WorkloadName {
	return []WorkloadName{Controller, Customer, Processor, Regulator}
}

// QueryType names a GDPR query (§3.3).
type QueryType string

// The GDPR query set.
const (
	QCreateRecord      QueryType = "create-record"
	QDeleteByKey       QueryType = "delete-record-by-key"
	QDeleteByPurpose   QueryType = "delete-record-by-pur"
	QDeleteByTTL       QueryType = "delete-record-by-ttl"
	QDeleteByUser      QueryType = "delete-record-by-usr"
	QReadDataByKey     QueryType = "read-data-by-key"
	QReadDataByPurpose QueryType = "read-data-by-pur"
	QReadDataByUser    QueryType = "read-data-by-usr"
	QReadDataByObj     QueryType = "read-data-by-obj"
	QReadDataByDec     QueryType = "read-data-by-dec"
	QReadMetaByKey     QueryType = "read-metadata-by-key"
	QReadMetaByUser    QueryType = "read-metadata-by-usr"
	QReadMetaByShare   QueryType = "read-metadata-by-shr"
	QUpdateDataByKey   QueryType = "update-data-by-key"
	QUpdateMetaByKey   QueryType = "update-metadata-by-key"
	QUpdateMetaByPur   QueryType = "update-metadata-by-pur"
	QUpdateMetaByUser  QueryType = "update-metadata-by-usr"
	QUpdateMetaByShare QueryType = "update-metadata-by-shr"
	QGetSystemLogs     QueryType = "get-system-logs"
	QGetSystemFeatures QueryType = "get-system-features"
	QVerifyDeletion    QueryType = "verify-deletion"
)

// Dist selects the record/user selection distribution.
type Dist int

// Distributions of Table 2a.
const (
	DistUniform Dist = iota
	DistZipf
)

func (d Dist) String() string {
	if d == DistZipf {
		return "zipf"
	}
	return "uniform"
}

// Mix is one workload's query composition.
type Mix struct {
	Name    WorkloadName
	Purpose string
	Queries []QueryType
	Weights []float64
	Dist    Dist
	// SecondaryDist applies to the minority query class when it differs
	// (processor metadata reads are uniform while key reads are zipf).
	SecondaryDist Dist
}

// DefaultWorkloads returns Table 2a exactly: query families, default
// weights and default distributions.
func DefaultWorkloads() map[WorkloadName]Mix {
	return map[WorkloadName]Mix{
		Controller: {
			Name:    Controller,
			Purpose: "Management and administration of personal data",
			Queries: []QueryType{
				QCreateRecord,
				QDeleteByPurpose, QDeleteByTTL, QDeleteByUser,
				QUpdateMetaByPur, QUpdateMetaByUser, QUpdateMetaByShare,
			},
			Weights: []float64{25, 25.0 / 3, 25.0 / 3, 25.0 / 3, 50.0 / 3, 50.0 / 3, 50.0 / 3},
			Dist:    DistUniform,
		},
		Customer: {
			Name:    Customer,
			Purpose: "Exercising GDPR rights",
			Queries: []QueryType{
				QReadDataByUser, QReadMetaByKey, QUpdateDataByKey,
				QUpdateMetaByKey, QDeleteByKey,
			},
			Weights:       []float64{20, 20, 20, 20, 20},
			Dist:          DistZipf,
			SecondaryDist: DistZipf,
		},
		Processor: {
			Name:    Processor,
			Purpose: "Processing of personal data",
			Queries: []QueryType{
				QReadDataByKey,
				QReadDataByPurpose, QReadDataByObj, QReadDataByDec,
			},
			Weights:       []float64{80, 20.0 / 3, 20.0 / 3, 20.0 / 3},
			Dist:          DistZipf,
			SecondaryDist: DistUniform,
		},
		Regulator: {
			Name:          Regulator,
			Purpose:       "Investigation and enforcement of GDPR laws",
			Queries:       []QueryType{QReadMetaByUser, QGetSystemLogs, QVerifyDeletion},
			Weights:       []float64{46, 31, 23},
			Dist:          DistZipf,
			SecondaryDist: DistZipf,
		},
	}
}

// Config parameterizes a GDPRbench run (§6.2 uses 100K records, 10K
// operations per workload, 8 threads).
type Config struct {
	// Records is the number of personal-data records the load phase
	// creates.
	Records int
	// Operations is the number of queries each workload run executes.
	Operations int
	// Threads is the number of client workers (paper: 8 for GDPRbench).
	Threads int
	// DataSize is the personal-data payload size in bytes (Table 3's
	// default configuration uses 10).
	DataSize int
	// RecordsPerUser controls how many records each data subject owns.
	RecordsPerUser int
	// Purposes, Sources, Shares, Decisions size the attribute-value pools.
	Purposes, Sources, Shares, Decisions int
	// ObjectionFraction of records carry an objection to one purpose.
	ObjectionFraction float64
	// DecisionFraction of records are marked as used in automated
	// decisions.
	DecisionFraction float64
	// ShareFraction of records are shared with a third party.
	ShareFraction float64
	// DefaultTTL is the expiry horizon records get at load time
	// (G 13(2a) requires one).
	DefaultTTL time.Duration
	// ShortTTLFraction of records expire after ShortTTL instead, giving
	// DELETE-BY-TTL purges work to do.
	ShortTTLFraction float64
	// ShortTTL is the near-term expiry horizon.
	ShortTTL time.Duration
	// LogWindow is the time range GET-SYSTEM-LOGS queries cover.
	LogWindow time.Duration
	// Seed drives all randomness.
	Seed int64
}

// WithDefaults fills zero fields with the benchmark defaults.
func (c Config) WithDefaults() Config {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.Records, 100_000)
	def(&c.Operations, 10_000)
	def(&c.Threads, 8)
	def(&c.DataSize, 10)
	def(&c.RecordsPerUser, 10)
	// Attribute-value pools scale with the dataset so attribute-targeted
	// deletes stay near the steady state §4.2.2 requires (each purpose or
	// share maps to a handful of records, like each user does).
	def(&c.Purposes, maxOf(16, c.Records/15))
	def(&c.Sources, 4)
	def(&c.Shares, maxOf(8, c.Records/40))
	def(&c.Decisions, maxOf(4, c.Records/40))
	if c.ObjectionFraction == 0 {
		c.ObjectionFraction = 0.10
	}
	if c.DecisionFraction == 0 {
		c.DecisionFraction = 0.10
	}
	if c.ShareFraction == 0 {
		c.ShareFraction = 0.20
	}
	if c.DefaultTTL == 0 {
		c.DefaultTTL = 365 * 24 * time.Hour
	}
	if c.ShortTTLFraction == 0 {
		c.ShortTTLFraction = 0.05
	}
	if c.ShortTTL == 0 {
		c.ShortTTL = 5 * time.Minute
	}
	if c.LogWindow == 0 {
		c.LogWindow = time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Dataset is the deterministic description of the loaded records: record
// i's full contents derive from (Seed, i), so oracles never need to store
// them.
type Dataset struct {
	Cfg      Config
	LoadTime time.Time
	Users    int
}

// NewDataset derives the dataset description for cfg, loading at loadTime.
func NewDataset(cfg Config, loadTime time.Time) *Dataset {
	cfg = cfg.WithDefaults()
	users := cfg.Records / cfg.RecordsPerUser
	if users == 0 {
		users = 1
	}
	return &Dataset{Cfg: cfg, LoadTime: loadTime, Users: users}
}

// Attribute values are deliberately compact, like the paper's example
// record (PUR=ads,2fa;USR=neo;SRC=first-party): Table 3's space-overhead
// metric assumes metadata values of a few bytes each.

// KeyAt returns record i's key.
func (d *Dataset) KeyAt(i int) string { return fmt.Sprintf("r%07d", i) }

// UserAt returns the data subject owning record i.
func (d *Dataset) UserAt(i int) string { return d.UserName(i % d.Users) }

// UserName renders user u's identity.
func (d *Dataset) UserName(u int) string { return fmt.Sprintf("u%05d", u%d.Users) }

// PurposeName renders purpose p.
func (d *Dataset) PurposeName(p int) string { return fmt.Sprintf("pur%02d", p%d.Cfg.Purposes) }

// SourceName renders source s.
func (d *Dataset) SourceName(s int) string { return fmt.Sprintf("src%d", s%d.Cfg.Sources) }

// ShareName renders third party s.
func (d *Dataset) ShareName(s int) string { return fmt.Sprintf("shr%02d", s%d.Cfg.Shares) }

// DecisionName renders automated decision d.
func (d *Dataset) DecisionName(n int) string { return fmt.Sprintf("dec%d", n%d.Cfg.Decisions) }

// recRand returns record i's private random stream.
func (d *Dataset) recRand(i int) *rand.Rand {
	const mix = -0x61C8864680B583EB // golden-ratio multiplier as signed 64-bit
	return rand.New(rand.NewSource(d.Cfg.Seed ^ (mix * int64(i+1))))
}

// RecordAt deterministically regenerates record i exactly as the load
// phase created it.
func (d *Dataset) RecordAt(i int) gdpr.Record {
	r := d.recRand(i)
	cfg := d.Cfg
	data := make([]byte, cfg.DataSize)
	const digits = "0123456789"
	for j := range data {
		data[j] = digits[r.Intn(10)]
	}
	meta := gdpr.Metadata{
		User:   d.UserAt(i),
		Source: d.SourceName(r.Intn(cfg.Sources)),
	}
	// One or two purposes.
	p1 := r.Intn(cfg.Purposes)
	meta.Purposes = []string{d.PurposeName(p1)}
	if r.Float64() < 0.5 {
		p2 := (p1 + 1 + r.Intn(cfg.Purposes-1)) % cfg.Purposes
		meta.Purposes = append(meta.Purposes, d.PurposeName(p2))
	}
	if r.Float64() < cfg.ObjectionFraction {
		meta.Objections = []string{meta.Purposes[0]}
	}
	if r.Float64() < cfg.DecisionFraction {
		meta.Decisions = []string{d.DecisionName(r.Intn(cfg.Decisions))}
	}
	if r.Float64() < cfg.ShareFraction {
		meta.SharedWith = []string{d.ShareName(r.Intn(cfg.Shares))}
	}
	if r.Float64() < cfg.ShortTTLFraction {
		meta.Expiry = d.LoadTime.Add(cfg.ShortTTL)
	} else {
		meta.Expiry = d.LoadTime.Add(cfg.DefaultTTL)
	}
	return gdpr.Record{Key: d.KeyAt(i), Data: string(data), Meta: meta}
}

// Actors used by the workloads.

// ControllerActor is the data controller.
func ControllerActor() acl.Actor { return acl.Actor{Role: acl.Controller, ID: "controller-1"} }

// CustomerActor is the data subject who owns user u's records.
func (d *Dataset) CustomerActor(u int) acl.Actor {
	return acl.Actor{Role: acl.Customer, ID: d.UserName(u)}
}

// ProcessorActor processes records under the given purpose.
func (d *Dataset) ProcessorActor(p int) acl.Actor {
	return acl.Actor{Role: acl.Processor, ID: "processor-1", Purpose: d.PurposeName(p)}
}

// RegulatorActor is the supervisory authority.
func RegulatorActor() acl.Actor { return acl.Actor{Role: acl.Regulator, ID: "dpa-1"} }

// OwnerOfKey returns the user index owning record key index i.
func (d *Dataset) OwnerOfKey(i int) int { return i % d.Users }

// describeMix renders a mix for reports.
func (m Mix) String() string {
	parts := make([]string, len(m.Queries))
	for i, q := range m.Queries {
		parts[i] = fmt.Sprintf("%s:%.1f%%", q, m.Weights[i])
	}
	return fmt.Sprintf("%s [%s] (%s)", m.Name, strings.Join(parts, " "), m.Dist)
}

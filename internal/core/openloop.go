package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/dist"
	"repro/internal/stats"
)

// RunOpenLoop executes one Table 2a workload open-loop: operations
// arrive on a fixed schedule at rate ops/sec instead of as fast as the
// previous response returns. See RunMixOpenLoop for the measurement
// semantics.
func RunOpenLoop(db DB, ds *Dataset, name WorkloadName, rate float64, clk clock.Clock) (*stats.Run, error) {
	mix, ok := DefaultWorkloads()[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown workload %q", name)
	}
	return RunMixOpenLoop(db, ds, mix, rate, clk)
}

// RunMixOpenLoop executes a workload mix at a fixed arrival rate
// (open-loop load generation). Operation i is scheduled to arrive at
// start + i/rate regardless of how earlier operations fared, and its
// latency is measured from that scheduled arrival — so time an
// operation spends queued behind a stalled worker counts against it.
// This is the coordinated-omission-free measurement: a closed loop
// (RunMix) silently stops issuing requests while the system stalls,
// under-reporting exactly the tail the stall caused.
//
// Workers pull the next scheduled index from a shared counter and sleep
// until its arrival time, so a slow operation on one worker never
// delays another worker's schedule. If every worker is busy when an
// arrival comes due, the arrival waits — and its wait is measured.
func RunMixOpenLoop(db DB, ds *Dataset, mix Mix, rate float64, clk clock.Clock) (*stats.Run, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("core: open-loop arrival rate must be > 0, got %g", rate)
	}
	if len(mix.Queries) == 0 || len(mix.Queries) != len(mix.Weights) {
		return nil, fmt.Errorf("core: mix needs equal, non-empty queries/weights")
	}
	if clk == nil {
		clk = clock.NewReal()
	}
	cfg := ds.Cfg
	run := stats.NewRun()
	var newKeySeq atomic.Int64
	var deletedMu sync.Mutex
	deletedSample := make([]string, 0, 256)
	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup

	interval := time.Duration(float64(time.Second) / rate)
	start := time.Now()
	run.Start(start)
	for t := 0; t < cfg.Threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.Seed + 1000 + int64(t)))
			oc := &opContext{
				ds:            ds,
				r:             r,
				keys:          newGenerator(r, mix.Dist, int64(cfg.Records)),
				secondary:     newGenerator(r, mix.SecondaryDist, int64(maxOf(cfg.Purposes, cfg.Shares, cfg.Decisions, cfg.Sources))),
				clk:           clk,
				newKeySeq:     &newKeySeq,
				deletedMu:     &deletedMu,
				deletedSample: &deletedSample,
			}
			chooser := dist.NewWeighted(r, mix.Queries, mix.Weights)
			for {
				i := next.Add(1) - 1
				if i >= int64(cfg.Operations) {
					return
				}
				sched := start.Add(time.Duration(i) * interval)
				if d := time.Until(sched); d > 0 {
					time.Sleep(d)
				}
				q := chooser.Next()
				op := run.Op(string(q))
				// Latency from the scheduled arrival, not from when a
				// worker got around to it: queueing delay is part of what
				// the client experienced.
				if err := execute(db, q, oc); err != nil {
					op.RecordErr(time.Since(sched))
					firstErr.CompareAndSwap(nil, err)
					return
				}
				op.RecordOK(time.Since(sched))
			}
		}(t)
	}
	wg.Wait()
	run.Finish(time.Now())
	if err, _ := firstErr.Load().(error); err != nil {
		return run, err
	}
	return run, nil
}

package core

import (
	"io"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/gdpr"
)

// Streaming equivalence at the middleware layer: for every engine
// profile, draining ReadDataStream / ReadMetadataStream must reproduce
// the materialized ReadData / ReadMetadata result exactly — same
// records, same order, same redaction — at any chunk size, including
// chunk sizes that force boundaries inside every multi-record result.

// streamProfile opens one engine profile for the equivalence matrix.
type streamProfile struct {
	name string
	open func(t *testing.T, sim *clock.Sim) DB
}

func streamProfiles() []streamProfile {
	comp := Compliance{Logging: true, AccessControl: true, Strict: true}
	idx := comp
	idx.MetadataIndexing = true
	openRedis := func(c Compliance, stripes int) func(t *testing.T, sim *clock.Sim) DB {
		return func(t *testing.T, sim *clock.Sim) DB {
			t.Helper()
			db, err := OpenRedis(RedisConfig{
				Dir: t.TempDir(), Compliance: c, Clock: sim, DisableBackgroundExpiry: true,
				KVStripes: stripes,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { db.Close() })
			return db
		}
	}
	openPG := func(c Compliance) func(t *testing.T, sim *clock.Sim) DB {
		return func(t *testing.T, sim *clock.Sim) DB {
			t.Helper()
			db, err := OpenPostgres(PostgresConfig{
				Dir: t.TempDir(), Compliance: c, Clock: sim, DisableTTLDaemon: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { db.Close() })
			return db
		}
	}
	return []streamProfile{
		{"redis-scan", openRedis(comp, 0)},
		{"redis-indexed", openRedis(idx, 0)},
		{"redis-striped-indexed", openRedis(idx, 4)},
		{"postgres", openPG(comp)},
		{"postgres-indexed", openPG(idx)},
	}
}

// streamSelectors covers every §3.3 selector family the read path
// serves: point key, each metadata attribute, negation, and a selector
// matching nothing.
func streamSelectors(ds *Dataset) []gdpr.Selector {
	return []gdpr.Selector{
		gdpr.ByKey(ds.KeyAt(3)),
		gdpr.ByUser(ds.UserName(1)),
		gdpr.ByPurpose(ds.PurposeName(2)),
		gdpr.ByShare(ds.ShareName(1)),
		gdpr.ByDecision(ds.DecisionName(1)),
		gdpr.ByObjection(ds.PurposeName(0)),
		gdpr.ByNotObjecting(ds.PurposeName(0)),
		gdpr.ByUser("no-such-user"),
	}
}

// assertSameRecords requires got to equal want exactly, in order.
func assertSameRecords(t *testing.T, ctx string, want, got []gdpr.Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d records streamed, %d materialized", ctx, len(got), len(want))
	}
	for i := range want {
		if gdpr.Encode(got[i]) != gdpr.Encode(want[i]) {
			t.Fatalf("%s: record %d diverged:\n  materialized: %+v\n  streamed:     %+v",
				ctx, i, want[i], got[i])
		}
	}
}

func TestStreamDrainMatchesMaterializedSelect(t *testing.T) {
	cfg := Config{Records: 300, Operations: 10, Threads: 2, Seed: 11}.WithDefaults()
	for _, p := range streamProfiles() {
		p := p
		t.Run(p.name, func(t *testing.T) {
			sim := clock.NewSim(time.Unix(1_500_000_000, 0))
			db := p.open(t, sim)
			ds, _, err := Load(db, cfg, sim)
			if err != nil {
				t.Fatal(err)
			}
			sr, ok := db.(StreamReader)
			if !ok {
				t.Fatalf("%T does not implement StreamReader", db)
			}
			reg := RegulatorActor()
			for _, sel := range streamSelectors(ds) {
				for _, chunk := range []int{1, 3, 0} {
					want, err := db.ReadMetadata(reg, sel)
					if err != nil {
						t.Fatal(err)
					}
					cur, err := sr.ReadMetadataStream(reg, sel, chunk)
					if err != nil {
						t.Fatal(err)
					}
					got, err := Drain(cur)
					if err != nil {
						t.Fatal(err)
					}
					assertSameRecords(t, sel.String(), want, got)
					for _, rec := range got {
						if rec.Data != "" {
							t.Fatalf("metadata stream leaked data for %q", rec.Key)
						}
					}
				}
			}
			// Data streams under a customer actor: per-chunk ACL filtering
			// must equal the materialized filter.
			cust := ds.CustomerActor(1)
			for _, chunk := range []int{1, 0} {
				want, err := db.ReadData(cust, gdpr.ByUser(ds.UserName(1)))
				if err != nil {
					t.Fatal(err)
				}
				cur, err := sr.ReadDataStream(cust, gdpr.ByUser(ds.UserName(1)), chunk)
				if err != nil {
					t.Fatal(err)
				}
				got, err := Drain(cur)
				if err != nil {
					t.Fatal(err)
				}
				assertSameRecords(t, "customer data stream", want, got)
				if len(got) == 0 {
					t.Fatal("customer stream empty — test is vacuous")
				}
			}
		})
	}
}

// TestStreamCursorSemantics pins the RecordCursor contract: chunks
// respect the requested bound, io.EOF is sticky, Close is idempotent
// and safe mid-stream, and an empty result streams as immediate EOF.
func TestStreamCursorSemantics(t *testing.T) {
	cfg := Config{Records: 120, Seed: 5}.WithDefaults()
	sim := clock.NewSim(time.Unix(1_500_000_000, 0))
	db := streamProfiles()[2].open(t, sim) // redis-striped-indexed
	ds, _, err := Load(db, cfg, sim)
	if err != nil {
		t.Fatal(err)
	}
	sr := db.(StreamReader)
	reg := RegulatorActor()
	sel := gdpr.ByUser(ds.UserName(0))

	const chunk = 4
	cur, err := sr.ReadMetadataStream(reg, sel, chunk)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for {
		recs, err := cur.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 || len(recs) > chunk {
			t.Fatalf("chunk of %d records outside (0, %d]", len(recs), chunk)
		}
		total += len(recs)
	}
	if total == 0 {
		t.Fatal("stream yielded nothing")
	}
	// EOF is sticky; Close after EOF is fine, twice.
	if _, err := cur.Next(); err != io.EOF {
		t.Fatalf("Next after EOF = %v, want io.EOF", err)
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}

	// Close mid-stream releases the cursor; the engine stays usable.
	cur2, err := sr.ReadMetadataStream(reg, sel, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur2.Next(); err != nil {
		t.Fatal(err)
	}
	if err := cur2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ReadMetadata(reg, sel); err != nil {
		t.Fatalf("engine broken after mid-stream Close: %v", err)
	}

	// Empty result: immediate EOF.
	cur3, err := sr.ReadMetadataStream(reg, gdpr.ByUser("no-such-user"), chunk)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur3.Next(); err != io.EOF {
		t.Fatalf("empty stream Next = %v, want io.EOF", err)
	}
	cur3.Close()
}

// TestStreamAuditsOnce: one completed stream writes one audit entry
// (READ-DATA-STREAM / READ-METADATA-STREAM), at completion — not one
// per chunk — with the streamed record count, mirroring the
// materialized read's accounting.
func TestStreamAuditsOnce(t *testing.T) {
	cfg := Config{Records: 60, Seed: 3}.WithDefaults()
	sim := clock.NewSim(time.Unix(1_500_000_000, 0))
	db := streamProfiles()[1].open(t, sim) // redis-indexed, logging on
	ds, _, err := Load(db, cfg, sim)
	if err != nil {
		t.Fatal(err)
	}
	sr := db.(StreamReader)
	reg := RegulatorActor()

	before, err := db.GetSystemLogs(reg, sim.Now().Add(-time.Hour), sim.Now().Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := sr.ReadMetadataStream(reg, gdpr.ByUser(ds.UserName(0)), 2)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := Drain(cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 3 {
		t.Fatalf("need a multi-chunk stream, got %d records", len(recs))
	}
	after, err := db.GetSystemLogs(reg, sim.Now().Add(-time.Hour), sim.Now().Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	var streamEntries int
	for _, e := range after[len(before):] {
		if e.Op == "READ-METADATA-STREAM" {
			streamEntries++
		}
	}
	if streamEntries != 1 {
		t.Fatalf("completed stream wrote %d READ-METADATA-STREAM audit entries, want exactly 1", streamEntries)
	}
}

// Package securefs is the data-at-rest encryption substrate. It plays the
// role LUKS plays in the paper (§5: "For data at rest, we use the Linux
// Unified Key Setup"): everything the engines persist (AOF, WAL, audit
// logs) can be routed through an encrypting, framed, append-only file.
//
// Framing: each Append produces one frame
//
//	[4-byte big-endian payload length][payload]
//
// where payload is either the plaintext record (encryption off) or
// nonce||AES-256-GCM(plaintext) (encryption on). GCM authenticates every
// frame, so torn or tampered tails are detected on replay — replay stops at
// the first bad frame, mirroring how Redis handles truncated AOFs.
package securefs

import (
	"bufio"
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// ErrCorruptFrame is returned by iterators when a frame fails length or
// authentication checks.
var ErrCorruptFrame = errors.New("securefs: corrupt frame")

// maxFrame bounds a single frame; protects replay from absurd lengths
// produced by corruption.
const maxFrame = 64 << 20

// Key derives a 32-byte AES-256 key from a passphrase. The paper does not
// prescribe a KDF; a hash suffices since we model crypto *cost*, not key
// management.
func Key(passphrase string) []byte {
	sum := sha256.Sum256([]byte("gdprbench/securefs:" + passphrase))
	return sum[:]
}

// File is an append-only framed file with optional authenticated
// encryption. It is safe for concurrent use.
type File struct {
	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	aead    cipher.AEAD
	path    string
	written int64 // plaintext payload bytes appended (for space accounting)
	frames  int64
	closed  bool
}

// Options configures Create/Open.
type Options struct {
	// Key enables AES-256-GCM when non-nil; must be 16, 24 or 32 bytes.
	Key []byte
	// BufferSize is the userspace write-buffer size; frames reach the OS
	// whenever it fills (plus on Flush/Sync). Smaller buffers model
	// tighter logging pipelines (e.g. Redis flushes its AOF buffer every
	// event-loop iteration). 0 means 64 KiB.
	BufferSize int
}

func newAEAD(key []byte) (cipher.AEAD, error) {
	if key == nil {
		return nil, nil
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("securefs: %w", err)
	}
	return cipher.NewGCM(block)
}

// Create opens path for appending, creating or truncating it.
func Create(path string, opts Options) (*File, error) {
	return open(path, opts, os.O_CREATE|os.O_TRUNC|os.O_WRONLY)
}

// Append opens path for appending, creating it if absent and preserving
// existing frames.
func Append(path string, opts Options) (*File, error) {
	return open(path, opts, os.O_CREATE|os.O_APPEND|os.O_WRONLY)
}

func open(path string, opts Options, flag int) (*File, error) {
	aead, err := newAEAD(opts.Key)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, flag, 0o600)
	if err != nil {
		return nil, fmt.Errorf("securefs: open %s: %w", path, err)
	}
	bufSize := opts.BufferSize
	if bufSize <= 0 {
		bufSize = 1 << 16
	}
	return &File{f: f, w: bufio.NewWriterSize(f, bufSize), aead: aead, path: path}, nil
}

// AppendFrame writes one frame containing payload. The write is buffered;
// call Flush or Sync to push it down.
func (s *File) AppendFrame(payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("securefs: append to closed file %s", s.path)
	}
	body := payload
	if s.aead != nil {
		nonce := make([]byte, s.aead.NonceSize())
		if _, err := rand.Read(nonce); err != nil {
			return fmt.Errorf("securefs: nonce: %w", err)
		}
		body = s.aead.Seal(nonce, nonce, payload, nil)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := s.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("securefs: write %s: %w", s.path, err)
	}
	if _, err := s.w.Write(body); err != nil {
		return fmt.Errorf("securefs: write %s: %w", s.path, err)
	}
	s.written += int64(len(payload))
	s.frames++
	return nil
}

// Flush pushes buffered frames to the OS.
func (s *File) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Flush()
}

// Sync flushes and fsyncs the file. The userspace buffer is flushed
// under the file lock, but the fsync itself runs outside it: fsync on a
// file descriptor is safe concurrently with writes, and holding the lock
// across it would stall every AppendFrame for the duration of the flush
// — exactly the window the WAL's group commit uses to build its next
// batch. Frames appended after the flush may or may not reach disk with
// this sync; callers track their own durability watermark.
func (s *File) Sync() error {
	s.mu.Lock()
	err := s.w.Flush()
	f := s.f
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return f.Sync()
}

// PlaintextBytes reports total plaintext payload bytes appended in this
// session; used for space-overhead accounting.
func (s *File) PlaintextBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.written
}

// Frames reports the number of frames appended in this session.
func (s *File) Frames() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.frames
}

// Size reports the current on-disk size in bytes (after Flush).
func (s *File) Size() (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil {
		return 0, err
	}
	st, err := s.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Path returns the file's path.
func (s *File) Path() string { return s.path }

// Close flushes and closes the file. Close is idempotent.
func (s *File) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	ferr := s.w.Flush()
	cerr := s.f.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

// Replay reads every frame of the file at path, invoking fn with each
// decrypted payload in order. It stops with ErrCorruptFrame (wrapped with
// the frame index) at the first undecodable frame; frames before it are
// still delivered, mirroring truncated-AOF recovery.
func Replay(path string, opts Options, fn func(payload []byte) error) error {
	aead, err := newAEAD(opts.Key)
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("securefs: open %s: %w", path, err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	var hdr [4]byte
	for frame := int64(0); ; frame++ {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return fmt.Errorf("frame %d: truncated header: %w", frame, ErrCorruptFrame)
			}
			return fmt.Errorf("securefs: read %s: %w", path, err)
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > maxFrame {
			return fmt.Errorf("frame %d: length %d exceeds limit: %w", frame, n, ErrCorruptFrame)
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(r, body); err != nil {
			return fmt.Errorf("frame %d: truncated body: %w", frame, ErrCorruptFrame)
		}
		payload := body
		if aead != nil {
			ns := aead.NonceSize()
			if len(body) < ns {
				return fmt.Errorf("frame %d: short nonce: %w", frame, ErrCorruptFrame)
			}
			payload, err = aead.Open(nil, body[:ns], body[ns:], nil)
			if err != nil {
				return fmt.Errorf("frame %d: auth failure: %w", frame, ErrCorruptFrame)
			}
		}
		if err := fn(payload); err != nil {
			return err
		}
	}
}

// CountFrames returns the number of intact frames in the file at path.
func CountFrames(path string, opts Options) (int64, error) {
	var n int64
	err := Replay(path, opts, func([]byte) error { n++; return nil })
	return n, err
}

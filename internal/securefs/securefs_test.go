package securefs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func tempPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "frames.log")
}

func writeFrames(t *testing.T, path string, opts Options, frames ...[]byte) {
	t.Helper()
	f, err := Create(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range frames {
		if err := f.AppendFrame(fr); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func readAll(t *testing.T, path string, opts Options) ([][]byte, error) {
	t.Helper()
	var out [][]byte
	err := Replay(path, opts, func(p []byte) error {
		out = append(out, append([]byte(nil), p...))
		return nil
	})
	return out, err
}

func TestPlainRoundTrip(t *testing.T) {
	p := tempPath(t)
	want := [][]byte{[]byte("one"), []byte("two"), {}, []byte("four")}
	writeFrames(t, p, Options{}, want...)
	got, err := readAll(t, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("frames = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("frame %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestEncryptedRoundTrip(t *testing.T) {
	p := tempPath(t)
	opts := Options{Key: Key("secret")}
	want := [][]byte{[]byte("personal-data"), []byte("more")}
	writeFrames(t, p, opts, want...)
	got, err := readAll(t, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !bytes.Equal(got[0], want[0]) || !bytes.Equal(got[1], want[1]) {
		t.Fatalf("roundtrip mismatch: %q", got)
	}
	// Ciphertext must not contain the plaintext.
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("personal-data")) {
		t.Fatal("plaintext leaked to disk")
	}
}

func TestWrongKeyFailsAuth(t *testing.T) {
	p := tempPath(t)
	writeFrames(t, p, Options{Key: Key("right")}, []byte("x"))
	_, err := readAll(t, p, Options{Key: Key("wrong")})
	if !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("err = %v, want ErrCorruptFrame", err)
	}
}

func TestKeyDerivationStableAndDistinct(t *testing.T) {
	if !bytes.Equal(Key("a"), Key("a")) {
		t.Fatal("Key not deterministic")
	}
	if bytes.Equal(Key("a"), Key("b")) {
		t.Fatal("distinct passphrases produced same key")
	}
	if len(Key("a")) != 32 {
		t.Fatalf("key length = %d", len(Key("a")))
	}
}

func TestTamperedFrameDetected(t *testing.T) {
	p := tempPath(t)
	opts := Options{Key: Key("k")}
	writeFrames(t, p, opts, []byte("aaaa"), []byte("bbbb"))
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff // corrupt last ciphertext byte
	if err := os.WriteFile(p, raw, 0o600); err != nil {
		t.Fatal(err)
	}
	got, err := readAll(t, p, opts)
	if !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("err = %v, want ErrCorruptFrame", err)
	}
	if len(got) != 1 || !bytes.Equal(got[0], []byte("aaaa")) {
		t.Fatalf("frames before corruption should be delivered, got %q", got)
	}
}

func TestTruncatedTailStopsReplay(t *testing.T) {
	p := tempPath(t)
	writeFrames(t, p, Options{}, []byte("complete"), []byte("will-be-cut"))
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	// Cut into the middle of the second frame's body.
	if err := os.WriteFile(p, raw[:len(raw)-3], 0o600); err != nil {
		t.Fatal(err)
	}
	got, err := readAll(t, p, Options{})
	if !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("err = %v, want ErrCorruptFrame", err)
	}
	if len(got) != 1 {
		t.Fatalf("intact frames = %d, want 1", len(got))
	}
}

func TestTruncatedHeaderStopsReplay(t *testing.T) {
	p := tempPath(t)
	writeFrames(t, p, Options{}, []byte("one"))
	raw, _ := os.ReadFile(p)
	raw = append(raw, 0x00, 0x01) // partial header
	if err := os.WriteFile(p, raw, 0o600); err != nil {
		t.Fatal(err)
	}
	got, err := readAll(t, p, Options{})
	if !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("err = %v, want ErrCorruptFrame", err)
	}
	if len(got) != 1 {
		t.Fatalf("intact frames = %d, want 1", len(got))
	}
}

func TestAbsurdLengthRejected(t *testing.T) {
	p := tempPath(t)
	if err := os.WriteFile(p, []byte{0xff, 0xff, 0xff, 0xff}, 0o600); err != nil {
		t.Fatal(err)
	}
	_, err := readAll(t, p, Options{})
	if !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("err = %v, want ErrCorruptFrame", err)
	}
}

func TestAppendPreservesExistingFrames(t *testing.T) {
	p := tempPath(t)
	writeFrames(t, p, Options{}, []byte("first"))
	f, err := Append(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AppendFrame([]byte("second")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := readAll(t, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || string(got[0]) != "first" || string(got[1]) != "second" {
		t.Fatalf("frames = %q", got)
	}
}

func TestCreateTruncates(t *testing.T) {
	p := tempPath(t)
	writeFrames(t, p, Options{}, []byte("old"))
	writeFrames(t, p, Options{}, []byte("new"))
	got, err := readAll(t, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0]) != "new" {
		t.Fatalf("frames = %q", got)
	}
}

func TestAccounting(t *testing.T) {
	p := tempPath(t)
	f, err := Create(p, Options{Key: Key("k")})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	payload := []byte("0123456789")
	for i := 0; i < 7; i++ {
		if err := f.AppendFrame(payload); err != nil {
			t.Fatal(err)
		}
	}
	if f.PlaintextBytes() != 70 {
		t.Fatalf("plaintext bytes = %d", f.PlaintextBytes())
	}
	if f.Frames() != 7 {
		t.Fatalf("frames = %d", f.Frames())
	}
	sz, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	// Encrypted size must exceed plaintext (nonce + tag + headers).
	if sz <= 70 {
		t.Fatalf("on-disk size = %d, want > 70", sz)
	}
	if f.Path() != p {
		t.Fatalf("path = %q", f.Path())
	}
}

func TestCloseIdempotentAndAppendAfterCloseFails(t *testing.T) {
	p := tempPath(t)
	f, err := Create(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := f.AppendFrame([]byte("x")); err == nil {
		t.Fatal("append after close should fail")
	}
}

func TestSyncFlushes(t *testing.T) {
	p := tempPath(t)
	f, err := Create(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.AppendFrame([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	n, err := CountFrames(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("frames on disk after Sync = %d", n)
	}
}

func TestConcurrentAppends(t *testing.T) {
	p := tempPath(t)
	f, err := Create(p, Options{Key: Key("k")})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := f.AppendFrame([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	n, err := CountFrames(p, Options{Key: Key("k")})
	if err != nil {
		t.Fatal(err)
	}
	if n != workers*per {
		t.Fatalf("frames = %d, want %d", n, workers*per)
	}
}

func TestReplayCallbackErrorPropagates(t *testing.T) {
	p := tempPath(t)
	writeFrames(t, p, Options{}, []byte("a"), []byte("b"))
	sentinel := errors.New("stop")
	err := Replay(p, Options{}, func([]byte) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestReplayMissingFile(t *testing.T) {
	err := Replay(filepath.Join(t.TempDir(), "nope"), Options{}, func([]byte) error { return nil })
	if err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestBadKeyLength(t *testing.T) {
	_, err := Create(tempPath(t), Options{Key: []byte("short")})
	if err == nil {
		t.Fatal("expected error for bad key length")
	}
}

func TestRoundTripProperty(t *testing.T) {
	dir := t.TempDir()
	i := 0
	f := func(seed int64, encrypted bool) bool {
		i++
		r := rand.New(rand.NewSource(seed))
		path := filepath.Join(dir, fmt.Sprintf("p%d.log", i))
		opts := Options{}
		if encrypted {
			opts.Key = Key("prop")
		}
		n := r.Intn(20) + 1
		var want [][]byte
		for j := 0; j < n; j++ {
			b := make([]byte, r.Intn(256))
			r.Read(b)
			want = append(want, b)
		}
		fw, err := Create(path, opts)
		if err != nil {
			return false
		}
		for _, fr := range want {
			if err := fw.AppendFrame(fr); err != nil {
				return false
			}
		}
		if err := fw.Close(); err != nil {
			return false
		}
		var got [][]byte
		if err := Replay(path, opts, func(p []byte) error {
			got = append(got, append([]byte(nil), p...))
			return nil
		}); err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for j := range want {
			if !bytes.Equal(got[j], want[j]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAppendPlain(b *testing.B) {
	f, err := Create(filepath.Join(b.TempDir(), "bench.log"), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	payload := bytes.Repeat([]byte("x"), 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := f.AppendFrame(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendEncrypted(b *testing.B) {
	f, err := Create(filepath.Join(b.TempDir(), "bench.log"), Options{Key: Key("k")})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	payload := bytes.Repeat([]byte("x"), 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := f.AppendFrame(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSmallBufferFlushesAutomatically(t *testing.T) {
	p := tempPath(t)
	f, err := Create(p, Options{BufferSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Frames larger than the buffer must reach the OS without Flush.
	for i := 0; i < 10; i++ {
		if err := f.AppendFrame(bytes.Repeat([]byte("x"), 100)); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 500 {
		t.Fatalf("small-buffer file only has %d bytes on disk", len(raw))
	}
}

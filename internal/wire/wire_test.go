package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/acl"
	"repro/internal/audit"
	"repro/internal/gdpr"
	"repro/internal/obs"
)

// sampleMessages returns one representative instance of every frame
// type, covering zero times, negated selectors, empty and multi-valued
// lists.
func sampleMessages() []Message {
	controller := acl.Actor{Role: acl.Controller, ID: "controller-1"}
	processor := acl.Actor{Role: acl.Processor, ID: "processor-1", Purpose: "ads"}
	rec := gdpr.Record{
		Key:  "ph-1x4b",
		Data: "123-456-7890",
		Meta: gdpr.Metadata{
			Purposes:   []string{"ads", "2fa"},
			Expiry:     time.Unix(1_552_867_200, 0).UTC(),
			User:       "neo",
			SharedWith: []string{"courier-co"},
			Source:     "first-party",
		},
	}
	return []Message{
		&Hello{Version: ProtocolVersion, Role: acl.Customer, Token: "secret"},
		&CreateRecord{Actor: controller, Rec: gdpr.Encode(rec)},
		&CreateBatch{Actor: controller, Recs: []string{gdpr.Encode(rec), gdpr.Encode(rec)}},
		&ReadData{Actor: processor, Sel: gdpr.ByPurpose("ads")},
		&ReadData{Actor: processor, Sel: gdpr.ByNotObjecting("ads")},
		&ReadMetadata{Actor: acl.Actor{Role: acl.Regulator, ID: "dpa-1"}, Sel: gdpr.ByShare("courier-co")},
		&UpdateData{Actor: acl.Actor{Role: acl.Customer, ID: "neo"}, Key: "ph-1x4b", Data: "555-000-1111"},
		&UpdateMetadata{
			Actor: controller,
			Sel:   gdpr.ByUser("neo"),
			Delta: gdpr.Delta{Attr: gdpr.AttrSharing, Op: gdpr.DeltaAdd, Values: []string{"shr01"}},
		},
		&UpdateMetadata{
			Actor: controller,
			Sel:   gdpr.ByPurpose("ads"),
			Delta: gdpr.Delta{Attr: gdpr.AttrTTL, Op: gdpr.DeltaSet, Expiry: time.Unix(1_600_000_000, 0).UTC()},
		},
		&UpdateMetadata{
			Actor: controller,
			Sel:   gdpr.ByPurpose("ads"),
			// A "keep forever" horizon far outside UnixNano's int64 range:
			// the time codec must not wrap it into the past.
			Delta: gdpr.Delta{Attr: gdpr.AttrTTL, Op: gdpr.DeltaSet,
				Expiry: time.Date(9999, 1, 1, 0, 0, 0, 0, time.UTC)},
		},
		&DeleteRecord{Actor: controller, Sel: gdpr.ByExpiredAt(time.Unix(1_500_000_000, 0).UTC())},
		&GetLogs{Actor: acl.Actor{Role: acl.Regulator, ID: "dpa-1"},
			From: time.Unix(100, 0).UTC(), To: time.Unix(200, 0).UTC()},
		&GetLogs{Actor: acl.Actor{Role: acl.Regulator, ID: "dpa-1"}},
		&GetFeatures{Actor: acl.Actor{Role: acl.Regulator, ID: "dpa-1"}},
		&VerifyDeletion{Actor: acl.Actor{Role: acl.Regulator, ID: "dpa-1"}, Keys: []string{"r0000001", "never-existed"}},
		&VerifyDeletion{Actor: acl.Actor{Role: acl.Regulator, ID: "dpa-1"}},
		&SpaceUsage{},
		&Metrics{},
		&Metrics{Slowlog: true},
		&SelectStream{Actor: processor, Sel: gdpr.ByPurpose("ads"), Chunk: 256},
		&SelectStream{Actor: acl.Actor{Role: acl.Regulator, ID: "dpa-1"},
			Sel: gdpr.ByUser("neo"), Meta: true},
		&StreamNext{ID: 7},
		&StreamNext{},
		&StreamClose{ID: 7},
		&HelloOK{Version: ProtocolVersion},
		&HelloOK{Version: ProtocolVersion, AuditPolicy: "async"},
		&Ack{},
		&Records{Recs: []string{gdpr.Encode(rec)}},
		&Records{},
		&Count{N: -3},
		&Count{N: 42},
		&LogEntries{Entries: []audit.Entry{
			{Seq: 7, Time: time.Unix(123, 456).UTC(), Actor: "customer:neo", Op: "READ-DATA", Target: "KEY=ph-1x4b", OK: true, Note: "n=1"},
			{Seq: 8, Time: time.Unix(124, 0).UTC(), Actor: "controller:c1", Op: "DELETE-RECORD", Target: "USR=neo", OK: false, Note: "boom"},
		}},
		&LogEntries{},
		FeaturesFromMap(map[string]string{"compliance": "acl+strict", "aof": "everysec"}),
		&Features{},
		&Space{Personal: 1000, Total: 5200},
		MetricsFromSnapshot(obs.Snapshot{
			Counters: map[string]int64{
				`gdpr_ops_total{op="READ-DATA"}`:       420,
				`gdpr_op_errors_total{op="READ-DATA"}`: 3,
				"kvstore_read_locks_total":             99,
			},
			Gauges: map[string]int64{"server_connections": 2, "kvstore_bytes": 1 << 20},
			Hists: map[string]obs.HistStat{
				`gdpr_op_latency_ns{op="READ-DATA"}`: {
					Count: 26, Sum: 52_000, Min: 800, Max: 9_000,
					P50: 1_900, P95: 8_600, P99: 9_000, WindowCount: 4,
				},
			},
			Slowlog: []obs.SlowEntry{{
				Seq: 7, Time: time.Unix(1_552_867_200, 250).UTC(),
				Op: "DELETE-RECORD", Role: "controller", KeyClass: "USR",
				Err: true, Total: 40 * time.Millisecond,
				Phases: [obs.NumPhases]time.Duration{
					time.Microsecond, 2 * time.Microsecond, 0,
					39 * time.Millisecond, 900 * time.Microsecond,
				},
			}},
		}),
		&MetricsResp{},
		&StreamOpened{ID: 7},
		&StreamChunk{ID: 7, Recs: []string{gdpr.Encode(rec), gdpr.Encode(rec)}},
		&StreamChunk{ID: 7, Done: true},
		&ErrorResp{Kind: ErrDenied, Role: acl.Processor, Verb: byte(acl.VerbReadData),
			ID: "processor-1", Purpose: "ads", Key: "ph-1x4b", Reason: "owner objected"},
		&ErrorResp{Kind: ErrValidation, Key: "bad-rec", Reason: "strict mode requires a TTL (G 5(1e))"},
		&ErrorResp{Kind: ErrGeneric, Msg: "engine exploded"},
		&ErrorResp{Kind: ErrFeatureDisabled, Msg: "logging"},
	}
}

// TestWireRoundTrip pins decode(encode(x)) == x (via canonical bytes)
// for every frame type.
func TestWireRoundTrip(t *testing.T) {
	for _, m := range sampleMessages() {
		enc := Encode(m)
		got, err := ReadMessage(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("%v: decode: %v", m.Op(), err)
		}
		if got.Op() != m.Op() {
			t.Fatalf("%v: decoded as %v", m.Op(), got.Op())
		}
		re := Encode(got)
		if !bytes.Equal(enc, re) {
			t.Fatalf("%v: re-encode differs:\n  %x\n  %x", m.Op(), enc, re)
		}
	}
}

// TestWireRecordsSurviveTheTrip pins the §4.2.1 payload reuse: a record
// decoded from a Records frame equals the record that was encoded.
func TestWireRecordsSurviveTheTrip(t *testing.T) {
	rec := gdpr.MustDecode("ph-1x4b;123-456-7890;PUR=ads,2fa;TTL=1552867200;USR=neo;OBJ=;DEC=;SHR=;SRC=first-party;")
	enc := Encode(&Records{Recs: EncodeRecords([]gdpr.Record{rec})})
	got, err := ReadMessage(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := DecodeRecords(got.(*Records).Recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || gdpr.Encode(recs[0]) != gdpr.Encode(rec) {
		t.Fatalf("record changed across the wire: %v", recs)
	}
}

// TestTruncatedFramesRejected cuts a valid frame at every length and
// requires a clean error (no panic, no partial message).
func TestTruncatedFramesRejected(t *testing.T) {
	m := &ReadData{Actor: acl.Actor{Role: acl.Customer, ID: "neo"}, Sel: gdpr.ByUser("neo")}
	enc := Encode(m)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := ReadMessage(bytes.NewReader(enc[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(enc))
		}
	}
	// A frame whose payload lies about an inner length is rejected too.
	bad := append([]byte(nil), enc...)
	bad[6] = 0xff // the actor-ID length varint now claims far more bytes than the frame holds
	if _, err := ReadMessage(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupt inner length accepted")
	}
}

// TestOversizedFrameRejected requires header-level rejection before any
// payload allocation.
func TestOversizedFrameRejected(t *testing.T) {
	hdr := []byte{0xff, 0xff, 0xff, 0xff}
	_, err := ReadMessage(bytes.NewReader(hdr))
	var fe *FrameError
	if !errors.As(err, &fe) {
		t.Fatalf("oversized frame: got %v, want *FrameError", err)
	}
}

func TestEmptyAndUnknownFramesRejected(t *testing.T) {
	if _, err := ReadMessage(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Fatal("empty frame accepted")
	}
	if _, err := ReadMessage(bytes.NewReader([]byte{0, 0, 0, 1, 0xee})); err == nil {
		t.Fatal("unknown opcode accepted")
	}
	// Trailing payload bytes beyond the message body are rejected.
	if _, err := ReadMessage(bytes.NewReader([]byte{0, 0, 0, 3, byte(OpAck), 1, 2})); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// TestErrorRoundTripKeepsTypes pins that denials and validation errors
// reconstruct as their concrete types (the runner's errors.As contract).
func TestErrorRoundTripKeepsTypes(t *testing.T) {
	denied := &acl.DeniedError{
		Actor:  acl.Actor{Role: acl.Processor, ID: "p1", Purpose: "ads"},
		Verb:   acl.VerbReadData,
		Key:    "r0000001",
		Reason: "owner objected",
	}
	resp := ErrorFrom(denied)
	back := resp.Err()
	var d2 *acl.DeniedError
	if !errors.As(back, &d2) {
		t.Fatalf("denial lost its type: %T", back)
	}
	if d2.Error() != denied.Error() {
		t.Fatalf("denial text changed: %q vs %q", d2.Error(), denied.Error())
	}

	invalid := &gdpr.ValidationError{Key: "k", Reason: "strict mode requires a TTL (G 5(1e))"}
	var v2 *gdpr.ValidationError
	if !errors.As(ErrorFrom(invalid).Err(), &v2) || v2.Error() != invalid.Error() {
		t.Fatalf("validation error lost across the wire")
	}

	if ErrorFrom(errors.New("boom")).Err().Error() != "boom" {
		t.Fatal("generic error text changed")
	}
}

// FuzzWireRoundTrip feeds arbitrary bytes through ReadMessage; every
// accepted frame must re-encode to exactly the bytes consumed (the
// codec is canonical), and no input may panic or over-read.
func FuzzWireRoundTrip(f *testing.F) {
	for _, m := range sampleMessages() {
		f.Add(Encode(m))
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		m, err := ReadMessage(r)
		if err != nil {
			return
		}
		consumed := len(data) - r.Len()
		re := Encode(m)
		if !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data[:consumed], re)
		}
		// Decoding the canonical form again must succeed and agree.
		m2, err := ReadMessage(bytes.NewReader(re))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(Encode(m2), re) {
			t.Fatal("second round trip diverged")
		}
	})
}

// TestFarFutureTimesSurviveTheTrip pins the time codec against UnixNano
// wraparound: a year-9999 TTL delta must decode to the same instant (a
// wrapped encoding would land in the past and silently expire records
// server-side).
func TestFarFutureTimesSurviveTheTrip(t *testing.T) {
	horizon := time.Date(9999, 1, 1, 0, 0, 0, 0, time.UTC)
	m := &UpdateMetadata{
		Actor: acl.Actor{Role: acl.Controller, ID: "c1"},
		Sel:   gdpr.ByKey("k"),
		Delta: gdpr.Delta{Attr: gdpr.AttrTTL, Op: gdpr.DeltaSet, Expiry: horizon},
	}
	got, err := ReadMessage(bytes.NewReader(Encode(m)))
	if err != nil {
		t.Fatal(err)
	}
	back := got.(*UpdateMetadata).Delta.Expiry
	if !back.Equal(horizon) {
		t.Fatalf("expiry changed across the wire: %v -> %v", horizon, back)
	}
	if back.Before(time.Unix(4_000_000_000, 0)) {
		t.Fatalf("far-future expiry wrapped into the near term: %v", back)
	}
}

// TestPoolAliasingWireCodec pins the Decoder's no-aliasing contract
// (the copy-on-checkout semantics internal/pool documents): messages
// decoded through the reused buffer must stay intact after that buffer
// is overwritten — first by later frames, then by a direct scribble.
func TestPoolAliasingWireCodec(t *testing.T) {
	samples := sampleMessages()
	canon := make([][]byte, len(samples))
	var enc Encoder
	var net bytes.Buffer
	for i, m := range samples {
		canon[i] = Encode(m)
		if err := enc.WriteMessage(&net, m); err != nil {
			t.Fatalf("%v: encode: %v", m.Op(), err)
		}
	}
	var dec Decoder
	msgs := make([]Message, len(samples))
	for i := range samples {
		m, err := dec.ReadMessage(&net)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		msgs[i] = m
	}
	scratch := dec.buf[:cap(dec.buf)]
	for i := range scratch {
		scratch[i] = 0xff
	}
	for i, m := range msgs {
		if !bytes.Equal(Encode(m), canon[i]) {
			t.Fatalf("%v: message aliased the decoder's pooled buffer", m.Op())
		}
	}
}

// TestEncoderOversizeRejectedBeforeWrite pins the Encoder to the
// package-level WriteMessage contract: an oversized frame fails with a
// *FrameError before any byte reaches the connection, which stays
// usable for the next frame.
func TestEncoderOversizeRejectedBeforeWrite(t *testing.T) {
	var enc Encoder
	var net bytes.Buffer
	big := &UpdateData{Actor: acl.Actor{Role: acl.Customer, ID: "neo"},
		Key: "k", Data: string(make([]byte, MaxFrameSize))}
	var fe *FrameError
	if err := enc.WriteMessage(&net, big); !errors.As(err, &fe) {
		t.Fatalf("oversized frame: got %v, want *FrameError", err)
	}
	if net.Len() != 0 {
		t.Fatalf("%d bytes written despite oversize rejection", net.Len())
	}
	if err := enc.WriteMessage(&net, &Ack{}); err != nil {
		t.Fatalf("connection unusable after rejected frame: %v", err)
	}
	if _, err := ReadMessage(&net); err != nil {
		t.Fatalf("follow-up frame corrupt: %v", err)
	}
}

// FuzzWirePooledRoundTrip drives arbitrary bytes through a persistent
// Decoder/Encoder pair — the pooled-buffer path every connection uses —
// and requires the FuzzWireRoundTrip canonical property to survive
// buffer reuse: the first decode is re-encoded only after a second
// decode has overwritten the decoder's buffer, so any aliasing between
// message and buffer corrupts the comparison.
func FuzzWirePooledRoundTrip(f *testing.F) {
	for _, m := range sampleMessages() {
		f.Add(Encode(m))
	}
	f.Add([]byte{0, 0, 0, 1, byte(OpAck)})
	f.Fuzz(func(t *testing.T, data []byte) {
		var dec Decoder
		var enc Encoder
		r := bytes.NewReader(data)
		m1, err := dec.ReadMessage(r)
		if err != nil {
			return
		}
		consumed := len(data) - r.Len()
		m2, err := dec.ReadMessage(bytes.NewReader(data[:consumed]))
		if err != nil {
			t.Fatalf("re-decode through reused buffer failed: %v", err)
		}
		var out1, out2 bytes.Buffer
		if err := enc.WriteMessage(&out1, m1); err != nil {
			t.Fatal(err)
		}
		if err := enc.WriteMessage(&out2, m2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out1.Bytes(), data[:consumed]) {
			t.Fatalf("first decode corrupted by buffer reuse:\n in  %x\n out %x", data[:consumed], out1.Bytes())
		}
		if !bytes.Equal(out2.Bytes(), out1.Bytes()) {
			t.Fatal("decodes of identical bytes diverged")
		}
	})
}

// TestReadMessageEOF distinguishes a clean EOF (no bytes) from a
// truncated frame.
func TestReadMessageEOF(t *testing.T) {
	if _, err := ReadMessage(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Fatalf("want io.EOF, got %v", err)
	}
	if _, err := ReadMessage(bytes.NewReader([]byte{0, 0})); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
}

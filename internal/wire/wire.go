// Package wire is the network protocol of the GDPR service layer: a
// length-prefixed binary framing with one message type per §3.3 query
// (CREATE-RECORD through VERIFY-DELETION) plus the Hello handshake that
// binds a connection to a GDPR role. Record payloads reuse the
// benchmark's §4.2.1 wire format (gdpr.Encode/Decode), so a record's
// bytes on the network are exactly its bytes in the Redis-model store.
//
// Framing: every frame is
//
//	[4-byte big-endian length N] [1-byte opcode] [N-1 payload bytes]
//
// with 1 <= N <= MaxFrameSize. Payload fields use a canonical codec —
// minimal-length varints, length-prefixed strings, one-byte booleans and
// time-presence flags — so decode(encode(m)) == m and encode(decode(b))
// == b hold for every accepted frame (the FuzzWireRoundTrip property).
// Requests carry the acting GDPR entity; responses carry either the
// §3.3 result shape or a structured error that reconstructs the
// server-side error value (access denials stay typed across the wire,
// which the benchmark runner depends on).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/acl"
	"repro/internal/audit"
	"repro/internal/gdpr"
	"repro/internal/obs"
	"repro/internal/pool"
)

const (
	// ProtocolVersion is negotiated in the Hello handshake. Version 2
	// added HelloOK.AuditPolicy; version 3 added the METRICS
	// introspection exchange (Metrics/MetricsResp); version 4 added the
	// streaming cursor exchange (SelectStream/StreamNext/StreamClose and
	// the StreamOpened/StreamChunk responses). The codec is canonical (no
	// optional fields), so any frame-shape change bumps the version and a
	// mismatch is rejected cleanly at handshake.
	ProtocolVersion = 4
	// MaxFrameSize bounds one frame's opcode + payload; oversized frames
	// are rejected before any payload allocation.
	MaxFrameSize = 16 << 20
)

// Op identifies a frame's message type.
type Op byte

// Frame opcodes: requests first, then responses.
const (
	opInvalid Op = iota
	OpHello
	OpCreateRecord
	OpCreateBatch
	OpReadData
	OpReadMetadata
	OpUpdateData
	OpUpdateMetadata
	OpDeleteRecord
	OpGetLogs
	OpGetFeatures
	OpVerifyDeletion
	OpSpaceUsage
	OpHelloOK
	OpAck
	OpRecords
	OpCount
	OpLogEntries
	OpFeatures
	OpSpace
	OpError
	// Version 3 introspection exchange (appended so earlier opcodes keep
	// their values).
	OpMetrics
	OpMetricsResp
	// Version 4 streaming cursor exchange.
	OpSelectStream
	OpStreamNext
	OpStreamClose
	OpStreamOpened
	OpStreamChunk
	opEnd // sentinel: one past the last valid opcode
)

func (o Op) String() string {
	names := [...]string{
		"invalid", "hello", "create-record", "create-batch", "read-data",
		"read-metadata", "update-data", "update-metadata", "delete-record",
		"get-logs", "get-features", "verify-deletion", "space-usage",
		"hello-ok", "ack", "records", "count", "log-entries", "features",
		"space", "error", "metrics", "metrics-resp", "select-stream",
		"stream-next", "stream-close", "stream-opened", "stream-chunk",
	}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("Op(%d)", byte(o))
}

// FrameError reports a malformed, truncated or oversized frame.
type FrameError struct{ Reason string }

func (e *FrameError) Error() string { return "wire: " + e.Reason }

// Message is one protocol frame's decoded form.
type Message interface {
	// Op returns the frame opcode.
	Op() Op
	encode(w *writer)
	decode(r *reader)
}

// newMessage returns a zero message for op, or nil for unknown opcodes.
func newMessage(op Op) Message {
	switch op {
	case OpHello:
		return &Hello{}
	case OpCreateRecord:
		return &CreateRecord{}
	case OpCreateBatch:
		return &CreateBatch{}
	case OpReadData:
		return &ReadData{}
	case OpReadMetadata:
		return &ReadMetadata{}
	case OpUpdateData:
		return &UpdateData{}
	case OpUpdateMetadata:
		return &UpdateMetadata{}
	case OpDeleteRecord:
		return &DeleteRecord{}
	case OpGetLogs:
		return &GetLogs{}
	case OpGetFeatures:
		return &GetFeatures{}
	case OpVerifyDeletion:
		return &VerifyDeletion{}
	case OpSpaceUsage:
		return &SpaceUsage{}
	case OpHelloOK:
		return &HelloOK{}
	case OpAck:
		return &Ack{}
	case OpRecords:
		return &Records{}
	case OpCount:
		return &Count{}
	case OpLogEntries:
		return &LogEntries{}
	case OpFeatures:
		return &Features{}
	case OpSpace:
		return &Space{}
	case OpError:
		return &ErrorResp{}
	case OpMetrics:
		return &Metrics{}
	case OpMetricsResp:
		return &MetricsResp{}
	case OpSelectStream:
		return &SelectStream{}
	case OpStreamNext:
		return &StreamNext{}
	case OpStreamClose:
		return &StreamClose{}
	case OpStreamOpened:
		return &StreamOpened{}
	case OpStreamChunk:
		return &StreamChunk{}
	default:
		return nil
	}
}

// Encode renders m as one complete frame.
func Encode(m Message) []byte {
	return AppendEncode(make([]byte, 0, 64), m)
}

// AppendEncode appends m's complete frame to buf and returns the
// extended slice (the frame starts at the caller's len(buf)). This is
// the allocation-free encode primitive: Encoder reuses one buffer
// across frames, so steady-state encoding allocates nothing beyond
// occasional buffer growth.
func AppendEncode(buf []byte, m Message) []byte {
	start := len(buf)
	w := writer{buf: append(buf, 0, 0, 0, 0, byte(m.Op()))}
	m.encode(&w)
	binary.BigEndian.PutUint32(w.buf[start:start+4], uint32(len(w.buf)-start-4))
	return w.buf
}

// WriteMessage frames and writes m. A message that encodes beyond
// MaxFrameSize is rejected with a *FrameError before any byte is
// written, so the connection stays usable — the peer would drop the
// whole session on an oversized frame, turning one bad request into a
// failure of every in-flight operation.
func WriteMessage(out io.Writer, m Message) error {
	buf := AppendEncode(pool.GetBytes(64)[:0], m)
	defer pool.PutBytes(buf)
	if len(buf)-4 > MaxFrameSize {
		return &FrameError{fmt.Sprintf("%v frame of %d bytes exceeds the %d-byte limit", m.Op(), len(buf)-4, MaxFrameSize)}
	}
	_, err := out.Write(buf)
	return err
}

// An Encoder frames and writes messages through one persistent buffer,
// so a long-lived connection (server handler, remote client) encodes
// every frame allocation-free once the buffer has grown to its working
// size. Not safe for concurrent use; callers serialize per connection.
type Encoder struct{ w writer }

// WriteMessage frames and writes m, reusing the encoder's buffer. The
// oversize check runs after encode and before any byte is written —
// same contract as the package-level WriteMessage.
func (e *Encoder) WriteMessage(out io.Writer, m Message) error {
	e.w.buf = append(e.w.buf[:0], 0, 0, 0, 0, byte(m.Op()))
	m.encode(&e.w)
	binary.BigEndian.PutUint32(e.w.buf[:4], uint32(len(e.w.buf)-4))
	if len(e.w.buf)-4 > MaxFrameSize {
		return &FrameError{fmt.Sprintf("%v frame of %d bytes exceeds the %d-byte limit", m.Op(), len(e.w.buf)-4, MaxFrameSize)}
	}
	_, err := out.Write(e.w.buf)
	return err
}

// ReadMessage reads and decodes one frame. Truncated frames surface as
// io.EOF / io.ErrUnexpectedEOF; malformed or oversized ones as a
// *FrameError.
func ReadMessage(in io.Reader) (Message, error) {
	var d Decoder
	m, err := d.ReadMessage(in)
	pool.PutBytes(d.buf)
	return m, err
}

// A Decoder reads and decodes frames through one persistent buffer.
// Decoded messages never alias the buffer (the payload codec copies
// every string out), so the next ReadMessage may overwrite it freely.
// Not safe for concurrent use; callers serialize per connection.
type Decoder struct {
	buf []byte
	r   reader
}

// ReadMessage reads and decodes one frame, reusing the decoder's
// buffer. Error surface matches the package-level ReadMessage.
func (d *Decoder) ReadMessage(in io.Reader) (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(in, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, &FrameError{"empty frame"}
	}
	if n > MaxFrameSize {
		return nil, &FrameError{fmt.Sprintf("frame of %d bytes exceeds the %d-byte limit", n, MaxFrameSize)}
	}
	if cap(d.buf) < int(n) {
		pool.PutBytes(d.buf)
		d.buf = pool.GetBytes(int(n))
	}
	buf := d.buf[:n]
	if _, err := io.ReadFull(in, buf); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	m := newMessage(Op(buf[0]))
	if m == nil {
		return nil, &FrameError{fmt.Sprintf("unknown opcode %d", buf[0])}
	}
	d.r = reader{buf: buf[1:]}
	m.decode(&d.r)
	if d.r.err != nil {
		return nil, fmt.Errorf("wire: decode %v: %w", m.Op(), d.r.err)
	}
	if d.r.off != len(d.r.buf) {
		return nil, &FrameError{fmt.Sprintf("%v frame has %d trailing bytes", m.Op(), len(d.r.buf)-d.r.off)}
	}
	return m, nil
}

// ---------------------------------------------------------------------------
// Canonical payload codec

type writer struct{ buf []byte }

func (w *writer) uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *writer) varint(v int64)   { w.buf = binary.AppendVarint(w.buf, v) }
func (w *writer) byteVal(b byte)   { w.buf = append(w.buf, b) }

func (w *writer) boolVal(v bool) {
	if v {
		w.byteVal(1)
	} else {
		w.byteVal(0)
	}
}

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *writer) strs(ss []string) {
	w.uvarint(uint64(len(ss)))
	for _, s := range ss {
		w.str(s)
	}
}

// timeVal encodes t as a presence flag plus unix seconds and
// nanoseconds — not UnixNano, which silently wraps outside
// ~[1678, 2262] and would corrupt far-future "keep forever" expiries
// (legal in the gdpr record codec, which stores unix seconds). The zero
// time (meaning "unset" throughout the benchmark) survives the trip.
func (w *writer) timeVal(t time.Time) {
	if t.IsZero() {
		w.byteVal(0)
		return
	}
	w.byteVal(1)
	w.varint(t.Unix())
	w.uvarint(uint64(t.Nanosecond()))
}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(reason string) {
	if r.err == nil {
		r.err = &FrameError{reason}
	}
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

// uvarint reads a minimal-length unsigned varint; overlong encodings are
// rejected so the codec stays canonical (encode(decode(b)) == b).
func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	var min [binary.MaxVarintLen64]byte
	if binary.PutUvarint(min[:], v) != n {
		r.fail("non-minimal uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	var min [binary.MaxVarintLen64]byte
	if binary.PutVarint(min[:], v) != n {
		r.fail("non-minimal varint")
		return 0
	}
	r.off += n
	return v
}

func (r *reader) byteVal() byte {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 1 {
		r.fail("truncated byte")
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

func (r *reader) boolVal() bool {
	b := r.byteVal()
	if r.err == nil && b > 1 {
		r.fail("bad bool")
	}
	return b == 1
}

func (r *reader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.remaining()) {
		r.fail("string length exceeds frame")
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *reader) strsVal() []string {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	// Every element costs at least one length byte, so a count beyond the
	// remaining payload is malformed — reject before allocating.
	if n > uint64(r.remaining()) {
		r.fail("list length exceeds frame")
		return nil
	}
	if n == 0 {
		return nil
	}
	// Cap the pre-allocation: the count is attacker-controlled and each
	// slice header costs 16 bytes, so trusting it would let a small
	// frame demand a large allocation before the first element fails to
	// decode. append amortizes the growth for honest frames.
	out := make([]string, 0, minU64(n, 1024))
	for i := uint64(0); i < n; i++ {
		out = append(out, r.str())
	}
	return out
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func (r *reader) timeVal() time.Time {
	switch r.byteVal() {
	case 0:
		return time.Time{}
	case 1:
		sec := r.varint()
		nsec := r.uvarint()
		if r.err != nil {
			return time.Time{}
		}
		if nsec >= 1_000_000_000 {
			r.fail("time nanoseconds out of range")
			return time.Time{}
		}
		t := time.Unix(sec, int64(nsec)).UTC()
		if t.IsZero() {
			// The instant that equals Go's zero time must use flag 0, or
			// re-encoding would not reproduce the input bytes.
			r.fail("non-canonical zero time")
			return time.Time{}
		}
		return t
	default:
		r.fail("bad time flag")
		return time.Time{}
	}
}

// ---------------------------------------------------------------------------
// Shared sub-codecs

func encodeActor(w *writer, a acl.Actor) {
	w.byteVal(byte(a.Role))
	w.str(a.ID)
	w.str(a.Purpose)
}

func decodeActor(r *reader) acl.Actor {
	return acl.Actor{Role: acl.Role(r.byteVal()), ID: r.str(), Purpose: r.str()}
}

func encodeSelector(w *writer, sel gdpr.Selector) {
	w.str(string(sel.Attr))
	w.str(sel.Value)
	w.boolVal(sel.Negate)
	w.timeVal(sel.AsOf)
}

func decodeSelector(r *reader) gdpr.Selector {
	return gdpr.Selector{
		Attr:   gdpr.Attribute(r.str()),
		Value:  r.str(),
		Negate: r.boolVal(),
		AsOf:   r.timeVal(),
	}
}

func encodeDelta(w *writer, d gdpr.Delta) {
	w.str(string(d.Attr))
	w.byteVal(byte(d.Op))
	w.strs(d.Values)
	w.timeVal(d.Expiry)
}

func decodeDelta(r *reader) gdpr.Delta {
	return gdpr.Delta{
		Attr:   gdpr.Attribute(r.str()),
		Op:     gdpr.DeltaOp(r.byteVal()),
		Values: r.strsVal(),
		Expiry: r.timeVal(),
	}
}

func encodeEntry(w *writer, e audit.Entry) {
	w.uvarint(e.Seq)
	w.timeVal(e.Time)
	w.str(e.Actor)
	w.str(e.Op)
	w.str(e.Target)
	w.boolVal(e.OK)
	w.str(e.Note)
}

func decodeEntry(r *reader) audit.Entry {
	return audit.Entry{
		Seq:    r.uvarint(),
		Time:   r.timeVal(),
		Actor:  r.str(),
		Op:     r.str(),
		Target: r.str(),
		OK:     r.boolVal(),
		Note:   r.str(),
	}
}

// EncodeRecords renders records in the §4.2.1 wire format for transport.
func EncodeRecords(recs []gdpr.Record) []string {
	out := make([]string, len(recs))
	for i, rec := range recs {
		out[i] = gdpr.Encode(rec)
	}
	return out
}

// DecodeRecords parses transported §4.2.1 record payloads.
func DecodeRecords(encs []string) ([]gdpr.Record, error) {
	out := make([]gdpr.Record, len(encs))
	for i, enc := range encs {
		rec, err := gdpr.Decode(enc)
		if err != nil {
			return nil, err
		}
		out[i] = rec
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Requests

// Hello opens a connection: the protocol version, the GDPR role every
// subsequent request on this connection acts as (the session binding),
// and the shared authentication token.
type Hello struct {
	Version uint64
	Role    acl.Role
	Token   string
}

func (*Hello) Op() Op { return OpHello }
func (m *Hello) encode(w *writer) {
	w.uvarint(m.Version)
	w.byteVal(byte(m.Role))
	w.str(m.Token)
}
func (m *Hello) decode(r *reader) {
	m.Version = r.uvarint()
	m.Role = acl.Role(r.byteVal())
	m.Token = r.str()
}

// CreateRecord is the CREATE-RECORD request; Rec is a §4.2.1 payload.
type CreateRecord struct {
	Actor acl.Actor
	Rec   string
}

func (*CreateRecord) Op() Op { return OpCreateRecord }
func (m *CreateRecord) encode(w *writer) {
	encodeActor(w, m.Actor)
	w.str(m.Rec)
}
func (m *CreateRecord) decode(r *reader) {
	m.Actor = decodeActor(r)
	m.Rec = r.str()
}

// CreateBatch is the bulk CREATE-RECORD request: one frame, one
// durability wait server-side when the engine batches.
type CreateBatch struct {
	Actor acl.Actor
	Recs  []string
}

func (*CreateBatch) Op() Op { return OpCreateBatch }
func (m *CreateBatch) encode(w *writer) {
	encodeActor(w, m.Actor)
	w.strs(m.Recs)
}
func (m *CreateBatch) decode(r *reader) {
	m.Actor = decodeActor(r)
	m.Recs = r.strsVal()
}

// ReadData is the READ-DATA-BY-{KEY|PUR|USR|OBJ|DEC} request.
type ReadData struct {
	Actor acl.Actor
	Sel   gdpr.Selector
}

func (*ReadData) Op() Op { return OpReadData }
func (m *ReadData) encode(w *writer) {
	encodeActor(w, m.Actor)
	encodeSelector(w, m.Sel)
}
func (m *ReadData) decode(r *reader) {
	m.Actor = decodeActor(r)
	m.Sel = decodeSelector(r)
}

// ReadMetadata is the READ-METADATA-BY-{KEY|USR|SHR} request.
type ReadMetadata struct {
	Actor acl.Actor
	Sel   gdpr.Selector
}

func (*ReadMetadata) Op() Op { return OpReadMetadata }
func (m *ReadMetadata) encode(w *writer) {
	encodeActor(w, m.Actor)
	encodeSelector(w, m.Sel)
}
func (m *ReadMetadata) decode(r *reader) {
	m.Actor = decodeActor(r)
	m.Sel = decodeSelector(r)
}

// UpdateData is the UPDATE-DATA-BY-KEY request.
type UpdateData struct {
	Actor     acl.Actor
	Key, Data string
}

func (*UpdateData) Op() Op { return OpUpdateData }
func (m *UpdateData) encode(w *writer) {
	encodeActor(w, m.Actor)
	w.str(m.Key)
	w.str(m.Data)
}
func (m *UpdateData) decode(r *reader) {
	m.Actor = decodeActor(r)
	m.Key = r.str()
	m.Data = r.str()
}

// UpdateMetadata is the UPDATE-METADATA-BY-{KEY|PUR|USR|SHR} request.
type UpdateMetadata struct {
	Actor acl.Actor
	Sel   gdpr.Selector
	Delta gdpr.Delta
}

func (*UpdateMetadata) Op() Op { return OpUpdateMetadata }
func (m *UpdateMetadata) encode(w *writer) {
	encodeActor(w, m.Actor)
	encodeSelector(w, m.Sel)
	encodeDelta(w, m.Delta)
}
func (m *UpdateMetadata) decode(r *reader) {
	m.Actor = decodeActor(r)
	m.Sel = decodeSelector(r)
	m.Delta = decodeDelta(r)
}

// DeleteRecord is the DELETE-RECORD-BY-{KEY|PUR|TTL|USR} request.
type DeleteRecord struct {
	Actor acl.Actor
	Sel   gdpr.Selector
}

func (*DeleteRecord) Op() Op { return OpDeleteRecord }
func (m *DeleteRecord) encode(w *writer) {
	encodeActor(w, m.Actor)
	encodeSelector(w, m.Sel)
}
func (m *DeleteRecord) decode(r *reader) {
	m.Actor = decodeActor(r)
	m.Sel = decodeSelector(r)
}

// GetLogs is the GET-SYSTEM-LOGS request.
type GetLogs struct {
	Actor    acl.Actor
	From, To time.Time
}

func (*GetLogs) Op() Op { return OpGetLogs }
func (m *GetLogs) encode(w *writer) {
	encodeActor(w, m.Actor)
	w.timeVal(m.From)
	w.timeVal(m.To)
}
func (m *GetLogs) decode(r *reader) {
	m.Actor = decodeActor(r)
	m.From = r.timeVal()
	m.To = r.timeVal()
}

// GetFeatures is the GET-SYSTEM-FEATURES request.
type GetFeatures struct{ Actor acl.Actor }

func (*GetFeatures) Op() Op             { return OpGetFeatures }
func (m *GetFeatures) encode(w *writer) { encodeActor(w, m.Actor) }
func (m *GetFeatures) decode(r *reader) { m.Actor = decodeActor(r) }

// VerifyDeletion asks how many of the given keys still exist.
type VerifyDeletion struct {
	Actor acl.Actor
	Keys  []string
}

func (*VerifyDeletion) Op() Op { return OpVerifyDeletion }
func (m *VerifyDeletion) encode(w *writer) {
	encodeActor(w, m.Actor)
	w.strs(m.Keys)
}
func (m *VerifyDeletion) decode(r *reader) {
	m.Actor = decodeActor(r)
	m.Keys = r.strsVal()
}

// SpaceUsage asks for the §4.2.3 space-overhead inputs.
type SpaceUsage struct{}

func (*SpaceUsage) Op() Op           { return OpSpaceUsage }
func (m *SpaceUsage) encode(*writer) {}
func (m *SpaceUsage) decode(*reader) {}

// Metrics asks for the server's observability snapshot. Like SpaceUsage
// it is an admin query any authenticated session may issue — the
// snapshot carries operation counts, latencies and engine internals,
// never record payloads. Slowlog controls whether the slowlog ring
// (which names key classes, not keys) rides along.
type Metrics struct{ Slowlog bool }

func (*Metrics) Op() Op             { return OpMetrics }
func (m *Metrics) encode(w *writer) { w.boolVal(m.Slowlog) }
func (m *Metrics) decode(r *reader) { m.Slowlog = r.boolVal() }

// SelectStream opens a server-side cursor over a selector result set
// (the streaming counterpart of ReadData/ReadMetadata). The server
// replies StreamOpened with the cursor id; the client then pulls chunks
// with StreamNext. Chunk is the requested records-per-chunk (0 lets the
// server choose); Meta selects the READ-METADATA projection (redacted
// Data) instead of READ-DATA. The cursor is bound to this session and
// reaped when the connection closes.
type SelectStream struct {
	Actor acl.Actor
	Sel   gdpr.Selector
	Chunk uint64
	Meta  bool
}

func (*SelectStream) Op() Op { return OpSelectStream }
func (m *SelectStream) encode(w *writer) {
	encodeActor(w, m.Actor)
	encodeSelector(w, m.Sel)
	w.uvarint(m.Chunk)
	w.boolVal(m.Meta)
}
func (m *SelectStream) decode(r *reader) {
	m.Actor = decodeActor(r)
	m.Sel = decodeSelector(r)
	m.Chunk = r.uvarint()
	m.Meta = r.boolVal()
}

// StreamNext pulls the next chunk from an open cursor. Clients may
// pipeline several StreamNext frames (credit-based flow control): each
// is an ordinary pipelined request with its own in-order StreamChunk
// response, so point operations interleave between chunks on the same
// connection.
type StreamNext struct{ ID uint64 }

func (*StreamNext) Op() Op             { return OpStreamNext }
func (m *StreamNext) encode(w *writer) { w.uvarint(m.ID) }
func (m *StreamNext) decode(r *reader) { m.ID = r.uvarint() }

// StreamClose releases a cursor early. The server always acks — closing
// an unknown or already-finished cursor is a no-op, so close races
// (Done chunk in flight while the client closes) resolve cleanly.
type StreamClose struct{ ID uint64 }

func (*StreamClose) Op() Op             { return OpStreamClose }
func (m *StreamClose) encode(w *writer) { w.uvarint(m.ID) }
func (m *StreamClose) decode(r *reader) { m.ID = r.uvarint() }

// ---------------------------------------------------------------------------
// Responses

// HelloOK accepts a handshake. AuditPolicy reports the server's audit
// append pipeline ("sync" | "batched" | "async"; empty when the server
// was not told one) so clients can record which audit configuration
// their measurements ran against.
type HelloOK struct {
	Version     uint64
	AuditPolicy string
}

func (*HelloOK) Op() Op { return OpHelloOK }
func (m *HelloOK) encode(w *writer) {
	w.uvarint(m.Version)
	w.str(m.AuditPolicy)
}
func (m *HelloOK) decode(r *reader) {
	m.Version = r.uvarint()
	m.AuditPolicy = r.str()
}

// Ack acknowledges a create request.
type Ack struct{}

func (*Ack) Op() Op           { return OpAck }
func (m *Ack) encode(*writer) {}
func (m *Ack) decode(*reader) {}

// Records carries selector results as §4.2.1 payloads, engine order
// preserved.
type Records struct{ Recs []string }

func (*Records) Op() Op             { return OpRecords }
func (m *Records) encode(w *writer) { w.strs(m.Recs) }
func (m *Records) decode(r *reader) { m.Recs = r.strsVal() }

// Count carries a mutation or verification count.
type Count struct{ N int64 }

func (*Count) Op() Op             { return OpCount }
func (m *Count) encode(w *writer) { w.varint(m.N) }
func (m *Count) decode(r *reader) { m.N = r.varint() }

// LogEntries carries GET-SYSTEM-LOGS results.
type LogEntries struct{ Entries []audit.Entry }

func (*LogEntries) Op() Op { return OpLogEntries }
func (m *LogEntries) encode(w *writer) {
	w.uvarint(uint64(len(m.Entries)))
	for _, e := range m.Entries {
		encodeEntry(w, e)
	}
}
func (m *LogEntries) decode(r *reader) {
	n := r.uvarint()
	if r.err != nil {
		return
	}
	// A minimal entry (seq + time flag + three empty strings + ok +
	// empty note) encodes to 7 bytes; reject impossible counts before
	// touching memory, and cap the pre-allocation regardless — each
	// audit.Entry costs ~100 bytes, so an attacker-controlled count
	// must not size the slice.
	const minEntrySize = 7
	if n > uint64(r.remaining())/minEntrySize {
		r.fail("entry count exceeds frame")
		return
	}
	if n == 0 {
		return
	}
	m.Entries = make([]audit.Entry, 0, minU64(n, 1024))
	for i := uint64(0); i < n; i++ {
		m.Entries = append(m.Entries, decodeEntry(r))
	}
}

// Features carries GET-SYSTEM-FEATURES results as sorted key/value
// pairs (sorted so the encoding of a features map is canonical).
type Features struct{ Keys, Vals []string }

func (*Features) Op() Op { return OpFeatures }
func (m *Features) encode(w *writer) {
	w.strs(m.Keys)
	w.strs(m.Vals)
}
func (m *Features) decode(r *reader) {
	m.Keys = r.strsVal()
	m.Vals = r.strsVal()
	if r.err == nil && len(m.Keys) != len(m.Vals) {
		r.fail("features key/value count mismatch")
	}
}

// FeaturesFromMap renders a features map with sorted keys.
func FeaturesFromMap(f map[string]string) *Features {
	keys := make([]string, 0, len(f))
	for k := range f {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	vals := make([]string, len(keys))
	for i, k := range keys {
		vals[i] = f[k]
	}
	return &Features{Keys: keys, Vals: vals}
}

// Map rebuilds the features map.
func (m *Features) Map() map[string]string {
	out := make(map[string]string, len(m.Keys))
	for i, k := range m.Keys {
		out[k] = m.Vals[i]
	}
	return out
}

// Space carries the §4.2.3 space-overhead inputs.
type Space struct{ Personal, Total int64 }

func (*Space) Op() Op { return OpSpace }
func (m *Space) encode(w *writer) {
	w.varint(m.Personal)
	w.varint(m.Total)
}
func (m *Space) decode(r *reader) {
	m.Personal = r.varint()
	m.Total = r.varint()
}

// StreamOpened accepts a SelectStream: ID names the server-side cursor
// for subsequent StreamNext/StreamClose frames.
type StreamOpened struct{ ID uint64 }

func (*StreamOpened) Op() Op             { return OpStreamOpened }
func (m *StreamOpened) encode(w *writer) { w.uvarint(m.ID) }
func (m *StreamOpened) decode(r *reader) { m.ID = r.uvarint() }

// StreamChunk answers one StreamNext: a batch of §4.2.1 record payloads
// in engine order. Done marks the final frame of the stream (Recs may
// be empty then); the server has already released the cursor, so no
// StreamClose is needed after a Done chunk. A StreamNext for an unknown
// cursor also answers Done with no records, keeping the exchange
// race-free around disconnect reaping.
type StreamChunk struct {
	ID   uint64
	Recs []string
	Done bool
}

func (*StreamChunk) Op() Op { return OpStreamChunk }
func (m *StreamChunk) encode(w *writer) {
	w.uvarint(m.ID)
	w.strs(m.Recs)
	w.boolVal(m.Done)
}
func (m *StreamChunk) decode(r *reader) {
	m.ID = r.uvarint()
	m.Recs = r.strsVal()
	m.Done = r.boolVal()
}

// MetricsResp carries a registry snapshot: counter and gauge series as
// name/value pairs, histogram series as name + summary, and (when
// requested) the slowlog. Series ride in parallel slices sorted by name
// — MetricsFromSnapshot sorts, so a snapshot's encoding is canonical
// the same way FeaturesFromMap's is.
type MetricsResp struct {
	CounterNames []string
	CounterVals  []int64
	GaugeNames   []string
	GaugeVals    []int64
	HistNames    []string
	HistStats    []obs.HistStat
	Slow         []obs.SlowEntry
}

func (*MetricsResp) Op() Op { return OpMetricsResp }

// encodeSeries writes name/value pairs interleaved under one count, so
// the two slices cannot disagree in length on the wire.
func encodeSeries(w *writer, names []string, vals []int64) {
	w.uvarint(uint64(len(names)))
	for i, name := range names {
		w.str(name)
		w.varint(vals[i])
	}
}

func decodeSeries(r *reader) ([]string, []int64) {
	n := r.uvarint()
	if r.err != nil {
		return nil, nil
	}
	// A minimal pair (empty name + one-byte varint) costs 2 bytes; reject
	// impossible counts before allocating, and cap the pre-allocation —
	// the count is attacker-controlled.
	if n > uint64(r.remaining())/2 {
		r.fail("series count exceeds frame")
		return nil, nil
	}
	if n == 0 {
		return nil, nil
	}
	names := make([]string, 0, minU64(n, 1024))
	vals := make([]int64, 0, minU64(n, 1024))
	for i := uint64(0); i < n; i++ {
		names = append(names, r.str())
		vals = append(vals, r.varint())
	}
	return names, vals
}

func encodeHistStat(w *writer, st obs.HistStat) {
	w.varint(st.Count)
	w.varint(st.Sum)
	w.varint(st.Min)
	w.varint(st.Max)
	w.varint(st.P50)
	w.varint(st.P95)
	w.varint(st.P99)
	w.varint(st.WindowCount)
}

func decodeHistStat(r *reader) obs.HistStat {
	return obs.HistStat{
		Count:       r.varint(),
		Sum:         r.varint(),
		Min:         r.varint(),
		Max:         r.varint(),
		P50:         r.varint(),
		P95:         r.varint(),
		P99:         r.varint(),
		WindowCount: r.varint(),
	}
}

func encodeSlowEntry(w *writer, e obs.SlowEntry) {
	w.uvarint(e.Seq)
	w.timeVal(e.Time)
	w.str(e.Op)
	w.str(e.Role)
	w.str(e.KeyClass)
	w.boolVal(e.Err)
	w.varint(int64(e.Total))
	for _, d := range e.Phases {
		w.varint(int64(d))
	}
}

func decodeSlowEntry(r *reader) obs.SlowEntry {
	e := obs.SlowEntry{
		Seq:      r.uvarint(),
		Time:     r.timeVal(),
		Op:       r.str(),
		Role:     r.str(),
		KeyClass: r.str(),
		Err:      r.boolVal(),
		Total:    time.Duration(r.varint()),
	}
	for i := range e.Phases {
		e.Phases[i] = time.Duration(r.varint())
	}
	return e
}

func (m *MetricsResp) encode(w *writer) {
	encodeSeries(w, m.CounterNames, m.CounterVals)
	encodeSeries(w, m.GaugeNames, m.GaugeVals)
	w.uvarint(uint64(len(m.HistNames)))
	for i, name := range m.HistNames {
		w.str(name)
		encodeHistStat(w, m.HistStats[i])
	}
	w.uvarint(uint64(len(m.Slow)))
	for _, e := range m.Slow {
		encodeSlowEntry(w, e)
	}
}

func (m *MetricsResp) decode(r *reader) {
	m.CounterNames, m.CounterVals = decodeSeries(r)
	m.GaugeNames, m.GaugeVals = decodeSeries(r)
	nh := r.uvarint()
	if r.err != nil {
		return
	}
	// A minimal histogram entry (empty name + eight one-byte varints)
	// costs 9 bytes.
	if nh > uint64(r.remaining())/9 {
		r.fail("histogram count exceeds frame")
		return
	}
	if nh > 0 {
		m.HistNames = make([]string, 0, minU64(nh, 1024))
		m.HistStats = make([]obs.HistStat, 0, minU64(nh, 1024))
		for i := uint64(0); i < nh; i++ {
			m.HistNames = append(m.HistNames, r.str())
			m.HistStats = append(m.HistStats, decodeHistStat(r))
		}
	}
	ns := r.uvarint()
	if r.err != nil {
		return
	}
	// A minimal slowlog entry (seq + zero time + three empty strings +
	// err + total + one varint per phase) costs 7+NumPhases bytes.
	minSlowSize := uint64(7 + obs.NumPhases)
	if ns > uint64(r.remaining())/minSlowSize {
		r.fail("slowlog count exceeds frame")
		return
	}
	if ns > 0 {
		m.Slow = make([]obs.SlowEntry, 0, minU64(ns, 1024))
		for i := uint64(0); i < ns; i++ {
			m.Slow = append(m.Slow, decodeSlowEntry(r))
		}
	}
}

// MetricsFromSnapshot renders snap as a wire response, series sorted by
// name so equal snapshots encode to equal bytes.
func MetricsFromSnapshot(snap obs.Snapshot) *MetricsResp {
	m := &MetricsResp{Slow: snap.Slowlog}
	m.CounterNames, m.CounterVals = sortSeries(snap.Counters)
	m.GaugeNames, m.GaugeVals = sortSeries(snap.Gauges)
	if len(snap.Hists) > 0 {
		m.HistNames = make([]string, 0, len(snap.Hists))
		for name := range snap.Hists {
			m.HistNames = append(m.HistNames, name)
		}
		sort.Strings(m.HistNames)
		m.HistStats = make([]obs.HistStat, len(m.HistNames))
		for i, name := range m.HistNames {
			m.HistStats[i] = snap.Hists[name]
		}
	}
	return m
}

func sortSeries(series map[string]int64) ([]string, []int64) {
	if len(series) == 0 {
		return nil, nil
	}
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)
	vals := make([]int64, len(names))
	for i, name := range names {
		vals[i] = series[name]
	}
	return names, vals
}

// Snapshot rebuilds the obs.Snapshot the peer captured, so remote and
// embedded metrics reads share one downstream shape.
func (m *MetricsResp) Snapshot() obs.Snapshot {
	snap := obs.Snapshot{
		Counters: make(map[string]int64, len(m.CounterNames)),
		Gauges:   make(map[string]int64, len(m.GaugeNames)),
		Hists:    make(map[string]obs.HistStat, len(m.HistNames)),
		Slowlog:  m.Slow,
	}
	for i, name := range m.CounterNames {
		snap.Counters[name] = m.CounterVals[i]
	}
	for i, name := range m.GaugeNames {
		snap.Gauges[name] = m.GaugeVals[i]
	}
	for i, name := range m.HistNames {
		snap.Hists[name] = m.HistStats[i]
	}
	return snap
}

// ---------------------------------------------------------------------------
// Errors

// Error kinds: the classes a client must be able to reconstruct as
// typed error values.
const (
	// ErrGeneric is an opaque server-side error (engine failures).
	ErrGeneric byte = iota
	// ErrDenied is an access-control denial (*acl.DeniedError); the
	// benchmark runner treats these as valid outcomes, so the type must
	// survive the wire.
	ErrDenied
	// ErrValidation is a record-grammar violation (*gdpr.ValidationError).
	ErrValidation
	// ErrFeatureDisabled marks core.ErrFeatureDisabled; the server sets
	// it (wire cannot import core) and the client restores the sentinel.
	ErrFeatureDisabled
)

// ErrorResp carries a structured server-side error.
type ErrorResp struct {
	Kind    byte
	Role    acl.Role
	Verb    byte
	ID      string
	Purpose string
	Key     string
	Reason  string
	Msg     string
}

func (*ErrorResp) Op() Op { return OpError }
func (m *ErrorResp) encode(w *writer) {
	w.byteVal(m.Kind)
	w.byteVal(byte(m.Role))
	w.byteVal(m.Verb)
	w.str(m.ID)
	w.str(m.Purpose)
	w.str(m.Key)
	w.str(m.Reason)
	w.str(m.Msg)
}
func (m *ErrorResp) decode(r *reader) {
	m.Kind = r.byteVal()
	m.Role = acl.Role(r.byteVal())
	m.Verb = r.byteVal()
	m.ID = r.str()
	m.Purpose = r.str()
	m.Key = r.str()
	m.Reason = r.str()
	m.Msg = r.str()
}

// ErrorFrom classifies err into a wire error. Callers layering extra
// sentinel classes (core.ErrFeatureDisabled) adjust Kind afterwards.
func ErrorFrom(err error) *ErrorResp {
	var denied *acl.DeniedError
	if errors.As(err, &denied) {
		return &ErrorResp{
			Kind:    ErrDenied,
			Role:    denied.Actor.Role,
			Verb:    byte(denied.Verb),
			ID:      denied.Actor.ID,
			Purpose: denied.Actor.Purpose,
			Key:     denied.Key,
			Reason:  denied.Reason,
		}
	}
	var invalid *gdpr.ValidationError
	if errors.As(err, &invalid) {
		return &ErrorResp{Kind: ErrValidation, Key: invalid.Key, Reason: invalid.Reason}
	}
	return &ErrorResp{Kind: ErrGeneric, Msg: err.Error()}
}

// Err reconstructs the error value the server classified. ErrDenied and
// ErrValidation come back as their concrete types so errors.As works
// across the service boundary; ErrFeatureDisabled is restored by the
// remote client (which can name the core sentinel).
func (m *ErrorResp) Err() error {
	switch m.Kind {
	case ErrDenied:
		return &acl.DeniedError{
			Actor:  acl.Actor{Role: m.Role, ID: m.ID, Purpose: m.Purpose},
			Verb:   acl.Verb(m.Verb),
			Key:    m.Key,
			Reason: m.Reason,
		}
	case ErrValidation:
		return &gdpr.ValidationError{Key: m.Key, Reason: m.Reason}
	default:
		return errors.New(m.Msg)
	}
}

// Package remote is the client side of the GDPR service layer: a
// connection-pooled core.DB that executes every §3.3 query over the
// wire protocol against a server (internal/server, cmd/gdprserver).
//
// Because the client implements core.DB (and core.BatchCreator), the
// whole benchmark stack — the load phase, the Table 2a runner, the
// validate oracle, the experiments — runs over TCP unchanged; the
// compliance middleware stays server-side, so a remote client observes
// exactly the ACL filtering, redaction and audit behavior an embedded
// one does.
//
// Connections are bound to one GDPR role at handshake (the server
// enforces it), so the pool is keyed by role: a request acquires a
// connection for its actor's role, dialing lazily up to ConnsPerRole.
// Each connection pipelines: concurrent requests are written
// back-to-back and matched FIFO against the server's ordered responses,
// so a connection carries many in-flight operations without head-of-line
// waiting on the client side. Bulk loads ship one CreateBatch frame per
// batch — one round trip per 128 records, not per record.
package remote

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/acl"
	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/gdpr"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Config configures Dial.
type Config struct {
	// Addr is the server's TCP address (host:port).
	Addr string
	// Token authenticates the handshake when the server requires one.
	Token string
	// ConnsPerRole caps pooled connections per GDPR role (default 2).
	ConnsPerRole int
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.ConnsPerRole <= 0 {
		c.ConnsPerRole = 2
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	return c
}

// Client is a remote core.DB. It is safe for concurrent use.
type Client struct {
	cfg Config

	mu          sync.Mutex
	cond        *sync.Cond
	pools       map[acl.Role][]*conn
	rr          map[acl.Role]int
	dialing     map[acl.Role]int
	auditPolicy string // reported by the server in HelloOK
	closed      bool
}

// Dial connects to a GDPR server, verifying reachability and the auth
// token with one eager controller-role handshake.
func Dial(cfg Config) (*Client, error) {
	c := &Client{
		cfg:     cfg.withDefaults(),
		pools:   make(map[acl.Role][]*conn),
		rr:      make(map[acl.Role]int),
		dialing: make(map[acl.Role]int),
	}
	c.cond = sync.NewCond(&c.mu)
	if _, err := c.conn(acl.Controller); err != nil {
		return nil, err
	}
	return c, nil
}

// conn returns a pooled (or freshly dialed) connection bound to role,
// dropping broken connections from the pool as it finds them. Dialing
// happens with the client mutex released, so one slow (re)connect never
// stalls callers that have a live connection to use; live connections
// plus in-flight dials never exceed ConnsPerRole, and a caller finding
// an empty pool with the cap's worth of dials in flight waits for one
// to land instead of overshooting.
func (c *Client) conn(role acl.Role) (*conn, error) {
	c.mu.Lock()
	for {
		if c.closed {
			c.mu.Unlock()
			return nil, fmt.Errorf("remote: client closed")
		}
		pool := c.pools[role]
		live := pool[:0]
		for _, cn := range pool {
			if !cn.isBroken() {
				live = append(live, cn)
			}
		}
		c.pools[role] = live
		if len(live)+c.dialing[role] < c.cfg.ConnsPerRole {
			break // room under the cap: dial a new connection below
		}
		if len(live) > 0 {
			c.rr[role]++
			cn := live[c.rr[role]%len(live)]
			c.mu.Unlock()
			return cn, nil
		}
		c.cond.Wait()
	}
	c.dialing[role]++
	c.mu.Unlock()

	cn, err := c.dial(role)

	c.mu.Lock()
	c.dialing[role]--
	c.cond.Broadcast()
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	if c.closed {
		c.mu.Unlock()
		cn.shutdown()
		return nil, fmt.Errorf("remote: client closed")
	}
	c.pools[role] = append(c.pools[role], cn)
	c.mu.Unlock()
	return cn, nil
}

// dial establishes one role-bound connection.
func (c *Client) dial(role acl.Role) (*conn, error) {
	nc, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("remote: %w", err)
	}
	cn := &conn{
		nc: nc,
		br: bufio.NewReaderSize(nc, 64<<10),
		bw: bufio.NewWriterSize(nc, 64<<10),
	}
	hello := &wire.Hello{Version: wire.ProtocolVersion, Role: role, Token: c.cfg.Token}
	if err := cn.enc.WriteMessage(cn.bw, hello); err == nil {
		err = cn.bw.Flush()
	}
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("remote: handshake: %w", err)
	}
	nc.SetReadDeadline(time.Now().Add(c.cfg.DialTimeout))
	resp, err := cn.dec.ReadMessage(cn.br)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("remote: handshake: %w", err)
	}
	nc.SetReadDeadline(time.Time{})
	switch m := resp.(type) {
	case *wire.HelloOK:
		c.mu.Lock()
		c.auditPolicy = m.AuditPolicy
		c.mu.Unlock()
	case *wire.ErrorResp:
		nc.Close()
		return nil, fmt.Errorf("remote: handshake rejected: %w", m.Err())
	default:
		nc.Close()
		return nil, fmt.Errorf("remote: handshake: unexpected %v frame", resp.Op())
	}
	go cn.readLoop()
	return cn, nil
}

// call runs one request/response exchange on a connection bound to
// role, converting error frames back into typed error values.
func (c *Client) call(role acl.Role, req wire.Message) (wire.Message, error) {
	cn, err := c.conn(role)
	if err != nil {
		return nil, err
	}
	resp, err := cn.roundTrip(req)
	if err != nil {
		return nil, err
	}
	if e, ok := resp.(*wire.ErrorResp); ok {
		if e.Kind == wire.ErrFeatureDisabled {
			return nil, fmt.Errorf("remote: %w (%s)", core.ErrFeatureDisabled, e.Msg)
		}
		return nil, e.Err()
	}
	return resp, nil
}

// ServerAuditPolicy reports the audit append pipeline the server
// announced at handshake ("sync" | "batched" | "async"; empty when the
// server did not announce one).
func (c *Client) ServerAuditPolicy() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.auditPolicy
}

// ServerMetrics pulls the server's observability snapshot over the wire
// (the METRICS verb), so a remote benchmark reports the same engine and
// operation series an embedded one reads from the local registry.
// includeSlowlog asks for the server's slowlog ring too.
func (c *Client) ServerMetrics(includeSlowlog bool) (obs.Snapshot, error) {
	resp, err := c.call(acl.Controller, &wire.Metrics{Slowlog: includeSlowlog})
	if err != nil {
		return obs.Snapshot{}, err
	}
	m, ok := resp.(*wire.MetricsResp)
	if !ok {
		return obs.Snapshot{}, unexpected(resp)
	}
	return m.Snapshot(), nil
}

// Close releases every pooled connection.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.cond.Broadcast()
	var all []*conn
	for _, pool := range c.pools {
		all = append(all, pool...)
	}
	c.pools = nil
	c.mu.Unlock()
	for _, cn := range all {
		cn.shutdown()
	}
	return nil
}

// ---------------------------------------------------------------------------
// core.DB implementation

// CreateRecord implements core.DB.
func (c *Client) CreateRecord(a acl.Actor, rec gdpr.Record) error {
	resp, err := c.call(a.Role, &wire.CreateRecord{Actor: a, Rec: gdpr.Encode(rec)})
	if err != nil {
		return err
	}
	return expectAck(resp)
}

// CreateRecords implements core.BatchCreator: one frame and one round
// trip per batch; the server preserves the engine's native load shape.
func (c *Client) CreateRecords(a acl.Actor, recs []gdpr.Record) error {
	resp, err := c.call(a.Role, &wire.CreateBatch{Actor: a, Recs: wire.EncodeRecords(recs)})
	if err != nil {
		return err
	}
	return expectAck(resp)
}

// ReadData implements core.DB.
func (c *Client) ReadData(a acl.Actor, sel gdpr.Selector) ([]gdpr.Record, error) {
	resp, err := c.call(a.Role, &wire.ReadData{Actor: a, Sel: sel})
	if err != nil {
		return nil, err
	}
	return decodeRecordsResp(resp)
}

// ReadMetadata implements core.DB.
func (c *Client) ReadMetadata(a acl.Actor, sel gdpr.Selector) ([]gdpr.Record, error) {
	resp, err := c.call(a.Role, &wire.ReadMetadata{Actor: a, Sel: sel})
	if err != nil {
		return nil, err
	}
	return decodeRecordsResp(resp)
}

// UpdateData implements core.DB.
func (c *Client) UpdateData(a acl.Actor, key, data string) (int, error) {
	resp, err := c.call(a.Role, &wire.UpdateData{Actor: a, Key: key, Data: data})
	if err != nil {
		return 0, err
	}
	return expectCount(resp)
}

// UpdateMetadata implements core.DB.
func (c *Client) UpdateMetadata(a acl.Actor, sel gdpr.Selector, delta gdpr.Delta) (int, error) {
	resp, err := c.call(a.Role, &wire.UpdateMetadata{Actor: a, Sel: sel, Delta: delta})
	if err != nil {
		return 0, err
	}
	return expectCount(resp)
}

// DeleteRecord implements core.DB.
func (c *Client) DeleteRecord(a acl.Actor, sel gdpr.Selector) (int, error) {
	resp, err := c.call(a.Role, &wire.DeleteRecord{Actor: a, Sel: sel})
	if err != nil {
		return 0, err
	}
	return expectCount(resp)
}

// GetSystemLogs implements core.DB.
func (c *Client) GetSystemLogs(a acl.Actor, from, to time.Time) ([]audit.Entry, error) {
	resp, err := c.call(a.Role, &wire.GetLogs{Actor: a, From: from, To: to})
	if err != nil {
		return nil, err
	}
	m, ok := resp.(*wire.LogEntries)
	if !ok {
		return nil, unexpected(resp)
	}
	return m.Entries, nil
}

// GetSystemFeatures implements core.DB.
func (c *Client) GetSystemFeatures(a acl.Actor) (map[string]string, error) {
	resp, err := c.call(a.Role, &wire.GetFeatures{Actor: a})
	if err != nil {
		return nil, err
	}
	m, ok := resp.(*wire.Features)
	if !ok {
		return nil, unexpected(resp)
	}
	return m.Map(), nil
}

// VerifyDeletion implements core.DB.
func (c *Client) VerifyDeletion(a acl.Actor, keys []string) (int, error) {
	resp, err := c.call(a.Role, &wire.VerifyDeletion{Actor: a, Keys: keys})
	if err != nil {
		return 0, err
	}
	return expectCount(resp)
}

// SpaceUsage implements core.DB (a role-independent admin query; it
// rides a controller-bound connection).
func (c *Client) SpaceUsage() (core.SpaceUsage, error) {
	resp, err := c.call(acl.Controller, &wire.SpaceUsage{})
	if err != nil {
		return core.SpaceUsage{}, err
	}
	m, ok := resp.(*wire.Space)
	if !ok {
		return core.SpaceUsage{}, unexpected(resp)
	}
	return core.SpaceUsage{PersonalBytes: m.Personal, TotalBytes: m.Total}, nil
}

func expectAck(resp wire.Message) error {
	if _, ok := resp.(*wire.Ack); !ok {
		return unexpected(resp)
	}
	return nil
}

func expectCount(resp wire.Message) (int, error) {
	m, ok := resp.(*wire.Count)
	if !ok {
		return 0, unexpected(resp)
	}
	return int(m.N), nil
}

func decodeRecordsResp(resp wire.Message) ([]gdpr.Record, error) {
	m, ok := resp.(*wire.Records)
	if !ok {
		return nil, unexpected(resp)
	}
	if len(m.Recs) == 0 {
		return nil, nil
	}
	return wire.DecodeRecords(m.Recs)
}

func unexpected(resp wire.Message) error {
	return fmt.Errorf("remote: unexpected %v response", resp.Op())
}

var (
	_ core.DB           = (*Client)(nil)
	_ core.BatchCreator = (*Client)(nil)
)

// ---------------------------------------------------------------------------
// conn: one pipelined, role-bound connection

type result struct {
	msg wire.Message
	err error
}

// conn pipelines requests: writes are serialized under mu and enqueue a
// waiter; the read loop matches the server's ordered responses to
// waiters FIFO, so many operations can be in flight at once.
type conn struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer

	// Per-connection codec buffers, reused across frames: enc is only
	// touched under mu (roundTrip, dial), dec only by the readLoop
	// goroutine (dial hands it over before the loop starts).
	enc wire.Encoder
	dec wire.Decoder

	// dead mirrors broken != nil and is readable without mu, so the
	// pool's health checks never contend with a write stalled in
	// Flush under mu (which would stall acquisition across all roles).
	dead atomic.Bool

	mu      sync.Mutex
	pending []chan result
	broken  error
}

func (c *conn) isBroken() bool { return c.dead.Load() }

// failLocked marks the connection dead and answers every waiter.
// Callers hold c.mu.
func (c *conn) failLocked(err error) {
	if c.broken == nil {
		c.broken = err
		c.dead.Store(true)
		c.nc.Close()
	}
	for _, ch := range c.pending {
		ch <- result{err: c.broken}
	}
	c.pending = nil
}

func (c *conn) shutdown() {
	c.mu.Lock()
	c.failLocked(fmt.Errorf("remote: client closed"))
	c.mu.Unlock()
}

// send writes one request and registers its response future: the
// returned channel receives the order-matched response (or the
// connection's terminal error) exactly once. The streaming client uses
// it directly to keep several StreamNext exchanges in flight — ordinary
// pipelined requests from other goroutines interleave freely between
// them, because FIFO matching is global per connection.
func (c *conn) send(req wire.Message) (chan result, error) {
	ch := make(chan result, 1)
	c.mu.Lock()
	if c.broken != nil {
		err := c.broken
		c.mu.Unlock()
		return nil, err
	}
	err := c.enc.WriteMessage(c.bw, req)
	if err != nil {
		var fe *wire.FrameError
		if errors.As(err, &fe) {
			// Oversized request: nothing reached the wire, so the
			// connection is still good — fail only this call.
			c.mu.Unlock()
			return nil, err
		}
		c.failLocked(err)
		c.mu.Unlock()
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		c.failLocked(err)
		c.mu.Unlock()
		return nil, err
	}
	c.pending = append(c.pending, ch)
	c.mu.Unlock()
	return ch, nil
}

// roundTrip writes one request and waits for its (order-matched)
// response. Other goroutines may interleave requests on the same
// connection; responses cannot be misattributed because the server
// answers strictly in order.
func (c *conn) roundTrip(req wire.Message) (wire.Message, error) {
	ch, err := c.send(req)
	if err != nil {
		return nil, err
	}
	res := <-ch
	return res.msg, res.err
}

func (c *conn) readLoop() {
	for {
		msg, err := c.dec.ReadMessage(c.br)
		c.mu.Lock()
		if err != nil {
			c.failLocked(fmt.Errorf("remote: connection lost: %w", err))
			c.mu.Unlock()
			return
		}
		if len(c.pending) == 0 {
			c.failLocked(fmt.Errorf("remote: unsolicited %v frame", msg.Op()))
			c.mu.Unlock()
			return
		}
		ch := c.pending[0]
		c.pending = c.pending[1:]
		c.mu.Unlock()
		ch <- result{msg: msg}
	}
}

package remote_test

import (
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/difftest"
	"repro/internal/gdpr"
	"repro/internal/remote"
)

// The streaming legs of the network acceptance bar: the v4 cursor
// exchange (SELECT-STREAM / STREAM-NEXT / STREAM-CLOSE with pipelined
// credit) reassembled client-side must be observably identical to the
// materialized Records exchange — and to the embedded stack.

// openStreamingRemote serves a fresh embedded DB over localhost TCP and
// returns a client whose ReadData/ReadMetadata drain the streaming path.
func openStreamingRemote(chunk int) func(t *testing.T, engine string, sim *clock.Sim) core.DB {
	return func(t *testing.T, engine string, sim *clock.Sim) core.DB {
		t.Helper()
		cli := openRemote(t, engine, sim)
		return &remote.StreamingDB{Client: cli.(*remote.Client), Chunk: chunk}
	}
}

// TestRemoteStreamTranscriptByteIdenticalToEmbedded replays the
// differential mini-workload with every selector read served by the
// wire cursor exchange; the transcript must match the embedded
// materialized stack byte for byte, for both engines, at chunk sizes
// that force multi-chunk results.
func TestRemoteStreamTranscriptByteIdenticalToEmbedded(t *testing.T) {
	cfg := core.Config{Records: 240, Operations: 10, Threads: 2, Seed: 42}.WithDefaults()
	for _, engine := range []string{"redis", "redis-striped", "postgres"} {
		for _, chunk := range []int{1, 7, 0} {
			chunk := chunk
			t.Run(fmt.Sprintf("%s/chunk=%d", engine, chunk), func(t *testing.T) {
				run := func(open func(*testing.T, string, *clock.Sim) core.DB) []string {
					sim := clock.NewSim(time.Unix(1_500_000_000, 0))
					db := open(t, engine, sim)
					ds, _, err := core.Load(db, cfg, sim)
					if err != nil {
						t.Fatal(err)
					}
					return difftest.Transcript(t, db, ds, sim)
				}
				want := run(openEmbedded)
				got := run(openStreamingRemote(chunk))
				difftest.AssertEqual(t, "embedded", want, "remote-streamed", got)
			})
		}
	}
}

// TestRemoteValidateOracleOverStreamingClient runs the full validate
// oracle — every Table 2a workload's deterministic script — over the
// iterator client: each oracle read flows through SELECT-STREAM /
// STREAM-NEXT reassembly, and the correctness score must be 100%.
func TestRemoteValidateOracleOverStreamingClient(t *testing.T) {
	cfg := core.Config{Records: 240, Operations: 40, Threads: 2, Seed: 7}.WithDefaults()
	for _, engine := range []string{"redis", "postgres"} {
		for _, name := range core.WorkloadNames() {
			t.Run(engine+"/"+string(name), func(t *testing.T) {
				sim := clock.NewSim(time.Unix(1_500_000_000, 0))
				db := openStreamingRemote(5)(t, engine, sim)
				ds, _, err := core.Load(db, cfg, sim)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := core.Validate(db, ds, name, sim, diffComp.AccessControl)
				if err != nil {
					t.Fatal(err)
				}
				if rep.Score() != 100 {
					t.Fatalf("oracle over streaming client scored %.2f%% (%d/%d): %v",
						rep.Score(), rep.Matched, rep.Total, rep.Mismatches)
				}
			})
		}
	}
}

// TestRemoteStreamSharesConnectionWithPointOps drives a slow chunked
// stream while other goroutines hammer point reads through the same
// client; the credit-based exchange must interleave instead of
// head-of-line-blocking them, and the stream must still deliver every
// record exactly once.
func TestRemoteStreamSharesConnectionWithPointOps(t *testing.T) {
	sim := clock.NewSim(time.Unix(1_500_000_000, 0))
	cli := openRemote(t, "redis", sim)
	cfg := core.Config{Records: 300, Seed: 13}.WithDefaults()
	ds, _, err := core.Load(cli, cfg, sim)
	if err != nil {
		t.Fatal(err)
	}
	sr := cli.(core.StreamReader)
	reg := core.RegulatorActor()

	cur, err := sr.ReadMetadataStream(reg, gdpr.ByUser(ds.UserName(0)), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()

	// Concurrent point reads on the same pooled client while the stream
	// is consumed slowly.
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := (w*53 + i) % cfg.Records
				if _, err := cli.ReadMetadata(reg, gdpr.ByKey(ds.KeyAt(k))); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	seen := map[string]bool{}
	for {
		recs, err := cur.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if seen[r.Key] {
				t.Fatalf("record %q streamed twice", r.Key)
			}
			seen[r.Key] = true
		}
		time.Sleep(time.Millisecond) // keep the stream alive across the point-op burst
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("point op during stream: %v", err)
	}
	want, err := cli.ReadMetadata(reg, gdpr.ByUser(ds.UserName(0)))
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(want) || len(seen) == 0 {
		t.Fatalf("stream delivered %d records, want %d (>0)", len(seen), len(want))
	}
}

// TestRemoteStreamCloseMidStreamReleasesServerCursor: abandoning a
// stream client-side must release the server cursor (via STREAM-CLOSE)
// so the session's cursor budget is not consumed by dead iterators.
func TestRemoteStreamCloseMidStreamReleasesServerCursor(t *testing.T) {
	sim := clock.NewSim(time.Unix(1_500_000_000, 0))
	cli := openRemote(t, "redis", sim)
	cfg := core.Config{Records: 200, Seed: 21}.WithDefaults()
	ds, _, err := core.Load(cli, cfg, sim)
	if err != nil {
		t.Fatal(err)
	}
	sr := cli.(core.StreamReader)
	reg := core.RegulatorActor()
	// The server caps cursors per session at 16 by default; opening and
	// abandoning far more than that only works if Close releases them.
	for i := 0; i < 64; i++ {
		cur, err := sr.ReadMetadataStream(reg, gdpr.ByUser(ds.UserName(i%ds.Users)), 1)
		if err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
		if _, err := cur.Next(); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if err := cur.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

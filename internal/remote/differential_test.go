package remote_test

import (
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/difftest"
	"repro/internal/gdpr"
	"repro/internal/remote"
	"repro/internal/server"
)

// These tests are the acceptance bar for the network service layer: the
// stack behind a localhost-TCP connection must be observably identical
// to the embedded stack. Two forms:
//
//   - the difftest transcript (every §3.3 query family) must be
//     byte-identical embedded vs remote, for both engine models;
//   - the full validate-oracle pass (core.Validate, all four Table 2a
//     workloads) must produce identical correctness reports.
//
// Both legs share one simulated clock epoch, so the only variable is
// the service boundary itself.

var diffComp = core.Compliance{Logging: true, AccessControl: true, Strict: true, TimelyDeletion: true}

// openEmbeddedPolicy builds the embedded client for one engine model on
// sim with the given audit append pipeline.
func openEmbeddedPolicy(t *testing.T, engine string, sim *clock.Sim, policy audit.Pipeline) core.DB {
	t.Helper()
	var db core.DB
	var err error
	switch engine {
	case "redis":
		db, err = core.OpenRedis(core.RedisConfig{
			Dir: t.TempDir(), Compliance: diffComp, Clock: sim, DisableBackgroundExpiry: true,
			AuditPolicy: policy,
		})
	case "redis-striped":
		// The lock-striped kvstore profile with its staged group-commit
		// AOF; must be observably identical to "redis" over the wire.
		db, err = core.OpenRedis(core.RedisConfig{
			Dir: t.TempDir(), Compliance: diffComp, Clock: sim, DisableBackgroundExpiry: true,
			AuditPolicy: policy, KVStripes: 4,
		})
	case "postgres":
		db, err = core.OpenPostgres(core.PostgresConfig{
			Dir: t.TempDir(), Compliance: diffComp, Clock: sim, DisableTTLDaemon: true,
			AuditPolicy: policy,
		})
	default:
		t.Fatalf("unknown engine %q", engine)
	}
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func openEmbedded(t *testing.T, engine string, sim *clock.Sim) core.DB {
	t.Helper()
	return openEmbeddedPolicy(t, engine, sim, audit.PipeSync)
}

// openRemotePolicy serves a fresh embedded DB over localhost TCP and
// returns a connected client; the server announces the audit policy.
func openRemotePolicy(t *testing.T, engine string, sim *clock.Sim, policy audit.Pipeline) core.DB {
	t.Helper()
	hostDB := openEmbeddedPolicy(t, engine, sim, policy)
	srv := server.New(hostDB, server.Config{AuditPolicy: policy.String()})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err := remote.Dial(remote.Config{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	if got := cli.ServerAuditPolicy(); got != policy.String() {
		t.Fatalf("handshake announced audit policy %q, want %q", got, policy)
	}
	return cli
}

func openRemote(t *testing.T, engine string, sim *clock.Sim) core.DB {
	t.Helper()
	return openRemotePolicy(t, engine, sim, audit.PipeSync)
}

// TestRemoteTranscriptByteIdenticalToEmbedded replays the differential
// mini-workload embedded and over localhost TCP; the transcripts must
// be byte-identical for both engine models under every audit pipeline
// mode (the service boundary and the audit rebuild must both be
// observably free).
func TestRemoteTranscriptByteIdenticalToEmbedded(t *testing.T) {
	cfg := core.Config{Records: 240, Operations: 10, Threads: 2, Seed: 42}.WithDefaults()
	for _, engine := range []string{"redis", "redis-striped", "postgres"} {
		for _, policy := range []audit.Pipeline{audit.PipeSync, audit.PipeBatched, audit.PipeAsync} {
			t.Run(engine+"/"+policy.String(), func(t *testing.T) {
				run := func(open func(*testing.T, string, *clock.Sim, audit.Pipeline) core.DB) []string {
					sim := clock.NewSim(time.Unix(1_500_000_000, 0))
					db := open(t, engine, sim, policy)
					ds, _, err := core.Load(db, cfg, sim)
					if err != nil {
						t.Fatal(err)
					}
					return difftest.Transcript(t, db, ds, sim)
				}
				want := run(openEmbeddedPolicy)
				got := run(openRemotePolicy)
				difftest.AssertEqual(t, "embedded", want, "remote", got)
			})
		}
	}
}

// TestRemoteValidateOracleMatchesEmbedded runs the full single-threaded
// validate-oracle pass for every Table 2a workload, embedded and over
// the wire, and requires identical correctness reports.
func TestRemoteValidateOracleMatchesEmbedded(t *testing.T) {
	cfg := core.Config{Records: 240, Operations: 40, Threads: 2, Seed: 7}.WithDefaults()
	for _, engine := range []string{"redis", "redis-striped", "postgres"} {
		for _, name := range core.WorkloadNames() {
			t.Run(engine+"/"+string(name), func(t *testing.T) {
				validate := func(open func(*testing.T, string, *clock.Sim) core.DB) core.CorrectnessReport {
					sim := clock.NewSim(time.Unix(1_500_000_000, 0))
					db := open(t, engine, sim)
					ds, _, err := core.Load(db, cfg, sim)
					if err != nil {
						t.Fatal(err)
					}
					rep, err := core.Validate(db, ds, name, sim, diffComp.AccessControl)
					if err != nil {
						t.Fatal(err)
					}
					return rep
				}
				emb := validate(openEmbedded)
				rem := validate(openRemote)
				if emb.Total != rem.Total || emb.Matched != rem.Matched {
					t.Fatalf("reports diverged: embedded %d/%d, remote %d/%d\nembedded mismatches: %v\nremote mismatches: %v",
						emb.Matched, emb.Total, rem.Matched, rem.Total, emb.Mismatches, rem.Mismatches)
				}
				if emb.Score() != 100 {
					t.Fatalf("embedded oracle score %.2f%% — harness regression: %v", emb.Score(), emb.Mismatches)
				}
			})
		}
	}
}

// TestRemoteBatchLoadMatchesEmbeddedLoad pins that the batched wire
// load (CreateBatch frames) leaves the datastore in the same state as
// the embedded load path.
func TestRemoteBatchLoadMatchesEmbeddedLoad(t *testing.T) {
	cfg := core.Config{Records: 300, Operations: 10, Threads: 4, Seed: 3}.WithDefaults()
	count := func(open func(*testing.T, string, *clock.Sim) core.DB) (records int, space core.SpaceUsage) {
		sim := clock.NewSim(time.Unix(1_500_000_000, 0))
		db := open(t, "redis", sim)
		ds, _, err := core.Load(db, cfg, sim)
		if err != nil {
			t.Fatal(err)
		}
		// Count via per-user reads (covers every record exactly once).
		total := 0
		for u := 0; u < ds.Users; u++ {
			recs, err := db.ReadData(ds.CustomerActor(u), gdpr.ByUser(ds.UserName(u)))
			if err != nil {
				t.Fatal(err)
			}
			total += len(recs)
		}
		su, err := db.SpaceUsage()
		if err != nil {
			t.Fatal(err)
		}
		return total, su
	}
	embN, embSpace := count(openEmbedded)
	remN, remSpace := count(openRemote)
	if embN != remN || embN != cfg.Records {
		t.Fatalf("record counts diverged: embedded %d, remote %d, want %d", embN, remN, cfg.Records)
	}
	if embSpace != remSpace {
		t.Fatalf("space usage diverged: embedded %+v, remote %+v", embSpace, remSpace)
	}
}

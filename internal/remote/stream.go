// Streaming client: the iterator API over the v4 cursor exchange.
//
// A Stream pins one pooled connection and keeps up to StreamCredit
// StreamNext exchanges in flight (credit-based flow control): every
// credit is an ordinary pipelined request with its own in-order
// response, so the server never pushes an unsolicited frame, the
// client's FIFO response matching is untouched, and point operations
// from other goroutines interleave between chunks on the same
// connection — a big export no longer head-of-line-blocks them. Memory
// on both sides stays O(credit x chunk).
package remote

import (
	"fmt"
	"io"

	"repro/internal/acl"
	"repro/internal/core"
	"repro/internal/gdpr"
	"repro/internal/wire"
)

// StreamCredit is how many StreamNext exchanges a Stream keeps in
// flight. More credit hides round-trip latency behind chunk transfer;
// the server still materializes at most one chunk per credit.
const StreamCredit = 4

// ReadDataStream implements core.StreamReader over the wire: it opens a
// server-side cursor (SELECT-STREAM) and returns an iterator that pulls
// chunks with pipelined STREAM-NEXT exchanges. Compliance (ACL
// filtering, audit, redaction) runs server-side per chunk exactly as it
// does embedded.
func (c *Client) ReadDataStream(a acl.Actor, sel gdpr.Selector, chunk int) (core.RecordCursor, error) {
	return c.openStream(a, sel, chunk, false)
}

// ReadMetadataStream implements core.StreamReader over the wire with
// the READ-METADATA projection (Data redacted server-side).
func (c *Client) ReadMetadataStream(a acl.Actor, sel gdpr.Selector, chunk int) (core.RecordCursor, error) {
	return c.openStream(a, sel, chunk, true)
}

func (c *Client) openStream(a acl.Actor, sel gdpr.Selector, chunk int, meta bool) (core.RecordCursor, error) {
	cn, err := c.conn(a.Role)
	if err != nil {
		return nil, err
	}
	resp, err := cn.roundTrip(&wire.SelectStream{Actor: a, Sel: sel, Chunk: uint64(max(chunk, 0)), Meta: meta})
	if err != nil {
		return nil, err
	}
	if e, ok := resp.(*wire.ErrorResp); ok {
		return nil, errFromResp(e)
	}
	opened, ok := resp.(*wire.StreamOpened)
	if !ok {
		return nil, unexpected(resp)
	}
	s := &Stream{cn: cn, id: opened.ID}
	// Prime the credit window: the server starts materializing the first
	// chunks while this call returns.
	for i := 0; i < StreamCredit; i++ {
		if err := s.issue(); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// Stream is a remote RecordCursor. Not safe for concurrent use (the
// core.RecordCursor contract); the underlying connection still serves
// other goroutines' requests between chunks.
type Stream struct {
	cn       *conn
	id       uint64
	inflight []chan result
	done     bool // server finished the stream (Done chunk seen)
	closed   bool
	err      error
}

// issue sends one StreamNext and queues its response future.
func (s *Stream) issue() error {
	ch, err := s.cn.send(&wire.StreamNext{ID: s.id})
	if err != nil {
		return err
	}
	s.inflight = append(s.inflight, ch)
	return nil
}

// Next implements core.RecordCursor.
func (s *Stream) Next() ([]gdpr.Record, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.closed || (s.done && len(s.inflight) == 0) {
		return nil, io.EOF
	}
	for len(s.inflight) > 0 {
		ch := s.inflight[0]
		s.inflight = s.inflight[1:]
		res := <-ch
		if res.err != nil {
			return nil, s.fail(res.err)
		}
		switch m := res.msg.(type) {
		case *wire.ErrorResp:
			return nil, s.fail(errFromResp(m))
		case *wire.StreamChunk:
			if m.Done {
				// The server already released the cursor; later in-flight
				// credits answer Done too — keep draining them.
				s.done = true
				if len(m.Recs) == 0 {
					continue
				}
			} else if err := s.issue(); err != nil {
				// Keep the credit window full while the stream is live.
				return nil, s.fail(err)
			}
			if len(m.Recs) == 0 {
				continue
			}
			recs, err := wire.DecodeRecords(m.Recs)
			if err != nil {
				return nil, s.fail(err)
			}
			return recs, nil
		default:
			return nil, s.fail(unexpected(res.msg))
		}
	}
	return nil, io.EOF
}

// fail records a terminal error and abandons the stream. In-flight
// futures are drained so the connection's FIFO stays aligned for its
// other users — unless the connection itself died, in which case every
// future is already (or will be) answered by failLocked.
func (s *Stream) fail(err error) error {
	s.err = err
	s.drain()
	if !s.done && !s.cn.isBroken() {
		s.cn.roundTrip(&wire.StreamClose{ID: s.id})
	}
	s.done = true
	return err
}

func (s *Stream) drain() {
	for _, ch := range s.inflight {
		<-ch
	}
	s.inflight = nil
}

// Close implements core.RecordCursor: it drains the in-flight credits
// and releases the server-side cursor (STREAM-CLOSE) if the stream did
// not already finish. Safe to call after EOF and more than once.
func (s *Stream) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.drain()
	if s.err != nil || s.done || s.cn.isBroken() {
		return nil
	}
	resp, err := s.cn.roundTrip(&wire.StreamClose{ID: s.id})
	if err != nil {
		return err
	}
	if e, ok := resp.(*wire.ErrorResp); ok {
		return errFromResp(e)
	}
	return expectAck(resp)
}

// errFromResp converts an error frame to its typed error value (same
// classification call applies to unary responses).
func errFromResp(e *wire.ErrorResp) error {
	if e.Kind == wire.ErrFeatureDisabled {
		return fmt.Errorf("remote: %w (%s)", core.ErrFeatureDisabled, e.Msg)
	}
	return e.Err()
}

var _ core.StreamReader = (*Client)(nil)

// ---------------------------------------------------------------------------
// StreamingDB: the materialized API served by streaming

// StreamingDB is a core.DB view of a Client whose ReadData and
// ReadMetadata are served by fully consuming the streaming path instead
// of the one-shot Records exchange. The validate oracle runs over it to
// certify the iterator client end to end: every §3.3 read the oracle
// checks flows through SELECT-STREAM / STREAM-NEXT reassembly.
type StreamingDB struct {
	*Client
	// Chunk is the per-chunk record count requested from the server
	// (0 = server default).
	Chunk int
}

// ReadData implements core.DB by draining a data stream.
func (s *StreamingDB) ReadData(a acl.Actor, sel gdpr.Selector) ([]gdpr.Record, error) {
	cur, err := s.Client.ReadDataStream(a, sel, s.Chunk)
	if err != nil {
		return nil, err
	}
	return core.Drain(cur)
}

// ReadMetadata implements core.DB by draining a metadata stream.
func (s *StreamingDB) ReadMetadata(a acl.Actor, sel gdpr.Selector) ([]gdpr.Record, error) {
	cur, err := s.Client.ReadMetadataStream(a, sel, s.Chunk)
	if err != nil {
		return nil, err
	}
	return core.Drain(cur)
}

var _ core.DB = (*StreamingDB)(nil)

// Package transit is the data-in-transit encryption substrate. It plays the
// role Stunnel/TLS plays in the paper (§5: "for data in transit, we set up
// transport layer security using Stunnel"; PostgreSQL uses "SSL in
// verify-CA mode").
//
// The engines in this repository are embedded, so there is no real network
// hop; what the paper measures, however, is the steady-state record-layer
// cost of TLS — one symmetric encrypt on send and one decrypt on receive
// per operation (handshakes amortize to zero on long-lived benchmark
// connections). Channel reproduces exactly that: an AES-256-GCM record
// layer with sequence-numbered nonces, applied to every request and
// response payload that crosses the client/engine boundary.
package transit

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrAuth is returned when a record fails authentication or replay checks.
var ErrAuth = errors.New("transit: record authentication failed")

// Channel is one direction of an encrypted connection: the sender seals
// records, the receiver opens them. Records carry an explicit 8-byte
// sequence number (like the TLS record layer), authenticated as
// additional data. Channel is safe for concurrent use; sequence numbers
// are allocated atomically.
//
// Replay detection is optional: a single-stream channel (NewChannel)
// tracks received sequence numbers and rejects repeats, while a channel
// multiplexed across concurrent workers (NewChannelNoReplay, used by
// Pipe) skips the shared replay window — records arrive out of order by
// construction there, and the window's global lock would measure lock
// contention instead of the record-layer crypto the paper's encryption
// feature costs.
type Channel struct {
	aead cipher.AEAD
	seq  atomic.Uint64

	trackReplay bool
	mu          sync.Mutex
	received    map[uint64]bool // replay window for Open
	maxSeen     uint64
}

// NewChannel builds a single-stream channel with replay detection from a
// 16/24/32-byte key.
func NewChannel(key []byte) (*Channel, error) {
	c, err := NewChannelNoReplay(key)
	if err != nil {
		return nil, err
	}
	c.trackReplay = true
	c.received = make(map[uint64]bool)
	return c, nil
}

// NewChannelNoReplay builds a channel without the replay window; for use
// when records are multiplexed across concurrent callers.
func NewChannelNoReplay(key []byte) (*Channel, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("transit: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("transit: %w", err)
	}
	return &Channel{aead: aead}, nil
}

// Seal encrypts payload into a record: seq(8) || ciphertext. The sequence
// number doubles as the nonce suffix, so each record uses a distinct nonce.
func (c *Channel) Seal(payload []byte) []byte {
	seq := c.seq.Add(1)
	var nonce [12]byte
	binary.BigEndian.PutUint64(nonce[4:], seq)
	out := make([]byte, 8, 8+len(payload)+c.aead.Overhead())
	binary.BigEndian.PutUint64(out, seq)
	return c.aead.Seal(out, nonce[:], payload, out[:8])
}

// Open authenticates and decrypts a record produced by Seal with the same
// key. It rejects tampered records, and replayed sequence numbers when
// the channel tracks replays.
func (c *Channel) Open(record []byte) ([]byte, error) {
	if len(record) < 8+c.aead.Overhead() {
		return nil, fmt.Errorf("%w: short record", ErrAuth)
	}
	seq := binary.BigEndian.Uint64(record[:8])
	var nonce [12]byte
	binary.BigEndian.PutUint64(nonce[4:], seq)
	plain, err := c.aead.Open(nil, nonce[:], record[8:], record[:8])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrAuth, err)
	}
	if !c.trackReplay {
		return plain, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.received[seq] {
		return nil, fmt.Errorf("%w: replayed sequence %d", ErrAuth, seq)
	}
	c.received[seq] = true
	if seq > c.maxSeen {
		c.maxSeen = seq
	}
	// Bound the replay window so long runs don't grow without limit: once
	// we have seen a contiguous history far behind maxSeen, forget it.
	if len(c.received) > 1<<16 {
		cutoff := c.maxSeen - 1<<15
		for s := range c.received {
			if s < cutoff {
				delete(c.received, s)
			}
		}
	}
	return plain, nil
}

// Pipe is a bidirectional encrypted link: requests flow client→server and
// responses flow server→client, each on its own Channel (distinct keys,
// like TLS's per-direction keys).
type Pipe struct {
	c2s *Channel
	s2c *Channel
}

// NewPipe derives both directions from a master key. Pipe channels are
// multiplexed across concurrent client workers, so they skip the replay
// window (see Channel).
func NewPipe(master []byte) (*Pipe, error) {
	if len(master) == 0 {
		return nil, errors.New("transit: empty master key")
	}
	kc := deriveKey(master, "client-to-server")
	ks := deriveKey(master, "server-to-client")
	c2s, err := NewChannelNoReplay(kc)
	if err != nil {
		return nil, err
	}
	s2c, err := NewChannelNoReplay(ks)
	if err != nil {
		return nil, err
	}
	return &Pipe{c2s: c2s, s2c: s2c}, nil
}

func deriveKey(master []byte, label string) []byte {
	// Simple expand step: XOR-fold the label into a copy of the master key.
	key := make([]byte, 32)
	copy(key, master)
	for i := 0; i < len(key); i++ {
		key[i] ^= label[i%len(label)]
	}
	return key
}

// SendRequest seals a request payload for the server.
func (p *Pipe) SendRequest(payload []byte) []byte { return p.c2s.Seal(payload) }

// RecvRequest opens a request on the server side.
func (p *Pipe) RecvRequest(record []byte) ([]byte, error) { return p.c2s.Open(record) }

// SendResponse seals a response payload for the client.
func (p *Pipe) SendResponse(payload []byte) []byte { return p.s2c.Seal(payload) }

// RecvResponse opens a response on the client side.
func (p *Pipe) RecvResponse(record []byte) ([]byte, error) { return p.s2c.Open(record) }

// RoundTrip models one full operation: the request payload crosses the
// wire to the server and the response returns. It performs the two
// encryptions and two decryptions a TLS'd client/server pair performs per
// operation, and returns the response payload. This is the hook the
// engines call when encryption-in-transit is enabled.
func (p *Pipe) RoundTrip(request []byte, serve func(request []byte) []byte) ([]byte, error) {
	wire := p.SendRequest(request)
	req, err := p.RecvRequest(wire)
	if err != nil {
		return nil, err
	}
	resp := serve(req)
	wireResp := p.SendResponse(resp)
	return p.RecvResponse(wireResp)
}

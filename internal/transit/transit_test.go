package transit

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/securefs"
)

func newTestChannel(t *testing.T) *Channel {
	t.Helper()
	c, err := NewChannel(securefs.Key("transit-test"))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSealOpenRoundTrip(t *testing.T) {
	sender := newTestChannel(t)
	receiver := newTestChannel(t)
	for _, payload := range [][]byte{[]byte("GET key1"), {}, bytes.Repeat([]byte("z"), 4096)} {
		rec := sender.Seal(payload)
		got, err := receiver.Open(rec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("roundtrip mismatch: %q vs %q", got, payload)
		}
	}
}

func TestCiphertextHidesPlaintext(t *testing.T) {
	c := newTestChannel(t)
	rec := c.Seal([]byte("ssn=123-45-6789"))
	if bytes.Contains(rec, []byte("123-45-6789")) {
		t.Fatal("plaintext visible in record")
	}
}

func TestTamperDetected(t *testing.T) {
	s, r := newTestChannel(t), newTestChannel(t)
	rec := s.Seal([]byte("payload"))
	rec[len(rec)-1] ^= 1
	if _, err := r.Open(rec); !errors.Is(err, ErrAuth) {
		t.Fatalf("err = %v, want ErrAuth", err)
	}
}

func TestShortRecordRejected(t *testing.T) {
	c := newTestChannel(t)
	if _, err := c.Open([]byte("tiny")); !errors.Is(err, ErrAuth) {
		t.Fatalf("err = %v, want ErrAuth", err)
	}
}

func TestReplayRejected(t *testing.T) {
	s, r := newTestChannel(t), newTestChannel(t)
	rec := s.Seal([]byte("once"))
	if _, err := r.Open(rec); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Open(rec); !errors.Is(err, ErrAuth) {
		t.Fatalf("replay err = %v, want ErrAuth", err)
	}
}

func TestWrongKeyRejected(t *testing.T) {
	s, err := NewChannel(securefs.Key("a"))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewChannel(securefs.Key("b"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Open(s.Seal([]byte("x"))); !errors.Is(err, ErrAuth) {
		t.Fatalf("err = %v, want ErrAuth", err)
	}
}

func TestBadKeyLength(t *testing.T) {
	if _, err := NewChannel([]byte("short")); err == nil {
		t.Fatal("expected error")
	}
}

func TestSequenceNumbersDistinct(t *testing.T) {
	c := newTestChannel(t)
	a := c.Seal([]byte("same"))
	b := c.Seal([]byte("same"))
	if bytes.Equal(a, b) {
		t.Fatal("two seals of same payload identical — nonce reuse")
	}
}

func TestConcurrentSealersProduceOpenableRecords(t *testing.T) {
	s, r := newTestChannel(t), newTestChannel(t)
	const workers, per = 8, 200
	records := make(chan []byte, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				records <- s.Seal([]byte("m"))
			}
		}()
	}
	wg.Wait()
	close(records)
	n := 0
	for rec := range records {
		if _, err := r.Open(rec); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != workers*per {
		t.Fatalf("opened %d, want %d", n, workers*per)
	}
}

func TestPipeRoundTrip(t *testing.T) {
	p, err := NewPipe(securefs.Key("pipe"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := p.RoundTrip([]byte("GET k"), func(req []byte) []byte {
		if string(req) != "GET k" {
			t.Fatalf("server saw %q", req)
		}
		return []byte("VALUE v")
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "VALUE v" {
		t.Fatalf("resp = %q", resp)
	}
}

func TestPipeDirectionsAreIndependent(t *testing.T) {
	p, err := NewPipe(securefs.Key("pipe2"))
	if err != nil {
		t.Fatal(err)
	}
	// A request record must not open as a response.
	rec := p.SendRequest([]byte("req"))
	if _, err := p.RecvResponse(rec); !errors.Is(err, ErrAuth) {
		t.Fatalf("cross-direction open err = %v, want ErrAuth", err)
	}
}

func TestPipeEmptyMasterRejected(t *testing.T) {
	if _, err := NewPipe(nil); err == nil {
		t.Fatal("expected error for empty master key")
	}
}

func TestPipeManySequentialOps(t *testing.T) {
	p, err := NewPipe(securefs.Key("seq"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if _, err := p.RoundTrip([]byte{byte(i)}, func(b []byte) []byte { return b }); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	p, err := NewPipe(securefs.Key("prop"))
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		payload := make([]byte, r.Intn(1024))
		r.Read(payload)
		resp, err := p.RoundTrip(payload, func(b []byte) []byte {
			// Server echoes reversed.
			out := make([]byte, len(b))
			for i := range b {
				out[i] = b[len(b)-1-i]
			}
			return out
		})
		if err != nil {
			return false
		}
		for i := range payload {
			if resp[i] != payload[len(payload)-1-i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPipeRoundTrip128B(b *testing.B) {
	p, err := NewPipe(securefs.Key("bench"))
	if err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 128)
	echo := func(b []byte) []byte { return b }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.RoundTrip(payload, echo); err != nil {
			b.Fatal(err)
		}
	}
}

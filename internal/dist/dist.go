// Package dist provides the random-selection distributions the benchmark
// workloads draw keys and operations from, reimplementing the YCSB core
// generators (Cooper et al., SoCC '10): uniform, scrambled zipfian (the
// hotspot distribution YCSB popularized), latest (zipfian skew toward the
// most recently inserted records, workload D) and a weighted chooser for
// operation mixes.
//
// Generators are not safe for concurrent use; each worker goroutine owns
// its own generator seeded from its own *rand.Rand, which keeps runs
// deterministic per (seed, thread) without any locking on the hot path.
package dist

import (
	"math"
	"math/rand"
)

// Generator yields record indexes under some distribution.
type Generator interface {
	// Next returns the next index in [0, item count).
	Next() int64
}

// IntRange is a Generator over a growable key space: SetItemCount extends
// the range as the workload inserts new records (YCSB workloads D and E).
type IntRange interface {
	Generator
	// SetItemCount resizes the selection range to n items. Counts only
	// grow; a smaller or non-positive n is ignored.
	SetItemCount(n int64)
}

// ---------------------------------------------------------------------------
// Uniform

// Uniform selects uniformly from [0, n).
type Uniform struct {
	r *rand.Rand
	n int64
}

// NewUniform builds a uniform generator over [0, n); n is clamped to >= 1.
func NewUniform(r *rand.Rand, n int64) *Uniform {
	if n < 1 {
		n = 1
	}
	return &Uniform{r: r, n: n}
}

// Next implements Generator.
func (u *Uniform) Next() int64 { return u.r.Int63n(u.n) }

// SetItemCount implements IntRange.
func (u *Uniform) SetItemCount(n int64) {
	if n > u.n {
		u.n = n
	}
}

// ---------------------------------------------------------------------------
// Zipfian

// zipfianConstant is YCSB's default skew (theta).
const zipfianConstant = 0.99

// zipfian samples [0, items) with popularity ~ 1/rank^theta, item 0 the
// most popular. It is YCSB's ZipfianGenerator: the rejection-free inverse
// CDF of Gray et al. ("Quickly generating billion-record synthetic
// databases", SIGMOD '94), with the zeta normalization constant extended
// incrementally as the item count grows.
type zipfian struct {
	r          *rand.Rand
	items      int64
	theta      float64
	alpha      float64
	zetan      float64 // zeta(items, theta)
	zeta2theta float64 // zeta(2, theta)
	eta        float64
}

func newZipfian(r *rand.Rand, items int64) *zipfian {
	if items < 1 {
		items = 1
	}
	z := &zipfian{r: r, theta: zipfianConstant}
	z.zeta2theta = zetaRange(0, 2, z.theta)
	z.alpha = 1 / (1 - z.theta)
	z.grow(items)
	return z
}

// zetaRange returns sum_{i=lo+1..hi} 1/i^theta.
func zetaRange(lo, hi int64, theta float64) float64 {
	var sum float64
	for i := lo + 1; i <= hi; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// grow extends the distribution to n items, updating zeta incrementally.
func (z *zipfian) grow(n int64) {
	if n <= z.items {
		return
	}
	z.zetan += zetaRange(z.items, n, z.theta)
	z.items = n
	z.eta = (1 - math.Pow(2/float64(n), 1-z.theta)) / (1 - z.zeta2theta/z.zetan)
}

func (z *zipfian) Next() int64 {
	u := z.r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return int64(float64(z.items) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// ScrambledZipfian spreads a zipfian's popular items across the whole key
// space by hashing (YCSB's ScrambledZipfianGenerator): access frequency
// keeps the zipfian shape while hot keys land on uncorrelated indexes.
type ScrambledZipfian struct {
	z *zipfian
}

// NewScrambledZipfian builds a scrambled-zipfian generator over [0, n).
func NewScrambledZipfian(r *rand.Rand, n int64) *ScrambledZipfian {
	return &ScrambledZipfian{z: newZipfian(r, n)}
}

// Next implements Generator.
func (s *ScrambledZipfian) Next() int64 {
	return int64(fnv64(uint64(s.z.Next())) % uint64(s.z.items))
}

// SetItemCount implements IntRange.
func (s *ScrambledZipfian) SetItemCount(n int64) { s.z.grow(n) }

// fnv64 is FNV-1a over the 8 bytes of v, YCSB's key scrambler.
func fnv64(v uint64) uint64 {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime
		v >>= 8
	}
	return h
}

// ---------------------------------------------------------------------------
// Latest

// Latest skews selection toward the most recently inserted records
// (YCSB's SkewedLatestGenerator, workload D: "people care about the
// latest status updates"): index n-1 is the most popular.
type Latest struct {
	z *zipfian
}

// NewLatest builds a latest generator over [0, n).
func NewLatest(r *rand.Rand, n int64) *Latest {
	return &Latest{z: newZipfian(r, n)}
}

// Next implements Generator.
func (l *Latest) Next() int64 { return l.z.items - 1 - l.z.Next() }

// SetItemCount implements IntRange.
func (l *Latest) SetItemCount(n int64) { l.z.grow(n) }

// ---------------------------------------------------------------------------
// Weighted

// Weighted selects among items with the given relative weights — the
// operation-mix chooser behind every workload table.
type Weighted[T any] struct {
	r     *rand.Rand
	items []T
	cum   []float64 // cumulative weights
	total float64
}

// NewWeighted builds a weighted chooser. Non-positive weights make their
// item unselectable; items and weights must have equal length (callers
// validate; a mismatch panics like any index error would).
func NewWeighted[T any](r *rand.Rand, items []T, weights []float64) *Weighted[T] {
	w := &Weighted[T]{r: r, items: items, cum: make([]float64, len(items))}
	for i := range items {
		if weights[i] > 0 {
			w.total += weights[i]
		}
		w.cum[i] = w.total
	}
	return w
}

// Next returns one item drawn with probability proportional to its weight.
func (w *Weighted[T]) Next() T {
	u := w.r.Float64() * w.total
	for i, c := range w.cum {
		if u < c {
			return w.items[i]
		}
	}
	return w.items[len(w.items)-1]
}

package dist

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

const samples = 200_000

func draw(g Generator, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

func TestUniformShape(t *testing.T) {
	const items = 1000
	u := NewUniform(rand.New(rand.NewSource(1)), items)
	counts := make([]int, items)
	var sum float64
	for _, v := range draw(u, samples) {
		if v < 0 || v >= items {
			t.Fatalf("out of range: %d", v)
		}
		counts[v]++
		sum += float64(v)
	}
	// Mean of U[0, n) is (n-1)/2; allow 2% of n drift.
	mean := sum / samples
	if math.Abs(mean-(items-1)/2.0) > 0.02*items {
		t.Fatalf("uniform mean = %.1f", mean)
	}
	// No item should be wildly over-represented (expected 200 each).
	for i, c := range counts {
		if c > 4*samples/items {
			t.Fatalf("item %d drawn %d times", i, c)
		}
	}
}

func TestUniformGrowth(t *testing.T) {
	u := NewUniform(rand.New(rand.NewSource(1)), 1)
	for i := 0; i < 100; i++ {
		if v := u.Next(); v != 0 {
			t.Fatalf("single-item uniform returned %d", v)
		}
	}
	u.SetItemCount(50)
	seenHigh := false
	for i := 0; i < 1000; i++ {
		v := u.Next()
		if v < 0 || v >= 50 {
			t.Fatalf("out of range after grow: %d", v)
		}
		if v >= 25 {
			seenHigh = true
		}
	}
	if !seenHigh {
		t.Fatal("grown uniform never drew from upper half")
	}
	u.SetItemCount(10) // shrink ignored
	for i := 0; i < 100; i++ {
		if u.Next() >= 50 {
			t.Fatal("range exceeded after ignored shrink")
		}
	}
}

// zipfFreqs counts draw frequencies of the raw (unscrambled) zipfian.
func zipfFreqs(t *testing.T, items int64) []int {
	t.Helper()
	z := newZipfian(rand.New(rand.NewSource(7)), items)
	counts := make([]int, items)
	for i := 0; i < samples; i++ {
		v := z.Next()
		if v < 0 || v >= items {
			t.Fatalf("out of range: %d", v)
		}
		counts[v]++
	}
	return counts
}

func TestZipfianShape(t *testing.T) {
	const items = 1000
	counts := zipfFreqs(t, items)
	// Theoretical P(0) = 1/zeta(n); with theta=0.99, n=1000 that is
	// roughly 1/7.5 ≈ 13%. Pin it loosely.
	p0 := float64(counts[0]) / samples
	if p0 < 0.08 || p0 > 0.20 {
		t.Fatalf("P(rank 0) = %.3f, want ~0.13", p0)
	}
	// Popularity decays with rank: rank 0 ≫ rank 10 ≫ rank 100.
	if !(counts[0] > 2*counts[10] && counts[10] > 2*counts[100]) {
		t.Fatalf("zipf decay broken: c0=%d c10=%d c100=%d", counts[0], counts[10], counts[100])
	}
	// The head dominates: top 10 ranks should cover > 30% of draws.
	head := 0
	for _, c := range counts[:10] {
		head += c
	}
	if frac := float64(head) / samples; frac < 0.30 {
		t.Fatalf("top-10 mass = %.3f", frac)
	}
}

func TestScrambledZipfianSpreadsHotKeys(t *testing.T) {
	const items = 1000
	s := NewScrambledZipfian(rand.New(rand.NewSource(7)), items)
	counts := make([]int, items)
	for i := 0; i < samples; i++ {
		v := s.Next()
		if v < 0 || v >= items {
			t.Fatalf("out of range: %d", v)
		}
		counts[v]++
	}
	sorted := append([]int(nil), counts...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	// Same skew as the raw zipfian: the most popular key keeps its ~13%
	// mass after scrambling.
	if p := float64(sorted[0]) / samples; p < 0.08 || p > 0.20 {
		t.Fatalf("hottest key mass = %.3f", p)
	}
	// But the hot keys are spread: the top 5 keys by frequency must not
	// be the first 5 indexes.
	type kv struct{ idx, c int }
	var all []kv
	for i, c := range counts {
		all = append(all, kv{i, c})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].c > all[j].c })
	low := 0
	for _, e := range all[:5] {
		if e.idx < 10 {
			low++
		}
	}
	if low >= 3 {
		t.Fatalf("hot keys not scrambled: top-5 indexes %v", all[:5])
	}
}

func TestScrambledZipfianGrowth(t *testing.T) {
	s := NewScrambledZipfian(rand.New(rand.NewSource(3)), 100)
	s.SetItemCount(200)
	seen := false
	for i := 0; i < 20_000; i++ {
		v := s.Next()
		if v < 0 || v >= 200 {
			t.Fatalf("out of range after grow: %d", v)
		}
		if v >= 100 {
			seen = true
		}
	}
	if !seen {
		t.Fatal("grown scrambled zipfian never hit new range")
	}
}

func TestLatestSkewsToRecent(t *testing.T) {
	const items = 1000
	l := NewLatest(rand.New(rand.NewSource(5)), items)
	var newest, oldest int
	for i := 0; i < samples; i++ {
		v := l.Next()
		if v < 0 || v >= items {
			t.Fatalf("out of range: %d", v)
		}
		if v >= items-10 {
			newest++
		}
		if v < 10 {
			oldest++
		}
	}
	if newest < 20*oldest+1 {
		t.Fatalf("latest not skewed to recent: newest10=%d oldest10=%d", newest, oldest)
	}
	// After an insert, the newest index becomes reachable.
	l.SetItemCount(items + 1)
	hitNew := false
	for i := 0; i < 10_000; i++ {
		if l.Next() == items {
			hitNew = true
			break
		}
	}
	if !hitNew {
		t.Fatal("latest never selected the newly inserted item")
	}
}

func TestWeightedProportions(t *testing.T) {
	w := NewWeighted(rand.New(rand.NewSource(9)), []string{"a", "b", "c"}, []float64{70, 25, 5})
	counts := map[string]int{}
	for i := 0; i < samples; i++ {
		counts[w.Next()]++
	}
	for item, want := range map[string]float64{"a": 0.70, "b": 0.25, "c": 0.05} {
		got := float64(counts[item]) / samples
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("P(%s) = %.3f, want %.2f", item, got, want)
		}
	}
}

func TestWeightedZeroWeightUnselectable(t *testing.T) {
	w := NewWeighted(rand.New(rand.NewSource(2)), []int{1, 2, 3}, []float64{0, 50, 50})
	for i := 0; i < 10_000; i++ {
		if w.Next() == 1 {
			t.Fatal("zero-weight item selected")
		}
	}
}

func TestGeneratorsAreDeterministicPerSeed(t *testing.T) {
	a := NewScrambledZipfian(rand.New(rand.NewSource(42)), 500)
	b := NewScrambledZipfian(rand.New(rand.NewSource(42)), 500)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

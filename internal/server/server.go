// Package server turns any core.DB into a network datastore speaking
// the wire protocol: a TCP listener with one handler goroutine per
// connection, request pipelining with strictly ordered responses, and
// per-connection sessions bound to a GDPR role at handshake time.
//
// The service boundary sits above the compliance middleware: the server
// executes §3.3 queries against a core.Wrap'd DB, so access control,
// redaction, strict validation and audit logging all run server-side —
// a remote client can never skip them, which is the property the
// policy-compliant-storage line of work assumes of a storage service.
// (The narrower core.Engine contract cannot cross a wire at all: its
// Update method takes a mutation closure.)
//
// Pipelining: a per-connection reader goroutine decodes frames ahead of
// execution into a bounded queue while the handler executes requests in
// arrival order and writes responses through one buffered writer,
// flushing only when the queue runs dry — a pipelined burst of N
// requests costs one response flush, not N.
//
// Shutdown: Close stops accepting, wakes blocked readers, lets every
// already-received request finish and its response flush (graceful
// drain), then force-closes stragglers after DrainTimeout.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/acl"
	"repro/internal/core"
	"repro/internal/gdpr"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Config tunes a Server.
type Config struct {
	// Token, when non-empty, must match every client Hello.
	Token string
	// AuditPolicy names the audit append pipeline the hosted engine runs
	// ("sync" | "batched" | "async"); reported to clients in HelloOK so
	// remote measurements can record the audit configuration.
	AuditPolicy string
	// Pipeline is the per-connection request read-ahead depth (default 64).
	Pipeline int
	// DrainTimeout bounds how long Close waits for in-flight requests
	// before force-closing connections (default 5s).
	DrainTimeout time.Duration
	// HandshakeTimeout bounds the Hello exchange (default 10s).
	HandshakeTimeout time.Duration
	// Obs is the observability registry the server reports to and serves
	// over the METRICS verb (nil means obs.Default()). Tests inject
	// private registries here.
	Obs *obs.Registry
	// MaxCursors caps concurrently open streaming cursors per session
	// (default 16); SELECT-STREAM past the cap is refused with a
	// structured error, so one connection cannot pin unbounded
	// server-side iterator state.
	MaxCursors int
}

func (c Config) withDefaults() Config {
	if c.Pipeline <= 0 {
		c.Pipeline = 64
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 10 * time.Second
	}
	if c.MaxCursors <= 0 {
		c.MaxCursors = 16
	}
	return c
}

// Server serves the GDPR query interface over TCP. The Server does not
// own the DB: the caller closes it after Close returns.
type Server struct {
	db  core.DB
	bc  core.BatchCreator // non-nil when db bulk-creates
	cfg Config

	// Interned once at construction: the per-frame path must not pay a
	// map lookup. mDepth is observed at dequeue, so its distribution is
	// the read-ahead the pipeline actually achieved (1 = no pipelining).
	obs      *obs.Registry
	mFrames  *obs.Counter
	mConns   *obs.Gauge
	mAccept  *obs.Counter
	mDepth   *obs.Histogram
	mStreams *obs.Counter
	mCursors *obs.Gauge

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	quit   chan struct{}
	closed bool
	wg     sync.WaitGroup
}

// New wraps db in a wire-protocol server.
func New(db core.DB, cfg Config) *Server {
	s := &Server{
		db:    db,
		cfg:   cfg.withDefaults(),
		conns: make(map[net.Conn]struct{}),
		quit:  make(chan struct{}),
	}
	s.bc, _ = db.(core.BatchCreator)
	s.obs = s.cfg.Obs
	if s.obs == nil {
		s.obs = obs.Default()
	}
	s.mFrames = s.obs.Counter("server_frames_total")
	s.mConns = s.obs.Gauge("server_connections")
	s.mAccept = s.obs.Counter("server_connections_total")
	s.mDepth = s.obs.Histogram("server_pipeline_depth")
	s.mStreams = s.obs.Counter("server_streams_total")
	s.mCursors = s.obs.Gauge("server_cursors_open")
	return s
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and
// serves in a background goroutine, returning the bound address. A
// runtime accept failure (e.g. fd exhaustion) is logged — the process
// must not look healthy while the accept loop is dead.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		if err := s.Serve(ln); err != nil {
			log.Printf("server: accept loop failed: %v", err)
		}
	}()
	return ln.Addr().String(), nil
}

// Serve accepts connections on ln until Close. It returns nil after a
// graceful Close, the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("server: already closed")
	}
	if s.ln != nil {
		s.mu.Unlock()
		return fmt.Errorf("server: already serving")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return nil
			default:
				return err
			}
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.conns[nc] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(nc)
	}
}

// Addr returns the listening address (after Serve or Start).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close drains the server: no new connections, blocked readers woken,
// every request already received is executed and its response flushed,
// then connections close. Stragglers are cut after DrainTimeout.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.quit)
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
		s.mu.Lock()
		for nc := range s.conns {
			nc.Close()
		}
		s.mu.Unlock()
		<-done
	}
	return nil
}

// handleConn runs one connection: handshake, then the pipelined
// request/response loop.
func (s *Server) handleConn(nc net.Conn) {
	connDone := make(chan struct{})
	defer func() {
		close(connDone)
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
		nc.Close()
		s.wg.Done()
	}()
	// Wake a blocked frame read when the server drains. The deadline is
	// re-armed until the connection exits: a one-shot set could race the
	// handshake's deadline clearing and leave the reader blocked for
	// the whole DrainTimeout.
	go func() {
		select {
		case <-s.quit:
			for {
				nc.SetReadDeadline(time.Now())
				select {
				case <-connDone:
					return
				case <-time.After(50 * time.Millisecond):
				}
			}
		case <-connDone:
		}
	}()

	br := bufio.NewReaderSize(nc, 64<<10)
	bw := bufio.NewWriterSize(nc, 64<<10)
	// One codec pair per connection: the reader goroutine owns dec, the
	// handler loop owns enc, so every frame after the handshake reuses
	// the same two buffers instead of allocating per message.
	var dec wire.Decoder
	var enc wire.Encoder
	role, ok := s.handshake(nc, br, bw, &dec, &enc)
	if !ok {
		return
	}
	s.mAccept.Inc()
	s.mConns.Add(1)
	defer s.mConns.Add(-1)

	// The session's streaming cursor table lives (and dies) with the
	// handler: whatever the client leaves open — clean disconnect, drain,
	// or a killed connection — is reaped here, so cursors never outlive
	// their session.
	sess := &session{cursors: make(map[uint64]core.RecordCursor)}
	defer func() {
		n := sess.closeAll()
		s.mCursors.Add(-int64(n))
	}()

	requests := make(chan wire.Message, s.cfg.Pipeline)
	go func() {
		defer close(requests)
		for {
			m, err := dec.ReadMessage(br)
			if err != nil {
				return
			}
			select {
			case requests <- m:
			case <-connDone:
				// The handler exited (write error) with the queue full;
				// without this arm the send would block forever and leak
				// this goroutine.
				return
			}
		}
	}()
	for m := range requests {
		s.mFrames.Inc()
		// Depth includes the request just taken: 1 means the client was
		// not pipelining, Pipeline+1 means the read-ahead queue was full.
		s.mDepth.Observe(int64(len(requests)) + 1)
		resp := s.execute(role, sess, m)
		if err := enc.WriteMessage(bw, resp); err != nil {
			var fe *wire.FrameError
			if !errors.As(err, &fe) {
				return
			}
			// The response outgrew the frame limit (nothing was written):
			// answer with a structured error instead of killing the
			// session.
			over := &wire.ErrorResp{Kind: wire.ErrGeneric, Msg: err.Error()}
			if err := enc.WriteMessage(bw, over); err != nil {
				return
			}
		}
		// Flush only when the pipeline runs dry: a burst of N pipelined
		// requests costs one flush.
		if len(requests) == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
	bw.Flush()
}

// handshake runs the Hello exchange and returns the session role. It
// runs before the reader goroutine starts, so it may use both codec
// halves sequentially.
func (s *Server) handshake(nc net.Conn, br *bufio.Reader, bw *bufio.Writer, dec *wire.Decoder, enc *wire.Encoder) (acl.Role, bool) {
	reject := func(reason string) (acl.Role, bool) {
		enc.WriteMessage(bw, &wire.ErrorResp{Kind: wire.ErrGeneric, Msg: "server: " + reason})
		bw.Flush()
		return 0, false
	}
	nc.SetReadDeadline(time.Now().Add(s.cfg.HandshakeTimeout))
	msg, err := dec.ReadMessage(br)
	if err != nil {
		return 0, false
	}
	hello, ok := msg.(*wire.Hello)
	if !ok {
		return reject(fmt.Sprintf("expected hello, got %v", msg.Op()))
	}
	if hello.Version != wire.ProtocolVersion {
		return reject(fmt.Sprintf("protocol version %d not supported (want %d)", hello.Version, wire.ProtocolVersion))
	}
	if s.cfg.Token != "" && hello.Token != s.cfg.Token {
		return reject("bad auth token")
	}
	if hello.Role < acl.Controller || hello.Role > acl.Regulator {
		return reject(fmt.Sprintf("unknown GDPR role %d", hello.Role))
	}
	nc.SetReadDeadline(time.Time{})
	if err := enc.WriteMessage(bw, &wire.HelloOK{Version: wire.ProtocolVersion, AuditPolicy: s.cfg.AuditPolicy}); err != nil {
		return 0, false
	}
	if err := bw.Flush(); err != nil {
		return 0, false
	}
	return hello.Role, true
}

// session is per-connection handler state: the open streaming cursors,
// keyed by the id StreamOpened handed the client. Owned by the handler
// goroutine alone (requests execute in arrival order), so no lock.
type session struct {
	cursors map[uint64]core.RecordCursor
	nextID  uint64
}

// closeAll reaps every open cursor and reports how many there were.
func (ss *session) closeAll() int {
	n := len(ss.cursors)
	for id, cur := range ss.cursors {
		cur.Close()
		delete(ss.cursors, id)
	}
	return n
}

// execute runs one request against the compliance-wrapped DB and shapes
// the response. It never returns nil.
func (s *Server) execute(role acl.Role, sess *session, msg wire.Message) wire.Message {
	fail := func(err error) wire.Message {
		resp := wire.ErrorFrom(err)
		if errors.Is(err, core.ErrFeatureDisabled) {
			resp.Kind = wire.ErrFeatureDisabled
		}
		return resp
	}
	// The session was authenticated as one GDPR role; requests may not
	// act as another (a customer connection cannot issue controller
	// queries by lying in the actor field). Actor *identity* within the
	// role is asserted by the client, exactly as the embedded client
	// stubs trust in-process actor values — per-principal authentication
	// would sit in the handshake, not here.
	checkActor := func(a acl.Actor) error {
		if a.Role != role {
			return fmt.Errorf("server: request actor role %s does not match session role %s", a.Role, role)
		}
		return nil
	}
	switch m := msg.(type) {
	case *wire.CreateRecord:
		if err := checkActor(m.Actor); err != nil {
			return fail(err)
		}
		rec, err := gdpr.Decode(m.Rec)
		if err != nil {
			return fail(err)
		}
		if err := s.db.CreateRecord(m.Actor, rec); err != nil {
			return fail(err)
		}
		return &wire.Ack{}

	case *wire.CreateBatch:
		if err := checkActor(m.Actor); err != nil {
			return fail(err)
		}
		recs, err := wire.DecodeRecords(m.Recs)
		if err != nil {
			return fail(err)
		}
		// The engine keeps its native load shape: clients with a bulk
		// path (the PostgreSQL model, shard routers) ingest the batch in
		// one call; the Redis model inserts record by record, preserving
		// the paper's one-command-per-record profile server-side.
		if s.bc != nil {
			err = s.bc.CreateRecords(m.Actor, recs)
		} else {
			for _, rec := range recs {
				if err = s.db.CreateRecord(m.Actor, rec); err != nil {
					break
				}
			}
		}
		if err != nil {
			return fail(err)
		}
		return &wire.Ack{}

	case *wire.ReadData:
		if err := checkActor(m.Actor); err != nil {
			return fail(err)
		}
		recs, err := s.db.ReadData(m.Actor, m.Sel)
		if err != nil {
			return fail(err)
		}
		return &wire.Records{Recs: wire.EncodeRecords(recs)}

	case *wire.ReadMetadata:
		if err := checkActor(m.Actor); err != nil {
			return fail(err)
		}
		recs, err := s.db.ReadMetadata(m.Actor, m.Sel)
		if err != nil {
			return fail(err)
		}
		return &wire.Records{Recs: wire.EncodeRecords(recs)}

	case *wire.UpdateData:
		if err := checkActor(m.Actor); err != nil {
			return fail(err)
		}
		n, err := s.db.UpdateData(m.Actor, m.Key, m.Data)
		if err != nil {
			return fail(err)
		}
		return &wire.Count{N: int64(n)}

	case *wire.UpdateMetadata:
		if err := checkActor(m.Actor); err != nil {
			return fail(err)
		}
		n, err := s.db.UpdateMetadata(m.Actor, m.Sel, m.Delta)
		if err != nil {
			return fail(err)
		}
		return &wire.Count{N: int64(n)}

	case *wire.DeleteRecord:
		if err := checkActor(m.Actor); err != nil {
			return fail(err)
		}
		n, err := s.db.DeleteRecord(m.Actor, m.Sel)
		if err != nil {
			return fail(err)
		}
		return &wire.Count{N: int64(n)}

	case *wire.GetLogs:
		if err := checkActor(m.Actor); err != nil {
			return fail(err)
		}
		entries, err := s.db.GetSystemLogs(m.Actor, m.From, m.To)
		if err != nil {
			return fail(err)
		}
		return &wire.LogEntries{Entries: entries}

	case *wire.GetFeatures:
		if err := checkActor(m.Actor); err != nil {
			return fail(err)
		}
		f, err := s.db.GetSystemFeatures(m.Actor)
		if err != nil {
			return fail(err)
		}
		return wire.FeaturesFromMap(f)

	case *wire.VerifyDeletion:
		if err := checkActor(m.Actor); err != nil {
			return fail(err)
		}
		n, err := s.db.VerifyDeletion(m.Actor, m.Keys)
		if err != nil {
			return fail(err)
		}
		return &wire.Count{N: int64(n)}

	case *wire.SpaceUsage:
		su, err := s.db.SpaceUsage()
		if err != nil {
			return fail(err)
		}
		return &wire.Space{Personal: su.PersonalBytes, Total: su.TotalBytes}

	case *wire.Metrics:
		// Introspection, not data access: the snapshot carries series
		// names, counts and latencies — no record payloads — so, like
		// SpaceUsage, any authenticated session may pull it.
		return wire.MetricsFromSnapshot(s.obs.Snapshot(m.Slowlog))

	case *wire.SelectStream:
		if err := checkActor(m.Actor); err != nil {
			return fail(err)
		}
		if len(sess.cursors) >= s.cfg.MaxCursors {
			return fail(fmt.Errorf("server: too many open cursors (max %d)", s.cfg.MaxCursors))
		}
		// Clamp the requested chunk at execution time rather than in the
		// codec (the frame stays canonical): maxStreamChunk keeps any
		// honest chunk of records inside one response frame.
		chunk := int(min(m.Chunk, maxStreamChunk))
		cur, err := s.openCursor(m.Actor, m.Sel, chunk, m.Meta)
		if err != nil {
			return fail(err)
		}
		sess.nextID++
		id := sess.nextID
		sess.cursors[id] = cur
		s.mStreams.Inc()
		s.mCursors.Add(1)
		return &wire.StreamOpened{ID: id}

	case *wire.StreamNext:
		cur, ok := sess.cursors[m.ID]
		if !ok {
			// Unknown or already-finished cursor: answer Done instead of
			// erroring, so a StreamNext racing the stream's natural end
			// (or a reap) resolves cleanly.
			return &wire.StreamChunk{ID: m.ID, Done: true}
		}
		recs, err := cur.Next()
		if err == io.EOF {
			cur.Close()
			delete(sess.cursors, m.ID)
			s.mCursors.Add(-1)
			return &wire.StreamChunk{ID: m.ID, Done: true}
		}
		if err != nil {
			cur.Close()
			delete(sess.cursors, m.ID)
			s.mCursors.Add(-1)
			return fail(err)
		}
		return &wire.StreamChunk{ID: m.ID, Recs: wire.EncodeRecords(recs)}

	case *wire.StreamClose:
		if cur, ok := sess.cursors[m.ID]; ok {
			cur.Close()
			delete(sess.cursors, m.ID)
			s.mCursors.Add(-1)
		}
		return &wire.Ack{}

	default:
		return fail(fmt.Errorf("server: unexpected %v frame", msg.Op()))
	}
}

// maxStreamChunk bounds the records per StreamChunk frame. 4096 records
// of the benchmark's ~1-4KB payloads stay well inside MaxFrameSize; an
// oversized chunk of unusually fat records still degrades cleanly via
// the handler's structured-error fallback.
const maxStreamChunk = 4096

// openCursor builds the session cursor behind SELECT-STREAM: the DB's
// native streaming read when it implements core.StreamReader (the
// middleware does), otherwise — the materializing ablation, selected by
// hosting a DB without streaming support — a one-shot ReadData chunked
// through a SliceCursor. Compliance runs server-side on both paths.
func (s *Server) openCursor(a acl.Actor, sel gdpr.Selector, chunk int, meta bool) (core.RecordCursor, error) {
	if sr, ok := s.db.(core.StreamReader); ok {
		if meta {
			return sr.ReadMetadataStream(a, sel, chunk)
		}
		return sr.ReadDataStream(a, sel, chunk)
	}
	var recs []gdpr.Record
	var err error
	if meta {
		recs, err = s.db.ReadMetadata(a, sel)
	} else {
		recs, err = s.db.ReadData(a, sel)
	}
	if err != nil {
		return nil, err
	}
	return core.SliceCursor(recs, chunk), nil
}

package server

import (
	"testing"
	"time"

	"repro/internal/acl"
	"repro/internal/core"
	"repro/internal/gdpr"
	"repro/internal/obs"
	"repro/internal/wire"
)

// These tests exercise the v4 streaming cursor exchange at the wire
// level: SELECT-STREAM opens a server-side cursor bound to the session,
// STREAM-NEXT pulls one chunk per exchange, STREAM-CLOSE (or the
// session ending, however it ends) releases it. The hygiene properties
// — cap, reap on disconnect, unknown-cursor Done — are the regression
// bar for "one connection cannot pin unbounded server-side state".

// loadServerRecords creates n controller records through the DB.
func loadServerRecords(t *testing.T, db core.DB, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := db.CreateRecord(core.ControllerActor(), testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStreamExchangeRoundTrip drives one full stream over a raw
// connection: every record comes back exactly once, no chunk exceeds
// the requested size, and the final exchange answers Done.
func TestStreamExchangeRoundTrip(t *testing.T) {
	db := openTestDB(t)
	const n = 25
	loadServerRecords(t, db, n)
	_, addr := startServer(t, db, Config{})

	c := dialRaw(t, addr)
	if _, ok := c.hello(acl.Controller, "").(*wire.HelloOK); !ok {
		t.Fatal("handshake failed")
	}
	const chunk = 4
	c.send(&wire.SelectStream{Actor: core.ControllerActor(), Sel: gdpr.ByUser("neo"), Chunk: chunk})
	opened, ok := c.recv().(*wire.StreamOpened)
	if !ok {
		t.Fatalf("SELECT-STREAM not answered with StreamOpened")
	}
	seen := map[string]bool{}
	for {
		c.send(&wire.StreamNext{ID: opened.ID})
		m, ok := c.recv().(*wire.StreamChunk)
		if !ok {
			t.Fatalf("STREAM-NEXT answered with %T", m)
		}
		if len(m.Recs) > chunk {
			t.Fatalf("chunk of %d records exceeds requested %d", len(m.Recs), chunk)
		}
		for _, enc := range m.Recs {
			rec, err := gdpr.Decode(enc)
			if err != nil {
				t.Fatal(err)
			}
			if seen[rec.Key] {
				t.Fatalf("record %q delivered twice", rec.Key)
			}
			seen[rec.Key] = true
		}
		if m.Done {
			break
		}
	}
	if len(seen) != n {
		t.Fatalf("stream delivered %d records, want %d", len(seen), n)
	}
	// The cursor is gone: another StreamNext answers Done, not an error.
	c.send(&wire.StreamNext{ID: opened.ID})
	if m, ok := c.recv().(*wire.StreamChunk); !ok || !m.Done {
		t.Fatalf("StreamNext after Done answered %v", m)
	}
}

// TestStreamCursorsReapedOnDisconnect is the leak regression test: a
// client that opens cursors and vanishes without closing them must not
// leave server-side cursor state behind — the session reaps them and
// the server_cursors_open gauge returns to zero.
func TestStreamCursorsReapedOnDisconnect(t *testing.T) {
	reg := obs.NewRegistry(nil)
	db := openTestDB(t)
	loadServerRecords(t, db, 40)
	_, addr := startServer(t, db, Config{Obs: reg})

	c := dialRaw(t, addr)
	if _, ok := c.hello(acl.Controller, "").(*wire.HelloOK); !ok {
		t.Fatal("handshake failed")
	}
	const cursors = 5
	for i := 0; i < cursors; i++ {
		c.send(&wire.SelectStream{Actor: core.ControllerActor(), Sel: gdpr.ByUser("neo"), Chunk: 2})
		if _, ok := c.recv().(*wire.StreamOpened); !ok {
			t.Fatalf("cursor %d not opened", i)
		}
	}
	if got := reg.Snapshot(false).Gauge("server_cursors_open"); got != cursors {
		t.Fatalf("server_cursors_open = %d with %d cursors held", got, cursors)
	}
	// Vanish mid-stream: no StreamClose, just a dead TCP connection.
	c.nc.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := reg.Snapshot(false).Gauge("server_cursors_open"); got == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server_cursors_open still %d after disconnect — cursors leaked",
				reg.Snapshot(false).Gauge("server_cursors_open"))
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The engine survived the reap: a fresh session streams fine.
	c2 := dialRaw(t, addr)
	if _, ok := c2.hello(acl.Controller, "").(*wire.HelloOK); !ok {
		t.Fatal("handshake failed after reap")
	}
	c2.send(&wire.SelectStream{Actor: core.ControllerActor(), Sel: gdpr.ByUser("neo"), Chunk: 0})
	if _, ok := c2.recv().(*wire.StreamOpened); !ok {
		t.Fatal("stream after reap failed")
	}
}

// TestStreamCursorCap pins the per-session cursor cap: SELECT-STREAM
// past MaxCursors is refused with a structured error, and closing one
// cursor frees the slot.
func TestStreamCursorCap(t *testing.T) {
	db := openTestDB(t)
	loadServerRecords(t, db, 10)
	_, addr := startServer(t, db, Config{MaxCursors: 2})

	c := dialRaw(t, addr)
	if _, ok := c.hello(acl.Controller, "").(*wire.HelloOK); !ok {
		t.Fatal("handshake failed")
	}
	open := func() *wire.StreamOpened {
		c.send(&wire.SelectStream{Actor: core.ControllerActor(), Sel: gdpr.ByUser("neo"), Chunk: 2})
		m, _ := c.recv().(*wire.StreamOpened)
		return m
	}
	first := open()
	if first == nil || open() == nil {
		t.Fatal("cursors under the cap refused")
	}
	c.send(&wire.SelectStream{Actor: core.ControllerActor(), Sel: gdpr.ByUser("neo"), Chunk: 2})
	if _, ok := c.recv().(*wire.ErrorResp); !ok {
		t.Fatal("third cursor accepted past MaxCursors=2")
	}
	c.send(&wire.StreamClose{ID: first.ID})
	if _, ok := c.recv().(*wire.Ack); !ok {
		t.Fatal("StreamClose not acked")
	}
	if open() == nil {
		t.Fatal("cursor slot not freed by StreamClose")
	}
}

// TestStreamNextUnknownCursorAnswersDone: a StreamNext racing the
// stream's natural end (the server already deleted the cursor) must
// resolve cleanly as Done, never an error.
func TestStreamNextUnknownCursorAnswersDone(t *testing.T) {
	db := openTestDB(t)
	_, addr := startServer(t, db, Config{})

	c := dialRaw(t, addr)
	if _, ok := c.hello(acl.Controller, "").(*wire.HelloOK); !ok {
		t.Fatal("handshake failed")
	}
	c.send(&wire.StreamNext{ID: 424242})
	m, ok := c.recv().(*wire.StreamChunk)
	if !ok || !m.Done || len(m.Recs) != 0 {
		t.Fatalf("unknown-cursor StreamNext answered %v, want empty Done chunk", m)
	}
	c.send(&wire.StreamClose{ID: 424242})
	if _, ok := c.recv().(*wire.Ack); !ok {
		t.Fatal("unknown-cursor StreamClose not acked")
	}
}

// TestStreamInterleavesWithPointReads pins the no-head-of-line-blocking
// property the cursor design exists for: point GETs pipelined between
// STREAM-NEXT exchanges on the same connection are answered in order,
// between chunks, while the stream is live.
func TestStreamInterleavesWithPointReads(t *testing.T) {
	db := openTestDB(t)
	const n = 20
	loadServerRecords(t, db, n)
	_, addr := startServer(t, db, Config{})

	c := dialRaw(t, addr)
	if _, ok := c.hello(acl.Controller, "").(*wire.HelloOK); !ok {
		t.Fatal("handshake failed")
	}
	c.send(&wire.SelectStream{Actor: core.ControllerActor(), Sel: gdpr.ByUser("neo"), Chunk: 3})
	opened, ok := c.recv().(*wire.StreamOpened)
	if !ok {
		t.Fatal("stream not opened")
	}
	// One pipelined burst: chunk, GET, chunk, GET, ... The server must
	// answer strictly in order — each GET between two chunk responses.
	const rounds = 4
	for i := 0; i < rounds; i++ {
		c.send(&wire.StreamNext{ID: opened.ID})
		c.send(&wire.ReadData{Actor: core.ControllerActor(), Sel: gdpr.ByKey(testRecord(i).Key)})
	}
	streamed := 0
	for i := 0; i < rounds; i++ {
		chunkMsg, ok := c.recv().(*wire.StreamChunk)
		if !ok {
			t.Fatalf("round %d: expected StreamChunk", i)
		}
		streamed += len(chunkMsg.Recs)
		get, ok := c.recv().(*wire.Records)
		if !ok || len(get.Recs) != 1 {
			t.Fatalf("round %d: point GET not answered between chunks: %v", i, get)
		}
		rec, err := gdpr.Decode(get.Recs[0])
		if err != nil || rec.Key != testRecord(i).Key {
			t.Fatalf("round %d: GET returned %q (err %v)", i, rec.Key, err)
		}
	}
	if streamed != rounds*3 {
		t.Fatalf("streamed %d records in %d rounds, want %d", streamed, rounds, rounds*3)
	}
	c.send(&wire.StreamClose{ID: opened.ID})
	if _, ok := c.recv().(*wire.Ack); !ok {
		t.Fatal("StreamClose not acked")
	}
}

package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/acl"
	"repro/internal/gdpr"
	"repro/internal/obs"
	"repro/internal/remote"
	"repro/internal/wire"
)

// TestMetricsVerbRoundTrip pins the wire introspection surface: a
// remote client pulls the server's registry over METRICS and gets the
// front end's own series back, slowlog included on request.
func TestMetricsVerbRoundTrip(t *testing.T) {
	reg := obs.NewRegistry(nil)
	db := openTestDB(t)
	_, addr := startServer(t, db, Config{Obs: reg})

	client, err := remote.Dial(remote.Config{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const ops = 8
	for i := 0; i < ops; i++ {
		if err := client.CreateRecord(acl.Actor{Role: acl.Controller, ID: "controller-1"}, testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}

	snap, err := client.ServerMetrics(true)
	if err != nil {
		t.Fatal(err)
	}
	// The METRICS frame itself rides the same connection, so frames
	// strictly exceed the op count.
	if got := snap.Counter("server_frames_total"); got <= ops {
		t.Fatalf("server_frames_total = %d, want > %d", got, ops)
	}
	if got := snap.Counter("server_connections_total"); got < 1 {
		t.Fatalf("server_connections_total = %d, want >= 1", got)
	}
	if got := snap.Gauge("server_connections"); got < 1 {
		t.Fatalf("server_connections gauge = %d, want >= 1 (session still open)", got)
	}
	depth := snap.Hists["server_pipeline_depth"]
	if depth.Count <= 0 {
		t.Fatal("server_pipeline_depth histogram is empty")
	}
	if depth.Min < 1 {
		t.Fatalf("pipeline depth min = %d, want >= 1", depth.Min)
	}
}

// TestMetricsVerbAnyRole pins the authorization stance: introspection
// carries no record payloads, so any authenticated session may pull it —
// including a customer.
func TestMetricsVerbAnyRole(t *testing.T) {
	reg := obs.NewRegistry(nil)
	db := openTestDB(t)
	_, addr := startServer(t, db, Config{Obs: reg, Token: "sesame"})

	c := dialRaw(t, addr)
	if resp := c.hello(acl.Customer, "sesame"); resp.Op() != wire.OpHelloOK {
		t.Fatalf("handshake failed: %v", resp)
	}
	c.send(&wire.Metrics{Slowlog: true})
	resp := c.recv()
	mr, ok := resp.(*wire.MetricsResp)
	if !ok {
		t.Fatalf("METRICS answered %T, want *wire.MetricsResp", resp)
	}
	if mr.Snapshot().Counter("server_frames_total") < 1 {
		t.Fatal("snapshot missing server_frames_total")
	}
}

// TestMetricsEndpointServesServerSeries closes the HTTP loop: the same
// registry the server reports to, mounted as gdprserver does on
// -pprofaddr, serves the front end's series over /metrics.
func TestMetricsEndpointServesServerSeries(t *testing.T) {
	reg := obs.NewRegistry(nil)
	db := openTestDB(t)
	_, addr := startServer(t, db, Config{Obs: reg})

	client, err := remote.Dial(remote.Config{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.ReadData(acl.Actor{Role: acl.Regulator, ID: "dpa-1"}, gdpr.ByUser("nobody")); err != nil {
		t.Fatal(err)
	}

	web := httptest.NewServer(reg.Handler())
	defer web.Close()

	resp, err := http.Get(web.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content-type = %q, want Prometheus text 0.0.4", ct)
	}
	for _, want := range []string{
		"# TYPE server_frames_total counter",
		"# TYPE server_connections gauge",
		"server_pipeline_depth_count",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	hz, err := http.Get(web.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hzBody, _ := io.ReadAll(hz.Body)
	hz.Body.Close()
	if string(hzBody) != "ok\n" {
		t.Fatalf("healthz = %q, want ok", hzBody)
	}
}
